#!/usr/bin/env bash
# Keeps ARCHITECTURE.md (and the README architecture tree) honest:
#   1. every file path ARCHITECTURE.md references under src/ must exist;
#   2. every subsystem directory under src/ must have a "### `src/<name>`"
#      section in ARCHITECTURE.md;
#   3. every subsystem directory under src/ must appear in the README
#      "Architecture" tree block (the short map readers actually see);
#   4. the static-analysis toolchain the docs lean on (tools/peek_lint.py,
#      tools/peek_analyze.py) exists and is named in ARCHITECTURE.md.
# Run from the repository root (CI does). Exits non-zero on any drift.
set -u
cd "$(dirname "$0")/.."

fail=0

# 1. Referenced paths exist. Matches `src/foo` and bare `name.hpp` inside the
# subsystem section that names its directory.
while read -r ref; do
  if [ ! -e "$ref" ]; then
    echo "ARCHITECTURE.md references missing path: $ref"
    fail=1
  fi
done < <(grep -o '`src/[A-Za-z0-9_/.]*`' ARCHITECTURE.md | tr -d '`' | sort -u)

# Per-subsystem file bullets like "- `adaptive.hpp` — ...".
current_dir=""
while IFS= read -r line; do
  case "$line" in
    '### `src/'*)
      current_dir=$(printf '%s' "$line" | sed -n 's/.*`\(src\/[a-z_]*\)`.*/\1/p')
      ;;
    '## '*) current_dir="" ;;
    *)
      [ -n "$current_dir" ] || continue
      for f in $(printf '%s' "$line" |
                   grep -o '`[a-z_]*\.\(hpp\|cpp\)`' | tr -d '`'); do
        if [ ! -e "$current_dir/$f" ]; then
          echo "ARCHITECTURE.md ($current_dir section) references missing file: $current_dir/$f"
          fail=1
        fi
      done
      ;;
  esac
done < ARCHITECTURE.md

# 2. Every src/ subsystem has a section.
for d in src/*/; do
  name=$(basename "$d")
  if ! grep -q "^### \`src/$name\`" ARCHITECTURE.md; then
    echo "src/$name has no '### \`src/$name\`' section in ARCHITECTURE.md"
    fail=1
  fi
done

# 3. Every src/ subsystem appears in the README architecture tree (entries
# are two-space-indented "name/" lines inside the fenced block).
for d in src/*/; do
  name=$(basename "$d")
  if ! grep -q "^  $name/" README.md; then
    echo "src/$name is missing from the README Architecture tree block"
    fail=1
  fi
done

# 4. The analysis tools the CI gates run exist and are documented — a doc
# that points at a deleted linter, or a linter nobody can find from the
# docs, is drift of the same kind as a stale path.
for t in tools/peek_lint.py tools/peek_analyze.py; do
  if [ ! -e "$t" ]; then
    echo "missing analysis tool: $t (CI and the docs expect it)"
    fail=1
  elif ! grep -q "$(basename "$t")" ARCHITECTURE.md; then
    echo "$(basename "$t") exists but ARCHITECTURE.md never mentions it"
    fail=1
  fi
done

if [ "$fail" -eq 0 ]; then
  echo "ARCHITECTURE.md and the README tree are in sync with src/."
fi
exit "$fail"
