#!/usr/bin/env python3
"""Compare two canonical bench JSONs (bench/bench_canonical.cpp output) and
fail on performance regressions.

  tools/bench_compare.py BASELINE.json CANDIDATE.json [--tolerance 0.25]

Per metric present in the baseline, the candidate's median_s may exceed the
baseline's by at most `tolerance` (relative, e.g. 0.25 = +25%); anything
slower is a regression and the script exits 1. Metrics the baseline has but
the candidate lacks are failures too (a silently dropped workload looks like
a speedup); metrics only the candidate has are reported as new and pass.
Metrics carrying a `p99_s` field in BOTH files (the sharded-serving storm
rows) are additionally gated on tail latency: the candidate's p99_s gets the
same relative tolerance — a hedging or routing regression shows up in the
tail long before it moves the median.

Guard rails before any numeric comparison:
  - both files must carry schema "peek-bench-v1" and equal schema_version;
  - graph fingerprints must match (same name -> same fingerprint), otherwise
    the workloads ran on different inputs and the timings are meaningless —
    fail unless --allow-graph-mismatch;
  - a sanitized candidate build is never gated: instrumented timings are not
    comparable to a release baseline, so the script prints a notice and
    exits 0 (the CI perf job relies on this to skip itself on sanitizer
    matrix entries).

The tolerance defaults to the PEEK_BENCH_TOLERANCE environment variable
(then 0.25): CI sets it once, and a one-off run can override per invocation.
Exit status: 0 = within tolerance (or skipped), 1 = regression or
incomparable inputs, 2 = usage / malformed input.
"""

import argparse
import json
import os
import sys

SCHEMA = "peek-bench-v1"


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    for key in ("schema", "schema_version", "build", "graphs", "metrics"):
        if key not in doc:
            print(f"bench_compare: {path} has no `{key}` section",
                  file=sys.stderr)
            sys.exit(2)
    if doc["schema"] != SCHEMA:
        print(f"bench_compare: {path} has schema {doc['schema']!r}, "
              f"expected {SCHEMA!r}", file=sys.stderr)
        sys.exit(2)
    return doc


def main():
    ap = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline", help="committed baseline BENCH_*.json")
    ap.add_argument("candidate", help="freshly measured bench JSON")
    ap.add_argument(
        "--tolerance", type=float,
        default=float(os.environ.get("PEEK_BENCH_TOLERANCE", "0.25")),
        help="max allowed relative median slowdown per metric "
             "(default: $PEEK_BENCH_TOLERANCE, else 0.25)")
    ap.add_argument(
        "--allow-graph-mismatch", action="store_true",
        help="compare timings even when graph fingerprints differ")
    args = ap.parse_args()
    if args.tolerance < 0:
        ap.error("--tolerance must be >= 0")

    base = load(args.baseline)
    cand = load(args.candidate)

    if cand["build"].get("sanitized"):
        print("bench_compare: SKIPPED — candidate is a sanitized build; "
              "instrumented timings are not gated against release baselines")
        return 0

    if base["schema_version"] != cand["schema_version"]:
        print(f"bench_compare: schema_version mismatch "
              f"(baseline {base['schema_version']}, "
              f"candidate {cand['schema_version']}) — regenerate the "
              "baseline with the current bench driver", file=sys.stderr)
        return 1

    base_fp = {g["name"]: g["fingerprint"] for g in base["graphs"]}
    cand_fp = {g["name"]: g["fingerprint"] for g in cand["graphs"]}
    mismatched = sorted(
        name for name in base_fp
        if name in cand_fp and base_fp[name] != cand_fp[name])
    if mismatched and not args.allow_graph_mismatch:
        for name in mismatched:
            print(f"bench_compare: graph {name} fingerprint changed "
                  f"({base_fp[name]} -> {cand_fp[name]}) — the workloads ran "
                  "on different inputs", file=sys.stderr)
        return 1

    if base["build"].get("sanitized"):
        print("bench_compare: warning — the BASELINE is a sanitized build; "
              "its timings are inflated and the gate is toothless",
              file=sys.stderr)

    bm, cm = base["metrics"], cand["metrics"]
    regressions, missing = [], []
    rows = []
    for name in sorted(bm):
        if name not in cm:
            missing.append(name)
            continue
        b, c = bm[name]["median_s"], cm[name]["median_s"]
        rel = (c / b - 1.0) if b > 0 else 0.0
        verdict = "ok"
        if rel > args.tolerance:
            verdict = "REGRESSION"
            regressions.append(name)
        if "p99_s" in bm[name] and "p99_s" in cm[name]:
            b99, c99 = bm[name]["p99_s"], cm[name]["p99_s"]
            rel99 = (c99 / b99 - 1.0) if b99 > 0 else 0.0
            if rel99 > args.tolerance:
                verdict = "REGRESSION(p99)"
                regressions.append(f"{name}[p99]")
        rows.append((name, b, c, rel, verdict))
    new = sorted(set(cm) - set(bm))

    width = max((len(r[0]) for r in rows), default=10)
    print(f"{'metric':<{width}}  {'baseline':>12}  {'candidate':>12}  "
          f"{'change':>8}")
    for name, b, c, rel, verdict in rows:
        print(f"{name:<{width}}  {b * 1e3:>10.3f}ms  {c * 1e3:>10.3f}ms  "
              f"{rel:>+7.1%}  {verdict}")
    for name in new:
        print(f"{name:<{width}}  {'-':>12}  "
              f"{cm[name]['median_s'] * 1e3:>10.3f}ms      new  ok")

    if missing:
        for name in missing:
            print(f"bench_compare: metric `{name}` is in the baseline but "
                  "missing from the candidate — dropped workload?",
                  file=sys.stderr)
    if regressions:
        print(f"bench_compare: {len(regressions)} regression(s) beyond "
              f"+{args.tolerance:.0%}: {', '.join(regressions)}",
              file=sys.stderr)
    if regressions or missing:
        return 1
    print(f"bench_compare: OK — {len(rows)} metric(s) within "
          f"+{args.tolerance:.0%} of baseline"
          + (f", {len(new)} new" if new else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
