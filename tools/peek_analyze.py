#!/usr/bin/env python3
"""PeeK project-invariant analyzer (DESIGN.md §13). Three checks, each
enforcing a whole-program discipline the compiler alone cannot (or, with GCC,
does not) see:

  cancel   responsiveness: in the kernel subsystems (src/sssp, src/ksp,
           src/compact, src/core) every loop that invokes graph-sized work —
           an unbounded `for(;;)` / `while(true)`, or a body calling one of
           the HEAVY_CALLEES pipeline entry points — must stay cancellable:
           its body (or header) polls fault::CancelToken / fault::CancelPoll
           (`should_stop()`, `cancelled_fast()`, `triggered()`), forwards a
           `cancel` into the callee, or carries an explicit
           `// no-cancel: <reason>` waiver. A poll-free graph-scale loop is a
           deadline that cannot trip and a query that cannot be shed.
  status   error discipline: fault::Status is [[nodiscard]], which GCC/clang
           enforce for plain discards at compile time — but a `(void)` cast
           silences the compiler without a trace. This check flags every
           statement that drops a Status (bare call or `(void)` suppression
           of a known Status-returning function) unless the line carries a
           `// status-ignored: <reason>` waiver.
  locks    annotation coverage: every mutex member (check::Mutex, std::mutex,
           std::shared_mutex, std::recursive_mutex) of a class/struct in
           src/ must be named by at least one PEEK_GUARDED_BY /
           PEEK_PT_GUARDED_BY / PEEK_REQUIRES in the same class body, or
           carry a `// ts-allow: <reason>` waiver on its declaration or the
           comment block directly above it. An unreferenced mutex is either
           dead weight or — worse — a lock whose protected data the clang
           thread-safety analysis (src/check/thread_safety.hpp) cannot check.

Engine: uses libclang (clang.cindex) for AST-accurate scoping when the
module is importable, else a built-in tokenizer with brace-matched scope
tracking — same findings format, zero dependencies, runs anywhere CI or a
dev box has python3. `--engine` forces one.

Waiver grammar (all three checks): `<marker>: <reason>` where the reason is
non-empty and not a filler word; tools/peek_lint.py (check `waivers`)
audits every waiver in the tree for a substantive reason.

Exit status 0 = clean. Any finding prints `file:line: [check] message` and
exits 1; `--out findings.json` additionally writes machine-readable
findings (CI uploads this artifact on failure).

  tools/peek_analyze.py                 # all checks over src/
  tools/peek_analyze.py --only cancel   # one check
  tools/peek_analyze.py --out out.json  # also write JSON findings
"""

import argparse
import json
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")

# Subsystems whose loops must stay cancellable (the pipeline hot path —
# including the live-mutation repair loop, which runs graph-sized Dijkstra
# cones on the serving path).
CANCEL_DIRS = ("sssp", "ksp", "compact", "core", "dyn")

# Pipeline entry points that do graph-sized work per call. A loop whose body
# invokes one of these repeats whole-graph work and must poll. Extend this
# list when adding a new kernel entry point.
HEAVY_CALLEES = (
    "dijkstra",                # covers dijkstra / reverse_dijkstra
    "delta_stepping",          # covers reverse_delta_stepping
    "bellman_ford",
    "bidirectional_dijkstra",
    "run_to_completion",
    "compute_sssp",
    "peek_ksp",
    "k_upper_bound_prune",
    "yen_ksp",
    "optyen_ksp",
    "regenerate",
    "edge_swap_compact",
)

# Evidence that a loop body can observe cancellation.
POLL_MARKERS = (
    "CancelPoll",
    "should_stop",
    "cancelled_fast",
    "triggered()",
    "cancel",  # forwarding a token (opts.cancel, po.cancel = cancel, ...)
)

MUTEX_TYPES = (
    "check::Mutex",
    "std::mutex",
    "std::shared_mutex",
    "std::recursive_mutex",
)

findings = []


def finding(path, line_no, check, msg):
    rel = os.path.relpath(path, REPO)
    findings.append({"file": rel, "line": line_no, "check": check,
                     "message": msg})


def iter_sources(dirs=None):
    roots = [os.path.join(SRC, d) for d in dirs] if dirs else [SRC]
    for root in roots:
        for dirpath, _, names in os.walk(root):
            for n in sorted(names):
                if n.endswith((".hpp", ".cpp", ".h", ".cc")):
                    yield os.path.join(dirpath, n)


# --------------------------------------------------------------- lexing

def strip_code(text):
    """Returns (code, comments): `code` is the source with comment and
    string/char contents blanked (newlines preserved, so offsets and line
    numbers survive); `comments` maps line number -> comment text on it."""
    code = []
    comments = {}
    i, n = 0, len(text)
    line = 1
    while i < n:
        c = text[i]
        if c == "\n":
            code.append(c)
            line += 1
            i += 1
        elif text.startswith("//", i):
            j = text.find("\n", i)
            j = n if j < 0 else j
            comments[line] = comments.get(line, "") + text[i:j]
            code.append(" " * (j - i))
            i = j
        elif text.startswith("/*", i):
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            chunk = text[i:j + 2]
            comments[line] = comments.get(line, "") + chunk
            for ch in chunk:
                code.append("\n" if ch == "\n" else " ")
                if ch == "\n":
                    line += 1
            i = j + 2
        elif c in "\"'":
            quote = c
            code.append(quote)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    code.append("  ")
                    i += 2
                else:
                    code.append("\n" if text[i] == "\n" else " ")
                    if text[i] == "\n":
                        line += 1
                    i += 1
            if i < n:
                code.append(quote)
                i += 1
        else:
            code.append(c)
            i += 1
    return "".join(code), comments


def line_of(code, offset):
    return code.count("\n", 0, offset) + 1


def match_brace(code, open_idx):
    """Index of the `}` closing the `{` at open_idx (len(code) if unclosed)."""
    depth = 0
    for i in range(open_idx, len(code)):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(code)


def has_waiver(comments, line_no, marker, lookback=3):
    """True when `marker:` appears on the line or in the comment block
    directly above it (up to `lookback` lines of comments)."""
    if marker in comments.get(line_no, ""):
        return True
    for back in range(1, lookback + 1):
        prev = line_no - back
        if prev in comments and marker in comments[prev]:
            return True
        if prev not in comments:
            break
    return False


# --------------------------------------------------------------- cancel

LOOP_RE = re.compile(r"\b(for|while)\s*\(")


def loop_body_span(code, header_open):
    """(body_start, body_end) of the loop whose `(` is at header_open."""
    depth = 0
    i = header_open
    while i < len(code):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                break
        i += 1
    j = i + 1
    while j < len(code) and code[j] in " \t\n":
        j += 1
    if j < len(code) and code[j] == "{":
        return j, match_brace(code, j)
    end = code.find(";", j)
    return j, len(code) if end < 0 else end + 1


def check_cancel():
    heavy_re = re.compile(
        r"\b(" + "|".join(map(re.escape, HEAVY_CALLEES)) + r")\s*\(")
    for path in iter_sources(CANCEL_DIRS):
        text = open(path, encoding="utf-8").read()
        code, comments = strip_code(text)
        for m in LOOP_RE.finditer(code):
            header_open = code.index("(", m.end() - 1)
            body_start, body_end = loop_body_span(code, header_open)
            header = code[m.start():body_start]
            body = code[body_start:body_end]
            line_no = line_of(code, m.start())
            unbounded = re.search(r"for\s*\(\s*;\s*;\s*\)", header) or \
                re.search(r"while\s*\(\s*(true|1)\s*\)", header)
            heavy = heavy_re.search(body)
            if not unbounded and not heavy:
                continue
            region = header + body
            if any(p in region for p in POLL_MARKERS):
                continue
            if has_waiver(comments, line_no, "no-cancel"):
                continue
            what = ("unbounded loop" if unbounded
                    else f"loop invoking {heavy.group(1)}()")
            finding(path, line_no, "cancel",
                    f"{what} never polls cancellation — add a "
                    "fault::CancelPoll (or forward a CancelToken into the "
                    "callee), or waive with `// no-cancel: <reason>`")


# --------------------------------------------------------------- status

STATUS_FN_RE = re.compile(
    r"\bStatus\s+(?:[A-Za-z_]\w*::)*([a-z_]\w*)\s*\(")


def status_returning_functions():
    """Names of every function declared to return fault::Status in src/."""
    names = set()
    for path in iter_sources():
        code, _ = strip_code(open(path, encoding="utf-8").read())
        for m in STATUS_FN_RE.finditer(code):
            names.add(m.group(1))
    return names


def check_status():
    names = status_returning_functions()
    if not names:
        return
    call_re = re.compile(
        r"(?:[A-Za-z_]\w*(?:\.|->|::))*(" +
        "|".join(map(re.escape, sorted(names))) + r")\s*\(")
    for path in iter_sources():
        text = open(path, encoding="utf-8").read()
        code, comments = strip_code(text)
        # Statement-level scan: split on top-level semicolons is overkill;
        # line-anchored statements catch the discard shapes that occur in
        # practice (a dropped call is a full statement on its own line).
        # Continuation lines (the previous statement is still open) are not
        # statement starts — `const Status st =\n  write_file_atomic(...);`
        # is a consumed result, not a discard.
        prev = ""
        for line_no, line in enumerate(code.split("\n"), start=1):
            stripped = line.strip()
            continuation = prev != "" and not prev.endswith((";", "{", "}",
                                                             ":", ")"))
            if stripped:
                prev = stripped
            if continuation:
                continue
            m = call_re.match(stripped)
            bare = (m is not None and stripped.endswith(";")
                    and "=" not in stripped.split("(")[0])
            voided = re.match(r"\(void\)\s*", stripped) and \
                call_re.search(stripped)
            if not bare and not voided:
                continue
            # A declaration like `fault::Status decode_tree(...)...` or a
            # control-flow consumer is not a discard.
            if re.match(r"(fault::)?Status\b", stripped):
                continue
            if re.search(r"\b(return|if|while|for|switch|case|throw)\b",
                         stripped.split("(")[0]):
                continue
            if has_waiver(comments, line_no, "status-ignored", lookback=1):
                continue
            fn = (m or call_re.search(stripped)).group(1)
            how = "(void)-suppresses" if voided else "drops"
            finding(path, line_no, "status",
                    f"statement {how} the fault::Status returned by {fn}() "
                    "— handle it, or waive with "
                    "`// status-ignored: <reason>`")


# ---------------------------------------------------------------- locks

CLASS_RE = re.compile(r"\b(class|struct)\s+(?:PEEK_\w+(?:\([^)]*\))?\s+)*"
                      r"([A-Za-z_]\w*)\s*(?:final\s*)?(?::[^;{]*)?\{")
MUTEX_DECL_RE = re.compile(
    r"\b(?:mutable\s+)?(" + "|".join(map(re.escape, MUTEX_TYPES)) +
    r")\s+([A-Za-z_]\w*)\s*(?:;|\{)")


def check_locks():
    for path in iter_sources():
        text = open(path, encoding="utf-8").read()
        code, comments = strip_code(text)
        for cm in CLASS_RE.finditer(code):
            open_idx = code.index("{", cm.end() - 1)
            close_idx = match_brace(code, open_idx)
            body = code[open_idx:close_idx]
            guards = set(re.findall(
                r"PEEK_(?:PT_)?GUARDED_BY\(\s*([A-Za-z_]\w*)", body))
            guards |= set(re.findall(
                r"PEEK_REQUIRES(?:_SHARED)?\(\s*(?:[A-Za-z_]\w*\.)*"
                r"([A-Za-z_]\w*)", body))
            for dm in MUTEX_DECL_RE.finditer(body):
                mutex_type, name = dm.group(1), dm.group(2)
                line_no = line_of(code, open_idx + dm.start())
                # std::vector<std::mutex> etc. don't match (the declared
                # type must be the mutex itself) — a per-index lock array
                # needs its own ts-allow anyway, via the raw-type scan below.
                if name in guards:
                    if mutex_type != "check::Mutex" and \
                            not has_waiver(comments, line_no, "ts-allow"):
                        finding(path, line_no, "locks",
                                f"{cm.group(2)}::{name} is PEEK_GUARDED_BY-"
                                f"paired but typed {mutex_type} — use "
                                "check::Mutex so the clang thread-safety "
                                "analysis sees its acquire/release edges, "
                                "or waive with `// ts-allow: <reason>`")
                    continue
                if has_waiver(comments, line_no, "ts-allow"):
                    continue
                finding(path, line_no, "locks",
                        f"mutex member {cm.group(2)}::{name} is never named "
                        "in a PEEK_GUARDED_BY / PEEK_PT_GUARDED_BY / "
                        "PEEK_REQUIRES in its class — annotate what it "
                        "guards, or waive with `// ts-allow: <reason>`")
            # Containers of locks (per-index disciplines) always need a
            # waiver: the relation is inexpressible to the analysis.
            for vm in re.finditer(
                    r"\b(?:std::vector|std::array)\s*<\s*(?:" +
                    "|".join(map(re.escape, MUTEX_TYPES)) +
                    r")\b[^;>]*>\s+([A-Za-z_]\w*)", body):
                line_no = line_of(code, open_idx + vm.start())
                if not has_waiver(comments, line_no, "ts-allow"):
                    finding(path, line_no, "locks",
                            f"lock container {cm.group(2)}::{vm.group(1)} "
                            "cannot be expressed to the thread-safety "
                            "analysis — document the per-index discipline "
                            "with `// ts-allow: <reason>`")


# ----------------------------------------------------------- libclang

def libclang_available():
    try:
        import clang.cindex  # noqa: F401
        return True
    except ImportError:
        return False


def libclang_parse_gate():
    """AST front end of the libclang engine: parse every source and surface
    real syntax errors before the scope-based checks run. The checks
    themselves are shared with the builtin engine — their subjects (waiver
    comments, annotation macros on non-clang builds) are textual artifacts
    the AST erases, so a token-level scan is the canonical semantics and the
    AST pass contributes parse validation, not separate findings."""
    import clang.cindex as ci
    index = ci.Index.create()
    args = ["-std=c++20", "-I", SRC, "-x", "c++", "-fsyntax-only"]
    for path in iter_sources():
        try:
            tu = index.parse(path, args=args)
        except ci.TranslationUnitLoadError:
            finding(path, 1, "parse", "libclang failed to load this file")
            continue
        for d in tu.diagnostics:
            if d.severity >= ci.Diagnostic.Fatal and \
                    "file not found" not in d.spelling:
                finding(path, d.location.line, "parse", d.spelling)


CHECKS = {
    "cancel": check_cancel,
    "status": check_status,
    "locks": check_locks,
}


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--skip", action="append", default=[],
                    choices=sorted(CHECKS), help="skip a check (repeatable)")
    ap.add_argument("--only", action="append", default=[],
                    choices=sorted(CHECKS), help="run only these checks")
    ap.add_argument("--engine", choices=["auto", "builtin", "libclang"],
                    default="auto",
                    help="AST backend (auto: libclang when importable)")
    ap.add_argument("--root", default=None,
                    help="analyze this tree instead of the repo's src/ "
                    "(fixture tests)")
    ap.add_argument("--out", default=None,
                    help="also write findings as JSON to this path")
    args = ap.parse_args()

    global SRC
    if args.root:
        SRC = os.path.abspath(args.root)

    engine = args.engine
    if engine == "auto":
        engine = "libclang" if libclang_available() else "builtin"
    if engine == "libclang" and not libclang_available():
        print("peek_analyze: libclang requested but clang.cindex is not "
              "importable", file=sys.stderr)
        return 2

    selected = args.only or [c for c in CHECKS if c not in args.skip]
    if engine == "libclang":
        libclang_parse_gate()
    for name in selected:
        CHECKS[name]()

    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            json.dump({"engine": engine, "checks": selected,
                       "findings": findings}, f, indent=2)
            f.write("\n")

    for f in findings:
        print(f"{f['file']}:{f['line']}: [{f['check']}] {f['message']}")
    if findings:
        print(f"peek_analyze: {len(findings)} finding(s) in checks: "
              f"{', '.join(selected)} (engine: {engine})", file=sys.stderr)
        return 1
    print(f"peek_analyze: clean ({', '.join(selected)}; engine: {engine})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
