#!/usr/bin/env python3
"""PeeK repo-specific lint. Nine checks, all rooted in invariants generic
tools cannot know:

  metrics      every metric name the library emits (PEEK_COUNT_* /
               PEEK_GAUGE_SET / PEEK_TIMER_SCOPE hooks and direct registry
               calls) appears in the README "Observability" tables — and vice
               versa, so the documented contract never drifts from the code.
  atomics      in the hot-loop subsystems (src/sssp, src/parallel) every atomic
               access names an explicit std::memory_order; a deliberate
               sequentially-consistent access needs a `// seq_cst:` comment
               justifying why the fences are worth it.
  headers      every public header under src/ compiles standalone (catches
               missing includes that happen to work due to include order).
  asserts      no assert() in library code — PEEK_DCHECK (src/check/
               invariants.hpp) is the project macro: it reports expression,
               file:line and an optional reason, and compiles out under NDEBUG
               without odr-using its arguments.
  fault_sites  every PEEK_FAULT_{ALLOC,STALL,FIRE} probe site in src/ is
               listed in the DESIGN.md §9 site table (between the
               fault-site-table-begin/end markers) and vice versa, so the
               fault-injection surface stays documented.
  status_codes every fault::Status code in src/fault/status.hpp appears in
               the DESIGN.md status-code table (between the
               status-code-table-begin/end markers) and vice versa — the
               typed-error contract every layer reports through.
  bench_json   every BENCH_*.json at the repo root parses against the
               peek-bench-v1 schema (version, required sections, per-metric
               median_s/min_s/reps, optional paired p50_s/p99_s tail fields
               on storm rows, pr field matching the filename) and is
               listed in the README bench table (between the
               bench-table-begin/end markers) — and vice versa, so the
               committed perf trajectory the CI perf job gates on stays
               valid and documented.
  breaker_transitions
               every `shard.breaker.*` metric the library emits appears in
               the DESIGN.md §14 breaker transition table (between the
               breaker-transition-table-begin/end markers) and vice versa,
               so every circuit-breaker state machine edge stays observable
               and documented.
  waivers      every analyzer waiver in src/ (`// no-cancel:`,
               `// status-ignored:`, `// ts-allow:` — the escape hatches
               tools/peek_analyze.py honors) cites a substantive,
               issue-style reason: several words of actual justification,
               not a bare marker or filler like "ok"/"todo". A waiver
               nobody can audit later is a suppressed finding, not a
               documented exception.

Exit status 0 = clean. Any finding prints `file:line: [check] message` and
exits 1. Run from anywhere; paths resolve relative to the repo root.

  tools/peek_lint.py             # all checks
  tools/peek_lint.py --skip headers   # e.g. when no compiler is available
"""

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")

findings = []


def finding(path, line_no, check, msg):
    rel = os.path.relpath(path, REPO)
    findings.append(f"{rel}:{line_no}: [{check}] {msg}")


def source_files(root, exts=(".hpp", ".cpp")):
    for dirpath, _, names in os.walk(root):
        for name in sorted(names):
            if name.endswith(exts):
                yield os.path.join(dirpath, name)


# --------------------------------------------------------------- metrics

# Hook macros and direct registry accessors, first string literal argument.
EMIT_RE = re.compile(
    r'(?:PEEK_COUNT_INC|PEEK_COUNT_ADD|PEEK_GAUGE_SET|PEEK_TIMER_SCOPE'
    r'|\bcounter|\bgauge|\btimer)\s*\(\s*"([^"]+)"'
)
# A backticked dotted name in a README table row: | `serve.cache.hits` | ...
# (metric names always contain a dot, which keeps other tables — bench
# binaries, CLI flags — out of scope).
DOC_RE = re.compile(r'^\|\s*`([a-z0-9_]+(?:\.[a-z0-9_]+)+)`\s*\|')


def check_metrics():
    emitted = {}  # name -> (path, line_no) of first emission
    for path in source_files(SRC):
        with open(path, encoding="utf-8") as f:
            for line_no, line in enumerate(f, 1):
                for m in EMIT_RE.finditer(line):
                    emitted.setdefault(m.group(1), (path, line_no))

    readme = os.path.join(REPO, "README.md")
    documented = {}
    with open(readme, encoding="utf-8") as f:
        for line_no, line in enumerate(f, 1):
            m = DOC_RE.match(line.strip())
            if m:
                documented.setdefault(m.group(1), line_no)

    for name in sorted(set(emitted) - set(documented)):
        path, line_no = emitted[name]
        finding(path, line_no, "metrics",
                f"metric `{name}` is emitted here but missing from the "
                "README Observability tables")
    for name in sorted(set(documented) - set(emitted)):
        finding(readme, documented[name], "metrics",
                f"metric `{name}` is documented but nothing in src/ emits "
                "it — stale table row?")


# --------------------------------------------------------------- atomics

ATOMIC_SCOPE = (os.path.join(SRC, "sssp"), os.path.join(SRC, "parallel"))
ATOMIC_OP_RE = re.compile(
    r'\.\s*(store|load|exchange|fetch_add|fetch_sub|fetch_or|fetch_and'
    r'|compare_exchange_weak|compare_exchange_strong)\s*\('
)


def call_args(text, open_paren):
    """Text of the (...) argument list starting at text[open_paren]."""
    depth = 0
    for i in range(open_paren, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren:i + 1]
    return text[open_paren:]


def check_atomics():
    for root in ATOMIC_SCOPE:
        for path in source_files(root):
            with open(path, encoding="utf-8") as f:
                lines = f.readlines()
            text = "".join(lines)
            # Map character offsets to line numbers for reporting.
            offsets, pos = [], 0
            for line in lines:
                offsets.append(pos)
                pos += len(line)
            for m in ATOMIC_OP_RE.finditer(text):
                args = call_args(text, m.end() - 1)
                if "memory_order" in args:
                    continue
                line_no = next(
                    (i for i, off in enumerate(offsets) if off > m.start()),
                    len(lines)) or len(lines)
                here = lines[line_no - 1]
                prev = lines[line_no - 2] if line_no >= 2 else ""
                if "// seq_cst:" in here or "// seq_cst:" in prev:
                    continue
                finding(path, line_no, "atomics",
                        f"atomic .{m.group(1)}() defaults to seq_cst — name "
                        "a std::memory_order or justify with a "
                        "`// seq_cst: <reason>` comment")


# --------------------------------------------------------------- headers

def check_headers():
    cxx = os.environ.get("CXX", "c++")
    headers = sorted(source_files(SRC, exts=(".hpp",)))
    with tempfile.TemporaryDirectory() as tmp:
        for path in headers:
            rel = os.path.relpath(path, SRC)
            tu = os.path.join(tmp, "standalone.cpp")
            with open(tu, "w", encoding="utf-8") as f:
                f.write(f'#include "{rel}"\n')
            cmd = [cxx, "-std=c++20", "-fsyntax-only", "-I", SRC,
                   "-DPEEK_OBS_ENABLED=1", tu]
            proc = subprocess.run(cmd, capture_output=True, text=True)
            if proc.returncode != 0:
                first_error = next(
                    (ln for ln in proc.stderr.splitlines() if "error" in ln),
                    proc.stderr.strip().splitlines()[0]
                    if proc.stderr.strip() else "compiler failed")
                finding(path, 1, "headers",
                        f"does not compile standalone: {first_error}")


# --------------------------------------------------------------- asserts

ASSERT_RE = re.compile(r'(?<![_\w])assert\s*\(')


def check_asserts():
    for path in source_files(SRC):
        with open(path, encoding="utf-8") as f:
            for line_no, line in enumerate(f, 1):
                code = line.split("//", 1)[0]
                if "static_assert" in code:
                    continue
                if ASSERT_RE.search(code):
                    finding(path, line_no, "asserts",
                            "assert() in library code — use PEEK_DCHECK / "
                            "PEEK_DCHECK_MSG from check/invariants.hpp")


# ----------------------------------------------------------- fault sites

# Probe macro with its mandatory string-literal site argument. The macro
# *definitions* in fault/injector.hpp pass the bare parameter `site`, so the
# literal requirement keeps them out of scope automatically.
PROBE_RE = re.compile(r'PEEK_FAULT_(?:ALLOC|STALL|FIRE)\s*\(\s*"([^"]+)"')
SITE_TABLE_BEGIN = "<!-- fault-site-table-begin -->"
SITE_TABLE_END = "<!-- fault-site-table-end -->"
SITE_ROW_RE = re.compile(r'^\|\s*`([a-z0-9_]+(?:\.[a-z0-9_]+)+)`\s*\|')


def check_fault_sites():
    used = {}  # site -> (path, line_no) of first probe
    for path in source_files(SRC):
        with open(path, encoding="utf-8") as f:
            for line_no, line in enumerate(f, 1):
                for m in PROBE_RE.finditer(line):
                    used.setdefault(m.group(1), (path, line_no))

    design = os.path.join(REPO, "DESIGN.md")
    documented = {}
    in_table = False
    with open(design, encoding="utf-8") as f:
        for line_no, line in enumerate(f, 1):
            if SITE_TABLE_BEGIN in line:
                in_table = True
                continue
            if SITE_TABLE_END in line:
                in_table = False
                continue
            if in_table:
                m = SITE_ROW_RE.match(line.strip())
                if m:
                    documented.setdefault(m.group(1), line_no)

    for name in sorted(set(used) - set(documented)):
        path, line_no = used[name]
        finding(path, line_no, "fault_sites",
                f"fault-injection site `{name}` is probed here but missing "
                "from the DESIGN.md §9 site table")
    for name in sorted(set(documented) - set(used)):
        finding(design, documented[name], "fault_sites",
                f"site `{name}` is documented but no PEEK_FAULT_* probe in "
                "src/ uses it — stale table row?")


# ----------------------------------------------------------- status codes

# Enumerators of fault::Status::Code in status.hpp: `kOk,` / `kOk = 0,` etc.
STATUS_ENUM_RE = re.compile(r'^\s*(k[A-Z]\w*)\s*(?:=\s*[^,]+)?,')
STATUS_TABLE_BEGIN = "<!-- status-code-table-begin -->"
STATUS_TABLE_END = "<!-- status-code-table-end -->"
STATUS_ROW_RE = re.compile(r'^\|\s*`(k[A-Z]\w*)`\s*\|')


def check_status_codes():
    status_hpp = os.path.join(SRC, "fault", "status.hpp")
    declared = {}  # code -> line_no
    in_enum = False
    with open(status_hpp, encoding="utf-8") as f:
        for line_no, line in enumerate(f, 1):
            if re.search(r'\benum\s+Code\b', line):
                in_enum = True
                continue
            if in_enum and "}" in line:
                in_enum = False
                continue
            if in_enum:
                m = STATUS_ENUM_RE.match(line)
                if m:
                    declared.setdefault(m.group(1), line_no)

    design = os.path.join(REPO, "DESIGN.md")
    documented = {}
    in_table = False
    with open(design, encoding="utf-8") as f:
        for line_no, line in enumerate(f, 1):
            if STATUS_TABLE_BEGIN in line:
                in_table = True
                continue
            if STATUS_TABLE_END in line:
                in_table = False
                continue
            if in_table:
                m = STATUS_ROW_RE.match(line.strip())
                if m:
                    documented.setdefault(m.group(1), line_no)

    if not declared:
        finding(status_hpp, 1, "status_codes",
                "no `enum Code` enumerators found — lint parser out of date?")
    if not documented:
        finding(design, 1, "status_codes",
                "no status-code table found between the "
                "status-code-table-begin/end markers")
    for name in sorted(set(declared) - set(documented)):
        finding(status_hpp, declared[name], "status_codes",
                f"status code `{name}` is declared here but missing from the "
                "DESIGN.md status-code table")
    for name in sorted(set(documented) - set(declared)):
        finding(design, documented[name], "status_codes",
                f"status code `{name}` is documented but not declared in "
                "fault/status.hpp — stale table row?")


# ------------------------------------------------------------- bench json

BENCH_SCHEMA = "peek-bench-v1"
BENCH_FILE_RE = re.compile(r'^BENCH_(\d+)\.json$')
BENCH_TABLE_BEGIN = "<!-- bench-table-begin -->"
BENCH_TABLE_END = "<!-- bench-table-end -->"
BENCH_ROW_RE = re.compile(r'BENCH_(\d+)\.json')
BENCH_SECTIONS = ("schema", "schema_version", "pr", "build", "machine",
                  "config", "graphs", "metrics")


def check_bench_json():
    files = {}  # pr number -> filename
    for name in sorted(os.listdir(REPO)):
        m = BENCH_FILE_RE.match(name)
        if not m:
            continue
        pr = int(m.group(1))
        path = os.path.join(REPO, name)
        files[pr] = name
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            finding(path, 1, "bench_json", f"not valid JSON: {e}")
            continue
        missing = [k for k in BENCH_SECTIONS if k not in doc]
        if missing:
            finding(path, 1, "bench_json",
                    f"missing required section(s): {', '.join(missing)}")
            continue
        if doc["schema"] != BENCH_SCHEMA:
            finding(path, 1, "bench_json",
                    f"schema is {doc['schema']!r}, expected {BENCH_SCHEMA!r}")
        if not isinstance(doc["schema_version"], int):
            finding(path, 1, "bench_json",
                    f"schema_version must be an int, got "
                    f"{type(doc['schema_version']).__name__}")
        if doc["pr"] != pr:
            finding(path, 1, "bench_json",
                    f"pr field is {doc['pr']} but the filename says {pr} — "
                    "bench run committed under the wrong name?")
        for g in doc["graphs"]:
            for key in ("name", "vertices", "edges", "fingerprint"):
                if key not in g:
                    finding(path, 1, "bench_json",
                            f"graph entry {g.get('name', '?')!r} lacks "
                            f"`{key}`")
        for metric, st in doc["metrics"].items():
            for key in ("median_s", "min_s", "reps"):
                if not isinstance(st.get(key), (int, float)):
                    finding(path, 1, "bench_json",
                            f"metric `{metric}` lacks numeric `{key}`")
            # Optional tail-latency fields (sharded-serving storm rows):
            # when present they must be numeric, and they come in a pair —
            # bench_compare.py gates p99_s, so a lone p50_s would silently
            # escape the tail gate.
            for key in ("p50_s", "p99_s"):
                if key in st and not isinstance(st[key], (int, float)):
                    finding(path, 1, "bench_json",
                            f"metric `{metric}` has non-numeric `{key}`")
            if ("p50_s" in st) != ("p99_s" in st):
                finding(path, 1, "bench_json",
                        f"metric `{metric}` has only one of p50_s/p99_s — "
                        "storm rows carry both")

    readme = os.path.join(REPO, "README.md")
    documented = {}  # pr number -> line_no
    in_table = False
    with open(readme, encoding="utf-8") as f:
        for line_no, line in enumerate(f, 1):
            if BENCH_TABLE_BEGIN in line:
                in_table = True
                continue
            if BENCH_TABLE_END in line:
                in_table = False
                continue
            if in_table:
                for m in BENCH_ROW_RE.finditer(line):
                    documented.setdefault(int(m.group(1)), line_no)

    if files and not documented:
        finding(readme, 1, "bench_json",
                "no bench table found between the bench-table-begin/end "
                "markers — add one listing every committed BENCH_*.json")
    for pr in sorted(set(files) - set(documented)):
        finding(os.path.join(REPO, files[pr]), 1, "bench_json",
                f"{files[pr]} is committed but missing from the README bench "
                "table")
    for pr in sorted(set(documented) - set(files)):
        finding(readme, documented[pr], "bench_json",
                f"README bench table lists BENCH_{pr}.json but no such file "
                "is committed — stale row?")


# ----------------------------------------------------- breaker transitions

# DESIGN.md §14 names a metric for every circuit-breaker state transition.
# Cross-check the table against the `shard.breaker.*` names actually emitted
# in src/ (reusing EMIT_RE's literal-first-argument extraction), both
# directions: a transition without a metric is unobservable, a breaker
# metric outside the table is an undocumented state machine edge.
BREAKER_TABLE_BEGIN = "<!-- breaker-transition-table-begin -->"
BREAKER_TABLE_END = "<!-- breaker-transition-table-end -->"
BREAKER_ROW_RE = re.compile(r'`(shard\.breaker\.[a-z0-9_.]+)`')
BREAKER_PREFIX = "shard.breaker."


def check_breaker_transitions():
    emitted = {}  # metric -> (path, line_no) of first emission
    for path in source_files(SRC):
        with open(path, encoding="utf-8") as f:
            for line_no, line in enumerate(f, 1):
                for m in EMIT_RE.finditer(line):
                    if m.group(1).startswith(BREAKER_PREFIX):
                        emitted.setdefault(m.group(1), (path, line_no))

    design = os.path.join(REPO, "DESIGN.md")
    documented = {}
    in_table = False
    with open(design, encoding="utf-8") as f:
        for line_no, line in enumerate(f, 1):
            if BREAKER_TABLE_BEGIN in line:
                in_table = True
                continue
            if BREAKER_TABLE_END in line:
                in_table = False
                continue
            if in_table:
                for m in BREAKER_ROW_RE.finditer(line):
                    documented.setdefault(m.group(1), line_no)

    if not documented:
        finding(design, 1, "breaker_transitions",
                "no breaker transition table found between the "
                "breaker-transition-table-begin/end markers (DESIGN.md §14)")
    for name in sorted(set(emitted) - set(documented)):
        path, line_no = emitted[name]
        finding(path, line_no, "breaker_transitions",
                f"breaker metric `{name}` is emitted here but missing from "
                "the DESIGN.md §14 transition table — undocumented state "
                "machine edge")
    for name in sorted(set(documented) - set(emitted)):
        finding(design, documented[name], "breaker_transitions",
                f"transition metric `{name}` is documented but nothing in "
                "src/ emits it — the state machine edge lost its metric?")


# ------------------------------------------------- staleness contract

# The live-mutation pipeline's observable surface (DESIGN.md §15): every
# metric in these families and every `dyn.*` fault site must appear in the
# §15 staleness-contract table, and every table row must exist in code —
# the bounded-staleness serving contract is only auditable if its telemetry
# stays documented.
STALE_TABLE_BEGIN = "<!-- staleness-contract-begin -->"
STALE_TABLE_END = "<!-- staleness-contract-end -->"
STALE_ROW_RE = re.compile(r'`([a-z0-9_.]+)`')
STALE_METRIC_PREFIXES = (
    "dyn.", "serve.stale", "serve.staleness.", "serve.epoch_",
    "serve.coalesce_retries", "serve.inflight_invalidations",
    "serve.cache.region_", "serve.cache.restamps", "serve.batches",
    "shard.batches", "shard.epoch_", "shard.stale_",
)
STALE_SITE_PREFIX = "dyn."


def check_staleness_contract():
    required = {}  # name -> (path, line_no) of first emission/probe
    for path in source_files(SRC):
        with open(path, encoding="utf-8") as f:
            for line_no, line in enumerate(f, 1):
                for m in EMIT_RE.finditer(line):
                    if m.group(1).startswith(STALE_METRIC_PREFIXES):
                        required.setdefault(m.group(1), (path, line_no))
                for m in PROBE_RE.finditer(line):
                    if m.group(1).startswith(STALE_SITE_PREFIX):
                        required.setdefault(m.group(1), (path, line_no))

    design = os.path.join(REPO, "DESIGN.md")
    documented = {}
    in_table = False
    with open(design, encoding="utf-8") as f:
        for line_no, line in enumerate(f, 1):
            if STALE_TABLE_BEGIN in line:
                in_table = True
                continue
            if STALE_TABLE_END in line:
                in_table = False
                continue
            if in_table and line.strip().startswith("|"):
                m = STALE_ROW_RE.search(line)
                if m and m.group(1) not in ("name",):
                    documented.setdefault(m.group(1), line_no)

    if not documented:
        finding(design, 1, "staleness_contract",
                "no staleness-contract table found between the "
                "staleness-contract-begin/end markers (DESIGN.md §15)")
    for name in sorted(set(required) - set(documented)):
        path, line_no = required[name]
        finding(path, line_no, "staleness_contract",
                f"live-mutation metric/fault-site `{name}` is used here but "
                "missing from the DESIGN.md §15 staleness-contract table")
    for name in sorted(set(documented) - set(required)):
        finding(design, documented[name], "staleness_contract",
                f"`{name}` is documented in the §15 staleness contract but "
                "nothing in src/ emits or probes it — stale table row?")


# --------------------------------------------------------------- waivers

# The escape hatches tools/peek_analyze.py honors. Anything after the colon
# is the reason the waiver's author owes the next reader.
WAIVER_RE = re.compile(r'//\s*(no-cancel|status-ignored|ts-allow):(.*)$')
# Reasons that explain nothing on their own.
WAIVER_FILLER = {"ok", "okay", "fine", "yes", "todo", "fixme", "temp",
                 "temporary", "later", "reasons", "legacy", "intentional",
                 "by design", "safe", "ignore", "wip"}


def check_waivers():
    for path in source_files(SRC):
        with open(path, encoding="utf-8") as f:
            for line_no, line in enumerate(f, 1):
                m = WAIVER_RE.search(line)
                if not m:
                    continue
                marker, reason = m.group(1), m.group(2).strip()
                if reason.startswith("<"):
                    continue  # grammar documentation (`<reason>` placeholder)
                if line[:m.start()].count("`") % 2 == 1:
                    continue  # marker quoted inside a doc comment
                words = re.findall(r"[A-Za-z0-9_()\[\]./*-]+", reason)
                if (len(words) < 4 or len(reason) < 20
                        or reason.rstrip(".!").lower() in WAIVER_FILLER):
                    finding(path, line_no, "waivers",
                            f"`// {marker}:` waiver needs a substantive "
                            "issue-style reason (what makes the suppression "
                            f"sound), got {reason!r}")


CHECKS = {
    "metrics": check_metrics,
    "atomics": check_atomics,
    "headers": check_headers,
    "asserts": check_asserts,
    "fault_sites": check_fault_sites,
    "status_codes": check_status_codes,
    "bench_json": check_bench_json,
    "breaker_transitions": check_breaker_transitions,
    "staleness_contract": check_staleness_contract,
    "waivers": check_waivers,
}


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--skip", action="append", default=[],
                    choices=sorted(CHECKS), help="skip a check (repeatable)")
    ap.add_argument("--only", action="append", default=[],
                    choices=sorted(CHECKS), help="run only these checks")
    args = ap.parse_args()

    selected = args.only or [c for c in CHECKS if c not in args.skip]
    for name in selected:
        CHECKS[name]()

    for f in findings:
        print(f)
    if findings:
        print(f"peek_lint: {len(findings)} finding(s) in checks: "
              f"{', '.join(selected)}", file=sys.stderr)
        return 1
    print(f"peek_lint: clean ({', '.join(selected)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
