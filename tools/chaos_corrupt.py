#!/usr/bin/env python3
"""Seeded snapshot-corruption tool for the CI chaos job (DESIGN.md §10).

Applies one deterministic corruption to each snapshot file in a directory —
the same damage classes the in-process chaos suite (tests/test_recover.cpp)
drives, but from outside the process, against files a real peek_cli run
persisted. The serving layer must then warm-restart cleanly: every damaged
file quarantined to `*.corrupt` with a typed reason, every intact one loaded
bit-identical, zero crashes.

  tools/chaos_corrupt.py --dir snapshots/ --seed 3 [--kind truncate]

Kinds (default: seed-derived per file):
  truncate   cut the file at a random point
  bitflip    flip one random bit
  torntail   XOR-scribble the last T bytes, size unchanged

Exits 0 after corrupting at least one file, 2 when the directory holds no
snapshot files (CI treats that as a setup error, not a pass).
"""

import argparse
import os
import sys


def xorshift(state):
    state ^= (state << 13) & 0xFFFFFFFFFFFFFFFF
    state ^= state >> 7
    state ^= (state << 17) & 0xFFFFFFFFFFFFFFFF
    return state


KINDS = ("truncate", "bitflip", "torntail")


def corrupt(path, kind, rng):
    with open(path, "rb") as f:
        data = bytearray(f.read())
    if not data:
        return rng, "empty (left as-is)"
    rng = xorshift(rng)
    if kind == "truncate":
        cut = rng % len(data)
        data = data[:cut]
        what = f"truncated to {cut} bytes"
    elif kind == "bitflip":
        at = rng % len(data)
        rng = xorshift(rng)
        bit = rng % 8
        data[at] ^= 1 << bit
        what = f"flipped bit {bit} at byte {at}"
    else:  # torntail
        tail = 1 + rng % (max(2, len(data)) // 2)
        for i in range(tail):
            data[len(data) - 1 - i] ^= 0x5A
        what = f"scribbled last {tail} bytes"
    with open(path, "wb") as f:
        f.write(data)
    return rng, what


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--dir", required=True, help="snapshot directory")
    ap.add_argument("--seed", type=int, default=1, help="corruption seed")
    ap.add_argument("--kind", choices=KINDS,
                    help="damage class (default: seed-derived per file)")
    args = ap.parse_args()

    names = sorted(
        n for n in os.listdir(args.dir)
        if os.path.isfile(os.path.join(args.dir, n))
        and not n.endswith((".corrupt", ".reason", ".tmp")))
    if not names:
        print(f"chaos_corrupt: no snapshot files in {args.dir}",
              file=sys.stderr)
        return 2

    rng = (args.seed + 1) * 6364136223846793005 & 0xFFFFFFFFFFFFFFFF
    for name in names:
        rng = xorshift(rng)
        kind = args.kind or KINDS[rng % len(KINDS)]
        rng, what = corrupt(os.path.join(args.dir, name), kind, rng)
        print(f"chaos_corrupt: {name}: {kind}: {what}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
