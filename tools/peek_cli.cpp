// peek — command-line K shortest paths.
//
//   peek --graph web.gr --format dimacs --source 4 --target 912 --k 8
//   peek --gen rmat --scale 14 --k 16 --algo yen --pairs 4 --seed 7
//
// Loads (or generates) a graph, answers one or many KSP queries with any of
// the implemented algorithms, and prints paths or timing summaries. This is
// the downstream-user entry point; every library feature is reachable from
// here without writing C++.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <map>
#include <optional>
#include <string>

#include <algorithm>

#include "core/batch.hpp"
#include "fault/injector.hpp"
#include "core/shortest_k_group.hpp"
#include "serve/query_engine.hpp"
#include "shard/fleet.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "ksp/node_classification.hpp"
#include "ksp/optyen.hpp"
#include "ksp/pnc.hpp"
#include "ksp/sidetrack.hpp"
#include "ksp/yen.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace peek;

struct Args {
  std::map<std::string, std::string> kv;

  bool has(const std::string& key) const { return kv.count(key) > 0; }
  std::string get(const std::string& key, const std::string& fallback) const {
    auto it = kv.find(key);
    return it == kv.end() ? fallback : it->second;
  }
  long get_int(const std::string& key, long fallback) const {
    auto it = kv.find(key);
    return it == kv.end() ? fallback : std::stol(it->second);
  }
  double get_double(const std::string& key, double fallback) const {
    auto it = kv.find(key);
    return it == kv.end() ? fallback : std::stod(it->second);
  }
};

void usage() {
  std::puts(
      "peek - K shortest simple paths\n"
      "\n"
      "input (one of):\n"
      "  --graph PATH --format {edgelist|dimacs|binary}   load a graph file\n"
      "  --gen {rmat|er|smallworld|prefattach|grid} [--scale S] [--n N]\n"
      "        [--weights {random|unit}] [--seed X]        generate one\n"
      "\n"
      "query:\n"
      "  --source V --target V      a single query, prints the paths\n"
      "  --pairs N                  N random reachable pairs, prints timings\n"
      "  --k K                      number of paths (default 8)\n"
      "  --groups G                 GQL SHORTEST-k-GROUP mode instead\n"
      "\n"
      "serving (repeated-query driver over the serve/ layer):\n"
      "  --serve N                  answer N queries drawn Zipfian from a\n"
      "                             pool of random pairs, print hit rates\n"
      "                             and latency percentiles\n"
      "  --pool P                   distinct (s,t) pairs in the pool (16)\n"
      "  --zipf THETA               Zipf skew across the pool (0.99)\n"
      "  --cache-mb M               artifact-cache byte budget (256)\n"
      "  --deadline-ms D            per-query deadline; tripped queries\n"
      "                             return their partial paths (0 = none)\n"
      "  --max-inflight Q           admission bound; excess queries are shed\n"
      "                             to degraded cached answers (0 = off)\n"
      "  --snapshot-dir PATH        crash-safe persistence: warm-restart the\n"
      "                             cache from PATH's snapshots on startup\n"
      "                             (validating and quarantining corrupt\n"
      "                             files), spill the cache back on exit\n"
      "  --no-warm-restart          with --snapshot-dir: write snapshots but\n"
      "                             ignore existing ones on startup\n"
      "\n"
      "sharded serving (consistent-hash fleet, DESIGN.md §12):\n"
      "  --shards S                 serve through a fleet of S shards instead\n"
      "                             of one engine (with --serve)\n"
      "  --replicas R               replicas per shard (default 1)\n"
      "  --hedge-ms H               fire a duplicate attempt on another\n"
      "                             replica if none completed within H ms;\n"
      "                             the loser is cancelled (0 = off)\n"
      "\n"
      "algorithm:\n"
      "  --algo {peek|yen|nc|optyen|sb|sbstar|pnc|pncstar}  (default peek)\n"
      "  --parallel                 two-level parallel execution\n"
      "  --alpha A                  adaptive compaction threshold (peek)\n"
      "  --stats                    print graph statistics and exit\n"
      "\n"
      "observability:\n"
      "  PEEK_METRICS=out.json      dump the pipeline metrics registry\n"
      "                             (stage timers, SSSP/prune/compaction\n"
      "                             counters) as JSON on exit\n");
}

graph::CsrGraph load_graph(const Args& args) {
  if (args.has("graph")) {
    const std::string path = args.get("graph", "");
    const std::string format = args.get("format", "edgelist");
    if (format == "dimacs") return graph::read_dimacs_file(path);
    if (format == "binary") return graph::read_binary_file(path);
    if (format == "edgelist") return graph::read_edge_list_file(path);
    throw std::runtime_error("unknown --format " + format);
  }
  graph::WeightOptions w;
  w.kind = args.get("weights", "random") == "unit" ? graph::WeightKind::kUnit
                                                   : graph::WeightKind::kUniform01;
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  w.seed = seed + 1;
  const std::string gen = args.get("gen", "rmat");
  const int scale = static_cast<int>(args.get_int("scale", 14));
  const vid_t n = static_cast<vid_t>(args.get_int("n", 1 << scale));
  if (gen == "rmat") return graph::rmat(scale, 8, w, seed);
  if (gen == "er") return graph::erdos_renyi(n, static_cast<eid_t>(n) * 8, w, seed);
  if (gen == "smallworld") return graph::small_world(n, 8, 0.05, w, seed);
  if (gen == "prefattach") return graph::preferential_attachment(n, 4, w, seed);
  if (gen == "grid") {
    const vid_t side = static_cast<vid_t>(std::max(2.0, std::sqrt(double(n))));
    return graph::grid(side, side, w, seed);
  }
  throw std::runtime_error("unknown --gen " + gen);
}

ksp::KspResult run_algorithm(const std::string& algo, const graph::CsrGraph& g,
                             vid_t s, vid_t t, const ksp::KspOptions& ko) {
  if (algo == "yen") return ksp::yen_ksp(g, s, t, ko);
  if (algo == "nc") return ksp::nc_ksp(g, s, t, ko);
  if (algo == "optyen") return ksp::optyen_ksp(g, s, t, ko);
  if (algo == "sb") return ksp::sb_ksp(g, s, t, ko);
  if (algo == "sbstar") return ksp::sb_star_ksp(g, s, t, ko);
  if (algo == "pnc") return ksp::pnc_ksp(g, s, t, ko);
  if (algo == "pncstar") return ksp::pnc_star_ksp(g, s, t, ko);
  throw std::runtime_error("unknown --algo " + algo);
}

/// Random (source, reachable target) pairs, deterministic in `seed`.
std::vector<std::pair<vid_t, vid_t>> sample_reachable_pairs(
    const graph::CsrGraph& g, int count, std::uint64_t seed) {
  std::vector<std::pair<vid_t, vid_t>> pairs;
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<vid_t> pick(0, g.num_vertices() - 1);
  auto fwd = sssp::GraphView(g);
  while (static_cast<int>(pairs.size()) < count) {
    const vid_t s = pick(rng);
    auto r = sssp::dijkstra(fwd, s);
    std::vector<vid_t> reach;
    for (vid_t v = 0; v < g.num_vertices(); ++v)
      if (v != s && r.dist[v] != kInfDist) reach.push_back(v);
    if (reach.empty()) continue;
    std::uniform_int_distribution<size_t> pick_t(0, reach.size() - 1);
    pairs.emplace_back(s, reach[pick_t(rng)]);
  }
  return pairs;
}

/// Sharded serving driver (--shards): the same Zipf storm, routed through a
/// shard::ShardFleet — per-shard latency digests and hedge/failover tallies
/// come out the other end.
int run_serve_sharded(const graph::CsrGraph& g, const Args& args, int k,
                      bool parallel) {
  const int n_queries = static_cast<int>(args.get_int("serve", 64));
  const int pool_size = static_cast<int>(args.get_int("pool", 16));
  const double theta = args.get_double("zipf", 0.99);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  shard::FleetOptions fo;
  fo.router.shards = static_cast<int>(args.get_int("shards", 4));
  fo.replicas = static_cast<int>(args.get_int("replicas", 1));
  fo.hedge = std::chrono::milliseconds(args.get_int("hedge-ms", 0));
  fo.default_deadline =
      std::chrono::milliseconds(args.get_int("deadline-ms", 0));
  fo.serve.peek.parallel = parallel;
  // --cache-mb is the fleet-wide budget; each replica gets its slice.
  const int total_replicas = std::max(1, fo.router.shards * fo.replicas);
  fo.serve.cache.byte_budget =
      (static_cast<std::size_t>(args.get_int("cache-mb", 256)) << 20) /
      static_cast<std::size_t>(total_replicas);
  fo.serve.max_inflight = static_cast<int>(args.get_int("max-inflight", 0));
  fo.max_queue = static_cast<int>(args.get_int("max-inflight", 0));
  fault::Injector::global().configure_from_env();
  shard::ShardFleet fleet(g, fo);

  const auto pool = sample_reachable_pairs(g, pool_size, seed);
  std::vector<double> cdf(pool.size());
  double acc = 0;
  for (size_t i = 0; i < pool.size(); ++i) {
    acc += std::pow(static_cast<double>(i + 1), -theta);
    cdf[i] = acc;
  }
  std::mt19937_64 rng(seed ^ 0x5e47e);
  std::uniform_real_distribution<double> uni(0.0, acc);

  std::vector<double> lat;
  lat.reserve(static_cast<size_t>(n_queries));
  int hedged = 0, hedge_wins = 0, failovers = 0, degraded = 0, faulted = 0;
  for (int q = 0; q < n_queries; ++q) {
    const size_t rank = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), uni(rng)) - cdf.begin());
    const auto [s, t] = pool[std::min(rank, pool.size() - 1)];
    auto r = fleet.query(s, t, k);
    lat.push_back(r.seconds);
    hedged += r.hedged ? 1 : 0;
    hedge_wins += r.hedge_won ? 1 : 0;
    failovers += r.failover ? 1 : 0;
    degraded += r.result.degraded ? 1 : 0;
    faulted += r.result.status.ok() ? 0 : 1;
  }
  std::sort(lat.begin(), lat.end());
  auto pct = [&](double p) {
    return lat[std::min(lat.size() - 1,
                        static_cast<size_t>(p * double(lat.size())))];
  };
  std::printf(
      "served %d queries across %d shards x %d replicas "
      "(pool %zu, zipf %.2f, k %d, hedge %lld ms)\n"
      "hedged %d (wins %d), failovers %d, degraded %d, faults %d\n"
      "latency p50 %.6fs  p90 %.6fs  p99 %.6fs\n",
      n_queries, fleet.shards(), fleet.replicas(), pool.size(), theta, k,
      static_cast<long long>(fo.hedge.count()), hedged, hedge_wins,
      failovers, degraded, faulted, pct(0.50), pct(0.90), pct(0.99));
  const auto st = fleet.stats();
  for (size_t i = 0; i < st.size(); ++i) {
    std::printf("shard %zu: %llu queries, p50 %.6fs, p99 %.6fs\n", i,
                static_cast<unsigned long long>(st[i].count), st[i].p50_s,
                st[i].p99_s);
  }
  fleet.publish_latency_metrics();  // shard.* gauges for PEEK_METRICS dumps
  return 0;
}

/// Repeated-query serving driver: N queries drawn Zipfian over a pool of
/// pairs through serve::QueryEngine, reporting hit rates and latency
/// percentiles — the shape of a production deployment, from the shell.
int run_serve(const graph::CsrGraph& g, const Args& args, int k,
              bool parallel) {
  if (args.get_int("shards", 0) > 0) return run_serve_sharded(g, args, k, parallel);
  const int n_queries = static_cast<int>(args.get_int("serve", 64));
  const int pool_size = static_cast<int>(args.get_int("pool", 16));
  const double theta = args.get_double("zipf", 0.99);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  serve::ServeOptions so;
  so.peek.parallel = parallel;
  so.cache.byte_budget =
      static_cast<std::size_t>(args.get_int("cache-mb", 256)) << 20;
  so.default_deadline =
      std::chrono::milliseconds(args.get_int("deadline-ms", 0));
  so.max_inflight = static_cast<int>(args.get_int("max-inflight", 0));
  so.snapshot_dir = args.get("snapshot-dir", "");
  so.warm_restart = !args.has("no-warm-restart");
  // PEEK_FAULT_SEED & friends: deterministic fault injection from the shell
  // (DESIGN.md §9). Inert when the variables are unset.
  fault::Injector::global().configure_from_env();
  serve::QueryEngine engine(g, so);
  if (!so.snapshot_dir.empty() && engine.restored_artifacts() > 0)
    std::printf("warm restart: %d artifacts restored from %s\n",
                engine.restored_artifacts(), so.snapshot_dir.c_str());

  const auto pool = sample_reachable_pairs(g, pool_size, seed);
  // Zipf over pool ranks: weight(i) = (i+1)^-theta, sampled by inverse CDF.
  std::vector<double> cdf(pool.size());
  double acc = 0;
  for (size_t i = 0; i < pool.size(); ++i) {
    acc += std::pow(static_cast<double>(i + 1), -theta);
    cdf[i] = acc;
  }
  std::mt19937_64 rng(seed ^ 0x5e47e);
  std::uniform_real_distribution<double> uni(0.0, acc);

  std::vector<double> lat;
  lat.reserve(static_cast<size_t>(n_queries));
  int hits = 0, tree_hits = 0, extensions = 0;
  int deadline_trips = 0, degraded = 0, faulted = 0;
  for (int q = 0; q < n_queries; ++q) {
    const size_t rank = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), uni(rng)) - cdf.begin());
    const auto [s, t] = pool[std::min(rank, pool.size() - 1)];
    auto r = engine.query(s, t, k);
    lat.push_back(r.seconds);
    hits += r.snapshot_hit ? 1 : 0;
    tree_hits += (r.fwd_tree_hit || r.rev_tree_hit) ? 1 : 0;
    extensions += r.extended ? 1 : 0;
    deadline_trips += r.status == fault::Status::kDeadlineExceeded ? 1 : 0;
    degraded += r.degraded ? 1 : 0;
    faulted += (!r.status.ok() &&
                r.status.code != fault::Status::kDeadlineExceeded)
                   ? 1
                   : 0;
  }
  std::sort(lat.begin(), lat.end());
  auto pct = [&](double p) {
    return lat[std::min(lat.size() - 1,
                        static_cast<size_t>(p * double(lat.size())))];
  };
  const auto cs = engine.cache().stats();
  std::printf(
      "served %d queries (pool %zu, zipf %.2f, k %d)\n"
      "snapshot hits %d (%.1f%%), tree-assisted misses %d, extensions %d\n"
      "deadline trips %d, degraded answers %d, other faults %d\n"
      "latency p50 %.6fs  p90 %.6fs  p99 %.6fs\n"
      "cache: %zu entries, %.1f MiB used, %lld evictions\n",
      n_queries, pool.size(), theta, k, hits,
      100.0 * hits / std::max(1, n_queries), tree_hits, extensions,
      deadline_trips, degraded, faulted, pct(0.50), pct(0.90), pct(0.99),
      cs.entries, double(cs.bytes_used) / double(1 << 20),
      static_cast<long long>(cs.evictions));
  if (!so.snapshot_dir.empty()) {
    const int written = engine.persist();
    std::printf("persisted %d snapshot files to %s\n", written,
                so.snapshot_dir.c_str());
  }
  return 0;
}

/// PEEK_METRICS=path env hook: dump the global registry as JSON on any exit
/// path (registered via atexit so every `return` in main is covered).
void dump_metrics_at_exit() {
  const char* path = std::getenv("PEEK_METRICS");
  if (!path || !*path) return;
  if (!obs::write_metrics_json(path,
                               obs::MetricsRegistry::global().snapshot())) {
    std::fprintf(stderr, "warning: failed to write PEEK_METRICS file %s\n",
                 path);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::atexit(dump_metrics_at_exit);
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
      usage();
      return 2;
    }
    key.erase(0, 2);  // drop "--" (erase, not substr: GCC 12's -Wrestrict
                      // false-positives on self-assignment from a substr)
    if (key == "help") {
      usage();
      return 0;
    }
    // Flags without values.
    if (key == "parallel" || key == "stats" || key == "no-warm-restart") {
      args.kv.emplace(key, "1");
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for --%s\n", key.c_str());
      return 2;
    }
    args.kv[key] = argv[++i];
  }

  try {
    graph::CsrGraph g = load_graph(args);
    if (args.has("stats")) {
      std::printf("%s\n", graph::to_string(graph::compute_stats(g)).c_str());
      return 0;
    }

    const int k = static_cast<int>(args.get_int("k", 8));
    const std::string algo = args.get("algo", "peek");
    const bool parallel = args.has("parallel");

    if (args.has("serve")) return run_serve(g, args, k, parallel);

    if (args.has("groups")) {
      core::PeekOptions po;
      po.parallel = parallel;
      auto r = core::shortest_k_groups(
          g, static_cast<vid_t>(args.get_int("source", 0)),
          static_cast<vid_t>(args.get_int("target", 1)),
          static_cast<int>(args.get_int("groups", 3)), po);
      for (size_t i = 0; i < r.groups.size(); ++i) {
        std::printf("group %zu (dist %.6f, %zu paths)\n", i + 1,
                    r.groups[i].dist, r.groups[i].paths.size());
        for (const auto& p : r.groups[i].paths)
          std::printf("  %s\n", sssp::to_string(p).c_str());
      }
      return 0;
    }

    if (args.has("source") && args.has("target")) {
      const auto s = static_cast<vid_t>(args.get_int("source", 0));
      const auto t = static_cast<vid_t>(args.get_int("target", 0));
      if (algo == "peek") {
        core::PeekOptions po;
        po.k = k;
        po.parallel = parallel;
        po.alpha = args.get_double("alpha", 0.5);
        auto r = core::peek_ksp(g, s, t, po);
        std::printf("b=%.6f kept %d/%d vertices, %s compaction, "
                    "%.4f/%.4f/%.4fs prune/compact/ksp\n",
                    r.upper_bound, r.kept_vertices, g.num_vertices(),
                    compact::to_string(r.strategy_used), r.prune_seconds,
                    r.compact_seconds, r.ksp_seconds);
        for (const auto& p : r.ksp.paths)
          std::printf("%s\n", sssp::to_string(p).c_str());
      } else {
        ksp::KspOptions ko;
        ko.k = k;
        ko.parallel = parallel;
        auto r = run_algorithm(algo, g, s, t, ko);
        std::printf("%d SSSP calls, %d tree shortcuts\n", r.stats.sssp_calls,
                    r.stats.tree_shortcuts);
        for (const auto& p : r.paths)
          std::printf("%s\n", sssp::to_string(p).c_str());
      }
      return 0;
    }

    // Batch mode over random pairs.
    const int pairs = static_cast<int>(args.get_int("pairs", 4));
    std::vector<core::BatchQuery> queries;
    for (auto [s, t] : sample_reachable_pairs(
             g, pairs, static_cast<std::uint64_t>(args.get_int("seed", 1)))) {
      queries.push_back({s, t});
    }
    core::BatchOptions bo;
    bo.per_query.k = k;
    bo.parallel_queries = parallel;
    auto batch = core::peek_ksp_batch(g, queries, bo);
    double avg = 0;
    for (size_t i = 0; i < queries.size(); ++i) {
      const auto& r = batch.results[i];
      std::printf("pair %zu: %d->%d, %zu paths, kept %d vertices, %.4fs\n",
                  i + 1, queries[i].s, queries[i].t, r.ksp.paths.size(),
                  r.kept_vertices, r.total_seconds());
      avg += r.total_seconds();
    }
    std::printf("batch wall %.4fs, avg per query %.4fs\n", batch.wall_seconds,
                avg / queries.size());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
