// Core scalar types shared by every module.
#pragma once

#include <cstdint>
#include <limits>

namespace peek {

/// Vertex identifier. Graphs up to ~2 billion vertices.
using vid_t = std::int32_t;

/// Edge identifier / edge-array index. Graphs beyond 2^31 edges are supported.
using eid_t = std::int64_t;

/// Edge weight / path distance. The paper requires strictly positive weights.
using weight_t = double;

/// Sentinel distance for "unreachable".
inline constexpr weight_t kInfDist = std::numeric_limits<weight_t>::infinity();

/// Sentinel parent for roots / unreached vertices in shortest-path trees.
inline constexpr vid_t kNoVertex = -1;

/// Sentinel edge index.
inline constexpr eid_t kNoEdge = -1;

}  // namespace peek
