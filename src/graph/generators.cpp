#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/builder.hpp"

namespace peek::graph {

weight_t sample_weight(const WeightOptions& w, std::mt19937_64& rng) {
  switch (w.kind) {
    case WeightKind::kUnit:
      return 1.0;
    case WeightKind::kUniform01: {
      std::uniform_real_distribution<double> dist(0.0, 1.0);
      double x = dist(rng);
      // (0, 1]: exclude exactly zero (Definition 1 requires w > 0).
      return x == 0.0 ? 1.0 : x;
    }
    case WeightKind::kPowerLaw: {
      std::uniform_real_distribution<double> dist(0.0, 1.0);
      double u = dist(rng);
      // Inverse-CDF of a truncated Pareto mapped into (0, 1].
      double x = std::pow(1.0 - u * (1.0 - 1e-3), 2.0);
      return std::clamp(x, 1e-6, 1.0);
    }
  }
  return 1.0;
}

namespace {

/// One R-MAT edge: recursively descend the adjacency-matrix quadrants.
CooEdge rmat_edge(int scale, double a, double b, double c,
                  std::mt19937_64& rng, const WeightOptions& wopt,
                  std::mt19937_64& wrng) {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  vid_t u = 0, v = 0;
  for (int bit = 0; bit < scale; ++bit) {
    double r = dist(rng);
    int quadrant;
    if (r < a) quadrant = 0;
    else if (r < a + b) quadrant = 1;
    else if (r < a + b + c) quadrant = 2;
    else quadrant = 3;
    u = (u << 1) | (quadrant >> 1);
    v = (v << 1) | (quadrant & 1);
  }
  return {u, v, sample_weight(wopt, wrng)};
}

}  // namespace

CsrGraph rmat(int scale, int edge_factor, const WeightOptions& wopt,
              std::uint64_t seed, double a, double b, double c) {
  if (scale < 1 || scale > 30) throw std::invalid_argument("rmat: bad scale");
  const vid_t n = vid_t{1} << scale;
  const eid_t m = static_cast<eid_t>(n) * edge_factor;
  std::mt19937_64 rng(seed);
  std::mt19937_64 wrng(wopt.seed);
  std::vector<CooEdge> edges;
  edges.reserve(static_cast<size_t>(m));
  for (eid_t i = 0; i < m; ++i)
    edges.push_back(rmat_edge(scale, a, b, c, rng, wopt, wrng));
  return from_edges(n, edges);
}

CsrGraph erdos_renyi(vid_t n, eid_t m, const WeightOptions& wopt,
                     std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::mt19937_64 wrng(wopt.seed);
  std::uniform_int_distribution<vid_t> pick(0, n - 1);
  std::vector<CooEdge> edges;
  edges.reserve(static_cast<size_t>(m));
  for (eid_t i = 0; i < m; ++i)
    edges.push_back({pick(rng), pick(rng), sample_weight(wopt, wrng)});
  return from_edges(n, edges);
}

CsrGraph small_world(vid_t n, int k, double beta, const WeightOptions& wopt,
                     std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::mt19937_64 wrng(wopt.seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<vid_t> pick(0, n - 1);
  std::vector<CooEdge> edges;
  edges.reserve(static_cast<size_t>(n) * k);
  for (vid_t u = 0; u < n; ++u) {
    for (int j = 1; j <= k; ++j) {
      vid_t v = static_cast<vid_t>((u + j) % n);
      if (coin(rng) < beta) v = pick(rng);
      edges.push_back({u, v, sample_weight(wopt, wrng)});
    }
  }
  return from_edges(n, edges);
}

CsrGraph preferential_attachment(vid_t n, int k, const WeightOptions& wopt,
                                 std::uint64_t seed) {
  if (n <= k) throw std::invalid_argument("preferential_attachment: n <= k");
  std::mt19937_64 rng(seed);
  std::mt19937_64 wrng(wopt.seed);
  // `targets` holds one entry per edge endpoint; sampling uniformly from it
  // is sampling proportionally to degree.
  std::vector<vid_t> targets;
  targets.reserve(static_cast<size_t>(n) * k * 2);
  std::vector<CooEdge> edges;
  edges.reserve(static_cast<size_t>(n) * k * 2);
  // Seed clique over the first k+1 vertices.
  for (vid_t u = 0; u <= k; ++u) {
    for (vid_t v = 0; v <= k; ++v) {
      if (u == v) continue;
      edges.push_back({u, v, sample_weight(wopt, wrng)});
      targets.push_back(v);
    }
  }
  for (vid_t u = static_cast<vid_t>(k + 1); u < n; ++u) {
    for (int j = 0; j < k; ++j) {
      std::uniform_int_distribution<size_t> pick(0, targets.size() - 1);
      vid_t v = targets[pick(rng)];
      edges.push_back({u, v, sample_weight(wopt, wrng)});
      edges.push_back({v, u, sample_weight(wopt, wrng)});
      targets.push_back(v);
      targets.push_back(u);
    }
  }
  return from_edges(n, edges);
}

CsrGraph grid(vid_t rows, vid_t cols, const WeightOptions& wopt,
              std::uint64_t seed) {
  (void)seed;
  std::mt19937_64 wrng(wopt.seed);
  const vid_t n = rows * cols;
  std::vector<CooEdge> edges;
  edges.reserve(static_cast<size_t>(n) * 4);
  auto id = [cols](vid_t r, vid_t c) { return r * cols + c; };
  for (vid_t r = 0; r < rows; ++r) {
    for (vid_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        edges.push_back({id(r, c), id(r, c + 1), sample_weight(wopt, wrng)});
        edges.push_back({id(r, c + 1), id(r, c), sample_weight(wopt, wrng)});
      }
      if (r + 1 < rows) {
        edges.push_back({id(r, c), id(r + 1, c), sample_weight(wopt, wrng)});
        edges.push_back({id(r + 1, c), id(r, c), sample_weight(wopt, wrng)});
      }
    }
  }
  return from_edges(n, edges);
}

CsrGraph path(vid_t n, const WeightOptions& wopt, std::uint64_t seed) {
  (void)seed;
  std::mt19937_64 wrng(wopt.seed);
  std::vector<CooEdge> edges;
  edges.reserve(static_cast<size_t>(n));
  for (vid_t u = 0; u + 1 < n; ++u)
    edges.push_back({u, static_cast<vid_t>(u + 1), sample_weight(wopt, wrng)});
  return from_edges(n, edges);
}

CsrGraph layered_dag(int layers, vid_t width, int fanout,
                     const WeightOptions& wopt, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::mt19937_64 wrng(wopt.seed);
  std::uniform_int_distribution<vid_t> pick(0, width - 1);
  const vid_t n = static_cast<vid_t>(layers) * width;
  std::vector<CooEdge> edges;
  for (int l = 0; l + 1 < layers; ++l) {
    for (vid_t i = 0; i < width; ++i) {
      const vid_t u = static_cast<vid_t>(l) * width + i;
      for (int f = 0; f < fanout; ++f) {
        const vid_t v = static_cast<vid_t>(l + 1) * width + pick(rng);
        edges.push_back({u, v, sample_weight(wopt, wrng)});
      }
    }
  }
  return from_edges(n, edges);
}

CsrGraph complete(vid_t n, const WeightOptions& wopt, std::uint64_t seed) {
  (void)seed;
  std::mt19937_64 wrng(wopt.seed);
  std::vector<CooEdge> edges;
  edges.reserve(static_cast<size_t>(n) * (n - 1));
  for (vid_t u = 0; u < n; ++u)
    for (vid_t v = 0; v < n; ++v)
      if (u != v) edges.push_back({u, v, sample_weight(wopt, wrng)});
  return from_edges(n, edges);
}

}  // namespace peek::graph
