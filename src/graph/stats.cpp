#include "graph/stats.hpp"

#include <algorithm>
#include <deque>
#include <sstream>

namespace peek::graph {

GraphStats compute_stats(const CsrGraph& g) {
  GraphStats s;
  s.n = g.num_vertices();
  s.m = g.num_edges();
  s.avg_out_degree = s.n ? static_cast<double>(s.m) / s.n : 0.0;
  std::vector<bool> has_in(static_cast<size_t>(s.n), false);
  for (eid_t e = 0; e < s.m; ++e) has_in[g.col()[e]] = true;
  for (vid_t v = 0; v < s.n; ++v) {
    s.max_out_degree = std::max(s.max_out_degree, g.degree(v));
    if (g.degree(v) == 0 && !has_in[v]) s.isolated_vertices++;
  }
  if (s.m > 0) {
    auto [mn, mx] = std::minmax_element(g.weights().begin(), g.weights().end());
    s.min_weight = *mn;
    s.max_weight = *mx;
  }
  return s;
}

std::string to_string(const GraphStats& s) {
  std::ostringstream os;
  os << "n=" << s.n << " m=" << s.m << " davg=" << s.avg_out_degree
     << " dmax=" << s.max_out_degree << " isolated=" << s.isolated_vertices
     << " w=[" << s.min_weight << "," << s.max_weight << "]";
  return os.str();
}

namespace {
std::vector<bool> bfs(const CsrGraph& g, vid_t start) {
  std::vector<bool> seen(static_cast<size_t>(g.num_vertices()), false);
  std::deque<vid_t> queue{start};
  seen[start] = true;
  while (!queue.empty()) {
    const vid_t u = queue.front();
    queue.pop_front();
    for (vid_t v : g.neighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        queue.push_back(v);
      }
    }
  }
  return seen;
}
}  // namespace

std::vector<bool> reachable_from(const CsrGraph& g, vid_t src) {
  return bfs(g, src);
}

std::vector<bool> reaching_to(const CsrGraph& g, vid_t dst) {
  return bfs(g.reverse(), dst);
}

}  // namespace peek::graph
