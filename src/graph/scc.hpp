// Strongly connected components (iterative Tarjan). Used by the bench
// harness to sample source/target pairs that are guaranteed mutually
// reachable, and generally useful for preprocessing KSP queries (an s-t pair
// in one SCC always has K paths for any K up to the path count).
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace peek::graph {

struct SccResult {
  /// Component id per vertex (0-based, reverse topological order:
  /// a component's id is >= the ids of components it can reach).
  std::vector<vid_t> component;
  vid_t num_components = 0;

  /// Size of each component.
  std::vector<vid_t> sizes() const;
  /// Id of a largest component.
  vid_t largest() const;
};

SccResult strongly_connected_components(const CsrGraph& g);

}  // namespace peek::graph
