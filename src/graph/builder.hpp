// COO → CSR builder with dedup / self-loop policies.
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace peek::graph {

/// A single weighted arc in COO form.
struct CooEdge {
  vid_t src;
  vid_t dst;
  weight_t weight;
};

/// Accumulates edges and converts to CSR. Not thread-safe; one builder per
/// thread, then merge edge lists if building in parallel.
class Builder {
 public:
  /// `n` is the number of vertices; all edge endpoints must be < n.
  explicit Builder(vid_t n) : n_(n) {}

  /// Adds a directed edge u -> v. Weights must be > 0 (paper's Definition 1).
  void add_edge(vid_t u, vid_t v, weight_t w);

  /// Adds both u -> v and v -> u.
  void add_undirected_edge(vid_t u, vid_t v, weight_t w);

  /// Bulk append.
  void add_edges(const std::vector<CooEdge>& edges);

  vid_t num_vertices() const { return n_; }
  eid_t num_edges() const { return static_cast<eid_t>(edges_.size()); }

  /// When true (default), parallel edges keep only the lightest copy and
  /// self-loops are dropped — self-loops can never be part of a simple path.
  void set_dedup(bool dedup) { dedup_ = dedup; }

  /// Builds the CSR. The builder may be reused afterwards (edges retained).
  CsrGraph build() const;

 private:
  vid_t n_;
  bool dedup_ = true;
  std::vector<CooEdge> edges_;
};

/// Convenience: build a CSR directly from an edge list.
CsrGraph from_edges(vid_t n, const std::vector<CooEdge>& edges, bool dedup = true);

}  // namespace peek::graph
