// Compressed sparse row (CSR) representation of a directed, weighted graph.
//
// This is the static graph substrate every algorithm in the library runs on.
// It mirrors the layout described in §5.1 of the paper: a begin-position array
// of length n+1 and an adjacency list of length m, plus a parallel weight
// array. A reverse CSR (incoming edges) is built on demand and cached so the
// reverse SSSP in K-upper-bound pruning and the reverse shortest-path trees in
// the KSP algorithms can traverse in-edges at the same cost as out-edges.
#pragma once

#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "check/invariants.hpp"
#include "graph/types.hpp"

namespace peek::graph {

/// One outgoing (or incoming, in a reverse view) edge.
struct Edge {
  vid_t to;
  weight_t weight;
};

/// Immutable CSR digraph. Construct via `Builder` (builder.hpp) or the
/// generators; direct construction from raw arrays is available for tests.
class CsrGraph {
 public:
  CsrGraph() = default;

  /// Takes ownership of pre-validated CSR arrays.
  /// `row_offsets.size() == n+1`, `col.size() == weights.size() == m`,
  /// offsets monotonically non-decreasing, column ids in [0, n).
  CsrGraph(std::vector<eid_t> row_offsets, std::vector<vid_t> col,
           std::vector<weight_t> weights);

  vid_t num_vertices() const { return n_; }
  eid_t num_edges() const { return m_; }

  /// Out-degree of `v`.
  eid_t degree(vid_t v) const {
    PEEK_DCHECK(v >= 0 && v < n_);
    return row_[v + 1] - row_[v];
  }

  /// Edge-array index range [begin, end) of v's out-edges.
  eid_t edge_begin(vid_t v) const { return row_[v]; }
  eid_t edge_end(vid_t v) const { return row_[v + 1]; }

  vid_t edge_target(eid_t e) const { return col_[e]; }
  weight_t edge_weight(eid_t e) const { return wgt_[e]; }

  /// Out-neighbours of `v` as parallel spans (targets, weights).
  std::span<const vid_t> neighbors(vid_t v) const {
    return {col_.data() + row_[v], static_cast<size_t>(degree(v))};
  }
  std::span<const weight_t> neighbor_weights(vid_t v) const {
    return {wgt_.data() + row_[v], static_cast<size_t>(degree(v))};
  }

  std::span<const eid_t> row_offsets() const { return row_; }
  std::span<const vid_t> col() const { return col_; }
  std::span<const weight_t> weights() const { return wgt_; }

  /// Returns the edge index of (u,v) or kNoEdge. Linear in deg(u).
  eid_t find_edge(vid_t u, vid_t v) const;

  /// Total weight of all edges (used by tests and stats).
  weight_t total_weight() const;

  /// The transposed graph (every edge reversed). Built lazily, cached, and
  /// safe to call concurrently after a first warm-up call.
  const CsrGraph& reverse() const;

  /// Eagerly build and cache the reverse graph (call before parallel regions
  /// that will use `reverse()` from multiple threads).
  void warm_reverse() const;

  /// Structural + weight equality (ids and order must match exactly).
  bool operator==(const CsrGraph& other) const;

 private:
  /// Once-built transpose. Lives behind its own shared_ptr so CsrGraph stays
  /// copyable/movable (copies share the cache — the transpose of equal
  /// content is equal), and uses std::call_once so concurrent first calls to
  /// reverse()/warm_reverse() are race-free: a double-checked read of a plain
  /// shared_ptr would be a data race under ThreadSanitizer (and the memory
  /// model).
  struct ReverseCache {
    std::once_flag once;
    std::shared_ptr<const CsrGraph> graph;  // written exactly once
  };

  vid_t n_ = 0;
  eid_t m_ = 0;
  std::vector<eid_t> row_;      // n+1
  std::vector<vid_t> col_;      // m
  std::vector<weight_t> wgt_;   // m
  mutable std::shared_ptr<ReverseCache> rcache_ =
      std::make_shared<ReverseCache>();
};

/// Builds the transpose of `g` (counting sort over target vertices).
CsrGraph transpose(const CsrGraph& g);

}  // namespace peek::graph
