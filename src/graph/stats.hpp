// Summary statistics over a CSR graph (degree distribution, weight range,
// reachability) — used by the bench harness to report workload properties.
#pragma once

#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace peek::graph {

struct GraphStats {
  vid_t n = 0;
  eid_t m = 0;
  eid_t max_out_degree = 0;
  double avg_out_degree = 0;
  vid_t isolated_vertices = 0;  // zero in- and out-degree
  weight_t min_weight = 0;
  weight_t max_weight = 0;
};

GraphStats compute_stats(const CsrGraph& g);

/// Human-readable one-liner ("n=65536 m=1048576 davg=16.0 ...").
std::string to_string(const GraphStats& s);

/// Vertices reachable from `src` following out-edges (BFS, ignores weights).
std::vector<bool> reachable_from(const CsrGraph& g, vid_t src);

/// Vertices that can reach `dst` (BFS on the reverse graph).
std::vector<bool> reaching_to(const CsrGraph& g, vid_t dst);

}  // namespace peek::graph
