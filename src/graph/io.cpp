#include "graph/io.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <new>
#include <sstream>

#include "fault/injector.hpp"
#include "graph/builder.hpp"

namespace peek::graph {

namespace {

constexpr std::uint64_t kMagic = 0x5045454b43535231ULL;  // "PEEKCSR1"

constexpr long long kMaxVid = std::numeric_limits<vid_t>::max();

/// Validates one parsed vertex id (still in parse width).
vid_t checked_vid(long long id, const char* what, std::int64_t line) {
  if (id < 0) throw IoError(std::string(what) + " id is negative", line);
  if (id > kMaxVid) {
    throw IoError(std::string(what) + " id overflows vid_t: " +
                      std::to_string(id),
                  line);
  }
  return static_cast<vid_t>(id);
}

/// Validates one parsed edge weight: NaN, infinities, and negatives would
/// silently corrupt every distance comparison downstream.
weight_t checked_weight(double w, std::int64_t line) {
  if (std::isnan(w)) throw IoError("weight is NaN", line);
  if (!std::isfinite(w)) throw IoError("weight is not finite", line);
  if (w < 0) throw IoError("weight is negative", line);
  return w;
}

}  // namespace

CsrGraph read_edge_list(std::istream& in, vid_t n_hint) {
  try {
    PEEK_FAULT_ALLOC("graph.io.alloc");
    std::vector<CooEdge> edges;
    vid_t max_id = n_hint > 0 ? n_hint - 1 : -1;
    std::string line;
    std::int64_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty() || line[0] == '#' || line[0] == '%') continue;
      std::istringstream ls(line);
      long long u, v;
      double w = 1.0;
      if (!(ls >> u >> v)) throw IoError("expected \"u v [w]\": " + line, lineno);
      if (!(ls >> w)) {
        if (!ls.eof()) throw IoError("malformed weight: " + line, lineno);
        w = 1.0;  // absent weight (a failed extraction zeroes w since C++11)
      }
      const vid_t uu = checked_vid(u, "source", lineno);
      const vid_t vv = checked_vid(v, "target", lineno);
      edges.push_back({uu, vv, checked_weight(w, lineno)});
      max_id = std::max({max_id, uu, vv});
    }
    if (in.bad()) throw IoError("read_edge_list: stream read failure");
    return from_edges(max_id + 1, edges);
  } catch (const std::bad_alloc&) {
    throw IoError("read_edge_list: allocation failure while loading");
  }
}

CsrGraph read_edge_list_file(const std::string& path, vid_t n_hint) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open " + path);
  return read_edge_list(in, n_hint);
}

void write_edge_list(std::ostream& out, const CsrGraph& g) {
  for (vid_t u = 0; u < g.num_vertices(); ++u)
    for (eid_t e = g.edge_begin(u); e < g.edge_end(u); ++e)
      out << u << ' ' << g.edge_target(e) << ' ' << g.edge_weight(e) << '\n';
}

void write_edge_list_file(const std::string& path, const CsrGraph& g) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open " + path);
  write_edge_list(out, g);
}

CsrGraph read_dimacs(std::istream& in) {
  try {
    PEEK_FAULT_ALLOC("graph.io.alloc");
    std::string line;
    vid_t n = 0;
    long long declared_m = 0, seen_m = 0;
    std::vector<CooEdge> edges;
    bool have_header = false;
    std::int64_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty() || line[0] == 'c') continue;
      std::istringstream ls(line);
      char tag;
      ls >> tag;
      if (tag == 'p') {
        if (have_header) throw IoError("duplicate 'p sp' line", lineno);
        std::string kind;
        long long nn, mm;
        if (!(ls >> kind >> nn >> mm) || kind != "sp")
          throw IoError("bad problem line: " + line, lineno);
        if (nn < 0 || mm < 0)
          throw IoError("negative n or m in problem line", lineno);
        if (nn > kMaxVid)
          throw IoError("vertex count overflows vid_t", lineno);
        n = static_cast<vid_t>(nn);
        declared_m = mm;
        // Cap the speculative reserve: a corrupt header must not translate
        // into an attempted multi-terabyte allocation before any arc is read.
        edges.reserve(static_cast<size_t>(std::min(mm, 1LL << 20)));
        have_header = true;
      } else if (tag == 'a') {
        if (!have_header)
          throw IoError("arc line before 'p sp' header", lineno);
        long long u, v;
        double w;
        if (!(ls >> u >> v >> w))
          throw IoError("bad arc line: " + line, lineno);
        // DIMACS ids are 1-based.
        if (u < 1 || u > static_cast<long long>(n) || v < 1 ||
            v > static_cast<long long>(n)) {
          throw IoError("arc endpoint out of range [1, n]: " + line, lineno);
        }
        if (++seen_m > declared_m)
          throw IoError("more arcs than the header declared", lineno);
        edges.push_back({static_cast<vid_t>(u - 1), static_cast<vid_t>(v - 1),
                         checked_weight(w, lineno)});
      } else {
        throw IoError("unknown line tag: " + line, lineno);
      }
    }
    if (in.bad()) throw IoError("read_dimacs: stream read failure");
    if (!have_header) throw IoError("read_dimacs: missing 'p sp' line");
    return from_edges(n, edges);
  } catch (const std::bad_alloc&) {
    throw IoError("read_dimacs: allocation failure while loading");
  }
}

CsrGraph read_dimacs_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open " + path);
  return read_dimacs(in);
}

void write_dimacs(std::ostream& out, const CsrGraph& g) {
  out << "c generated by peek\n";
  out << "p sp " << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (vid_t u = 0; u < g.num_vertices(); ++u)
    for (eid_t e = g.edge_begin(u); e < g.edge_end(u); ++e)
      out << "a " << (u + 1) << ' ' << (g.edge_target(e) + 1) << ' '
          << g.edge_weight(e) << '\n';
}

void write_dimacs_file(const std::string& path, const CsrGraph& g) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open " + path);
  write_dimacs(out, g);
}

void write_binary(std::ostream& out, const CsrGraph& g) {
  auto put = [&out](const void* p, size_t bytes) {
    out.write(static_cast<const char*>(p), static_cast<std::streamsize>(bytes));
  };
  const std::uint64_t magic = kMagic;
  const std::int64_t n = g.num_vertices();
  const std::int64_t m = g.num_edges();
  put(&magic, sizeof magic);
  put(&n, sizeof n);
  put(&m, sizeof m);
  put(g.row_offsets().data(), sizeof(eid_t) * (static_cast<size_t>(n) + 1));
  put(g.col().data(), sizeof(vid_t) * static_cast<size_t>(m));
  put(g.weights().data(), sizeof(weight_t) * static_cast<size_t>(m));
}

CsrGraph read_binary(std::istream& in) {
  auto get = [&in](void* p, size_t bytes) {
    in.read(static_cast<char*>(p), static_cast<std::streamsize>(bytes));
    if (!in) throw IoError("read_binary: truncated stream");
  };
  try {
    PEEK_FAULT_ALLOC("graph.io.alloc");
    std::uint64_t magic;
    std::int64_t n, m;
    get(&magic, sizeof magic);
    if (magic != kMagic) throw IoError("read_binary: bad magic");
    get(&n, sizeof n);
    get(&m, sizeof m);
    // A corrupt or adversarial header must fail as a typed error, not as a
    // sign-wrapped multi-exabyte allocation.
    if (n < 0 || m < 0) throw IoError("read_binary: negative n or m");
    if (n > kMaxVid) throw IoError("read_binary: vertex count overflows vid_t");
    std::vector<eid_t> row(static_cast<size_t>(n) + 1);
    std::vector<vid_t> col(static_cast<size_t>(m));
    std::vector<weight_t> wgt(static_cast<size_t>(m));
    get(row.data(), sizeof(eid_t) * row.size());
    get(col.data(), sizeof(vid_t) * col.size());
    get(wgt.data(), sizeof(weight_t) * wgt.size());
    // Structural validation: offsets must walk 0 -> m monotonically and
    // every target id must be in range, or downstream traversals would read
    // out of bounds.
    if (row.front() != 0 || row.back() != m)
      throw IoError("read_binary: row offsets do not span [0, m]");
    for (size_t i = 1; i < row.size(); ++i) {
      if (row[i] < row[i - 1])
        throw IoError("read_binary: row offsets are not monotone");
    }
    for (size_t i = 0; i < col.size(); ++i) {
      if (col[i] < 0 || static_cast<std::int64_t>(col[i]) >= n)
        throw IoError("read_binary: edge target out of range");
    }
    for (size_t i = 0; i < wgt.size(); ++i) {
      if (std::isnan(wgt[i]) || !std::isfinite(wgt[i]) || wgt[i] < 0)
        throw IoError("read_binary: invalid edge weight");
    }
    return CsrGraph(std::move(row), std::move(col), std::move(wgt));
  } catch (const std::bad_alloc&) {
    throw IoError("read_binary: allocation failure while loading");
  }
}

void write_binary_file(const std::string& path, const CsrGraph& g) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open " + path);
  write_binary(out, g);
}

CsrGraph read_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open " + path);
  return read_binary(in);
}

}  // namespace peek::graph
