#include "graph/io.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <new>
#include <sstream>

#include "fault/injector.hpp"
#include "graph/builder.hpp"
#include "recover/artifacts.hpp"
#include "recover/snapshot.hpp"

namespace peek::graph {

namespace {

constexpr std::uint64_t kMagic = 0x5045454b43535231ULL;  // "PEEKCSR1"

/// Rethrows an IoError from a stream-level reader with the file path
/// attached, preserving its line/offset context.
[[noreturn]] void rethrow_with_path(const IoError& e, const std::string& path) {
  throw IoError(e.raw(), path, e.offset(), e.line());
}

constexpr long long kMaxVid = std::numeric_limits<vid_t>::max();

/// Validates one parsed vertex id (still in parse width).
vid_t checked_vid(long long id, const char* what, std::int64_t line) {
  if (id < 0) throw IoError(std::string(what) + " id is negative", line);
  if (id > kMaxVid) {
    throw IoError(std::string(what) + " id overflows vid_t: " +
                      std::to_string(id),
                  line);
  }
  return static_cast<vid_t>(id);
}

/// Validates one parsed edge weight: NaN, infinities, and negatives would
/// silently corrupt every distance comparison downstream.
weight_t checked_weight(double w, std::int64_t line) {
  if (std::isnan(w)) throw IoError("weight is NaN", line);
  if (!std::isfinite(w)) throw IoError("weight is not finite", line);
  if (w < 0) throw IoError("weight is negative", line);
  return w;
}

}  // namespace

CsrGraph read_edge_list(std::istream& in, vid_t n_hint) {
  try {
    PEEK_FAULT_ALLOC("graph.io.alloc");
    std::vector<CooEdge> edges;
    vid_t max_id = n_hint > 0 ? n_hint - 1 : -1;
    std::string line;
    std::int64_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty() || line[0] == '#' || line[0] == '%') continue;
      std::istringstream ls(line);
      long long u, v;
      double w = 1.0;
      if (!(ls >> u >> v)) throw IoError("expected \"u v [w]\": " + line, lineno);
      if (!(ls >> w)) {
        if (!ls.eof()) throw IoError("malformed weight: " + line, lineno);
        w = 1.0;  // absent weight (a failed extraction zeroes w since C++11)
      }
      const vid_t uu = checked_vid(u, "source", lineno);
      const vid_t vv = checked_vid(v, "target", lineno);
      edges.push_back({uu, vv, checked_weight(w, lineno)});
      max_id = std::max({max_id, uu, vv});
    }
    if (in.bad()) throw IoError("read_edge_list: stream read failure");
    return from_edges(max_id + 1, edges);
  } catch (const std::bad_alloc&) {
    throw IoError("read_edge_list: allocation failure while loading");
  }
}

CsrGraph read_edge_list_file(const std::string& path, vid_t n_hint) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open", path, -1);
  try {
    return read_edge_list(in, n_hint);
  } catch (const IoError& e) {
    rethrow_with_path(e, path);
  }
}

void write_edge_list(std::ostream& out, const CsrGraph& g) {
  for (vid_t u = 0; u < g.num_vertices(); ++u)
    for (eid_t e = g.edge_begin(u); e < g.edge_end(u); ++e)
      out << u << ' ' << g.edge_target(e) << ' ' << g.edge_weight(e) << '\n';
}

void write_edge_list_file(const std::string& path, const CsrGraph& g) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open " + path);
  write_edge_list(out, g);
}

CsrGraph read_dimacs(std::istream& in) {
  try {
    PEEK_FAULT_ALLOC("graph.io.alloc");
    std::string line;
    vid_t n = 0;
    long long declared_m = 0, seen_m = 0;
    std::vector<CooEdge> edges;
    bool have_header = false;
    std::int64_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty() || line[0] == 'c') continue;
      std::istringstream ls(line);
      char tag;
      ls >> tag;
      if (tag == 'p') {
        if (have_header) throw IoError("duplicate 'p sp' line", lineno);
        std::string kind;
        long long nn, mm;
        if (!(ls >> kind >> nn >> mm) || kind != "sp")
          throw IoError("bad problem line: " + line, lineno);
        if (nn < 0 || mm < 0)
          throw IoError("negative n or m in problem line", lineno);
        if (nn > kMaxVid)
          throw IoError("vertex count overflows vid_t", lineno);
        n = static_cast<vid_t>(nn);
        declared_m = mm;
        // Cap the speculative reserve: a corrupt header must not translate
        // into an attempted multi-terabyte allocation before any arc is read.
        edges.reserve(static_cast<size_t>(std::min(mm, 1LL << 20)));
        have_header = true;
      } else if (tag == 'a') {
        if (!have_header)
          throw IoError("arc line before 'p sp' header", lineno);
        long long u, v;
        double w;
        if (!(ls >> u >> v >> w))
          throw IoError("bad arc line: " + line, lineno);
        // DIMACS ids are 1-based.
        if (u < 1 || u > static_cast<long long>(n) || v < 1 ||
            v > static_cast<long long>(n)) {
          throw IoError("arc endpoint out of range [1, n]: " + line, lineno);
        }
        if (++seen_m > declared_m)
          throw IoError("more arcs than the header declared", lineno);
        edges.push_back({static_cast<vid_t>(u - 1), static_cast<vid_t>(v - 1),
                         checked_weight(w, lineno)});
      } else {
        throw IoError("unknown line tag: " + line, lineno);
      }
    }
    if (in.bad()) throw IoError("read_dimacs: stream read failure");
    if (!have_header) throw IoError("read_dimacs: missing 'p sp' line");
    return from_edges(n, edges);
  } catch (const std::bad_alloc&) {
    throw IoError("read_dimacs: allocation failure while loading");
  }
}

CsrGraph read_dimacs_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open", path, -1);
  try {
    return read_dimacs(in);
  } catch (const IoError& e) {
    rethrow_with_path(e, path);
  }
}

void write_dimacs(std::ostream& out, const CsrGraph& g) {
  out << "c generated by peek\n";
  out << "p sp " << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (vid_t u = 0; u < g.num_vertices(); ++u)
    for (eid_t e = g.edge_begin(u); e < g.edge_end(u); ++e)
      out << "a " << (u + 1) << ' ' << (g.edge_target(e) + 1) << ' '
          << g.edge_weight(e) << '\n';
}

void write_dimacs_file(const std::string& path, const CsrGraph& g) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open " + path);
  write_dimacs(out, g);
}

namespace {

/// Reads the whole remaining stream into a buffer — both binary formats are
/// parsed from memory so every error can name an exact byte offset.
std::vector<std::byte> slurp(std::istream& in, const std::string& path) {
  std::vector<std::byte> buf;
  char chunk[1 << 16];
  for (;;) {
    in.read(chunk, sizeof chunk);
    const std::streamsize got = in.gcount();
    if (got > 0) {
      const auto* b = reinterpret_cast<const std::byte*>(chunk);
      buf.insert(buf.end(), b, b + got);
    }
    if (!in) break;
  }
  if (in.bad()) throw IoError("stream read failure", path, -1);
  return buf;
}

/// Legacy "PEEKCSR1" payload: u64 magic, i64 n, i64 m, then raw host-layout
/// row/col/weight arrays. No checksums — structural validation is the only
/// defense, so it is exhaustive, and every failure names its byte offset.
CsrGraph parse_legacy_binary(const std::byte* data, std::size_t size,
                             const std::string& path) {
  std::size_t pos = 0;
  auto get = [&](void* p, std::size_t bytes) {
    if (size - pos < bytes)
      throw IoError("truncated stream", path, static_cast<std::int64_t>(size));
    std::memcpy(p, data + pos, bytes);
    pos += bytes;
  };
  std::uint64_t magic;
  std::int64_t n, m;
  get(&magic, sizeof magic);
  if (magic != kMagic) throw IoError("bad magic", path, 0);
  get(&n, sizeof n);
  get(&m, sizeof m);
  // A corrupt or adversarial header must fail as a typed error, not as a
  // sign-wrapped multi-exabyte allocation.
  if (n < 0 || m < 0) throw IoError("negative n or m", path, 8);
  if (n > kMaxVid) throw IoError("vertex count overflows vid_t", path, 8);
  const std::size_t row_start = pos;
  std::vector<eid_t> row(static_cast<size_t>(n) + 1);
  std::vector<vid_t> col(static_cast<size_t>(m));
  std::vector<weight_t> wgt(static_cast<size_t>(m));
  get(row.data(), sizeof(eid_t) * row.size());
  const std::size_t col_start = pos;
  get(col.data(), sizeof(vid_t) * col.size());
  const std::size_t wgt_start = pos;
  get(wgt.data(), sizeof(weight_t) * wgt.size());
  if (pos != size)
    throw IoError("trailing bytes after payload", path,
                  static_cast<std::int64_t>(pos));
  // Structural validation: offsets must walk 0 -> m monotonically and every
  // target id must be in range, or downstream traversals would read out of
  // bounds.
  if (row.front() != 0 || row.back() != m)
    throw IoError("row offsets do not span [0, m]", path,
                  static_cast<std::int64_t>(row_start));
  for (size_t i = 1; i < row.size(); ++i) {
    if (row[i] < row[i - 1])
      throw IoError("row offsets are not monotone", path,
                    static_cast<std::int64_t>(row_start + i * sizeof(eid_t)));
  }
  for (size_t i = 0; i < col.size(); ++i) {
    if (col[i] < 0 || static_cast<std::int64_t>(col[i]) >= n)
      throw IoError("edge target out of range", path,
                    static_cast<std::int64_t>(col_start + i * sizeof(vid_t)));
  }
  for (size_t i = 0; i < wgt.size(); ++i) {
    if (std::isnan(wgt[i]) || !std::isfinite(wgt[i]) || wgt[i] < 0)
      throw IoError("invalid edge weight", path,
                    static_cast<std::int64_t>(wgt_start + i * sizeof(weight_t)));
  }
  return CsrGraph(std::move(row), std::move(col), std::move(wgt));
}

/// v2 "PEEKSNP2" payload: checksummed snapshot container holding a kCsrGraph
/// artifact (recover/artifacts.hpp).
CsrGraph parse_v2_binary(const std::byte* data, std::size_t size,
                         const std::string& path) {
  recover::ParseResult r = recover::parse_snapshot(data, size);
  if (!r.status.ok())
    throw IoError(r.status.message, path,
                  static_cast<std::int64_t>(r.error_offset));
  CsrGraph g;
  fault::Status st = recover::decode_graph(r.snap, g);
  if (!st.ok()) throw IoError(st.message, path, -1);
  return g;
}

constexpr char kV2Magic[8] = {'P', 'E', 'E', 'K', 'S', 'N', 'P', '2'};

}  // namespace

void write_binary(std::ostream& out, const CsrGraph& g) {
  const std::vector<std::byte> image = recover::encode_graph(g);
  out.write(reinterpret_cast<const char*>(image.data()),
            static_cast<std::streamsize>(image.size()));
  if (!out) throw IoError("stream write failure");
}

void write_binary_legacy(std::ostream& out, const CsrGraph& g) {
  auto put = [&out](const void* p, size_t bytes) {
    out.write(static_cast<const char*>(p), static_cast<std::streamsize>(bytes));
  };
  const std::uint64_t magic = kMagic;
  const std::int64_t n = g.num_vertices();
  const std::int64_t m = g.num_edges();
  put(&magic, sizeof magic);
  put(&n, sizeof n);
  put(&m, sizeof m);
  put(g.row_offsets().data(), sizeof(eid_t) * (static_cast<size_t>(n) + 1));
  put(g.col().data(), sizeof(vid_t) * static_cast<size_t>(m));
  put(g.weights().data(), sizeof(weight_t) * static_cast<size_t>(m));
  if (!out) throw IoError("stream write failure");
}

CsrGraph read_binary(std::istream& in, const std::string& path) {
  try {
    PEEK_FAULT_ALLOC("graph.io.alloc");
    const std::vector<std::byte> buf = slurp(in, path);
    if (buf.size() >= sizeof kV2Magic &&
        std::memcmp(buf.data(), kV2Magic, sizeof kV2Magic) == 0)
      return parse_v2_binary(buf.data(), buf.size(), path);
    return parse_legacy_binary(buf.data(), buf.size(), path);
  } catch (const std::bad_alloc&) {
    throw IoError("allocation failure while loading", path, -1);
  }
}

void write_binary_file(const std::string& path, const CsrGraph& g) {
  const std::vector<std::byte> image = recover::encode_graph(g);
  const fault::Status st =
      recover::write_file_atomic(path, image.data(), image.size());
  if (!st.ok()) throw IoError(st.message);
}

CsrGraph read_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open", path, -1);
  return read_binary(in, path);
}

}  // namespace peek::graph
