// Synthetic graph generators used as stand-ins for the paper's benchmark
// graphs (Table 1). All generators are deterministic given the seed.
#pragma once

#include <cstdint>
#include <random>

#include "graph/csr.hpp"

namespace peek::graph {

/// How edge weights are assigned (paper §7.1: random (0,1] or unit).
enum class WeightKind {
  kUnit,          // every edge weight 1 (the *U graphs)
  kUniform01,     // uniform random in (0, 1]
  kPowerLaw,      // heavy-tailed in (0, 1], emphasises weight skew
};

struct WeightOptions {
  WeightKind kind = WeightKind::kUniform01;
  std::uint64_t seed = 7;
};

/// R-MAT generator (Chakrabarti et al. 2004) — skewed, Twitter/web-like degree
/// distribution; the paper's R21/GT/GW stand-in. `scale` gives n = 2^scale,
/// `edge_factor` gives m ≈ n * edge_factor.
CsrGraph rmat(int scale, int edge_factor, const WeightOptions& w = {},
              std::uint64_t seed = 1, double a = 0.57, double b = 0.19,
              double c = 0.19);

/// Erdős–Rényi G(n, m): m directed edges chosen uniformly.
CsrGraph erdos_renyi(vid_t n, eid_t m, const WeightOptions& w = {},
                     std::uint64_t seed = 2);

/// Watts–Strogatz-style small-world: ring of `n` vertices each linked to the
/// next `k` neighbours (directed), each edge rewired with probability `beta`.
/// Wikipedia-like (high clustering, short diameter).
CsrGraph small_world(vid_t n, int k, double beta, const WeightOptions& w = {},
                     std::uint64_t seed = 3);

/// Barabási–Albert-style preferential attachment with out-degree `k` per new
/// vertex, edges directed both ways with independent weights. LiveJournal-like.
CsrGraph preferential_attachment(vid_t n, int k, const WeightOptions& w = {},
                                 std::uint64_t seed = 4);

/// 2-D grid (rows x cols), 4-neighbour directed edges both ways. Long diameter;
/// stresses Δ-stepping bucketing and upper-bound tightness.
CsrGraph grid(vid_t rows, vid_t cols, const WeightOptions& w = {},
              std::uint64_t seed = 5);

/// Simple directed path 0 -> 1 -> ... -> n-1.
CsrGraph path(vid_t n, const WeightOptions& w = {}, std::uint64_t seed = 6);

/// Layered DAG: `layers` layers of `width` vertices, every vertex linked to
/// `fanout` random vertices of the next layer. Guarantees many distinct s-t
/// paths — ideal for KSP correctness tests.
CsrGraph layered_dag(int layers, vid_t width, int fanout,
                     const WeightOptions& w = {}, std::uint64_t seed = 8);

/// Complete digraph on n vertices (n*(n-1) edges).
CsrGraph complete(vid_t n, const WeightOptions& w = {}, std::uint64_t seed = 9);

/// Uniformly random weight in (0,1] / unit / power-law, per WeightOptions.
weight_t sample_weight(const WeightOptions& w, std::mt19937_64& rng);

}  // namespace peek::graph
