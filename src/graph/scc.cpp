#include "graph/scc.hpp"

#include <algorithm>

namespace peek::graph {

std::vector<vid_t> SccResult::sizes() const {
  std::vector<vid_t> out(static_cast<size_t>(num_components), 0);
  for (vid_t c : component) out[static_cast<size_t>(c)]++;
  return out;
}

vid_t SccResult::largest() const {
  auto s = sizes();
  return static_cast<vid_t>(std::max_element(s.begin(), s.end()) - s.begin());
}

SccResult strongly_connected_components(const CsrGraph& g) {
  const vid_t n = g.num_vertices();
  SccResult result;
  result.component.assign(static_cast<size_t>(n), kNoVertex);

  // Iterative Tarjan: explicit DFS frames (vertex, next-edge cursor).
  std::vector<vid_t> index(static_cast<size_t>(n), kNoVertex);
  std::vector<vid_t> lowlink(static_cast<size_t>(n), 0);
  std::vector<std::uint8_t> on_stack(static_cast<size_t>(n), 0);
  std::vector<vid_t> stack;           // Tarjan's vertex stack
  std::vector<std::pair<vid_t, eid_t>> frames;
  vid_t next_index = 0;

  for (vid_t root = 0; root < n; ++root) {
    if (index[root] != kNoVertex) continue;
    frames.push_back({root, g.edge_begin(root)});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = 1;
    while (!frames.empty()) {
      auto& [v, cursor] = frames.back();
      if (cursor < g.edge_end(v)) {
        const vid_t w = g.edge_target(cursor++);
        if (index[w] == kNoVertex) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = 1;
          frames.push_back({w, g.edge_begin(w)});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        // v finished: pop its component if it is a root.
        if (lowlink[v] == index[v]) {
          while (true) {
            const vid_t w = stack.back();
            stack.pop_back();
            on_stack[w] = 0;
            result.component[w] = result.num_components;
            if (w == v) break;
          }
          result.num_components++;
        }
        const vid_t child = v;
        frames.pop_back();
        if (!frames.empty()) {
          auto& [parent, unused] = frames.back();
          (void)unused;
          lowlink[parent] = std::min(lowlink[parent], lowlink[child]);
        }
      }
    }
  }
  return result;
}

}  // namespace peek::graph
