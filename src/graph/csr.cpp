#include "graph/csr.hpp"

#include <mutex>
#include <stdexcept>
#include <utility>

namespace peek::graph {

CsrGraph::CsrGraph(std::vector<eid_t> row_offsets, std::vector<vid_t> col,
                   std::vector<weight_t> weights)
    : row_(std::move(row_offsets)), col_(std::move(col)), wgt_(std::move(weights)) {
  if (row_.empty()) throw std::invalid_argument("CsrGraph: empty row_offsets");
  n_ = static_cast<vid_t>(row_.size() - 1);
  m_ = static_cast<eid_t>(col_.size());
  if (wgt_.size() != col_.size())
    throw std::invalid_argument("CsrGraph: col/weights size mismatch");
  if (row_.front() != 0 || row_.back() != m_)
    throw std::invalid_argument("CsrGraph: bad offset endpoints");
  for (vid_t v = 0; v < n_; ++v) {
    if (row_[v] > row_[v + 1])
      throw std::invalid_argument("CsrGraph: offsets not monotone");
  }
  for (eid_t e = 0; e < m_; ++e) {
    if (col_[e] < 0 || col_[e] >= n_)
      throw std::invalid_argument("CsrGraph: column id out of range");
  }
}

eid_t CsrGraph::find_edge(vid_t u, vid_t v) const {
  for (eid_t e = row_[u]; e < row_[u + 1]; ++e) {
    if (col_[e] == v) return e;
  }
  return kNoEdge;
}

weight_t CsrGraph::total_weight() const {
  weight_t sum = 0;
  for (weight_t w : wgt_) sum += w;
  return sum;
}

bool CsrGraph::operator==(const CsrGraph& other) const {
  return n_ == other.n_ && m_ == other.m_ && row_ == other.row_ &&
         col_ == other.col_ && wgt_ == other.wgt_;
}

const CsrGraph& CsrGraph::reverse() const {
  warm_reverse();
  return *rcache_->graph;
}

void CsrGraph::warm_reverse() const {
  // call_once both serializes the one build and publishes it: every later
  // caller's read of rcache_->graph happens-after the store.
  std::call_once(rcache_->once, [this] {
    rcache_->graph = std::make_shared<const CsrGraph>(transpose(*this));
  });
}

CsrGraph transpose(const CsrGraph& g) {
  const vid_t n = g.num_vertices();
  const eid_t m = g.num_edges();
  std::vector<eid_t> row(static_cast<size_t>(n) + 1, 0);
  // Count in-degrees.
  for (eid_t e = 0; e < m; ++e) row[g.col()[e] + 1]++;
  for (vid_t v = 0; v < n; ++v) row[v + 1] += row[v];
  std::vector<vid_t> col(static_cast<size_t>(m));
  std::vector<weight_t> wgt(static_cast<size_t>(m));
  std::vector<eid_t> cursor(row.begin(), row.end() - 1);
  for (vid_t u = 0; u < n; ++u) {
    for (eid_t e = g.edge_begin(u); e < g.edge_end(u); ++e) {
      const vid_t v = g.edge_target(e);
      const eid_t slot = cursor[v]++;
      col[slot] = u;
      wgt[slot] = g.edge_weight(e);
    }
  }
  return CsrGraph(std::move(row), std::move(col), std::move(wgt));
}

}  // namespace peek::graph
