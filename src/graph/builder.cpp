#include "graph/builder.hpp"

#include <algorithm>
#include <stdexcept>

namespace peek::graph {

void Builder::add_edge(vid_t u, vid_t v, weight_t w) {
  if (u < 0 || u >= n_ || v < 0 || v >= n_)
    throw std::out_of_range("Builder::add_edge: endpoint out of range");
  if (!(w > 0))
    throw std::invalid_argument("Builder::add_edge: weights must be positive");
  edges_.push_back({u, v, w});
}

void Builder::add_undirected_edge(vid_t u, vid_t v, weight_t w) {
  add_edge(u, v, w);
  add_edge(v, u, w);
}

void Builder::add_edges(const std::vector<CooEdge>& edges) {
  edges_.reserve(edges_.size() + edges.size());
  for (const CooEdge& e : edges) add_edge(e.src, e.dst, e.weight);
}

CsrGraph Builder::build() const {
  std::vector<CooEdge> sorted = edges_;
  std::sort(sorted.begin(), sorted.end(), [](const CooEdge& a, const CooEdge& b) {
    if (a.src != b.src) return a.src < b.src;
    if (a.dst != b.dst) return a.dst < b.dst;
    return a.weight < b.weight;
  });
  if (dedup_) {
    std::vector<CooEdge> kept;
    kept.reserve(sorted.size());
    for (const CooEdge& e : sorted) {
      if (e.src == e.dst) continue;  // self-loop: never on a simple path
      if (!kept.empty() && kept.back().src == e.src && kept.back().dst == e.dst)
        continue;  // parallel edge: the sort order keeps the lightest first
      kept.push_back(e);
    }
    sorted.swap(kept);
  }
  const eid_t m = static_cast<eid_t>(sorted.size());
  std::vector<eid_t> row(static_cast<size_t>(n_) + 1, 0);
  for (const CooEdge& e : sorted) row[e.src + 1]++;
  for (vid_t v = 0; v < n_; ++v) row[v + 1] += row[v];
  std::vector<vid_t> col(static_cast<size_t>(m));
  std::vector<weight_t> wgt(static_cast<size_t>(m));
  for (eid_t i = 0; i < m; ++i) {
    col[i] = sorted[i].dst;
    wgt[i] = sorted[i].weight;
  }
  return CsrGraph(std::move(row), std::move(col), std::move(wgt));
}

CsrGraph from_edges(vid_t n, const std::vector<CooEdge>& edges, bool dedup) {
  Builder b(n);
  b.set_dedup(dedup);
  b.add_edges(edges);
  return b.build();
}

}  // namespace peek::graph
