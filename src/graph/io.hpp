// Graph serialization: whitespace edge-list text ("u v w" per line, '#'/'%'
// comments), and a fast binary format for caching generated benchmark graphs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "graph/csr.hpp"

namespace peek::graph {

/// Typed parse/validation failure raised by every reader below: malformed
/// lines, out-of-range or negative vertex ids, NaN/negative/non-finite
/// weights, inconsistent headers, truncated or corrupt binary payloads, and
/// allocation failure while loading. what() carries the offending line
/// number ("line N: ...") when the input is line-oriented.
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what, std::int64_t line = 0)
      : std::runtime_error(
            line > 0 ? "line " + std::to_string(line) + ": " + what : what),
        line_(line) {}

  /// 1-based line of the offending input, 0 when not line-oriented.
  std::int64_t line() const noexcept { return line_; }

 private:
  std::int64_t line_;
};

/// Parses "u v [w]" lines; missing weights default to 1. Vertex count is
/// 1 + max id unless `n_hint` is larger. Throws IoError on malformed input.
CsrGraph read_edge_list(std::istream& in, vid_t n_hint = 0);
CsrGraph read_edge_list_file(const std::string& path, vid_t n_hint = 0);

/// Writes one "u v w" line per edge.
void write_edge_list(std::ostream& out, const CsrGraph& g);
void write_edge_list_file(const std::string& path, const CsrGraph& g);

/// DIMACS shortest-path challenge format (.gr): "p sp n m" header, "a u v w"
/// arc lines (1-based vertex ids), "c" comments. The standard interchange
/// format for SSSP/KSP benchmarks.
CsrGraph read_dimacs(std::istream& in);
CsrGraph read_dimacs_file(const std::string& path);
void write_dimacs(std::ostream& out, const CsrGraph& g);
void write_dimacs_file(const std::string& path, const CsrGraph& g);

/// Binary round-trip (magic + sizes + raw arrays, little-endian host layout).
void write_binary(std::ostream& out, const CsrGraph& g);
CsrGraph read_binary(std::istream& in);
void write_binary_file(const std::string& path, const CsrGraph& g);
CsrGraph read_binary_file(const std::string& path);

}  // namespace peek::graph
