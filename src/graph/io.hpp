// Graph serialization: whitespace edge-list text ("u v w" per line, '#'/'%'
// comments), DIMACS .gr, and a checksummed binary format for caching
// generated benchmark graphs.
//
// Binary graphs are written in snapshot container format v2
// (recover/snapshot.hpp): "PEEKSNP2" magic, per-section xxhash64 checksums,
// explicit little-endian encoding — a bit flip or truncation anywhere is a
// typed IoError naming the failing byte offset, never silently wrong data.
// The legacy "PEEKCSR1" format (raw host-layout arrays, no checksums) is
// still *read* transparently; write_binary_legacy() exists so compat tests
// can produce it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "graph/csr.hpp"

namespace peek::graph {

/// Typed parse/validation failure raised by every reader below: malformed
/// lines, out-of-range or negative vertex ids, NaN/negative/non-finite
/// weights, inconsistent headers, truncated or corrupt binary payloads, and
/// allocation failure while loading. what() composes every piece of context
/// the reader had: "<path>: line N: ..." for line-oriented input,
/// "<path>: byte N: ..." for binary input. The file-level readers always
/// supply the path; the stream-level readers supply it when given one.
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what, std::int64_t line = 0)
      : IoError(what, std::string(), -1, line) {}

  IoError(const std::string& what, std::string path, std::int64_t offset,
          std::int64_t line = 0)
      : std::runtime_error(compose(what, path, offset, line)),
        raw_(what),
        path_(std::move(path)),
        offset_(offset),
        line_(line) {}

  /// The message without path/line/offset prefixes (for re-wrapping).
  const std::string& raw() const noexcept { return raw_; }

  /// File the error came from; empty for bare-stream parsing.
  const std::string& path() const noexcept { return path_; }

  /// Byte offset of the offending input, -1 when not byte-oriented.
  std::int64_t offset() const noexcept { return offset_; }

  /// 1-based line of the offending input, 0 when not line-oriented.
  std::int64_t line() const noexcept { return line_; }

 private:
  static std::string compose(const std::string& what, const std::string& path,
                             std::int64_t offset, std::int64_t line) {
    std::string msg;
    if (!path.empty()) msg += path + ": ";
    if (line > 0)
      msg += "line " + std::to_string(line) + ": ";
    else if (offset >= 0)
      msg += "byte " + std::to_string(offset) + ": ";
    msg += what;
    return msg;
  }

  std::string raw_;
  std::string path_;
  std::int64_t offset_;
  std::int64_t line_;
};

/// Parses "u v [w]" lines; missing weights default to 1. Vertex count is
/// 1 + max id unless `n_hint` is larger. Throws IoError on malformed input.
CsrGraph read_edge_list(std::istream& in, vid_t n_hint = 0);
CsrGraph read_edge_list_file(const std::string& path, vid_t n_hint = 0);

/// Writes one "u v w" line per edge.
void write_edge_list(std::ostream& out, const CsrGraph& g);
void write_edge_list_file(const std::string& path, const CsrGraph& g);

/// DIMACS shortest-path challenge format (.gr): "p sp n m" header, "a u v w"
/// arc lines (1-based vertex ids), "c" comments. The standard interchange
/// format for SSSP/KSP benchmarks.
CsrGraph read_dimacs(std::istream& in);
CsrGraph read_dimacs_file(const std::string& path);
void write_dimacs(std::ostream& out, const CsrGraph& g);
void write_dimacs_file(const std::string& path, const CsrGraph& g);

/// Writes the v2 checksummed container (see file comment).
void write_binary(std::ostream& out, const CsrGraph& g);

/// Reads either binary format, dispatching on the magic: v2 "PEEKSNP2"
/// (checksummed) or legacy "PEEKCSR1" (validated structurally only). Both
/// reject trailing bytes after the payload. `path` is diagnostic context
/// for IoError only.
CsrGraph read_binary(std::istream& in, const std::string& path = {});

/// write_binary via atomic durable publish (tmp + fsync + rename): a crash
/// mid-write leaves the previous file intact, never a torn one.
void write_binary_file(const std::string& path, const CsrGraph& g);
CsrGraph read_binary_file(const std::string& path);

/// Legacy "PEEKCSR1" writer (raw host-layout arrays, no checksums). Kept
/// only so read-compat tests can produce genuine v1 files; new code should
/// never call it.
void write_binary_legacy(std::ostream& out, const CsrGraph& g);

}  // namespace peek::graph
