// Umbrella header: the whole public API in one include.
//
//   #include "peek.hpp"
//   auto g = peek::graph::rmat(14, 8);
//   auto r = peek::core::peek_ksp(g, s, t, {.k = 8, .parallel = true});
//
// Fine-grained headers remain available for faster builds; this is the
// convenience entry point for applications.
#pragma once

// Fault model: typed statuses, cooperative cancellation, fault injection.
#include "fault/cancel.hpp"    // IWYU pragma: export
#include "fault/injector.hpp"  // IWYU pragma: export
#include "fault/status.hpp"    // IWYU pragma: export

// Graph substrate.
#include "graph/builder.hpp"     // IWYU pragma: export
#include "graph/csr.hpp"         // IWYU pragma: export
#include "graph/generators.hpp"  // IWYU pragma: export
#include "graph/io.hpp"          // IWYU pragma: export
#include "graph/scc.hpp"         // IWYU pragma: export
#include "graph/stats.hpp"       // IWYU pragma: export

// Shortest-path kernels.
#include "sssp/alt.hpp"                 // IWYU pragma: export
#include "sssp/bellman_ford.hpp"        // IWYU pragma: export
#include "sssp/bidirectional.hpp"       // IWYU pragma: export
#include "sssp/delta_stepping.hpp"      // IWYU pragma: export
#include "sssp/dijkstra.hpp"            // IWYU pragma: export
#include "sssp/hop_limited.hpp"         // IWYU pragma: export
#include "sssp/path.hpp"                // IWYU pragma: export
#include "sssp/resumable_dijkstra.hpp"  // IWYU pragma: export

// Compaction.
#include "compact/adaptive.hpp"      // IWYU pragma: export
#include "compact/status_array.hpp"  // IWYU pragma: export

// KSP algorithms.
#include "ksp/bruteforce.hpp"           // IWYU pragma: export
#include "ksp/hop_limited.hpp"          // IWYU pragma: export
#include "ksp/node_classification.hpp"  // IWYU pragma: export
#include "ksp/optyen.hpp"               // IWYU pragma: export
#include "ksp/pnc.hpp"                  // IWYU pragma: export
#include "ksp/sidetrack.hpp"            // IWYU pragma: export
#include "ksp/stream.hpp"               // IWYU pragma: export
#include "ksp/yen.hpp"                  // IWYU pragma: export

// PeeK.
#include "core/batch.hpp"             // IWYU pragma: export
#include "core/diverse.hpp"           // IWYU pragma: export
#include "core/peek.hpp"              // IWYU pragma: export
#include "core/shortest_k_group.hpp"  // IWYU pragma: export
#include "core/upper_bound.hpp"       // IWYU pragma: export

// Dynamic-graph comparator and the distributed runtime.
#include "dist/dist_peek.hpp"    // IWYU pragma: export
#include "dist/retry.hpp"        // IWYU pragma: export
#include "dist/sample_sort.hpp"  // IWYU pragma: export
#include "dyn/dynamic_graph.hpp" // IWYU pragma: export
#include "dyn/dynamic_sssp.hpp"  // IWYU pragma: export

// Query serving.
#include "serve/query_engine.hpp"  // IWYU pragma: export
