// Distributed PeeK (§6.2): 1-D partition, two distributed Δ-stepping SSSPs,
// replicated upper-bound identification on the gathered arrays, distributed
// regeneration of the (tiny) pruned graph, and a replicated-state distributed
// KSP where deviation SSSPs of each accepted path are assigned round-robin
// to ranks (the outer level of the two-level strategy mapped onto nodes).
#pragma once

#include "core/peek.hpp"
#include "dist/dist_sssp.hpp"

namespace peek::dist {

struct DistPeekOptions {
  int k = 8;
  weight_t delta = 0;
  double alpha = 0.5;
  /// Backoff schedule for the SSSP request exchanges and the candidate
  /// exchange of the distributed KSP stage (dist/retry.hpp).
  RetryOptions retry;
  /// Crash-safe stage-4 checkpointing (DESIGN.md §10): when non-empty, each
  /// rank atomically writes `rank_<r>.ckpt` here after every accepted round,
  /// and at stage-4 start the ranks resume from their checkpoints when all
  /// of them hold one for the same (graph, s, t, k) at the same round. The
  /// `dist.rank_fail` fault probe simulates a rank crash at a round boundary:
  /// the rank drops its live state and rebuilds it from its checkpoint
  /// (counted in dist.rank_restarts), invisibly to its peers because the
  /// replicated state is re-checkpointed every round. Empty = no
  /// checkpointing.
  std::string checkpoint_dir;
};

struct DistPeekResult {
  ksp::KspResult ksp;  // identical on every rank; original vertex ids
  weight_t upper_bound = kInfDist;
  vid_t kept_vertices = 0;
  eid_t kept_edges = 0;
  /// Total edges relaxed across ranks by the two distributed SSSPs — the
  /// numerator of Figure 10's GTEPS metric.
  std::int64_t edges_relaxed = 0;
};

/// Collective: every rank calls with the same graph reference (the shared
/// read-only input standing in for each node's copy of the dataset).
DistPeekResult dist_peek_ksp(Comm& comm, const graph::CsrGraph& g, vid_t s,
                             vid_t t, const DistPeekOptions& opts = {});

}  // namespace peek::dist
