// Simulated message-passing runtime — the substitution for MPI documented in
// DESIGN.md §3. Ranks are std::threads; each has a mailbox of typed messages.
// The API deliberately mirrors MPI's two-sided + collective model (LLNL MPI
// tutorial idioms) so the distributed algorithms in this directory are real
// message-passing code: explicit sends/recvs, owner-computes, barriers,
// reductions. Only the transport is in-process.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstring>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <type_traits>
#include <vector>

#include "check/thread_safety.hpp"
#include "dist/retry.hpp"

namespace peek::dist {

namespace detail {

struct Message {
  int src;
  int tag;
  std::vector<std::byte> payload;
};

/// Shared state of one communicator: mailboxes + collective scratch.
struct CommState {
  explicit CommState(int size);

  const int size;
  // Per-destination mailbox: box_mutex[d] guards boxes[d]. An array of
  // per-index locks cannot be expressed as a guarded_by relation, so these
  // stay raw std:: types outside the clang analysis.
  // ts-allow: per-index lock array; boxes[d] is guarded by box_mutex[d]
  std::vector<std::mutex> box_mutex;
  std::vector<std::condition_variable> box_cv;
  std::vector<std::multimap<std::pair<int, int>, Message>> boxes;  // (src,tag)

  // Reusable counter barrier (sense-reversing).
  check::Mutex barrier_mutex;
  check::CondVar barrier_cv;
  int barrier_count PEEK_GUARDED_BY(barrier_mutex) = 0;
  bool barrier_sense PEEK_GUARDED_BY(barrier_mutex) = false;

  // Collective exchange slots (one pointer-sized slot per rank).
  std::vector<std::vector<std::byte>> slots;
};

}  // namespace detail

/// Handle owned by one rank.
class Comm {
 public:
  Comm(std::shared_ptr<detail::CommState> state, int rank)
      : state_(std::move(state)), rank_(rank) {}

  int rank() const { return rank_; }
  int size() const { return state_->size; }

  /// Asynchronous point-to-point send (copies the payload; never blocks).
  /// Throws TransientError when the `dist.comm.send` fault probe fires —
  /// always BEFORE the message is enqueued, so a retry never duplicates it.
  void send_bytes(int dest, int tag, std::vector<std::byte> data);
  /// Blocking matched receive from (src, tag).
  std::vector<std::byte> recv_bytes(int src, int tag);

  void barrier();

  // ---- typed convenience (trivially copyable element types) ----

  template <typename T>
  void send(int dest, int tag, const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> bytes(v.size() * sizeof(T));
    if (!v.empty()) std::memcpy(bytes.data(), v.data(), bytes.size());
    send_bytes(dest, tag, std::move(bytes));
  }

  template <typename T>
  std::vector<T> recv(int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> bytes = recv_bytes(src, tag);
    std::vector<T> v(bytes.size() / sizeof(T));
    if (!v.empty()) std::memcpy(v.data(), bytes.data(), bytes.size());
    return v;
  }

  /// Every rank contributes one value; all ranks see all values (rank order).
  template <typename T>
  std::vector<T> allgather(const T& mine) {
    publish(std::vector<T>{mine});
    barrier();
    std::vector<T> out;
    out.reserve(static_cast<size_t>(size()));
    for (int r = 0; r < size(); ++r) out.push_back(snoop<T>(r)[0]);
    barrier();  // nobody overwrites slots until everyone has read
    return out;
  }

  /// Variable-length allgather: concatenation of every rank's vector, with
  /// per-rank chunks returned separately.
  template <typename T>
  std::vector<std::vector<T>> allgatherv(const std::vector<T>& mine) {
    publish(mine);
    barrier();
    std::vector<std::vector<T>> out(static_cast<size_t>(size()));
    for (int r = 0; r < size(); ++r) out[static_cast<size_t>(r)] = snoop<T>(r);
    barrier();
    return out;
  }

  template <typename T, typename Op>
  T allreduce(const T& mine, Op op, T init) {
    auto all = allgather(mine);
    T acc = init;
    for (const T& x : all) acc = op(acc, x);
    return acc;
  }

  template <typename T>
  T allreduce_min(const T& mine) {
    return allreduce(mine, [](T a, T b) { return a < b ? a : b; },
                     std::numeric_limits<T>::max());
  }
  template <typename T>
  T allreduce_sum(const T& mine) {
    return allreduce(mine, [](T a, T b) { return a + b; }, T{});
  }

  /// Root's vector reaches every rank.
  template <typename T>
  std::vector<T> broadcast(const std::vector<T>& mine, int root) {
    if (rank_ == root) publish(mine);
    barrier();
    std::vector<T> out = snoop<T>(root);
    barrier();
    return out;
  }

  /// All-to-all personalised exchange: element [r] of `outboxes` goes to
  /// rank r; returns what every rank addressed to me (indexed by source).
  template <typename T>
  std::vector<std::vector<T>> all_to_all(
      const std::vector<std::vector<T>>& outboxes, int tag) {
    for (int r = 0; r < size(); ++r)
      send(r, tag, outboxes[static_cast<size_t>(r)]);
    std::vector<std::vector<T>> in(static_cast<size_t>(size()));
    for (int r = 0; r < size(); ++r) in[static_cast<size_t>(r)] = recv<T>(r, tag);
    return in;
  }

  /// all_to_all with every send wrapped in with_retry: a TransientError from
  /// the transport (lost message, injected `dist.comm.send` fault) is retried
  /// on the jittered exponential schedule instead of killing the rank. Sends
  /// fail before enqueue, so retries are idempotent.
  template <typename T>
  std::vector<std::vector<T>> all_to_all_reliable(
      const std::vector<std::vector<T>>& outboxes, int tag,
      const RetryOptions& retry) {
    for (int r = 0; r < size(); ++r) {
      with_retry([&] { send(r, tag, outboxes[static_cast<size_t>(r)]); },
                 retry);
    }
    std::vector<std::vector<T>> in(static_cast<size_t>(size()));
    for (int r = 0; r < size(); ++r) in[static_cast<size_t>(r)] = recv<T>(r, tag);
    return in;
  }

  /// allgatherv over retried point-to-point sends instead of the shared
  /// slots: same result as allgatherv, but each rank's contribution travels
  /// as size() messages that individually ride through transient send
  /// failures. Used by the distributed KSP candidate exchange.
  template <typename T>
  std::vector<std::vector<T>> allgatherv_reliable(const std::vector<T>& mine,
                                                  int tag,
                                                  const RetryOptions& retry) {
    for (int r = 0; r < size(); ++r) {
      with_retry([&] { send(r, tag, mine); }, retry);
    }
    std::vector<std::vector<T>> out(static_cast<size_t>(size()));
    for (int r = 0; r < size(); ++r) out[static_cast<size_t>(r)] = recv<T>(r, tag);
    return out;
  }

 private:
  template <typename T>
  void publish(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto& slot = state_->slots[static_cast<size_t>(rank_)];
    const size_t bytes = v.size() * sizeof(T);
    slot.resize(bytes);
    if (bytes != 0) std::memcpy(slot.data(), v.data(), bytes);
  }

  template <typename T>
  std::vector<T> snoop(int r) const {
    const auto& slot = state_->slots[static_cast<size_t>(r)];
    std::vector<T> v(slot.size() / sizeof(T));
    if (!v.empty()) std::memcpy(v.data(), slot.data(), slot.size());
    return v;
  }

  std::shared_ptr<detail::CommState> state_;
  int rank_;
};

/// Spawns `ranks` threads, each running `body(comm)`; joins them all.
/// Exceptions in any rank are rethrown (first one wins).
void run_ranks(int ranks, const std::function<void(Comm&)>& body);

}  // namespace peek::dist
