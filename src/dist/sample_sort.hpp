// Distributed sample sort (§6.2) — orders the distance-sum array across
// ranks for the K-upper-bound identification step. Classic three-phase
// scheme: local sort + regular sampling, splitter agreement, all-to-all
// redistribution + local multiway merge.
#pragma once

#include "dist/comm.hpp"

namespace peek::dist {

/// Collective. On return every rank holds a sorted chunk, and the
/// concatenation over ranks 0..p-1 is the globally sorted sequence.
std::vector<double> dist_sample_sort(Comm& comm, std::vector<double> local);

}  // namespace peek::dist
