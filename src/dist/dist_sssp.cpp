#include "dist/dist_sssp.hpp"

#include <algorithm>
#include <limits>

namespace peek::dist {

namespace {

/// One relaxation request travelling between ranks.
struct Req {
  vid_t v;       // global target vertex
  weight_t d;    // candidate distance
  vid_t parent;  // global sender vertex (tree parent if accepted)
};

constexpr std::int64_t kNoBucket = std::numeric_limits<std::int64_t>::max();

}  // namespace

DistSsspResult dist_delta_stepping(Comm& comm, const LocalGraph& lg,
                                   vid_t source, const DistSsspOptions& opts) {
  const auto points = partition_points(lg.n_global, lg.ranks);
  DistSsspResult r;
  r.dist.assign(static_cast<size_t>(lg.owned()), kInfDist);
  r.parent.assign(static_cast<size_t>(lg.owned()), kNoVertex);

  // Agree on Δ: global max edge weight / 8.
  weight_t delta = opts.delta;
  if (delta <= 0) {
    weight_t local_max = 0;
    for (weight_t w : lg.wgt) local_max = std::max(local_max, w);
    const weight_t global_max = comm.allreduce(
        local_max, [](weight_t a, weight_t b) { return std::max(a, b); },
        weight_t{0});
    delta = std::max<weight_t>(global_max / 8.0, 1e-4);
  }
  auto bucket_of = [delta](weight_t d) {
    return static_cast<std::int64_t>(d / delta);
  };

  // Local buckets of owned LOCAL vertex ids.
  std::vector<std::vector<vid_t>> buckets;
  auto push_bucket = [&](vid_t local, weight_t d) {
    const auto b = static_cast<size_t>(bucket_of(d));
    if (b >= buckets.size()) buckets.resize(b + 1);
    buckets[b].push_back(local);
  };
  if (lg.owns(source)) {
    r.dist[lg.to_local(source)] = 0;
    push_bucket(lg.to_local(source), 0);
  }

  // Applies a batch of requests to owned vertices; returns locals improved.
  auto apply = [&](const std::vector<std::vector<Req>>& inbound,
                   std::vector<vid_t>& improved) {
    for (const auto& batch : inbound) {
      for (const Req& q : batch) {
        const vid_t local = lg.to_local(q.v);
        if (q.d < r.dist[local]) {
          r.dist[local] = q.d;
          r.parent[local] = q.parent;
          improved.push_back(local);
        }
      }
    }
  };

  // Generates requests for the edges of `frontier` (light or heavy phase).
  auto generate = [&](const std::vector<vid_t>& frontier, bool light,
                      std::vector<std::vector<Req>>& outbox) {
    for (auto& o : outbox) o.clear();
    for (vid_t local : frontier) {
      const weight_t du = r.dist[local];
      const vid_t gu = lg.to_global(local);
      for (eid_t e = lg.row[local]; e < lg.row[local + 1]; ++e) {
        const weight_t w = lg.wgt[static_cast<size_t>(e)];
        if (light != (w <= delta)) continue;
        const vid_t gv = lg.col[static_cast<size_t>(e)];
        outbox[static_cast<size_t>(owner_of(gv, points))].push_back(
            {gv, du + w, gu});
        r.edges_relaxed++;
      }
    }
  };

  std::vector<std::vector<Req>> outbox(static_cast<size_t>(lg.ranks));
  int tag = 0;
  while (true) {
    // Outer epoch: agree on the smallest non-empty bucket anywhere.
    std::int64_t my_min = kNoBucket;
    for (size_t b = 0; b < buckets.size(); ++b) {
      if (!buckets[b].empty()) {
        my_min = static_cast<std::int64_t>(b);
        break;
      }
    }
    const std::int64_t cur = comm.allreduce_min(my_min);
    if (cur == kNoBucket) break;

    std::vector<vid_t> settled;
    std::vector<vid_t> current;
    if (static_cast<size_t>(cur) < buckets.size())
      current.swap(buckets[static_cast<size_t>(cur)]);

    // Inner iterations: light edges until the whole bucket is globally calm.
    while (true) {
      std::vector<vid_t> frontier;
      for (vid_t local : current) {
        const weight_t d = r.dist[local];
        if (d != kInfDist && bucket_of(d) == cur) frontier.push_back(local);
      }
      const std::int64_t active =
          comm.allreduce_sum(static_cast<std::int64_t>(frontier.size()));
      if (active == 0) break;
      settled.insert(settled.end(), frontier.begin(), frontier.end());
      generate(frontier, /*light=*/true, outbox);
      auto inbound = comm.all_to_all_reliable(outbox, tag++, opts.retry);
      std::vector<vid_t> improved;
      apply(inbound, improved);
      current.clear();
      for (vid_t local : improved) {
        const weight_t d = r.dist[local];
        if (bucket_of(d) == cur) current.push_back(local);
        else push_bucket(local, d);
      }
    }

    // Heavy edges once per settled vertex.
    generate(settled, /*light=*/false, outbox);
    auto inbound = comm.all_to_all_reliable(outbox, tag++, opts.retry);
    std::vector<vid_t> improved;
    apply(inbound, improved);
    for (vid_t local : improved) push_bucket(local, r.dist[local]);
  }
  return r;
}

void gather_global(Comm& comm, const LocalGraph& lg, const DistSsspResult& r,
                   std::vector<weight_t>& dist_out,
                   std::vector<vid_t>& parent_out) {
  auto dists = comm.allgatherv(r.dist);
  auto parents = comm.allgatherv(r.parent);
  dist_out.clear();
  parent_out.clear();
  dist_out.reserve(static_cast<size_t>(lg.n_global));
  parent_out.reserve(static_cast<size_t>(lg.n_global));
  for (int rk = 0; rk < comm.size(); ++rk) {
    dist_out.insert(dist_out.end(), dists[static_cast<size_t>(rk)].begin(),
                    dists[static_cast<size_t>(rk)].end());
    parent_out.insert(parent_out.end(),
                      parents[static_cast<size_t>(rk)].begin(),
                      parents[static_cast<size_t>(rk)].end());
  }
}

}  // namespace peek::dist
