#include "dist/sample_sort.hpp"

#include <algorithm>

namespace peek::dist {

std::vector<double> dist_sample_sort(Comm& comm, std::vector<double> local) {
  const int p = comm.size();
  std::sort(local.begin(), local.end());
  if (p == 1) return local;

  // Regular sampling: p evenly spaced elements from each rank.
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(p));
  for (int i = 0; i < p; ++i) {
    if (local.empty()) break;
    samples.push_back(local[local.size() * static_cast<size_t>(i) /
                            static_cast<size_t>(p)]);
  }
  auto all_samples = comm.allgatherv(samples);
  std::vector<double> pool;
  for (auto& chunk : all_samples)
    pool.insert(pool.end(), chunk.begin(), chunk.end());
  std::sort(pool.begin(), pool.end());

  // p-1 splitters at regular positions of the pooled sample.
  std::vector<double> splitters;
  splitters.reserve(static_cast<size_t>(p) - 1);
  for (int i = 1; i < p; ++i) {
    if (pool.empty()) break;
    splitters.push_back(
        pool[std::min(pool.size() - 1,
                      pool.size() * static_cast<size_t>(i) /
                          static_cast<size_t>(p))]);
  }

  // Partition the local data by splitter and exchange.
  std::vector<std::vector<double>> outbox(static_cast<size_t>(p));
  size_t lo = 0;
  for (int r = 0; r < p; ++r) {
    size_t hi = local.size();
    if (r + 1 < p && static_cast<size_t>(r) < splitters.size()) {
      hi = static_cast<size_t>(
          std::upper_bound(local.begin() + static_cast<ptrdiff_t>(lo),
                           local.end(), splitters[static_cast<size_t>(r)]) -
          local.begin());
    }
    outbox[static_cast<size_t>(r)].assign(
        local.begin() + static_cast<ptrdiff_t>(lo),
        local.begin() + static_cast<ptrdiff_t>(hi));
    lo = hi;
  }
  auto inbound = comm.all_to_all(outbox, /*tag=*/9001);

  std::vector<double> merged;
  for (auto& chunk : inbound)
    merged.insert(merged.end(), chunk.begin(), chunk.end());
  std::sort(merged.begin(), merged.end());
  return merged;
}

}  // namespace peek::dist
