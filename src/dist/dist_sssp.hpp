// Distributed Δ-stepping (§6.2): each rank owns a 1-D row slice; bucket
// epochs are agreed by allreduce; relaxations of remote targets travel as
// (vertex, distance) request messages in an all-to-all exchange — the
// distributed-memory SSSP the pruning stage runs twice.
#pragma once

#include "dist/comm.hpp"
#include "dist/partition.hpp"

namespace peek::dist {

struct DistSsspOptions {
  weight_t delta = 0;  // <= 0: auto (max local weight reduced over ranks / 8)
  /// Backoff schedule for the relaxation-request exchanges (dist/retry.hpp).
  RetryOptions retry;
};

struct DistSsspResult {
  /// Distances of OWNED vertices (index = local id).
  std::vector<weight_t> dist;
  /// Tree parent (global id) of owned vertices.
  std::vector<vid_t> parent;
  /// Edges relaxed by this rank (the GTEPS numerator of Figure 10).
  std::int64_t edges_relaxed = 0;
};

/// Collective: every rank calls with its slice. `source` is a global id.
DistSsspResult dist_delta_stepping(Comm& comm, const LocalGraph& lg,
                                   vid_t source,
                                   const DistSsspOptions& opts = {});

/// Collective convenience: gathers the distributed result into full global
/// dist/parent arrays on every rank.
void gather_global(Comm& comm, const LocalGraph& lg, const DistSsspResult& r,
                   std::vector<weight_t>& dist_out,
                   std::vector<vid_t>& parent_out);

}  // namespace peek::dist
