#include "dist/comm.hpp"

#include <exception>
#include <thread>

#include "fault/injector.hpp"

namespace peek::dist {

namespace detail {

CommState::CommState(int sz)
    : size(sz), box_mutex(static_cast<size_t>(sz)),
      box_cv(static_cast<size_t>(sz)), boxes(static_cast<size_t>(sz)),
      slots(static_cast<size_t>(sz)) {}

}  // namespace detail

void Comm::send_bytes(int dest, int tag, std::vector<std::byte> data) {
  // Fires before the enqueue: a retried send can never be delivered twice.
  if (PEEK_FAULT_FIRE("dist.comm.send"))
    throw TransientError("injected transient send failure");
  auto& st = *state_;
  {
    std::lock_guard<std::mutex> lock(st.box_mutex[static_cast<size_t>(dest)]);
    st.boxes[static_cast<size_t>(dest)].emplace(
        std::make_pair(rank_, tag),
        detail::Message{rank_, tag, std::move(data)});
  }
  st.box_cv[static_cast<size_t>(dest)].notify_all();
}

std::vector<std::byte> Comm::recv_bytes(int src, int tag) {
  auto& st = *state_;
  std::unique_lock<std::mutex> lock(st.box_mutex[static_cast<size_t>(rank_)]);
  auto& box = st.boxes[static_cast<size_t>(rank_)];
  const auto key = std::make_pair(src, tag);
  st.box_cv[static_cast<size_t>(rank_)].wait(
      lock, [&box, &key] { return box.find(key) != box.end(); });
  auto it = box.find(key);
  std::vector<std::byte> payload = std::move(it->second.payload);
  box.erase(it);
  return payload;
}

void Comm::barrier() {
  auto& st = *state_;
  check::UniqueLock lock(st.barrier_mutex);
  const bool my_sense = st.barrier_sense;
  if (++st.barrier_count == st.size) {
    st.barrier_count = 0;
    st.barrier_sense = !st.barrier_sense;
    st.barrier_cv.notify_all();
  } else {
    while (st.barrier_sense == my_sense) st.barrier_cv.wait(lock);
  }
}

void run_ranks(int ranks, const std::function<void(Comm&)>& body) {
  auto state = std::make_shared<detail::CommState>(ranks);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(ranks));
  std::mutex err_mutex;
  std::exception_ptr first_error;
  for (int r = 0; r < ranks; ++r) {
    threads.emplace_back([state, r, &body, &err_mutex, &first_error] {
      Comm comm(state, r);
      try {
        body(comm);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace peek::dist
