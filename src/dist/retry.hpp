// Retry-with-backoff for the message-passing layer: bounded attempts with
// jittered exponential delay. The simulated transport never fails on its
// own, but the fault injector's `dist.comm.send` probe throws TransientError
// from Comm::send_bytes — this wrapper is what makes the distributed
// algorithms ride through it, and is the shape production MPI/RPC transports
// need. The delay schedule is a pure function of (options, attempt), and the
// sleep is injectable, so tests assert the schedule deterministically.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <thread>

#include "obs/metrics.hpp"

namespace peek::dist {

/// A failure worth retrying (lost message, full mailbox, flaky link).
/// Anything else propagates immediately.
struct TransientError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct RetryOptions {
  /// Total tries including the first; the last failure propagates.
  int max_attempts = 4;
  std::chrono::nanoseconds base_delay{1'000'000};  // 1 ms
  double multiplier = 2.0;
  /// Symmetric jitter fraction: delay *= 1 + jitter * u, u in [-1, 1)
  /// derived deterministically from (seed, attempt).
  double jitter = 0.1;
  std::uint64_t seed = 1;
  /// Injectable clock/sleep for tests; null = std::this_thread::sleep_for.
  std::function<void(std::chrono::nanoseconds)> sleep;
};

/// The deterministic delay before retry number `attempt` (0-based: the delay
/// after the first failure is attempt 0).
inline std::chrono::nanoseconds backoff_delay(const RetryOptions& opts,
                                              int attempt) {
  double d = static_cast<double>(opts.base_delay.count());
  for (int i = 0; i < attempt; ++i) d *= opts.multiplier;
  // splitmix64 of (seed, attempt) -> u in [-1, 1).
  std::uint64_t x = opts.seed + static_cast<std::uint64_t>(attempt) + 1;
  x *= 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  const double u =
      static_cast<double>(x >> 11) / static_cast<double>(1ull << 53) * 2.0 -
      1.0;
  d *= 1.0 + opts.jitter * u;
  if (d < 0) d = 0;
  return std::chrono::nanoseconds(static_cast<std::int64_t>(d));
}

/// Runs `fn`, retrying on TransientError up to max_attempts with the
/// backoff schedule above. The final TransientError propagates unchanged.
template <typename F>
auto with_retry(F&& fn, const RetryOptions& opts = {}) -> decltype(fn()) {
  for (int attempt = 0;; ++attempt) {
    try {
      return fn();
    } catch (const TransientError&) {
      if (attempt + 1 >= opts.max_attempts) throw;
      PEEK_COUNT_INC("dist.retry.attempts");
      const auto delay = backoff_delay(opts, attempt);
      if (opts.sleep) {
        opts.sleep(delay);
      } else {
        std::this_thread::sleep_for(delay);
      }
    }
  }
}

}  // namespace peek::dist
