#include "dist/partition.hpp"

#include <algorithm>

namespace peek::dist {

std::vector<vid_t> partition_points(vid_t n, int ranks) {
  std::vector<vid_t> points(static_cast<size_t>(ranks) + 1);
  for (int r = 0; r <= ranks; ++r)
    points[static_cast<size_t>(r)] =
        static_cast<vid_t>(static_cast<std::int64_t>(n) * r / ranks);
  return points;
}

int owner_of(vid_t v, const std::vector<vid_t>& points) {
  auto it = std::upper_bound(points.begin(), points.end(), v);
  return static_cast<int>(it - points.begin()) - 1;
}

namespace {

LocalGraph slice(const CsrGraph& g, int rank, int ranks) {
  const auto points = partition_points(g.num_vertices(), ranks);
  LocalGraph lg;
  lg.rank = rank;
  lg.ranks = ranks;
  lg.n_global = g.num_vertices();
  lg.begin = points[static_cast<size_t>(rank)];
  lg.end = points[static_cast<size_t>(rank) + 1];
  lg.row.reserve(static_cast<size_t>(lg.owned()) + 1);
  lg.row.push_back(0);
  for (vid_t v = lg.begin; v < lg.end; ++v) {
    for (eid_t e = g.edge_begin(v); e < g.edge_end(v); ++e) {
      lg.col.push_back(g.edge_target(e));
      lg.wgt.push_back(g.edge_weight(e));
    }
    lg.row.push_back(static_cast<eid_t>(lg.col.size()));
  }
  return lg;
}

}  // namespace

LocalGraph make_local_graph(const CsrGraph& g, int rank, int ranks) {
  return slice(g, rank, ranks);
}

LocalGraph make_local_reverse_graph(const CsrGraph& g, int rank, int ranks) {
  return slice(g.reverse(), rank, ranks);
}

}  // namespace peek::dist
