#include "dist/dist_peek.hpp"

#include <algorithm>
#include <unordered_set>

#include "fault/injector.hpp"
#include "graph/builder.hpp"
#include "ksp/optyen.hpp"
#include "ksp/yen_engine.hpp"
#include "obs/metrics.hpp"
#include "recover/artifacts.hpp"
#include "recover/manager.hpp"
#include "sssp/dijkstra.hpp"

namespace peek::dist {

namespace {

using ksp::Candidate;
using ksp::CandidateSet;
using sssp::GraphView;
using sssp::SsspResult;

/// Flat encoding of candidate paths for the allgather exchange:
/// per candidate [dev_index, len, v0..v_{len-1}] in the id stream plus one
/// distance in the weight stream.
void encode_candidate(const Candidate& c, std::vector<vid_t>& ids,
                      std::vector<weight_t>& dists) {
  ids.push_back(static_cast<vid_t>(c.dev_index));
  ids.push_back(static_cast<vid_t>(c.path.verts.size()));
  ids.insert(ids.end(), c.path.verts.begin(), c.path.verts.end());
  dists.push_back(c.path.dist);
}

std::vector<Candidate> decode_candidates(const std::vector<vid_t>& ids,
                                         const std::vector<weight_t>& dists) {
  std::vector<Candidate> out;
  size_t i = 0, d = 0;
  while (i < ids.size()) {
    Candidate c;
    c.dev_index = ids[i++];
    const auto len = static_cast<size_t>(ids[i++]);
    c.path.verts.assign(ids.begin() + static_cast<ptrdiff_t>(i),
                        ids.begin() + static_cast<ptrdiff_t>(i + len));
    i += len;
    c.path.dist = dists[d++];
    out.push_back(std::move(c));
  }
  return out;
}

/// Identical on every rank: the serial Algorithm 2 steps 2-3 over the
/// gathered global distance/parent arrays.
weight_t find_upper_bound(const SsspResult& fwd, const SsspResult& rev,
                          vid_t s, vid_t t, int k) {
  const vid_t n = static_cast<vid_t>(fwd.dist.size());
  std::vector<std::pair<weight_t, vid_t>> order;
  order.reserve(static_cast<size_t>(n));
  for (vid_t v = 0; v < n; ++v) {
    if (fwd.dist[v] == kInfDist || rev.dist[v] == kInfDist) continue;
    order.push_back({fwd.dist[v] + rev.dist[v], v});
  }
  std::sort(order.begin(), order.end());
  std::unordered_set<sssp::Path, sssp::PathHash> distinct;
  int valid = 0;
  for (auto [d, v] : order) {
    if (!sssp::combined_path_is_simple(fwd, rev, s, v, t)) continue;
    sssp::Path p = sssp::combined_path(fwd, rev, s, v, t);
    if (p.empty() || !distinct.insert(std::move(p)).second) continue;
    if (++valid == k) return d;
  }
  return kInfDist;
}

/// Loads + validates this rank's checkpoint. False on any of: file missing
/// or corrupt (corrupt-but-checksummed decode failures are quarantined),
/// checkpoint for a different (graph, s, t, k, comm shape) — staleness, not
/// corruption — or compacted vertex ids out of range for this run.
bool load_rank_checkpoint(const std::string& path, std::uint64_t fp, vid_t s,
                          vid_t t, int k, int ranks, int rank, vid_t n_compact,
                          recover::DistCheckpoint& out) {
  recover::ParseResult pr = recover::load_snapshot_file(path);
  if (pr.status.code != fault::Status::kOk) return false;
  fault::Status st = recover::decode_dist_checkpoint(pr.snap, out);
  if (st.code != fault::Status::kOk) {
    // A failed quarantine leaves the corrupt file where it is; the decode
    // failure above already forces a from-scratch run either way.
    if (!recover::quarantine_file(path, st).ok()) {
      PEEK_COUNT_INC("recover.quarantine_failures");
    }
    return false;
  }
  if (out.fingerprint != fp || out.s != s || out.t != t || out.k != k ||
      out.ranks != ranks || out.rank != rank || out.accepted.empty())
    return false;
  const auto in_range = [n_compact](const std::vector<sssp::Path>& ps) {
    for (const auto& p : ps)
      for (vid_t v : p.verts)
        if (v < 0 || v >= n_compact) return false;
    return true;
  };
  return in_range(out.accepted) && in_range(out.pending) && in_range(out.seen);
}

/// Replaces the live stage-4 state with a checkpoint's.
void apply_checkpoint(recover::DistCheckpoint&& c,
                      std::vector<Candidate>& accepted, CandidateSet& cands,
                      int& cand_tag) {
  accepted.clear();
  for (size_t i = 0; i < c.accepted.size(); ++i)
    accepted.push_back({std::move(c.accepted[i]), c.accepted_dev[i]});
  std::vector<Candidate> pending;
  pending.reserve(c.pending.size());
  for (size_t i = 0; i < c.pending.size(); ++i)
    pending.push_back({std::move(c.pending[i]), c.pending_dev[i]});
  cands.restore(std::move(pending), std::move(c.seen));
  cand_tag = c.cand_tag;
}

/// Atomically publishes this rank's stage-4 state. A failed write is counted
/// (recover.write_failures) but never fails the query — the next round
/// simply re-checkpoints.
void write_rank_checkpoint(const std::string& path, std::uint64_t fp, vid_t s,
                           vid_t t, int k, int ranks, int rank, int cand_tag,
                           const std::vector<Candidate>& accepted,
                           const CandidateSet& cands) {
  recover::DistCheckpoint c;
  c.fingerprint = fp;
  c.s = s;
  c.t = t;
  c.k = k;
  c.ranks = ranks;
  c.rank = rank;
  c.cand_tag = cand_tag;
  for (const Candidate& a : accepted) {
    c.accepted.push_back(a.path);
    c.accepted_dev.push_back(a.dev_index);
  }
  for (const Candidate& p : cands.pending()) {
    c.pending.push_back(p.path);
    c.pending_dev.push_back(p.dev_index);
  }
  c.seen = cands.seen_paths();
  const std::vector<std::byte> image = recover::encode_dist_checkpoint(c);
  if (!recover::write_file_atomic(path, image.data(), image.size()).ok()) {
    // Checkpointing is best-effort: a lost round costs recomputation, not
    // correctness (resume is all-or-nothing across ranks anyway).
    PEEK_COUNT_INC("recover.checkpoint_write_failures");
  }
}

}  // namespace

DistPeekResult dist_peek_ksp(Comm& comm, const graph::CsrGraph& g, vid_t s,
                             vid_t t, const DistPeekOptions& opts) {
  DistPeekResult result;
  const vid_t n = g.num_vertices();

  // Stage 1: two distributed SSSPs over the 1-D slices.
  const LocalGraph fwd_slice = make_local_graph(g, comm.rank(), comm.size());
  const LocalGraph rev_slice =
      make_local_reverse_graph(g, comm.rank(), comm.size());
  DistSsspOptions so;
  so.delta = opts.delta;
  so.retry = opts.retry;
  DistSsspResult fwd_local = dist_delta_stepping(comm, fwd_slice, s, so);
  DistSsspResult rev_local = dist_delta_stepping(comm, rev_slice, t, so);
  result.edges_relaxed = comm.allreduce_sum(fwd_local.edges_relaxed) +
                         comm.allreduce_sum(rev_local.edges_relaxed);

  SsspResult fwd, rev;
  gather_global(comm, fwd_slice, fwd_local, fwd.dist, fwd.parent);
  gather_global(comm, rev_slice, rev_local, rev.dist, rev.parent);
  if (rev.dist[s] == kInfDist) return result;  // unreachable

  // Stage 2: upper bound + keep mask — deterministic on the gathered arrays,
  // so every rank computes the identical answer with no extra messages.
  const weight_t b = find_upper_bound(fwd, rev, s, t, opts.k);
  result.upper_bound = b;
  std::vector<std::uint8_t> keep(static_cast<size_t>(n), 0);
  for (vid_t v = 0; v < n; ++v) {
    if (fwd.dist[v] == kInfDist || rev.dist[v] == kInfDist) continue;
    const weight_t d = fwd.dist[v] + rev.dist[v];
    if (b == kInfDist || d <= b) keep[v] = 1;
  }

  // Stage 3: distributed regeneration. Each rank contributes the surviving
  // edges of its OWNED rows; the (tiny) pruned graph is then replicated.
  std::vector<vid_t> old_to_new(static_cast<size_t>(n), kNoVertex);
  std::vector<vid_t> new_to_old;
  for (vid_t v = 0; v < n; ++v) {
    if (keep[v]) {
      old_to_new[v] = static_cast<vid_t>(new_to_old.size());
      new_to_old.push_back(v);
    }
  }
  result.kept_vertices = static_cast<vid_t>(new_to_old.size());
  std::vector<vid_t> edge_ids;      // (new_u, new_v) pairs, flattened
  std::vector<weight_t> edge_wgts;
  for (vid_t lu = 0; lu < fwd_slice.owned(); ++lu) {
    const vid_t gu = fwd_slice.to_global(lu);
    if (!keep[gu]) continue;
    for (eid_t e = fwd_slice.row[lu]; e < fwd_slice.row[lu + 1]; ++e) {
      const vid_t gv = fwd_slice.col[static_cast<size_t>(e)];
      const weight_t w = fwd_slice.wgt[static_cast<size_t>(e)];
      if (!keep[gv]) continue;
      if (b != kInfDist && w > b) continue;  // Algorithm 2 line 13
      edge_ids.push_back(old_to_new[gu]);
      edge_ids.push_back(old_to_new[gv]);
      edge_wgts.push_back(w);
    }
  }
  auto all_ids = comm.allgatherv(edge_ids);
  auto all_wgts = comm.allgatherv(edge_wgts);
  graph::Builder builder(result.kept_vertices);
  for (int rk = 0; rk < comm.size(); ++rk) {
    const auto& ids = all_ids[static_cast<size_t>(rk)];
    const auto& ws = all_wgts[static_cast<size_t>(rk)];
    for (size_t i = 0; i < ws.size(); ++i)
      builder.add_edge(ids[2 * i], ids[2 * i + 1], ws[i]);
  }
  const graph::CsrGraph compacted = builder.build();
  result.kept_edges = compacted.num_edges();
  const vid_t cs = old_to_new[s], ct = old_to_new[t];
  if (cs == kNoVertex || ct == kNoVertex) return result;

  // Stage 4: replicated-state distributed KSP. All ranks hold identical
  // accepted/candidate state; the deviation SSSPs of each accepted path are
  // computed round-robin (outer level of the two-level strategy) and the
  // candidates merged with a deterministic allgather.
  const sssp::BiView view = sssp::BiView::of(compacted);
  const SsspResult rtree = sssp::dijkstra(view.rev, ct);
  sssp::Path first = sssp::path_from_reverse_parents(rtree, cs, ct);
  if (first.empty()) return result;

  std::vector<Candidate> accepted;
  accepted.push_back({std::move(first), 0});
  CandidateSet cands;
  std::vector<std::uint8_t> mask(static_cast<size_t>(result.kept_vertices), 0);

  int cand_tag = 0;  // mailboxes are drained by now; fresh tag space is safe

  // Checkpoint/restart (DESIGN.md §10). Resume is all-or-nothing: every rank
  // must hold a checkpoint for this exact (graph, s, t, k) at the same round,
  // because the replicated-state loop below is a sequence of collectives —
  // ranks entering it at different rounds would exchange mismatched tags.
  const bool ckpt = !opts.checkpoint_dir.empty();
  std::uint64_t fp = 0;
  std::string ckpt_path;
  if (ckpt) {
    fp = recover::graph_fingerprint(g);
    recover::RecoveryManager mgr(opts.checkpoint_dir);
    // Idempotent; safe for every rank to call. On failure the per-round
    // checkpoint writes below fail too (counted there) — the run proceeds
    // without restart protection rather than aborting K-path computation.
    if (!mgr.ensure_dir().ok()) {
      PEEK_COUNT_INC("recover.ensure_dir_failures");
    }
    ckpt_path = mgr.path_for("rank_" + std::to_string(comm.rank()) + ".ckpt");
    recover::DistCheckpoint c;
    int my_round = 0;
    if (load_rank_checkpoint(ckpt_path, fp, s, t, opts.k, comm.size(),
                             comm.rank(), result.kept_vertices, c))
      my_round = static_cast<int>(c.accepted.size());
    const auto rounds = comm.allgather(my_round);
    const bool agree =
        my_round > 0 && std::all_of(rounds.begin(), rounds.end(),
                                    [&](int r) { return r == my_round; });
    if (agree) {
      apply_checkpoint(std::move(c), accepted, cands, cand_tag);
      PEEK_COUNT_INC("dist.rank_restarts");
    }
    write_rank_checkpoint(ckpt_path, fp, s, t, opts.k, comm.size(),
                          comm.rank(), cand_tag, accepted, cands);
  }

  while (static_cast<int>(accepted.size()) < opts.k) {
    if (ckpt && PEEK_FAULT_FIRE("dist.rank_fail")) {
      // Simulated rank crash at a round boundary: drop the live state and
      // rebuild it from the checkpoint written at the end of the previous
      // round. The checkpoint always equals the state just dropped, so the
      // restart is invisible to the other ranks (no re-sync needed).
      recover::DistCheckpoint c;
      if (load_rank_checkpoint(ckpt_path, fp, s, t, opts.k, comm.size(),
                               comm.rank(), result.kept_vertices, c)) {
        apply_checkpoint(std::move(c), accepted, cands, cand_tag);
        PEEK_COUNT_INC("dist.rank_restarts");
      }
    }
    const Candidate cur = accepted.back();
    const auto& p = cur.path.verts;
    const int len = static_cast<int>(p.size());
    const auto cum = ksp::detail::cumulative_distances(view.fwd, p);

    std::vector<vid_t> my_ids;
    std::vector<weight_t> my_dists;
    for (int i = cur.dev_index; i < len - 1; ++i) {
      if (i % comm.size() != comm.rank()) continue;  // round-robin ownership
      const vid_t v = p[static_cast<size_t>(i)];
      for (int j = 0; j < i; ++j) mask[p[static_cast<size_t>(j)]] = 1;
      const auto banned = ksp::detail::banned_edges_at(view.fwd, accepted, p, i);
      std::vector<vid_t> prefix(p.begin(), p.begin() + i + 1);
      ksp::detail::DeviationContext ctx{prefix, v, cum[static_cast<size_t>(i)],
                                        mask.data(), banned, i};
      sssp::Path suffix = ksp::detail::optyen_tree_shortcut(view.fwd, rtree, ct, ctx);
      if (suffix.empty()) {
        sssp::DijkstraOptions dj;
        dj.target = ct;
        dj.bans = {mask.data(), &banned};
        auto rr = sssp::dijkstra(view.fwd, v, dj);
        suffix = sssp::path_from_parents(rr, v, ct);
      }
      for (int j = 0; j < i; ++j) mask[p[static_cast<size_t>(j)]] = 0;
      if (suffix.empty()) continue;
      Candidate cand;
      cand.dev_index = i;
      cand.path.verts.assign(p.begin(), p.begin() + i);
      cand.path.verts.insert(cand.path.verts.end(), suffix.verts.begin(),
                             suffix.verts.end());
      cand.path.dist = cum[static_cast<size_t>(i)] + suffix.dist;
      encode_candidate(cand, my_ids, my_dists);
    }

    auto all_cand_ids = comm.allgatherv_reliable(my_ids, cand_tag++, opts.retry);
    auto all_cand_dists =
        comm.allgatherv_reliable(my_dists, cand_tag++, opts.retry);
    for (int rk = 0; rk < comm.size(); ++rk) {
      for (Candidate& c : decode_candidates(all_cand_ids[static_cast<size_t>(rk)],
                                            all_cand_dists[static_cast<size_t>(rk)]))
        cands.push(std::move(c.path), c.dev_index);
    }
    auto next = cands.pop_min();
    if (!next) break;
    accepted.push_back(std::move(*next));
    if (ckpt)
      write_rank_checkpoint(ckpt_path, fp, s, t, opts.k, comm.size(),
                            comm.rank(), cand_tag, accepted, cands);
  }

  // Translate back to original ids.
  result.ksp.paths.reserve(accepted.size());
  for (Candidate& c : accepted) {
    for (auto& v : c.path.verts) v = new_to_old[v];
    result.ksp.paths.push_back(std::move(c.path));
  }
  return result;
}

}  // namespace peek::dist
