// Row-wise 1-D graph partitioning (§6.2): rank r owns a contiguous vertex
// range and the full out-adjacency of those vertices — the Graph500-style
// layout. Communication-friendly: a relaxation of edge (u, v) is generated
// by u's owner and applied by v's owner.
//
// The same cut points also serve as the serving tier's locality key:
// shard::ShardRouter hashes (block of s, block of t) over partition_points
// blocks, so queries with co-located endpoints share a shard's caches
// (DESIGN.md §12).
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace peek::dist {

using graph::CsrGraph;

/// One rank's slice of a 1-D row partition.
struct LocalGraph {
  int rank = 0;
  int ranks = 1;
  vid_t n_global = 0;
  vid_t begin = 0;  // owned vertex range [begin, end)
  vid_t end = 0;

  /// Local CSR over owned rows; row i is global vertex begin + i. Column ids
  /// stay GLOBAL (targets may be remote).
  std::vector<eid_t> row;      // (end-begin)+1
  std::vector<vid_t> col;
  std::vector<weight_t> wgt;

  vid_t owned() const { return end - begin; }
  bool owns(vid_t global) const { return global >= begin && global < end; }
  vid_t to_local(vid_t global) const { return global - begin; }
  vid_t to_global(vid_t local) const { return local + begin; }
};

/// The vertex-range cut points for `ranks` equal-vertex-count parts.
std::vector<vid_t> partition_points(vid_t n, int ranks);

/// Owner rank of a global vertex under `partition_points(n, ranks)`.
int owner_of(vid_t v, const std::vector<vid_t>& points);

/// Extracts rank `r`'s slice of `g` (out-edges of owned vertices).
LocalGraph make_local_graph(const CsrGraph& g, int rank, int ranks);

/// Extracts the slice of the TRANSPOSE (in-edges of owned vertices, i.e. the
/// reverse orientation used by the second SSSP of the pruning stage).
LocalGraph make_local_reverse_graph(const CsrGraph& g, int rank, int ranks);

}  // namespace peek::dist
