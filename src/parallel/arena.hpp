// ScratchArena: a resettable chunked bump allocator for per-worker scratch
// memory. The Yen-family deviation loop runs thousands of restricted SSSPs
// per query; each used to allocate fresh dist/parent/visited buffers. An
// arena lets a worker pay the allocation once, then serve every subsequent
// pass from retained capacity — reset() rewinds the cursor in O(#blocks)
// without releasing memory.
//
// Lifetime rules (DESIGN.md §11): an arena is owned by exactly one worker
// and never shared across threads; allocations are valid until the next
// reset(); reset() is only legal between passes (no outstanding pointers).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace peek::par {

class ScratchArena {
 public:
  ScratchArena() = default;
  ScratchArena(ScratchArena&&) = default;
  ScratchArena& operator=(ScratchArena&&) = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// `bytes` of storage aligned to `align` (a power of two), valid until the
  /// next reset(). Contents are uninitialized.
  void* allocate(std::size_t bytes, std::size_t align);

  /// Typed convenience: `count` default-aligned Ts (uninitialized).
  template <typename T>
  T* alloc_array(std::size_t count) {
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// Rewinds every block to empty. Capacity (and block addresses) are
  /// retained, so a same-shaped next pass allocates the exact same pointers
  /// without touching the heap.
  void reset();

  /// Releases all memory (used when rebinding to a different graph size).
  void release();

  /// Total bytes reserved from the heap across all blocks.
  std::size_t reserved_bytes() const { return reserved_; }

  /// Cumulative bytes served from already-reserved capacity (i.e. without a
  /// heap allocation) — the `ksp.arena.reuse_bytes` counter's source.
  std::size_t reused_bytes() const { return reused_; }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  static constexpr std::size_t kMinBlock = 64 * 1024;

  std::vector<Block> blocks_;
  std::size_t cursor_ = 0;  // index of the block currently bumping
  std::size_t reserved_ = 0;
  std::size_t reused_ = 0;
};

}  // namespace peek::par
