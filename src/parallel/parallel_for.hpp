// Thin OpenMP wrappers so call sites stay readable and the library can be
// built without OpenMP (the wrappers degrade to serial loops).
#pragma once

#include <cstdint>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace peek::par {

/// Number of threads the next parallel region will use.
inline int max_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

inline int thread_id() {
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

/// RAII guard that pins the OpenMP thread count inside a scope — used by the
/// scalability benches to sweep 1..32 threads.
class ThreadScope {
 public:
  explicit ThreadScope(int threads) {
#ifdef _OPENMP
    saved_ = omp_get_max_threads();
    omp_set_num_threads(threads);
#else
    (void)threads;
#endif
  }
  ~ThreadScope() {
#ifdef _OPENMP
    omp_set_num_threads(saved_);
#endif
  }
  ThreadScope(const ThreadScope&) = delete;
  ThreadScope& operator=(const ThreadScope&) = delete;

 private:
  int saved_ = 1;
};

/// parallel for over [begin, end) with static schedule.
template <typename Index, typename Body>
void parallel_for(Index begin, Index end, Body&& body) {
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
  for (Index i = begin; i < end; ++i) body(i);
#else
  for (Index i = begin; i < end; ++i) body(i);
#endif
}

/// parallel for with dynamic scheduling — for skewed per-iteration work
/// (vertex loops on power-law graphs).
template <typename Index, typename Body>
void parallel_for_dynamic(Index begin, Index end, Body&& body,
                          int chunk = 64) {
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, chunk)
  for (Index i = begin; i < end; ++i) body(i);
#else
  (void)chunk;
  for (Index i = begin; i < end; ++i) body(i);
#endif
}

/// Parallel sum-reduction over [begin, end) of body(i).
template <typename Index, typename Body>
std::int64_t parallel_count(Index begin, Index end, Body&& body) {
  std::int64_t total = 0;
#ifdef _OPENMP
#pragma omp parallel for schedule(static) reduction(+ : total)
  for (Index i = begin; i < end; ++i) total += body(i) ? 1 : 0;
#else
  for (Index i = begin; i < end; ++i) total += body(i) ? 1 : 0;
#endif
  return total;
}

}  // namespace peek::par
