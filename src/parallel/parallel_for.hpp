// Thin wrappers around the parallel backend so call sites stay readable and
// the library can swap how loops are executed without touching algorithms.
//
// Backend selection (strongest available wins):
//   - PEEK_PARALLEL_STDTHREAD=1 — a std::thread fork/join backend. Used by
//     the ThreadSanitizer build (PEEK_SANITIZE=thread): gcc/clang's OpenMP
//     runtimes are not TSan-instrumented, so TSan cannot see their barriers
//     and reports false races at every region boundary. The std::thread
//     backend synchronizes with plain pthread create/join, which TSan models
//     exactly — races it reports in loop bodies are real.
//   - _OPENMP — the production backend (#pragma omp).
//   - neither — serial loops.
//
// Semantics shared by all backends: thread_id() is the worker index within
// the innermost active region (0 on the caller outside any region), nested
// regions run serially inline (OpenMP's default nesting behaviour), and
// ThreadScope pins the worker count for regions started inside its scope.
#pragma once

#include <cstdint>

#if defined(PEEK_PARALLEL_STDTHREAD) && PEEK_PARALLEL_STDTHREAD
#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>
#elif defined(_OPENMP)
#include <omp.h>
#endif

namespace peek::par {

#if defined(PEEK_PARALLEL_STDTHREAD) && PEEK_PARALLEL_STDTHREAD

namespace detail {

/// Worker-count override installed by ThreadScope; 0 = hardware default.
inline std::atomic<int>& configured_threads() {
  static std::atomic<int> v{0};
  return v;
}

inline bool& tl_in_region() noexcept {
  thread_local bool in_region = false;
  return in_region;
}
inline int& tl_worker_slot() noexcept {
  thread_local int id = 0;
  return id;
}
inline int tl_worker_id() noexcept { return tl_worker_slot(); }

/// RAII worker identity for the duration of one region (restores the
/// caller's id so regions nest like OpenMP teams).
class RegionGuard {
 public:
  explicit RegionGuard(int id)
      : saved_id_(tl_worker_slot()), saved_in_(tl_in_region()) {
    tl_worker_slot() = id;
    tl_in_region() = true;
  }
  ~RegionGuard() {
    tl_worker_slot() = saved_id_;
    tl_in_region() = saved_in_;
  }
  RegionGuard(const RegionGuard&) = delete;
  RegionGuard& operator=(const RegionGuard&) = delete;

 private:
  int saved_id_;
  bool saved_in_;
};

inline int hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

/// Fork/join helper: runs work(worker) on `nt` workers (caller is worker 0).
/// Thread join gives TSan (and the caller) the full happens-before edge for
/// everything the workers wrote.
template <typename Work>
void fork_join(int nt, const Work& work) {
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(nt > 0 ? nt - 1 : 0));
  for (int w = 1; w < nt; ++w) {
    pool.emplace_back([&work, w] {
      RegionGuard guard(w);
      work(w);
    });
  }
  {
    RegionGuard guard(0);
    work(0);
  }
  for (auto& th : pool) th.join();
}

}  // namespace detail

/// Number of workers the next region will use.
inline int max_threads() {
  const int v = detail::configured_threads().load(std::memory_order_relaxed);
  return v > 0 ? v : detail::hardware_threads();
}

/// Worker index inside the innermost region; 0 outside any region.
inline int thread_id() { return detail::tl_worker_id(); }

/// RAII guard that pins the worker count inside a scope — used by the
/// scalability benches to sweep 1..32 threads.
class ThreadScope {
 public:
  explicit ThreadScope(int threads)
      : saved_(detail::configured_threads().load(std::memory_order_relaxed)) {
    detail::configured_threads().store(threads, std::memory_order_relaxed);
  }
  ~ThreadScope() {
    detail::configured_threads().store(saved_, std::memory_order_relaxed);
  }
  ThreadScope(const ThreadScope&) = delete;
  ThreadScope& operator=(const ThreadScope&) = delete;

 private:
  int saved_ = 0;
};

/// parallel for over [begin, end) with static (blocked) schedule.
template <typename Index, typename Body>
void parallel_for(Index begin, Index end, Body&& body) {
  if (begin >= end) return;
  const auto n = static_cast<std::int64_t>(end - begin);
  const int nt = detail::tl_in_region()
                     ? 1
                     : static_cast<int>(std::min<std::int64_t>(max_threads(), n));
  if (nt <= 1) {
    for (Index i = begin; i < end; ++i) body(i);
    return;
  }
  const std::int64_t chunk = (n + nt - 1) / nt;
  detail::fork_join(nt, [&](int w) {
    const std::int64_t lo = static_cast<std::int64_t>(w) * chunk;
    const std::int64_t hi = std::min<std::int64_t>(lo + chunk, n);
    for (std::int64_t i = lo; i < hi; ++i)
      body(static_cast<Index>(begin + static_cast<Index>(i)));
  });
}

/// parallel for with dynamic scheduling — for skewed per-iteration work
/// (vertex loops on power-law graphs). Workers claim `chunk`-sized slices
/// from a shared cursor.
template <typename Index, typename Body>
void parallel_for_dynamic(Index begin, Index end, Body&& body,
                          int chunk = 64) {
  if (begin >= end) return;
  const auto n = static_cast<std::int64_t>(end - begin);
  const int nt = detail::tl_in_region()
                     ? 1
                     : static_cast<int>(std::min<std::int64_t>(max_threads(), n));
  if (nt <= 1) {
    for (Index i = begin; i < end; ++i) body(i);
    return;
  }
  const std::int64_t step = chunk > 0 ? chunk : 1;
  std::atomic<std::int64_t> next{0};
  detail::fork_join(nt, [&](int) {
    for (;;) {
      const std::int64_t lo = next.fetch_add(step, std::memory_order_relaxed);
      if (lo >= n) break;
      const std::int64_t hi = std::min<std::int64_t>(lo + step, n);
      for (std::int64_t i = lo; i < hi; ++i)
        body(static_cast<Index>(begin + static_cast<Index>(i)));
    }
  });
}

/// Parallel sum-reduction over [begin, end) of body(i).
template <typename Index, typename Body>
std::int64_t parallel_count(Index begin, Index end, Body&& body) {
  if (begin >= end) return 0;
  const auto n = static_cast<std::int64_t>(end - begin);
  const int nt = detail::tl_in_region()
                     ? 1
                     : static_cast<int>(std::min<std::int64_t>(max_threads(), n));
  if (nt <= 1) {
    std::int64_t total = 0;
    for (Index i = begin; i < end; ++i) total += body(i) ? 1 : 0;
    return total;
  }
  struct alignas(64) Partial {
    std::int64_t v = 0;
  };
  std::vector<Partial> partials(static_cast<size_t>(nt));
  const std::int64_t chunk = (n + nt - 1) / nt;
  detail::fork_join(nt, [&](int w) {
    const std::int64_t lo = static_cast<std::int64_t>(w) * chunk;
    const std::int64_t hi = std::min<std::int64_t>(lo + chunk, n);
    std::int64_t sum = 0;
    for (std::int64_t i = lo; i < hi; ++i)
      sum += body(static_cast<Index>(begin + static_cast<Index>(i))) ? 1 : 0;
    partials[static_cast<size_t>(w)].v = sum;
  });
  std::int64_t total = 0;
  for (const auto& p : partials) total += p.v;
  return total;
}

#else  // OpenMP or serial backend

/// Number of threads the next parallel region will use.
inline int max_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

inline int thread_id() {
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

/// RAII guard that pins the OpenMP thread count inside a scope — used by the
/// scalability benches to sweep 1..32 threads.
class ThreadScope {
 public:
  explicit ThreadScope(int threads) {
#ifdef _OPENMP
    saved_ = omp_get_max_threads();
    omp_set_num_threads(threads);
#else
    (void)threads;
#endif
  }
  ~ThreadScope() {
#ifdef _OPENMP
    omp_set_num_threads(saved_);
#endif
  }
  ThreadScope(const ThreadScope&) = delete;
  ThreadScope& operator=(const ThreadScope&) = delete;

 private:
  int saved_ = 1;
};

/// parallel for over [begin, end) with static schedule.
template <typename Index, typename Body>
void parallel_for(Index begin, Index end, Body&& body) {
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
  for (Index i = begin; i < end; ++i) body(i);
#else
  for (Index i = begin; i < end; ++i) body(i);
#endif
}

/// parallel for with dynamic scheduling — for skewed per-iteration work
/// (vertex loops on power-law graphs).
template <typename Index, typename Body>
void parallel_for_dynamic(Index begin, Index end, Body&& body,
                          int chunk = 64) {
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, chunk)
  for (Index i = begin; i < end; ++i) body(i);
#else
  (void)chunk;
  for (Index i = begin; i < end; ++i) body(i);
#endif
}

/// Parallel sum-reduction over [begin, end) of body(i).
template <typename Index, typename Body>
std::int64_t parallel_count(Index begin, Index end, Body&& body) {
  std::int64_t total = 0;
#ifdef _OPENMP
#pragma omp parallel for schedule(static) reduction(+ : total)
  for (Index i = begin; i < end; ++i) total += body(i) ? 1 : 0;
#else
  for (Index i = begin; i < end; ++i) total += body(i) ? 1 : 0;
#endif
  return total;
}

#endif  // backend selection

}  // namespace peek::par
