#include "parallel/sort.hpp"

#include <numeric>

namespace peek::par {

std::vector<std::int32_t> sort_permutation(const std::vector<double>& keys) {
  std::vector<std::int32_t> perm(keys.size());
  std::iota(perm.begin(), perm.end(), 0);
  parallel_sort(perm.begin(), perm.end(), [&keys](std::int32_t a, std::int32_t b) {
    if (keys[static_cast<size_t>(a)] != keys[static_cast<size_t>(b)])
      return keys[static_cast<size_t>(a)] < keys[static_cast<size_t>(b)];
    return a < b;  // deterministic tie-break
  });
  return perm;
}

}  // namespace peek::par
