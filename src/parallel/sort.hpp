// Parallel merge sort (OpenMP tasks, or fork/join std::threads under the
// PEEK_PARALLEL_STDTHREAD backend — see parallel_for.hpp). Stand-in for the
// Boost block-indirect sort the paper uses to order the distance-sum array
// (§6.2).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "parallel/parallel_for.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace peek::par {

namespace detail {

#if defined(PEEK_PARALLEL_STDTHREAD) && PEEK_PARALLEL_STDTHREAD

template <typename It, typename Cmp>
void merge_sort_rec(It first, It last,
                    typename std::iterator_traits<It>::value_type* buf,
                    Cmp cmp, int depth) {
  const auto n = last - first;
  if (n < 4096 || depth <= 0) {
    std::sort(first, last, cmp);
    return;
  }
  const auto mid = n / 2;
  std::thread right([&] {
    merge_sort_rec(first + mid, last, buf + mid, cmp, depth - 1);
  });
  merge_sort_rec(first, first + mid, buf, cmp, depth - 1);
  right.join();
  std::merge(first, first + mid, first + mid, last, buf, cmp);
  std::copy(buf, buf + n, first);
}

#else

template <typename It, typename Cmp>
void merge_sort_rec(It first, It last,
                    typename std::iterator_traits<It>::value_type* buf,
                    Cmp cmp, int depth) {
  const auto n = last - first;
  if (n < 4096 || depth <= 0) {
    std::sort(first, last, cmp);
    return;
  }
  const auto mid = n / 2;
#ifdef _OPENMP
#pragma omp task shared(cmp)
  merge_sort_rec(first, first + mid, buf, cmp, depth - 1);
#pragma omp task shared(cmp)
  merge_sort_rec(first + mid, last, buf + mid, cmp, depth - 1);
#pragma omp taskwait
#else
  merge_sort_rec(first, first + mid, buf, cmp, depth - 1);
  merge_sort_rec(first + mid, last, buf + mid, cmp, depth - 1);
#endif
  std::merge(first, first + mid, first + mid, last, buf, cmp);
  std::copy(buf, buf + n, first);
}

#endif  // PEEK_PARALLEL_STDTHREAD

/// Recursion depth that spawns parallel work: enough levels to occupy the
/// configured worker count (each level doubles the task count).
inline int sort_spawn_depth() {
  int depth = 0;
  for (int t = 1; t < max_threads() && depth < 8; t <<= 1) ++depth;
  return depth;
}

}  // namespace detail

/// Sorts [first, last) with `cmp` using task-parallel merge sort. Falls back
/// to std::sort for small inputs. Not stable.
template <typename It, typename Cmp = std::less<>>
void parallel_sort(It first, It last, Cmp cmp = {}) {
  const auto n = last - first;
  if (n < 2) return;
  std::vector<typename std::iterator_traits<It>::value_type> buf(
      static_cast<size_t>(n));
#if defined(PEEK_PARALLEL_STDTHREAD) && PEEK_PARALLEL_STDTHREAD
  detail::merge_sort_rec(first, last, buf.data(), cmp,
                         detail::sort_spawn_depth());
#elif defined(_OPENMP)
#pragma omp parallel
#pragma omp single nowait
  detail::merge_sort_rec(first, last, buf.data(), cmp, /*depth=*/8);
#else
  detail::merge_sort_rec(first, last, buf.data(), cmp, 8);
#endif
}

/// Returns a permutation `p` of [0, n) such that keys[p[0]] <= keys[p[1]] <= …
/// Used to order vertices by distance sum without moving the distance array.
std::vector<std::int32_t> sort_permutation(const std::vector<double>& keys);

}  // namespace peek::par
