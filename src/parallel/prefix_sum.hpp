// Parallel prefix sums (Blelloch-style two-pass) — used by the regeneration
// compaction to place each surviving vertex's edges in the new CSR (§6.1).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace peek::par {

/// Exclusive prefix sum: out[i] = sum of in[0..i). Returns the grand total.
/// `out` may alias `in`. Two-pass parallel algorithm (per-chunk partials,
/// then chunk-offset sweep).
std::int64_t exclusive_prefix_sum(std::span<const std::int64_t> in,
                                  std::span<std::int64_t> out);

/// Inclusive prefix sum: out[i] = sum of in[0..i]. Returns the grand total.
std::int64_t inclusive_prefix_sum(std::span<const std::int64_t> in,
                                  std::span<std::int64_t> out);

/// Convenience allocating overloads.
std::vector<std::int64_t> exclusive_prefix_sum(const std::vector<std::int64_t>& in);
std::vector<std::int64_t> inclusive_prefix_sum(const std::vector<std::int64_t>& in);

}  // namespace peek::par
