#include "parallel/partitioner.hpp"

#include <algorithm>
#include <stdexcept>

namespace peek::par {

std::vector<VertexRange> partition_by_edges(const graph::CsrGraph& g, int parts) {
  if (parts <= 0) throw std::invalid_argument("partition_by_edges: parts <= 0");
  const vid_t n = g.num_vertices();
  const eid_t m = g.num_edges();
  std::vector<VertexRange> ranges;
  ranges.reserve(static_cast<size_t>(parts));
  auto offsets = g.row_offsets();
  vid_t prev = 0;
  for (int p = 1; p <= parts; ++p) {
    // Find the first vertex whose offset reaches p/parts of the edges.
    const eid_t target = m * p / parts;
    auto it = std::lower_bound(offsets.begin() + prev, offsets.end(), target);
    vid_t cut = static_cast<vid_t>(it - offsets.begin());
    cut = std::min(cut, n);
    if (p == parts) cut = n;
    ranges.push_back({prev, cut});
    prev = cut;
  }
  return ranges;
}

std::vector<VertexRange> partition_by_vertices(vid_t n, int parts) {
  if (parts <= 0) throw std::invalid_argument("partition_by_vertices: parts <= 0");
  std::vector<VertexRange> ranges;
  ranges.reserve(static_cast<size_t>(parts));
  const vid_t chunk = (n + parts - 1) / parts;
  for (int p = 0; p < parts; ++p) {
    const vid_t lo = std::min<vid_t>(static_cast<vid_t>(p) * chunk, n);
    const vid_t hi = std::min<vid_t>(lo + chunk, n);
    ranges.push_back({lo, hi});
  }
  return ranges;
}

}  // namespace peek::par
