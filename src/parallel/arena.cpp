#include "parallel/arena.hpp"

#include <algorithm>

#include "check/invariants.hpp"

namespace peek::par {

namespace {

/// Bytes of padding that bring `addr` up to `align` (a power of two).
std::size_t pad_to(std::uintptr_t addr, std::size_t align) {
  return (align - (addr & (align - 1))) & (align - 1);
}

}  // namespace

void* ScratchArena::allocate(std::size_t bytes, std::size_t align) {
  PEEK_DCHECK_MSG(align != 0 && (align & (align - 1)) == 0,
                  "alignment must be a power of two");
  if (bytes == 0) bytes = 1;
  // Try the current and any later block (earlier ones are full by
  // construction — the cursor only moves forward between resets).
  for (; cursor_ < blocks_.size(); ++cursor_) {
    Block& b = blocks_[cursor_];
    const auto base = reinterpret_cast<std::uintptr_t>(b.data.get());
    const std::size_t pad = pad_to(base + b.used, align);
    if (b.used + pad + bytes <= b.size) {
      void* p = b.data.get() + b.used + pad;
      b.used += pad + bytes;
      reused_ += bytes;
      return p;
    }
  }
  // No room: reserve a fresh block (geometric growth over the largest block
  // so long-lived arenas converge to O(1) blocks per pass).
  std::size_t want = std::max(kMinBlock, bytes + align);
  if (!blocks_.empty()) want = std::max(want, blocks_.back().size * 2);
  Block b;
  b.data = std::make_unique<std::byte[]>(want);
  b.size = want;
  reserved_ += want;
  blocks_.push_back(std::move(b));
  cursor_ = blocks_.size() - 1;
  Block& nb = blocks_[cursor_];
  const auto base = reinterpret_cast<std::uintptr_t>(nb.data.get());
  const std::size_t pad = pad_to(base, align);
  nb.used = pad + bytes;
  return nb.data.get() + pad;
}

void ScratchArena::reset() {
  for (Block& b : blocks_) b.used = 0;
  cursor_ = 0;
}

void ScratchArena::release() {
  blocks_.clear();
  cursor_ = 0;
  reserved_ = 0;
}

}  // namespace peek::par
