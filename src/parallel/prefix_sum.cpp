#include "parallel/prefix_sum.hpp"

#include <algorithm>

#include "check/invariants.hpp"
#include "parallel/parallel_for.hpp"

namespace peek::par {

namespace {

/// Shared body: inclusive if `inclusive`, else exclusive.
std::int64_t scan(std::span<const std::int64_t> in, std::span<std::int64_t> out,
                  bool inclusive) {
  PEEK_DCHECK(in.size() == out.size());
  const std::int64_t n = static_cast<std::int64_t>(in.size());
  if (n == 0) return 0;
  const int threads =
      static_cast<int>(std::min<std::int64_t>(max_threads(), n));
  const std::int64_t chunk = (n + threads - 1) / threads;
  std::vector<std::int64_t> partial(static_cast<size_t>(threads) + 1, 0);

  // Pass 1: per-chunk totals.
  parallel_for(0, threads, [&](int t) {
    const std::int64_t lo = t * chunk, hi = std::min<std::int64_t>(lo + chunk, n);
    std::int64_t sum = 0;
    for (std::int64_t i = lo; i < hi; ++i) sum += in[static_cast<size_t>(i)];
    partial[static_cast<size_t>(t) + 1] = sum;
  });
  for (int t = 0; t < threads; ++t) partial[t + 1] += partial[t];

  // Pass 2: local scan with chunk offset.
  parallel_for(0, threads, [&](int t) {
    const std::int64_t lo = t * chunk, hi = std::min<std::int64_t>(lo + chunk, n);
    std::int64_t run = partial[static_cast<size_t>(t)];
    for (std::int64_t i = lo; i < hi; ++i) {
      const std::int64_t x = in[static_cast<size_t>(i)];
      if (inclusive) {
        run += x;
        out[static_cast<size_t>(i)] = run;
      } else {
        out[static_cast<size_t>(i)] = run;
        run += x;
      }
    }
  });
  return partial.back();
}

}  // namespace

std::int64_t exclusive_prefix_sum(std::span<const std::int64_t> in,
                                  std::span<std::int64_t> out) {
  return scan(in, out, /*inclusive=*/false);
}

std::int64_t inclusive_prefix_sum(std::span<const std::int64_t> in,
                                  std::span<std::int64_t> out) {
  return scan(in, out, /*inclusive=*/true);
}

std::vector<std::int64_t> exclusive_prefix_sum(const std::vector<std::int64_t>& in) {
  std::vector<std::int64_t> out(in.size());
  exclusive_prefix_sum(std::span<const std::int64_t>(in), std::span<std::int64_t>(out));
  return out;
}

std::vector<std::int64_t> inclusive_prefix_sum(const std::vector<std::int64_t>& in) {
  std::vector<std::int64_t> out(in.size());
  inclusive_prefix_sum(std::span<const std::int64_t>(in), std::span<std::int64_t>(out));
  return out;
}

}  // namespace peek::par
