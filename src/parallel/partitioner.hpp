// Edge-balanced vertex partitioning (§6.2): split [0, n) into `parts` ranges
// so each range holds approximately the same number of edges, preventing the
// skewed-degree imbalance a naive equal-vertex split would cause.
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace peek::par {

struct VertexRange {
  vid_t begin;
  vid_t end;  // exclusive
};

/// Splits the vertices of `g` into `parts` contiguous ranges of roughly equal
/// out-edge count (binary search over the CSR row offsets).
std::vector<VertexRange> partition_by_edges(const graph::CsrGraph& g, int parts);

/// Equal-vertex-count split (reference/baseline).
std::vector<VertexRange> partition_by_vertices(vid_t n, int parts);

}  // namespace peek::par
