#include "compact/adaptive.hpp"

#include <atomic>

#include "obs/metrics.hpp"
#include "parallel/parallel_for.hpp"

namespace peek::compact {

const char* to_string(Strategy s) {
  switch (s) {
    case Strategy::kEdgeSwap: return "edge-swap";
    case Strategy::kRegeneration: return "regeneration";
    case Strategy::kStatusArray: return "status-array";
  }
  return "?";
}

Strategy choose_strategy(eid_t m_remaining, eid_t m_original, double alpha) {
  const Strategy s =
      static_cast<double>(m_remaining) < alpha * static_cast<double>(m_original)
          ? Strategy::kRegeneration
          : Strategy::kEdgeSwap;
  if (m_original > 0) {
    PEEK_GAUGE_SET("compact.remaining_edge_ratio",
                   static_cast<double>(m_remaining) /
                       static_cast<double>(m_original));
  }
  if (s == Strategy::kRegeneration) {
    PEEK_COUNT_INC("compact.strategy.regeneration");
  } else {
    PEEK_COUNT_INC("compact.strategy.edge_swap");
  }
  return s;
}

eid_t count_remaining_edges(const GraphView& view,
                            const std::uint8_t* vertex_keep,
                            const EdgeKeep& keep, bool parallel) {
  PEEK_TIMER_SCOPE("compact.count_remaining");
  auto vertex_kept = [&](vid_t v) {
    return view.vertex_alive(v) && (!vertex_keep || vertex_keep[v]);
  };
  std::atomic<eid_t> total{0};
  auto body = [&](vid_t v) {
    if (!vertex_kept(v)) return;
    eid_t local = 0;
    for (eid_t e = view.edge_begin(v); e < view.edge_end(v); ++e) {
      if (!view.edge_alive(e)) continue;
      const vid_t w = view.edge_target(e);
      if (!vertex_kept(w)) continue;
      if (keep && !keep(v, w, view.edge_weight(e))) continue;
      local++;
    }
    total.fetch_add(local, std::memory_order_relaxed);
  };
  if (parallel) par::parallel_for_dynamic(vid_t{0}, view.num_vertices(), body);
  else for (vid_t v = 0; v < view.num_vertices(); ++v) body(v);
  return total.load();
}

CompactionResult adaptive_compact(MutableCsr& g, eid_t m_original,
                                  const std::uint8_t* vertex_keep,
                                  const EdgeKeep& keep,
                                  const AdaptiveOptions& opts) {
  CompactionResult result;
  const eid_t m_r =
      count_remaining_edges(g.view(), vertex_keep, keep, opts.parallel);
  result.remaining_edges = m_r;
  result.strategy = choose_strategy(m_r, m_original, opts.alpha);
  if (result.strategy == Strategy::kRegeneration) {
    result.regenerated =
        regenerate(g.view(), vertex_keep, keep, {.parallel = opts.parallel});
  } else {
    edge_swap_compact(g, vertex_keep, keep, {.parallel = opts.parallel});
    result.swapped = g.biview();
  }
  return result;
}

}  // namespace peek::compact
