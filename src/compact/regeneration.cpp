#include "compact/regeneration.hpp"

#include <new>

#include "fault/injector.hpp"
#include "obs/metrics.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/prefix_sum.hpp"

namespace peek::compact {

namespace {

RegeneratedGraph regenerate_impl(const GraphView& view,
                                 const std::uint8_t* vertex_keep,
                                 const EdgeKeep& keep,
                                 const RegenerationOptions& opts) {
  PEEK_TIMER_SCOPE("compact.regenerate");
  PEEK_FAULT_ALLOC("compact.regenerate.alloc");
  fault::CancelPoll poll(opts.cancel, /*stride=*/1);
  const vid_t n_old = view.num_vertices();

  auto vertex_kept = [&](vid_t v) {
    if (!view.vertex_alive(v)) return false;
    return vertex_keep == nullptr || vertex_keep[v] != 0;
  };
  auto edge_kept = [&](vid_t u, eid_t e) {
    if (!view.edge_alive(e)) return false;
    const vid_t v = view.edge_target(e);
    if (!vertex_kept(v)) return false;
    return !keep || keep(u, v, view.edge_weight(e));
  };

  // Pass 1: kept flags -> new ids via prefix sum.
  std::vector<std::int64_t> flag(static_cast<size_t>(n_old));
  auto mark = [&](vid_t v) { flag[v] = vertex_kept(v) ? 1 : 0; };
  if (opts.parallel) par::parallel_for(vid_t{0}, n_old, mark);
  else for (vid_t v = 0; v < n_old; ++v) mark(v);

  std::vector<std::int64_t> id(static_cast<size_t>(n_old));
  const std::int64_t n_new =
      par::exclusive_prefix_sum(std::span<const std::int64_t>(flag),
                                std::span<std::int64_t>(id));

  VertexMap map;
  map.old_to_new.assign(static_cast<size_t>(n_old), kNoVertex);
  map.new_to_old.assign(static_cast<size_t>(n_new), kNoVertex);
  auto fill_map = [&](vid_t v) {
    if (flag[v]) {
      map.old_to_new[v] = static_cast<vid_t>(id[v]);
      map.new_to_old[static_cast<size_t>(id[v])] = v;
    }
  };
  if (opts.parallel) par::parallel_for(vid_t{0}, n_old, fill_map);
  else for (vid_t v = 0; v < n_old; ++v) fill_map(v);

  if (poll.should_stop()) {
    RegeneratedGraph aborted;
    aborted.status = poll.why();
    return aborted;
  }

  // Pass 2: surviving out-degree per kept vertex -> new row offsets.
  std::vector<std::int64_t> deg(static_cast<size_t>(n_new), 0);
  auto count_deg = [&](vid_t v) {
    if (!flag[v]) return;
    std::int64_t d = 0;
    for (eid_t e = view.edge_begin(v); e < view.edge_end(v); ++e) {
      if (edge_kept(v, e)) d++;
    }
    deg[static_cast<size_t>(map.old_to_new[v])] = d;
  };
  if (opts.parallel) par::parallel_for_dynamic(vid_t{0}, n_old, count_deg);
  else for (vid_t v = 0; v < n_old; ++v) count_deg(v);

  std::vector<std::int64_t> offsets(static_cast<size_t>(n_new) + 1, 0);
  const std::int64_t m_new = par::exclusive_prefix_sum(
      std::span<const std::int64_t>(deg),
      std::span<std::int64_t>(offsets.data(), static_cast<size_t>(n_new)));
  offsets[static_cast<size_t>(n_new)] = m_new;

  if (poll.should_stop()) {
    RegeneratedGraph aborted;
    aborted.status = poll.why();
    return aborted;
  }

  // Pass 3: fill the new adjacency.
  std::vector<eid_t> row(offsets.begin(), offsets.end());
  std::vector<vid_t> col(static_cast<size_t>(m_new));
  std::vector<weight_t> wgt(static_cast<size_t>(m_new));
  auto fill_edges = [&](vid_t v) {
    if (!flag[v]) return;
    eid_t cursor = row[static_cast<size_t>(map.old_to_new[v])];
    for (eid_t e = view.edge_begin(v); e < view.edge_end(v); ++e) {
      if (!edge_kept(v, e)) continue;
      col[static_cast<size_t>(cursor)] = map.old_to_new[view.edge_target(e)];
      wgt[static_cast<size_t>(cursor)] = view.edge_weight(e);
      ++cursor;
    }
  };
  if (opts.parallel) par::parallel_for_dynamic(vid_t{0}, n_old, fill_edges);
  else for (vid_t v = 0; v < n_old; ++v) fill_edges(v);

  PEEK_COUNT_ADD("compact.regenerate.kept_vertices", n_new);
  PEEK_COUNT_ADD("compact.regenerate.kept_edges", m_new);
  return {CsrGraph(std::move(row), std::move(col), std::move(wgt)),
          std::move(map)};
}

}  // namespace

RegeneratedGraph regenerate(const GraphView& view,
                            const std::uint8_t* vertex_keep,
                            const EdgeKeep& keep,
                            const RegenerationOptions& opts) {
  try {
    return regenerate_impl(view, vertex_keep, keep, opts);
  } catch (const std::bad_alloc&) {
    // Real or injected (fault::InjectedFault) allocation failure: the dense
    // rebuild is the allocation-heaviest stage, so contain it here.
    RegeneratedGraph r;
    r.status = fault::Status::kResourceExhausted;
    return r;
  }
}

}  // namespace peek::compact
