// MutableCsr: the pipeline-owned, mutable twin of CsrGraph that the edge-swap
// compaction (§5.2) operates on. It keeps BOTH orientations (forward and
// reverse adjacency) so the KSP stage can still build reverse shortest-path
// trees after edges have been swapped out.
#pragma once

#include <cstdint>
#include <vector>

#include "sssp/view.hpp"

namespace peek::compact {

using graph::CsrGraph;
using sssp::BiView;
using sssp::GraphView;

class MutableCsr {
 public:
  /// Deep-copies `g` (and its transpose) into mutable arrays. Every vertex
  /// starts alive with its full degree valid.
  explicit MutableCsr(const CsrGraph& g);

  vid_t num_vertices() const { return n_; }

  /// Alive out-edge count summed over alive vertices.
  eid_t num_valid_edges() const;

  GraphView view() const {
    return GraphView(n_, fwd_row_.data(), fwd_col_.data(), fwd_wgt_.data(),
                     fwd_count_.data(), vertex_alive_.data(), nullptr);
  }
  GraphView reverse_view() const {
    return GraphView(n_, rev_row_.data(), rev_col_.data(), rev_wgt_.data(),
                     rev_count_.data(), vertex_alive_.data(), nullptr);
  }
  BiView biview() const { return {view(), reverse_view()}; }

  std::vector<std::uint8_t>& vertex_alive() { return vertex_alive_; }
  const std::vector<std::uint8_t>& vertex_alive() const { return vertex_alive_; }

  // Raw access for the compaction kernels.
  std::vector<eid_t>& fwd_row() { return fwd_row_; }
  std::vector<vid_t>& fwd_col() { return fwd_col_; }
  std::vector<weight_t>& fwd_wgt() { return fwd_wgt_; }
  std::vector<eid_t>& fwd_count() { return fwd_count_; }
  std::vector<eid_t>& rev_row() { return rev_row_; }
  std::vector<vid_t>& rev_col() { return rev_col_; }
  std::vector<weight_t>& rev_wgt() { return rev_wgt_; }
  std::vector<eid_t>& rev_count() { return rev_count_; }

 private:
  vid_t n_ = 0;
  std::vector<std::uint8_t> vertex_alive_;
  std::vector<eid_t> fwd_row_, rev_row_;        // n+1, never mutated
  std::vector<vid_t> fwd_col_, rev_col_;        // swapped in place
  std::vector<weight_t> fwd_wgt_, rev_wgt_;     // swapped alongside col
  std::vector<eid_t> fwd_count_, rev_count_;    // valid out/in-edge counts
};

}  // namespace peek::compact
