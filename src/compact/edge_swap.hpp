// Edge-swap compaction (§5.2): swap each vertex's deleted out-edges past the
// valid region of its CSR row and shrink the valid-edge count, keeping the
// original arrays. O(n + m_a) where m_a is the edge count of surviving
// vertices; embarrassingly parallel across vertices (§6.1).
#pragma once

#include <functional>

#include "compact/mutable_csr.hpp"
#include "fault/cancel.hpp"

namespace peek::compact {

/// Position-independent edge filter: keep edge (src, dst, w)? Null = keep.
using EdgeKeep = std::function<bool(vid_t src, vid_t dst, weight_t w)>;

struct EdgeSwapOptions {
  bool parallel = true;
  /// Cooperative cancellation: polled per row in the serial sweep and at the
  /// sweep boundary in the parallel one (never inside the parallel region).
  /// Null = never cancelled.
  const fault::CancelToken* cancel = nullptr;
};

/// Sentinel return of edge_swap_compact when its CancelToken tripped: the
/// MutableCsr is then only partially packed (rows either packed or untouched)
/// and must be discarded by the caller.
inline constexpr eid_t kEdgeSwapCancelled = -1;

/// Marks vertices with `vertex_keep[v] == 0` dead, then packs every surviving
/// vertex's rows (both orientations) so edges to dead endpoints — and edges
/// rejected by `keep` — fall outside the valid range. Returns the number of
/// valid forward edges remaining, or kEdgeSwapCancelled on cancellation.
eid_t edge_swap_compact(MutableCsr& g, const std::uint8_t* vertex_keep,
                        const EdgeKeep& keep = nullptr,
                        const EdgeSwapOptions& opts = {});

}  // namespace peek::compact
