// Graph regeneration compaction (§5.3): build a brand-new dense CSR holding
// only the surviving vertices and edges, with remapped vertex ids. Slower to
// compact than edge-swap but the downstream computation gets perfect locality
// — the winning strategy when pruning removes almost everything.
#pragma once

#include <vector>

#include "compact/edge_swap.hpp"
#include "fault/cancel.hpp"
#include "fault/status.hpp"

namespace peek::compact {

/// old-id <-> new-id translation produced by regeneration.
struct VertexMap {
  std::vector<vid_t> old_to_new;  // size n_old, kNoVertex if pruned
  std::vector<vid_t> new_to_old;  // size n_new

  vid_t to_new(vid_t old_id) const { return old_to_new[old_id]; }
  vid_t to_old(vid_t new_id) const { return new_to_old[new_id]; }
};

struct RegenerationOptions {
  bool parallel = true;
  /// Cooperative cancellation, polled at pass boundaries (never inside a
  /// parallel region). Null = never cancelled.
  const fault::CancelToken* cancel = nullptr;
};

struct RegeneratedGraph {
  CsrGraph graph;
  VertexMap map;
  /// kOk, or why compaction aborted (cancellation, deadline, real/injected
  /// allocation failure). Non-kOk results carry an empty graph/map.
  fault::Status::Code status = fault::Status::kOk;
};

/// Rebuilds the subgraph of `view` induced by `vertex_keep` (nullable = all
/// alive vertices) minus edges rejected by `keep`. Three embarrassingly
/// parallel passes (§6.1): mark + id prefix-sum, per-vertex degree count +
/// offset prefix-sum, then edge fill.
RegeneratedGraph regenerate(const GraphView& view,
                            const std::uint8_t* vertex_keep,
                            const EdgeKeep& keep = nullptr,
                            const RegenerationOptions& opts = {});

}  // namespace peek::compact
