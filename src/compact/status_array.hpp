// Status-array "compaction" — the conventional baseline of §5.4/Figure 6:
// nothing is moved; deleted vertices and edges are merely marked in byte
// arrays and every traversal pays the masked-out entries.
#pragma once

#include "compact/edge_swap.hpp"

namespace peek::compact {

class StatusArrayGraph {
 public:
  explicit StatusArrayGraph(const CsrGraph& g);

  /// Applies a deletion round: vertices with vertex_keep[v]==0 die, edges
  /// failing `keep` (or touching dead vertices) die. Returns remaining alive
  /// forward edges.
  eid_t apply(const std::uint8_t* vertex_keep, const EdgeKeep& keep = nullptr,
              bool parallel = true);

  GraphView view() const {
    return GraphView(*g_, vertex_alive_.data(), edge_alive_.data());
  }
  GraphView reverse_view() const {
    return GraphView(g_->reverse(), vertex_alive_.data(),
                     rev_edge_alive_.data());
  }
  BiView biview() const { return {view(), reverse_view()}; }

  const std::vector<std::uint8_t>& vertex_alive() const { return vertex_alive_; }

 private:
  const CsrGraph* g_;
  std::vector<std::uint8_t> vertex_alive_;
  std::vector<std::uint8_t> edge_alive_;      // forward CSR edge mask
  std::vector<std::uint8_t> rev_edge_alive_;  // reverse CSR edge mask
};

}  // namespace peek::compact
