// Adaptive compaction selection (§5.4): pick regeneration when the remaining
// graph is a small fraction of the original (m_r < α·m), edge-swap otherwise.
#pragma once

#include "compact/regeneration.hpp"

namespace peek::compact {

enum class Strategy {
  kEdgeSwap,
  kRegeneration,
  kStatusArray,  // baseline, never chosen adaptively
};

const char* to_string(Strategy s);

struct AdaptiveOptions {
  /// The α trade-off coefficient; heavier downstream work → larger α (the
  /// paper suggests e.g. 0.6 for heavy workloads).
  double alpha = 0.5;
  bool parallel = true;
};

/// The §5.4 rule: m_remaining < alpha * m_original → regeneration.
Strategy choose_strategy(eid_t m_remaining, eid_t m_original, double alpha);

/// Result of an adaptive compaction round. Exactly one representation is
/// populated, matching `strategy`.
struct CompactionResult {
  Strategy strategy = Strategy::kEdgeSwap;
  /// Set when strategy == kRegeneration.
  RegeneratedGraph regenerated;
  /// Set when strategy == kEdgeSwap (views into the caller's MutableCsr).
  BiView swapped;
  eid_t remaining_edges = 0;
};

/// Counts the edges that would survive (`vertex_keep` + `keep`) over `view`,
/// in parallel — the m_r estimate driving the adaptive choice.
eid_t count_remaining_edges(const GraphView& view,
                            const std::uint8_t* vertex_keep,
                            const EdgeKeep& keep = nullptr,
                            bool parallel = true);

/// Applies the adaptive rule to `g` (whose MutableCsr the caller owns so the
/// edge-swap result stays valid). On kRegeneration the MutableCsr is left
/// untouched.
CompactionResult adaptive_compact(MutableCsr& g, eid_t m_original,
                                  const std::uint8_t* vertex_keep,
                                  const EdgeKeep& keep = nullptr,
                                  const AdaptiveOptions& opts = {});

}  // namespace peek::compact
