#include "compact/status_array.hpp"

#include <atomic>

#include "parallel/parallel_for.hpp"

namespace peek::compact {

StatusArrayGraph::StatusArrayGraph(const CsrGraph& g) : g_(&g) {
  vertex_alive_.assign(static_cast<size_t>(g.num_vertices()), 1);
  edge_alive_.assign(static_cast<size_t>(g.num_edges()), 1);
  rev_edge_alive_.assign(static_cast<size_t>(g.num_edges()), 1);
  g.warm_reverse();
}

eid_t StatusArrayGraph::apply(const std::uint8_t* vertex_keep,
                              const EdgeKeep& keep, bool parallel) {
  const vid_t n = g_->num_vertices();
  const CsrGraph& rev = g_->reverse();
  std::atomic<eid_t> remaining{0};

  auto body = [&](vid_t v) {
    if (vertex_keep && !vertex_keep[v]) vertex_alive_[v] = 0;
    if (!vertex_alive_[v]) return;
    eid_t live = 0;
    for (eid_t e = g_->edge_begin(v); e < g_->edge_end(v); ++e) {
      if (!edge_alive_[e]) continue;
      const vid_t w = g_->edge_target(e);
      const bool dead = (vertex_keep && !vertex_keep[w]) || !vertex_alive_[w] ||
                        (keep && !keep(v, w, g_->edge_weight(e)));
      if (dead) edge_alive_[e] = 0;
      else live++;
    }
    for (eid_t e = rev.edge_begin(v); e < rev.edge_end(v); ++e) {
      if (!rev_edge_alive_[e]) continue;
      const vid_t u = rev.edge_target(e);  // original edge u -> v
      const bool dead = (vertex_keep && !vertex_keep[u]) || !vertex_alive_[u] ||
                        (keep && !keep(u, v, rev.edge_weight(e)));
      if (dead) rev_edge_alive_[e] = 0;
    }
    remaining.fetch_add(live, std::memory_order_relaxed);
  };

  // NOTE: the vertex mask must be fully applied before edges are scanned,
  // otherwise a thread may read a vertex not yet marked dead. Two phases.
  auto kill = [&](vid_t v) {
    if (vertex_keep && !vertex_keep[v]) vertex_alive_[v] = 0;
  };
  if (parallel) {
    par::parallel_for(vid_t{0}, n, kill);
    par::parallel_for_dynamic(vid_t{0}, n, body);
  } else {
    for (vid_t v = 0; v < n; ++v) kill(v);
    for (vid_t v = 0; v < n; ++v) body(v);
  }
  return remaining.load();
}

}  // namespace peek::compact
