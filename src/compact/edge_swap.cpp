#include "compact/edge_swap.hpp"

#include <atomic>
#include <utility>

#include "obs/metrics.hpp"
#include "parallel/parallel_for.hpp"

namespace peek::compact {

MutableCsr::MutableCsr(const CsrGraph& g) : n_(g.num_vertices()) {
  vertex_alive_.assign(static_cast<size_t>(n_), 1);
  fwd_row_.assign(g.row_offsets().begin(), g.row_offsets().end());
  fwd_col_.assign(g.col().begin(), g.col().end());
  fwd_wgt_.assign(g.weights().begin(), g.weights().end());
  fwd_count_.resize(static_cast<size_t>(n_));
  const CsrGraph& r = g.reverse();
  rev_row_.assign(r.row_offsets().begin(), r.row_offsets().end());
  rev_col_.assign(r.col().begin(), r.col().end());
  rev_wgt_.assign(r.weights().begin(), r.weights().end());
  rev_count_.resize(static_cast<size_t>(n_));
  for (vid_t v = 0; v < n_; ++v) {
    fwd_count_[v] = g.degree(v);
    rev_count_[v] = r.degree(v);
  }
}

eid_t MutableCsr::num_valid_edges() const {
  eid_t total = 0;
  for (vid_t v = 0; v < n_; ++v) {
    if (vertex_alive_[v]) total += fwd_count_[v];
  }
  return total;
}

namespace {

/// Two-pointer pack of one CSR row: front pointer scans for deleted edges,
/// back pointer donates kept ones (§5.2's front/back pointer scheme).
/// `self` is the row's owning vertex; `forward` selects the (src,dst)
/// argument order handed to `keep`.
eid_t pack_row(vid_t self, eid_t begin, eid_t count, std::vector<vid_t>& col,
               std::vector<weight_t>& wgt, const std::uint8_t* vertex_keep,
               const EdgeKeep& keep, bool forward) {
  auto kept = [&](eid_t e) {
    const vid_t other = col[static_cast<size_t>(e)];
    if (vertex_keep && !vertex_keep[other]) return false;
    if (!keep) return true;
    const weight_t w = wgt[static_cast<size_t>(e)];
    return forward ? keep(self, other, w) : keep(other, self, w);
  };
  eid_t front = begin;
  eid_t back = begin + count - 1;
  while (front <= back) {
    if (kept(front)) {
      ++front;
    } else if (!kept(back)) {
      --back;
    } else {
      std::swap(col[static_cast<size_t>(front)], col[static_cast<size_t>(back)]);
      std::swap(wgt[static_cast<size_t>(front)], wgt[static_cast<size_t>(back)]);
      ++front;
      --back;
    }
  }
  return front - begin;  // new valid count
}

}  // namespace

eid_t edge_swap_compact(MutableCsr& g, const std::uint8_t* vertex_keep,
                        const EdgeKeep& keep, const EdgeSwapOptions& opts) {
  PEEK_TIMER_SCOPE("compact.edge_swap");
  const vid_t n = g.num_vertices();
  auto& alive = g.vertex_alive();
  std::atomic<eid_t> remaining{0};

  auto body = [&](vid_t v) {
    if (vertex_keep && !vertex_keep[v]) {
      alive[v] = 0;
      return;
    }
    if (!alive[v]) return;
    const eid_t fc = pack_row(v, g.fwd_row()[v], g.fwd_count()[v], g.fwd_col(),
                              g.fwd_wgt(), vertex_keep, keep, /*forward=*/true);
    g.fwd_count()[v] = fc;
    g.rev_count()[v] = pack_row(v, g.rev_row()[v], g.rev_count()[v], g.rev_col(),
                                g.rev_wgt(), vertex_keep, keep, /*forward=*/false);
    remaining.fetch_add(fc, std::memory_order_relaxed);
  };

  fault::CancelPoll poll(opts.cancel, /*stride=*/256);
  if (opts.parallel) {
    if (poll.should_stop()) return kEdgeSwapCancelled;
    par::parallel_for_dynamic(vid_t{0}, n, body);
    if (poll.should_stop()) return kEdgeSwapCancelled;
  } else {
    for (vid_t v = 0; v < n; ++v) {
      if (poll.should_stop()) return kEdgeSwapCancelled;
      body(v);
    }
  }
  PEEK_COUNT_ADD("compact.edge_swap.kept_edges", remaining.load());
  return remaining.load();
}

}  // namespace peek::compact
