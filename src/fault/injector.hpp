// Deterministic fault injection (DESIGN.md §9). Named probe sites in the
// pipeline ask the process-global Injector whether to fire; the decision is
// a pure hash of (seed, site, per-site hit index), so a single-threaded run
// with a fixed seed fires the exact same faults every time — the property
// tests/test_fault.cpp and the CI seed sweep rely on.
//
// Three probe kinds:
//   PEEK_FAULT_ALLOC(site)  throws InjectedFault (a std::bad_alloc) —
//                           simulated allocation failure; kernels surface it
//                           as Status::kResourceExhausted.
//   PEEK_FAULT_STALL(site)  sleeps config.stall for an artificial kernel
//                           stall — drives deadline-expiry coverage.
//   PEEK_FAULT_FIRE(site)   returns bool; the site implements its own
//                           corruption/transient failure (cache drops,
//                           dist::TransientError sends).
//
// Disabled (the default) every probe is one relaxed atomic load. The site
// name table in DESIGN.md §9 is lint-enforced by tools/peek_lint.py.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <new>
#include <string>

#include "check/thread_safety.hpp"

namespace peek::fault {

struct InjectorConfig {
  bool enabled = false;
  std::uint64_t seed = 1;
  /// Firing probability per probe, in permille (0..1000).
  int rate_permille = 0;
  /// Sleep duration of PEEK_FAULT_STALL probes.
  std::chrono::milliseconds stall{0};
  /// Comma-separated site allowlist; empty = every site may fire.
  std::string site_filter;
  /// Per-site fire cap: once a site has fired this many probes, later
  /// probes at it never fire (hit indices still advance, so the decision
  /// sequence below the cap is unchanged). <= 0 = uncapped. Lets soak runs
  /// bound total injected failures deterministically (PEEK_FAULT_MAX).
  std::int64_t max_fires = 0;
};

/// Thrown by PEEK_FAULT_ALLOC probes. Derives from std::bad_alloc so code
/// hardened against real allocation failure handles the injected kind for
/// free; what() names the site.
class InjectedFault : public std::bad_alloc {
 public:
  explicit InjectedFault(const char* site) : site_(site) {}
  const char* what() const noexcept override { return site_; }
  const char* site() const noexcept { return site_; }

 private:
  const char* site_;
};

class Injector {
 public:
  /// The process-global instance every probe consults.
  static Injector& global();

  void configure(const InjectorConfig& cfg);
  /// PEEK_FAULT_SEED (presence enables, value seeds), PEEK_FAULT_RATE
  /// (permille, default 100), PEEK_FAULT_STALL_MS (default 0),
  /// PEEK_FAULT_SITES (comma allowlist), PEEK_FAULT_MAX (per-site fire
  /// cap, default uncapped). Called once from serving/test entry points;
  /// harmless when the variables are unset.
  void configure_from_env();
  void disable() { configure(InjectorConfig{}); }

  InjectorConfig config() const;
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Deterministic decision for one probe at `site`; bumps the per-site hit
  /// index either way and the fired counters (plus the `fault.injected`
  /// metric) when true.
  bool should_fire(const char* site);
  /// Sleep used by stall probes (config().stall).
  void stall_now() const;

  /// Probes that fired at `site` / in total since the last configure().
  std::int64_t fired(const std::string& site) const;
  std::int64_t total_fired() const;

 private:
  struct SiteState {
    std::uint64_t hits = 0;
    std::int64_t fired = 0;
  };

  std::atomic<bool> enabled_{false};
  /// Cold path only: probes take mu_ after the relaxed enabled_ gate.
  mutable check::Mutex mu_;
  InjectorConfig cfg_ PEEK_GUARDED_BY(mu_);
  std::map<std::string, SiteState, std::less<>> sites_ PEEK_GUARDED_BY(mu_);
};

}  // namespace peek::fault

// Probe macros. The site argument must be a string literal — the lint check
// extracts it textually to enforce the DESIGN.md §9 site table.
#define PEEK_FAULT_FIRE(site)                         \
  (::peek::fault::Injector::global().enabled() &&     \
   ::peek::fault::Injector::global().should_fire(site))

#define PEEK_FAULT_ALLOC(site)                         \
  do {                                                 \
    if (PEEK_FAULT_FIRE(site))                         \
      throw ::peek::fault::InjectedFault(site);        \
  } while (0)

#define PEEK_FAULT_STALL(site)                          \
  do {                                                  \
    if (PEEK_FAULT_FIRE(site))                          \
      ::peek::fault::Injector::global().stall_now();    \
  } while (0)
