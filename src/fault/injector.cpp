#include "fault/injector.hpp"

#include <cstdlib>
#include <thread>

#include "obs/metrics.hpp"

namespace peek::fault {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(const char* s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (; *s != '\0'; ++s) {
    h ^= static_cast<unsigned char>(*s);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Exact-match membership in a comma-separated list (no spaces).
bool filter_allows(const std::string& filter, const char* site) {
  if (filter.empty()) return true;
  const std::string needle(site);
  size_t pos = 0;
  while (pos <= filter.size()) {
    const size_t comma = filter.find(',', pos);
    const size_t end = comma == std::string::npos ? filter.size() : comma;
    if (filter.compare(pos, end - pos, needle) == 0) return true;
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return false;
}

}  // namespace

Injector& Injector::global() {
  static Injector instance;
  return instance;
}

void Injector::configure(const InjectorConfig& cfg) {
  check::MutexLock lock(mu_);
  cfg_ = cfg;
  sites_.clear();  // fresh hit indices: same seed => same firing sequence
  enabled_.store(cfg.enabled, std::memory_order_relaxed);
}

void Injector::configure_from_env() {
  // getenv is not thread-safe against setenv, but this runs once from
  // single-threaded entry points (CLI main / test setup) before any worker
  // exists, and nothing in the process calls setenv.
  // NOLINTBEGIN(concurrency-mt-unsafe)
  const char* seed = std::getenv("PEEK_FAULT_SEED");
  if (seed == nullptr || *seed == '\0') return;
  InjectorConfig cfg;
  cfg.enabled = true;
  cfg.seed = std::strtoull(seed, nullptr, 10);
  cfg.rate_permille = 100;
  if (const char* rate = std::getenv("PEEK_FAULT_RATE"))
    cfg.rate_permille = static_cast<int>(std::strtol(rate, nullptr, 10));
  if (const char* stall = std::getenv("PEEK_FAULT_STALL_MS"))
    cfg.stall = std::chrono::milliseconds(std::strtol(stall, nullptr, 10));
  if (const char* sites = std::getenv("PEEK_FAULT_SITES"))
    cfg.site_filter = sites;
  if (const char* max = std::getenv("PEEK_FAULT_MAX"))
    cfg.max_fires = std::strtoll(max, nullptr, 10);
  // NOLINTEND(concurrency-mt-unsafe)
  configure(cfg);
}

InjectorConfig Injector::config() const {
  check::MutexLock lock(mu_);
  return cfg_;
}

bool Injector::should_fire(const char* site) {
  if (!enabled_.load(std::memory_order_relaxed)) return false;
  bool fire = false;
  {
    check::MutexLock lock(mu_);
    if (!cfg_.enabled || !filter_allows(cfg_.site_filter, site)) return false;
    SiteState& st = sites_[site];
    const std::uint64_t h =
        splitmix64(cfg_.seed ^ fnv1a(site) ^
                   st.hits * 0x9e3779b97f4a7c15ull);
    st.hits++;
    fire = cfg_.rate_permille > 0 &&
           h % 1000 < static_cast<std::uint64_t>(cfg_.rate_permille) &&
           (cfg_.max_fires <= 0 || st.fired < cfg_.max_fires);
    if (fire) st.fired++;
  }
  if (fire) PEEK_COUNT_INC("fault.injected");
  return fire;
}

void Injector::stall_now() const {
  std::chrono::milliseconds d{0};
  {
    check::MutexLock lock(mu_);
    d = cfg_.stall;
  }
  if (d.count() > 0) std::this_thread::sleep_for(d);
}

std::int64_t Injector::fired(const std::string& site) const {
  check::MutexLock lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fired;
}

std::int64_t Injector::total_fired() const {
  check::MutexLock lock(mu_);
  std::int64_t total = 0;
  for (const auto& [_, st] : sites_) total += st.fired;
  return total;
}

}  // namespace peek::fault
