#include "fault/cancel.hpp"

namespace peek::fault {

CancelToken CancelToken::cancellable() {
  CancelToken t;
  t.state_ = std::make_shared<State>();
  return t;
}

CancelToken CancelToken::after(Clock::duration budget) {
  return at(Clock::now() + budget);
}

CancelToken CancelToken::at(Clock::time_point deadline) {
  CancelToken t;
  t.state_ = std::make_shared<State>();
  t.state_->has_deadline = true;
  t.state_->deadline_at = deadline;
  return t;
}

CancelToken CancelToken::linked(const CancelToken& parent,
                                Clock::duration budget) {
  CancelToken t = after(budget);
  t.state_->parent = parent.state_;
  return t;
}

CancelToken CancelToken::linked(const CancelToken& parent) {
  CancelToken t = cancellable();
  t.state_->parent = parent.state_;
  return t;
}

void CancelToken::cancel() const {
  if (state_) state_->cancelled.store(true, std::memory_order_release);
}

bool CancelToken::state_cancelled_fast(const State& s) {
  if (s.cancelled.load(std::memory_order_acquire) ||
      s.expired.load(std::memory_order_relaxed))
    return true;
  return s.parent && state_cancelled_fast(*s.parent);
}

bool CancelToken::state_triggered(const State& s) {
  if (s.cancelled.load(std::memory_order_acquire) ||
      s.expired.load(std::memory_order_relaxed))
    return true;
  if (s.has_deadline && Clock::now() >= s.deadline_at) {
    s.expired.store(true, std::memory_order_relaxed);
    return true;
  }
  return s.parent && state_triggered(*s.parent);
}

bool CancelToken::cancelled_fast() const {
  return state_ && state_cancelled_fast(*state_);
}

bool CancelToken::triggered() const {
  return state_ && state_triggered(*state_);
}

Status::Code CancelToken::why() const {
  if (!state_ || !state_triggered(*state_)) return Status::kOk;
  // Explicit cancellation wins over expiry: walk the chain for a cancelled
  // flag first, then attribute to the (necessarily expired) deadline.
  for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
    if (s->cancelled.load(std::memory_order_acquire)) return Status::kCancelled;
  }
  return Status::kDeadlineExceeded;
}

std::optional<CancelToken::Clock::time_point> CancelToken::deadline() const {
  if (state_ && state_->has_deadline) return state_->deadline_at;
  return std::nullopt;
}

}  // namespace peek::fault
