// Typed failure model for the serving path (DESIGN.md §9). Every long-running
// kernel reports how it ended through a Status::Code instead of crashing,
// hanging, or silently returning a wrong path set; the serving layer wraps
// the code with a human-readable message. Codes deliberately mirror the
// familiar RPC vocabulary so operators can map them onto transport errors.
#pragma once

#include <cstdint>
#include <string>

namespace peek::fault {

/// A failure classification plus optional context. Cheap to copy when ok
/// (empty message); kernels carry the bare Code and the serving layer
/// attaches the message at the boundary.
///
/// [[nodiscard]] on the type: every function returning a Status by value is
/// nodiscard without per-declaration annotation. Deliberately ignoring one
/// takes a `(void)` cast plus a `// status-ignored: <reason>` waiver
/// (enforced by tools/peek_analyze.py, check `status`).
struct [[nodiscard]] Status {
  /// Unscoped on purpose: spellable as `Status::kDeadlineExceeded` while the
  /// underlying type stays one byte for result structs.
  enum Code : std::uint8_t {
    kOk = 0,
    kCancelled,          // caller's CancelToken was cancelled explicitly
    kDeadlineExceeded,   // the token's steady-clock deadline passed
    kOverloaded,         // admission control shed the query (load)
    kInvalidArgument,    // s/t out of range, k <= 0, malformed input
    kResourceExhausted,  // allocation failure (real or injected)
    kInternal,           // unexpected exception escaping a kernel
    kDataLoss,           // corrupt/truncated on-disk snapshot (recover/)
  };

  Code code = kOk;
  std::string message;

  Status() = default;
  Status(Code c, std::string msg = {}) : code(c), message(std::move(msg)) {}

  bool ok() const { return code == kOk; }
  bool operator==(Code c) const { return code == c; }
};

inline const char* to_string(Status::Code c) {
  switch (c) {
    case Status::kOk: return "ok";
    case Status::kCancelled: return "cancelled";
    case Status::kDeadlineExceeded: return "deadline_exceeded";
    case Status::kOverloaded: return "overloaded";
    case Status::kInvalidArgument: return "invalid_argument";
    case Status::kResourceExhausted: return "resource_exhausted";
    case Status::kInternal: return "internal";
    case Status::kDataLoss: return "data_loss";
  }
  return "unknown";
}

}  // namespace peek::fault
