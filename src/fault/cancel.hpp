// Cooperative cancellation for long-running kernels (DESIGN.md §9).
//
// A CancelToken is a shared handle over {manual cancel flag, optional
// steady-clock deadline, optional parent token}. Kernels poll it at loop
// granularity; a triggered token makes them stop early and report
// Status::kCancelled / Status::kDeadlineExceeded with whatever well-defined
// partial result the algorithm supports (SSSP: distances settled so far;
// Yen-family engines: the exact top-J paths accepted before the trigger).
//
// Cost model: the fast path is two relaxed atomic loads (cancelled, expired)
// per poll — no clock read. The deadline comparison costs a steady_clock
// read, so hot loops go through CancelPoll, which checks the clock only
// every `stride` polls (power of two, default 1024) and the flags every
// time. A default-constructed token is null: polls are a nullptr test.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>

#include "fault/status.hpp"

namespace peek::fault {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Null token: never triggers, polls are free.
  CancelToken() = default;

  /// A token that triggers only via cancel().
  static CancelToken cancellable();
  /// A token that triggers when `budget` elapses (or via cancel()).
  static CancelToken after(Clock::duration budget);
  /// A token that triggers at `deadline` (or via cancel()).
  static CancelToken at(Clock::time_point deadline);
  /// A token that triggers when `parent` triggers, when `budget` elapses,
  /// or via cancel(). Used by the serving layer to combine a caller-supplied
  /// token with the per-query deadline.
  static CancelToken linked(const CancelToken& parent, Clock::duration budget);
  /// A token that triggers when `parent` triggers or via cancel() — no
  /// deadline of its own. The sharded serving tier hands one to each hedged
  /// attempt: cancelling a child abandons just that attempt, while the
  /// parent tripping abandons them all.
  static CancelToken linked(const CancelToken& parent);

  bool valid() const { return state_ != nullptr; }

  /// Manual trigger. Idempotent; safe from any thread.
  void cancel() const;

  /// Flags-only check: true once cancel() ran or a deadline expiry was
  /// observed by some earlier triggered()/CancelPoll clock check. Never
  /// reads the clock — may lag an expired-but-unobserved deadline.
  bool cancelled_fast() const;

  /// Full check including the steady-clock deadline comparison (sticky:
  /// once expired, later polls take the flag fast path).
  bool triggered() const;

  /// Why the token triggered (kOk if it has not). Performs a full check.
  Status::Code why() const;

  /// This token's own deadline, if any (ignores the parent chain). The
  /// serving layer uses it to bound condition-variable waits.
  std::optional<Clock::time_point> deadline() const;

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    mutable std::atomic<bool> expired{false};  // sticky deadline observation
    bool has_deadline = false;
    Clock::time_point deadline_at{};
    std::shared_ptr<const State> parent;
  };

  static bool state_cancelled_fast(const State& s);
  static bool state_triggered(const State& s);

  std::shared_ptr<State> state_;
};

/// Convenience alias for the common "budget from now" construction.
struct Deadline {
  static CancelToken after(CancelToken::Clock::duration budget) {
    return CancelToken::after(budget);
  }
};

/// Strided poller for hot loops: flags every call, clock every `stride`-th
/// call (stride rounded up to a power of two). Not thread-safe — one per
/// loop, by value.
class CancelPoll {
 public:
  explicit CancelPoll(const CancelToken* token, std::uint32_t stride = 1024)
      : token_(token && token->valid() ? token : nullptr) {
    std::uint32_t m = 1;
    while (m < stride) m <<= 1;
    mask_ = m - 1;
  }

  /// True once the token has triggered. Sticky.
  bool should_stop() {
    if (stopped_) return true;
    if (token_ == nullptr) return false;
    if (token_->cancelled_fast() ||
        ((++calls_ & mask_) == 0 && token_->triggered())) {
      stopped_ = true;
      why_ = token_->why();
    }
    return stopped_;
  }

  /// Trigger reason (kOk while should_stop() is false).
  Status::Code why() const { return why_; }

 private:
  const CancelToken* token_ = nullptr;
  std::uint32_t calls_ = 0;
  std::uint32_t mask_ = 0;
  bool stopped_ = false;
  Status::Code why_ = Status::kOk;
};

}  // namespace peek::fault
