#include "serve/query_engine.hpp"

#include <algorithm>
#include <chrono>

#include "check/certify.hpp"
#include "ksp/stream.hpp"
#include "obs/metrics.hpp"
#include "recover/artifacts.hpp"

namespace peek::serve {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// Translates a compacted-id path into original ids (in place).
void to_original_ids(sssp::Path& p, const compact::VertexMap& map) {
  for (auto& v : p.verts) v = map.to_old(v);
}

/// Live mode: how often one query re-runs after its compute raced a batch
/// (or an invalidation) before giving up with kOverloaded. Each retry works
/// against a refreshed snapshot, so in practice one suffices.
constexpr int kMaxEpochRetries = 8;

}  // namespace

namespace {

/// Shared persistence setup of both constructors. A directory that cannot be
/// created is counted and degrades the engine to no-persistence — persist()
/// would only produce per-file write failures against the same broken path.
void init_recovery(std::optional<recover::RecoveryManager>& recovery,
                   const std::string& dir) {
  recovery.emplace(dir);
  if (!recovery->ensure_dir().ok()) {
    PEEK_COUNT_INC("recover.ensure_dir_failures");
  }
}

}  // namespace

QueryEngine::QueryEngine(const graph::CsrGraph& g, const ServeOptions& opts)
    : static_graph_(&g), opts_(opts), cache_(opts.cache) {
  if (opts_.injector) fault::Injector::global().configure(*opts_.injector);
  if (!opts_.snapshot_dir.empty()) {
    init_recovery(recovery_, opts_.snapshot_dir);
    if (opts_.warm_restart) restore_from_dir();
  }
}

QueryEngine::QueryEngine(const dyn::DynamicGraph& dg, const ServeOptions& opts)
    : dyn_graph_(&dg), opts_(opts), cache_(opts.cache) {
  if (opts_.injector) fault::Injector::global().configure(*opts_.injector);
  if (!opts_.snapshot_dir.empty()) {
    init_recovery(recovery_, opts_.snapshot_dir);
    if (opts_.warm_restart) restore_from_dir();
  }
  if (live()) {
    {
      // Eager first snapshot: a lazily-created one (first query) could read
      // the DynamicGraph concurrently with a fleet apply_batch mutating it.
      // Construction is the caller's last single-threaded moment, so the
      // to_csr here is race-free.
      check::MutexLock lock(dyn_mu_);
      if (!dyn_snapshot_) {
        dyn_snapshot_ =
            std::make_shared<const graph::CsrGraph>(dyn_graph_->to_csr());
      }
    }
    repair_thread_ = std::thread([this] { repair_loop(); });
  }
}

QueryEngine::QueryEngine(dyn::DynamicGraph& dg, const ServeOptions& opts)
    : QueryEngine(static_cast<const dyn::DynamicGraph&>(dg), opts) {
  // Safe post-delegation: the repair thread never touches mutable_dyn_.
  mutable_dyn_ = &dg;
}

QueryEngine::~QueryEngine() {
  if (repair_thread_.joinable()) {
    {
      check::MutexLock lock(repair_mu_);
      repair_stop_ = true;
    }
    repair_cv_.notify_all();
    repair_thread_.join();
  }
}

void QueryEngine::invalidate() {
  generation_.fetch_add(1, std::memory_order_acq_rel);
  PEEK_COUNT_INC("serve.invalidations");
  // Unpin the coalescing map: in-flight owners are computing against the old
  // generation, so abort them (via the per-entry token their pipeline polls)
  // and wake their waiters — both sides then retry against the new
  // generation instead of blocking on, and serving, a doomed snapshot.
  std::vector<std::shared_ptr<Inflight>> pinned;
  {
    check::MutexLock lock(inflight_mu_);
    pinned.reserve(inflight_.size());
    for (auto& [key, inf] : inflight_) pinned.push_back(inf);
  }
  for (auto& inf : pinned) {
    inf->abort.cancel();
    {
      check::MutexLock lock(inf->mu);
      inf->invalidated = true;
    }
    inf->cv.notify_all();
    PEEK_COUNT_INC("serve.inflight_invalidations");
  }
}

size_t QueryEngine::inflight_entries() {
  check::MutexLock lock(inflight_mu_);
  return inflight_.size();
}

int QueryEngine::budget_for(int k) const {
  int target = k > opts_.k_budget_floor ? k : opts_.k_budget_floor;
  int b = 1;
  while (b < target) b <<= 1;
  return b;
}

std::shared_ptr<const graph::CsrGraph> QueryEngine::active_graph() {
  if (static_graph_ != nullptr) {
    // Non-owning: the caller guarantees the graph outlives the engine.
    return std::shared_ptr<const graph::CsrGraph>(static_graph_,
                                                  [](const graph::CsrGraph*) {
                                                  });
  }
  check::MutexLock lock(dyn_mu_);
  if (live()) {
    // Live-mutation mode: the snapshot only moves through adopt_batch(), so
    // the legacy version check (wholesale re-snapshot + generation bump)
    // must not run — it would defeat the surgical invalidation.
    if (!dyn_snapshot_) {
      dyn_snapshot_ =
          std::make_shared<const graph::CsrGraph>(dyn_graph_->to_csr());
    }
    return dyn_snapshot_;
  }
  if (!dyn_snapshot_ || dyn_graph_->version() != dyn_version_seen_) {
    dyn_version_seen_ = dyn_graph_->version();
    dyn_snapshot_ =
        std::make_shared<const graph::CsrGraph>(dyn_graph_->to_csr());
    generation_.fetch_add(1, std::memory_order_acq_rel);
    PEEK_COUNT_INC("serve.dynamic_resnapshots");
  }
  return dyn_snapshot_;
}

// ---------------------------------------------------------------------------
// Live-mutation pipeline (DESIGN.md §15)
// ---------------------------------------------------------------------------

dyn::AppliedBatch QueryEngine::apply_batch(const dyn::UpdateBatch& batch) {
  dyn::AppliedBatch b;
  if (mutable_dyn_ == nullptr || !live()) return b;  // misuse: no-op record
  check::MutexLock lock(dyn_mu_);
  // Mutation and adoption under one dyn_mu_ hold: no query can observe the
  // mutated DynamicGraph before the serving state has caught up.
  b = dyn::apply(*mutable_dyn_, batch);
  adopt_batch(b, nullptr);
  return b;
}

void QueryEngine::note_batch(const dyn::AppliedBatch& batch,
                             std::shared_ptr<const graph::CsrGraph> post) {
  if (!live()) return;
  dyn::AppliedBatch b = batch;
  check::MutexLock lock(dyn_mu_);
  adopt_batch(b, std::move(post));
}

void QueryEngine::adopt_batch(dyn::AppliedBatch& b,
                              std::shared_ptr<const graph::CsrGraph> post) {
  const std::uint64_t prev = mutation_epoch_.load(std::memory_order_relaxed);
  if (b.epoch != 0 && b.epoch <= prev) {
    // Stale redelivery (a fleet heal raced a pending-queue drain): this
    // engine's content already reflects every batch up to `prev` — its
    // snapshot was taken from the post-mutation graph — so adopting an older
    // epoch would only move the counters backwards. No-op.
    return;
  }
  const std::uint64_t e = b.epoch != 0 ? b.epoch : prev + 1;
  b.epoch = e;
  PEEK_COUNT_INC("serve.batches");

  // Swap in the post-mutation snapshot: the caller-provided one when the
  // fleet already built it (see note_batch), else a cheap weight patch when
  // the batch was reweight-only, else a full re-pack.
  const std::shared_ptr<const graph::CsrGraph> pre = dyn_snapshot_;
  dyn_snapshot_ =
      post ? std::move(post)
           : std::make_shared<const graph::CsrGraph>(
                 pre ? dyn::patched_csr(*dyn_graph_, *pre, b)
                     : dyn_graph_->to_csr());

  batch_history_.push_back({e, b.structural(), b.weight_delta_sum()});
  while (batch_history_.size() > 64) batch_history_.pop_front();

  const std::uint64_t gen = generation();

  // Collect this generation's resident artifacts; affectedness is decided
  // here (outside the shard locks), then applied by one sweep below.
  std::unordered_map<vid_t, std::shared_ptr<const sssp::SsspResult>> fwd_roots;
  std::unordered_map<vid_t, std::shared_ptr<const sssp::SsspResult>> rev_roots;
  cache_.for_each_tree(
      [&](ArtifactKind kind, vid_t v,
          const std::shared_ptr<const sssp::SsspResult>& tree,
          std::uint64_t tgen) {
        if (tgen != gen) return;
        (kind == ArtifactKind::kForwardTree ? fwd_roots : rev_roots)[v] = tree;
      });
  struct SnapRef {
    vid_t s, t;
    std::shared_ptr<PrunedSnapshot> snap;
  };
  std::vector<SnapRef> snaps;
  cache_.for_each_snapshot([&](vid_t s, vid_t t,
                               const std::shared_ptr<PrunedSnapshot>& snap,
                               std::uint64_t sgen) {
    if (sgen == gen) snaps.push_back({s, t, snap});
  });

  // Trees: a finite cone threshold means part of the tree is in the affected
  // region — it becomes a background repair job seeded with itself.
  std::map<std::tuple<int, vid_t, vid_t>, bool> keep;
  std::vector<dyn::RepairJob> jobs;
  std::vector<std::pair<ArtifactKind, vid_t>> keys;
  auto classify_trees =
      [&](const std::unordered_map<
              vid_t, std::shared_ptr<const sssp::SsspResult>>& roots,
          ArtifactKind kind, bool reverse) {
        for (const auto& [root, tree] : roots) {
          const weight_t th = dyn::cone_threshold(b, *tree, reverse);
          keep[{static_cast<int>(kind), root, kNoVertex}] = th == kInfDist;
          if (th != kInfDist) {
            jobs.push_back({root, reverse, th, tree});
            keys.emplace_back(kind, root);
          }
        }
      };
  classify_trees(fwd_roots, ArtifactKind::kForwardTree, /*reverse=*/false);
  classify_trees(rev_roots, ArtifactKind::kReverseTree, /*reverse=*/true);

  // Snapshots: the pair test needs the pair's PRE-mutation trees, which is
  // why impacts are evaluated before any repair runs.
  std::vector<std::pair<SnapRef, weight_t>> newly_stale;
  for (const SnapRef& sr : snaps) {
    auto fit = fwd_roots.find(sr.s);
    auto rit = rev_roots.find(sr.t);
    const dyn::PairImpact pi = dyn::pair_impact(
        b, fit != fwd_roots.end() ? fit->second.get() : nullptr,
        rit != rev_roots.end() ? rit->second.get() : nullptr,
        sr.snap->upper_bound);
    keep[{static_cast<int>(ArtifactKind::kSnapshot), sr.s, sr.t}] =
        !pi.affected;
    // Reweight-only impact: the displaced snapshot stays servable with an
    // explicit bound while the repair is in flight. Structural impact: never
    // stale-served — the pair recomputes fresh against the post graph.
    if (pi.affected && !pi.structural) {
      newly_stale.push_back({sr, pi.weight_bound});
    }
  }

  // Stale side table + epoch store under stale_mu_: a reader holding
  // stale_mu_ sees a table consistent with the epoch it reads.
  {
    check::MutexLock slock(stale_mu_);
    for (auto it = stale_snaps_.begin(); it != stale_snaps_.end();) {
      if (b.structural()) {
        // The entry's pre-mutation trees are gone, so a structural batch
        // cannot be pair-tested against it — and without the test no finite
        // weight bound is sound. Drop it; the pair recomputes fresh.
        it = stale_snaps_.erase(it);
      } else {
        // Conservative: widen by the whole batch's reweight mass without
        // re-testing (the entry may well be unaffected by this batch).
        it->second.bound += b.weight_delta_sum();
        ++it;
      }
    }
    for (auto& [sr, bound] : newly_stale) {
      stale_snaps_[{sr.s, sr.t}] = StaleEntry{sr.snap, prev, bound};
    }
    mutation_epoch_.store(e, std::memory_order_release);
  }

  // One sweep applies the decisions: keepers are restamped to epoch `e`
  // (still valid, served fresh with zero work), the rest erased in place.
  // Entries from older generations miss the decision map and are erased too.
  cache_.sweep(e, [&](ArtifactKind kind, vid_t a, vid_t bb, std::uint64_t) {
    const auto it = keep.find(
        {static_cast<int>(kind), a,
         kind == ArtifactKind::kSnapshot ? bb : kNoVertex});
    return it != keep.end() && it->second;
  });

  // Merge the repair work and wake the repair thread. Cone thresholds
  // against the same base tree min-compose across batches (the first-batch-
  // edge argument ranges over the union of all ops), so a pending job hit by
  // this batch just tightens its threshold; an in-flight repair's results
  // will fail their epoch check and be discarded.
  {
    check::MutexLock rlock(repair_mu_);
    if (repair_pending_) {
      for (dyn::RepairJob& j : repair_pending_->jobs) {
        j.threshold =
            std::min(j.threshold, dyn::cone_threshold(b, *j.base, j.reverse));
      }
      repair_pending_->jobs.insert(repair_pending_->jobs.end(), jobs.begin(),
                                   jobs.end());
      repair_pending_->keys.insert(repair_pending_->keys.end(), keys.begin(),
                                   keys.end());
      repair_pending_->epoch = e;
      repair_pending_->post = dyn_snapshot_;
    } else {
      repair_pending_ = RepairTask{e, dyn_snapshot_, std::move(jobs),
                                   std::move(keys)};
    }
  }
  repair_cv_.notify_all();
}

void QueryEngine::repair_loop() {
  for (;;) {
    RepairTask task;
    {
      check::UniqueLock lock(repair_mu_);
      while (!repair_stop_ && !repair_pending_) repair_cv_.wait(lock);
      if (repair_stop_) return;
      task = std::move(*repair_pending_);
      repair_pending_.reset();
      repair_busy_ = true;
    }
    const dyn::RepairResult rr = dyn::repair_trees(*task.post, task.jobs);
    if (rr.status.ok()) {
      check::MutexLock lock(dyn_mu_);
      if (mutation_epoch_.load(std::memory_order_relaxed) == task.epoch) {
        if (opts_.cache_trees) {
          for (std::size_t i = 0; i < task.jobs.size(); ++i) {
            if (rr.trees[i]) {
              cache_.put_tree(task.keys[i].first, task.keys[i].second,
                              rr.trees[i], generation(), task.epoch);
            }
          }
        }
        check::MutexLock slock(stale_mu_);
        stale_snaps_.clear();  // fresh computes are cheap again: trees are back
        repaired_epoch_.store(task.epoch, std::memory_order_release);
      }
      // else: a newer batch landed mid-repair — these trees answer a
      // superseded epoch, so they are dropped (roots recompute on demand)
      // and the merged pending task catches up instead.
    } else {
      // Injected repair crash (dyn.repair.crash): fall back to wholesale
      // invalidation. Nothing stays cached, nothing stays stale-servable,
      // and the epochs equalize — so no answer can ever be served with an
      // unbounded staleness.
      PEEK_COUNT_INC("dyn.repair.fallbacks");
      check::MutexLock lock(dyn_mu_);
      invalidate();
      {
        check::MutexLock rlock(repair_mu_);
        repair_pending_.reset();  // superseded by the wholesale invalidation
      }
      check::MutexLock slock(stale_mu_);
      stale_snaps_.clear();
      repaired_epoch_.store(mutation_epoch_.load(std::memory_order_relaxed),
                            std::memory_order_release);
    }
    {
      check::MutexLock lock(repair_mu_);
      repair_busy_ = false;
    }
    repair_cv_.notify_all();
  }
}

void QueryEngine::drain_repairs() {
  if (!repair_thread_.joinable()) return;
  check::UniqueLock lock(repair_mu_);
  while (repair_busy_ || repair_pending_) repair_cv_.wait(lock);
}

void QueryEngine::reset_epoch(std::uint64_t epoch) {
  check::MutexLock lock(dyn_mu_);
  if (dyn_graph_ != nullptr) {
    dyn_snapshot_ =
        std::make_shared<const graph::CsrGraph>(dyn_graph_->to_csr());
  }
  batch_history_.clear();
  {
    check::MutexLock rlock(repair_mu_);
    repair_pending_.reset();
  }
  check::MutexLock slock(stale_mu_);
  stale_snaps_.clear();
  mutation_epoch_.store(epoch, std::memory_order_release);
  repaired_epoch_.store(epoch, std::memory_order_release);
}

std::size_t QueryEngine::stale_entries() {
  check::MutexLock lock(stale_mu_);
  return stale_snaps_.size();
}

bool QueryEngine::publish_tree(
    ArtifactKind kind, vid_t v,
    const std::shared_ptr<const sssp::SsspResult>& tree, std::uint64_t gen,
    std::uint64_t epoch0) {
  if (!live()) {
    cache_.put_tree(kind, v, tree, gen);
    return true;
  }
  check::MutexLock lock(dyn_mu_);
  if (mutation_epoch_.load(std::memory_order_relaxed) != epoch0) return false;
  cache_.put_tree(kind, v, tree, gen, epoch0);
  return true;
}

bool QueryEngine::publish_snapshot(vid_t s, vid_t t,
                                   const std::shared_ptr<PrunedSnapshot>& snap,
                                   std::uint64_t gen, std::uint64_t epoch0,
                                   ServeResult& out) {
  if (!live()) {
    if (!cache_.put_snapshot(s, t, snap, gen)) out.uncached = true;
    return true;
  }
  check::MutexLock lock(dyn_mu_);
  if (mutation_epoch_.load(std::memory_order_relaxed) != epoch0) return false;
  if (!cache_.put_snapshot(s, t, snap, gen, epoch0)) out.uncached = true;
  return true;
}

bool QueryEngine::stale_bound_since(std::uint64_t epoch0, Staleness* out) {
  check::MutexLock lock(dyn_mu_);
  const std::uint64_t now = mutation_epoch_.load(std::memory_order_relaxed);
  if (now == epoch0) {
    // The epoch settled back by the time we got the lock — the answer is
    // current after all.
    out->stale = false;
    return true;
  }
  // Coverage check: the bounded history must contain every batch in
  // (epoch0, now] — adoption is in epoch order without gaps, so it does iff
  // the oldest retained record is <= epoch0 + 1.
  if (batch_history_.empty() || batch_history_.front().epoch > epoch0 + 1) {
    return false;
  }
  weight_t bound = 0;
  for (const BatchImpact& bi : batch_history_) {
    if (bi.epoch <= epoch0 || bi.epoch > now) continue;
    if (bi.structural) return false;  // no weight bound covers a topology change
    bound += bi.bound;
  }
  out->stale = true;
  out->epoch = epoch0;
  out->epochs_behind = now - epoch0;
  out->weight_bound = bound;
  return true;
}

bool QueryEngine::ensure_stream(PrunedSnapshot& snap, ServeResult& out,
                                const fault::CancelToken* cancel) {
  if (!snap.stream) {
    // Only a disk-restored snapshot parks here with paths still extendable;
    // a computed snapshot's stream lives until genuine exhaustion.
    if (!snap.graph) {
      snap.exhausted = true;  // negative answer: nothing to extend
      return false;
    }
    const vid_t cs = snap.map.to_new(snap.s), ct = snap.map.to_new(snap.t);
    if (cs == kNoVertex || ct == kNoVertex) {
      snap.exhausted = true;
      return false;
    }
    snap.graph->warm_reverse();
    if (snap.restored_has_rtree) {
      // Rebuild warm-started from the persisted reverse tree: deviations
      // replay with the exact tie-breaks of the original stream.
      snap.stream = std::make_unique<ksp::KspStream>(
          sssp::BiView::of(*snap.graph), cs, ct,
          std::move(snap.restored_rtree));
      snap.restored_has_rtree = false;
      snap.restored_rtree = {};
    } else {
      snap.stream = std::make_unique<ksp::KspStream>(
          sssp::BiView::of(*snap.graph), cs, ct);
    }
    PEEK_COUNT_INC("serve.stream_rebuilds");
  }
  // Fast-forward a rebuilt stream past the already-materialized paths.
  // Replayed paths are discarded — `paths` already holds them in original
  // ids — leaving the stream positioned to produce path |paths|+1 next.
  while (snap.stream->produced().size() < snap.paths.size()) {
    auto p = snap.stream->next(cancel);
    if (!p) {
      if (!snap.stream->exhausted()) {
        // Cancelled mid-fast-forward: the stream keeps its progress; a later
        // un-cancelled query resumes the replay from here.
        fault::CancelPoll poll(cancel, /*stride=*/1);
        out.status.code =
            poll.should_stop() ? poll.why() : fault::Status::kCancelled;
        return false;
      }
      // Replay dried up before reaching the persisted list. The persisted
      // paths remain the (complete) answer; nothing more can be extended.
      snap.exhausted = true;
      snap.stream.reset();
      return false;
    }
  }
  return true;
}

bool QueryEngine::serve_from_snapshot(PrunedSnapshot& snap, int k,
                                      ServeResult& out,
                                      const fault::CancelToken* cancel) {
  check::MutexLock lock(snap.mu);
  if (snap.restored) PEEK_COUNT_INC("serve.cache.restore_hits");
  if (static_cast<int>(snap.paths.size()) < k && !snap.exhausted) {
    if (snap.k_budget < k) return false;  // needs a wider pruning bound
    // Incremental K extension: pull only the missing paths from the live
    // stream (rebuilt + fast-forwarded first if this snapshot came from
    // disk). Exhaustion below the budget is definitive — when the pruned
    // graph runs out before k_budget, the bound was infinite (Lemma 4.2)
    // and the pruned graph holds every s->t path there is.
    if (ensure_stream(snap, out, cancel)) {
      while (static_cast<int>(snap.paths.size()) < k) {
        auto p = snap.stream ? snap.stream->next(cancel) : std::nullopt;
        if (!p) {
          if (snap.stream && !snap.stream->exhausted()) {
            // Cancelled mid-extension: the stream stays live (a later
            // un-cancelled query resumes it) and this query answers
            // partially.
            fault::CancelPoll poll(cancel, /*stride=*/1);
            out.status.code = poll.should_stop() ? poll.why()
                                                 : fault::Status::kCancelled;
            break;
          }
          snap.exhausted = true;
          snap.stream.reset();
          break;
        }
        to_original_ids(*p, snap.map);
        snap.paths.push_back(std::move(*p));
        out.extended = true;
        PEEK_COUNT_INC("serve.stream_extensions");
      }
    }
  }
  const size_t take = std::min<size_t>(static_cast<size_t>(k),
                                       snap.paths.size());
  out.paths.assign(snap.paths.begin(), snap.paths.begin() + take);
  out.upper_bound = snap.upper_bound;
  return true;
}

bool QueryEngine::serve_degraded(vid_t s, vid_t t, int k, std::uint64_t gen,
                                 ServeResult& out) {
  if (!opts_.degraded_serving || !opts_.cache_snapshots) return false;
  auto snap = cache_.get_snapshot(s, t, gen);
  if (!snap) return false;
  check::MutexLock lock(snap->mu);
  // Already-materialized paths only — a shed query must not touch the graph.
  // An exhausted snapshot's paths are complete, so even an empty list is a
  // definitive (unreachable) answer then.
  if (snap->paths.empty() && !snap->exhausted) return false;
  const size_t take = std::min<size_t>(static_cast<size_t>(k),
                                       snap->paths.size());
  out.paths.assign(snap->paths.begin(), snap->paths.begin() + take);
  out.upper_bound = snap->upper_bound;
  out.snapshot_hit = true;
  out.degraded = true;
  PEEK_COUNT_INC("serve.degraded");
  return true;
}

ServeResult QueryEngine::query_cached_only(vid_t s, vid_t t, int k) {
  const auto t0 = std::chrono::steady_clock::now();
  ServeResult out;
  auto g = active_graph();
  if (k <= 0 || s < 0 || s >= g->num_vertices() || t < 0 ||
      t >= g->num_vertices()) {
    out.status = {fault::Status::kInvalidArgument,
                  "query requires 0 <= s,t < n and k > 0"};
    PEEK_COUNT_INC("serve.invalid_arguments");
  } else if (!serve_degraded(s, t, k, generation(), out)) {
    // Honors ServeOptions::degraded_serving: disabled means no cached-only
    // answers, same as the shed path.
    out.status = {fault::Status::kOverloaded,
                  "no cached answer for degraded-only query"};
  }
  out.seconds = seconds_since(t0);
  return out;
}

std::shared_ptr<PrunedSnapshot> QueryEngine::compute_snapshot(
    const graph::CsrGraph& g, vid_t s, vid_t t, int k_budget,
    std::uint64_t generation, std::uint64_t epoch0, ServeResult& out,
    const fault::CancelToken* cancel) {
  PEEK_TIMER_SCOPE("serve.compute");
  std::shared_ptr<const sssp::SsspResult> fwd, rev;
  if (opts_.cache_trees) {
    fwd = cache_.get_tree(ArtifactKind::kForwardTree, s, generation);
    rev = cache_.get_tree(ArtifactKind::kReverseTree, t, generation);
    // Corruption probes: a hit flagged corrupt is dropped on the floor and
    // recomputed — the fresh artifact overwrites the cache entry.
    if (fwd && PEEK_FAULT_FIRE("serve.tree.corrupt")) {
      fwd = nullptr;
      PEEK_COUNT_INC("serve.cache.corruption_drops");
    }
    if (rev && PEEK_FAULT_FIRE("serve.tree.corrupt")) {
      rev = nullptr;
      PEEK_COUNT_INC("serve.cache.corruption_drops");
    }
    if (fwd || rev) {
      // Warm-restart accounting: hits on trees that came from disk.
      check::MutexLock lock(restored_mu_);
      if (fwd && restored_trees_.count(
                     {static_cast<int>(ArtifactKind::kForwardTree), s}) > 0)
        PEEK_COUNT_INC("serve.cache.restore_hits");
      if (rev && restored_trees_.count(
                     {static_cast<int>(ArtifactKind::kReverseTree), t}) > 0)
        PEEK_COUNT_INC("serve.cache.restore_hits");
    }
  }
  out.fwd_tree_hit = fwd != nullptr;
  out.rev_tree_hit = rev != nullptr;

  core::PruneOptions po;
  po.k = k_budget;
  po.parallel = opts_.peek.parallel;
  po.delta = opts_.peek.delta;
  po.tight_edge_prune = opts_.peek.tight_edge_prune;
  po.reuse_from_source = fwd.get();
  po.reuse_to_target = rev.get();
  po.cancel = cancel;
  core::PruneResult pruned = core::k_upper_bound_prune(g, s, t, po);
  if (pruned.status != fault::Status::kOk) {
    out.status = {pruned.status, "prune aborted"};
    return nullptr;  // partial artifacts are never cached
  }

  if (opts_.cache_trees) {
    // Epoch-guarded in live mode: a tree computed against a superseded
    // snapshot is simply not cached (the answer itself is handled by the
    // caller's epoch check).
    if (!fwd) {
      publish_tree(ArtifactKind::kForwardTree, s,
                   std::make_shared<sssp::SsspResult>(pruned.from_source),
                   generation, epoch0);
    }
    if (!rev && !pruned.to_target.dist.empty()) {
      publish_tree(ArtifactKind::kReverseTree, t,
                   std::make_shared<sssp::SsspResult>(pruned.to_target),
                   generation, epoch0);
    }
  }

  // The snapshot is private until put_snapshot publishes it, but its
  // mu-guarded fields are initialized under the lock anyway: the annotations
  // hold unconditionally, and an uncontended lock is nanoseconds against the
  // pipeline that just ran.
  auto snap = std::make_shared<PrunedSnapshot>();
  snap->s = s;
  snap->t = t;
  snap->k_budget = k_budget;
  snap->upper_bound = pruned.upper_bound;
  if (pruned.kept_vertices == 0) {
    check::MutexLock lock(snap->mu);
    snap->exhausted = true;  // t unreachable: a cached negative answer
    return snap;
  }

  auto regen = compact::regenerate(
      sssp::GraphView(g), pruned.vertex_keep.data(), pruned.edge_keep,
      {.parallel = opts_.peek.parallel, .cancel = cancel});
  if (regen.status != fault::Status::kOk) {
    out.status = {regen.status, "compaction aborted"};
    return nullptr;
  }
  const vid_t cs = regen.map.to_new(s), ct = regen.map.to_new(t);
  if (cs == kNoVertex || ct == kNoVertex) {  // defensive: s/t are kept
    check::MutexLock lock(snap->mu);
    snap->exhausted = true;
    return snap;
  }
  auto cg = std::make_shared<graph::CsrGraph>(std::move(regen.graph));
  cg->warm_reverse();  // the stream's reverse view, built once here

  // Recycle the pruning stage's reverse tree as the stream's warm-start
  // tree, translated into compacted ids. Sound: for every kept v, the
  // shortest v->t path survives pruning vertex-by-vertex and edge-by-edge
  // (for u on it, spSrc[u] + spTgt[u] <= spSrc[v] + spTgt[v] <= b by
  // subpath optimality, and each edge obeys both §4 edge rules), so the
  // tree is a valid — and distance-identical — reverse SP tree of the
  // compacted graph.
  const vid_t n_new = cg->num_vertices();
  sssp::SsspResult rtree;
  rtree.dist.assign(static_cast<size_t>(n_new), kInfDist);
  rtree.parent.assign(static_cast<size_t>(n_new), kNoVertex);
  for (vid_t v = 0; v < n_new; ++v) {
    const vid_t old = regen.map.to_old(v);
    rtree.dist[v] = pruned.to_target.dist[old];
    const vid_t par = pruned.to_target.parent[old];
    rtree.parent[v] = par == kNoVertex ? kNoVertex : regen.map.to_new(par);
  }

  snap->graph = cg;
  snap->map = std::move(regen.map);
  {
    check::MutexLock lock(snap->mu);
    snap->stream = std::make_unique<ksp::KspStream>(sssp::BiView::of(*cg), cs,
                                                    ct, std::move(rtree));
  }
  return snap;
}

ServeResult QueryEngine::query(vid_t s, vid_t t, int k,
                               const QueryOptions& qopts) {
  const auto t0 = std::chrono::steady_clock::now();
  ServeResult out;
  PEEK_COUNT_INC("serve.queries");
  PEEK_TIMER_SCOPE("serve.query");

  // Live mode: epoch0 is read before the graph snapshot, so a batch landing
  // in between makes the publish guard fail conservatively (the snapshot is
  // newer than the claimed epoch, never older).
  std::uint64_t epoch0 = live() ? mutation_epoch() : 0;
  auto g = active_graph();
  std::uint64_t gen = generation();
  if (k <= 0 || s < 0 || s >= g->num_vertices() || t < 0 ||
      t >= g->num_vertices()) {
    out.status = {fault::Status::kInvalidArgument,
                  "query requires 0 <= s,t < n and k > 0"};
    PEEK_COUNT_INC("serve.invalid_arguments");
    out.seconds = seconds_since(t0);
    return out;
  }

  // Per-query deadline (query's own, else the engine default), combined with
  // the caller's token: either trip cancels the whole pipeline mid-flight.
  fault::CancelToken deadline_token;
  const fault::CancelToken* cancel =
      qopts.cancel != nullptr && qopts.cancel->valid() ? qopts.cancel : nullptr;
  const auto budget =
      qopts.deadline.count() > 0 ? qopts.deadline : opts_.default_deadline;
  if (budget.count() > 0) {
    deadline_token = cancel != nullptr
                         ? fault::CancelToken::linked(*cancel, budget)
                         : fault::CancelToken::after(budget);
    cancel = &deadline_token;
  }

  // Admission control: bounded in-flight occupancy with load shedding. The
  // slot is RAII-released on every exit path below.
  struct Slot {
    std::atomic<int>* counter = nullptr;
    ~Slot() {
      if (counter) counter->fetch_sub(1, std::memory_order_acq_rel);
    }
  } slot;
  if (opts_.max_inflight > 0) {
    bool admitted = false;
    int cur = admitted_.load(std::memory_order_relaxed);
    while (cur < opts_.max_inflight) {
      if (admitted_.compare_exchange_weak(cur, cur + 1,
                                          std::memory_order_acq_rel)) {
        admitted = true;
        break;
      }
    }
    if (!admitted) {
      PEEK_COUNT_INC("serve.shed");
      if (!serve_degraded(s, t, k, gen, out)) {
        out.status = {fault::Status::kOverloaded,
                      "in-flight limit reached and no cached answer"};
      }
      out.seconds = seconds_since(t0);
      return out;
    }
    slot.counter = &admitted_;
  }

  if (cache_.byte_budget() == 0 ||
      (!opts_.cache_snapshots && !opts_.cache_trees)) {
    // Memory-pressure / cache-off degradation: plain uncached PeeK. In live
    // mode the compute can race a batch; retry against the fresh snapshot,
    // or serve with an explicit bound when the races were reweight-only.
    for (int attempt = 0;; ++attempt) {
      if (live()) {
        epoch0 = mutation_epoch();
        g = active_graph();
      }
      core::PeekOptions po = opts_.peek;
      po.k = k;
      po.cancel = cancel;
      auto r = core::peek_ksp(*g, s, t, po);
      out.paths = std::move(r.ksp.paths);
      out.upper_bound = r.upper_bound;
      out.status.code = r.status;
      out.uncached = true;
      if (live() && mutation_epoch() != epoch0) {
        if (!stale_bound_since(epoch0, &out.staleness)) {
          if (attempt < kMaxEpochRetries) {
            out = ServeResult{};
            continue;
          }
          out.status = {fault::Status::kOverloaded,
                        "mutation storm outran the query"};
        } else if (out.staleness.stale) {
          PEEK_COUNT_INC("serve.stale_answers");
          PEEK_GAUGE_SET("serve.staleness.epochs_behind",
                         static_cast<std::int64_t>(out.staleness.epochs_behind));
        }
      }
      break;
    }
    PEEK_COUNT_INC("serve.uncached_fallbacks");
    if (out.status.code == fault::Status::kDeadlineExceeded) {
      PEEK_COUNT_INC("serve.deadline_exceeded");
    }
    // Content-epoch stamp (see Staleness::epoch): fresh answers claim the
    // epoch their compute was validated against.
    if (live() && !out.staleness.stale) out.staleness.epoch = epoch0;
    certify_result(*g, s, t, out);
    out.seconds = seconds_since(t0);
    return out;
  }

  const std::pair<vid_t, vid_t> key{s, t};
  int epoch_races = 0;
  for (;;) {
    // Refreshed every iteration: an invalidation (generation) or a batch
    // (snapshot + epoch) may have landed while this query waited coalesced
    // or lost an epoch race.
    gen = generation();
    if (live()) {
      epoch0 = mutation_epoch();
      g = active_graph();
    }

    if (opts_.cache_snapshots) {
      if (auto snap = cache_.get_snapshot(s, t, gen)) {
        if (PEEK_FAULT_FIRE("serve.snapshot.corrupt")) {
          // Corruption probe: drop the hit, recompute below; the fresh
          // snapshot replaces the doubted entry.
          PEEK_COUNT_INC("serve.cache.corruption_drops");
        } else if (serve_from_snapshot(*snap, k, out, cancel)) {
          if (live() && mutation_epoch() != epoch0 &&
              cache_.get_snapshot(s, t, generation()) != snap) {
            // A batch landed mid-serve AND swept this entry: the answer
            // belongs to epoch0. Bound it or retry. (A surviving entry was
            // restamped — the batch provably did not affect this pair, so
            // the answer is fresh and falls through.)
            if (stale_bound_since(epoch0, &out.staleness) &&
                out.staleness.stale) {
              out.snapshot_hit = true;
              PEEK_COUNT_INC("serve.stale_answers");
              PEEK_GAUGE_SET(
                  "serve.staleness.epochs_behind",
                  static_cast<std::int64_t>(out.staleness.epochs_behind));
              break;
            }
            if (++epoch_races <= kMaxEpochRetries) {
              out = ServeResult{};
              continue;
            }
            out.status = {fault::Status::kOverloaded,
                          "mutation storm outran the query"};
            break;
          }
          out.snapshot_hit = true;
          PEEK_COUNT_INC("serve.snapshot_hits");
          break;
        }
        // Budget too small for this K: recompute below with a wider bound
        // (the new snapshot replaces the old entry).
      }
    }

    // Bounded-staleness serving (live mode): the pair's snapshot was
    // displaced by a reweight-only batch and its repair is still in flight —
    // answer from the pre-mutation snapshot with an explicit staleness
    // bound rather than blocking on a fresh compute. Entry, epoch and bound
    // are read under one stale_mu_ hold (adopt_batch stores the epoch inside
    // its stale_mu_ section), so the tuple is internally consistent.
    if (live() && opts_.cache_snapshots) {
      std::shared_ptr<PrunedSnapshot> stale_snap;
      Staleness st;
      {
        check::MutexLock slock(stale_mu_);
        auto it = stale_snaps_.find(key);
        if (it != stale_snaps_.end() && repaired_epoch() < mutation_epoch()) {
          stale_snap = it->second.snap;
          st.stale = true;
          st.epoch = it->second.epoch;
          st.epochs_behind = mutation_epoch() - it->second.epoch;
          st.weight_bound = it->second.bound;
        }
      }
      if (stale_snap && serve_from_snapshot(*stale_snap, k, out, cancel)) {
        out.snapshot_hit = true;
        out.staleness = st;
        PEEK_COUNT_INC("serve.stale_answers");
        PEEK_GAUGE_SET("serve.staleness.epochs_behind",
                       static_cast<std::int64_t>(st.epochs_behind));
        break;
      }
    }

    // Don't claim (or wait for) work with a tripped token.
    {
      fault::CancelPoll poll(cancel, /*stride=*/1);
      if (poll.should_stop()) {
        out.status.code = poll.why();
        break;
      }
    }

    // Coalesce with an identical in-flight computation, or claim ownership
    // of this (s, t).
    std::shared_ptr<Inflight> inf;
    bool owner = false;
    {
      check::MutexLock lock(inflight_mu_);
      auto it = inflight_.find(key);
      if (it != inflight_.end()) {
        inf = it->second;
      } else {
        inf = std::make_shared<Inflight>();
        inf->k_budget = budget_for(k);
        // Abortable by invalidate() without touching the caller's token.
        inf->abort = cancel != nullptr ? fault::CancelToken::linked(*cancel)
                                       : fault::CancelToken::cancellable();
        inflight_[key] = inf;
        owner = true;
      }
    }

    if (!owner) {
      bool published = false;
      bool retry = false;
      // Copied out under the lock: the owner publishes snap and done
      // together, and reading snap after the scope would be an unlocked
      // access to guarded state.
      std::shared_ptr<PrunedSnapshot> published_snap;
      {
        check::UniqueLock lock(inf->mu);
        for (;;) {
          if (inf->done) {
            published = true;
            published_snap = inf->snap;
            break;
          }
          if (inf->invalidated) {
            // The generation moved under this entry: the owner is being
            // aborted, so retry against the new generation instead of
            // waiting for (and serving) its doomed snapshot.
            retry = true;
            break;
          }
          if (cancel != nullptr) {
            fault::CancelPoll poll(cancel, /*stride=*/1);
            if (poll.should_stop()) {
              out.status.code = poll.why();
              break;
            }
            // Bounded waits so a tripped deadline (or parent cancel) is
            // noticed without the owner having to finish first.
            if (auto dl = cancel->deadline()) {
              inf->cv.wait_until(lock, *dl);
            } else {
              inf->cv.wait_for(lock, std::chrono::milliseconds(5));
            }
          } else {
            inf->cv.wait(lock);
          }
        }
      }
      if (retry) {
        PEEK_COUNT_INC("serve.coalesce_retries");
        continue;
      }
      if (!published) break;  // cancelled while coalesced; status already set
      out.coalesced = true;
      PEEK_COUNT_INC("serve.coalesced_waits");
      // Live mode: revalidate through the cache instead of serving the
      // owner's direct reference — a batch may have swept the entry between
      // the owner's publish and this wake-up, and the loop top re-checks
      // freshness (cache hit, stale table, or recompute).
      if (live()) continue;
      if (published_snap &&
          serve_from_snapshot(*published_snap, k, out, cancel))
        break;
      continue;  // owner failed / was cancelled, or its budget was too small
    }

    PEEK_COUNT_INC("serve.snapshot_misses");
    std::shared_ptr<PrunedSnapshot> snap;
    try {
      snap = compute_snapshot(*g, s, t, inf->k_budget, gen, epoch0, out,
                              &inf->abort);
    } catch (const std::bad_alloc& e) {
      // Real or injected allocation failure outside the hardened kernels
      // (e.g. while copying a tree into the cache).
      out.status = {fault::Status::kResourceExhausted, e.what()};
    } catch (const std::exception& e) {
      out.status = {fault::Status::kInternal, e.what()};
    }
    bool epoch_ok = true;
    if (snap) {
      serve_from_snapshot(*snap, k, out, cancel);
      if (opts_.cache_snapshots) {
        epoch_ok = publish_snapshot(s, t, snap, gen, epoch0, out);
      } else if (live()) {
        epoch_ok = mutation_epoch() == epoch0;
      }
    }
    // Publish (null on failure: waiters retry on their own token) and always
    // release the key — cancelled or not, no in-flight entry may leak.
    {
      check::MutexLock lock(inflight_mu_);
      inflight_.erase(key);
    }
    bool was_invalidated = false;
    {
      check::MutexLock lock(inf->mu);
      was_invalidated = inf->invalidated;
      inf->snap = snap;
      inf->done = true;
    }
    inf->cv.notify_all();
    if (!snap && was_invalidated) {
      // invalidate() aborted this compute mid-flight. Unless the caller's
      // own token also tripped, retry against the new generation.
      fault::CancelPoll poll(cancel, /*stride=*/1);
      if (!poll.should_stop()) {
        out = ServeResult{};
        continue;
      }
    }
    if (!epoch_ok) {
      // The compute raced a batch: the answer is exact for epoch0 but the
      // engine has moved on. Serve it with an explicit bound when every
      // intervening batch was reweight-only; otherwise recompute.
      PEEK_COUNT_INC("serve.epoch_races");
      if (stale_bound_since(epoch0, &out.staleness) && out.staleness.stale) {
        PEEK_COUNT_INC("serve.stale_answers");
        PEEK_GAUGE_SET("serve.staleness.epochs_behind",
                       static_cast<std::int64_t>(out.staleness.epochs_behind));
        break;
      }
      if (++epoch_races <= kMaxEpochRetries) {
        out = ServeResult{};
        continue;
      }
      out.status = {fault::Status::kOverloaded,
                    "mutation storm outran the query"};
    }
    break;
  }

  if (out.status.code == fault::Status::kDeadlineExceeded) {
    PEEK_COUNT_INC("serve.deadline_exceeded");
  }
  // Content-epoch stamp (see Staleness::epoch): a fresh answer is exact for
  // the loop's last validated epoch0 — cache hits were looked up at it, and
  // computes passed the epoch0 publish guard. (A hit that survived a
  // concurrent sweep is exact for a *newer* epoch too; claiming epoch0
  // under-claims, which the fleet fence treats conservatively.)
  if (live() && !out.staleness.stale) out.staleness.epoch = epoch0;
  certify_result(*g, s, t, out);
  out.seconds = seconds_since(t0);
  return out;
}

void QueryEngine::certify_result(const graph::CsrGraph& g, vid_t s, vid_t t,
                                 ServeResult& out) {
  // Stale answers are exact for an earlier epoch, not for `g` — certifying
  // them against the post-mutation weights would reject correct answers.
  if (!opts_.certify || out.status.code != fault::Status::kOk ||
      out.degraded || out.staleness.stale) {
    return;
  }
  PEEK_COUNT_INC("serve.certify.checks");
  check::CertifyOptions co;
  co.upper_bound = out.upper_bound;
  fault::Status cert = check::certify_paths(g, s, t, out.paths, co);
  if (!cert.ok()) {
    PEEK_COUNT_INC("serve.certify.failures");
    out.certificate_failed = true;
    out.status = {fault::Status::kInternal,
                  "answer failed certification: " + cert.message};
  }
}

void QueryEngine::restore_from_dir() {
  PEEK_TIMER_SCOPE("serve.warm_restart");
  auto g = active_graph();
  const std::uint64_t fp = recover::graph_fingerprint(*g);
  const std::uint64_t gen = generation();
  for (recover::LoadedFile& f : recovery_->scan()) {
    fault::Status st;
    if (f.snap.kind == recover::kSsspTree) {
      recover::TreeArtifact a;
      st = recover::decode_tree(f.snap, a);
      if (st.ok()) {
        // Fingerprint mismatch = a snapshot of some other graph (stale,
        // e.g. the graph was regenerated between runs). Not corruption:
        // skip it, leave the file for whoever owns it.
        if (a.fingerprint != fp ||
            a.tree.dist.size() != static_cast<size_t>(g->num_vertices()))
          continue;
        const ArtifactKind kind = a.reverse ? ArtifactKind::kReverseTree
                                            : ArtifactKind::kForwardTree;
        const vid_t root = a.root;
        if (cache_.put_tree(kind, root,
                            std::make_shared<sssp::SsspResult>(
                                std::move(a.tree)),
                            gen)) {
          check::MutexLock lock(restored_mu_);
          restored_trees_.insert({static_cast<int>(kind), root});
          ++restored_artifacts_;
        }
        continue;
      }
    } else if (f.snap.kind == recover::kPrunedSnapshot) {
      recover::PrunedSnapshotArtifact a;
      st = recover::decode_pruned_snapshot(f.snap, a);
      if (st.ok()) {
        if (a.fingerprint != fp || a.s >= g->num_vertices() ||
            a.t >= g->num_vertices())
          continue;
        if (a.reachable &&
            a.map.old_to_new.size() != static_cast<size_t>(g->num_vertices()))
          continue;
        auto snap = std::make_shared<PrunedSnapshot>();
        snap->s = a.s;
        snap->t = a.t;
        snap->k_budget = a.k_budget;
        snap->upper_bound = a.upper_bound;
        snap->restored = true;
        {
          // Private until put_snapshot publishes it; guarded fields are
          // still initialized under the (uncontended) lock so the
          // annotations hold unconditionally.
          check::MutexLock lock(snap->mu);
          snap->exhausted = a.exhausted;
          snap->paths = std::move(a.paths);
          if (a.reachable && a.has_rtree) {
            snap->restored_has_rtree = true;
            snap->restored_rtree = std::move(a.rtree);
          }
        }
        if (a.reachable) {
          snap->graph = std::make_shared<graph::CsrGraph>(std::move(a.graph));
          snap->map = std::move(a.map);
        }
        if (cache_.put_snapshot(snap->s, snap->t, snap, gen))
          ++restored_artifacts_;
        continue;
      }
    } else {
      // Unknown payload kind — possibly a newer writer or another
      // subsystem's file (e.g. a dist checkpoint). Not ours to judge.
      continue;
    }
    // Checksums passed but the decode rejected the contents: the writer was
    // broken or the corruption was crafted — quarantine with the typed why.
    // A failed quarantine (e.g. read-only dir) leaves the bad file in place;
    // it is counted and re-skipped on the next restart, never re-served.
    if (!recover::quarantine_file(f.path, st).ok()) {
      PEEK_COUNT_INC("recover.quarantine_failures");
    }
  }
}

int QueryEngine::persist() {
  if (!recovery_) return 0;
  PEEK_TIMER_SCOPE("serve.persist");
  if (!recovery_->ensure_dir().ok()) {
    // No directory, no files: every publish below would fail the same way.
    PEEK_COUNT_INC("recover.ensure_dir_failures");
    return 0;
  }
  auto g = active_graph();
  const std::uint64_t fp = recover::graph_fingerprint(*g);
  const std::uint64_t gen = generation();
  int written = 0;
  auto publish = [&](const std::string& name,
                     const std::vector<std::byte>& image) {
    const fault::Status st = recover::write_file_atomic(
        recovery_->path_for(name), image.data(), image.size());
    if (st.ok()) ++written;
  };
  // Snapshot the artifacts under the cache locks, encode + write after:
  // write_file_atomic fsyncs, and a shard lock held across an fsync would
  // stall every concurrent query hashing into that shard.
  std::vector<recover::TreeArtifact> trees;
  std::vector<recover::PrunedSnapshotArtifact> snaps;
  if (opts_.cache_trees) {
    cache_.for_each_tree([&](ArtifactKind kind, vid_t v,
                             const std::shared_ptr<const sssp::SsspResult>&
                                 tree,
                             std::uint64_t tgen) {
      if (tgen != gen) return;  // stale generation: useless after restart
      recover::TreeArtifact a;
      a.fingerprint = fp;
      a.root = v;
      a.reverse = kind == ArtifactKind::kReverseTree;
      a.tree = *tree;
      trees.push_back(std::move(a));
    });
  }
  if (opts_.cache_snapshots) {
    cache_.for_each_snapshot([&](vid_t, vid_t,
                                 const std::shared_ptr<PrunedSnapshot>& snap,
                                 std::uint64_t sgen) {
      if (sgen != gen) return;
      recover::PrunedSnapshotArtifact a;
      a.fingerprint = fp;
      {
        check::MutexLock lock(snap->mu);
        a.s = snap->s;
        a.t = snap->t;
        a.k_budget = snap->k_budget;
        a.upper_bound = snap->upper_bound;
        a.exhausted = snap->exhausted;
        a.reachable = snap->graph != nullptr;
        if (snap->graph) {
          a.graph = *snap->graph;
          a.map = snap->map;
          if (snap->stream && snap->stream->has_reverse_tree()) {
            a.has_rtree = true;
            a.rtree = snap->stream->reverse_tree();
          } else if (snap->restored_has_rtree) {
            // Restored but never extended: pass the persisted tree through
            // unchanged so the next restart keeps the exact tie-breaks.
            a.has_rtree = true;
            a.rtree = snap->restored_rtree;
          }
        }
        a.paths = snap->paths;
      }
      snaps.push_back(std::move(a));
    });
  }
  for (const recover::TreeArtifact& a : trees) {
    publish(std::string("tree_") + (a.reverse ? "r" : "f") + "_" +
                std::to_string(a.root) + ".snap",
            recover::encode_tree(a));
  }
  for (const recover::PrunedSnapshotArtifact& a : snaps) {
    publish("snap_" + std::to_string(a.s) + "_" + std::to_string(a.t) +
                ".snap",
            recover::encode_pruned_snapshot(a));
  }
  return written;
}

}  // namespace peek::serve
