#include "serve/query_engine.hpp"

#include <algorithm>
#include <chrono>

#include "check/certify.hpp"
#include "ksp/stream.hpp"
#include "obs/metrics.hpp"
#include "recover/artifacts.hpp"

namespace peek::serve {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// Translates a compacted-id path into original ids (in place).
void to_original_ids(sssp::Path& p, const compact::VertexMap& map) {
  for (auto& v : p.verts) v = map.to_old(v);
}

}  // namespace

namespace {

/// Shared persistence setup of both constructors. A directory that cannot be
/// created is counted and degrades the engine to no-persistence — persist()
/// would only produce per-file write failures against the same broken path.
void init_recovery(std::optional<recover::RecoveryManager>& recovery,
                   const std::string& dir) {
  recovery.emplace(dir);
  if (!recovery->ensure_dir().ok()) {
    PEEK_COUNT_INC("recover.ensure_dir_failures");
  }
}

}  // namespace

QueryEngine::QueryEngine(const graph::CsrGraph& g, const ServeOptions& opts)
    : static_graph_(&g), opts_(opts), cache_(opts.cache) {
  if (opts_.injector) fault::Injector::global().configure(*opts_.injector);
  if (!opts_.snapshot_dir.empty()) {
    init_recovery(recovery_, opts_.snapshot_dir);
    if (opts_.warm_restart) restore_from_dir();
  }
}

QueryEngine::QueryEngine(const dyn::DynamicGraph& dg, const ServeOptions& opts)
    : dyn_graph_(&dg), opts_(opts), cache_(opts.cache) {
  if (opts_.injector) fault::Injector::global().configure(*opts_.injector);
  if (!opts_.snapshot_dir.empty()) {
    init_recovery(recovery_, opts_.snapshot_dir);
    if (opts_.warm_restart) restore_from_dir();
  }
}

void QueryEngine::invalidate() {
  generation_.fetch_add(1, std::memory_order_acq_rel);
  PEEK_COUNT_INC("serve.invalidations");
}

size_t QueryEngine::inflight_entries() {
  check::MutexLock lock(inflight_mu_);
  return inflight_.size();
}

int QueryEngine::budget_for(int k) const {
  int target = k > opts_.k_budget_floor ? k : opts_.k_budget_floor;
  int b = 1;
  while (b < target) b <<= 1;
  return b;
}

std::shared_ptr<const graph::CsrGraph> QueryEngine::active_graph() {
  if (static_graph_ != nullptr) {
    // Non-owning: the caller guarantees the graph outlives the engine.
    return std::shared_ptr<const graph::CsrGraph>(static_graph_,
                                                  [](const graph::CsrGraph*) {
                                                  });
  }
  check::MutexLock lock(dyn_mu_);
  if (!dyn_snapshot_ || dyn_graph_->version() != dyn_version_seen_) {
    dyn_version_seen_ = dyn_graph_->version();
    dyn_snapshot_ =
        std::make_shared<const graph::CsrGraph>(dyn_graph_->to_csr());
    generation_.fetch_add(1, std::memory_order_acq_rel);
    PEEK_COUNT_INC("serve.dynamic_resnapshots");
  }
  return dyn_snapshot_;
}

bool QueryEngine::ensure_stream(PrunedSnapshot& snap, ServeResult& out,
                                const fault::CancelToken* cancel) {
  if (!snap.stream) {
    // Only a disk-restored snapshot parks here with paths still extendable;
    // a computed snapshot's stream lives until genuine exhaustion.
    if (!snap.graph) {
      snap.exhausted = true;  // negative answer: nothing to extend
      return false;
    }
    const vid_t cs = snap.map.to_new(snap.s), ct = snap.map.to_new(snap.t);
    if (cs == kNoVertex || ct == kNoVertex) {
      snap.exhausted = true;
      return false;
    }
    snap.graph->warm_reverse();
    if (snap.restored_has_rtree) {
      // Rebuild warm-started from the persisted reverse tree: deviations
      // replay with the exact tie-breaks of the original stream.
      snap.stream = std::make_unique<ksp::KspStream>(
          sssp::BiView::of(*snap.graph), cs, ct,
          std::move(snap.restored_rtree));
      snap.restored_has_rtree = false;
      snap.restored_rtree = {};
    } else {
      snap.stream = std::make_unique<ksp::KspStream>(
          sssp::BiView::of(*snap.graph), cs, ct);
    }
    PEEK_COUNT_INC("serve.stream_rebuilds");
  }
  // Fast-forward a rebuilt stream past the already-materialized paths.
  // Replayed paths are discarded — `paths` already holds them in original
  // ids — leaving the stream positioned to produce path |paths|+1 next.
  while (snap.stream->produced().size() < snap.paths.size()) {
    auto p = snap.stream->next(cancel);
    if (!p) {
      if (!snap.stream->exhausted()) {
        // Cancelled mid-fast-forward: the stream keeps its progress; a later
        // un-cancelled query resumes the replay from here.
        fault::CancelPoll poll(cancel, /*stride=*/1);
        out.status.code =
            poll.should_stop() ? poll.why() : fault::Status::kCancelled;
        return false;
      }
      // Replay dried up before reaching the persisted list. The persisted
      // paths remain the (complete) answer; nothing more can be extended.
      snap.exhausted = true;
      snap.stream.reset();
      return false;
    }
  }
  return true;
}

bool QueryEngine::serve_from_snapshot(PrunedSnapshot& snap, int k,
                                      ServeResult& out,
                                      const fault::CancelToken* cancel) {
  check::MutexLock lock(snap.mu);
  if (snap.restored) PEEK_COUNT_INC("serve.cache.restore_hits");
  if (static_cast<int>(snap.paths.size()) < k && !snap.exhausted) {
    if (snap.k_budget < k) return false;  // needs a wider pruning bound
    // Incremental K extension: pull only the missing paths from the live
    // stream (rebuilt + fast-forwarded first if this snapshot came from
    // disk). Exhaustion below the budget is definitive — when the pruned
    // graph runs out before k_budget, the bound was infinite (Lemma 4.2)
    // and the pruned graph holds every s->t path there is.
    if (ensure_stream(snap, out, cancel)) {
      while (static_cast<int>(snap.paths.size()) < k) {
        auto p = snap.stream ? snap.stream->next(cancel) : std::nullopt;
        if (!p) {
          if (snap.stream && !snap.stream->exhausted()) {
            // Cancelled mid-extension: the stream stays live (a later
            // un-cancelled query resumes it) and this query answers
            // partially.
            fault::CancelPoll poll(cancel, /*stride=*/1);
            out.status.code = poll.should_stop() ? poll.why()
                                                 : fault::Status::kCancelled;
            break;
          }
          snap.exhausted = true;
          snap.stream.reset();
          break;
        }
        to_original_ids(*p, snap.map);
        snap.paths.push_back(std::move(*p));
        out.extended = true;
        PEEK_COUNT_INC("serve.stream_extensions");
      }
    }
  }
  const size_t take = std::min<size_t>(static_cast<size_t>(k),
                                       snap.paths.size());
  out.paths.assign(snap.paths.begin(), snap.paths.begin() + take);
  out.upper_bound = snap.upper_bound;
  return true;
}

bool QueryEngine::serve_degraded(vid_t s, vid_t t, int k, std::uint64_t gen,
                                 ServeResult& out) {
  if (!opts_.degraded_serving || !opts_.cache_snapshots) return false;
  auto snap = cache_.get_snapshot(s, t, gen);
  if (!snap) return false;
  check::MutexLock lock(snap->mu);
  // Already-materialized paths only — a shed query must not touch the graph.
  // An exhausted snapshot's paths are complete, so even an empty list is a
  // definitive (unreachable) answer then.
  if (snap->paths.empty() && !snap->exhausted) return false;
  const size_t take = std::min<size_t>(static_cast<size_t>(k),
                                       snap->paths.size());
  out.paths.assign(snap->paths.begin(), snap->paths.begin() + take);
  out.upper_bound = snap->upper_bound;
  out.snapshot_hit = true;
  out.degraded = true;
  PEEK_COUNT_INC("serve.degraded");
  return true;
}

ServeResult QueryEngine::query_cached_only(vid_t s, vid_t t, int k) {
  const auto t0 = std::chrono::steady_clock::now();
  ServeResult out;
  auto g = active_graph();
  if (k <= 0 || s < 0 || s >= g->num_vertices() || t < 0 ||
      t >= g->num_vertices()) {
    out.status = {fault::Status::kInvalidArgument,
                  "query requires 0 <= s,t < n and k > 0"};
    PEEK_COUNT_INC("serve.invalid_arguments");
  } else if (!serve_degraded(s, t, k, generation(), out)) {
    // Honors ServeOptions::degraded_serving: disabled means no cached-only
    // answers, same as the shed path.
    out.status = {fault::Status::kOverloaded,
                  "no cached answer for degraded-only query"};
  }
  out.seconds = seconds_since(t0);
  return out;
}

std::shared_ptr<PrunedSnapshot> QueryEngine::compute_snapshot(
    const graph::CsrGraph& g, vid_t s, vid_t t, int k_budget,
    std::uint64_t generation, ServeResult& out,
    const fault::CancelToken* cancel) {
  PEEK_TIMER_SCOPE("serve.compute");
  std::shared_ptr<const sssp::SsspResult> fwd, rev;
  if (opts_.cache_trees) {
    fwd = cache_.get_tree(ArtifactKind::kForwardTree, s, generation);
    rev = cache_.get_tree(ArtifactKind::kReverseTree, t, generation);
    // Corruption probes: a hit flagged corrupt is dropped on the floor and
    // recomputed — the fresh artifact overwrites the cache entry.
    if (fwd && PEEK_FAULT_FIRE("serve.tree.corrupt")) {
      fwd = nullptr;
      PEEK_COUNT_INC("serve.cache.corruption_drops");
    }
    if (rev && PEEK_FAULT_FIRE("serve.tree.corrupt")) {
      rev = nullptr;
      PEEK_COUNT_INC("serve.cache.corruption_drops");
    }
    if (fwd || rev) {
      // Warm-restart accounting: hits on trees that came from disk.
      check::MutexLock lock(restored_mu_);
      if (fwd && restored_trees_.count(
                     {static_cast<int>(ArtifactKind::kForwardTree), s}) > 0)
        PEEK_COUNT_INC("serve.cache.restore_hits");
      if (rev && restored_trees_.count(
                     {static_cast<int>(ArtifactKind::kReverseTree), t}) > 0)
        PEEK_COUNT_INC("serve.cache.restore_hits");
    }
  }
  out.fwd_tree_hit = fwd != nullptr;
  out.rev_tree_hit = rev != nullptr;

  core::PruneOptions po;
  po.k = k_budget;
  po.parallel = opts_.peek.parallel;
  po.delta = opts_.peek.delta;
  po.tight_edge_prune = opts_.peek.tight_edge_prune;
  po.reuse_from_source = fwd.get();
  po.reuse_to_target = rev.get();
  po.cancel = cancel;
  core::PruneResult pruned = core::k_upper_bound_prune(g, s, t, po);
  if (pruned.status != fault::Status::kOk) {
    out.status = {pruned.status, "prune aborted"};
    return nullptr;  // partial artifacts are never cached
  }

  if (opts_.cache_trees) {
    if (!fwd) {
      cache_.put_tree(ArtifactKind::kForwardTree, s,
                      std::make_shared<sssp::SsspResult>(pruned.from_source),
                      generation);
    }
    if (!rev && !pruned.to_target.dist.empty()) {
      cache_.put_tree(ArtifactKind::kReverseTree, t,
                      std::make_shared<sssp::SsspResult>(pruned.to_target),
                      generation);
    }
  }

  // The snapshot is private until put_snapshot publishes it, but its
  // mu-guarded fields are initialized under the lock anyway: the annotations
  // hold unconditionally, and an uncontended lock is nanoseconds against the
  // pipeline that just ran.
  auto snap = std::make_shared<PrunedSnapshot>();
  snap->s = s;
  snap->t = t;
  snap->k_budget = k_budget;
  snap->upper_bound = pruned.upper_bound;
  if (pruned.kept_vertices == 0) {
    check::MutexLock lock(snap->mu);
    snap->exhausted = true;  // t unreachable: a cached negative answer
    return snap;
  }

  auto regen = compact::regenerate(
      sssp::GraphView(g), pruned.vertex_keep.data(), pruned.edge_keep,
      {.parallel = opts_.peek.parallel, .cancel = cancel});
  if (regen.status != fault::Status::kOk) {
    out.status = {regen.status, "compaction aborted"};
    return nullptr;
  }
  const vid_t cs = regen.map.to_new(s), ct = regen.map.to_new(t);
  if (cs == kNoVertex || ct == kNoVertex) {  // defensive: s/t are kept
    check::MutexLock lock(snap->mu);
    snap->exhausted = true;
    return snap;
  }
  auto cg = std::make_shared<graph::CsrGraph>(std::move(regen.graph));
  cg->warm_reverse();  // the stream's reverse view, built once here

  // Recycle the pruning stage's reverse tree as the stream's warm-start
  // tree, translated into compacted ids. Sound: for every kept v, the
  // shortest v->t path survives pruning vertex-by-vertex and edge-by-edge
  // (for u on it, spSrc[u] + spTgt[u] <= spSrc[v] + spTgt[v] <= b by
  // subpath optimality, and each edge obeys both §4 edge rules), so the
  // tree is a valid — and distance-identical — reverse SP tree of the
  // compacted graph.
  const vid_t n_new = cg->num_vertices();
  sssp::SsspResult rtree;
  rtree.dist.assign(static_cast<size_t>(n_new), kInfDist);
  rtree.parent.assign(static_cast<size_t>(n_new), kNoVertex);
  for (vid_t v = 0; v < n_new; ++v) {
    const vid_t old = regen.map.to_old(v);
    rtree.dist[v] = pruned.to_target.dist[old];
    const vid_t par = pruned.to_target.parent[old];
    rtree.parent[v] = par == kNoVertex ? kNoVertex : regen.map.to_new(par);
  }

  snap->graph = cg;
  snap->map = std::move(regen.map);
  {
    check::MutexLock lock(snap->mu);
    snap->stream = std::make_unique<ksp::KspStream>(sssp::BiView::of(*cg), cs,
                                                    ct, std::move(rtree));
  }
  return snap;
}

ServeResult QueryEngine::query(vid_t s, vid_t t, int k,
                               const QueryOptions& qopts) {
  const auto t0 = std::chrono::steady_clock::now();
  ServeResult out;
  PEEK_COUNT_INC("serve.queries");
  PEEK_TIMER_SCOPE("serve.query");

  auto g = active_graph();
  const std::uint64_t gen = generation();
  if (k <= 0 || s < 0 || s >= g->num_vertices() || t < 0 ||
      t >= g->num_vertices()) {
    out.status = {fault::Status::kInvalidArgument,
                  "query requires 0 <= s,t < n and k > 0"};
    PEEK_COUNT_INC("serve.invalid_arguments");
    out.seconds = seconds_since(t0);
    return out;
  }

  // Per-query deadline (query's own, else the engine default), combined with
  // the caller's token: either trip cancels the whole pipeline mid-flight.
  fault::CancelToken deadline_token;
  const fault::CancelToken* cancel =
      qopts.cancel != nullptr && qopts.cancel->valid() ? qopts.cancel : nullptr;
  const auto budget =
      qopts.deadline.count() > 0 ? qopts.deadline : opts_.default_deadline;
  if (budget.count() > 0) {
    deadline_token = cancel != nullptr
                         ? fault::CancelToken::linked(*cancel, budget)
                         : fault::CancelToken::after(budget);
    cancel = &deadline_token;
  }

  // Admission control: bounded in-flight occupancy with load shedding. The
  // slot is RAII-released on every exit path below.
  struct Slot {
    std::atomic<int>* counter = nullptr;
    ~Slot() {
      if (counter) counter->fetch_sub(1, std::memory_order_acq_rel);
    }
  } slot;
  if (opts_.max_inflight > 0) {
    bool admitted = false;
    int cur = admitted_.load(std::memory_order_relaxed);
    while (cur < opts_.max_inflight) {
      if (admitted_.compare_exchange_weak(cur, cur + 1,
                                          std::memory_order_acq_rel)) {
        admitted = true;
        break;
      }
    }
    if (!admitted) {
      PEEK_COUNT_INC("serve.shed");
      if (!serve_degraded(s, t, k, gen, out)) {
        out.status = {fault::Status::kOverloaded,
                      "in-flight limit reached and no cached answer"};
      }
      out.seconds = seconds_since(t0);
      return out;
    }
    slot.counter = &admitted_;
  }

  if (cache_.byte_budget() == 0 ||
      (!opts_.cache_snapshots && !opts_.cache_trees)) {
    // Memory-pressure / cache-off degradation: plain uncached PeeK.
    core::PeekOptions po = opts_.peek;
    po.k = k;
    po.cancel = cancel;
    auto r = core::peek_ksp(*g, s, t, po);
    out.paths = std::move(r.ksp.paths);
    out.upper_bound = r.upper_bound;
    out.status.code = r.status;
    out.uncached = true;
    PEEK_COUNT_INC("serve.uncached_fallbacks");
    if (out.status.code == fault::Status::kDeadlineExceeded) {
      PEEK_COUNT_INC("serve.deadline_exceeded");
    }
    certify_result(*g, s, t, out);
    out.seconds = seconds_since(t0);
    return out;
  }

  const std::pair<vid_t, vid_t> key{s, t};
  for (;;) {
    if (opts_.cache_snapshots) {
      if (auto snap = cache_.get_snapshot(s, t, gen)) {
        if (PEEK_FAULT_FIRE("serve.snapshot.corrupt")) {
          // Corruption probe: drop the hit, recompute below; the fresh
          // snapshot replaces the doubted entry.
          PEEK_COUNT_INC("serve.cache.corruption_drops");
        } else if (serve_from_snapshot(*snap, k, out, cancel)) {
          out.snapshot_hit = true;
          PEEK_COUNT_INC("serve.snapshot_hits");
          break;
        }
        // Budget too small for this K: recompute below with a wider bound
        // (the new snapshot replaces the old entry).
      }
    }

    // Don't claim (or wait for) work with a tripped token.
    {
      fault::CancelPoll poll(cancel, /*stride=*/1);
      if (poll.should_stop()) {
        out.status.code = poll.why();
        break;
      }
    }

    // Coalesce with an identical in-flight computation, or claim ownership
    // of this (s, t).
    std::shared_ptr<Inflight> inf;
    bool owner = false;
    {
      check::MutexLock lock(inflight_mu_);
      auto it = inflight_.find(key);
      if (it != inflight_.end()) {
        inf = it->second;
      } else {
        inf = std::make_shared<Inflight>();
        inf->k_budget = budget_for(k);
        inflight_[key] = inf;
        owner = true;
      }
    }

    if (!owner) {
      bool published = false;
      // Copied out under the lock: the owner publishes snap and done
      // together, and reading snap after the scope would be an unlocked
      // access to guarded state.
      std::shared_ptr<PrunedSnapshot> published_snap;
      {
        check::UniqueLock lock(inf->mu);
        while (!inf->done) {
          if (cancel != nullptr) {
            fault::CancelPoll poll(cancel, /*stride=*/1);
            if (poll.should_stop()) {
              out.status.code = poll.why();
              break;
            }
            // Bounded waits so a tripped deadline (or parent cancel) is
            // noticed without the owner having to finish first.
            if (auto dl = cancel->deadline()) {
              inf->cv.wait_until(lock, *dl);
            } else {
              inf->cv.wait_for(lock, std::chrono::milliseconds(5));
            }
          } else {
            inf->cv.wait(lock);
          }
        }
        if (inf->done) {
          published = true;
          published_snap = inf->snap;
        }
      }
      if (!published) break;  // cancelled while coalesced; status already set
      out.coalesced = true;
      PEEK_COUNT_INC("serve.coalesced_waits");
      if (published_snap &&
          serve_from_snapshot(*published_snap, k, out, cancel))
        break;
      continue;  // owner failed / was cancelled, or its budget was too small
    }

    PEEK_COUNT_INC("serve.snapshot_misses");
    std::shared_ptr<PrunedSnapshot> snap;
    try {
      snap = compute_snapshot(*g, s, t, inf->k_budget, gen, out, cancel);
    } catch (const std::bad_alloc& e) {
      // Real or injected allocation failure outside the hardened kernels
      // (e.g. while copying a tree into the cache).
      out.status = {fault::Status::kResourceExhausted, e.what()};
    } catch (const std::exception& e) {
      out.status = {fault::Status::kInternal, e.what()};
    }
    if (snap) {
      serve_from_snapshot(*snap, k, out, cancel);
      if (opts_.cache_snapshots) {
        if (!cache_.put_snapshot(s, t, snap, gen)) out.uncached = true;
      }
    }
    // Publish (null on failure: waiters retry on their own token) and always
    // release the key — cancelled or not, no in-flight entry may leak.
    {
      check::MutexLock lock(inflight_mu_);
      inflight_.erase(key);
    }
    {
      check::MutexLock lock(inf->mu);
      inf->snap = snap;
      inf->done = true;
    }
    inf->cv.notify_all();
    break;
  }

  if (out.status.code == fault::Status::kDeadlineExceeded) {
    PEEK_COUNT_INC("serve.deadline_exceeded");
  }
  certify_result(*g, s, t, out);
  out.seconds = seconds_since(t0);
  return out;
}

void QueryEngine::certify_result(const graph::CsrGraph& g, vid_t s, vid_t t,
                                 ServeResult& out) {
  if (!opts_.certify || out.status.code != fault::Status::kOk ||
      out.degraded) {
    return;
  }
  PEEK_COUNT_INC("serve.certify.checks");
  check::CertifyOptions co;
  co.upper_bound = out.upper_bound;
  fault::Status cert = check::certify_paths(g, s, t, out.paths, co);
  if (!cert.ok()) {
    PEEK_COUNT_INC("serve.certify.failures");
    out.certificate_failed = true;
    out.status = {fault::Status::kInternal,
                  "answer failed certification: " + cert.message};
  }
}

void QueryEngine::restore_from_dir() {
  PEEK_TIMER_SCOPE("serve.warm_restart");
  auto g = active_graph();
  const std::uint64_t fp = recover::graph_fingerprint(*g);
  const std::uint64_t gen = generation();
  for (recover::LoadedFile& f : recovery_->scan()) {
    fault::Status st;
    if (f.snap.kind == recover::kSsspTree) {
      recover::TreeArtifact a;
      st = recover::decode_tree(f.snap, a);
      if (st.ok()) {
        // Fingerprint mismatch = a snapshot of some other graph (stale,
        // e.g. the graph was regenerated between runs). Not corruption:
        // skip it, leave the file for whoever owns it.
        if (a.fingerprint != fp ||
            a.tree.dist.size() != static_cast<size_t>(g->num_vertices()))
          continue;
        const ArtifactKind kind = a.reverse ? ArtifactKind::kReverseTree
                                            : ArtifactKind::kForwardTree;
        const vid_t root = a.root;
        if (cache_.put_tree(kind, root,
                            std::make_shared<sssp::SsspResult>(
                                std::move(a.tree)),
                            gen)) {
          check::MutexLock lock(restored_mu_);
          restored_trees_.insert({static_cast<int>(kind), root});
          ++restored_artifacts_;
        }
        continue;
      }
    } else if (f.snap.kind == recover::kPrunedSnapshot) {
      recover::PrunedSnapshotArtifact a;
      st = recover::decode_pruned_snapshot(f.snap, a);
      if (st.ok()) {
        if (a.fingerprint != fp || a.s >= g->num_vertices() ||
            a.t >= g->num_vertices())
          continue;
        if (a.reachable &&
            a.map.old_to_new.size() != static_cast<size_t>(g->num_vertices()))
          continue;
        auto snap = std::make_shared<PrunedSnapshot>();
        snap->s = a.s;
        snap->t = a.t;
        snap->k_budget = a.k_budget;
        snap->upper_bound = a.upper_bound;
        snap->restored = true;
        {
          // Private until put_snapshot publishes it; guarded fields are
          // still initialized under the (uncontended) lock so the
          // annotations hold unconditionally.
          check::MutexLock lock(snap->mu);
          snap->exhausted = a.exhausted;
          snap->paths = std::move(a.paths);
          if (a.reachable && a.has_rtree) {
            snap->restored_has_rtree = true;
            snap->restored_rtree = std::move(a.rtree);
          }
        }
        if (a.reachable) {
          snap->graph = std::make_shared<graph::CsrGraph>(std::move(a.graph));
          snap->map = std::move(a.map);
        }
        if (cache_.put_snapshot(snap->s, snap->t, snap, gen))
          ++restored_artifacts_;
        continue;
      }
    } else {
      // Unknown payload kind — possibly a newer writer or another
      // subsystem's file (e.g. a dist checkpoint). Not ours to judge.
      continue;
    }
    // Checksums passed but the decode rejected the contents: the writer was
    // broken or the corruption was crafted — quarantine with the typed why.
    // A failed quarantine (e.g. read-only dir) leaves the bad file in place;
    // it is counted and re-skipped on the next restart, never re-served.
    if (!recover::quarantine_file(f.path, st).ok()) {
      PEEK_COUNT_INC("recover.quarantine_failures");
    }
  }
}

int QueryEngine::persist() {
  if (!recovery_) return 0;
  PEEK_TIMER_SCOPE("serve.persist");
  if (!recovery_->ensure_dir().ok()) {
    // No directory, no files: every publish below would fail the same way.
    PEEK_COUNT_INC("recover.ensure_dir_failures");
    return 0;
  }
  auto g = active_graph();
  const std::uint64_t fp = recover::graph_fingerprint(*g);
  const std::uint64_t gen = generation();
  int written = 0;
  auto publish = [&](const std::string& name,
                     const std::vector<std::byte>& image) {
    const fault::Status st = recover::write_file_atomic(
        recovery_->path_for(name), image.data(), image.size());
    if (st.ok()) ++written;
  };
  // Snapshot the artifacts under the cache locks, encode + write after:
  // write_file_atomic fsyncs, and a shard lock held across an fsync would
  // stall every concurrent query hashing into that shard.
  std::vector<recover::TreeArtifact> trees;
  std::vector<recover::PrunedSnapshotArtifact> snaps;
  if (opts_.cache_trees) {
    cache_.for_each_tree([&](ArtifactKind kind, vid_t v,
                             const std::shared_ptr<const sssp::SsspResult>&
                                 tree,
                             std::uint64_t tgen) {
      if (tgen != gen) return;  // stale generation: useless after restart
      recover::TreeArtifact a;
      a.fingerprint = fp;
      a.root = v;
      a.reverse = kind == ArtifactKind::kReverseTree;
      a.tree = *tree;
      trees.push_back(std::move(a));
    });
  }
  if (opts_.cache_snapshots) {
    cache_.for_each_snapshot([&](vid_t, vid_t,
                                 const std::shared_ptr<PrunedSnapshot>& snap,
                                 std::uint64_t sgen) {
      if (sgen != gen) return;
      recover::PrunedSnapshotArtifact a;
      a.fingerprint = fp;
      {
        check::MutexLock lock(snap->mu);
        a.s = snap->s;
        a.t = snap->t;
        a.k_budget = snap->k_budget;
        a.upper_bound = snap->upper_bound;
        a.exhausted = snap->exhausted;
        a.reachable = snap->graph != nullptr;
        if (snap->graph) {
          a.graph = *snap->graph;
          a.map = snap->map;
          if (snap->stream && snap->stream->has_reverse_tree()) {
            a.has_rtree = true;
            a.rtree = snap->stream->reverse_tree();
          } else if (snap->restored_has_rtree) {
            // Restored but never extended: pass the persisted tree through
            // unchanged so the next restart keeps the exact tie-breaks.
            a.has_rtree = true;
            a.rtree = snap->restored_rtree;
          }
        }
        a.paths = snap->paths;
      }
      snaps.push_back(std::move(a));
    });
  }
  for (const recover::TreeArtifact& a : trees) {
    publish(std::string("tree_") + (a.reverse ? "r" : "f") + "_" +
                std::to_string(a.root) + ".snap",
            recover::encode_tree(a));
  }
  for (const recover::PrunedSnapshotArtifact& a : snaps) {
    publish("snap_" + std::to_string(a.s) + "_" + std::to_string(a.t) +
                ".snap",
            recover::encode_pruned_snapshot(a));
  }
  return written;
}

}  // namespace peek::serve
