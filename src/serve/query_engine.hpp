// Query-serving layer: concurrent (s, t, K) admission on top of core/peek,
// amortizing PeeK's per-query artifacts across queries via the ArtifactCache.
//
// Per query, in order of decreasing savings:
//   1. Snapshot hit  — a cached pruned-and-compacted (s, t) state answers
//      K <= its budget with zero graph work: K paths already produced is a
//      pure lookup; otherwise the snapshot's live KspStream (incremental
//      OptYen, ksp/stream.hpp) pulls just the missing paths.
//   2. Tree hit      — the §4.1 forward tree (keyed on s) and/or reverse tree
//      (keyed on t) skip one or both full-graph SSSPs inside pruning, which
//      dominate PeeK's runtime (§7: ~95% of end-to-end time at K = 8).
//   3. Coalescing    — duplicate in-flight (s, t) queries block on the first
//      computation instead of repeating it (the thundering-herd guard).
//   4. Full compute  — prune with an over-provisioned K budget (so nearby
//      future Ks stay lookups), regeneration-compact, stream the paths.
//
// Snapshots are always regeneration-compacted (§5.3): of the three §5
// strategies it is the only one that yields a self-owned subgraph, which a
// cache entry must be — the other two alias the query-time graph. Pruning
// with budget B is sound for every K <= B (Theorem 4.3 with the larger
// bound b_B >= b_K), so one cached K = 32 run serves K ∈ [1, 32] exactly.
//
// Mutability: a QueryEngine over a dyn::DynamicGraph re-snapshots the CSR
// and bumps the cache generation whenever the graph's structural version
// changed — stale artifacts then die lazily on their next lookup. With
// ServeOptions::live_mutations the engine instead runs the surgical
// live-mutation pipeline (DESIGN.md §15): batches arrive through
// apply_batch()/note_batch(), which compute each cached artifact's affected
// region (dyn/update_batch.hpp), keep provably-unaffected entries valid via
// per-artifact region stamps, queue cone repairs of affected SSSP trees on a
// background thread (dyn/repair.hpp), and park reweight-affected snapshots
// in a stale side table that serves bounded-staleness answers while the
// repair is in flight — every such answer carries ServeResult::staleness
// (epochs behind + a conservative per-rank weight error bound).
//
// Degradation: with a zero cache budget every query runs plain peek_ksp;
// artifacts larger than a cache shard are served but not retained.
//
// Scale-out: one engine is one process's worth of caches. shard::ShardFleet
// (DESIGN.md §12) replicates whole engines behind a consistent-hash router;
// query_cached_only below is the zero-graph-work probe its degraded
// fallback uses against surviving replicas.
#pragma once

#include <atomic>
#include <chrono>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "check/thread_safety.hpp"
#include "core/peek.hpp"
#include "dyn/dynamic_graph.hpp"
#include "dyn/repair.hpp"
#include "dyn/update_batch.hpp"
#include "fault/injector.hpp"
#include "recover/manager.hpp"
#include "serve/artifact_cache.hpp"

namespace peek::serve {

struct ServeOptions {
  /// Base pipeline configuration for cache misses. `k` and `compaction` are
  /// managed per query by the engine (see header comment); the other fields
  /// (parallel, delta, alpha, tight_edge_prune) apply as in core::peek_ksp.
  core::PeekOptions peek;
  ArtifactCache::Options cache;
  /// A miss for K prunes with max(K, k_budget_floor) rounded up to a power
  /// of two, so the snapshot serves larger follow-up Ks without re-pruning.
  int k_budget_floor = 32;
  bool cache_trees = true;
  bool cache_snapshots = true;
  /// Deadline applied to queries that do not pass their own (<=0 = none).
  /// A tripped deadline returns Status::kDeadlineExceeded with the best
  /// <=K paths accepted before the trip.
  std::chrono::milliseconds default_deadline{0};
  /// Admission control: at most this many queries inside query() at once
  /// (<=0 = unbounded). Queries beyond the bound are shed: answered from
  /// already-materialized cached paths in degraded mode when possible,
  /// otherwise rejected with Status::kOverloaded. Zero graph work either way.
  int max_inflight = 0;
  /// Allow shed queries to fall back to degraded cached answers (possibly
  /// fewer than K paths). Off = always Status::kOverloaded when shedding.
  bool degraded_serving = true;
  /// When set, the constructor installs this fault-injection configuration
  /// into fault::Injector::global() (tests/CI; see DESIGN.md §9).
  std::optional<fault::InjectorConfig> injector;
  /// Crash-safe persistence (DESIGN.md §10): when non-empty, persist()
  /// spills cached artifacts here as checksummed v2 snapshots, and the
  /// constructor warm-restarts from them (validate / quarantine / decode /
  /// re-insert) so the first queries hit restored artifacts instead of
  /// recomputing. Empty = no persistence.
  std::string snapshot_dir;
  /// Restore from snapshot_dir at construction. Off = write-only (persist()
  /// still works; existing snapshots are ignored, not deleted).
  bool warm_restart = true;
  /// Certify every non-degraded kOk answer against the CSR before returning
  /// it (check/certify.hpp: simple, edge-consistent, nondecreasing, within
  /// the prune bound — O(K·len)). A failed certificate turns the result
  /// into Status::kInternal with ServeResult::certificate_failed set; the
  /// sharded fleet treats that as replica corruption (DESIGN.md §14).
  bool certify = false;
  /// Surgical live-mutation mode (DESIGN.md §15), dynamic-graph engines
  /// only: mutations arrive exclusively through apply_batch()/note_batch()
  /// — which surgically invalidate affected artifacts, queue background
  /// cone repairs, and serve bounded-staleness answers meanwhile — instead
  /// of the legacy wholesale re-snapshot on every version change. In this
  /// mode the caller must not mutate the DynamicGraph behind the engine's
  /// back. Ignored for static graphs.
  bool live_mutations = false;
};

/// Per-query knobs of QueryEngine::query.
struct QueryOptions {
  /// This query's deadline (<=0 = ServeOptions::default_deadline).
  std::chrono::milliseconds deadline{0};
  /// Caller-owned cancellation handle, combined with the deadline. Must
  /// outlive the query() call. Null = deadline only.
  const fault::CancelToken* cancel = nullptr;
};

/// Bounded-staleness provenance of a served answer (DESIGN.md §15). A stale
/// answer is the exact top-K of the graph as of mutation epoch `epoch`,
/// served `epochs_behind` batches later because the post-mutation artifacts
/// were still being repaired. All intervening batches were reweight-only, so
/// path identities are unchanged and every true rank-i weight at the current
/// epoch is within `weight_bound` of the served rank-i weight (the sum of
/// |Δw| over the intervening batches — a per-path bound, hence a per-rank
/// one). Structurally-affected snapshots are never stale-served: they are
/// recomputed fresh against the post-mutation graph.
struct Staleness {
  bool stale = false;
  /// Mutation epoch the served paths are exact for. Live-mutation engines
  /// stamp this on every answer, stale or not (epochs_behind is 0 and the
  /// bound exact for fresh ones) — `epoch + epochs_behind` is the engine's
  /// mutation epoch at serve time, which the sharded fleet's epoch fencing
  /// compares against the fleet-wide fence (DESIGN.md §15).
  std::uint64_t epoch = 0;
  /// Engine mutation epoch at serve time minus `epoch`.
  std::uint64_t epochs_behind = 0;
  /// Two-sided per-rank weight error bound vs. epoch `epoch + epochs_behind`.
  weight_t weight_bound = 0;
};

/// One served query: the paths plus where the work was (not) spent.
struct ServeResult {
  std::vector<sssp::Path> paths;  // original ids, sorted (dist, then lex)
  weight_t upper_bound = kInfDist;  // pruning bound of the answering snapshot
  /// kOk, or the typed reason the query came back short: kInvalidArgument
  /// (bad s/t/k), kOverloaded (shed, no degraded answer), kDeadlineExceeded /
  /// kCancelled (partial: `paths` holds the exact top-J accepted in time),
  /// kResourceExhausted (allocation failure, real or injected), kInternal.
  fault::Status status;
  bool snapshot_hit = false;  // answered from a cached (s, t) snapshot
  bool extended = false;      // the snapshot's stream pulled extra paths
  bool coalesced = false;     // waited on an identical in-flight query
  bool fwd_tree_hit = false;  // pruning reused the cached forward tree
  bool rev_tree_hit = false;  // pruning reused the cached reverse tree
  bool uncached = false;      // served via plain PeeK (budget 0 / oversize)
  bool degraded = false;      // shed query answered from cached paths only
  /// ServeOptions::certify rejected the answer (status is kInternal): the
  /// paths failed the §14 certificate and must not be served.
  bool certificate_failed = false;
  /// Bounded-staleness provenance (live-mutation mode only; stale is false
  /// for every exact answer).
  Staleness staleness;
  double seconds = 0;         // wall time of this query() call
};

/// Thread-safe serving facade. The underlying graph must outlive the engine;
/// `query()` may be called concurrently from any number of threads.
class QueryEngine {
 public:
  explicit QueryEngine(const graph::CsrGraph& g, const ServeOptions& opts = {});
  /// Serve a dynamic graph. Legacy mode (live_mutations off): each query
  /// reconciles against dg.version() — an atomic with release/acquire
  /// ordering, so mutations may race queries freely — re-packing the CSR
  /// snapshot and invalidating the cache when the version moved. Live mode:
  /// see ServeOptions::live_mutations and apply_batch().
  explicit QueryEngine(const dyn::DynamicGraph& dg,
                       const ServeOptions& opts = {});
  /// Mutable-graph overload: additionally enables apply_batch() (the engine
  /// owns mutation ordering). Required for live_mutations' apply_batch
  /// entry point; note_batch() works with either constructor.
  explicit QueryEngine(dyn::DynamicGraph& dg, const ServeOptions& opts = {});
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// The K shortest simple paths from s to t (identical to
  /// core::peek_ksp(g, s, t, {.k = k, ...}).ksp.paths — see
  /// tests/test_serve.cpp for the bit-identity property). Never throws for
  /// admission, deadline, or injected-fault reasons: every such outcome is a
  /// typed ServeResult::status.
  ServeResult query(vid_t s, vid_t t, int k, const QueryOptions& qopts = {});

  /// Degraded-only lookup: answers from already-materialized cached paths
  /// with zero graph work (the shed-path logic, callable directly). Returns
  /// kOk with ServeResult::degraded set — possibly fewer than k paths, but
  /// always an exact prefix of the true answer — or kOverloaded when
  /// nothing usable is cached. The sharded serving tier uses this to probe
  /// surviving replicas' caches when a query's home shard is down.
  ServeResult query_cached_only(vid_t s, vid_t t, int k);

  /// Manual cache invalidation (e.g. out-of-band graph edits): bumps the
  /// generation so every cached artifact becomes stale, and unpins the
  /// coalescing map — stale in-flight owners are cancelled (via their
  /// per-entry abort token) and their waiters woken so both retry against
  /// the new generation instead of serving a pre-invalidation snapshot.
  void invalidate();

  // -- Live-mutation pipeline (DESIGN.md §15) --------------------------------

  /// Applies `batch` to the engine's mutable DynamicGraph (mutable-graph
  /// constructor required) and adopts it via note_batch(). Returns the
  /// applied record, epoch-stamped; a no-op record when the engine has no
  /// mutable graph.
  dyn::AppliedBatch apply_batch(const dyn::UpdateBatch& batch);

  /// Adopts an already-applied batch (fleet delivery path): swaps in the
  /// patched post-mutation CSR, sweeps the artifact cache — provably
  /// unaffected entries are restamped to the new epoch, affected trees
  /// become background cone-repair jobs, reweight-affected snapshots move
  /// to the bounded-staleness side table, structurally-affected snapshots
  /// are dropped — and wakes the repair thread. `batch.epoch` of 0 means
  /// "next local epoch"; nonzero adopts the caller's (fleet fence) epoch.
  /// `post`, when provided, is the post-mutation CSR to swap in — the fleet
  /// builds it once under its fence lock and fans it out, so replica engines
  /// never read the shared DynamicGraph concurrently with a later mutation.
  /// Null = derive locally from the current snapshot (standalone engines,
  /// where apply_batch serializes mutation and adoption under dyn_mu_).
  /// No-op outside live-mutation mode.
  void note_batch(const dyn::AppliedBatch& batch,
                  std::shared_ptr<const graph::CsrGraph> post = nullptr);

  /// Mutation epochs: batches adopted vs. batches whose repairs completed.
  /// repaired < mutation means a repair is in flight (stale serving window).
  std::uint64_t mutation_epoch() const {
    return mutation_epoch_.load(std::memory_order_acquire);
  }
  std::uint64_t repaired_epoch() const {
    return repaired_epoch_.load(std::memory_order_acquire);
  }

  /// Blocks until every queued repair completed (tests / orderly shutdown).
  void drain_repairs();

  /// Fleet healing hook: a freshly constructed replacement engine snapshots
  /// the current graph, so its content is already at fence epoch `epoch` —
  /// this aligns its counters without queueing repairs.
  void reset_epoch(std::uint64_t epoch);

  /// Bounded-staleness side-table occupancy (test hook).
  std::size_t stale_entries();

  /// Spills every current-generation cached artifact (SSSP trees, pruned
  /// snapshots) into ServeOptions::snapshot_dir as checksummed v2 snapshot
  /// files, each published atomically (tmp + fsync + rename). Artifacts from
  /// older generations are skipped — they would be stale on restore anyway.
  /// Returns the number of files written; write failures are counted in
  /// recover.write_failures and do not abort the sweep. No-op (returns 0)
  /// without a snapshot_dir.
  int persist();

  /// Files restored into the cache by the constructor's warm restart.
  int restored_artifacts() const { return restored_artifacts_; }

  std::uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }
  ArtifactCache& cache() { return cache_; }
  const ServeOptions& options() const { return opts_; }

  /// Coalescing-map entries currently claimed (test hook: must drain to zero
  /// once no query() is running, cancelled or not).
  size_t inflight_entries();
  /// Queries currently inside query() (admission-control occupancy).
  int admitted_now() const {
    return admitted_.load(std::memory_order_relaxed);
  }

 private:
  struct Inflight {
    check::Mutex mu;
    check::CondVar cv;
    bool done PEEK_GUARDED_BY(mu) = false;
    /// invalidate() happened while this entry was pinned: the owner's
    /// compute is doomed (its generation is stale), so waiters stop waiting
    /// and retry, and the owner retries instead of publishing.
    bool invalidated PEEK_GUARDED_BY(mu) = false;
    /// Written by the owner before the entry is published under
    /// inflight_mu_, immutable afterwards — hence not guarded by mu.
    int k_budget = 0;
    /// Owner's cancellation handle: a child of the owner's caller token (or
    /// standalone), so invalidate() can abort the stale compute without
    /// touching the caller's token. Set before publication, immutable after
    /// (cancel() is thread-safe on the handle).
    fault::CancelToken abort;
    /// Published result (null when the owner failed or was cancelled).
    std::shared_ptr<PrunedSnapshot> snap PEEK_GUARDED_BY(mu);
  };

  /// A snapshot displaced by a batch but admissible for bounded-stale
  /// serving: every batch since `epoch` was reweight-only for this pair.
  struct StaleEntry {
    std::shared_ptr<PrunedSnapshot> snap;
    std::uint64_t epoch = 0;     // the epoch the content is exact for
    weight_t bound = 0;          // cumulative per-rank weight error bound
  };

  /// Pending background repair work, coalesced across batches: a second
  /// batch landing before the repair runs min-composes each job's cone
  /// threshold (sound: cone thresholds against the same base tree compose
  /// by taking the minimum) and retargets the post graph/epoch.
  struct RepairTask {
    std::uint64_t epoch = 0;
    std::shared_ptr<const graph::CsrGraph> post;
    std::vector<dyn::RepairJob> jobs;
    /// Cache keys parallel to `jobs` (kind + root) for re-insertion.
    std::vector<std::pair<ArtifactKind, vid_t>> keys;
  };

  /// One adopted batch's impact summary, kept for bounding answers whose
  /// compute raced a batch (see query()'s epoch-race retry).
  struct BatchImpact {
    std::uint64_t epoch = 0;
    bool structural = false;
    weight_t bound = 0;  // sum of |Δw| over applied reweights
  };

  /// The CSR to serve this query from (re-snapshots a dynamic source).
  std::shared_ptr<const graph::CsrGraph> active_graph();
  /// Full pipeline on a miss; fills the tree-hit flags of `out`. Returns
  /// null with out.status set when the pipeline was cancelled or failed —
  /// such partial artifacts are never cached.
  std::shared_ptr<PrunedSnapshot> compute_snapshot(const graph::CsrGraph& g,
                                                   vid_t s, vid_t t,
                                                   int k_budget,
                                                   std::uint64_t generation,
                                                   std::uint64_t epoch0,
                                                   ServeResult& out,
                                                   const fault::CancelToken* cancel);
  /// Serves `k` paths out of `snap` (extending its stream if needed); false
  /// when the snapshot's budget is too small for `k` (caller recomputes).
  /// A tripped `cancel` returns true with the paths materialized so far and
  /// out.status set — the snapshot stays valid and un-exhausted.
  bool serve_from_snapshot(PrunedSnapshot& snap, int k, ServeResult& out,
                           const fault::CancelToken* cancel);
  /// Pre-extension stream check: rebuilds a restored snapshot's stream
  /// (warm-started from its persisted reverse tree when present) and
  /// fast-forwards it past the already-materialized paths so the next
  /// next() yields path |paths|+1. False when extension cannot proceed:
  /// snapshot exhausted, or `cancel` tripped mid-fast-forward (out.status
  /// set; a later query resumes where this one stopped).
  bool ensure_stream(PrunedSnapshot& snap, ServeResult& out,
                     const fault::CancelToken* cancel)
      PEEK_REQUIRES(snap.mu);
  /// Warm restart: scan + validate snapshot_dir, decode artifacts whose
  /// graph fingerprint matches, insert them into the cache. Quarantines
  /// files that pass checksums but fail semantic decode.
  void restore_from_dir();
  /// Shed-path degraded answer: cached already-produced paths only, no graph
  /// work. False when nothing usable is cached.
  bool serve_degraded(vid_t s, vid_t t, int k, std::uint64_t gen,
                      ServeResult& out);
  /// ServeOptions::certify hook: validates a non-degraded kOk answer
  /// against `g` and downgrades it to kInternal on a failed certificate
  /// (serve.certify.checks / serve.certify.failures).
  void certify_result(const graph::CsrGraph& g, vid_t s, vid_t t,
                      ServeResult& out);
  int budget_for(int k) const;

  /// Live-mutation mode is active (dynamic graph + opts_.live_mutations).
  bool live() const { return dyn_graph_ != nullptr && opts_.live_mutations; }
  /// Batch adoption body; stamps b.epoch when 0. See note_batch().
  void adopt_batch(dyn::AppliedBatch& b,
                   std::shared_ptr<const graph::CsrGraph> post)
      PEEK_REQUIRES(dyn_mu_);
  /// Background repair thread: pops coalesced RepairTasks, runs
  /// dyn::repair_trees, re-inserts repaired trees and advances
  /// repaired_epoch_ — unless the epoch moved meanwhile (results discarded)
  /// or the repair crashed (falls back to wholesale invalidation; a crash
  /// never leaves an unbounded-stale answer servable).
  void repair_loop();
  /// Epoch-guarded artifact publication: in live mode, an artifact computed
  /// at `epoch0` may enter the cache only while the epoch is still epoch0
  /// (checked and inserted under dyn_mu_, so no sweep interleaves). Returns
  /// false when the epoch moved — the caller's answer raced a batch.
  bool publish_tree(ArtifactKind kind, vid_t v,
                    const std::shared_ptr<const sssp::SsspResult>& tree,
                    std::uint64_t gen, std::uint64_t epoch0);
  /// Returns false only on an epoch race; a plain cache rejection (budget /
  /// oversize) sets out.uncached instead, matching put_snapshot's contract.
  bool publish_snapshot(vid_t s, vid_t t,
                        const std::shared_ptr<PrunedSnapshot>& snap,
                        std::uint64_t gen, std::uint64_t epoch0,
                        ServeResult& out);
  /// Staleness of an answer computed at `epoch0` and served now: false when
  /// any intervening batch was structural (the answer may be wrong in ways
  /// no weight bound covers — recompute instead).
  bool stale_bound_since(std::uint64_t epoch0, Staleness* out);

  const graph::CsrGraph* static_graph_ = nullptr;
  const dyn::DynamicGraph* dyn_graph_ = nullptr;
  dyn::DynamicGraph* mutable_dyn_ = nullptr;  // set by the mutable ctor
  check::Mutex dyn_mu_;
  std::shared_ptr<const graph::CsrGraph> dyn_snapshot_ PEEK_GUARDED_BY(dyn_mu_);
  std::uint64_t dyn_version_seen_ PEEK_GUARDED_BY(dyn_mu_) = 0;
  /// Recent batch impacts, newest last (bounded; feeds stale_bound_since).
  std::deque<BatchImpact> batch_history_ PEEK_GUARDED_BY(dyn_mu_);

  /// Epoch counters (live mode). mutation_epoch_ is stored inside
  /// note_batch's stale_mu_ section so a reader holding stale_mu_ sees a
  /// side table consistent with the epoch it reads.
  std::atomic<std::uint64_t> mutation_epoch_{0};
  std::atomic<std::uint64_t> repaired_epoch_{0};

  check::Mutex stale_mu_;
  std::map<std::pair<vid_t, vid_t>, StaleEntry> stale_snaps_
      PEEK_GUARDED_BY(stale_mu_);

  check::Mutex repair_mu_;
  check::CondVar repair_cv_;
  std::optional<RepairTask> repair_pending_ PEEK_GUARDED_BY(repair_mu_);
  bool repair_busy_ PEEK_GUARDED_BY(repair_mu_) = false;
  bool repair_stop_ PEEK_GUARDED_BY(repair_mu_) = false;
  std::thread repair_thread_;

  ServeOptions opts_;
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<int> admitted_{0};  // admission-control occupancy
  ArtifactCache cache_;

  /// Persistence state (set iff snapshot_dir is configured).
  std::optional<recover::RecoveryManager> recovery_;
  int restored_artifacts_ = 0;
  /// Tree-cache keys that came from disk, so hits on them can count
  /// serve.cache.restore_hits (snapshots carry a `restored` flag instead).
  check::Mutex restored_mu_;
  std::set<std::pair<int, vid_t>> restored_trees_ PEEK_GUARDED_BY(restored_mu_);

  check::Mutex inflight_mu_;
  std::map<std::pair<vid_t, vid_t>, std::shared_ptr<Inflight>> inflight_
      PEEK_GUARDED_BY(inflight_mu_);
};

}  // namespace peek::serve
