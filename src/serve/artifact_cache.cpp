#include "serve/artifact_cache.hpp"

#include "ksp/stream.hpp"
#include "obs/metrics.hpp"

namespace peek::serve {

namespace {

std::size_t next_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

std::size_t tree_bytes(const sssp::SsspResult& t) {
  return t.dist.capacity() * sizeof(weight_t) +
         t.parent.capacity() * sizeof(vid_t) + sizeof(sssp::SsspResult);
}

PrunedSnapshot::~PrunedSnapshot() = default;

std::size_t PrunedSnapshot::bytes() const {
  // `paths` grows under `mu` while other queries extend the stream; hold it
  // so concurrent re-accounting (a put racing an extension) reads a
  // consistent size.
  check::MutexLock lock(mu);
  std::size_t total = sizeof(PrunedSnapshot);
  if (graph) {
    // Forward CSR + the cached transpose the stream's reverse view uses.
    total += 2 * (graph->row_offsets().size() * sizeof(eid_t) +
                  graph->col().size() * sizeof(vid_t) +
                  graph->weights().size() * sizeof(weight_t));
  }
  total += map.old_to_new.capacity() * sizeof(vid_t) +
           map.new_to_old.capacity() * sizeof(vid_t);
  for (const auto& p : paths) total += p.verts.capacity() * sizeof(vid_t);
  return total;
}

ArtifactCache::ArtifactCache(const Options& opts) {
  const std::size_t n_shards =
      next_pow2(static_cast<std::size_t>(opts.shards < 1 ? 1 : opts.shards));
  shard_mask_ = n_shards - 1;
  budget_ = opts.byte_budget;
  shard_budget_ = budget_ / n_shards;
  shards_.reserve(n_shards);
  for (std::size_t i = 0; i < n_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::shared_ptr<void> ArtifactCache::get(const Key& k,
                                         std::uint64_t generation) {
  Shard& sh = shard_for(k);
  check::MutexLock lock(sh.mu);
  auto it = sh.index.find(k);
  if (it == sh.index.end()) {
    PEEK_COUNT_INC("serve.cache.misses");
    return nullptr;
  }
  if (it->second->generation != generation) {
    // Stale (graph changed since this artifact was computed): drop in place.
    sh.bytes -= it->second->bytes;
    sh.lru.erase(it->second);
    sh.index.erase(it);
    PEEK_COUNT_INC("serve.cache.stale_drops");
    PEEK_COUNT_INC("serve.cache.misses");
    return nullptr;
  }
  sh.lru.splice(sh.lru.begin(), sh.lru, it->second);  // touch
  PEEK_COUNT_INC("serve.cache.hits");
  return it->second->value;
}

bool ArtifactCache::put(const Key& k, std::shared_ptr<void> value,
                        std::size_t bytes, std::uint64_t generation,
                        std::uint64_t epoch) {
  if (bytes > shard_budget_) {
    // Bigger than a whole shard: caching it would immediately evict
    // everything else — serve it uncached instead (memory-pressure
    // degradation).
    PEEK_COUNT_INC("serve.cache.oversize_rejects");
    return false;
  }
  Shard& sh = shard_for(k);
  check::MutexLock lock(sh.mu);
  auto it = sh.index.find(k);
  if (it != sh.index.end()) {  // replace (e.g. re-pruned with a larger K)
    sh.bytes -= it->second->bytes;
    sh.lru.erase(it->second);
    sh.index.erase(it);
  }
  sh.lru.push_front(Entry{k, std::move(value), bytes, generation, epoch});
  sh.index[k] = sh.lru.begin();
  sh.bytes += bytes;
  while (sh.bytes > shard_budget_ && sh.lru.size() > 1) {
    const Entry& victim = sh.lru.back();
    sh.bytes -= victim.bytes;
    PEEK_COUNT_INC("serve.cache.evictions");
    PEEK_COUNT_ADD("serve.cache.evicted_bytes", victim.bytes);
    sh.index.erase(victim.key);
    sh.lru.pop_back();
  }
  return true;
}

std::shared_ptr<const sssp::SsspResult> ArtifactCache::get_tree(
    ArtifactKind kind, vid_t v, std::uint64_t generation) {
  auto p = get(Key{kind, v, kNoVertex}, generation);
  return std::static_pointer_cast<const sssp::SsspResult>(p);
}

bool ArtifactCache::put_tree(ArtifactKind kind, vid_t v,
                             std::shared_ptr<const sssp::SsspResult> tree,
                             std::uint64_t generation, std::uint64_t epoch) {
  const std::size_t b = tree_bytes(*tree);
  return put(Key{kind, v, kNoVertex},
             std::const_pointer_cast<sssp::SsspResult>(std::move(tree)), b,
             generation, epoch);
}

std::shared_ptr<PrunedSnapshot> ArtifactCache::get_snapshot(
    vid_t s, vid_t t, std::uint64_t generation) {
  auto p = get(Key{ArtifactKind::kSnapshot, s, t}, generation);
  return std::static_pointer_cast<PrunedSnapshot>(p);
}

bool ArtifactCache::put_snapshot(vid_t s, vid_t t,
                                 std::shared_ptr<PrunedSnapshot> snap,
                                 std::uint64_t generation,
                                 std::uint64_t epoch) {
  const std::size_t b = snap->bytes();
  return put(Key{ArtifactKind::kSnapshot, s, t}, std::move(snap), b,
             generation, epoch);
}

ArtifactCache::SweepStats ArtifactCache::sweep(
    std::uint64_t new_epoch,
    const std::function<bool(ArtifactKind, vid_t, vid_t, std::uint64_t)>&
        keep) {
  SweepStats stats;
  for (auto& shp : shards_) {
    Shard& sh = *shp;
    check::MutexLock lock(sh.mu);
    for (auto it = sh.lru.begin(); it != sh.lru.end();) {
      if (keep(it->key.kind, it->key.a, it->key.b, it->epoch)) {
        it->epoch = new_epoch;
        ++stats.kept;
        ++it;
      } else {
        sh.bytes -= it->bytes;
        sh.index.erase(it->key);
        it = sh.lru.erase(it);
        ++stats.erased;
      }
    }
  }
  PEEK_COUNT_ADD("serve.cache.region_drops", stats.erased);
  PEEK_COUNT_ADD("serve.cache.restamps", stats.kept);
  return stats;
}

std::optional<std::uint64_t> ArtifactCache::epoch_of(ArtifactKind kind,
                                                     vid_t a, vid_t b) const {
  const Key k{kind, a, b};
  const Shard& sh = *shards_[KeyHash{}(k) & shard_mask_];
  check::MutexLock lock(sh.mu);
  auto it = sh.index.find(k);
  if (it == sh.index.end()) return std::nullopt;
  return it->second->epoch;
}

void ArtifactCache::clear() {
  for (auto& sh : shards_) {
    check::MutexLock lock(sh->mu);
    sh->lru.clear();
    sh->index.clear();
    sh->bytes = 0;
  }
}

void ArtifactCache::for_each_tree(
    const std::function<void(ArtifactKind, vid_t,
                             const std::shared_ptr<const sssp::SsspResult>&,
                             std::uint64_t)>& fn) const {
  for (const auto& sh : shards_) {
    check::MutexLock lock(sh->mu);
    for (const auto& e : sh->lru) {
      if (e.key.kind == ArtifactKind::kSnapshot) continue;
      fn(e.key.kind, e.key.a,
         std::static_pointer_cast<const sssp::SsspResult>(e.value),
         e.generation);
    }
  }
}

void ArtifactCache::for_each_snapshot(
    const std::function<void(vid_t, vid_t,
                             const std::shared_ptr<PrunedSnapshot>&,
                             std::uint64_t)>& fn) const {
  for (const auto& sh : shards_) {
    check::MutexLock lock(sh->mu);
    for (const auto& e : sh->lru) {
      if (e.key.kind != ArtifactKind::kSnapshot) continue;
      fn(e.key.a, e.key.b, std::static_pointer_cast<PrunedSnapshot>(e.value),
         e.generation);
    }
  }
}

CacheStats ArtifactCache::stats() const {
  CacheStats s;
  for (const auto& sh : shards_) {
    check::MutexLock lock(sh->mu);
    s.bytes_used += sh->bytes;
    s.entries += sh->lru.size();
  }
  if constexpr (obs::kEnabled) {
    auto& reg = obs::MetricsRegistry::global();
    s.hits = reg.counter("serve.cache.hits").value();
    s.misses = reg.counter("serve.cache.misses").value();
    s.evictions = reg.counter("serve.cache.evictions").value();
    s.stale_drops = reg.counter("serve.cache.stale_drops").value();
    s.oversize_rejects = reg.counter("serve.cache.oversize_rejects").value();
    reg.gauge("serve.cache.bytes").set(static_cast<double>(s.bytes_used));
    reg.gauge("serve.cache.entries").set(static_cast<double>(s.entries));
  }
  return s;
}

}  // namespace peek::serve
