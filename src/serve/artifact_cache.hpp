// Cross-query artifact cache — the memory of the serving layer (serve/).
//
// PeeK's per-query work decomposes into artifacts that outlive the query that
// produced them: the forward SSSP tree depends only on the source, the
// reverse SSSP tree only on the target (§4.1), and the pruned-and-compacted
// subgraph only on the (source, target) pair — for every K up to the budget
// it was pruned with (Theorem 4.3: pruning with bound b_K keeps every one of
// the top-K paths, and b_K grows with K). A serving workload with repeated
// sources, targets or pairs can therefore skip one SSSP, both SSSPs, or the
// whole pipeline.
//
// The cache is a sharded, byte-budgeted LRU over those three key spaces.
// Shards are independent mutex-guarded LRU lists selected by key hash, so
// concurrent queries for different keys rarely contend; each shard evicts
// from its own tail whenever its slice of the byte budget overflows. Entries
// carry the graph generation they were computed against; a lookup under a
// newer generation is a miss and erases the stale entry in place (lazy
// invalidation — a generation bump is O(1), not O(entries)).
//
// Hit/miss/eviction counters are reported into the global obs
// MetricsRegistry under `serve.cache.*`.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "check/thread_safety.hpp"
#include "compact/regeneration.hpp"
#include "graph/csr.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/path.hpp"

namespace peek::ksp {
class KspStream;  // ksp/stream.hpp
}

namespace peek::serve {

/// What kind of artifact a cache entry holds; part of the key, so the three
/// key spaces share one budget without colliding.
enum class ArtifactKind : std::uint8_t {
  kForwardTree,  // keyed on source
  kReverseTree,  // keyed on target
  kSnapshot,     // keyed on (source, target)
};

/// A pruned-and-compacted (s, t) pipeline state, reusable for any K up to
/// `k_budget`. Holds the regenerated subgraph (owned, so it survives
/// eviction of everything else), the id translation back to the original
/// graph, and the live KspStream that extends the answer incrementally —
/// asking for K paths when `paths` already holds K' >= K is a pure lookup;
/// K' < K <= k_budget pulls K - K' more paths from the stream.
struct PrunedSnapshot {
  /// Compacted subgraph in regenerated (dense) ids; null when the target was
  /// unreachable (a cached negative answer).
  std::shared_ptr<const graph::CsrGraph> graph;
  compact::VertexMap map;  // regenerated id <-> original id
  weight_t upper_bound = kInfDist;
  int k_budget = 0;  // pruning is sound up to this many paths
  vid_t s = kNoVertex, t = kNoVertex;  // original ids (for diagnostics)

  /// Serving state below is guarded by `mu` (the LRU shard lock is NOT held
  /// while a stream extension runs). Mutable so the const bytes() accounting
  /// can take it too.
  mutable check::Mutex mu;
  /// Null once exhausted/dropped.
  std::unique_ptr<ksp::KspStream> stream PEEK_GUARDED_BY(mu);
  /// Original ids, sorted, grows monotonically.
  std::vector<sssp::Path> paths PEEK_GUARDED_BY(mu);
  bool exhausted PEEK_GUARDED_BY(mu) = false;  // < k_budget paths exist

  /// Warm-restart provenance (recover/): this snapshot was decoded from disk
  /// rather than computed. Its stream is rebuilt lazily on the first
  /// extension past `paths` — from `restored_rtree` when the original stream
  /// had a reverse tree, so the rebuilt stream deviates with identical
  /// tie-breaks (see QueryEngine::ensure_stream). Both restored_* fields are
  /// consumed by that rebuild. `restored` itself is written once at decode
  /// time, before the snapshot is published to the cache.
  bool restored = false;
  bool restored_has_rtree PEEK_GUARDED_BY(mu) = false;
  sssp::SsspResult restored_rtree PEEK_GUARDED_BY(mu);

  ~PrunedSnapshot();  // out of line: KspStream is incomplete here

  /// Approximate resident size (graph arrays + map + paths).
  std::size_t bytes() const;
};

/// Point-in-time cache counters (process-lifetime, also mirrored into the
/// obs registry as `serve.cache.*`).
struct CacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t evictions = 0;
  std::int64_t stale_drops = 0;      // generation-mismatch lookups
  std::int64_t oversize_rejects = 0; // artifacts bigger than a whole shard
  std::size_t bytes_used = 0;
  std::size_t entries = 0;
};

class ArtifactCache {
 public:
  struct Options {
    /// Total byte budget across all shards. 0 disables the cache entirely
    /// (every lookup misses, every insert is rejected) — the serving layer's
    /// "no memory" degradation mode.
    std::size_t byte_budget = std::size_t{256} << 20;
    /// Number of independent LRU shards (rounded up to a power of two).
    int shards = 8;
  };

  explicit ArtifactCache(const Options& opts);
  ArtifactCache() : ArtifactCache(Options{}) {}

  /// Cached SSSP tree for `kind` in {kForwardTree, kReverseTree} keyed on
  /// the source/target vertex. Null on miss or generation mismatch.
  std::shared_ptr<const sssp::SsspResult> get_tree(ArtifactKind kind, vid_t v,
                                                   std::uint64_t generation);
  /// Returns false when the artifact was rejected (budget 0 or bigger than a
  /// whole shard) — the caller served it, but nobody else will reuse it.
  bool put_tree(ArtifactKind kind, vid_t v,
                std::shared_ptr<const sssp::SsspResult> tree,
                std::uint64_t generation, std::uint64_t epoch = 0);

  /// Cached pipeline snapshot for the (s, t) pair. The returned pointer
  /// stays valid (shared ownership) even if the entry is evicted while the
  /// caller extends its stream.
  std::shared_ptr<PrunedSnapshot> get_snapshot(vid_t s, vid_t t,
                                               std::uint64_t generation);
  bool put_snapshot(vid_t s, vid_t t, std::shared_ptr<PrunedSnapshot> snap,
                    std::uint64_t generation, std::uint64_t epoch = 0);

  /// Drops every entry (eager invalidation; generation bumps make this
  /// optional).
  void clear();

  /// Surgical invalidation (dyn update pipeline, DESIGN.md §15): visits
  /// every resident entry and asks `keep(kind, a, b, epoch)` whether it
  /// survived the mutation. Keepers are restamped to `new_epoch` (their
  /// region stamp — the mutation epoch they are provably valid for); the
  /// rest are erased in place. After a sweep the cache holds only entries
  /// valid at `new_epoch`, so lookups need no epoch comparison — the
  /// generation tag stays reserved for wholesale invalidation. The shard
  /// lock is held across each callback — callbacks must not call back into
  /// the cache. Emits serve.cache.region_drops / serve.cache.restamps.
  struct SweepStats {
    std::size_t kept = 0;
    std::size_t erased = 0;
  };
  SweepStats sweep(std::uint64_t new_epoch,
                   const std::function<bool(ArtifactKind, vid_t, vid_t,
                                            std::uint64_t)>& keep);

  /// Region stamp of a resident entry (tests/diagnostics); empty key miss
  /// returns no value. Does not touch LRU order.
  std::optional<std::uint64_t> epoch_of(ArtifactKind kind, vid_t a,
                                        vid_t b) const;

  /// Snapshot-persistence iteration (recover/): visits every resident tree /
  /// snapshot entry with its key and generation, LRU order within a shard.
  /// The shard lock is held across each callback — callbacks must not call
  /// back into the cache.
  void for_each_tree(
      const std::function<void(ArtifactKind, vid_t,
                               const std::shared_ptr<const sssp::SsspResult>&,
                               std::uint64_t)>& fn) const;
  void for_each_snapshot(
      const std::function<void(vid_t, vid_t,
                               const std::shared_ptr<PrunedSnapshot>&,
                               std::uint64_t)>& fn) const;

  CacheStats stats() const;
  std::size_t byte_budget() const { return budget_; }

 private:
  struct Key {
    ArtifactKind kind;
    vid_t a;
    vid_t b;
    bool operator==(const Key& o) const {
      return kind == o.kind && a == o.a && b == o.b;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      // splitmix64 over the packed key — cheap and shard-friendly.
      std::uint64_t x = (static_cast<std::uint64_t>(k.a) << 34) ^
                        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                             k.b))
                         << 2) ^
                        static_cast<std::uint64_t>(k.kind);
      x += 0x9e3779b97f4a7c15ull;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      return static_cast<std::size_t>(x ^ (x >> 31));
    }
  };
  struct Entry {
    Key key;
    std::shared_ptr<void> value;
    std::size_t bytes = 0;
    std::uint64_t generation = 0;
    /// Region stamp: the mutation epoch this artifact is valid for
    /// (restamped by sweep(); 0 until the first batch lands).
    std::uint64_t epoch = 0;
  };
  struct Shard {
    mutable check::Mutex mu;
    /// Front = most recent.
    std::list<Entry> lru PEEK_GUARDED_BY(mu);
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index
        PEEK_GUARDED_BY(mu);
    std::size_t bytes PEEK_GUARDED_BY(mu) = 0;
  };

  Shard& shard_for(const Key& k) {
    return *shards_[KeyHash{}(k) & shard_mask_];
  }
  std::shared_ptr<void> get(const Key& k, std::uint64_t generation);
  bool put(const Key& k, std::shared_ptr<void> value, std::size_t bytes,
           std::uint64_t generation, std::uint64_t epoch);

  std::size_t budget_ = 0;
  std::size_t shard_budget_ = 0;
  std::size_t shard_mask_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Approximate resident bytes of an SSSP tree (dist + parent arrays).
std::size_t tree_bytes(const sssp::SsspResult& t);

}  // namespace peek::serve
