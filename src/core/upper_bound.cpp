#include "core/upper_bound.hpp"

#include <atomic>
#include <memory>
#include <unordered_set>

#include "fault/injector.hpp"
#include "obs/metrics.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/sort.hpp"
#include "sssp/delta_stepping.hpp"
#include "sssp/dijkstra.hpp"

namespace peek::core {

namespace {

PruneResult prune_impl(const CsrGraph& g, vid_t s, vid_t t,
                       const PruneOptions& opts) {
  PruneResult r;
  const vid_t n = g.num_vertices();
  r.vertex_keep.assign(static_cast<size_t>(n), 0);
  PEEK_COUNT_INC("prune.runs");

  // Step 1: shortest distances from the source and to the target. Either
  // tree may arrive precomputed from the serving layer's artifact cache.
  {
    PEEK_TIMER_SCOPE("prune.sssp");
    PEEK_FAULT_ALLOC("prune.sssp.alloc");
    sssp::DeltaSteppingOptions ds;
    ds.delta = opts.delta;
    ds.cancel = opts.cancel;
    sssp::DijkstraOptions dj;
    dj.cancel = opts.cancel;
    if (opts.reuse_from_source) {
      r.from_source = *opts.reuse_from_source;
      PEEK_COUNT_INC("prune.reused_trees");
    } else if (opts.parallel) {
      r.from_source = sssp::delta_stepping(sssp::GraphView(g), s, ds);
    } else {
      r.from_source = sssp::dijkstra(sssp::GraphView(g), s, dj);
    }
    if (r.from_source.status != fault::Status::kOk) {
      r.status = r.from_source.status;
      return r;
    }
    if (opts.reuse_to_target) {
      r.to_target = *opts.reuse_to_target;
      PEEK_COUNT_INC("prune.reused_trees");
    } else if (opts.parallel) {
      r.to_target = sssp::reverse_delta_stepping(g, t, ds);
    } else {
      r.to_target = sssp::reverse_dijkstra(g, t, dj);
    }
    if (r.to_target.status != fault::Status::kOk) {
      r.status = r.to_target.status;
      return r;
    }
  }

  if (r.to_target.dist[s] == kInfDist) {
    // t unreachable: no path at all; prune everything.
    PEEK_COUNT_INC("prune.unreachable_queries");
    r.upper_bound = kInfDist;
    r.edge_keep = nullptr;
    return r;
  }

  // Step 2: distance sums (data parallel, Algorithm 2 lines 3-4).
  std::vector<weight_t> dist(static_cast<size_t>(n));
  auto sum_body = [&](vid_t v) {
    const weight_t a = r.from_source.dist[v];
    const weight_t b = r.to_target.dist[v];
    dist[v] = (a == kInfDist || b == kInfDist) ? kInfDist : a + b;
  };
  if (opts.parallel) par::parallel_for(vid_t{0}, n, sum_body);
  else for (vid_t v = 0; v < n; ++v) sum_body(v);

  // Step 3: identify b — walk vertices in increasing dist order, keep the
  // K-th valid, distinct combined path (lines 5-9). kInfDist sorts last.
  weight_t b = kInfDist;
  {
    PEEK_TIMER_SCOPE("prune.scan");
    PEEK_FAULT_STALL("prune.scan.stall");
    fault::CancelPoll poll(opts.cancel);
    const std::vector<vid_t> order = par::sort_permutation(dist);
    std::unordered_set<sssp::Path, sssp::PathHash> distinct;
    int valid = 0;
    std::int64_t non_simple = 0, duplicates = 0;
    for (vid_t v : order) {
      if (dist[v] == kInfDist) break;  // only unreachable remain
      if (poll.should_stop()) {
        r.status = poll.why();
        return r;
      }
      r.inspected_paths++;
      if (!sssp::combined_path_is_simple(r.from_source, r.to_target, s, v, t)) {
        non_simple++;
        continue;
      }
      sssp::Path p = sssp::combined_path(r.from_source, r.to_target, s, v, t);
      if (p.empty() || !distinct.insert(std::move(p)).second) {
        duplicates++;
        continue;
      }
      valid++;
      if (valid == opts.k) {
        b = dist[v];
        break;
      }
    }
    PEEK_COUNT_ADD("prune.inspected_paths", r.inspected_paths);
    PEEK_COUNT_ADD("prune.valid_paths", valid);
    PEEK_COUNT_ADD("prune.non_simple_paths", non_simple);
    PEEK_COUNT_ADD("prune.duplicate_paths", duplicates);
  }
  r.upper_bound = b;

  // Step 4: prune (lines 10-13). Unreachable vertices (dist == inf) always
  // go; with fewer than K estimated paths (b == inf) nothing else can.
  // Keep-side relative epsilon: vertices on the K-th path itself can sum
  // spSrc[v] + spTgt[v] an ulp above b, because that sum associates
  // differently than the walk that produced b — without slack the K-th path
  // loses a vertex and the result silently degrades to the (K+1)-th.
  // Under-pruning is sound (Theorem 4.3 bounds what may be deleted, not what
  // must be); this mirrors the tight-edge rule's slack below.
  const weight_t keep_slack = b == kInfDist ? 0 : b * 1e-12 + 1e-12;
  {
    PEEK_TIMER_SCOPE("prune.mark");
    std::atomic<vid_t> kept{0};
    auto keep_body = [&](vid_t v) {
      if (dist[v] != kInfDist && dist[v] <= b + keep_slack) {
        r.vertex_keep[v] = 1;
        kept.fetch_add(1, std::memory_order_relaxed);
      }
    };
    if (opts.parallel) par::parallel_for(vid_t{0}, n, keep_body);
    else for (vid_t v = 0; v < n; ++v) keep_body(v);
    r.kept_vertices = kept.load();
  }
  PEEK_COUNT_ADD("prune.kept_vertices", r.kept_vertices);
  PEEK_COUNT_ADD("prune.pruned_vertices", n - r.kept_vertices);
  if (n > 0) {
    PEEK_GAUGE_SET("prune.kept_vertex_ratio",
                   static_cast<double>(r.kept_vertices) / n);
  }

  if (b == kInfDist) {
    r.edge_keep = nullptr;  // keep all edges between kept vertices
  } else if (opts.tight_edge_prune) {
    auto src = std::make_shared<std::vector<weight_t>>(r.from_source.dist);
    auto tgt = std::make_shared<std::vector<weight_t>>(r.to_target.dist);
    // The K-th path's own edges can land an ulp above b because spSrc + w +
    // spTgt sums in a different order than the path walk that produced b;
    // a relative epsilon on the KEEP side is sound (it can only under-prune).
    const weight_t slack = b * 1e-12 + 1e-12;
    r.edge_keep = [src, tgt, b, slack](vid_t u, vid_t v, weight_t w) {
      if (w > b) return false;
      const weight_t a = (*src)[u], c = (*tgt)[v];
      return a != kInfDist && c != kInfDist && a + w + c <= b + slack;
    };
  } else {
    r.edge_keep = [b](vid_t, vid_t, weight_t w) { return w <= b; };
  }
  return r;
}

}  // namespace

PruneResult k_upper_bound_prune(const CsrGraph& g, vid_t s, vid_t t,
                                const PruneOptions& opts) {
  try {
    return prune_impl(g, s, t, opts);
  } catch (const std::bad_alloc&) {
    // Real or injected (fault::InjectedFault) allocation failure: surface as
    // a typed status instead of crashing the serving thread.
    PruneResult r;
    r.status = fault::Status::kResourceExhausted;
    return r;
  }
}

}  // namespace peek::core
