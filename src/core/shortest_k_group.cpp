#include "core/shortest_k_group.hpp"

#include <algorithm>

namespace peek::core {

namespace {

/// Splits distance-sorted paths into equal-distance groups.
std::vector<PathGroup> group_paths(const std::vector<sssp::Path>& paths) {
  std::vector<PathGroup> groups;
  for (const auto& p : paths) {
    if (groups.empty() || groups.back().dist != p.dist) {
      groups.push_back({p.dist, {}});
    }
    groups.back().paths.push_back(p);
  }
  return groups;
}

}  // namespace

KGroupResult shortest_k_groups(const graph::CsrGraph& g, vid_t s, vid_t t,
                               int k_groups, const PeekOptions& opts) {
  KGroupResult result;
  if (k_groups <= 0) {
    result.complete = true;
    return result;
  }
  PeekOptions my = opts;
  int k = std::max(8, 2 * k_groups);
  // Grow K until more than k_groups distinct distances are seen (the k-th
  // group is then closed) or the path space is exhausted.
  constexpr int kMaxK = 1 << 16;
  while (true) {  // no-cancel: body propagates the inner peek_ksp status
    my.k = k;
    PeekResult pr = peek_ksp(g, s, t, my);
    result.ksp_paths_computed = static_cast<int>(pr.ksp.paths.size());
    auto groups = group_paths(pr.ksp.paths);
    if (pr.status != fault::Status::kOk) {
      // Cancelled / deadline-tripped mid-run: the short path list is a
      // truncation, not exhaustion — never report such groups complete.
      if (static_cast<int>(groups.size()) > k_groups)
        groups.resize(static_cast<size_t>(k_groups));
      result.groups = std::move(groups);
      result.complete = false;
      result.status = pr.status;
      return result;
    }
    const bool exhausted =
        static_cast<int>(pr.ksp.paths.size()) < k;  // no more simple paths
    if (static_cast<int>(groups.size()) > k_groups) {
      groups.resize(static_cast<size_t>(k_groups));  // k-th group is closed
      result.groups = std::move(groups);
      result.complete = true;
      return result;
    }
    if (exhausted) {
      if (static_cast<int>(groups.size()) > k_groups)
        groups.resize(static_cast<size_t>(k_groups));
      result.groups = std::move(groups);
      result.complete = true;
      return result;
    }
    if (k >= kMaxK) {
      // Give up growing; the last group may be incomplete.
      result.groups = std::move(groups);
      result.complete = false;
      return result;
    }
    k *= 2;
  }
}

}  // namespace peek::core
