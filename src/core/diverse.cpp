#include "core/diverse.hpp"

#include <unordered_set>

#include "compact/regeneration.hpp"
#include "ksp/stream.hpp"

namespace peek::core {

double path_similarity(const sssp::Path& a, const sssp::Path& b) {
  std::unordered_set<vid_t> sa(a.verts.begin(), a.verts.end());
  size_t inter = 0;
  std::unordered_set<vid_t> sb;
  for (vid_t v : b.verts) {
    if (sb.insert(v).second && sa.count(v)) inter++;
  }
  const size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

DiverseResult diverse_ksp(const graph::CsrGraph& g, vid_t s, vid_t t,
                          const DiverseOptions& opts) {
  DiverseResult result;
  if (opts.k <= 0) return result;

  // Prune with the scan budget as K: Theorem 4.3 then guarantees the
  // compacted graph holds every rank the stream may visit.
  PruneOptions po;
  po.k = std::max(opts.max_scanned, opts.k);
  po.parallel = opts.parallel;
  PruneResult pruned = k_upper_bound_prune(g, s, t, po);
  if (pruned.kept_vertices == 0) {
    result.exhausted = true;
    return result;
  }
  auto regen = compact::regenerate(sssp::GraphView(g),
                                   pruned.vertex_keep.data(), pruned.edge_keep,
                                   {.parallel = opts.parallel});
  const vid_t cs = regen.map.to_new(s), ct = regen.map.to_new(t);
  if (cs == kNoVertex || ct == kNoVertex) {
    result.exhausted = true;
    return result;
  }

  ksp::KspStream stream(regen.graph, cs, ct);
  while (static_cast<int>(result.paths.size()) < opts.k &&
         result.scanned < opts.max_scanned) {
    auto p = stream.next();
    if (!p) {
      result.exhausted = true;
      break;
    }
    result.scanned++;
    for (auto& v : p->verts) v = regen.map.to_old(v);
    bool diverse = true;
    for (const auto& kept : result.paths) {
      if (path_similarity(*p, kept) > opts.max_similarity) {
        diverse = false;
        break;
      }
    }
    if (diverse) result.paths.push_back(std::move(*p));
  }
  return result;
}

}  // namespace peek::core
