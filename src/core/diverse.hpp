// K diverse shortest paths — the biology-application variant the paper's
// introduction cites (Lhota & Xie 2016: "K diverse shortest paths" for
// protein-fold recognition). Plain KSP output is often K near-copies of one
// corridor; diverse KSP greedily keeps the next shortest path whose vertex
// set overlaps every kept path by at most `max_similarity` (Jaccard).
//
// Implementation composes the library's pieces: K-upper-bound prune with a
// scan budget, compact, then LAZILY stream ranked paths (ksp::KspStream)
// over the compacted graph, filtering as they come — so the expensive deep
// ranks are only generated while diversity is still unmet.
#pragma once

#include "core/upper_bound.hpp"
#include "ksp/path_set.hpp"

namespace peek::core {

struct DiverseOptions {
  int k = 4;                   // diverse paths wanted
  double max_similarity = 0.5; // pairwise Jaccard ceiling (vertex sets)
  /// Ranked-path scan budget: how deep the underlying KSP stream may go
  /// while hunting for diversity (also the pruning K, so the compacted
  /// graph provably contains all scanned ranks).
  int max_scanned = 256;
  bool parallel = false;
};

struct DiverseResult {
  std::vector<sssp::Path> paths;  // <= k, mutually diverse, shortest-first
  int scanned = 0;                // ranked paths examined
  bool exhausted = false;         // stream ran dry before the budget
};

/// Jaccard similarity of two paths' vertex sets (helper, exposed for tests).
double path_similarity(const sssp::Path& a, const sssp::Path& b);

DiverseResult diverse_ksp(const graph::CsrGraph& g, vid_t s, vid_t t,
                          const DiverseOptions& opts = {});

}  // namespace peek::core
