// K upper bound pruning (§4, Algorithm 2) — PeeK's central contribution.
//
// Two SSSPs give, for every vertex v, the tightest possible distance of an
// s->t path through v: dist[v] = spSrc[v] + spTgt[v] (Lemma 4.1). Scanning
// vertices in increasing dist order and keeping only loop-free, distinct
// combined paths, the K-th such distance is a sound upper bound b on the
// K-th shortest path (Lemma 4.2): every vertex with dist[v] > b — and every
// edge heavier than b — can be deleted without changing the result
// (Theorem 4.3).
#pragma once

#include "compact/edge_swap.hpp"
#include "fault/cancel.hpp"
#include "fault/status.hpp"
#include "sssp/path.hpp"

namespace peek::core {

using graph::CsrGraph;

struct PruneOptions {
  int k = 8;
  /// Data-parallel pruning (§6.1): Δ-stepping SSSPs, parallel sort, parallel
  /// distance-sum.
  bool parallel = false;
  weight_t delta = 0;  // Δ-stepping bucket width (<=0 auto)
  /// Extension beyond the paper's Algorithm 2 line 13 (`w(e) > b`): also
  /// prune edge (u,v) when spSrc[u] + w + spTgt[v] > b, which is sound by
  /// the same Lemma 4.1 argument and strictly stronger.
  bool tight_edge_prune = false;
  /// Precomputed SSSP trees to reuse (the serving layer's cross-query
  /// artifact cache, serve/artifact_cache.hpp): the forward tree depends only
  /// on s and the reverse tree only on t, so a query that shares either end
  /// with an earlier one can skip that SSSP. When non-null, Step 1 copies the
  /// tree instead of recomputing it. The tree must have been computed on this
  /// exact graph from this s / to this t.
  const sssp::SsspResult* reuse_from_source = nullptr;
  const sssp::SsspResult* reuse_to_target = nullptr;
  /// Cooperative cancellation: threaded into both SSSPs and polled in the
  /// Step 3 scan. A cancelled prune returns early with `status` set and no
  /// usable keep mask. Null = never cancelled.
  const fault::CancelToken* cancel = nullptr;
};

struct PruneResult {
  /// Byte per vertex: survives the pruning?
  std::vector<std::uint8_t> vertex_keep;
  /// The K upper bound b (kInfDist if fewer than K estimated paths exist —
  /// then only unreachable vertices are pruned).
  weight_t upper_bound = kInfDist;
  /// Position-independent edge filter capturing b (and, when tight pruning
  /// is on, the two distance arrays); feed to any compaction strategy.
  compact::EdgeKeep edge_keep;
  /// spSrc / spTgt with parents — reusable downstream.
  sssp::SsspResult from_source;
  sssp::SsspResult to_target;
  vid_t kept_vertices = 0;
  /// Paths inspected while identifying b: K valid ones + λ invalid/duplicate.
  int inspected_paths = 0;
  /// kOk, or why the prune stopped early (cancellation, deadline, injected
  /// allocation failure). Non-kOk results carry no usable keep mask.
  fault::Status::Code status = fault::Status::kOk;
};

PruneResult k_upper_bound_prune(const CsrGraph& g, vid_t s, vid_t t,
                                const PruneOptions& opts = {});

}  // namespace peek::core
