// Batched KSP: answer many (source, target) queries over one graph — the
// shape of every real deployment (and of the paper's own evaluation, which
// averages 32 random pairs per graph). Shares the reverse CSR across queries
// and optionally task-parallelizes across them (each query then runs its
// pipeline serially, the classic throughput-oriented layout).
#pragma once

#include <span>

#include "core/peek.hpp"

namespace peek::core {

struct BatchQuery {
  vid_t s;
  vid_t t;
};

struct BatchOptions {
  PeekOptions per_query;
  /// Run queries concurrently (outer parallelism). When set, the per-query
  /// pipelines are forced serial so threads are not oversubscribed.
  bool parallel_queries = false;
};

struct BatchResult {
  std::vector<PeekResult> results;  // index-aligned with the queries
  double wall_seconds = 0;
};

BatchResult peek_ksp_batch(const graph::CsrGraph& g,
                           std::span<const BatchQuery> queries,
                           const BatchOptions& opts = {});

}  // namespace peek::core
