// SHORTEST k GROUP — the second KSP flavour standardised by GQL and
// SQL/PGQ (§1, "Graph database"): paths are grouped by equal distance and the
// k shortest GROUPS are returned, each group complete. Built on top of the
// PeeK pipeline by growing K until the k-th group is provably closed.
#pragma once

#include "core/peek.hpp"

namespace peek::core {

struct PathGroup {
  weight_t dist = kInfDist;
  std::vector<sssp::Path> paths;  // every simple path of exactly this length
};

struct KGroupResult {
  std::vector<PathGroup> groups;  // at most k, ascending by dist
  /// True when every returned group is complete (the (k+1)-th distance was
  /// observed, or the path space was exhausted). Never true when `status`
  /// is not kOk: a cancelled underlying KSP run yields a short path list,
  /// which must not be mistaken for path-space exhaustion.
  bool complete = false;
  int ksp_paths_computed = 0;
  /// How the underlying PeeK runs ended (kCancelled / kDeadlineExceeded
  /// propagate out of opts.cancel).
  fault::Status::Code status = fault::Status::kOk;
};

/// The k shortest path groups from s to t. `opts.k` is ignored (managed
/// internally); other PeekOptions apply.
KGroupResult shortest_k_groups(const graph::CsrGraph& g, vid_t s, vid_t t,
                               int k_groups, const PeekOptions& opts = {});

}  // namespace peek::core
