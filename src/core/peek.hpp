// PeeK — the end-to-end prune-centric KSP pipeline (§3):
//   1. K upper bound pruning        (core/upper_bound)
//   2. adaptive graph compaction    (compact/)
//   3. KSP on the compacted graph   (OptYen-style: static reverse tree, no
//                                    vertex colors — ksp/optyen)
// Results are always reported in ORIGINAL vertex ids, whatever compaction
// strategy ran. Per-stage wall times are returned for the benches.
#pragma once

#include <optional>

#include "compact/adaptive.hpp"
#include "core/upper_bound.hpp"
#include "ksp/optyen.hpp"
#include "obs/metrics.hpp"

namespace peek::core {

struct PeekOptions {
  int k = 8;
  /// Parallel PeeK (§6): data-parallel pruning, embarrassingly parallel
  /// compaction, task-parallel KSP.
  bool parallel = false;
  weight_t delta = 0;  // Δ-stepping bucket width (<=0 auto)

  /// Compaction policy.
  enum class Compaction {
    kAdaptive,      // §5.4 rule (alpha)
    kEdgeSwap,      // always edge-swap
    kRegeneration,  // always regenerate
    kStatusArray,   // baseline: mark-only ("Base + Pruning" in Figure 8)
  };
  Compaction compaction = Compaction::kAdaptive;
  double alpha = 0.5;  // §5.4 trade-off coefficient

  /// Ablation switch: skip pruning entirely (the Figure 8 "Base" — plain
  /// OptYen on the original graph).
  bool prune = true;
  bool tight_edge_prune = false;  // see PruneOptions

  /// Attach a MetricsSnapshot of the global registry to the result. Off by
  /// default: the snapshot copies every registered metric under a mutex,
  /// which batch-mode hot paths should not pay per query.
  bool collect_metrics = false;

  /// Cooperative cancellation, threaded through every stage (SSSPs, the
  /// prune scan, compaction passes, KSP rounds). Null = never cancelled.
  const fault::CancelToken* cancel = nullptr;
};

struct PeekResult {
  ksp::KspResult ksp;          // paths in original vertex ids
  weight_t upper_bound = kInfDist;
  vid_t kept_vertices = 0;
  eid_t kept_edges = 0;
  compact::Strategy strategy_used = compact::Strategy::kStatusArray;
  double prune_seconds = 0;
  double compact_seconds = 0;
  double ksp_seconds = 0;
  /// Cumulative registry snapshot taken as this run finished (counters cover
  /// the whole process, not just this query). Populated only when
  /// PeekOptions::collect_metrics is set; empty in PEEK_OBS=OFF builds.
  std::optional<obs::MetricsSnapshot> metrics;
  /// kOk, or why the pipeline stopped early. The well-defined partial result:
  /// on kCancelled/kDeadlineExceeded `ksp.paths` holds the exact top-J (J<=K)
  /// shortest paths accepted before the trip — possibly none if an earlier
  /// stage was cut short; on kResourceExhausted the stage that failed to
  /// allocate produced nothing.
  fault::Status::Code status = fault::Status::kOk;

  double total_seconds() const {
    return prune_seconds + compact_seconds + ksp_seconds;
  }
};

/// The K shortest simple paths from s to t via the PeeK pipeline.
PeekResult peek_ksp(const graph::CsrGraph& g, vid_t s, vid_t t,
                    const PeekOptions& opts = {});

/// PeeK-as-preprocessor (§1.3 novelty iii): run any KSP algorithm on the
/// pruned-and-compacted graph. `algo` receives the compacted BiView and the
/// translated (s, t); returned paths are translated back to original ids.
using KspAlgorithm =
    std::function<ksp::KspResult(const sssp::BiView&, vid_t, vid_t)>;
PeekResult peek_with_algorithm(const graph::CsrGraph& g, vid_t s, vid_t t,
                               const PeekOptions& opts,
                               const KspAlgorithm& algo);

}  // namespace peek::core
