#include "core/batch.hpp"

#include <chrono>

#include "obs/metrics.hpp"
#include "parallel/parallel_for.hpp"

namespace peek::core {

BatchResult peek_ksp_batch(const graph::CsrGraph& g,
                           std::span<const BatchQuery> queries,
                           const BatchOptions& opts) {
  BatchResult out;
  out.results.resize(queries.size());
  const auto t0 = std::chrono::steady_clock::now();

  // One transpose shared by every query (peek_ksp would otherwise race to
  // build it lazily — warm it up front).
  g.warm_reverse();

  PeekOptions per = opts.per_query;
  if (opts.parallel_queries) per.parallel = false;  // outer owns the threads

  auto run_one = [&](size_t i) {
    out.results[i] = peek_ksp(g, queries[i].s, queries[i].t, per);
  };
  {
    PEEK_TIMER_SCOPE("batch.wall");
    if (opts.parallel_queries) {
      PEEK_COUNT_INC("batch.parallel_rounds");
      par::parallel_for_dynamic(size_t{0}, queries.size(), run_one, 1);
    } else {
      for (size_t i = 0; i < queries.size(); ++i) run_one(i);
    }
  }
  PEEK_COUNT_ADD("batch.queries", queries.size());
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

}  // namespace peek::core
