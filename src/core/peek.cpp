#include "core/peek.hpp"

#include <chrono>

#include "compact/status_array.hpp"
#include "obs/metrics.hpp"

namespace peek::core {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// Translates every path of `r` through new->old ids (in place).
void translate_paths(ksp::KspResult& r, const compact::VertexMap& map) {
  for (auto& p : r.paths) {
    for (auto& v : p.verts) v = map.to_old(v);
  }
}

}  // namespace

PeekResult peek_with_algorithm(const graph::CsrGraph& g, vid_t s, vid_t t,
                               const PeekOptions& opts,
                               const KspAlgorithm& algo) {
  using Clock = std::chrono::steady_clock;
  PeekResult result;
  const eid_t m_original = g.num_edges();

  // Invoked on every exit path: mirrors the per-stage wall times and kept
  // ratios into the registry and (on request) attaches the snapshot.
  auto finalize = [&]() {
    if constexpr (obs::kEnabled) {
      auto& reg = obs::MetricsRegistry::global();
      reg.counter("peek.runs").inc();
      auto to_ns = [](double s2) {
        return static_cast<std::int64_t>(s2 * 1e9);
      };
      reg.timer("peek.prune").add_nanos(to_ns(result.prune_seconds));
      reg.timer("peek.compact").add_nanos(to_ns(result.compact_seconds));
      reg.timer("peek.ksp").add_nanos(to_ns(result.ksp_seconds));
      if (g.num_vertices() > 0) {
        reg.gauge("peek.kept_vertex_ratio")
            .set(static_cast<double>(result.kept_vertices) / g.num_vertices());
      }
      if (m_original > 0) {
        reg.gauge("peek.kept_edge_ratio")
            .set(static_cast<double>(result.kept_edges) /
                 static_cast<double>(m_original));
      }
    }
    if (opts.collect_metrics) {
      result.metrics = obs::MetricsRegistry::global().snapshot();
    }
  };

  // Why a cancelled stage stopped (kCancelled vs kDeadlineExceeded); the
  // stages themselves report only that they stopped.
  fault::CancelPoll poll(opts.cancel, /*stride=*/1);

  if (!opts.prune) {
    // Ablation "Base": the downstream algorithm on the untouched graph.
    const auto t0 = Clock::now();
    result.ksp = algo(sssp::BiView::of(g), s, t);
    result.ksp_seconds = seconds_since(t0);
    result.status = result.ksp.status;
    result.kept_vertices = g.num_vertices();
    result.kept_edges = m_original;
    finalize();
    return result;
  }

  // Stage 1: K upper bound pruning.
  const auto t0 = Clock::now();
  PruneOptions po;
  po.k = opts.k;
  po.parallel = opts.parallel;
  po.delta = opts.delta;
  po.tight_edge_prune = opts.tight_edge_prune;
  po.cancel = opts.cancel;
  PruneResult pruned = k_upper_bound_prune(g, s, t, po);
  result.prune_seconds = seconds_since(t0);
  result.upper_bound = pruned.upper_bound;
  result.kept_vertices = pruned.kept_vertices;
  if (pruned.status != fault::Status::kOk) {
    result.status = pruned.status;
    finalize();
    return result;
  }
  if (pruned.kept_vertices == 0) {  // t unreachable
    finalize();
    return result;
  }

  // Stage 2: compaction.
  const auto t1 = Clock::now();
  const std::uint8_t* keep = pruned.vertex_keep.data();
  const auto& edge_keep = pruned.edge_keep;

  auto run_ksp = [&](const sssp::BiView& view, vid_t cs, vid_t ct,
                     const compact::VertexMap* map) {
    const auto t2 = Clock::now();
    ksp::KspResult r = algo(view, cs, ct);
    result.ksp_seconds = seconds_since(t2);
    if (map) translate_paths(r, *map);
    result.status = r.status;
    result.ksp = std::move(r);
  };

  // Compaction aborted mid-flight: classify the trip and bail with no paths.
  auto abort_compact = [&](fault::Status::Code code) {
    result.compact_seconds = seconds_since(t1);
    result.status = code;
    finalize();
  };

  switch (opts.compaction) {
    case PeekOptions::Compaction::kStatusArray: {
      compact::StatusArrayGraph sa(g);
      result.kept_edges = sa.apply(keep, edge_keep, opts.parallel);
      result.strategy_used = compact::Strategy::kStatusArray;
      result.compact_seconds = seconds_since(t1);
      run_ksp(sa.biview(), s, t, nullptr);
      break;
    }
    case PeekOptions::Compaction::kEdgeSwap: {
      compact::MutableCsr mc(g);
      const eid_t kept_edges = compact::edge_swap_compact(
          mc, keep, edge_keep, {.parallel = opts.parallel, .cancel = opts.cancel});
      result.strategy_used = compact::Strategy::kEdgeSwap;
      if (kept_edges == compact::kEdgeSwapCancelled) {
        abort_compact(poll.should_stop() ? poll.why()
                                         : fault::Status::kCancelled);
        return result;
      }
      result.kept_edges = kept_edges;
      result.compact_seconds = seconds_since(t1);
      run_ksp(mc.biview(), s, t, nullptr);
      break;
    }
    case PeekOptions::Compaction::kRegeneration: {
      auto regen = compact::regenerate(
          sssp::GraphView(g), keep, edge_keep,
          {.parallel = opts.parallel, .cancel = opts.cancel});
      result.strategy_used = compact::Strategy::kRegeneration;
      if (regen.status != fault::Status::kOk) {
        abort_compact(regen.status);
        return result;
      }
      result.kept_edges = regen.graph.num_edges();
      result.compact_seconds = seconds_since(t1);
      const vid_t cs = regen.map.to_new(s), ct = regen.map.to_new(t);
      if (cs == kNoVertex || ct == kNoVertex) break;
      run_ksp(sssp::BiView::of(regen.graph), cs, ct, &regen.map);
      break;
    }
    case PeekOptions::Compaction::kAdaptive: {
      const eid_t m_r = compact::count_remaining_edges(
          sssp::GraphView(g), keep, edge_keep, opts.parallel);
      result.kept_edges = m_r;
      const compact::Strategy strat =
          compact::choose_strategy(m_r, m_original, opts.alpha);
      result.strategy_used = strat;
      if (strat == compact::Strategy::kRegeneration) {
        auto regen = compact::regenerate(
            sssp::GraphView(g), keep, edge_keep,
            {.parallel = opts.parallel, .cancel = opts.cancel});
        if (regen.status != fault::Status::kOk) {
          abort_compact(regen.status);
          return result;
        }
        result.compact_seconds = seconds_since(t1);
        const vid_t cs = regen.map.to_new(s), ct = regen.map.to_new(t);
        if (cs == kNoVertex || ct == kNoVertex) break;
        run_ksp(sssp::BiView::of(regen.graph), cs, ct, &regen.map);
      } else {
        compact::MutableCsr mc(g);
        const eid_t kept_edges = compact::edge_swap_compact(
            mc, keep, edge_keep,
            {.parallel = opts.parallel, .cancel = opts.cancel});
        if (kept_edges == compact::kEdgeSwapCancelled) {
          abort_compact(poll.should_stop() ? poll.why()
                                           : fault::Status::kCancelled);
          return result;
        }
        result.compact_seconds = seconds_since(t1);
        run_ksp(mc.biview(), s, t, nullptr);
      }
      break;
    }
  }
  finalize();
  return result;
}

PeekResult peek_ksp(const graph::CsrGraph& g, vid_t s, vid_t t,
                    const PeekOptions& opts) {
  ksp::KspOptions ko;
  ko.k = opts.k;
  ko.parallel = opts.parallel;
  ko.delta = opts.delta;
  ko.cancel = opts.cancel;
  return peek_with_algorithm(
      g, s, t, opts, [&ko](const sssp::BiView& view, vid_t s2, vid_t t2) {
        return ksp::optyen_ksp(view, s2, t2, ko);
      });
}

}  // namespace peek::core
