#include "ksp/optyen.hpp"

#include <atomic>

#include "ksp/yen_engine.hpp"
#include "obs/metrics.hpp"
#include "sssp/delta_stepping.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/scratch.hpp"

namespace peek::ksp {

using detail::DeviationContext;

namespace detail {

/// Tree-shortcut attempt shared by OptYen and the distributed KSP stage: the
/// cheapest allowed out-edge (v,w) plus the static reverse-tree path w->t is
/// a LOWER BOUND on the restricted suffix; when that very path is feasible
/// (simple w.r.t. the prefix), the bound is attained, so it is the optimal
/// suffix and no SSSP is needed. Empty when the shortcut does not apply.
sssp::Path optyen_tree_shortcut(const sssp::GraphView& fwd,
                                const sssp::SsspResult& rtree, vid_t t,
                                const DeviationContext& ctx) {
  const vid_t v = ctx.deviation_vertex;
  // argmin over allowed out-edges of w(e) + rtree.dist[target].
  eid_t best_e = kNoEdge;
  weight_t best = kInfDist;
  for (eid_t e = fwd.edge_begin(v); e < fwd.edge_end(v); ++e) {
    if (!fwd.edge_alive(e) || ctx.banned_edges.count(e)) continue;
    const vid_t w = fwd.edge_target(e);
    if (!fwd.vertex_alive(w) || ctx.banned_vertices[w] || w == v) continue;
    if (rtree.dist[w] == kInfDist) continue;
    const weight_t bound = fwd.edge_weight(e) + rtree.dist[w];
    if (bound < best) {
      best = bound;
      best_e = e;
    }
  }
  if (best_e == kNoEdge) return {};
  // Feasibility: the tree path from the argmin next-hop must avoid the
  // prefix (banned vertices and v itself).
  const vid_t w0 = fwd.edge_target(best_e);
  for (vid_t u = w0; u != kNoVertex; u = rtree.parent[u]) {
    if (u == v || ctx.banned_vertices[u]) return {};
    if (u == t) break;
  }
  sssp::Path suffix;
  suffix.verts.push_back(v);
  for (vid_t u = w0; u != kNoVertex; u = rtree.parent[u]) {
    suffix.verts.push_back(u);
    if (u == t) break;
  }
  if (suffix.verts.back() != t) return {};
  suffix.dist = best;
  return suffix;
}

}  // namespace detail

namespace {
constexpr auto tree_shortcut = detail::optyen_tree_shortcut;
}  // namespace

KspResult optyen_ksp(const BiView& g, vid_t s, vid_t t, const KspOptions& opts) {
  std::atomic<int> sssp_calls{0};
  std::atomic<int> shortcuts{0};

  // The single static reverse shortest-path tree (computed in parallel when
  // requested — it is a plain SSSP on the reverse view).
  sssp::SsspResult rtree;
  {
    PEEK_TIMER_SCOPE("ksp.reverse_tree");
    if (opts.parallel) {
      sssp::DeltaSteppingOptions ds;
      ds.delta = opts.delta;
      ds.cancel = opts.cancel;
      rtree = sssp::delta_stepping(g.rev, t, ds);
    } else {
      sssp::DijkstraOptions dj;
      dj.cancel = opts.cancel;
      rtree = sssp::dijkstra(g.rev, t, dj);
    }
  }
  sssp_calls.fetch_add(1);
  if (rtree.status != fault::Status::kOk) {
    // A partial reverse tree overestimates distances, which would poison both
    // the shortcut bound and its feasibility walk — stop before any path.
    KspResult result;
    result.status = rtree.status;
    result.stats.sssp_calls = 1;
    return result;
  }

  // One arena-backed SSSP scratch per worker: the serial Dijkstra fallback
  // reuses dist/parent across candidates instead of allocating per call.
  std::vector<sssp::SsspScratch> scratch(detail::solver_workers(opts));

  detail::DeviationSolver solver = [&](const DeviationContext& ctx) {
    sssp::Path fast = tree_shortcut(g.fwd, rtree, t, ctx);
    if (!fast.empty()) {
      shortcuts.fetch_add(1, std::memory_order_relaxed);
      return fast;
    }
    sssp_calls.fetch_add(1, std::memory_order_relaxed);
    sssp::Bans bans{ctx.banned_vertices, &ctx.banned_edges};
    if (opts.parallel) {
      sssp::DeltaSteppingOptions ds;
      ds.target = t;
      ds.bans = bans;
      ds.delta = opts.delta;
      ds.parallel = ctx.position == 0 && ctx.prefix.size() == 1;
      ds.cancel = opts.cancel;
      auto r = sssp::delta_stepping(g.fwd, ctx.deviation_vertex, ds);
      // A cancelled SSSP may hold an overestimating (non-shortest) suffix;
      // discard it — the engine notices the tripped token at the round edge.
      if (r.status != fault::Status::kOk) return sssp::Path{};
      return sssp::path_from_parents(r, ctx.deviation_vertex, t);
    }
    sssp::DijkstraOptions dj;
    dj.target = t;
    dj.bans = bans;
    dj.cancel = opts.cancel;
    if (opts.scratch_arena) {
      fault::Status::Code st = fault::Status::kOk;
      sssp::Path suffix = sssp::dijkstra_path(
          g.fwd, ctx.deviation_vertex, dj, scratch[detail::worker_slot(opts)],
          &st);
      if (st != fault::Status::kOk) return sssp::Path{};
      return suffix;
    }
    auto r = sssp::dijkstra(g.fwd, ctx.deviation_vertex, dj);
    if (r.status != fault::Status::kOk) return sssp::Path{};
    return sssp::path_from_parents(r, ctx.deviation_vertex, t);
  };

  KspResult result = detail::run_yen_engine(g.fwd, s, t, opts, solver);
  detail::count_arena_reuse(scratch);
  result.stats.sssp_calls = sssp_calls.load();
  result.stats.tree_shortcuts = shortcuts.load();
  PEEK_COUNT_ADD("ksp.deviation_sssp_calls", result.stats.sssp_calls);
  PEEK_COUNT_ADD("ksp.tree_shortcuts", result.stats.tree_shortcuts);
  return result;
}

KspResult optyen_ksp(const graph::CsrGraph& g, vid_t s, vid_t t,
                     const KspOptions& opts) {
  return optyen_ksp(BiView::of(g), s, t, opts);
}

}  // namespace peek::ksp
