// Lazy KSP enumeration: paths are produced one at a time, shortest first,
// with no K fixed up front. This is the natural interface for consumers that
// scan candidates until one satisfies an external predicate — e.g. the
// routing-and-spectrum-assignment loop of §1 ("iteratively checks the
// availability of the paths in increasing order") — and stops paying for
// deviations the moment it stops asking.
//
// Internally an incremental OptYen: a static reverse shortest-path tree
// answers deviations when its path avoids the prefix; otherwise a restricted
// Dijkstra runs. Calling next() K times costs the same as optyen_ksp with
// that K (plus nothing for paths never requested).
#pragma once

#include <optional>

#include "ksp/path_set.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/view.hpp"

namespace peek::ksp {

class KspStream {
 public:
  /// The BiView must outlive the stream. Prefer the CsrGraph overload unless
  /// streaming over a compacted view.
  KspStream(const sssp::BiView& g, vid_t s, vid_t t);
  KspStream(const graph::CsrGraph& g, vid_t s, vid_t t);

  /// Warm-start: adopt a precomputed reverse shortest-path tree from t
  /// (dist[v] = shortest v->t distance, parent[v] = v's successor toward t)
  /// instead of running the priming SSSP on the first next() call. The
  /// serving layer (serve/query_engine) uses this to recycle the pruning
  /// stage's to-target tree, translated into compacted ids.
  KspStream(const sssp::BiView& g, vid_t s, vid_t t, sssp::SsspResult rtree);

  /// The next shortest simple path, or nullopt when the path space is
  /// exhausted — or when `cancel` tripped mid-deviation. The i-th successful
  /// call returns the i-th shortest path. A cancelled call leaves the stream
  /// valid and NOT exhausted (check exhausted() to tell the cases apart): any
  /// partially-expanded round is simply re-run by the next un-cancelled call,
  /// with the candidate pool deduplicating repeated pushes.
  std::optional<sssp::Path> next(const fault::CancelToken* cancel = nullptr);

  /// True when the path space is genuinely dry (nullopt from next() without
  /// a tripped token). Never set by cancellation.
  bool exhausted() const { return exhausted_; }

  /// Paths produced so far.
  const std::vector<sssp::Path>& produced() const { return produced_; }
  const KspStats& stats() const { return stats_; }

  /// The reverse shortest-path tree deviations are answered from, for
  /// persistence (recover/): a restored stream warm-started with this exact
  /// tree replays byte-identical tie-breaks. Valid only when
  /// has_reverse_tree() — i.e. after warm-start construction or the first
  /// successful next().
  const sssp::SsspResult& reverse_tree() const { return rtree_; }
  bool has_reverse_tree() const { return have_rtree_ || primed_; }

 private:
  /// Returns false when `cancel` tripped before the round finished — some
  /// deviations may be missing, so the caller must not pop a candidate.
  bool expand_deviations(const Candidate& cur,
                         const fault::CancelToken* cancel);

  sssp::BiView g_;
  vid_t s_, t_;
  sssp::SsspResult rtree_;
  std::vector<Candidate> accepted_;
  CandidateSet cands_;
  std::vector<std::uint8_t> mask_;
  std::vector<sssp::Path> produced_;
  KspStats stats_;
  bool primed_ = false;
  bool exhausted_ = false;
  bool have_rtree_ = false;  // warm-start constructor supplied rtree_
};

}  // namespace peek::ksp
