#include "ksp/hop_limited.hpp"

#include "ksp/yen_engine.hpp"
#include "sssp/hop_limited.hpp"

namespace peek::ksp {

KspResult hop_limited_ksp(const BiView& g, vid_t s, vid_t t,
                          const HopLimitedKspOptions& opts) {
  int sssp_calls = 0;
  detail::DeviationSolver solver = [&](const detail::DeviationContext& ctx) {
    const int budget = opts.max_hops - ctx.position;
    if (budget <= 0 && ctx.deviation_vertex != t) return sssp::Path{};
    sssp_calls++;
    sssp::Bans bans{ctx.banned_vertices, &ctx.banned_edges};
    auto r = sssp::hop_limited_sssp(g.fwd, ctx.deviation_vertex, budget, t,
                                    bans);
    return r.path;
  };
  KspResult result = detail::run_yen_engine(g.fwd, s, t, opts.base, solver);
  result.stats.sssp_calls = sssp_calls;
  return result;
}

KspResult hop_limited_ksp(const graph::CsrGraph& g, vid_t s, vid_t t, int k,
                          int max_hops) {
  HopLimitedKspOptions opts;
  opts.base.k = k;
  opts.max_hops = max_hops;
  return hop_limited_ksp(BiView::of(g), s, t, opts);
}

}  // namespace peek::ksp
