// Node Classification (Feng 2014): Yen's loop plus a reverse shortest-path
// tree and red/yellow/green vertex colors. Red = on the deviation prefix;
// green = the tree path to the target avoids every red vertex (so a green
// next-hop answers a deviation in O(1)); yellow = everything else, requiring
// a restricted SSSP. The color maintenance cost — every new red vertex
// re-colors its whole tree subtree — is exactly the overhead the paper blames
// for NC's poor parallel scaling (§7.2 observation iii), and it is faithfully
// reproduced here: NC's outer deviation loop stays serial because colors are
// shared mutable state — contrast `run_yen_engine` in ksp/yen_engine.cpp,
// which runs the same loop's deviation SSSPs concurrently for Yen/OptYen
// (via par::parallel_for_dynamic) when `KspOptions::parallel` is set.
#pragma once

#include "ksp/path_set.hpp"
#include "sssp/view.hpp"

namespace peek::ksp {

using sssp::BiView;

KspResult nc_ksp(const BiView& g, vid_t s, vid_t t, const KspOptions& opts);
KspResult nc_ksp(const graph::CsrGraph& g, vid_t s, vid_t t,
                 const KspOptions& opts);

}  // namespace peek::ksp
