#include "ksp/bruteforce.hpp"

#include <algorithm>
#include <stdexcept>

namespace peek::ksp {

namespace {

struct DfsState {
  const sssp::GraphView& g;
  vid_t t;
  size_t max_paths;
  std::vector<vid_t> stack;
  std::vector<std::uint8_t> on_stack;
  weight_t dist = 0;
  std::vector<sssp::Path> out;

  void dfs(vid_t u) {
    if (u == t) {
      out.push_back({stack, dist});
      if (out.size() > max_paths)
        throw std::runtime_error("bruteforce_ksp: path explosion");
      return;
    }
    for (eid_t e = g.edge_begin(u); e < g.edge_end(u); ++e) {
      if (!g.edge_alive(e)) continue;
      const vid_t v = g.edge_target(e);
      if (!g.vertex_alive(v) || on_stack[v]) continue;
      stack.push_back(v);
      on_stack[v] = 1;
      dist += g.edge_weight(e);
      dfs(v);
      dist -= g.edge_weight(e);
      on_stack[v] = 0;
      stack.pop_back();
    }
  }
};

}  // namespace

std::vector<sssp::Path> enumerate_all_simple_paths(const sssp::GraphView& g,
                                                   vid_t s, vid_t t,
                                                   size_t max_paths) {
  DfsState st{g, t, max_paths, {}, {}, 0, {}};
  if (s < 0 || s >= g.num_vertices() || t < 0 || t >= g.num_vertices())
    return {};
  if (!g.vertex_alive(s) || !g.vertex_alive(t)) return {};
  st.on_stack.assign(static_cast<size_t>(g.num_vertices()), 0);
  st.stack.push_back(s);
  st.on_stack[s] = 1;
  st.dfs(s);
  std::sort(st.out.begin(), st.out.end(), sssp::PathLess{});
  return st.out;
}

KspResult bruteforce_ksp(const sssp::GraphView& g, vid_t s, vid_t t,
                         const BruteforceOptions& opts) {
  KspResult r;
  auto all = enumerate_all_simple_paths(g, s, t, opts.max_paths);
  const size_t k = std::min<size_t>(static_cast<size_t>(std::max(opts.k, 0)),
                                    all.size());
  r.paths.assign(all.begin(), all.begin() + static_cast<ptrdiff_t>(k));
  return r;
}

KspResult bruteforce_ksp(const graph::CsrGraph& g, vid_t s, vid_t t, int k) {
  BruteforceOptions o;
  o.k = k;
  return bruteforce_ksp(sssp::GraphView(g), s, t, o);
}

}  // namespace peek::ksp
