// Postponed Node Classification — PNC and PNC* (Al Zoobi, Coudert & Nisse
// 2021), discussed in the paper's related work (§8).
//
// NC pays an expensive restricted SSSP for every deviation whose cheapest
// next-hop is yellow, yet most of those candidates never become one of the K
// shortest paths. PNC postpones the work: it inserts the TENTATIVE candidate
// (prefix + best lower-bound suffix via the reverse tree, possibly
// non-simple) into the candidate pool at its lower-bound distance, and only
// when such a candidate is actually extracted does it "repair" it with the
// restricted SSSP. Extracted simple candidates are final immediately.
// PNC* additionally restricts the repair SSSP to the non-red subgraph
// (identical here, since our repairs already ban exactly the red vertices —
// we expose it as a flag that also reuses NC's color pruning to skip
// hopeless deviations).
#pragma once

#include "ksp/path_set.hpp"
#include "sssp/view.hpp"

namespace peek::ksp {

using sssp::BiView;

struct PncOptions {
  KspOptions base;
  /// PNC*: skip deviations whose lower bound cannot beat the current K-th
  /// candidate (the paper's "subgraph of yellow vertices" refinement).
  bool starred = false;
};

KspResult pnc_ksp(const BiView& g, vid_t s, vid_t t, const PncOptions& opts);

KspResult pnc_ksp(const graph::CsrGraph& g, vid_t s, vid_t t,
                  const KspOptions& opts);
KspResult pnc_star_ksp(const graph::CsrGraph& g, vid_t s, vid_t t,
                       const KspOptions& opts);

}  // namespace peek::ksp
