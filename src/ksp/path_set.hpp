// Candidate-path bookkeeping shared by the Yen-family algorithms: a min-heap
// of candidate paths with duplicate suppression (Algorithm 1 line 9 — a path
// may be generated from several deviations but must enter the pool once).
#pragma once

#include <optional>
#include <unordered_set>
#include <vector>

#include "fault/cancel.hpp"
#include "sssp/path.hpp"

namespace peek::ksp {

using sssp::Path;
using sssp::PathHash;
using sssp::PathLess;

/// A candidate K-th-shortest path plus the Lawler deviation index: deviations
/// from this path need only start at `dev_index` (everything earlier was
/// already explored when the parent path was processed).
struct Candidate {
  Path path;
  int dev_index = 0;
};

class CandidateSet {
 public:
  /// Inserts unless an identical vertex sequence was ever inserted before.
  /// Returns true if inserted.
  bool push(Path path, int dev_index);

  /// Extracts the shortest candidate (distance, then lexicographic — fully
  /// deterministic). Empty when exhausted.
  std::optional<Candidate> pop_min();

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  size_t total_generated() const { return seen_.size(); }

  /// Checkpoint support (recover/): the live candidates in internal heap
  /// order. pop_min's output sequence depends only on the comparator (a total
  /// order), so any valid heap over the same multiset replays identically.
  const std::vector<Candidate>& pending() const { return heap_; }
  /// Every vertex sequence ever inserted, sorted (PathLess) so checkpoint
  /// images are deterministic.
  std::vector<Path> seen_paths() const;
  /// Replaces the current contents from a checkpoint: `pending` becomes the
  /// heap (re-heapified), `seen` the dedup set. `seen` must cover `pending`.
  void restore(std::vector<Candidate> pending, std::vector<Path> seen);

 private:
  struct Greater {
    bool operator()(const Candidate& a, const Candidate& b) const {
      return PathLess{}(b.path, a.path);
    }
  };
  std::vector<Candidate> heap_;  // std::*_heap with Greater (min-heap)
  std::unordered_set<Path, PathHash> seen_;
};

/// Statistics every KSP run reports — used by benches and the ablation study.
struct KspStats {
  int sssp_calls = 0;         // full restricted-SSSP computations
  int tree_shortcuts = 0;     // candidates served by a reverse-tree lookup
  int candidates_generated = 0;
  size_t trees_stored = 0;    // SB/SB*: reverse trees kept alive (memory)
};

struct KspResult {
  std::vector<Path> paths;  // at most K, sorted by (dist, lexicographic)
  KspStats stats;
  /// kOk, or kCancelled/kDeadlineExceeded when a CancelToken stopped the run
  /// mid-flight. On a non-kOk status `paths` still holds the exact top-J
  /// shortest paths for some J < K (rounds are only abandoned BEFORE the
  /// pop that would accept a path built from incomplete deviations).
  fault::Status::Code status = fault::Status::kOk;
};

struct KspOptions {
  int k = 8;
  /// Two-level parallel strategy (§6.1), implemented by `run_yen_engine` in
  /// ksp/yen_engine.cpp: concurrent deviation SSSPs (the outer level) +
  /// parallel Δ-stepping inside each (the inner). Serial algorithms ignore
  /// it.
  bool parallel = false;
  /// Δ-stepping bucket width when parallel (<=0 auto).
  weight_t delta = 0;
  /// Serve serial deviation SSSPs from a per-worker arena-backed scratch
  /// (sssp/scratch.hpp) instead of allocating fresh dist/parent buffers per
  /// candidate. Results are bit-identical either way; off exists for the
  /// canonical bench's before/after measurement.
  bool scratch_arena = true;
  /// Cooperative cancellation: checked at round boundaries and threaded into
  /// every deviation SSSP. Null = never cancelled.
  const fault::CancelToken* cancel = nullptr;
};

}  // namespace peek::ksp
