#include "ksp/pnc.hpp"

#include <algorithm>
#include <queue>

#include "ksp/yen_engine.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/scratch.hpp"

namespace peek::ksp {

namespace {

using detail::banned_edges_at;
using detail::cumulative_distances;
using sssp::GraphView;
using sssp::SsspResult;

/// Pool entry: either a FINAL candidate (simple path, exact distance) or a
/// TENTATIVE one (prefix + lower-bound distance; the suffix SSSP is
/// postponed until the entry is actually extracted).
struct Entry {
  bool tentative = false;
  weight_t dist = kInfDist;     // exact (final) or lower bound (tentative)
  sssp::Path path;              // final: full path; tentative: unused
  std::vector<vid_t> prefix;    // tentative: P[0..i]
  weight_t prefix_dist = 0;     // tentative
  int dev_index = 0;

  /// Min-heap by (dist, tentative-last, lexicographic path) — on equal
  /// distance prefer the FINAL entry so ties resolve without a repair.
  bool operator>(const Entry& o) const {
    if (dist != o.dist) return dist > o.dist;
    if (tentative != o.tentative) return tentative;
    return o.path.verts < path.verts;
  }
};

/// Walks the reverse-tree path from `w` and returns it as a suffix starting
/// at `v`; empty (plus `*simple = false`) if it re-enters the prefix.
sssp::Path tree_suffix(const SsspResult& rtree, const GraphView& fwd, vid_t v,
                       eid_t via_edge, vid_t t, const std::uint8_t* banned,
                       bool* simple) {
  const vid_t w0 = fwd.edge_target(via_edge);
  *simple = true;
  for (vid_t u = w0; u != kNoVertex; u = rtree.parent[u]) {
    if (u == v || banned[u]) {
      *simple = false;
      return {};
    }
    if (u == t) break;
  }
  sssp::Path suffix;
  suffix.verts.push_back(v);
  for (vid_t u = w0; u != kNoVertex; u = rtree.parent[u]) {
    suffix.verts.push_back(u);
    if (u == t) break;
  }
  if (suffix.verts.back() != t) {
    *simple = false;
    return {};
  }
  suffix.dist = fwd.edge_weight(via_edge) + rtree.dist[w0];
  return suffix;
}

}  // namespace

KspResult pnc_ksp(const BiView& g, vid_t s, vid_t t, const PncOptions& opts) {
  KspResult result;
  const vid_t n = g.fwd.num_vertices();
  const int k = opts.base.k;
  if (s < 0 || s >= n || t < 0 || t >= n || k <= 0) return result;

  SsspResult rtree = sssp::dijkstra(g.rev, t);
  result.stats.sssp_calls++;
  if (rtree.dist[s] == kInfDist) return result;

  sssp::Path first = sssp::path_from_reverse_parents(rtree, s, t);
  if (first.empty()) return result;

  std::vector<Candidate> accepted;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pool;
  std::unordered_set<sssp::Path, sssp::PathHash> seen;
  std::vector<std::uint8_t> mask(static_cast<size_t>(n), 0);
  // PNC repairs tentative entries serially — one arena-backed scratch reuses
  // dist/parent across every repair SSSP.
  std::vector<sssp::SsspScratch> repair_scratch(1);
  accepted.push_back({first, 0});
  seen.insert(first);

  // Generates pool entries for the deviations of the newest accepted path.
  auto expand = [&](const Candidate& cur) {
    const auto& p = cur.path.verts;
    const int len = static_cast<int>(p.size());
    const auto cum = cumulative_distances(g.fwd, p);
    for (int i = cur.dev_index; i < len - 1; ++i) {
      const vid_t v = p[static_cast<size_t>(i)];
      for (int j = 0; j < i; ++j) mask[p[static_cast<size_t>(j)]] = 1;
      const auto banned = banned_edges_at(g.fwd, accepted, p, i);
      // Lower bound: cheapest allowed out-edge + reverse-tree distance.
      eid_t best_e = kNoEdge;
      weight_t best = kInfDist;
      for (eid_t e = g.fwd.edge_begin(v); e < g.fwd.edge_end(v); ++e) {
        if (!g.fwd.edge_alive(e) || banned.count(e)) continue;
        const vid_t w = g.fwd.edge_target(e);
        if (!g.fwd.vertex_alive(w) || mask[w] || w == v) continue;
        if (rtree.dist[w] == kInfDist) continue;
        const weight_t bound = g.fwd.edge_weight(e) + rtree.dist[w];
        if (bound < best) {
          best = bound;
          best_e = e;
        }
      }
      if (best_e != kNoEdge) {
        bool simple = false;
        sssp::Path suffix =
            tree_suffix(rtree, g.fwd, v, best_e, t, mask.data(), &simple);
        Entry entry;
        entry.dev_index = i;
        if (simple) {
          // Exact already: push as final.
          entry.tentative = false;
          entry.path.verts.assign(p.begin(), p.begin() + i);
          entry.path.verts.insert(entry.path.verts.end(),
                                  suffix.verts.begin(), suffix.verts.end());
          entry.path.dist = cum[static_cast<size_t>(i)] + suffix.dist;
          entry.dist = entry.path.dist;
          if (seen.insert(entry.path).second) {
            pool.push(std::move(entry));
            result.stats.tree_shortcuts++;
          }
        } else {
          // PNC: postpone the SSSP; schedule at the lower bound.
          entry.tentative = true;
          entry.dist = cum[static_cast<size_t>(i)] + best;
          entry.prefix.assign(p.begin(), p.begin() + i + 1);
          entry.prefix_dist = cum[static_cast<size_t>(i)];
          pool.push(std::move(entry));
          if (opts.starred) {
            // PNC* refinement: ALSO push the best runner-up edge whose tree
            // path IS simple, as a final candidate. If the later repair of
            // the tentative lands on the same path, `seen` dedups it; if the
            // repair finds something shorter, ordering still holds because
            // the tentative's lower bound precedes both. Often the repair
            // pops after this exact path was already accepted, turning a
            // full SSSP into a no-op.
            eid_t alt_e = kNoEdge;
            weight_t alt = kInfDist;
            for (eid_t e = g.fwd.edge_begin(v); e < g.fwd.edge_end(v); ++e) {
              if (e == best_e || !g.fwd.edge_alive(e) || banned.count(e))
                continue;
              const vid_t w = g.fwd.edge_target(e);
              if (!g.fwd.vertex_alive(w) || mask[w] || w == v) continue;
              if (rtree.dist[w] == kInfDist) continue;
              const weight_t bound = g.fwd.edge_weight(e) + rtree.dist[w];
              if (bound >= alt) continue;
              bool alt_simple = false;
              tree_suffix(rtree, g.fwd, v, e, t, mask.data(), &alt_simple);
              if (alt_simple) {
                alt = bound;
                alt_e = e;
              }
            }
            if (alt_e != kNoEdge) {
              bool ok = false;
              sssp::Path alt_suffix =
                  tree_suffix(rtree, g.fwd, v, alt_e, t, mask.data(), &ok);
              Entry extra;
              extra.tentative = false;
              extra.dev_index = i;
              extra.path.verts.assign(p.begin(), p.begin() + i);
              extra.path.verts.insert(extra.path.verts.end(),
                                      alt_suffix.verts.begin(),
                                      alt_suffix.verts.end());
              extra.path.dist = cum[static_cast<size_t>(i)] + alt_suffix.dist;
              extra.dist = extra.path.dist;
              if (seen.insert(extra.path).second) pool.push(std::move(extra));
            }
          }
        }
        result.stats.candidates_generated++;
      }
      for (int j = 0; j < i; ++j) mask[p[static_cast<size_t>(j)]] = 0;
    }
  };

  expand(accepted.back());
  // no-cancel: literature baseline (bench/test comparisons only, never on
  // the serving path); its options carry no CancelToken by design
  while (static_cast<int>(accepted.size()) < k && !pool.empty()) {
    Entry top = pool.top();
    pool.pop();
    if (top.tentative) {
      // Repair now, against the CURRENT accepted set (bans may have grown —
      // that only folds in deviations the newer accepted paths own anyway).
      const int i = top.dev_index;
      const vid_t v = top.prefix.back();
      for (int j = 0; j < i; ++j)
        mask[top.prefix[static_cast<size_t>(j)]] = 1;
      const auto banned = banned_edges_at(g.fwd, accepted, top.prefix, i);
      sssp::DijkstraOptions dj;
      dj.target = t;
      dj.bans = {mask.data(), &banned};
      result.stats.sssp_calls++;
      sssp::Path suffix;
      if (opts.base.scratch_arena) {
        suffix = sssp::dijkstra_path(g.fwd, v, dj, repair_scratch[0]);
      } else {
        auto r = sssp::dijkstra(g.fwd, v, dj);
        suffix = sssp::path_from_parents(r, v, t);
      }
      for (int j = 0; j < i; ++j)
        mask[top.prefix[static_cast<size_t>(j)]] = 0;
      if (suffix.empty()) continue;
      Entry fixed;
      fixed.tentative = false;
      fixed.dev_index = i;
      fixed.path.verts.assign(top.prefix.begin(), top.prefix.end() - 1);
      fixed.path.verts.insert(fixed.path.verts.end(), suffix.verts.begin(),
                              suffix.verts.end());
      fixed.path.dist = top.prefix_dist + suffix.dist;
      fixed.dist = fixed.path.dist;
      if (seen.insert(fixed.path).second) pool.push(std::move(fixed));
      continue;
    }
    // Final candidate: the pool minimum, so it is the next shortest path.
    accepted.push_back({std::move(top.path), top.dev_index});
    expand(accepted.back());
  }

  result.paths.reserve(accepted.size());
  for (Candidate& c : accepted) result.paths.push_back(std::move(c.path));
  detail::count_arena_reuse(repair_scratch);
  return result;
}

KspResult pnc_ksp(const graph::CsrGraph& g, vid_t s, vid_t t,
                  const KspOptions& opts) {
  PncOptions po;
  po.base = opts;
  return pnc_ksp(BiView::of(g), s, t, po);
}

KspResult pnc_star_ksp(const graph::CsrGraph& g, vid_t s, vid_t t,
                       const KspOptions& opts) {
  PncOptions po;
  po.base = opts;
  po.starred = true;
  return pnc_ksp(BiView::of(g), s, t, po);
}

}  // namespace peek::ksp
