#include "ksp/node_classification.hpp"

#include <vector>

#include "ksp/yen_engine.hpp"
#include "sssp/delta_stepping.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/scratch.hpp"

namespace peek::ksp {

namespace {

enum Color : std::uint8_t { kGreen = 0, kYellow = 1, kRed = 2 };

/// Vertex colors over a fixed reverse shortest-path tree.
class ColorState {
 public:
  ColorState(const sssp::SsspResult& rtree, vid_t n) : rtree_(&rtree) {
    color_.assign(static_cast<size_t>(n), kGreen);
    children_.assign(static_cast<size_t>(n), {});
    for (vid_t u = 0; u < n; ++u) {
      const vid_t p = rtree.parent[u];
      if (p != kNoVertex) children_[p].push_back(u);
    }
  }

  void reset() { std::fill(color_.begin(), color_.end(), kGreen); }

  /// v joins the prefix: itself red, every tree descendant (vertices whose
  /// path to the target passes v) yellow. Idempotent.
  void mark_red(vid_t v) {
    if (color_[v] == kRed) return;
    color_[v] = kRed;
    stack_.assign(children_[v].begin(), children_[v].end());
    while (!stack_.empty()) {
      const vid_t u = stack_.back();
      stack_.pop_back();
      if (color_[u] != kGreen) continue;  // red/yellow subtrees already done
      color_[u] = kYellow;
      stack_.insert(stack_.end(), children_[u].begin(), children_[u].end());
    }
  }

  bool green(vid_t v) const { return color_[v] == kGreen; }

 private:
  const sssp::SsspResult* rtree_;
  std::vector<std::uint8_t> color_;
  std::vector<std::vector<vid_t>> children_;
  std::vector<vid_t> stack_;
};

}  // namespace

KspResult nc_ksp(const BiView& g, vid_t s, vid_t t, const KspOptions& opts) {
  int sssp_calls = 0;
  int shortcuts = 0;

  sssp::SsspResult rtree;
  if (opts.parallel) {
    sssp::DeltaSteppingOptions ds;
    ds.delta = opts.delta;
    rtree = sssp::delta_stepping(g.rev, t, ds);
  } else {
    rtree = sssp::dijkstra(g.rev, t);
  }
  sssp_calls++;

  ColorState colors(rtree, g.fwd.num_vertices());

  // NC runs its solver serially (the on_path_accepted hook disables the
  // engine's outer-level parallelism), so one scratch covers every worker.
  std::vector<sssp::SsspScratch> scratch(detail::solver_workers(opts));

  detail::EngineHooks hooks;
  hooks.on_path_accepted = [&](const sssp::Path& p, int dev_index) {
    colors.reset();
    for (int j = 0; j < dev_index; ++j) colors.mark_red(p.verts[static_cast<size_t>(j)]);
  };

  detail::DeviationSolver solver = [&](const detail::DeviationContext& ctx) {
    const vid_t v = ctx.deviation_vertex;
    colors.mark_red(v);
    // argmin over allowed out-edges of w(e) + tree distance.
    eid_t best_e = kNoEdge;
    weight_t best = kInfDist;
    for (eid_t e = g.fwd.edge_begin(v); e < g.fwd.edge_end(v); ++e) {
      if (!g.fwd.edge_alive(e) || ctx.banned_edges.count(e)) continue;
      const vid_t w = g.fwd.edge_target(e);
      if (!g.fwd.vertex_alive(w) || ctx.banned_vertices[w] || w == v) continue;
      if (rtree.dist[w] == kInfDist) continue;
      const weight_t bound = g.fwd.edge_weight(e) + rtree.dist[w];
      if (bound < best) {
        best = bound;
        best_e = e;
      }
    }
    if (best_e == kNoEdge) return sssp::Path{};
    const vid_t w0 = g.fwd.edge_target(best_e);
    if (colors.green(w0)) {
      // Green: the tree path from w0 avoids every red vertex (the whole
      // prefix including v), so the lower bound is attained — O(1) answer.
      shortcuts++;
      sssp::Path suffix;
      suffix.verts.push_back(v);
      for (vid_t u = w0; u != kNoVertex; u = rtree.parent[u]) {
        suffix.verts.push_back(u);
        if (u == t) break;
      }
      if (suffix.verts.back() != t) return sssp::Path{};
      suffix.dist = best;
      return suffix;
    }
    // Yellow next-hop: restricted SSSP on the non-red subgraph.
    sssp_calls++;
    sssp::Bans bans{ctx.banned_vertices, &ctx.banned_edges};
    if (opts.parallel) {
      sssp::DeltaSteppingOptions ds;
      ds.target = t;
      ds.bans = bans;
      ds.delta = opts.delta;
      auto r = sssp::delta_stepping(g.fwd, v, ds);
      return sssp::path_from_parents(r, v, t);
    }
    sssp::DijkstraOptions dj;
    dj.target = t;
    dj.bans = bans;
    if (opts.scratch_arena)
      return sssp::dijkstra_path(g.fwd, v, dj,
                                 scratch[detail::worker_slot(opts)]);
    auto r = sssp::dijkstra(g.fwd, v, dj);
    return sssp::path_from_parents(r, v, t);
  };

  KspResult result = detail::run_yen_engine(g.fwd, s, t, opts, solver, hooks);
  detail::count_arena_reuse(scratch);
  result.stats.sssp_calls = sssp_calls;
  result.stats.tree_shortcuts = shortcuts;
  return result;
}

KspResult nc_ksp(const graph::CsrGraph& g, vid_t s, vid_t t,
                 const KspOptions& opts) {
  return nc_ksp(BiView::of(g), s, t, opts);
}

}  // namespace peek::ksp
