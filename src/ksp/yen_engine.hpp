// Internal: the deviation loop shared by Yen, NC, OptYen and PeeK's final
// KSP stage. Algorithm 1 gives the skeleton; the algorithms differ only in
// how they answer one question — "what is the shortest v->t path avoiding
// these prefix vertices and these deviation edges?" — so that question is a
// pluggable DeviationSolver and everything else (prefix walking, edge
// banning, candidate pooling, Lawler indices, the two-level parallel
// strategy) lives here once.
#pragma once

#include <functional>

#include "ksp/path_set.hpp"
#include "sssp/scratch.hpp"
#include "sssp/view.hpp"

namespace peek::ksp::detail {

using sssp::Bans;
using sssp::GraphView;

struct DeviationContext {
  /// P[0..i] — ends at the deviation vertex.
  const std::vector<vid_t>& prefix;
  vid_t deviation_vertex;     // == prefix.back()
  weight_t prefix_dist;       // sum of weights along the prefix
  /// Byte mask over vertices: prefix MINUS the deviation vertex.
  const std::uint8_t* banned_vertices;
  /// Forward-view edge ids banned at the deviation vertex (line 6).
  const std::unordered_set<eid_t>& banned_edges;
  /// Position of the deviation vertex within the accepted path.
  int position;
};

/// Returns the shortest suffix path deviation_vertex -> t under the context's
/// bans (dist = suffix distance only), or an empty path if none exists.
using DeviationSolver = std::function<sssp::Path(const DeviationContext&)>;

struct EngineHooks {
  /// Called once per accepted path before its deviations are explored
  /// (NC uses it to rebuild vertex colors). May be null.
  std::function<void(const sssp::Path&, int dev_index)> on_path_accepted;
};

/// Deviation edges banned at position `i` of path `p`: every accepted path Q
/// sharing p's first i+1 vertices contributes its edge (Q[i], Q[i+1])
/// (Algorithm 1 line 6). Shared with the sidetrack algorithms.
std::unordered_set<eid_t> banned_edges_at(const GraphView& fwd,
                                          const std::vector<Candidate>& accepted,
                                          const std::vector<vid_t>& p, int i);

/// Cumulative distance along `verts` (cum[i] = distance of verts[0..i]).
std::vector<weight_t> cumulative_distances(const GraphView& fwd,
                                           const std::vector<vid_t>& verts);

/// Sizing/indexing for per-worker solver scratch (SSSP arenas, ban masks):
/// identical to the engine's own per-thread buffers, so a solver indexing
/// `scratch[worker_slot(opts)]` is race-free under the engine's outer-level
/// parallelism (serial mode always uses slot 0, even inside an enclosing
/// parallel region — see the thread_id() note in run_yen_engine).
int solver_workers(const KspOptions& opts);
std::size_t worker_slot(const KspOptions& opts);

/// Folds every worker scratch's reuse into the `ksp.arena.reuse_bytes`
/// counter — call once per KSP run, after the engine returns.
void count_arena_reuse(const std::vector<sssp::SsspScratch>& scratch);

/// Runs the full KSP loop. `fwd` is the forward view of the (possibly
/// compacted) graph. When `opts.parallel`, deviations of each accepted path
/// run concurrently (the outer level of §6.1's two-level strategy) — only
/// legal when the solver is thread-safe and no on_red_advance hook is set.
KspResult run_yen_engine(const GraphView& fwd, vid_t s, vid_t t,
                         const KspOptions& opts, const DeviationSolver& solver,
                         const EngineHooks& hooks = {});

}  // namespace peek::ksp::detail
