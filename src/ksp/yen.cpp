#include "ksp/yen.hpp"

#include <atomic>

#include "ksp/yen_engine.hpp"
#include "obs/metrics.hpp"
#include "sssp/delta_stepping.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/scratch.hpp"

namespace peek::ksp {

KspResult yen_ksp(const BiView& g, vid_t s, vid_t t, const KspOptions& opts) {
  std::atomic<int> sssp_calls{0};

  // One arena-backed SSSP scratch per worker: the serial Dijkstra branch
  // reuses dist/parent across candidates instead of allocating per call.
  std::vector<sssp::SsspScratch> scratch(detail::solver_workers(opts));

  detail::DeviationSolver solver = [&](const detail::DeviationContext& ctx) {
    sssp_calls.fetch_add(1, std::memory_order_relaxed);
    sssp::Bans bans{ctx.banned_vertices, &ctx.banned_edges};
    sssp::Path suffix;
    if (opts.parallel) {
      sssp::DeltaSteppingOptions ds;
      ds.target = t;
      ds.bans = bans;
      ds.delta = opts.delta;
      // Inner-level parallelism: the outer level already fans deviations out
      // across threads, so each SSSP runs serial loops of the same algorithm
      // unless it is the only job (the first path).
      ds.parallel = ctx.position == 0 && ctx.prefix.size() == 1;
      auto r = sssp::delta_stepping(g.fwd, ctx.deviation_vertex, ds);
      suffix = sssp::path_from_parents(r, ctx.deviation_vertex, t);
    } else {
      sssp::DijkstraOptions dj;
      dj.target = t;
      dj.bans = bans;
      if (opts.scratch_arena) {
        suffix = sssp::dijkstra_path(g.fwd, ctx.deviation_vertex, dj,
                                     scratch[detail::worker_slot(opts)]);
      } else {
        auto r = sssp::dijkstra(g.fwd, ctx.deviation_vertex, dj);
        suffix = sssp::path_from_parents(r, ctx.deviation_vertex, t);
      }
    }
    return suffix;
  };

  KspResult result = detail::run_yen_engine(g.fwd, s, t, opts, solver);
  result.stats.sssp_calls = sssp_calls.load();
  detail::count_arena_reuse(scratch);
  return result;
}

KspResult yen_ksp(const graph::CsrGraph& g, vid_t s, vid_t t,
                  const KspOptions& opts) {
  return yen_ksp(BiView::of(g), s, t, opts);
}

}  // namespace peek::ksp
