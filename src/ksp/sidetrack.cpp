#include "ksp/sidetrack.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <unordered_map>

#include "ksp/yen_engine.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/resumable_dijkstra.hpp"
#include "sssp/scratch.hpp"

namespace peek::ksp {

namespace {

using sssp::GraphView;
using sssp::SsspResult;
using TreePtr = std::shared_ptr<const SsspResult>;

struct PrefixHash {
  size_t operator()(const std::vector<vid_t>& v) const {
    size_t h = 1469598103934665603ULL;
    for (vid_t x : v) {
      h ^= static_cast<size_t>(x);
      h *= 1099511628211ULL;
    }
    return h;
  }
};

/// Bounded pool of reverse shortest-path trees keyed by the red prefix they
/// were computed under. FIFO eviction (evicted prefixes recompute on demand).
class TreePool {
 public:
  explicit TreePool(size_t cap) : cap_(cap) {}

  TreePtr find(const std::vector<vid_t>& prefix) const {
    auto it = cache_.find(prefix);
    return it == cache_.end() ? nullptr : it->second;
  }

  void insert(std::vector<vid_t> prefix, TreePtr tree) {
    if (cache_.count(prefix)) return;
    if (cache_.size() >= cap_ && !fifo_.empty()) {
      cache_.erase(fifo_.front());
      fifo_.pop_front();
    }
    fifo_.push_back(prefix);
    cache_.emplace(std::move(prefix), std::move(tree));
    peak_ = std::max(peak_, cache_.size());
  }

  size_t peak() const { return peak_; }

 private:
  size_t cap_;
  size_t peak_ = 0;
  std::unordered_map<std::vector<vid_t>, TreePtr, PrefixHash> cache_;
  std::deque<std::vector<vid_t>> fifo_;
};

struct SidetrackRun {
  const BiView& g;
  vid_t s, t;
  const SidetrackOptions& opts;
  TreePool pool;
  std::vector<std::uint8_t> mask;  // scratch vertex-ban mask
  /// Arena-backed scratch for the serial Yen-fallback repair SSSPs (one
  /// element — SB/SB* run single-threaded).
  std::vector<sssp::SsspScratch> repair_scratch{1};
  KspStats stats;

  SidetrackRun(const BiView& bg, vid_t src, vid_t tgt,
               const SidetrackOptions& o)
      : g(bg), s(src), t(tgt), opts(o), pool(o.max_resident_trees),
        mask(static_cast<size_t>(bg.fwd.num_vertices()), 0) {}

  /// Reverse tree for red set = `prefix` (vertices banned from the suffix).
  /// SB computes it fresh; SB* repairs the nearest cached ancestor tree.
  TreePtr tree_for(const std::vector<vid_t>& prefix) {
    if (TreePtr hit = pool.find(prefix)) return hit;
    for (vid_t v : prefix) mask[v] = 1;
    sssp::Bans bans{mask.data(), nullptr};
    TreePtr tree;
    if (opts.resume_trees && !prefix.empty()) {
      // Longest cached ancestor (always terminates: the empty prefix / root
      // tree is inserted first).
      std::vector<vid_t> ancestor = prefix;
      TreePtr base;
      while (!base) {
        ancestor.pop_back();
        base = pool.find(ancestor);
        if (ancestor.empty() && !base) break;
      }
      stats.sssp_calls++;
      if (base) {
        sssp::ResumableDijkstra rd(g.rev, t, *base, bans);
        rd.run_to_completion();
        tree = std::make_shared<SsspResult>(rd.snapshot());
      } else {
        tree = std::make_shared<SsspResult>(sssp::dijkstra(g.rev, t, {.bans = bans}));
      }
    } else {
      stats.sssp_calls++;
      tree = std::make_shared<SsspResult>(sssp::dijkstra(g.rev, t, {.bans = bans}));
    }
    for (vid_t v : prefix) mask[v] = 0;
    pool.insert(prefix, tree);
    return tree;
  }
};

}  // namespace

KspResult sb_ksp(const BiView& g, vid_t s, vid_t t,
                 const SidetrackOptions& opts) {
  KspResult result;
  const vid_t n = g.fwd.num_vertices();
  if (s < 0 || s >= n || t < 0 || t >= n || opts.base.k <= 0) return result;

  SidetrackRun run(g, s, t, opts);

  // Root tree (empty red set) and the shortest path.
  TreePtr root = run.tree_for({});
  sssp::Path first = sssp::path_from_reverse_parents(*root, s, t);
  if (first.empty()) return result;

  std::vector<Candidate> accepted;
  accepted.push_back({std::move(first), 0});
  CandidateSet cands;

  // no-cancel: literature baseline (bench/test comparisons only, never on
  // the serving path); its options carry no CancelToken by design
  while (static_cast<int>(accepted.size()) < opts.base.k) {
    const Candidate cur = accepted.back();
    const auto& p = cur.path.verts;
    const int len = static_cast<int>(p.size());
    const std::vector<weight_t> cum = detail::cumulative_distances(g.fwd, p);

    // ONE reverse tree per extracted path (the Kurz–Mutzel economy): it is
    // computed on G minus the path's pre-deviation prefix P[0..d-1]. For
    // later deviation positions i > d the tree may route through the newly
    // red vertices P[d..i-1]; the per-candidate validity walk catches that
    // and falls back to a restricted SSSP ("repair").
    const std::vector<vid_t> tree_red(p.begin(), p.begin() + cur.dev_index);
    TreePtr tree = run.tree_for(tree_red);

    // no-cancel: deviation scan of one extracted path; same baseline-only
    // caveat as the enclosing loop
    for (int i = cur.dev_index; i < len - 1; ++i) {
      const vid_t v = p[static_cast<size_t>(i)];
      const auto banned = detail::banned_edges_at(g.fwd, accepted, p, i);

      for (int j = 0; j < i; ++j) run.mask[p[static_cast<size_t>(j)]] = 1;
      // argmin over allowed out-edges of w(e) + tree distance.
      eid_t best_e = kNoEdge;
      weight_t best = kInfDist;
      for (eid_t e = g.fwd.edge_begin(v); e < g.fwd.edge_end(v); ++e) {
        if (!g.fwd.edge_alive(e) || banned.count(e)) continue;
        const vid_t w = g.fwd.edge_target(e);
        if (!g.fwd.vertex_alive(w) || run.mask[w] || w == v) continue;
        if (tree->dist[w] == kInfDist) continue;
        const weight_t bound = g.fwd.edge_weight(e) + tree->dist[w];
        if (bound < best) {
          best = bound;
          best_e = e;
        }
      }
      sssp::Path suffix;
      if (best_e != kNoEdge) {
        // Validity walk: the tree avoids P[0..d-1] by construction, but may
        // hit v or one of the red-after-d vertices P[d..i-1].
        const vid_t w0 = g.fwd.edge_target(best_e);
        bool valid = true;
        for (vid_t u = w0; u != kNoVertex; u = tree->parent[u]) {
          if (u == v || run.mask[u]) {
            valid = false;
            break;
          }
          if (u == t) break;
        }
        if (valid) {
          run.stats.tree_shortcuts++;
          suffix.verts.push_back(v);
          for (vid_t u = w0; u != kNoVertex; u = tree->parent[u]) {
            suffix.verts.push_back(u);
            if (u == t) break;
          }
          suffix.dist = best;
          if (suffix.verts.back() != t) suffix.verts.clear();
        } else {
          // Repair: restricted SSSP from v (Yen fallback).
          run.stats.sssp_calls++;
          sssp::DijkstraOptions dj;
          dj.target = t;
          dj.bans = {run.mask.data(), &banned};
          if (opts.base.scratch_arena) {
            suffix = sssp::dijkstra_path(g.fwd, v, dj, run.repair_scratch[0]);
          } else {
            auto r = sssp::dijkstra(g.fwd, v, dj);
            suffix = sssp::path_from_parents(r, v, t);
          }
        }
      }
      for (int j = 0; j < i; ++j) run.mask[p[static_cast<size_t>(j)]] = 0;
      if (suffix.empty()) continue;

      Candidate cand;
      cand.dev_index = i;
      cand.path.verts.assign(p.begin(), p.begin() + i);
      cand.path.verts.insert(cand.path.verts.end(), suffix.verts.begin(),
                             suffix.verts.end());
      cand.path.dist = cum[static_cast<size_t>(i)] + suffix.dist;
      cands.push(std::move(cand.path), cand.dev_index);
    }

    auto next = cands.pop_min();
    if (!next) break;
    accepted.push_back(std::move(*next));
  }

  result.paths.reserve(accepted.size());
  for (Candidate& c : accepted) result.paths.push_back(std::move(c.path));
  run.stats.candidates_generated = static_cast<int>(cands.total_generated());
  run.stats.trees_stored = run.pool.peak();
  result.stats = run.stats;
  detail::count_arena_reuse(run.repair_scratch);
  return result;
}

KspResult sb_ksp(const graph::CsrGraph& g, vid_t s, vid_t t,
                 const KspOptions& opts) {
  SidetrackOptions so;
  so.base = opts;
  so.resume_trees = false;
  return sb_ksp(BiView::of(g), s, t, so);
}

KspResult sb_star_ksp(const graph::CsrGraph& g, vid_t s, vid_t t,
                      const KspOptions& opts) {
  SidetrackOptions so;
  so.base = opts;
  so.resume_trees = true;
  return sb_ksp(BiView::of(g), s, t, so);
}

}  // namespace peek::ksp
