// Yen's algorithm (Yen 1971) with Lawler's deviation-index optimization —
// the foundational KSP baseline (Algorithm 1). One restricted SSSP per
// deviation vertex.
#pragma once

#include "ksp/path_set.hpp"
#include "sssp/view.hpp"

namespace peek::ksp {

using sssp::BiView;

/// K shortest simple paths s -> t. Uses only the forward view.
/// opts.parallel enables the two-level strategy: concurrent deviations
/// (outer) over Δ-stepping SSSPs (inner).
KspResult yen_ksp(const BiView& g, vid_t s, vid_t t, const KspOptions& opts);

/// Convenience overload over a plain graph.
KspResult yen_ksp(const graph::CsrGraph& g, vid_t s, vid_t t,
                  const KspOptions& opts);

}  // namespace peek::ksp
