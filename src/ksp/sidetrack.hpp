// Sidetrack-based KSP (Kurz & Mutzel 2016) and its time/space-trade-off
// successor SB* (Al Zoobi, Coudert & Nisse 2020/21).
//
// Instead of OptYen's single static reverse tree, SB keeps a reverse
// shortest-path tree PER DEVIATION PREFIX (computed on the graph minus the
// prefix — the "red" vertices), so nearly every deviation is answered by a
// tree lookup and the expensive restricted SSSPs almost disappear. The price
// is memory: the pool of resident trees is the algorithm's signature cost,
// reported in KspStats::trees_stored. SB* additionally builds each new tree
// by REPAIRING its parent-prefix tree (resumable Dijkstra) instead of
// starting from scratch.
//
// The resident-tree pool is capped (PSB-style, §8): evicted trees are
// recomputed on demand, so memory stays bounded at `max_resident_trees`
// trees without affecting correctness.
#pragma once

#include "ksp/path_set.hpp"
#include "sssp/view.hpp"

namespace peek::ksp {

using sssp::BiView;

struct SidetrackOptions {
  KspOptions base;
  /// Upper bound on simultaneously stored reverse trees.
  size_t max_resident_trees = 256;
  /// true = SB* (repair-seeded trees), false = SB (fresh tree per prefix).
  bool resume_trees = false;
};

KspResult sb_ksp(const BiView& g, vid_t s, vid_t t, const SidetrackOptions& opts);

/// Convenience wrappers matching the paper's algorithm names.
KspResult sb_ksp(const graph::CsrGraph& g, vid_t s, vid_t t,
                 const KspOptions& opts);
KspResult sb_star_ksp(const graph::CsrGraph& g, vid_t s, vid_t t,
                      const KspOptions& opts);

}  // namespace peek::ksp
