// OptYen (Ajwani et al. 2018) — the state-of-the-art parallel baseline: Yen's
// deviation loop plus ONE static reverse shortest-path tree from the target.
// When the tree already answers a deviation (the tree path from the best
// next-hop avoids the prefix), no SSSP is run; otherwise it falls back to a
// restricted SSSP on the original graph. PeeK's final KSP stage (§3) is this
// algorithm run on the compacted graph.
#pragma once

#include "ksp/path_set.hpp"
#include "sssp/view.hpp"

namespace peek::ksp {

using sssp::BiView;

KspResult optyen_ksp(const BiView& g, vid_t s, vid_t t, const KspOptions& opts);
KspResult optyen_ksp(const graph::CsrGraph& g, vid_t s, vid_t t,
                     const KspOptions& opts);

namespace detail {
struct DeviationContext;  // ksp/yen_engine.hpp

/// OptYen's static-tree shortcut, shared with the distributed KSP stage:
/// returns the optimal restricted suffix when the reverse-tree path from the
/// cheapest allowed next-hop is feasible, else an empty path (caller falls
/// back to a restricted SSSP).
sssp::Path optyen_tree_shortcut(const sssp::GraphView& fwd,
                                const sssp::SsspResult& rtree, vid_t t,
                                const DeviationContext& ctx);
}  // namespace detail

}  // namespace peek::ksp
