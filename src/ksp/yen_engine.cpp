#include "ksp/yen_engine.hpp"

#include <algorithm>

#include "fault/injector.hpp"
#include "obs/metrics.hpp"
#include "parallel/parallel_for.hpp"

namespace peek::ksp::detail {

std::vector<weight_t> cumulative_distances(const GraphView& fwd,
                                           const std::vector<vid_t>& verts) {
  std::vector<weight_t> cum(verts.size(), 0);
  for (size_t i = 0; i + 1 < verts.size(); ++i) {
    const eid_t e = fwd.find_edge(verts[i], verts[i + 1]);
    cum[i + 1] = cum[i] + (e == kNoEdge ? kInfDist : fwd.edge_weight(e));
  }
  return cum;
}

int solver_workers(const KspOptions& opts) {
  return opts.parallel ? par::max_threads() : 1;
}

std::size_t worker_slot(const KspOptions& opts) {
  return opts.parallel ? static_cast<std::size_t>(par::thread_id()) : 0;
}

void count_arena_reuse(const std::vector<sssp::SsspScratch>& scratch) {
  std::size_t bytes = 0;
  for (const auto& sc : scratch) bytes += sc.reused_bytes();
  if (bytes > 0)
    PEEK_COUNT_ADD("ksp.arena.reuse_bytes", static_cast<std::int64_t>(bytes));
}

std::unordered_set<eid_t> banned_edges_at(const GraphView& fwd,
                                          const std::vector<Candidate>& accepted,
                                          const std::vector<vid_t>& p, int i) {
  std::unordered_set<eid_t> banned;
  for (const Candidate& q : accepted) {
    const auto& qv = q.path.verts;
    if (static_cast<int>(qv.size()) <= i + 1) continue;
    if (!std::equal(p.begin(), p.begin() + i + 1, qv.begin())) continue;
    const eid_t e = fwd.find_edge(qv[i], qv[i + 1]);
    if (e != kNoEdge) banned.insert(e);
  }
  return banned;
}

KspResult run_yen_engine(const GraphView& fwd, vid_t s, vid_t t,
                         const KspOptions& opts, const DeviationSolver& solver,
                         const EngineHooks& hooks) {
  KspResult result;
  const vid_t n = fwd.num_vertices();
  if (s < 0 || s >= n || t < 0 || t >= n || opts.k <= 0) return result;
  if (!fwd.vertex_alive(s) || !fwd.vertex_alive(t)) return result;

  // Round-boundary cancellation: checked before each accepted-path round and
  // again before the pop that would accept a candidate, so `result.paths` is
  // always the exact top-J prefix of the answer (stride 1 — rounds are rare
  // next to the SSSP work inside them).
  fault::CancelPoll poll(opts.cancel, /*stride=*/1);

  // The shortest path: solver with the trivial prefix {s} and no bans.
  std::vector<std::uint8_t> zero_mask(static_cast<size_t>(n), 0);
  const std::unordered_set<eid_t> no_edges;
  std::vector<vid_t> trivial_prefix{s};
  sssp::Path first =
      solver({trivial_prefix, s, 0, zero_mask.data(), no_edges, 0});
  if (first.empty()) {
    if (poll.should_stop()) result.status = poll.why();
    return result;
  }

  std::vector<Candidate> accepted;
  accepted.push_back({std::move(first), 0});
  CandidateSet cands;

  // Per-thread ban masks, set and cleared per deviation (O(prefix) each) so
  // parallel deviations never share scratch state.
  const int nt = opts.parallel ? par::max_threads() : 1;
  std::vector<std::vector<std::uint8_t>> masks(
      static_cast<size_t>(nt), std::vector<std::uint8_t>(static_cast<size_t>(n), 0));

  while (static_cast<int>(accepted.size()) < opts.k) {
    if (poll.should_stop()) {
      result.status = poll.why();
      break;
    }
    const Candidate cur = accepted.back();  // copy: accepted may reallocate
    const auto& p = cur.path.verts;
    const int len = static_cast<int>(p.size());
    if (hooks.on_path_accepted) hooks.on_path_accepted(cur.path, cur.dev_index);

    const std::vector<weight_t> cum = cumulative_distances(fwd, p);

    // One deviation task per position; results buffered per thread, merged
    // serially into the candidate pool (its hash set is not thread-safe).
    std::vector<std::vector<Candidate>> found(static_cast<size_t>(nt));
    auto deviate = [&](int i) {
      PEEK_FAULT_STALL("ksp.deviation.stall");
      const vid_t v = p[static_cast<size_t>(i)];
      // In serial mode thread_id() may still be nonzero (this engine can run
      // inside an outer parallel region, e.g. a parallel batch); always use
      // slot 0 then — masks/found are sized 1.
      const auto slot =
          opts.parallel ? static_cast<size_t>(par::thread_id()) : 0;
      auto& mask = masks[slot];
      for (int j = 0; j < i; ++j) mask[p[static_cast<size_t>(j)]] = 1;
      std::vector<vid_t> prefix(p.begin(), p.begin() + i + 1);
      const std::unordered_set<eid_t> banned =
          banned_edges_at(fwd, accepted, p, i);
      sssp::Path suffix =
          solver({prefix, v, cum[static_cast<size_t>(i)], mask.data(), banned, i});
      for (int j = 0; j < i; ++j) mask[p[static_cast<size_t>(j)]] = 0;
      if (suffix.empty()) return;
      Candidate cand;
      cand.dev_index = i;
      cand.path.verts = std::move(prefix);
      cand.path.verts.insert(cand.path.verts.end(), suffix.verts.begin() + 1,
                             suffix.verts.end());
      cand.path.dist = cum[static_cast<size_t>(i)] + suffix.dist;
      found[slot].push_back(std::move(cand));
    };

    // Task-parallel scheduling stats: one round per accepted path, one task
    // per deviation position dispatched within the round.
    if (len - 1 > cur.dev_index) {
      PEEK_COUNT_ADD("ksp.deviation_tasks", len - 1 - cur.dev_index);
    }
    if (opts.parallel && !hooks.on_path_accepted) {
      PEEK_COUNT_INC("ksp.parallel_deviation_rounds");
      par::parallel_for_dynamic(cur.dev_index, len - 1, deviate, 1);
    } else {
      for (int i = cur.dev_index; i < len - 1; ++i) deviate(i);
    }
    // A tripped token means some deviation SSSPs in this round may have been
    // cut short (their suffixes were discarded) — the pool could be missing a
    // shorter candidate. Abandon BEFORE the pop so accepted paths stay the
    // exact top-J.
    if (poll.should_stop()) {
      result.status = poll.why();
      break;
    }
    for (auto& bucket : found) {
      for (Candidate& c : bucket) cands.push(std::move(c.path), c.dev_index);
    }

    auto next = cands.pop_min();
    if (!next) break;
    accepted.push_back(std::move(*next));
  }

  result.paths.reserve(accepted.size());
  for (Candidate& c : accepted) result.paths.push_back(std::move(c.path));
  result.stats.candidates_generated =
      static_cast<int>(cands.total_generated());
  PEEK_COUNT_ADD("ksp.candidates_generated", result.stats.candidates_generated);
  PEEK_COUNT_ADD("ksp.paths_accepted", accepted.size());
  return result;
}

}  // namespace peek::ksp::detail
