#include "ksp/stream.hpp"

#include "ksp/optyen.hpp"
#include "ksp/yen_engine.hpp"

namespace peek::ksp {

KspStream::KspStream(const sssp::BiView& g, vid_t s, vid_t t)
    : g_(g), s_(s), t_(t) {
  const vid_t n = g_.fwd.num_vertices();
  mask_.assign(static_cast<size_t>(n), 0);
  if (s_ < 0 || s_ >= n || t_ < 0 || t_ >= n) exhausted_ = true;
}

KspStream::KspStream(const graph::CsrGraph& g, vid_t s, vid_t t)
    : KspStream(sssp::BiView::of(g), s, t) {}

KspStream::KspStream(const sssp::BiView& g, vid_t s, vid_t t,
                     sssp::SsspResult rtree)
    : KspStream(g, s, t) {
  rtree_ = std::move(rtree);
  have_rtree_ = true;
}

bool KspStream::expand_deviations(const Candidate& cur,
                                  const fault::CancelToken* cancel) {
  const auto& p = cur.path.verts;
  const int len = static_cast<int>(p.size());
  const auto cum = detail::cumulative_distances(g_.fwd, p);
  fault::CancelPoll poll(cancel, /*stride=*/1);
  for (int i = cur.dev_index; i < len - 1; ++i) {
    if (poll.should_stop()) return false;
    const vid_t v = p[static_cast<size_t>(i)];
    for (int j = 0; j < i; ++j) mask_[p[static_cast<size_t>(j)]] = 1;
    const auto banned = detail::banned_edges_at(g_.fwd, accepted_, p, i);
    std::vector<vid_t> prefix(p.begin(), p.begin() + i + 1);
    detail::DeviationContext ctx{prefix, v, cum[static_cast<size_t>(i)],
                                 mask_.data(), banned, i};
    bool cut_short = false;
    sssp::Path suffix = detail::optyen_tree_shortcut(g_.fwd, rtree_, t_, ctx);
    if (!suffix.empty()) {
      stats_.tree_shortcuts++;
    } else {
      stats_.sssp_calls++;
      sssp::DijkstraOptions dj;
      dj.target = t_;
      dj.bans = {mask_.data(), &banned};
      dj.cancel = cancel;
      auto r = sssp::dijkstra(g_.fwd, v, dj);
      // Discard a cancelled SSSP's suffix — it may not be shortest.
      cut_short = r.status != fault::Status::kOk;
      if (!cut_short) suffix = sssp::path_from_parents(r, v, t_);
    }
    for (int j = 0; j < i; ++j) mask_[p[static_cast<size_t>(j)]] = 0;
    if (cut_short) return false;
    if (suffix.empty()) continue;
    Candidate cand;
    cand.dev_index = i;
    cand.path.verts = std::move(prefix);
    cand.path.verts.insert(cand.path.verts.end(), suffix.verts.begin() + 1,
                           suffix.verts.end());
    cand.path.dist = cum[static_cast<size_t>(i)] + suffix.dist;
    if (cands_.push(std::move(cand.path), cand.dev_index))
      stats_.candidates_generated++;
  }
  return true;
}

std::optional<sssp::Path> KspStream::next(const fault::CancelToken* cancel) {
  if (exhausted_) return std::nullopt;
  if (!primed_) {
    if (!have_rtree_) {
      sssp::DijkstraOptions dj;
      dj.cancel = cancel;
      auto r = sssp::dijkstra(g_.rev, t_, dj);
      stats_.sssp_calls++;
      // A cancelled priming SSSP leaves no usable tree: stay unprimed so a
      // later un-cancelled call redoes it, and do NOT flag exhaustion.
      if (r.status != fault::Status::kOk) return std::nullopt;
      rtree_ = std::move(r);
      have_rtree_ = true;
    }
    primed_ = true;
    sssp::Path first = sssp::path_from_reverse_parents(rtree_, s_, t_);
    if (first.empty()) {
      exhausted_ = true;
      return std::nullopt;
    }
    accepted_.push_back({first, 0});
    produced_.push_back(first);
    return first;
  }
  // Deviations of the most recent path are expanded lazily — exactly once on
  // the un-cancelled fast path; a cancelled round is re-run in full by the
  // next call (the pool's seen-set absorbs the repeated pushes).
  if (!expand_deviations(accepted_.back(), cancel)) return std::nullopt;
  auto cand = cands_.pop_min();
  if (!cand) {
    exhausted_ = true;
    return std::nullopt;
  }
  accepted_.push_back(*cand);
  produced_.push_back(cand->path);
  return cand->path;
}

}  // namespace peek::ksp
