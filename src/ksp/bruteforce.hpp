// Exhaustive KSP oracle for correctness testing: enumerates ALL simple s->t
// paths by DFS (exponential — small graphs only) and returns the K best under
// the library's deterministic (distance, lexicographic) order.
#pragma once

#include "ksp/path_set.hpp"
#include "sssp/view.hpp"

namespace peek::ksp {

struct BruteforceOptions {
  int k = 8;
  /// Safety valve: abort (throw std::runtime_error) beyond this many
  /// enumerated paths so a mis-sized test fails loudly instead of hanging.
  size_t max_paths = 2'000'000;
};

/// All simple paths s->t, sorted by (dist, lexicographic).
std::vector<sssp::Path> enumerate_all_simple_paths(const sssp::GraphView& g,
                                                   vid_t s, vid_t t,
                                                   size_t max_paths = 2'000'000);

/// The K shortest simple paths by exhaustive enumeration.
KspResult bruteforce_ksp(const sssp::GraphView& g, vid_t s, vid_t t,
                         const BruteforceOptions& opts = {});
KspResult bruteforce_ksp(const graph::CsrGraph& g, vid_t s, vid_t t, int k);

}  // namespace peek::ksp
