#include "ksp/path_set.hpp"

#include <algorithm>

namespace peek::ksp {

bool CandidateSet::push(Path path, int dev_index) {
  if (path.empty()) return false;
  if (!seen_.insert(path).second) return false;
  heap_.push_back({std::move(path), dev_index});
  std::push_heap(heap_.begin(), heap_.end(), Greater{});
  return true;
}

std::vector<Path> CandidateSet::seen_paths() const {
  std::vector<Path> out(seen_.begin(), seen_.end());
  std::sort(out.begin(), out.end(), PathLess{});
  return out;
}

void CandidateSet::restore(std::vector<Candidate> pending,
                           std::vector<Path> seen) {
  heap_ = std::move(pending);
  std::make_heap(heap_.begin(), heap_.end(), Greater{});
  seen_.clear();
  for (Path& p : seen) seen_.insert(std::move(p));
}

std::optional<Candidate> CandidateSet::pop_min() {
  if (heap_.empty()) return std::nullopt;
  std::pop_heap(heap_.begin(), heap_.end(), Greater{});
  Candidate c = std::move(heap_.back());
  heap_.pop_back();
  return c;
}

}  // namespace peek::ksp
