#include "ksp/path_set.hpp"

#include <algorithm>

namespace peek::ksp {

bool CandidateSet::push(Path path, int dev_index) {
  if (path.empty()) return false;
  if (!seen_.insert(path).second) return false;
  heap_.push_back({std::move(path), dev_index});
  std::push_heap(heap_.begin(), heap_.end(), Greater{});
  return true;
}

std::optional<Candidate> CandidateSet::pop_min() {
  if (heap_.empty()) return std::nullopt;
  std::pop_heap(heap_.begin(), heap_.end(), Greater{});
  Candidate c = std::move(heap_.back());
  heap_.pop_back();
  return c;
}

}  // namespace peek::ksp
