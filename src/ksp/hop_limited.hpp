// Hop-limited KSP: the K cheapest simple s->t paths using at most H edges
// each. Yen's deviation framework is oblivious to HOW the shortest suffix is
// found, so plugging the hop-budgeted DP (sssp/hop_limited) into the shared
// engine — with the remaining budget H minus the prefix length — yields the
// constrained variant directly.
#pragma once

#include "ksp/path_set.hpp"
#include "sssp/view.hpp"

namespace peek::ksp {

using sssp::BiView;

struct HopLimitedKspOptions {
  KspOptions base;
  int max_hops = 8;
};

KspResult hop_limited_ksp(const BiView& g, vid_t s, vid_t t,
                          const HopLimitedKspOptions& opts);
KspResult hop_limited_ksp(const graph::CsrGraph& g, vid_t s, vid_t t, int k,
                          int max_hops);

}  // namespace peek::ksp
