// ALT (A*, Landmarks, Triangle inequality — Goldberg & Harrelson): landmark
// distance tables turned into admissible A* heuristics for point-to-point
// queries. Complements bidirectional Dijkstra as the repeated-query
// primitive of the library: pay L SSSPs once, then every query explores a
// fraction of the graph.
#pragma once

#include <vector>

#include "sssp/path.hpp"

namespace peek::sssp {

struct AltOptions {
  int landmarks = 8;
  /// Farthest-point selection start seed.
  std::uint64_t seed = 1;
};

class AltOracle {
 public:
  using Options = AltOptions;

  /// Preprocesses: selects landmarks by farthest-point traversal and stores
  /// forward/backward distance tables (2·L SSSPs).
  AltOracle(const graph::CsrGraph& g, const AltOptions& opts = {});

  /// Admissible lower bound on dist(v, t).
  weight_t heuristic(vid_t v, vid_t t) const;

  /// Point-to-point A* query. Returns the exact shortest path (empty when
  /// unreachable) and counts settled vertices for benchmarking.
  struct QueryResult {
    Path path;
    vid_t settled = 0;
  };
  QueryResult query(vid_t s, vid_t t) const;

  const std::vector<vid_t>& landmarks() const { return landmarks_; }

 private:
  const graph::CsrGraph* g_;
  std::vector<vid_t> landmarks_;
  /// from_[l][v] = dist(landmark_l -> v); to_[l][v] = dist(v -> landmark_l).
  std::vector<std::vector<weight_t>> from_;
  std::vector<std::vector<weight_t>> to_;
};

}  // namespace peek::sssp
