// Δ-stepping (Meyer & Sanders 2003): the parallel SSSP used throughout PeeK
// (§6.2). Vertices are grouped into distance buckets of width Δ; each bucket
// is relaxed in parallel (light edges iteratively, heavy edges once), giving
// data parallelism instead of Dijkstra's one-vertex-at-a-time order.
#pragma once

#include "sssp/dijkstra.hpp"

namespace peek::sssp {

struct DeltaSteppingOptions {
  /// Bucket width. <= 0 selects automatically (max edge weight / 8, bounded
  /// below, which approximates the average-weight heuristic of the paper's
  /// implementations).
  weight_t delta = 0;
  vid_t target = kNoVertex;  // optional early exit once the bucket front
                             // exceeds dist[target]
  Bans bans;
  bool parallel = true;  // false = exact same algorithm, serial loops
  /// Edge tiling (the lonestar `deltaTile` variant): relaxation of a vertex
  /// whose degree exceeds `tile_size` is split into fixed-size edge tiles so
  /// dynamic scheduling load-balances skewed frontiers — one hub no longer
  /// serializes a whole phase behind a single worker. Distances and parents
  /// are bit-identical either way (relaxations are commutative atomic-min
  /// updates; parents come from the deterministic post-sweep). Only
  /// meaningful when `parallel`.
  bool tiled = true;
  int tile_size = 256;  // edges per tile (also the degree split threshold)
  /// Tile even when the parallel backend has a single worker. With one
  /// worker there is nothing to balance and the tile build is pure
  /// overhead, so `tiled` alone skips it; bit-identity tests set this to
  /// exercise the tile-splitting machinery on any machine.
  bool tile_single_worker = false;
  /// Cooperative cancellation, polled at bucket/phase boundaries (the
  /// fork/join grain — never inside a parallel region). Null = never.
  const fault::CancelToken* cancel = nullptr;
};

/// SSSP from `source` over `view`. Distances match Dijkstra bit-for-bit on
/// the same view; parents form a valid shortest-path tree.
SsspResult delta_stepping(const GraphView& view, vid_t source,
                          const DeltaSteppingOptions& opts = {});

/// Δ-stepping on the reverse graph (distances TO `target`).
SsspResult reverse_delta_stepping(const CsrGraph& g, vid_t target,
                                  const DeltaSteppingOptions& opts = {});

}  // namespace peek::sssp
