#include "sssp/scratch.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace peek::sssp {

void SsspScratch::bind(vid_t n) {
  if (n == n_ && dist_ != nullptr) return;
  arena_.reset();
  n_ = n;
  const auto count = static_cast<std::size_t>(n);
  dist_ = arena_.alloc_array<weight_t>(count);
  parent_ = arena_.alloc_array<vid_t>(count);
  std::fill(dist_, dist_ + count, kInfDist);
  std::fill(parent_, parent_ + count, kNoVertex);
  fresh_ = true;
}

void SsspScratch::begin_pass() {
  if (!fresh_) {
    // What the baseline pays per pass and this scratch does not: allocating
    // and kInfDist-filling fresh n-sized dist/parent vectors.
    reused_ +=
        static_cast<std::size_t>(n_) * (sizeof(weight_t) + sizeof(vid_t));
  }
  fresh_ = false;
  const auto count = static_cast<std::size_t>(n_);
  std::fill(dist_, dist_ + count, kInfDist);
  std::fill(parent_, parent_ + count, kNoVertex);
  heap_.clear();
}

namespace {

/// priority_queue<HeapEntry, vector, greater<>> in dijkstra.cpp compares
/// entries with operator> on dist; this is that comparator, verbatim, so the
/// heap pops in the identical order.
struct HeapGreater {
  bool operator()(const detail::ScratchHeapEntry& a,
                  const detail::ScratchHeapEntry& b) const {
    return a.dist > b.dist;
  }
};

}  // namespace

Path dijkstra_path(const GraphView& view, vid_t source,
                   const DijkstraOptions& opts, SsspScratch& scratch,
                   fault::Status::Code* status) {
  if (status) *status = fault::Status::kOk;
  Path out;
  const vid_t n = view.num_vertices();
  if (source < 0 || source >= n) return out;
  if (!view.vertex_alive(source) || opts.bans.vertex_banned(source)) return out;
  const vid_t target = opts.target;
  if (target < 0 || target >= n) return out;

  scratch.bind(n);
  scratch.begin_pass();

  // The loop below is dijkstra() from dijkstra.cpp with r.dist/r.parent
  // replaced by the epoch-stamped scratch reads — keep the two in lockstep
  // (same heap discipline, same stale check, same early exit) or the
  // bit-identity contract in the header comment breaks.
  std::int64_t settled = 0, relaxed = 0, improved = 0;
  fault::CancelPoll poll(opts.cancel);
  auto& heap = scratch.heap();
  weight_t* const dist = scratch.dist_data();
  vid_t* const parent = scratch.parent_data();
  dist[source] = 0;
  heap.push_back({0, source});
  fault::Status::Code st = fault::Status::kOk;
  while (!heap.empty()) {
    const auto [d, u] = heap.front();
    std::pop_heap(heap.begin(), heap.end(), HeapGreater{});
    heap.pop_back();
    if (d > dist[u]) continue;  // stale lazy-deleted entry
    if (poll.should_stop()) {
      st = poll.why();
      break;
    }
    settled++;
    if (u == target) break;
    for (eid_t e = view.edge_begin(u); e < view.edge_end(u); ++e) {
      if (!view.edge_alive(e) || opts.bans.edge_banned(e)) continue;
      const vid_t v = view.edge_target(e);
      if (!view.vertex_alive(v) || opts.bans.vertex_banned(v)) continue;
      relaxed++;
      const weight_t nd = d + view.edge_weight(e);
      const weight_t dv = dist[v];
      if (nd < dv) {
        dist[v] = nd;
        parent[v] = u;
        heap.push_back({nd, v});
        std::push_heap(heap.begin(), heap.end(), HeapGreater{});
        improved++;
      }
    }
  }
  PEEK_COUNT_INC("sssp.dijkstra.runs");
  PEEK_COUNT_ADD("sssp.dijkstra.settled", settled);
  PEEK_COUNT_ADD("sssp.dijkstra.relaxed_edges", relaxed);
  PEEK_COUNT_ADD("sssp.dijkstra.improved", improved);
  if (status) *status = st;

  // path_from_parents over the scratch tree.
  if (scratch.dist(target) == kInfDist) return out;
  std::vector<vid_t> rev;
  for (vid_t v = target; v != kNoVertex; v = scratch.parent(v)) {
    rev.push_back(v);
    if (v == source) break;
    if (rev.size() > static_cast<std::size_t>(n)) return {};  // defensive
  }
  if (rev.back() != source) return {};
  out.verts.assign(rev.rbegin(), rev.rend());
  out.dist = scratch.dist(target);
  return out;
}

}  // namespace peek::sssp
