// Path value type + utilities shared by every KSP algorithm: reconstruction
// from forward/reverse parent arrays, concatenation, simplicity checks, and
// the parallel hash-based validation used in K-upper-bound identification
// (§6.1, "path validation").
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sssp/dijkstra.hpp"

namespace peek::sssp {

/// A directed path as an explicit vertex sequence plus its total distance.
struct Path {
  std::vector<vid_t> verts;
  weight_t dist = kInfDist;

  bool empty() const { return verts.empty(); }
  size_t hops() const { return verts.empty() ? 0 : verts.size() - 1; }

  bool operator==(const Path& o) const { return verts == o.verts; }
};

/// Orders by distance, then lexicographically for determinism.
struct PathLess {
  bool operator()(const Path& a, const Path& b) const {
    if (a.dist != b.dist) return a.dist < b.dist;
    return a.verts < b.verts;
  }
};

struct PathHash {
  size_t operator()(const Path& p) const;
};

/// Path s -> t from a forward SSSP's parent array (empty if unreachable).
Path path_from_parents(const SsspResult& sssp, vid_t s, vid_t t);

/// Path v -> t from a REVERSE SSSP's parent array: reverse_dijkstra(g, t)
/// yields parent[v] = v's successor toward t, so the path reads forward.
Path path_from_reverse_parents(const SsspResult& rev, vid_t v, vid_t t);

/// prefix ++ suffix where prefix.back() == suffix.front(); distances add.
Path concat(const Path& prefix, const Path& suffix);

/// No repeated vertex (Definition 1's looplessness requirement).
bool is_simple(const Path& p);

/// True if combining the source-tree path s->v and the target-tree path v->t
/// repeats no vertex — the §4.1 validity check. The target-path vertices are
/// hash-checked against the source path; with OpenMP the membership probes
/// run in parallel (embarrassingly parallel, Figure 7).
bool combined_path_is_simple(const SsspResult& fwd, const SsspResult& rev,
                             vid_t s, vid_t v, vid_t t);

/// The combined s->v->t path itself (empty when either half is unreachable).
Path combined_path(const SsspResult& fwd, const SsspResult& rev, vid_t s,
                   vid_t v, vid_t t);

/// Recomputes the distance of `p` over `g`; kInfDist if an edge is missing.
weight_t path_distance(const graph::CsrGraph& g, const std::vector<vid_t>& verts);

/// "s -> a -> b -> t (3.25)" rendering for logs and examples.
std::string to_string(const Path& p);

}  // namespace peek::sssp
