#include "sssp/bellman_ford.hpp"

namespace peek::sssp {

SsspResult bellman_ford(const CsrGraph& g, vid_t source) {
  const vid_t n = g.num_vertices();
  SsspResult r;
  r.dist.assign(static_cast<size_t>(n), kInfDist);
  r.parent.assign(static_cast<size_t>(n), kNoVertex);
  if (source < 0 || source >= n) return r;
  r.dist[source] = 0;
  for (vid_t round = 0; round < n; ++round) {
    bool changed = false;
    for (vid_t u = 0; u < n; ++u) {
      if (r.dist[u] == kInfDist) continue;
      for (eid_t e = g.edge_begin(u); e < g.edge_end(u); ++e) {
        const vid_t v = g.edge_target(e);
        const weight_t nd = r.dist[u] + g.edge_weight(e);
        if (nd < r.dist[v]) {
          r.dist[v] = nd;
          r.parent[v] = u;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return r;
}

}  // namespace peek::sssp
