#include "sssp/bidirectional.hpp"

#include <queue>

namespace peek::sssp {

namespace {

struct HeapEntry {
  weight_t d;
  vid_t v;
  bool operator>(const HeapEntry& o) const { return d > o.d; }
};

using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

/// One side of the search.
struct Side {
  GraphView view;
  std::vector<weight_t> dist;
  std::vector<vid_t> parent;
  std::vector<std::uint8_t> settled;
  MinHeap heap;

  explicit Side(GraphView v, vid_t source)
      : view(v), dist(static_cast<size_t>(v.num_vertices()), kInfDist),
        parent(static_cast<size_t>(v.num_vertices()), kNoVertex),
        settled(static_cast<size_t>(v.num_vertices()), 0) {
    dist[source] = 0;
    heap.push({0, source});
  }

  weight_t top_key() const { return heap.empty() ? kInfDist : heap.top().d; }

  /// Settles one vertex; returns it (or kNoVertex when exhausted).
  vid_t step(vid_t* settled_count) {
    while (!heap.empty()) {
      const auto [d, u] = heap.top();
      heap.pop();
      if (settled[u] || d > dist[u]) continue;
      settled[u] = 1;
      (*settled_count)++;
      for (eid_t e = view.edge_begin(u); e < view.edge_end(u); ++e) {
        const vid_t w = view.edge_target(e);
        const weight_t nd = d + view.edge_weight(e);
        if (nd < dist[w]) {
          dist[w] = nd;
          parent[w] = u;
          heap.push({nd, w});
        }
      }
      return u;
    }
    return kNoVertex;
  }
};

}  // namespace

BidirResult bidirectional_dijkstra(const graph::CsrGraph& g, vid_t s, vid_t t) {
  BidirResult result;
  const vid_t n = g.num_vertices();
  if (s < 0 || s >= n || t < 0 || t >= n) return result;
  if (s == t) {
    result.dist = 0;
    result.path = {{s}, 0};
    result.meeting_vertex = s;
    return result;
  }
  Side fwd(GraphView(g), s);
  Side bwd(GraphView(g.reverse()), t);

  weight_t best = kInfDist;
  vid_t meet = kNoVertex;
  auto consider = [&](vid_t u) {
    if (fwd.dist[u] == kInfDist || bwd.dist[u] == kInfDist) return;
    const weight_t total = fwd.dist[u] + bwd.dist[u];
    if (total < best) {
      best = total;
      meet = u;
    }
  };

  // Alternate settles; stop when the sum of both frontiers exceeds the best
  // meeting distance (the classic correct termination rule).
  while (fwd.top_key() + bwd.top_key() < best) {
    Side& side = fwd.top_key() <= bwd.top_key() ? fwd : bwd;
    const vid_t u = side.step(&result.settled);
    if (u == kNoVertex) break;
    consider(u);
    // Also consider freshly relaxed neighbours reachable from both sides.
    for (eid_t e = side.view.edge_begin(u); e < side.view.edge_end(u); ++e)
      consider(side.view.edge_target(e));
  }

  if (meet == kNoVertex) return result;
  result.dist = best;
  result.meeting_vertex = meet;
  // Stitch the two half-paths: s -> meet from fwd parents, meet -> t by
  // walking bwd parents forward.
  std::vector<vid_t> first_half;
  for (vid_t u = meet; u != kNoVertex; u = fwd.parent[u]) first_half.push_back(u);
  result.path.verts.assign(first_half.rbegin(), first_half.rend());
  for (vid_t u = bwd.parent[meet]; u != kNoVertex; u = bwd.parent[u])
    result.path.verts.push_back(u);
  result.path.dist = best;
  if (result.path.verts.front() != s || result.path.verts.back() != t) {
    result.path = {};  // defensive; should not happen
  }
  return result;
}

}  // namespace peek::sssp
