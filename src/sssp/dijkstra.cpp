#include "sssp/dijkstra.hpp"

#include <queue>

#include "obs/metrics.hpp"

namespace peek::sssp {

namespace {

struct HeapEntry {
  weight_t dist;
  vid_t v;
  bool operator>(const HeapEntry& o) const { return dist > o.dist; }
};

using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

}  // namespace

SsspResult dijkstra(const GraphView& view, vid_t source,
                    const DijkstraOptions& opts) {
  const vid_t n = view.num_vertices();
  SsspResult r;
  r.dist.assign(static_cast<size_t>(n), kInfDist);
  r.parent.assign(static_cast<size_t>(n), kNoVertex);
  if (source < 0 || source >= n) return r;
  if (!view.vertex_alive(source) || opts.bans.vertex_banned(source)) return r;

  // Hot loop: counts accumulate in locals, one sharded add on exit.
  std::int64_t settled = 0, relaxed = 0, improved = 0;
  fault::CancelPoll poll(opts.cancel);
  MinHeap heap;
  r.dist[source] = 0;
  heap.push({0, source});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > r.dist[u]) continue;  // stale lazy-deleted entry
    if (poll.should_stop()) {
      r.status = poll.why();
      break;
    }
    settled++;
    if (u == opts.target) break;
    for (eid_t e = view.edge_begin(u); e < view.edge_end(u); ++e) {
      if (!view.edge_alive(e) || opts.bans.edge_banned(e)) continue;
      const vid_t v = view.edge_target(e);
      if (!view.vertex_alive(v) || opts.bans.vertex_banned(v)) continue;
      relaxed++;
      const weight_t nd = d + view.edge_weight(e);
      if (nd < r.dist[v]) {
        r.dist[v] = nd;
        r.parent[v] = u;
        heap.push({nd, v});
        improved++;
      }
    }
  }
  PEEK_COUNT_INC("sssp.dijkstra.runs");
  PEEK_COUNT_ADD("sssp.dijkstra.settled", settled);
  PEEK_COUNT_ADD("sssp.dijkstra.relaxed_edges", relaxed);
  PEEK_COUNT_ADD("sssp.dijkstra.improved", improved);
  return r;
}

SsspResult reverse_dijkstra(const CsrGraph& g, vid_t target,
                            const DijkstraOptions& opts) {
  GraphView rev(g.reverse());
  return dijkstra(rev, target, opts);
}

weight_t shortest_distance(const CsrGraph& g, vid_t s, vid_t t) {
  DijkstraOptions opts;
  opts.target = t;
  return dijkstra(GraphView(g), s, opts).dist[t];
}

}  // namespace peek::sssp
