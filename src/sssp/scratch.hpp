// Arena-backed scratch state for the Yen-family deviation SSSPs. Every
// candidate path costs one restricted point-to-point Dijkstra; computing it
// through `SsspResult` means two O(n) vector allocations plus an O(n)
// kInfDist fill per candidate. `SsspScratch` keeps dist/parent arrays (same
// packed layout as SsspResult — interleaving them doubles the read-side
// cache footprint of the relax loop) plus the lazy-deletion heap's storage
// in a per-worker ScratchArena keyed by graph size, so the hot loop is the
// baseline's with zero per-call allocation — in particular the heap vector
// keeps its capacity across candidates instead of re-growing through a
// realloc-copy chain per SSSP. `dijkstra_path` runs the exact same
// algorithm as
// `dijkstra()` over that scratch, returning only the source->target path —
// bit-identical to `dijkstra()` + `path_from_parents()` (same heap, same
// tie-breaking), without materializing the tree.
//
// Lifetime rules (DESIGN.md §11): a SsspScratch belongs to exactly one
// worker thread; bind() before use (idempotent for an unchanged vertex
// count); buffers are valid between passes but every pass starts with
// begin_pass(), which invalidates all previously written distances.
#pragma once

#include <vector>

#include "parallel/arena.hpp"
#include "sssp/path.hpp"

namespace peek::sssp {

namespace detail {
/// Same layout and ordering as dijkstra()'s lazy-deletion heap entries.
struct ScratchHeapEntry {
  weight_t dist;
  vid_t v;
};

}  // namespace detail

class SsspScratch {
 public:
  /// Ensures capacity for an n-vertex graph. Rebinding to a different n
  /// resets the arena (same-or-smaller graphs reuse the reserved blocks) and
  /// pays one O(n) fill; rebinding to the same n is free.
  void bind(vid_t n);

  /// Logical reset: every dist becomes kInfDist again, every parent
  /// kNoVertex. A sequential vectorized refill — measured faster than
  /// touched-list bookkeeping, whose per-improvement "first write?" branch
  /// mispredicts in the relax loop (data-dependent at ~uniform rate).
  void begin_pass();

  weight_t dist(vid_t v) const { return dist_[v]; }
  vid_t parent(vid_t v) const { return parent_[v]; }
  void set(vid_t v, weight_t d, vid_t p) {
    dist_[v] = d;
    parent_[v] = p;
  }

  vid_t bound_vertices() const { return n_; }

  /// Bytes of dist/parent the baseline would have allocated and filled but
  /// this scratch served from the arena, cumulative over every begin_pass()
  /// after the first — the `ksp.arena.reuse_bytes` source.
  std::size_t reused_bytes() const { return reused_; }

  /// The lazy-deletion heap storage, cleared by begin_pass() (capacity kept).
  std::vector<detail::ScratchHeapEntry>& heap() { return heap_; }

  /// Raw access for the dijkstra_path hot loop: working through locals keeps
  /// the array pointers in registers across the heap push_backs (the compiler
  /// cannot prove a vector's internal writes don't alias a member pointer).
  weight_t* dist_data() { return dist_; }
  vid_t* parent_data() { return parent_; }

 private:
  par::ScratchArena arena_;
  vid_t n_ = 0;
  weight_t* dist_ = nullptr;
  vid_t* parent_ = nullptr;
  bool fresh_ = true;  // no pass has run since the last (re)bind
  std::size_t reused_ = 0;
  std::vector<detail::ScratchHeapEntry> heap_;
};

/// Shortest path source -> opts.target over `view`, computed in `scratch`.
/// Bit-identical to `path_from_parents(dijkstra(view, source, opts),
/// source, opts.target)`; empty when unreachable or opts.target is unset.
/// When `status` is non-null it receives kOk or the cancellation code (a
/// cancelled call extracts from the partial tree, exactly like the
/// SsspResult path — callers decide whether to discard).
Path dijkstra_path(const GraphView& view, vid_t source,
                   const DijkstraOptions& opts, SsspScratch& scratch,
                   fault::Status::Code* status = nullptr);

}  // namespace peek::sssp
