// Dijkstra's algorithm with a lazy-deletion binary heap, early exit, and
// vertex/edge ban masks. This is the serial SSSP workhorse of the Yen-family
// algorithms: bans let them "remove" prefix vertices and deviation edges
// without mutating the graph (Algorithm 1, lines 6 and 10).
#pragma once

#include <unordered_set>
#include <vector>

#include "fault/cancel.hpp"
#include "sssp/view.hpp"

namespace peek::sssp {

/// Distances + shortest-path-tree parents from one source.
struct SsspResult {
  std::vector<weight_t> dist;   // kInfDist when unreachable
  std::vector<vid_t> parent;    // kNoVertex for source / unreachable
  /// kOk, or kCancelled/kDeadlineExceeded when a CancelToken stopped the run
  /// early — dist/parent then hold a valid partial tree (settled prefix);
  /// unsettled vertices may carry overestimates. Consumers must not treat a
  /// non-kOk tree as shortest.
  fault::Status::Code status = fault::Status::kOk;
};

/// Temporary exclusions applied on top of a GraphView.
struct Bans {
  /// Byte per vertex; nonzero = banned. May be null.
  const std::uint8_t* vertices = nullptr;
  /// Banned forward-CSR edge indices. May be null.
  const std::unordered_set<eid_t>* edges = nullptr;

  bool vertex_banned(vid_t v) const { return vertices && vertices[v]; }
  bool edge_banned(eid_t e) const { return edges && edges->count(e) > 0; }
};

struct DijkstraOptions {
  /// Stop as soon as this vertex is settled (kNoVertex = settle everything).
  vid_t target = kNoVertex;
  Bans bans;
  /// Cooperative cancellation, polled once per settled vertex (clock reads
  /// strided — see fault/cancel.hpp). Null = never cancelled.
  const fault::CancelToken* cancel = nullptr;
};

/// Full SSSP from `source` over `view`.
SsspResult dijkstra(const GraphView& view, vid_t source,
                    const DijkstraOptions& opts = {});

/// SSSP on the reverse graph: result.dist[v] is the shortest distance from v
/// TO `target` in the original orientation; parent[v] is v's successor on
/// that path (the reverse shortest-path tree of §4.1 / OptYen).
SsspResult reverse_dijkstra(const CsrGraph& g, vid_t target,
                            const DijkstraOptions& opts = {});

/// Shortest s->t distance only (early-exit convenience).
weight_t shortest_distance(const CsrGraph& g, vid_t s, vid_t t);

}  // namespace peek::sssp
