// Resumable / tree-seeded Dijkstra — the SSSP engine behind SB* (§8).
//
// SB* avoids recomputing a reverse shortest-path tree from scratch: when the
// candidate's prefix changes, distances that are unaffected by the newly
// banned vertices are kept, the poisoned subtree is invalidated, and the
// search resumes from the surviving frontier. This class implements both that
// "repair" seeding and plain incremental settling.
#pragma once

#include <unordered_set>
#include <vector>

#include "sssp/dijkstra.hpp"

namespace peek::sssp {

class ResumableDijkstra {
 public:
  /// Fresh search from `source`. `bans` must outlive the object.
  ResumableDijkstra(const GraphView& view, vid_t source, Bans bans = {});

  /// Repair-seeded search: starts from `base` (a complete SSSP tree computed
  /// with FEWER bans), invalidates every vertex whose tree path runs through
  /// a now-banned vertex or edge, and re-opens the frontier. Settling then
  /// only re-explores the poisoned region (the SB* trick).
  ResumableDijkstra(const GraphView& view, vid_t source, const SsspResult& base,
                    Bans bans);

  /// Cone-repair seeding (dyn/repair.hpp): `view` is the POST-mutation graph
  /// and `rview` its transpose; `base` is a complete pre-mutation tree from
  /// the same source. Every vertex with base.dist < threshold is provably
  /// unaffected by the mutation (dyn::cone_threshold) and is kept settled;
  /// the frontier re-opens by relaxing the surviving tails of each poisoned
  /// vertex's in-edges — O(cone-incident edges), not O(survivor edges).
  /// run_to_completion() then yields the exact post-mutation tree.
  ResumableDijkstra(const GraphView& view, const GraphView& rview, vid_t source,
                    const SsspResult& base, weight_t threshold);

  /// Runs until `v` is settled (or the heap empties). Returns dist[v].
  weight_t ensure_settled(vid_t v);

  /// Runs to completion.
  void run_to_completion();

  bool settled(vid_t v) const { return settled_[v] != 0; }
  weight_t dist(vid_t v) const { return dist_[v]; }
  vid_t parent(vid_t v) const { return parent_[v]; }
  const std::vector<weight_t>& distances() const { return dist_; }
  const std::vector<vid_t>& parents() const { return parent_; }

  /// Snapshot as a plain SsspResult (copies).
  SsspResult snapshot() const { return {dist_, parent_}; }

 private:
  struct Entry {
    weight_t d;
    vid_t v;
    bool operator>(const Entry& o) const { return d > o.d; }
  };

  void relax_out_edges(vid_t u);
  void step();  // settle one vertex

  GraphView view_;
  vid_t source_;
  Bans bans_;
  std::vector<weight_t> dist_;
  std::vector<vid_t> parent_;
  std::vector<std::uint8_t> settled_;
  std::vector<Entry> heap_;  // std::*_heap on a vector, lazy deletion
};

}  // namespace peek::sssp
