#include "sssp/path.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace peek::sssp {

size_t PathHash::operator()(const Path& p) const {
  // FNV-1a over the vertex sequence.
  size_t h = 1469598103934665603ULL;
  for (vid_t v : p.verts) {
    h ^= static_cast<size_t>(v);
    h *= 1099511628211ULL;
  }
  return h;
}

Path path_from_parents(const SsspResult& sssp, vid_t s, vid_t t) {
  Path p;
  if (t < 0 || static_cast<size_t>(t) >= sssp.dist.size()) return p;
  if (sssp.dist[t] == kInfDist) return p;
  std::vector<vid_t> rev;
  for (vid_t v = t; v != kNoVertex; v = sssp.parent[v]) {
    rev.push_back(v);
    if (v == s) break;
    if (rev.size() > sssp.dist.size()) return {};  // defensive: cycle in parents
  }
  if (rev.back() != s) return {};
  p.verts.assign(rev.rbegin(), rev.rend());
  p.dist = sssp.dist[t];
  return p;
}

Path path_from_reverse_parents(const SsspResult& rev, vid_t v, vid_t t) {
  Path p;
  if (v < 0 || static_cast<size_t>(v) >= rev.dist.size()) return p;
  if (rev.dist[v] == kInfDist) return p;
  for (vid_t u = v; u != kNoVertex; u = rev.parent[u]) {
    p.verts.push_back(u);
    if (u == t) break;
    if (p.verts.size() > rev.dist.size()) return {};
  }
  if (p.verts.back() != t) return {};
  p.dist = rev.dist[v];
  return p;
}

Path concat(const Path& prefix, const Path& suffix) {
  Path p;
  if (prefix.empty() || suffix.empty()) return p;
  if (prefix.verts.back() != suffix.verts.front()) return p;
  p.verts = prefix.verts;
  p.verts.insert(p.verts.end(), suffix.verts.begin() + 1, suffix.verts.end());
  p.dist = prefix.dist + suffix.dist;
  return p;
}

bool is_simple(const Path& p) {
  std::unordered_set<vid_t> seen;
  seen.reserve(p.verts.size() * 2);
  for (vid_t v : p.verts) {
    if (!seen.insert(v).second) return false;
  }
  return true;
}

bool combined_path_is_simple(const SsspResult& fwd, const SsspResult& rev,
                             vid_t s, vid_t v, vid_t t) {
  if (fwd.dist[v] == kInfDist || rev.dist[v] == kInfDist) return false;
  // Source half s -> v (via forward parents).
  std::unordered_set<vid_t> src_half;
  for (vid_t u = v; u != kNoVertex; u = fwd.parent[u]) {
    src_half.insert(u);
    if (u == s) break;
  }
  // Probe the target half v -> t against it; the halves share exactly `v`.
  bool clash = false;
  for (vid_t u = rev.parent[v]; u != kNoVertex && !clash; u = rev.parent[u]) {
    if (src_half.count(u)) clash = true;
    if (u == t) break;
  }
  return !clash;
}

Path combined_path(const SsspResult& fwd, const SsspResult& rev, vid_t s,
                   vid_t v, vid_t t) {
  Path a = path_from_parents(fwd, s, v);
  Path b = path_from_reverse_parents(rev, v, t);
  return concat(a, b);
}

weight_t path_distance(const graph::CsrGraph& g, const std::vector<vid_t>& verts) {
  if (verts.empty()) return kInfDist;
  weight_t sum = 0;
  for (size_t i = 0; i + 1 < verts.size(); ++i) {
    const eid_t e = g.find_edge(verts[i], verts[i + 1]);
    if (e == kNoEdge) return kInfDist;
    sum += g.edge_weight(e);
  }
  return sum;
}

std::string to_string(const Path& p) {
  std::ostringstream os;
  for (size_t i = 0; i < p.verts.size(); ++i) {
    if (i) os << " -> ";
    os << p.verts[i];
  }
  os << " (" << p.dist << ")";
  return os.str();
}

}  // namespace peek::sssp
