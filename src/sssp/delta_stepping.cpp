#include "sssp/delta_stepping.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <vector>

#include "obs/metrics.hpp"
#include "parallel/parallel_for.hpp"

namespace peek::sssp {

namespace {

/// Atomically lowers `slot` to `val` if smaller. Returns true if it won.
bool atomic_min(std::atomic<weight_t>& slot, weight_t val) {
  weight_t cur = slot.load(std::memory_order_relaxed);
  while (val < cur) {
    if (slot.compare_exchange_weak(cur, val, std::memory_order_relaxed))
      return true;
  }
  return false;
}

weight_t auto_delta(const GraphView& view) {
  const weight_t max_w = view.max_edge_weight();
  if (max_w <= 0) return 1.0;
  return std::max<weight_t>(max_w / 8.0, 1e-4);
}

}  // namespace

SsspResult delta_stepping(const GraphView& view, vid_t source,
                          const DeltaSteppingOptions& opts) {
  const vid_t n = view.num_vertices();
  SsspResult r;
  r.dist.assign(static_cast<size_t>(n), kInfDist);
  r.parent.assign(static_cast<size_t>(n), kNoVertex);
  if (source < 0 || source >= n) return r;
  if (!view.vertex_alive(source) || opts.bans.vertex_banned(source)) return r;

  const weight_t delta = opts.delta > 0 ? opts.delta : auto_delta(view);

  std::vector<std::atomic<weight_t>> dist(static_cast<size_t>(n));
  for (vid_t v = 0; v < n; ++v)
    dist[v].store(kInfDist, std::memory_order_relaxed);
  dist[source].store(0, std::memory_order_relaxed);

  // Buckets hold candidate vertices; membership is validated lazily against
  // the distance array (a vertex may appear in several buckets; only the one
  // matching its current distance processes it).
  std::vector<std::vector<vid_t>> buckets;
  auto bucket_of = [delta](weight_t d) {
    return static_cast<size_t>(d / delta);
  };
  auto push_bucket = [&buckets, bucket_of](vid_t v, weight_t d) {
    const size_t b = bucket_of(d);
    if (b >= buckets.size()) buckets.resize(b + 1);
    buckets[b].push_back(v);
  };
  push_bucket(source, 0);

  // A unit of relaxation work: one vertex's edges, or a fixed-size slice of
  // a high-degree vertex's edges when tiling splits it (deltaTile).
  struct EdgeTile {
    vid_t u;
    eid_t begin, end;
  };
  const auto tile_size =
      static_cast<eid_t>(opts.tile_size > 0 ? opts.tile_size : 256);
  std::vector<EdgeTile> tiles;  // reused across phases

  auto relax_edges = [&](const std::vector<vid_t>& frontier, bool light,
                         std::vector<vid_t>& out) {
    // Per-thread request buffers avoid contention on `out`.
    const int nt = opts.parallel ? par::max_threads() : 1;
    std::vector<std::vector<vid_t>> local(static_cast<size_t>(nt));
    auto relax_range = [&](vid_t u, eid_t e_begin, eid_t e_end) {
      const weight_t du = dist[u].load(std::memory_order_relaxed);
      // In serial mode thread_id() may still be nonzero (this SSSP can run
      // inside an outer parallel region); always use slot 0 then.
      std::vector<vid_t>& mine =
          local[opts.parallel ? static_cast<size_t>(par::thread_id()) : 0];
      std::int64_t relaxed = 0, improved = 0;
      for (eid_t e = e_begin; e < e_end; ++e) {
        if (!view.edge_alive(e) || opts.bans.edge_banned(e)) continue;
        const weight_t w = view.edge_weight(e);
        if (light != (w <= delta)) continue;
        const vid_t v = view.edge_target(e);
        if (!view.vertex_alive(v) || opts.bans.vertex_banned(v)) continue;
        relaxed++;
        if (atomic_min(dist[v], du + w)) {
          improved++;
          mine.push_back(v);
        }
      }
      PEEK_COUNT_ADD("sssp.delta.relaxed_edges", relaxed);
      PEEK_COUNT_ADD("sssp.delta.improved", improved);
    };
    // Tiling exists to share frontier hubs across workers; with one worker
    // there is nothing to balance and the tile build is pure overhead.
    const bool tile = opts.tiled && opts.parallel &&
                      (opts.tile_single_worker || par::max_threads() > 1);
    if (tile) {
      // deltaTile: one work item per <= tile_size edges, so a frontier hub
      // is shared across workers instead of serializing the phase.
      tiles.clear();
      for (vid_t u : frontier) {
        const eid_t lo = view.edge_begin(u), hi = view.edge_end(u);
        if (hi - lo <= tile_size) {
          tiles.push_back({u, lo, hi});
          continue;
        }
        for (eid_t e = lo; e < hi; e += tile_size)
          tiles.push_back({u, e, std::min<eid_t>(e + tile_size, hi)});
      }
      PEEK_COUNT_ADD("sssp.tiles", tiles.size());
      par::parallel_for_dynamic(
          size_t{0}, tiles.size(),
          [&](size_t i) {
            const EdgeTile& tl = tiles[i];
            relax_range(tl.u, tl.begin, tl.end);
          },
          /*chunk=*/4);
    } else if (opts.parallel) {
      par::parallel_for_dynamic(size_t{0}, frontier.size(), [&](size_t i) {
        const vid_t u = frontier[i];
        relax_range(u, view.edge_begin(u), view.edge_end(u));
      });
    } else {
      for (const vid_t u : frontier)
        relax_range(u, view.edge_begin(u), view.edge_end(u));
    }
    for (auto& buf : local) out.insert(out.end(), buf.begin(), buf.end());
  };

  PEEK_COUNT_INC("sssp.delta.runs");
  fault::CancelPoll poll(opts.cancel, /*stride=*/16);
  for (size_t bi = 0; bi < buckets.size() && r.status == fault::Status::kOk;
       ++bi) {
    // Early exit: every future settle is >= bi*delta.
    if (opts.target != kNoVertex &&
        dist[opts.target].load(std::memory_order_relaxed) <=
            static_cast<weight_t>(bi) * delta)
      break;
    std::vector<vid_t> settled;  // every vertex processed from bucket bi
    std::vector<vid_t> current;
    current.swap(buckets[bi]);
    if (!current.empty()) PEEK_COUNT_INC("sssp.delta.buckets");
    while (!current.empty()) {
      if (poll.should_stop()) {
        r.status = poll.why();
        break;
      }
      PEEK_COUNT_INC("sssp.delta.light_phases");
      // Keep only vertices whose distance still maps to this bucket.
      std::vector<vid_t> frontier;
      frontier.reserve(current.size());
      for (vid_t v : current) {
        const weight_t d = dist[v].load(std::memory_order_relaxed);
        if (d != kInfDist && bucket_of(d) == bi) frontier.push_back(v);
      }
      if (frontier.empty()) break;
      settled.insert(settled.end(), frontier.begin(), frontier.end());
      std::vector<vid_t> updated;
      relax_edges(frontier, /*light=*/true, updated);
      current.clear();
      for (vid_t v : updated) {
        const weight_t d = dist[v].load(std::memory_order_relaxed);
        if (bucket_of(d) == bi)
          current.push_back(v);  // re-relax within this bucket
        else
          push_bucket(v, d);
      }
      // `buckets` may have grown; re-check index validity is implicit since
      // we only touch bucket bi here.
    }
    // Heavy edges once per settled vertex.
    PEEK_COUNT_ADD("sssp.delta.settled", settled.size());
    std::vector<vid_t> updated;
    relax_edges(settled, /*light=*/false, updated);
    for (vid_t v : updated)
      push_bucket(v, dist[v].load(std::memory_order_relaxed));
  }

  for (vid_t v = 0; v < n; ++v)
    r.dist[v] = dist[v].load(std::memory_order_relaxed);
  if (r.status != fault::Status::kOk) return r;  // partial: skip the O(m) sweep

  // Parent reconstruction: one deterministic O(m) sweep. For every alive edge
  // u->v that is tight (dist[u] + w == dist[v]) keep the smallest such u.
  for (vid_t u = 0; u < n; ++u) {
    if (!view.vertex_alive(u) || opts.bans.vertex_banned(u)) continue;
    const weight_t du = r.dist[u];
    if (du == kInfDist) continue;
    for (eid_t e = view.edge_begin(u); e < view.edge_end(u); ++e) {
      if (!view.edge_alive(e) || opts.bans.edge_banned(e)) continue;
      const vid_t v = view.edge_target(e);
      if (v == source) continue;
      if (!view.vertex_alive(v) || opts.bans.vertex_banned(v)) continue;
      if (du + view.edge_weight(e) == r.dist[v] &&
          (r.parent[v] == kNoVertex || u < r.parent[v]))
        r.parent[v] = u;
    }
  }
  return r;
}

SsspResult reverse_delta_stepping(const CsrGraph& g, vid_t target,
                                  const DeltaSteppingOptions& opts) {
  GraphView rev(g.reverse());
  return delta_stepping(rev, target, opts);
}

}  // namespace peek::sssp
