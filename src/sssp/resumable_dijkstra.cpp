#include "sssp/resumable_dijkstra.hpp"

#include <algorithm>
#include <deque>

namespace peek::sssp {

ResumableDijkstra::ResumableDijkstra(const GraphView& view, vid_t source,
                                     Bans bans)
    : view_(view), source_(source), bans_(bans) {
  const vid_t n = view_.num_vertices();
  dist_.assign(static_cast<size_t>(n), kInfDist);
  parent_.assign(static_cast<size_t>(n), kNoVertex);
  settled_.assign(static_cast<size_t>(n), 0);
  if (source_ < 0 || source_ >= n) return;
  if (!view_.vertex_alive(source_) || bans_.vertex_banned(source_)) return;
  dist_[source_] = 0;
  heap_.push_back({0, source_});
}

ResumableDijkstra::ResumableDijkstra(const GraphView& view, vid_t source,
                                     const SsspResult& base, Bans bans)
    : view_(view), source_(source), bans_(bans) {
  const vid_t n = view_.num_vertices();
  dist_.assign(static_cast<size_t>(n), kInfDist);
  parent_.assign(static_cast<size_t>(n), kNoVertex);
  settled_.assign(static_cast<size_t>(n), 0);
  if (source_ < 0 || source_ >= n) return;
  if (!view_.vertex_alive(source_) || bans_.vertex_banned(source_)) return;

  // Walk the base tree top-down; a vertex survives if it and its tree edge
  // survive the new bans and its parent survived.
  std::vector<std::vector<vid_t>> children(static_cast<size_t>(n));
  for (vid_t v = 0; v < n; ++v) {
    if (v == source_ || base.parent[v] == kNoVertex) continue;
    children[base.parent[v]].push_back(v);
  }
  dist_[source_] = 0;
  settled_[source_] = 1;
  std::deque<vid_t> queue{source_};
  while (!queue.empty()) {
    const vid_t u = queue.front();
    queue.pop_front();
    for (vid_t v : children[u]) {
      if (!view_.vertex_alive(v) || bans_.vertex_banned(v)) continue;
      // The base tree was computed on this same view, so its edges exist and
      // are in range; the (linear) find_edge lookup is only needed when
      // edge-level bans could invalidate one.
      if (bans_.edges != nullptr) {
        const eid_t e = view_.find_edge(u, v);
        if (e == kNoEdge || bans_.edge_banned(e)) continue;
      }
      dist_[v] = base.dist[v];
      parent_[v] = u;
      settled_[v] = 1;
      queue.push_back(v);
    }
  }
  // Re-open the frontier: relax every surviving vertex's out-edges into the
  // invalidated region.
  for (vid_t u = 0; u < n; ++u) {
    if (settled_[u]) relax_out_edges(u);
  }
}

ResumableDijkstra::ResumableDijkstra(const GraphView& view,
                                     const GraphView& rview, vid_t source,
                                     const SsspResult& base, weight_t threshold)
    : view_(view), source_(source) {
  const vid_t n = view_.num_vertices();
  dist_.assign(static_cast<size_t>(n), kInfDist);
  parent_.assign(static_cast<size_t>(n), kNoVertex);
  settled_.assign(static_cast<size_t>(n), 0);
  if (source_ < 0 || source_ >= n) return;
  if (!view_.vertex_alive(source_)) return;

  // Epsilon-widened cone: rounding must only ever grow the poisoned region.
  const weight_t t = threshold == kInfDist
                         ? kInfDist
                         : threshold - (threshold * 1e-12 + 1e-12);
  const vid_t base_n = static_cast<vid_t>(base.dist.size());
  std::vector<vid_t> poisoned;
  for (vid_t v = 0; v < n; ++v) {
    const weight_t d = v < base_n ? base.dist[v] : kInfDist;
    if (d < t && view_.vertex_alive(v)) {
      // Survivor: its tree path stays below the threshold everywhere
      // (distances are monotone along it), so no batch edge touched it.
      dist_[v] = d;
      parent_[v] = v == source_ ? kNoVertex : base.parent[v];
      settled_[v] = 1;
    } else {
      poisoned.push_back(v);
    }
  }
  if (!settled_[source_]) {
    // threshold <= 0: the cone swallowed the root (and with non-negative
    // weights, everything else) — degenerate to a fresh full search.
    dist_[source_] = 0;
    heap_.push_back({0, source_});
    return;
  }
  for (vid_t x : poisoned) {
    if (!view_.vertex_alive(x)) continue;
    for (eid_t e = rview.edge_begin(x); e < rview.edge_end(x); ++e) {
      if (!rview.edge_alive(e)) continue;
      const vid_t u = rview.edge_target(e);
      if (u < 0 || u >= n || !settled_[u]) continue;
      const weight_t nd = dist_[u] + rview.edge_weight(e);
      if (nd < dist_[x]) {
        dist_[x] = nd;
        parent_[x] = u;
        heap_.push_back({nd, x});
        std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
      }
    }
  }
}

void ResumableDijkstra::relax_out_edges(vid_t u) {
  const weight_t du = dist_[u];
  for (eid_t e = view_.edge_begin(u); e < view_.edge_end(u); ++e) {
    if (!view_.edge_alive(e) || bans_.edge_banned(e)) continue;
    const vid_t v = view_.edge_target(e);
    if (!view_.vertex_alive(v) || bans_.vertex_banned(v)) continue;
    if (settled_[v]) continue;
    const weight_t nd = du + view_.edge_weight(e);
    if (nd < dist_[v]) {
      dist_[v] = nd;
      parent_[v] = u;
      heap_.push_back({nd, v});
      std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
    }
  }
}

void ResumableDijkstra::step() {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    const Entry top = heap_.back();
    heap_.pop_back();
    if (settled_[top.v] || top.d > dist_[top.v]) continue;  // stale
    settled_[top.v] = 1;
    relax_out_edges(top.v);
    return;
  }
}

weight_t ResumableDijkstra::ensure_settled(vid_t v) {
  while (!settled_[v] && !heap_.empty()) step();
  return dist_[v];
}

void ResumableDijkstra::run_to_completion() {
  while (!heap_.empty()) step();
}

}  // namespace peek::sssp
