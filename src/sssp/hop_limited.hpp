// Hop-limited shortest path: the cheapest s->t path using at most H edges.
// Needed wherever per-hop costs exist besides the weights — optical routing
// (regeneration limits), satellite networks (latency budgets), toll routing.
// Dijkstra does not apply (a cheaper path may use more hops); the classic
// Bellman–Ford DP over hop counts does, in O(H·m).
#pragma once

#include "sssp/path.hpp"

namespace peek::sssp {

struct HopLimitedResult {
  /// dist[v] = cheapest distance using <= max_hops edges.
  std::vector<weight_t> dist;
  /// Cheapest feasible path to the requested target (empty if none).
  Path path;
};

/// DP over hop layers from `source`. When `target` is valid, `path` is
/// reconstructed (costs O(H·n) extra parent storage only in that case).
HopLimitedResult hop_limited_sssp(const GraphView& view, vid_t source,
                                  int max_hops, vid_t target = kNoVertex,
                                  const Bans& bans = {});

}  // namespace peek::sssp
