#include "sssp/alt.hpp"

#include <algorithm>
#include <queue>
#include <random>

namespace peek::sssp {

AltOracle::AltOracle(const graph::CsrGraph& g, const AltOptions& opts) : g_(&g) {
  const vid_t n = g.num_vertices();
  const int L = std::max(1, std::min<int>(opts.landmarks, n));
  std::mt19937_64 rng(opts.seed);
  std::uniform_int_distribution<vid_t> pick(0, n - 1);

  // Farthest-point selection: each next landmark maximises the minimum
  // distance (in either direction) to the chosen set; unreachable vertices
  // are skipped so landmarks land in the big component.
  std::vector<weight_t> closeness(static_cast<size_t>(n), kInfDist);
  vid_t next = pick(rng);
  // no-cancel: constructor-time preprocessing, bounded by opts.landmarks;
  // the serving path never builds an oracle mid-query
  for (int l = 0; l < L; ++l) {
    landmarks_.push_back(next);
    from_.push_back(dijkstra(GraphView(g), next).dist);
    to_.push_back(dijkstra(GraphView(g.reverse()), next).dist);
    // Update closeness and choose the farthest reachable vertex.
    weight_t best = -1;
    vid_t far = next;
    for (vid_t v = 0; v < n; ++v) {
      const weight_t d = std::min(from_.back()[v], to_.back()[v]);
      closeness[v] = std::min(closeness[v], d);
      if (closeness[v] != kInfDist && closeness[v] > best) {
        best = closeness[v];
        far = v;
      }
    }
    next = far;
  }
}

weight_t AltOracle::heuristic(vid_t v, vid_t t) const {
  // Triangle inequalities, directed form:
  //   d(v,t) >= d(l,t) - d(l,v)   (landmark before)
  //   d(v,t) >= d(v,l) - d(t,l)   (landmark after)
  weight_t h = 0;
  for (size_t l = 0; l < landmarks_.size(); ++l) {
    const weight_t lv = from_[l][v], lt = from_[l][t];
    if (lv != kInfDist && lt != kInfDist) h = std::max(h, lt - lv);
    const weight_t vl = to_[l][v], tl = to_[l][t];
    if (vl != kInfDist && tl != kInfDist) h = std::max(h, vl - tl);
  }
  return h;
}

AltOracle::QueryResult AltOracle::query(vid_t s, vid_t t) const {
  QueryResult result;
  const graph::CsrGraph& g = *g_;
  const vid_t n = g.num_vertices();
  if (s < 0 || s >= n || t < 0 || t >= n) return result;

  struct Entry {
    weight_t f;  // g + h
    vid_t v;
    bool operator>(const Entry& o) const { return f > o.f; }
  };
  std::vector<weight_t> dist(static_cast<size_t>(n), kInfDist);
  std::vector<vid_t> parent(static_cast<size_t>(n), kNoVertex);
  std::vector<std::uint8_t> settled(static_cast<size_t>(n), 0);
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[s] = 0;
  heap.push({heuristic(s, t), s});
  while (!heap.empty()) {
    const auto [f, u] = heap.top();
    heap.pop();
    if (settled[u]) continue;
    settled[u] = 1;
    result.settled++;
    if (u == t) break;
    for (eid_t e = g.edge_begin(u); e < g.edge_end(u); ++e) {
      const vid_t w = g.edge_target(e);
      const weight_t nd = dist[u] + g.edge_weight(e);
      if (nd < dist[w]) {
        dist[w] = nd;
        parent[w] = u;
        heap.push({nd + heuristic(w, t), w});
      }
    }
  }
  result.path = path_from_parents({std::move(dist), std::move(parent)}, s, t);
  return result;
}

}  // namespace peek::sssp
