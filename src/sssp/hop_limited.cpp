#include "sssp/hop_limited.hpp"

namespace peek::sssp {

HopLimitedResult hop_limited_sssp(const GraphView& view, vid_t source,
                                  int max_hops, vid_t target,
                                  const Bans& bans) {
  const vid_t n = view.num_vertices();
  HopLimitedResult r;
  r.dist.assign(static_cast<size_t>(n), kInfDist);
  if (source < 0 || source >= n || max_hops < 0) return r;
  if (!view.vertex_alive(source) || bans.vertex_banned(source)) return r;

  const bool track_parents = target != kNoVertex;
  // parents[h][v] = predecessor of v on the cheapest <= h-hop path.
  std::vector<std::vector<vid_t>> parents;
  if (track_parents)
    parents.assign(static_cast<size_t>(max_hops) + 1,
                   std::vector<vid_t>(static_cast<size_t>(n), kNoVertex));

  std::vector<weight_t> prev(static_cast<size_t>(n), kInfDist);
  prev[source] = 0;
  r.dist = prev;
  // `hop_of[v]` = layer whose parent chain realises r.dist[v].
  std::vector<int> hop_of(static_cast<size_t>(n), 0);

  std::vector<weight_t> cur(static_cast<size_t>(n));
  for (int h = 1; h <= max_hops; ++h) {
    cur = prev;
    bool changed = false;
    for (vid_t u = 0; u < n; ++u) {
      if (prev[u] == kInfDist) continue;
      if (!view.vertex_alive(u) || bans.vertex_banned(u)) continue;
      for (eid_t e = view.edge_begin(u); e < view.edge_end(u); ++e) {
        if (!view.edge_alive(e) || bans.edge_banned(e)) continue;
        const vid_t v = view.edge_target(e);
        if (!view.vertex_alive(v) || bans.vertex_banned(v)) continue;
        const weight_t nd = prev[u] + view.edge_weight(e);
        if (nd < cur[v]) {
          cur[v] = nd;
          if (track_parents) parents[static_cast<size_t>(h)][v] = u;
          changed = true;
        }
      }
    }
    if (track_parents) {
      for (vid_t v = 0; v < n; ++v) {
        if (cur[v] < r.dist[v]) {
          r.dist[v] = cur[v];
          hop_of[v] = h;
        }
      }
    } else {
      for (vid_t v = 0; v < n; ++v) r.dist[v] = std::min(r.dist[v], cur[v]);
    }
    prev.swap(cur);
    if (!changed) break;
  }

  if (track_parents && target >= 0 && target < n &&
      r.dist[target] != kInfDist) {
    // Backtrack through the hop layers: at layer h the predecessor of v is
    // parents[h][v] (or v persisted from an earlier layer).
    std::vector<vid_t> rev_path;
    vid_t v = target;
    int h = hop_of[target];
    rev_path.push_back(v);
    while (v != source) {
      // Find the layer that actually set this vertex (walk down while the
      // recorded parent is missing — the value was inherited).
      while (h > 0 && parents[static_cast<size_t>(h)][v] == kNoVertex) h--;
      if (h == 0) break;  // only the source lives at layer 0
      v = parents[static_cast<size_t>(h)][v];
      h--;
      rev_path.push_back(v);
      if (rev_path.size() > static_cast<size_t>(max_hops) + 2) break;  // guard
    }
    if (rev_path.back() == source) {
      r.path.verts.assign(rev_path.rbegin(), rev_path.rend());
      r.path.dist = r.dist[target];
    }
  }
  return r;
}

}  // namespace peek::sssp
