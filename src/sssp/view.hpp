// GraphView: a uniform, zero-copy way for the SSSP/KSP algorithms to traverse
//   (a) a plain CSR,
//   (b) an edge-swap-compacted CSR (per-vertex valid-edge counts, §5.2), or
//   (c) a status-array-masked CSR (vertex/edge alive bytes, the §5.4 baseline)
// without copying the graph or templating every algorithm. It stores raw
// array pointers so it can also view the mutable CSR owned by the compaction
// module; all referenced arrays must outlive the view.
#pragma once

#include <algorithm>
#include <cstdint>

#include "graph/csr.hpp"

namespace peek::sssp {

using graph::CsrGraph;

class GraphView {
 public:
  GraphView() = default;

  /// View of the whole graph.
  explicit GraphView(const CsrGraph& g)
      : n_(g.num_vertices()), row_(g.row_offsets().data()),
        col_(g.col().data()), wgt_(g.weights().data()) {}

  /// Status-array view over a CsrGraph: per-vertex / per-edge alive bytes
  /// (either may be null).
  GraphView(const CsrGraph& g, const std::uint8_t* vertex_alive,
            const std::uint8_t* edge_alive)
      : GraphView(g) {
    vertex_alive_ = vertex_alive;
    edge_alive_ = edge_alive;
  }

  /// Fully general raw-array view (used by MutableCsr / edge-swap).
  GraphView(vid_t n, const eid_t* row, const vid_t* col, const weight_t* wgt,
            const eid_t* valid_edge_count, const std::uint8_t* vertex_alive,
            const std::uint8_t* edge_alive)
      : n_(n), row_(row), col_(col), wgt_(wgt), edge_count_(valid_edge_count),
        vertex_alive_(vertex_alive), edge_alive_(edge_alive) {}

  vid_t num_vertices() const { return n_; }

  bool vertex_alive(vid_t v) const {
    return vertex_alive_ == nullptr || vertex_alive_[v] != 0;
  }

  eid_t edge_begin(vid_t v) const { return row_[v]; }
  eid_t edge_end(vid_t v) const {
    return edge_count_ ? row_[v] + edge_count_[v] : row_[v + 1];
  }
  /// Edge-level liveness (status-array views only; edge-swap encodes
  /// deletion positionally so every in-range edge is alive).
  bool edge_alive(eid_t e) const {
    return edge_alive_ == nullptr || edge_alive_[e] != 0;
  }

  vid_t edge_target(eid_t e) const { return col_[e]; }
  weight_t edge_weight(eid_t e) const { return wgt_[e]; }

  /// First alive in-range edge u -> v, or kNoEdge. Linear in deg(u).
  eid_t find_edge(vid_t u, vid_t v) const {
    for (eid_t e = edge_begin(u); e < edge_end(u); ++e) {
      if (col_[e] == v && edge_alive(e)) return e;
    }
    return kNoEdge;
  }

  /// Max alive edge weight (Δ-stepping's auto bucket width).
  weight_t max_edge_weight() const {
    weight_t mx = 0;
    for (vid_t v = 0; v < n_; ++v) {
      if (!vertex_alive(v)) continue;
      for (eid_t e = edge_begin(v); e < edge_end(v); ++e) {
        if (edge_alive(e)) mx = std::max(mx, wgt_[e]);
      }
    }
    return mx;
  }

  /// Alive-edge count (O(n) with edge counts, O(m) with edge masks).
  eid_t count_alive_edges() const {
    eid_t total = 0;
    for (vid_t v = 0; v < n_; ++v) {
      if (!vertex_alive(v)) continue;
      for (eid_t e = edge_begin(v); e < edge_end(v); ++e) {
        if (edge_alive(e) && vertex_alive(col_[e])) total++;
      }
    }
    return total;
  }

 private:
  vid_t n_ = 0;
  const eid_t* row_ = nullptr;
  const vid_t* col_ = nullptr;
  const weight_t* wgt_ = nullptr;
  const eid_t* edge_count_ = nullptr;
  const std::uint8_t* vertex_alive_ = nullptr;
  const std::uint8_t* edge_alive_ = nullptr;
};

/// Forward + reverse views of the same logical graph — what the KSP
/// algorithms take: forward for deviation SSSPs, reverse for the static
/// reverse shortest-path tree.
struct BiView {
  GraphView fwd;
  GraphView rev;

  /// Builds both views of a CsrGraph (materialises the cached transpose).
  static BiView of(const CsrGraph& g) {
    return {GraphView(g), GraphView(g.reverse())};
  }
};

}  // namespace peek::sssp
