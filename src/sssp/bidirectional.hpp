// Bidirectional Dijkstra — point-to-point shortest distance by meeting two
// searches in the middle. Settles ~2·sqrt of the vertices a one-sided search
// would on uniform graphs; a useful primitive for a shortest-path library
// and the cheap first probe for "is t even reachable within budget".
#pragma once

#include "sssp/path.hpp"

namespace peek::sssp {

struct BidirResult {
  weight_t dist = kInfDist;     // shortest s->t distance
  Path path;                    // the path itself (empty if unreachable)
  vid_t meeting_vertex = kNoVertex;
  vid_t settled = 0;            // total vertices settled by both searches
};

/// Shortest s->t path. `g` must outlive nothing (self-contained call).
BidirResult bidirectional_dijkstra(const graph::CsrGraph& g, vid_t s, vid_t t);

}  // namespace peek::sssp
