// Bellman–Ford — O(nm) validation oracle for the faster SSSP implementations.
#pragma once

#include "sssp/dijkstra.hpp"

namespace peek::sssp {

/// Classic round-based relaxation (early exit when a round changes nothing).
SsspResult bellman_ford(const CsrGraph& g, vid_t source);

}  // namespace peek::sssp
