// JSON export/import for MetricsSnapshot. The exporter emits a stable,
// sorted-key document:
//
//   {
//     "counters": {"sssp.dijkstra.relaxed_edges": 1234, ...},
//     "gauges":   {"prune.kept_vertex_ratio": 0.016, ...},
//     "timers":   {"peek.prune": {"seconds": 0.0123, "count": 1}, ...}
//   }
//
// The parser understands exactly this shape (strings, numbers, one level of
// nesting) — enough for round-trip tests and for tools that consume the
// BENCH_*.json / PEEK_METRICS artifacts without a JSON dependency.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace peek::obs {

/// JSON string escaping for metric names (quotes, backslash, control chars).
std::string json_escape(std::string_view s);

/// Parses a document produced by MetricsSnapshot::to_json(). Returns nullopt
/// on malformed input or unexpected structure.
std::optional<MetricsSnapshot> parse_metrics_json(std::string_view text);

/// Writes `snap.to_json()` to `path`. Returns false (and leaves no partial
/// file behind where possible) on I/O failure.
bool write_metrics_json(const std::string& path, const MetricsSnapshot& snap);

}  // namespace peek::obs
