#include "obs/metrics.hpp"

namespace peek::obs {

size_t Counter::shard_index() {
  // One slot per OS thread, assigned on first use. Unlike an OpenMP-id-based
  // scheme this also spreads threads the library did not create (the serving
  // layer's request threads all have OpenMP id 0); wrap-around collisions at
  // kShards are correct, just contended.
  static std::atomic<size_t> next{0};
  thread_local const size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

MetricsRegistry& MetricsRegistry::global() {
  // Intentionally leaked: atexit dump hooks (peek_cli, bench_common) may run
  // after static destructors, so the global registry must never be destroyed.
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  check::MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  check::MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Timer& MetricsRegistry::timer(std::string_view name) {
  check::MutexLock lock(mu_);
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.emplace(std::string(name), std::make_unique<Timer>()).first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  check::MutexLock lock(mu_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, t] : timers_) snap.timers[name] = t->value();
  return snap;
}

void MetricsRegistry::reset() {
  check::MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, t] : timers_) t->reset();
}

}  // namespace peek::obs
