#include "obs/json.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>

namespace peek::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// double -> int64 without the UB of a plain static_cast on out-of-range
/// values (a hand-edited metrics file can carry 1e30): saturates at the
/// int64 limits, maps NaN to 0.
std::int64_t clamp_to_int64(double v) {
  if (std::isnan(v)) return 0;
  // 2^63 is exactly representable; anything >= it would overflow the cast.
  constexpr double kMax = 9223372036854775808.0;
  if (v >= kMax) return std::numeric_limits<std::int64_t>::max();
  if (v <= -kMax) return std::numeric_limits<std::int64_t>::min();
  return static_cast<std::int64_t>(v);
}

std::uint64_t clamp_to_uint64(double v) {
  if (std::isnan(v) || v <= 0) return 0;
  constexpr double kMax = 18446744073709551616.0;  // 2^64
  if (v >= kMax) return std::numeric_limits<std::uint64_t>::max();
  return static_cast<std::uint64_t>(v);
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    os << (first ? "" : ",") << "\n    \"" << json_escape(name) << "\": " << v;
    first = false;
  }
  os << (counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    os << (first ? "" : ",") << "\n    \"" << json_escape(name)
       << "\": " << fmt_double(v);
    first = false;
  }
  os << (gauges.empty() ? "" : "\n  ") << "},\n  \"timers\": {";
  first = true;
  for (const auto& [name, v] : timers) {
    os << (first ? "" : ",") << "\n    \"" << json_escape(name)
       << "\": {\"seconds\": " << fmt_double(v.seconds)
       << ", \"count\": " << v.count << "}";
    first = false;
  }
  os << (timers.empty() ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

namespace {

/// Recursive-descent cursor over the exporter's JSON subset.
class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  bool parse(MetricsSnapshot& out) {
    if (!expect('{')) return false;
    bool first = true;
    while (true) {
      skip_ws();
      if (eat('}')) break;
      if (!first && !expect(',')) return false;
      first = false;
      std::string section;
      if (!parse_string(section) || !expect(':')) return false;
      if (section == "counters") {
        if (!parse_number_map([&](std::string k, double v) {
              out.counters[std::move(k)] = clamp_to_int64(v);
            }))
          return false;
      } else if (section == "gauges") {
        if (!parse_number_map([&](std::string k, double v) {
              out.gauges[std::move(k)] = v;
            }))
          return false;
      } else if (section == "timers") {
        if (!parse_timer_map(out)) return false;
      } else {
        return false;  // unknown section: not our document
      }
    }
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      pos_++;
  }
  bool eat(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      pos_++;
      return true;
    }
    return false;
  }
  bool expect(char c) { return eat(c); }

  bool parse_string(std::string& out) {
    if (!expect('"')) return false;
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char esc = s_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else
                return false;
            }
            if (code > 0x7f) return false;  // names are ASCII
            out += static_cast<char>(code);
            break;
          }
          default: return false;
        }
      } else {
        out += c;
      }
    }
    return false;  // unterminated
  }

  bool parse_number(double& out) {
    skip_ws();
    const size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E'))
      pos_++;
    if (pos_ == start) return false;
    const std::string tok(s_.substr(start, pos_ - start));
    char* end = nullptr;
    errno = 0;
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) return false;  // e.g. "1.2.3", "1e+"
    // Underflow to a subnormal (errno ERANGE, finite result) is fine — the
    // exporter legitimately emits those for tiny gauges; only a literal too
    // large for double is malformed.
    if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL)) return false;
    out = v;
    return true;
  }

  template <typename Sink>
  bool parse_number_map(Sink&& sink) {
    if (!expect('{')) return false;
    bool first = true;
    while (true) {
      skip_ws();
      if (eat('}')) return true;
      if (!first && !expect(',')) return false;
      first = false;
      std::string key;
      double val = 0;
      if (!parse_string(key) || !expect(':') || !parse_number(val))
        return false;
      sink(std::move(key), val);
    }
  }

  bool parse_timer_map(MetricsSnapshot& out) {
    if (!expect('{')) return false;
    bool first = true;
    while (true) {
      skip_ws();
      if (eat('}')) return true;
      if (!first && !expect(',')) return false;
      first = false;
      std::string key;
      if (!parse_string(key) || !expect(':')) return false;
      TimerValue tv;
      const bool ok = parse_number_map([&](std::string field, double v) {
        if (field == "seconds") tv.seconds = v;
        else if (field == "count") tv.count = clamp_to_uint64(v);
      });
      if (!ok) return false;
      out.timers[std::move(key)] = tv;
    }
  }

  std::string_view s_;
  size_t pos_ = 0;
};

}  // namespace

std::optional<MetricsSnapshot> parse_metrics_json(std::string_view text) {
  MetricsSnapshot snap;
  Parser p(text);
  if (!p.parse(snap)) return std::nullopt;
  return snap;
}

bool write_metrics_json(const std::string& path, const MetricsSnapshot& snap) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string body = snap.to_json();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace peek::obs
