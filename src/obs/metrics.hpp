// Pipeline observability (ROADMAP: regression-proof, quantitative): a global
// MetricsRegistry of named counters, gauges and timers that the whole PeeK
// pipeline reports into. The paper argues from internal quantities — pruned
// vertex ratios, remaining-edge ratios m_r/m, Δ-stepping bucket behaviour,
// per-stage wall times (§4–§6) — and this layer makes every one of them
// visible to the CLI (`PEEK_METRICS=out.json`), the benches
// (`--metrics-json`) and the tests.
//
// Cost model: counters are sharded across cache-line-padded atomic slots
// indexed by OpenMP thread id, so a hot-loop increment is one relaxed
// fetch_add on an uncontended line; registration is a one-time mutex-guarded
// map insert cached in a function-local static at each hook site. The CMake
// option PEEK_OBS=OFF compiles every PEEK_* hook below to a no-op.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "check/thread_safety.hpp"

#ifndef PEEK_OBS_ENABLED
#define PEEK_OBS_ENABLED 1
#endif

namespace peek::obs {

constexpr bool kEnabled = PEEK_OBS_ENABLED != 0;

struct TimerValue {
  double seconds = 0;
  std::uint64_t count = 0;  // completed spans
};

/// A point-in-time copy of every registered metric. Plain data — always
/// available (and simply empty) when the hooks are compiled out, so
/// PeekResult/bench plumbing never needs #if guards.
struct MetricsSnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, TimerValue> timers;

  bool empty() const {
    return counters.empty() && gauges.empty() && timers.empty();
  }
  /// Stable, sorted-key JSON (see obs/json.hpp for the inverse).
  std::string to_json() const;
};

/// Monotonic counter, sharded to keep concurrent increments off each other's
/// cache lines. Aggregated (summed) on read.
class Counter {
 public:
  void add(std::int64_t n) {
    slots_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() { add(1); }
  std::int64_t value() const {
    std::int64_t total = 0;
    for (const auto& s : slots_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }
  void reset() {
    for (auto& s : slots_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kShards = 64;
  struct alignas(64) Slot {
    std::atomic<std::int64_t> v{0};
  };
  static size_t shard_index();
  std::array<Slot, kShards> slots_{};
};

/// Last-write-wins scalar (ratios, sizes, configuration echoes).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { set(0); }

 private:
  std::atomic<double> v_{0};
};

/// Accumulating wall-clock timer (total seconds + span count). Fed by
/// ScopedTimer; nesting just accumulates into distinct timers.
class Timer {
 public:
  void add_nanos(std::int64_t ns) {
    nanos_.fetch_add(ns, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  TimerValue value() const {
    return {static_cast<double>(nanos_.load(std::memory_order_relaxed)) * 1e-9,
            count_.load(std::memory_order_relaxed)};
  }
  void reset() {
    nanos_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> nanos_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// RAII stage span: measures construction->destruction and adds it to the
/// timer. Safe to nest (each scope owns its own start point).
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& t)
      : timer_(&t), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    timer_->add_nanos(std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer* timer_;
  std::chrono::steady_clock::time_point start_;
};

/// Name -> metric registry. `global()` is the process-wide instance every
/// pipeline hook reports to; tests may construct private registries.
/// Returned references stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Timer& timer(std::string_view name);

  MetricsSnapshot snapshot() const;
  /// Zeroes every metric value (registrations and references survive).
  void reset();

 private:
  /// Registration maps only — the metric objects themselves are lock-free
  /// (sharded atomics) and are updated through the returned references
  /// without touching mu_.
  mutable check::Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      PEEK_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      PEEK_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Timer>, std::less<>> timers_
      PEEK_GUARDED_BY(mu_);
};

}  // namespace peek::obs

// Hook macros — the only spelling instrumentation sites should use. Each
// expands to a function-local static lookup (one mutex hit ever) plus the
// cheap sharded update, or to nothing under PEEK_OBS=OFF.
#if PEEK_OBS_ENABLED

#define PEEK_OBS_CONCAT_IMPL(a, b) a##b
#define PEEK_OBS_CONCAT(a, b) PEEK_OBS_CONCAT_IMPL(a, b)

#define PEEK_COUNT_ADD(name, n)                              \
  do {                                                       \
    static ::peek::obs::Counter& peek_obs_counter_ref_ =     \
        ::peek::obs::MetricsRegistry::global().counter(name); \
    peek_obs_counter_ref_.add(static_cast<std::int64_t>(n)); \
  } while (0)

#define PEEK_COUNT_INC(name) PEEK_COUNT_ADD(name, 1)

#define PEEK_GAUGE_SET(name, v)                            \
  do {                                                     \
    static ::peek::obs::Gauge& peek_obs_gauge_ref_ =       \
        ::peek::obs::MetricsRegistry::global().gauge(name); \
    peek_obs_gauge_ref_.set(static_cast<double>(v));       \
  } while (0)

/// Declares an RAII span covering the rest of the enclosing scope.
#define PEEK_TIMER_SCOPE(name)                                    \
  ::peek::obs::ScopedTimer PEEK_OBS_CONCAT(peek_obs_span_,        \
                                           __LINE__)(             \
      ::peek::obs::MetricsRegistry::global().timer(name))

#else  // PEEK_OBS_ENABLED

// The (void) casts keep hook-only locals from tripping -Wunused-but-set
// warnings in OBS=OFF builds; the reads they perform optimize away.
#define PEEK_COUNT_ADD(name, n) \
  do {                          \
    (void)(name);               \
    (void)(n);                  \
  } while (0)
#define PEEK_COUNT_INC(name) \
  do {                       \
    (void)(name);            \
  } while (0)
#define PEEK_GAUGE_SET(name, v) \
  do {                          \
    (void)(name);               \
    (void)(v);                  \
  } while (0)
#define PEEK_TIMER_SCOPE(name) ((void)0)

#endif  // PEEK_OBS_ENABLED
