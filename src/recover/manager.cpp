#include "recover/manager.hpp"

#include <algorithm>
#include <filesystem>
#include <system_error>

#include "obs/metrics.hpp"

namespace peek::recover {

namespace fs = std::filesystem;

namespace {

bool ends_with(const std::string& s, const char* suffix) {
  const std::string_view sv(suffix);
  return s.size() >= sv.size() &&
         s.compare(s.size() - sv.size(), sv.size(), sv) == 0;
}

}  // namespace

fault::Status RecoveryManager::ensure_dir() const {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec)
    return {fault::Status::kInternal,
            dir_ + ": cannot create snapshot directory: " + ec.message()};
  return {};
}

std::string RecoveryManager::path_for(const std::string& name) const {
  return dir_ + "/" + name;
}

std::vector<LoadedFile> RecoveryManager::scan(ScanReport* report) const {
  ScanReport local;
  ScanReport& rep = report ? *report : local;
  std::vector<LoadedFile> out;

  std::error_code ec;
  fs::directory_iterator it(dir_, ec);
  if (ec) return out;  // missing/unreadable dir = nothing to restore

  // Two passes over a stable listing: directory iteration order is
  // filesystem-dependent, and quarantine renames mutate the directory.
  std::vector<std::string> names;
  for (const fs::directory_entry& e : it) {
    std::error_code tec;
    if (!e.is_regular_file(tec) || tec) continue;
    names.push_back(e.path().filename().string());
  }
  std::sort(names.begin(), names.end());

  for (const std::string& name : names) {
    const std::string path = path_for(name);
    if (ends_with(name, ".tmp")) {
      std::error_code rec;
      fs::remove(path, rec);
      if (!rec) ++rep.swept_tmp;
      continue;
    }
    // Quarantine output and its sidecar are terminal states, not snapshots.
    if (ends_with(name, ".corrupt") || ends_with(name, ".reason")) continue;

    std::error_code sec;
    const std::uintmax_t size = fs::file_size(path, sec);
    ParseResult r = load_snapshot_file(path);
    if (!r.status.ok()) {
      rep.errors.push_back(path + ": " + r.status.message);
      // Only proven corruption is exiled. A transient failure (e.g. an
      // allocation giving out mid-load) leaves the file for the next scan.
      if (r.status.code == fault::Status::kDataLoss) {
        // A failed exile leaves the corrupt file in place; it keeps failing
        // validation on every scan, so it can never be served.
        if (!quarantine_file(path, r.status).ok()) {
          PEEK_COUNT_INC("recover.quarantine_failures");
        }
        ++rep.quarantined;
      }
      continue;
    }
    LoadedFile f;
    f.path = path;
    f.name = name;
    f.bytes = sec ? 0 : static_cast<std::size_t>(size);
    f.snap = std::move(r.snap);
    ++rep.loaded;
    PEEK_COUNT_INC("recover.snapshots_loaded");
    PEEK_COUNT_ADD("recover.bytes_restored",
                   static_cast<std::int64_t>(f.bytes));
    out.push_back(std::move(f));
  }
  return out;
}

}  // namespace peek::recover
