#include "recover/snapshot.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <system_error>

#include "fault/injector.hpp"
#include "obs/metrics.hpp"

namespace peek::recover {
namespace {

/// Thread-safe strerror: two concurrent failing writes must not race over
/// libc's static buffer (clang-tidy concurrency-mt-unsafe).
std::string errno_message() {
  return std::error_code(errno, std::generic_category()).message();
}

}  // namespace
}  // namespace peek::recover

namespace peek::recover {

namespace {

constexpr char kMagic[8] = {'P', 'E', 'E', 'K', 'S', 'N', 'P', '2'};
constexpr std::uint32_t kVersion = 2;
constexpr std::size_t kHeaderBytes = 24;   // magic + version + kind + count + pad
constexpr std::size_t kTableEntryBytes = 32;
/// Hard cap on sections: a corrupt count must not drive a huge table read.
constexpr std::uint32_t kMaxSections = 64;

// The message stays prefix-free (the offset lives in `error_offset`) so
// wrappers — load_snapshot_file, graph::IoError — can compose their own
// "<path>: byte N:" context without doubling it.
ParseResult fail_at(std::size_t offset, const std::string& why) {
  ParseResult r;
  r.status = {fault::Status::kDataLoss, why};
  r.error_offset = offset;
  return r;
}

}  // namespace

// ------------------------------------------------------------------ encoding

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xffu));
}

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xffu));
}

void put_i64(std::vector<std::byte>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_f64(std::vector<std::byte>& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

void put_bytes(std::vector<std::byte>& out, const void* p, std::size_t n) {
  // resize+memcpy instead of insert(range): GCC 12's -Wstringop-overflow
  // false-fires on the inlined range-insert when n is not provably nonzero.
  if (n == 0) return;
  const std::size_t old = out.size();
  out.resize(old + n);
  std::memcpy(out.data() + old, p, n);
}

bool Cursor::get_bytes(void* dst, std::size_t n) {
  if (remaining() < n) return false;
  std::memcpy(dst, data + pos, n);
  pos += n;
  return true;
}

bool Cursor::skip(std::size_t n) {
  if (remaining() < n) return false;
  pos += n;
  return true;
}

bool Cursor::get_u32(std::uint32_t& v) {
  if (remaining() < 4) return false;
  v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(data[pos + static_cast<std::size_t>(i)]))
         << (8 * i);
  pos += 4;
  return true;
}

bool Cursor::get_u64(std::uint64_t& v) {
  if (remaining() < 8) return false;
  v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(data[pos + static_cast<std::size_t>(i)]))
         << (8 * i);
  pos += 8;
  return true;
}

bool Cursor::get_i64(std::int64_t& v) {
  std::uint64_t u;
  if (!get_u64(u)) return false;
  v = static_cast<std::int64_t>(u);
  return true;
}

bool Cursor::get_f64(double& v) {
  std::uint64_t bits;
  if (!get_u64(bits)) return false;
  std::memcpy(&v, &bits, sizeof v);
  return true;
}

// ------------------------------------------------------------------- xxhash64

namespace {

constexpr std::uint64_t kPrime1 = 0x9E3779B185EBCA87ULL;
constexpr std::uint64_t kPrime2 = 0xC2B2AE3D27D4EB4FULL;
constexpr std::uint64_t kPrime3 = 0x165667B19E3779F9ULL;
constexpr std::uint64_t kPrime4 = 0x85EBCA77C2B2AE63ULL;
constexpr std::uint64_t kPrime5 = 0x27D4EB2F165667C5ULL;

inline std::uint64_t rotl64(std::uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

inline std::uint64_t read_le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

inline std::uint32_t read_le32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

inline std::uint64_t xxh_round(std::uint64_t acc, std::uint64_t input) {
  acc += input * kPrime2;
  acc = rotl64(acc, 31);
  return acc * kPrime1;
}

inline std::uint64_t xxh_merge_round(std::uint64_t acc, std::uint64_t val) {
  acc ^= xxh_round(0, val);
  return acc * kPrime1 + kPrime4;
}

}  // namespace

std::uint64_t xxhash64(const void* data, std::size_t len, std::uint64_t seed) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  const std::uint8_t* const end = p + len;
  std::uint64_t h;

  if (len >= 32) {
    std::uint64_t v1 = seed + kPrime1 + kPrime2;
    std::uint64_t v2 = seed + kPrime2;
    std::uint64_t v3 = seed;
    std::uint64_t v4 = seed - kPrime1;
    const std::uint8_t* const limit = end - 32;
    do {
      v1 = xxh_round(v1, read_le64(p));
      v2 = xxh_round(v2, read_le64(p + 8));
      v3 = xxh_round(v3, read_le64(p + 16));
      v4 = xxh_round(v4, read_le64(p + 24));
      p += 32;
    } while (p <= limit);
    h = rotl64(v1, 1) + rotl64(v2, 7) + rotl64(v3, 12) + rotl64(v4, 18);
    h = xxh_merge_round(h, v1);
    h = xxh_merge_round(h, v2);
    h = xxh_merge_round(h, v3);
    h = xxh_merge_round(h, v4);
  } else {
    h = seed + kPrime5;
  }

  h += static_cast<std::uint64_t>(len);
  while (p + 8 <= end) {
    h ^= xxh_round(0, read_le64(p));
    h = rotl64(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<std::uint64_t>(read_le32(p)) * kPrime1;
    h = rotl64(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<std::uint64_t>(*p) * kPrime5;
    h = rotl64(h, 11) * kPrime1;
    ++p;
  }

  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

// ------------------------------------------------------------------ container

const Section* Snapshot::find(std::uint32_t id) const {
  for (const Section& s : sections)
    if (s.id == id) return &s;
  return nullptr;
}

std::vector<std::byte>& SnapshotWriter::add_section(std::uint32_t id) {
  sections_.push_back(Section{id, {}});
  return sections_.back().bytes;
}

std::vector<std::byte> SnapshotWriter::serialize() const {
  const std::size_t table_end =
      kHeaderBytes + sections_.size() * kTableEntryBytes;
  const std::size_t payload_start = table_end + 8;  // + header hash

  std::vector<std::byte> out;
  std::size_t total = payload_start;
  for (const Section& s : sections_) total += s.bytes.size();
  out.reserve(total);

  put_bytes(out, kMagic, sizeof kMagic);
  put_u32(out, kVersion);
  put_u32(out, kind_);
  put_u32(out, static_cast<std::uint32_t>(sections_.size()));
  put_u32(out, 0);  // reserved

  std::size_t offset = payload_start;
  for (const Section& s : sections_) {
    put_u32(out, s.id);
    put_u32(out, 0);  // reserved
    put_u64(out, static_cast<std::uint64_t>(offset));
    put_u64(out, static_cast<std::uint64_t>(s.bytes.size()));
    put_u64(out, xxhash64(s.bytes.data(), s.bytes.size()));
    offset += s.bytes.size();
  }
  put_u64(out, xxhash64(out.data(), table_end));
  for (const Section& s : sections_)
    put_bytes(out, s.bytes.data(), s.bytes.size());
  return out;
}

fault::Status SnapshotWriter::write_file(const std::string& path) const {
  std::vector<std::byte> image;
  try {
    PEEK_FAULT_ALLOC("recover.write.alloc");
    image = serialize();
  } catch (const std::bad_alloc& e) {
    PEEK_COUNT_INC("recover.write_failures");
    return {fault::Status::kResourceExhausted, e.what()};
  }
  return write_file_atomic(path, image.data(), image.size());
}

ParseResult parse_snapshot(const std::byte* data, std::size_t size) {
  if (size < kHeaderBytes + 8) return fail_at(size, "truncated header");
  if (std::memcmp(data, kMagic, sizeof kMagic) != 0)
    return fail_at(0, "bad magic (not a PEEKSNP2 snapshot)");

  Cursor cur(data, size);
  cur.skip(sizeof kMagic);
  std::uint32_t version = 0, kind = 0, count = 0, reserved = 0;
  cur.get_u32(version);
  cur.get_u32(kind);
  cur.get_u32(count);
  cur.get_u32(reserved);
  if (version != kVersion)
    return fail_at(8, "unsupported format version " + std::to_string(version));
  if (count > kMaxSections)
    return fail_at(16, "implausible section count " + std::to_string(count));

  const std::size_t table_end = kHeaderBytes + count * kTableEntryBytes;
  const std::size_t payload_start = table_end + 8;
  if (size < payload_start) return fail_at(size, "truncated section table");

  // Header+table integrity first: a bit flip in an offset/length field must
  // not steer the payload validation, let alone a decoder.
  std::uint64_t stored_header_hash = 0;
  {
    Cursor hc(data, size);
    hc.pos = table_end;
    hc.get_u64(stored_header_hash);
  }
  if (xxhash64(data, table_end) != stored_header_hash)
    return fail_at(table_end, "header/table checksum mismatch");

  ParseResult r;
  r.snap.kind = kind;
  std::size_t expect_offset = payload_start;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t entry_off = kHeaderBytes + i * kTableEntryBytes;
    Cursor ec(data, size);
    ec.pos = entry_off;
    std::uint32_t id = 0, pad = 0;
    std::uint64_t off = 0, len = 0, hash = 0;
    ec.get_u32(id);
    ec.get_u32(pad);
    ec.get_u64(off);
    ec.get_u64(len);
    ec.get_u64(hash);
    // Packed-contiguous layout is part of the format: any gap or overlap is
    // corruption even if the checksums still match.
    if (off != expect_offset)
      return fail_at(entry_off, "section " + std::to_string(id) +
                                    " offset out of sequence");
    if (len > size - off)
      return fail_at(entry_off, "section " + std::to_string(id) +
                                    " extends past end of file");
    if (xxhash64(data + off, static_cast<std::size_t>(len)) != hash)
      return fail_at(static_cast<std::size_t>(off),
                     "section " + std::to_string(id) + " checksum mismatch");
    Section s;
    s.id = id;
    s.bytes.assign(data + off, data + off + len);
    r.snap.sections.push_back(std::move(s));
    expect_offset = static_cast<std::size_t>(off + len);
  }
  if (expect_offset != size)
    return fail_at(expect_offset, "trailing bytes after last section");
  return r;
}

ParseResult load_snapshot_file(const std::string& path) {
  std::vector<std::byte> bytes;
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) {
      ParseResult r;
      r.status = {fault::Status::kDataLoss, path + ": cannot open"};
      return r;
    }
    const std::streamoff n = in.tellg();
    in.seekg(0);
    try {
      PEEK_FAULT_ALLOC("recover.read.alloc");
      bytes.resize(static_cast<std::size_t>(n));
    } catch (const std::bad_alloc& e) {
      ParseResult r;
      r.status = {fault::Status::kResourceExhausted, path + ": " + e.what()};
      return r;
    }
    if (n > 0) in.read(reinterpret_cast<char*>(bytes.data()), n);
    if (!in) {
      ParseResult r;
      r.status = {fault::Status::kDataLoss, path + ": short read"};
      return r;
    }
  }
  ParseResult r = parse_snapshot(bytes.data(), bytes.size());
  if (!r.status.ok())
    r.status.message = path + ": byte " + std::to_string(r.error_offset) +
                       ": " + r.status.message;
  return r;
}

namespace {

fault::Status write_file_atomic_impl(const std::string& path,
                                     const std::byte* data, std::size_t size) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0)
    return {fault::Status::kInternal,
            tmp + ": open failed: " + errno_message()};

  // Injected mid-write kill: stop after a prefix and return without cleanup,
  // leaving exactly the torn tmp file a real crash would. The published
  // `path` is untouched; the recovery scan sweeps the orphan.
  std::size_t to_write = size;
  const bool torn = PEEK_FAULT_FIRE("recover.write.tear");
  if (torn) to_write = size / 2;

  std::size_t done = 0;
  while (done < to_write) {
    const ssize_t n = ::write(fd, reinterpret_cast<const char*>(data) + done,
                              to_write - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = errno_message();
      ::close(fd);
      ::unlink(tmp.c_str());
      return {fault::Status::kInternal, tmp + ": write failed: " + err};
    }
    done += static_cast<std::size_t>(n);
  }
  if (torn) {
    ::close(fd);
    return {fault::Status::kInternal,
            tmp + ": injected mid-write kill (torn tmp file left behind)"};
  }

  if (PEEK_FAULT_FIRE("recover.write.fsync")) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return {fault::Status::kInternal, tmp + ": injected fsync failure"};
  }
  if (::fsync(fd) != 0) {
    const std::string err = errno_message();
    ::close(fd);
    ::unlink(tmp.c_str());
    return {fault::Status::kInternal, tmp + ": fsync failed: " + err};
  }
  ::close(fd);

  if (PEEK_FAULT_FIRE("recover.write.rename")) {
    ::unlink(tmp.c_str());
    return {fault::Status::kInternal,
            path + ": injected rename failure (previous file intact)"};
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string err = errno_message();
    ::unlink(tmp.c_str());
    return {fault::Status::kInternal, path + ": rename failed: " + err};
  }

  // Make the rename itself durable. Best effort: the data is already safe
  // under either name; a crash here at worst resurrects the old file name.
  const std::string::size_type slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return {};
}

}  // namespace

fault::Status write_file_atomic(const std::string& path, const std::byte* data,
                                std::size_t size) {
  const fault::Status st = write_file_atomic_impl(path, data, size);
  if (st.ok()) {
    PEEK_COUNT_INC("recover.snapshots_written");
  } else {
    PEEK_COUNT_INC("recover.write_failures");
  }
  return st;
}

fault::Status quarantine_file(const std::string& path,
                              const fault::Status& why) {
  const std::string dest = path + ".corrupt";
  if (::rename(path.c_str(), dest.c_str()) != 0)
    return {fault::Status::kInternal,
            path + ": quarantine rename failed: " + errno_message()};
  {
    std::ofstream reason(dest + ".reason");
    reason << to_string(why.code) << ": " << why.message << "\n";
  }
  PEEK_COUNT_INC("recover.quarantined");
  return {};
}

}  // namespace peek::recover
