// Startup recovery scan (DESIGN.md §10).
//
// A RecoveryManager owns one snapshot directory. On scan() it:
//   1. sweeps orphaned `*.tmp` files — debris from writers that died before
//      their atomic rename (write_file_atomic never publishes a tmp);
//   2. validates every snapshot file (container magic, version, every
//      checksum, no gaps, no trailing bytes);
//   3. quarantines each corrupt file to `*.corrupt` with a typed reason in
//      `*.corrupt.reason`, so the next scan doesn't re-chew it and an
//      operator can inspect exactly what was damaged;
//   4. returns the validated snapshots for the caller to decode — or skip,
//      if their graph fingerprint says they belong to some other graph.
//
// The contract callers rely on: scan() never throws on any directory
// content, and every file either loads bit-identical to what was written or
// ends up quarantined with a kDataLoss reason. The chaos suite
// (tests/test_recover.cpp) drives ≥200 seeded corruptions through exactly
// this path.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "recover/snapshot.hpp"

namespace peek::recover {

/// One validated snapshot file from a scan.
struct LoadedFile {
  std::string path;      // full path
  std::string name;      // file name within the directory
  std::size_t bytes = 0; // on-disk size
  Snapshot snap;         // checksum-verified contents
};

/// What a scan did, for logs and tests.
struct ScanReport {
  int loaded = 0;
  int quarantined = 0;
  int swept_tmp = 0;
  /// One "<path>: <reason>" line per quarantined file.
  std::vector<std::string> errors;
};

class RecoveryManager {
 public:
  /// `dir` need not exist yet; scan() on a missing directory is an empty
  /// result, and ensure_dir() creates it for writers.
  explicit RecoveryManager(std::string dir) : dir_(std::move(dir)) {}

  const std::string& dir() const { return dir_; }

  /// Creates the directory (and parents) if missing.
  fault::Status ensure_dir() const;

  /// Validate-or-quarantine every snapshot file in the directory (see file
  /// comment). Counts recover.snapshots_loaded and recover.bytes_restored
  /// for valid files; quarantine_file counts recover.quarantined. Files
  /// ending in `.corrupt`, `.reason`, or `.tmp` are never treated as
  /// snapshots. Returns loaded files sorted by name for determinism.
  std::vector<LoadedFile> scan(ScanReport* report = nullptr) const;

  /// Full path for a snapshot file named `name` inside the directory.
  std::string path_for(const std::string& name) const;

 private:
  std::string dir_;
};

}  // namespace peek::recover
