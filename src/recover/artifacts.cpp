#include "recover/artifacts.hpp"

#include <cmath>
#include <cstring>
#include <limits>

namespace peek::recover {

namespace {

// Section ids, scoped per artifact kind. Stable on-disk values.
enum SectionId : std::uint32_t {
  kSecMeta = 1,       // scalars: dimensions, roots, flags, fingerprint
  kSecRowOffsets = 2, // graph row offsets (i64 each)
  kSecCols = 3,       // graph columns (u32 each)
  kSecWeights = 4,    // graph weights (f64 each)
  kSecDist = 5,       // tree distances (f64 each)
  kSecParent = 6,     // tree parents (u32 each, two's complement)
  kSecOldToNew = 7,   // vertex map (u32 each)
  kSecNewToOld = 8,
  kSecPaths = 9,      // path list
  kSecPending = 10,   // checkpoint candidate heap
  kSecSeen = 11,      // checkpoint dedup set
};

fault::Status data_loss(const std::string& why) {
  return {fault::Status::kDataLoss, why};
}

void put_vid(std::vector<std::byte>& out, vid_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

bool get_vid(Cursor& cur, vid_t& v) {
  std::uint32_t u;
  if (!cur.get_u32(u)) return false;
  v = static_cast<vid_t>(u);
  return true;
}

/// Finite, positive, plausible path/edge distance. Persisted artifacts come
/// from validated pipelines, so NaN or negative here means corruption that
/// slipped past the checksum writer (i.e. a buggy or hostile writer).
bool plausible_weight(weight_t w) {
  return !std::isnan(w) && w >= 0.0;
}

const Section* need(const Snapshot& snap, std::uint32_t id) {
  return snap.find(id);
}

// Decodes a u64-count-prefixed array with a per-element reader. Returns false
// on any short read or if the count is implausible for the bytes available.
template <typename T, typename GetFn>
bool get_array(Cursor& cur, std::vector<T>& out, std::size_t elem_bytes,
               GetFn get) {
  std::uint64_t count = 0;
  if (!cur.get_u64(count)) return false;
  if (elem_bytes != 0 && count > cur.remaining() / elem_bytes) return false;
  out.clear();
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    T v{};
    if (!get(cur, v)) return false;
    out.push_back(v);
  }
  return true;
}

bool get_vid_vec(Cursor& cur, std::vector<vid_t>& out) {
  return get_array<vid_t>(cur, out, 4,
                          [](Cursor& c, vid_t& v) { return get_vid(c, v); });
}

bool get_f64_vec(Cursor& cur, std::vector<double>& out) {
  return get_array<double>(
      cur, out, 8, [](Cursor& c, double& v) { return c.get_f64(v); });
}

bool get_eid_vec(Cursor& cur, std::vector<eid_t>& out) {
  return get_array<eid_t>(cur, out, 8, [](Cursor& c, eid_t& v) {
    std::int64_t x;
    if (!c.get_i64(x)) return false;
    v = x;
    return true;
  });
}

void put_vid_vec(std::vector<std::byte>& out, const std::vector<vid_t>& v) {
  put_u64(out, v.size());
  for (vid_t x : v) put_vid(out, x);
}

void put_f64_vec(std::vector<std::byte>& out, const std::vector<double>& v) {
  put_u64(out, v.size());
  for (double x : v) put_f64(out, x);
}

void put_eid_vec(std::vector<std::byte>& out, const std::vector<eid_t>& v) {
  put_u64(out, v.size());
  for (eid_t x : v) put_i64(out, x);
}

void put_int_vec(std::vector<std::byte>& out, const std::vector<int>& v) {
  put_u64(out, v.size());
  for (int x : v) put_u32(out, static_cast<std::uint32_t>(x));
}

bool get_int_vec(Cursor& cur, std::vector<int>& out) {
  return get_array<int>(cur, out, 4, [](Cursor& c, int& v) {
    std::uint32_t u;
    if (!c.get_u32(u)) return false;
    v = static_cast<int>(u);
    return true;
  });
}

/// Structural CSR validation shared by graph decode paths: lengths agree,
/// offsets monotone from 0 to m, targets in range, weights finite & >= 0.
fault::Status validate_csr_arrays(const std::vector<eid_t>& row,
                                  const std::vector<vid_t>& col,
                                  const std::vector<weight_t>& wgt) {
  if (row.empty()) return data_loss("csr: empty row-offset array");
  const std::size_t n = row.size() - 1;
  if (n > static_cast<std::size_t>(std::numeric_limits<vid_t>::max()))
    return data_loss("csr: vertex count overflows vid_t");
  if (col.size() != wgt.size())
    return data_loss("csr: column/weight array length mismatch");
  if (row.front() != 0) return data_loss("csr: row offsets do not start at 0");
  if (row.back() != static_cast<eid_t>(col.size()))
    return data_loss("csr: row offsets do not end at edge count");
  for (std::size_t i = 1; i < row.size(); ++i)
    if (row[i] < row[i - 1])
      return data_loss("csr: non-monotone row offset at vertex " +
                       std::to_string(i - 1));
  for (std::size_t e = 0; e < col.size(); ++e) {
    if (col[e] < 0 || static_cast<std::size_t>(col[e]) >= n)
      return data_loss("csr: edge target out of range at edge " +
                       std::to_string(e));
    if (!plausible_weight(wgt[e]) || wgt[e] == kInfDist)
      return data_loss("csr: implausible edge weight at edge " +
                       std::to_string(e));
  }
  return {};
}

/// Tree arrays against a known vertex count: dist/parent sized n, parents in
/// [-1, n), distances finite-or-inf and non-negative.
fault::Status validate_tree_arrays(const sssp::SsspResult& t, std::size_t n) {
  if (t.dist.size() != n || t.parent.size() != n)
    return data_loss("tree: array length does not match vertex count");
  for (std::size_t v = 0; v < n; ++v) {
    if (!plausible_weight(t.dist[v]))
      return data_loss("tree: implausible distance at vertex " +
                       std::to_string(v));
    if (t.parent[v] != kNoVertex &&
        (t.parent[v] < 0 || static_cast<std::size_t>(t.parent[v]) >= n))
      return data_loss("tree: parent out of range at vertex " +
                       std::to_string(v));
  }
  return {};
}

}  // namespace

std::uint64_t graph_fingerprint(const graph::CsrGraph& g) {
  // Hash the logical content, not memory: explicit LE bytes so fingerprints
  // are stable across hosts and across this library's own versions.
  std::vector<std::byte> buf;
  buf.reserve(24 + static_cast<std::size_t>(g.num_vertices() + 1) * 8 +
              static_cast<std::size_t>(g.num_edges()) * 12);
  put_u32(buf, static_cast<std::uint32_t>(g.num_vertices()));
  put_u64(buf, static_cast<std::uint64_t>(g.num_edges()));
  for (eid_t r : g.row_offsets()) put_i64(buf, r);
  for (vid_t c : g.col()) put_vid(buf, c);
  for (weight_t w : g.weights()) put_f64(buf, w);
  return xxhash64(buf.data(), buf.size(), /*seed=*/0x5045454bULL);
}

void put_paths(std::vector<std::byte>& out,
               const std::vector<sssp::Path>& ps) {
  put_u64(out, ps.size());
  for (const sssp::Path& p : ps) {
    put_f64(out, p.dist);
    put_vid_vec(out, p.verts);
  }
}

bool get_paths(Cursor& cur, std::vector<sssp::Path>& out) {
  std::uint64_t count = 0;
  if (!cur.get_u64(count)) return false;
  // Each path is at least dist (8) + vert count (8).
  if (count > cur.remaining() / 16) return false;
  out.clear();
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    sssp::Path p;
    if (!cur.get_f64(p.dist)) return false;
    if (!get_vid_vec(cur, p.verts)) return false;
    if (!plausible_weight(p.dist)) return false;
    out.push_back(std::move(p));
  }
  return true;
}

// ------------------------------------------------------------------- graph

namespace {

void encode_graph_sections(SnapshotWriter& w, const graph::CsrGraph& g) {
  std::vector<std::byte>& row = w.add_section(kSecRowOffsets);
  put_eid_vec(row, {g.row_offsets().begin(), g.row_offsets().end()});
  std::vector<std::byte>& col = w.add_section(kSecCols);
  put_vid_vec(col, {g.col().begin(), g.col().end()});
  std::vector<std::byte>& wgt = w.add_section(kSecWeights);
  put_f64_vec(wgt, {g.weights().begin(), g.weights().end()});
}

fault::Status decode_graph_sections(const Snapshot& snap,
                                    graph::CsrGraph& out) {
  const Section* row_s = need(snap, kSecRowOffsets);
  const Section* col_s = need(snap, kSecCols);
  const Section* wgt_s = need(snap, kSecWeights);
  if (!row_s || !col_s || !wgt_s)
    return data_loss("graph: missing CSR section");

  std::vector<eid_t> row;
  std::vector<vid_t> col;
  std::vector<weight_t> wgt;
  Cursor rc(row_s->bytes);
  if (!get_eid_vec(rc, row) || rc.remaining() != 0)
    return data_loss("graph: malformed row-offset section");
  Cursor cc(col_s->bytes);
  if (!get_vid_vec(cc, col) || cc.remaining() != 0)
    return data_loss("graph: malformed column section");
  Cursor wc(wgt_s->bytes);
  if (!get_f64_vec(wc, wgt) || wc.remaining() != 0)
    return data_loss("graph: malformed weight section");

  fault::Status st = validate_csr_arrays(row, col, wgt);
  if (!st.ok()) return st;
  out = graph::CsrGraph(std::move(row), std::move(col), std::move(wgt));
  return {};
}

}  // namespace

std::vector<std::byte> encode_graph(const graph::CsrGraph& g) {
  SnapshotWriter w(kCsrGraph);
  std::vector<std::byte>& meta = w.add_section(kSecMeta);
  put_u32(meta, static_cast<std::uint32_t>(g.num_vertices()));
  put_u64(meta, static_cast<std::uint64_t>(g.num_edges()));
  encode_graph_sections(w, g);
  return w.serialize();
}

fault::Status decode_graph(const Snapshot& snap, graph::CsrGraph& out) {
  if (snap.kind != kCsrGraph)
    return data_loss("graph: snapshot kind is not kCsrGraph");
  const Section* meta = need(snap, kSecMeta);
  if (!meta) return data_loss("graph: missing meta section");
  Cursor mc(meta->bytes);
  std::uint32_t n = 0;
  std::uint64_t m = 0;
  if (!mc.get_u32(n) || !mc.get_u64(m) || mc.remaining() != 0)
    return data_loss("graph: malformed meta section");

  graph::CsrGraph g;
  fault::Status st = decode_graph_sections(snap, g);
  if (!st.ok()) return st;
  if (static_cast<std::uint32_t>(g.num_vertices()) != n ||
      static_cast<std::uint64_t>(g.num_edges()) != m)
    return data_loss("graph: meta dimensions disagree with CSR arrays");
  out = std::move(g);
  return {};
}

// --------------------------------------------------------------- SSSP tree

std::vector<std::byte> encode_tree(const TreeArtifact& a) {
  SnapshotWriter w(kSsspTree);
  std::vector<std::byte>& meta = w.add_section(kSecMeta);
  put_u64(meta, a.fingerprint);
  put_vid(meta, a.root);
  put_u32(meta, a.reverse ? 1u : 0u);
  put_u32(meta, static_cast<std::uint32_t>(a.tree.status));
  std::vector<std::byte>& dist = w.add_section(kSecDist);
  put_f64_vec(dist, a.tree.dist);
  std::vector<std::byte>& par = w.add_section(kSecParent);
  put_vid_vec(par, a.tree.parent);
  return w.serialize();
}

fault::Status decode_tree(const Snapshot& snap, TreeArtifact& out) {
  if (snap.kind != kSsspTree)
    return data_loss("tree: snapshot kind is not kSsspTree");
  const Section* meta = need(snap, kSecMeta);
  const Section* dist = need(snap, kSecDist);
  const Section* par = need(snap, kSecParent);
  if (!meta || !dist || !par) return data_loss("tree: missing section");

  TreeArtifact a;
  Cursor mc(meta->bytes);
  std::uint32_t rev = 0, status = 0;
  if (!mc.get_u64(a.fingerprint) || !get_vid(mc, a.root) ||
      !mc.get_u32(rev) || !mc.get_u32(status) || mc.remaining() != 0)
    return data_loss("tree: malformed meta section");
  a.reverse = rev != 0;
  // Only complete trees are worth persisting; a partial (cancelled) tree on
  // disk means the writer was broken.
  if (status != static_cast<std::uint32_t>(fault::Status::kOk))
    return data_loss("tree: persisted tree has non-ok status");
  a.tree.status = fault::Status::kOk;

  Cursor dc(dist->bytes);
  if (!get_f64_vec(dc, a.tree.dist) || dc.remaining() != 0)
    return data_loss("tree: malformed distance section");
  Cursor pc(par->bytes);
  if (!get_vid_vec(pc, a.tree.parent) || pc.remaining() != 0)
    return data_loss("tree: malformed parent section");

  fault::Status st = validate_tree_arrays(a.tree, a.tree.dist.size());
  if (!st.ok()) return st;
  if (a.root < 0 || static_cast<std::size_t>(a.root) >= a.tree.dist.size())
    return data_loss("tree: root vertex out of range");
  out = std::move(a);
  return {};
}

// ---------------------------------------------------- pruned (s,t) snapshot

std::vector<std::byte> encode_pruned_snapshot(const PrunedSnapshotArtifact& a) {
  SnapshotWriter w(kPrunedSnapshot);
  std::vector<std::byte>& meta = w.add_section(kSecMeta);
  put_u64(meta, a.fingerprint);
  put_vid(meta, a.s);
  put_vid(meta, a.t);
  put_u32(meta, static_cast<std::uint32_t>(a.k_budget));
  put_f64(meta, a.upper_bound);
  std::uint32_t flags = 0;
  if (a.exhausted) flags |= 1u;
  if (a.reachable) flags |= 2u;
  if (a.has_rtree) flags |= 4u;
  put_u32(meta, flags);

  if (a.reachable) {
    encode_graph_sections(w, a.graph);
    std::vector<std::byte>& o2n = w.add_section(kSecOldToNew);
    put_vid_vec(o2n, a.map.old_to_new);
    std::vector<std::byte>& n2o = w.add_section(kSecNewToOld);
    put_vid_vec(n2o, a.map.new_to_old);
    if (a.has_rtree) {
      std::vector<std::byte>& dist = w.add_section(kSecDist);
      put_f64_vec(dist, a.rtree.dist);
      std::vector<std::byte>& par = w.add_section(kSecParent);
      put_vid_vec(par, a.rtree.parent);
    }
  }
  std::vector<std::byte>& paths = w.add_section(kSecPaths);
  put_paths(paths, a.paths);
  return w.serialize();
}

fault::Status decode_pruned_snapshot(const Snapshot& snap,
                                     PrunedSnapshotArtifact& out) {
  if (snap.kind != kPrunedSnapshot)
    return data_loss("snapshot: kind is not kPrunedSnapshot");
  const Section* meta = need(snap, kSecMeta);
  if (!meta) return data_loss("snapshot: missing meta section");

  PrunedSnapshotArtifact a;
  Cursor mc(meta->bytes);
  std::uint32_t k = 0, flags = 0;
  if (!mc.get_u64(a.fingerprint) || !get_vid(mc, a.s) || !get_vid(mc, a.t) ||
      !mc.get_u32(k) || !mc.get_f64(a.upper_bound) || !mc.get_u32(flags) ||
      mc.remaining() != 0)
    return data_loss("snapshot: malformed meta section");
  a.k_budget = static_cast<int>(k);
  a.exhausted = (flags & 1u) != 0;
  a.reachable = (flags & 2u) != 0;
  a.has_rtree = (flags & 4u) != 0;
  if (a.k_budget <= 0) return data_loss("snapshot: non-positive k budget");
  if (a.s < 0 || a.t < 0) return data_loss("snapshot: negative endpoint id");
  if (std::isnan(a.upper_bound) || a.upper_bound < 0.0)
    return data_loss("snapshot: implausible upper bound");

  if (a.reachable) {
    fault::Status st = decode_graph_sections(snap, a.graph);
    if (!st.ok()) return st;
    const Section* o2n = need(snap, kSecOldToNew);
    const Section* n2o = need(snap, kSecNewToOld);
    if (!o2n || !n2o) return data_loss("snapshot: missing vertex-map section");
    Cursor oc(o2n->bytes);
    if (!get_vid_vec(oc, a.map.old_to_new) || oc.remaining() != 0)
      return data_loss("snapshot: malformed old-to-new section");
    Cursor nc(n2o->bytes);
    if (!get_vid_vec(nc, a.map.new_to_old) || nc.remaining() != 0)
      return data_loss("snapshot: malformed new-to-old section");
    const std::size_t n_new = static_cast<std::size_t>(a.graph.num_vertices());
    if (a.map.new_to_old.size() != n_new)
      return data_loss("snapshot: vertex map disagrees with compacted graph");
    const std::size_t n_old = a.map.old_to_new.size();
    for (std::size_t i = 0; i < n_new; ++i) {
      const vid_t o = a.map.new_to_old[i];
      if (o < 0 || static_cast<std::size_t>(o) >= n_old ||
          a.map.old_to_new[static_cast<std::size_t>(o)] !=
              static_cast<vid_t>(i))
        return data_loss("snapshot: vertex map is not a partial bijection");
    }
    for (std::size_t i = 0; i < n_old; ++i) {
      const vid_t nn = a.map.old_to_new[i];
      if (nn != kNoVertex &&
          (nn < 0 || static_cast<std::size_t>(nn) >= n_new))
        return data_loss("snapshot: old-to-new id out of range");
    }
    if (static_cast<std::size_t>(a.s) >= n_old ||
        static_cast<std::size_t>(a.t) >= n_old)
      return data_loss("snapshot: endpoint outside original id space");
    if (a.has_rtree) {
      const Section* dist = need(snap, kSecDist);
      const Section* par = need(snap, kSecParent);
      if (!dist || !par) return data_loss("snapshot: missing rtree section");
      Cursor dc(dist->bytes);
      if (!get_f64_vec(dc, a.rtree.dist) || dc.remaining() != 0)
        return data_loss("snapshot: malformed rtree distance section");
      Cursor pc(par->bytes);
      if (!get_vid_vec(pc, a.rtree.parent) || pc.remaining() != 0)
        return data_loss("snapshot: malformed rtree parent section");
      fault::Status ts = validate_tree_arrays(a.rtree, n_new);
      if (!ts.ok()) return ts;
    }
  } else if (a.has_rtree) {
    return data_loss("snapshot: rtree flagged on an unreachable snapshot");
  }

  const Section* paths = need(snap, kSecPaths);
  if (!paths) return data_loss("snapshot: missing path section");
  Cursor pc(paths->bytes);
  if (!get_paths(pc, a.paths) || pc.remaining() != 0)
    return data_loss("snapshot: malformed path section");
  if (a.paths.size() > static_cast<std::size_t>(a.k_budget))
    return data_loss("snapshot: more paths than the k budget allows");
  out = std::move(a);
  return {};
}

// ----------------------------------------------------- dist rank checkpoint

std::vector<std::byte> encode_dist_checkpoint(const DistCheckpoint& c) {
  SnapshotWriter w(kDistCheckpoint);
  std::vector<std::byte>& meta = w.add_section(kSecMeta);
  put_u64(meta, c.fingerprint);
  put_vid(meta, c.s);
  put_vid(meta, c.t);
  put_u32(meta, static_cast<std::uint32_t>(c.k));
  put_u32(meta, static_cast<std::uint32_t>(c.ranks));
  put_u32(meta, static_cast<std::uint32_t>(c.rank));
  put_u32(meta, static_cast<std::uint32_t>(c.cand_tag));
  std::vector<std::byte>& acc = w.add_section(kSecPaths);
  put_paths(acc, c.accepted);
  put_int_vec(acc, c.accepted_dev);
  std::vector<std::byte>& pend = w.add_section(kSecPending);
  put_paths(pend, c.pending);
  put_int_vec(pend, c.pending_dev);
  std::vector<std::byte>& seen = w.add_section(kSecSeen);
  put_paths(seen, c.seen);
  return w.serialize();
}

fault::Status decode_dist_checkpoint(const Snapshot& snap,
                                     DistCheckpoint& out) {
  if (snap.kind != kDistCheckpoint)
    return data_loss("checkpoint: kind is not kDistCheckpoint");
  const Section* meta = need(snap, kSecMeta);
  const Section* acc = need(snap, kSecPaths);
  const Section* pend = need(snap, kSecPending);
  const Section* seen = need(snap, kSecSeen);
  if (!meta || !acc || !pend || !seen)
    return data_loss("checkpoint: missing section");

  DistCheckpoint c;
  Cursor mc(meta->bytes);
  std::uint32_t k = 0, ranks = 0, rank = 0, tag = 0;
  if (!mc.get_u64(c.fingerprint) || !get_vid(mc, c.s) || !get_vid(mc, c.t) ||
      !mc.get_u32(k) || !mc.get_u32(ranks) || !mc.get_u32(rank) ||
      !mc.get_u32(tag) || mc.remaining() != 0)
    return data_loss("checkpoint: malformed meta section");
  c.k = static_cast<int>(k);
  c.ranks = static_cast<int>(ranks);
  c.rank = static_cast<int>(rank);
  c.cand_tag = static_cast<int>(tag);
  if (c.k <= 0 || c.ranks <= 0 || c.rank < 0 || c.rank >= c.ranks)
    return data_loss("checkpoint: implausible k/ranks/rank");
  if (c.s < 0 || c.t < 0) return data_loss("checkpoint: negative endpoint");

  Cursor ac(acc->bytes);
  if (!get_paths(ac, c.accepted) || !get_int_vec(ac, c.accepted_dev) ||
      ac.remaining() != 0 || c.accepted_dev.size() != c.accepted.size())
    return data_loss("checkpoint: malformed accepted section");
  Cursor pc(pend->bytes);
  if (!get_paths(pc, c.pending) || !get_int_vec(pc, c.pending_dev) ||
      pc.remaining() != 0 || c.pending_dev.size() != c.pending.size())
    return data_loss("checkpoint: malformed pending section");
  Cursor sc(seen->bytes);
  if (!get_paths(sc, c.seen) || sc.remaining() != 0)
    return data_loss("checkpoint: malformed seen section");
  if (c.accepted.size() > static_cast<std::size_t>(c.k))
    return data_loss("checkpoint: more accepted paths than k");
  out = std::move(c);
  return {};
}

}  // namespace peek::recover
