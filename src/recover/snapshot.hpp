// Crash-safe snapshot container format v2 (DESIGN.md §10).
//
// Every artifact this system persists — binary graphs, spilled SSSP trees,
// pruned (s,t) snapshots, distributed-KSP rank checkpoints — shares one
// on-disk container: an explicit little-endian header, a section table with
// one xxhash64 checksum per section, a checksum over the header+table
// themselves, and packed payloads. A reader can therefore prove, byte
// offset in hand, *which* part of a file is damaged: a truncated tail, a
// bit-flipped payload, a torn section table — each is a typed
// `fault::Status::kDataLoss` with the failing offset, never an exception
// from deep inside a deserializer and never silently wrong data.
//
// Writes follow the classic atomic-publish discipline (ARIES-style
// write-ahead thinking applied to whole-file snapshots): serialize to
// `path + ".tmp"`, fsync the file, rename over `path`, fsync the directory.
// A crash at any step leaves either the old file or the new file, plus at
// worst a stale `*.tmp` the recovery scan sweeps. Each step carries a
// deterministic fault probe (`recover.write.*`, DESIGN.md §9) so the chaos
// suite can kill the writer mid-flight on demand.
//
// Layout (all integers little-endian, regardless of host):
//
//   [0,8)    magic "PEEKSNP2"
//   [8,12)   format version (= 2)
//   [12,16)  payload kind (recover/artifacts.hpp enum)
//   [16,20)  section count S
//   [20,24)  reserved (0)
//   [24,..)  S section-table entries, 32 bytes each:
//              u32 id, u32 reserved, u64 offset, u64 length, u64 xxhash64
//   [..,+8)  u64 xxhash64 over everything above (header + table)
//   [..,end) payloads, packed contiguously in table order
//
// The reader rejects gaps between sections and trailing bytes after the
// last one, so the only bytes a valid file can contain are checksummed ones.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fault/status.hpp"

namespace peek::recover {

// ---------------------------------------------------------------- encoding

/// Appends one value to `out` in explicit little-endian byte order. The
/// byte-at-a-time form is deliberate: the format must not depend on host
/// endianness or struct layout.
void put_u32(std::vector<std::byte>& out, std::uint32_t v);
void put_u64(std::vector<std::byte>& out, std::uint64_t v);
void put_i64(std::vector<std::byte>& out, std::int64_t v);
void put_f64(std::vector<std::byte>& out, double v);
void put_bytes(std::vector<std::byte>& out, const void* p, std::size_t n);

/// Bounds-checked little-endian reader over a byte span. Every `get_*`
/// returns false (without advancing) when fewer bytes remain than requested
/// — decoders built on it can be fed arbitrary corrupt input and must
/// still terminate with a typed error.
struct Cursor {
  const std::byte* data = nullptr;
  std::size_t size = 0;
  std::size_t pos = 0;

  Cursor() = default;
  Cursor(const std::byte* d, std::size_t n) : data(d), size(n) {}
  explicit Cursor(const std::vector<std::byte>& v)
      : data(v.data()), size(v.size()) {}

  std::size_t remaining() const { return size - pos; }
  bool get_u32(std::uint32_t& v);
  bool get_u64(std::uint64_t& v);
  bool get_i64(std::int64_t& v);
  bool get_f64(double& v);
  bool get_bytes(void* dst, std::size_t n);
  bool skip(std::size_t n);
};

/// XXH64 (Yann Collet's xxHash, 64-bit variant) — the per-section checksum.
/// Implemented from scratch; validated against the published test vectors
/// in tests/test_recover.cpp.
std::uint64_t xxhash64(const void* data, std::size_t len,
                       std::uint64_t seed = 0);

// --------------------------------------------------------------- container

/// One named payload inside a snapshot file.
struct Section {
  std::uint32_t id = 0;
  std::vector<std::byte> bytes;
};

/// A fully validated snapshot: every section's checksum has been verified
/// before the caller sees any byte of it.
struct Snapshot {
  std::uint32_t kind = 0;
  std::vector<Section> sections;

  /// First section with `id`, or null.
  const Section* find(std::uint32_t id) const;
};

/// Outcome of parsing one snapshot image. On failure `status` is
/// kDataLoss (corrupt/truncated bytes) with a human-readable reason and
/// `error_offset` names the first byte the validator rejected.
struct ParseResult {
  fault::Status status;
  std::size_t error_offset = 0;
  Snapshot snap;
};

/// Builds and serializes one snapshot image.
class SnapshotWriter {
 public:
  explicit SnapshotWriter(std::uint32_t payload_kind) : kind_(payload_kind) {}

  /// Starts a new section and returns its buffer; append with put_*.
  std::vector<std::byte>& add_section(std::uint32_t id);

  /// Header + table + checksums + packed payloads.
  std::vector<std::byte> serialize() const;

  /// serialize() + write_file_atomic(). Counts recover.snapshots_written /
  /// recover.write_failures.
  fault::Status write_file(const std::string& path) const;

 private:
  std::uint32_t kind_;
  std::vector<Section> sections_;
};

/// Validates one in-memory snapshot image (header, table, every checksum,
/// no gaps, no trailing bytes). Never throws on corrupt input.
ParseResult parse_snapshot(const std::byte* data, std::size_t size);

/// Reads and validates a snapshot file. A missing/unreadable file is
/// kDataLoss with the OS reason; the path is prefixed onto every message.
ParseResult load_snapshot_file(const std::string& path);

/// Atomic durable publish: write `path + ".tmp"`, fsync, rename over
/// `path`, fsync the directory. Fault probes `recover.write.tear` (returns
/// mid-write, leaving a torn tmp file exactly as a crash would),
/// `recover.write.fsync` and `recover.write.rename` (the step fails before
/// the file becomes visible). On any failure the previous `path` content,
/// if any, is untouched.
fault::Status write_file_atomic(const std::string& path, const std::byte* data,
                                std::size_t size);

/// Moves a corrupt file out of the scan set: renames `path` to
/// `path + ".corrupt"` and records the typed reason in
/// `path + ".corrupt.reason"`. Counts recover.quarantined.
fault::Status quarantine_file(const std::string& path,
                              const fault::Status& why);

}  // namespace peek::recover
