// Typed artifact codecs over the snapshot container (recover/snapshot.hpp).
//
// Each persistable artifact — CSR graph, SSSP tree, pruned (s,t) serving
// snapshot, distributed-KSP rank checkpoint — gets an encode_* that packs it
// into checksummed sections and a decode_* that rebuilds it from an
// already-validated Snapshot. Decoders re-validate *semantics* on top of the
// container's checksums (array lengths agree, row offsets monotone, vertex
// ids in range): a checksum proves the bytes survived the disk, not that the
// writer was sane or that the file matches the graph now being served.
//
// Artifacts that only make sense against one specific graph (trees,
// snapshots, checkpoints) embed a `graph_fingerprint` of that graph; loaders
// compare it before trusting anything. A mismatch is *staleness*, not
// corruption — callers skip the file instead of quarantining it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "compact/regeneration.hpp"
#include "graph/csr.hpp"
#include "recover/snapshot.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/path.hpp"

namespace peek::serve {
struct PrunedSnapshot;  // serve/artifact_cache.hpp
}

namespace peek::recover {

/// Payload kind tags (snapshot header field). Stable on-disk values.
enum ArtifactId : std::uint32_t {
  kCsrGraph = 1,
  kSsspTree = 2,
  kPrunedSnapshot = 3,
  kDistCheckpoint = 4,
};

/// Content hash of a graph (n, m, and all three CSR arrays). Two graphs with
/// equal structure and weights fingerprint equally regardless of provenance.
std::uint64_t graph_fingerprint(const graph::CsrGraph& g);

// -------------------------------------------------------------------- graph

/// Serializes `g` as a kCsrGraph snapshot image.
std::vector<std::byte> encode_graph(const graph::CsrGraph& g);

/// Rebuilds a graph from a validated kCsrGraph snapshot. kDataLoss when the
/// sections are missing or semantically inconsistent.
fault::Status decode_graph(const Snapshot& snap, graph::CsrGraph& out);

// ---------------------------------------------------------------- SSSP tree

/// A persisted SSSP tree: which graph it belongs to, which root, which
/// direction, plus the tree arrays themselves.
struct TreeArtifact {
  std::uint64_t fingerprint = 0;  // graph_fingerprint of the owning graph
  vid_t root = kNoVertex;
  bool reverse = false;  // true = reverse_dijkstra tree (keyed on target)
  sssp::SsspResult tree;
};

std::vector<std::byte> encode_tree(const TreeArtifact& a);
fault::Status decode_tree(const Snapshot& snap, TreeArtifact& out);

// ----------------------------------------------------- pruned (s,t) snapshot

/// A persisted serve::PrunedSnapshot, including the reverse tree its
/// KspStream was warm-started with so a restored stream deviates with the
/// exact same tie-breaks as the original.
struct PrunedSnapshotArtifact {
  std::uint64_t fingerprint = 0;  // fingerprint of the ORIGINAL graph
  vid_t s = kNoVertex, t = kNoVertex;  // original ids
  int k_budget = 0;
  weight_t upper_bound = kInfDist;
  bool exhausted = false;
  bool reachable = false;  // false = cached negative answer (no graph)
  graph::CsrGraph graph;   // compacted subgraph (valid when reachable)
  compact::VertexMap map;
  std::vector<sssp::Path> paths;  // original ids
  /// Reverse tree over the compacted graph, when the live stream had one
  /// (primed). Empty dist/parent when absent.
  bool has_rtree = false;
  sssp::SsspResult rtree;
};

std::vector<std::byte> encode_pruned_snapshot(const PrunedSnapshotArtifact& a);
fault::Status decode_pruned_snapshot(const Snapshot& snap,
                                     PrunedSnapshotArtifact& out);

// ------------------------------------------------------- dist rank checkpoint

/// Per-rank stage-4 state of dist::DistPeek, written after every accepted
/// round. All ranks run the replicated-state algorithm, so one rank's
/// checkpoint is enough to resume that rank deterministically.
struct DistCheckpoint {
  std::uint64_t fingerprint = 0;
  vid_t s = kNoVertex, t = kNoVertex;
  int k = 0;
  int ranks = 0;
  int rank = 0;
  int cand_tag = 0;  // next allgather tag (kept in lockstep across ranks)
  std::vector<sssp::Path> accepted;      // globally accepted so far, in order
  std::vector<int> accepted_dev;         // deviation index per accepted path
  std::vector<sssp::Path> pending;       // candidate heap contents
  std::vector<int> pending_dev;
  std::vector<sssp::Path> seen;          // dedup set (sorted for determinism)
};

std::vector<std::byte> encode_dist_checkpoint(const DistCheckpoint& c);
fault::Status decode_dist_checkpoint(const Snapshot& snap, DistCheckpoint& out);

// ------------------------------------------------------------------ helpers

/// Section codec for a Path list (shared by snapshot + checkpoint codecs).
void put_paths(std::vector<std::byte>& out, const std::vector<sssp::Path>& ps);
bool get_paths(Cursor& cur, std::vector<sssp::Path>& out);

}  // namespace peek::recover
