#include "check/certify.hpp"

#include <cmath>
#include <string>

namespace peek::check {

namespace {

std::string path_label(size_t i) {
  return "path[" + std::to_string(i) + "]";
}

/// |a - b| within rel_eps of max(1, |a|, |b|) — distances are sums of
/// nonnegative weights, so a plain relative comparison is enough.
bool close_enough(weight_t a, weight_t b, double rel_eps) {
  const double da = static_cast<double>(a);
  const double db = static_cast<double>(b);
  const double scale = std::max({1.0, std::fabs(da), std::fabs(db)});
  return std::fabs(da - db) <= rel_eps * scale;
}

}  // namespace

fault::Status certify_paths(const graph::CsrGraph& g, vid_t s, vid_t t,
                            const std::vector<sssp::Path>& paths,
                            const CertifyOptions& opts) {
  using fault::Status;
  for (size_t i = 0; i < paths.size(); ++i) {
    const sssp::Path& p = paths[i];
    if (p.verts.empty()) {
      return Status{Status::kInternal, path_label(i) + " is empty"};
    }
    if (p.verts.front() != s || p.verts.back() != t) {
      return Status{Status::kInternal,
                    path_label(i) + " endpoints are not (s, t)"};
    }
    for (const vid_t v : p.verts) {
      if (v < 0 || v >= g.num_vertices()) {
        return Status{Status::kInternal,
                      path_label(i) + " leaves the vertex range"};
      }
    }
    if (!sssp::is_simple(p)) {
      return Status{Status::kInternal,
                    path_label(i) + " repeats a vertex (not simple)"};
    }
    // Edge-consistency + claimed length: path_distance walks find_edge hop
    // by hop and returns kInfDist on the first missing edge.
    const weight_t walked = sssp::path_distance(g, p.verts);
    if (walked == kInfDist) {
      return Status{Status::kInternal,
                    path_label(i) + " uses an edge absent from the CSR"};
    }
    if (!close_enough(walked, p.dist, opts.rel_eps)) {
      return Status{Status::kInternal,
                    path_label(i) + " claims a distance its edges do not sum "
                                    "to"};
    }
    if (i > 0 && p.dist < paths[i - 1].dist) {
      return Status{Status::kInternal,
                    path_label(i) + " is shorter than its predecessor "
                                    "(order violated)"};
    }
    // Sorted (dist, lex) order puts duplicates side by side, so an adjacent
    // check suffices for the distinctness requirement.
    if (i > 0 && p.verts == paths[i - 1].verts) {
      return Status{Status::kInternal,
                    path_label(i) + " duplicates its predecessor"};
    }
    if (opts.upper_bound != kInfDist &&
        static_cast<double>(p.dist) >
            static_cast<double>(opts.upper_bound) * (1.0 + opts.rel_eps)) {
      return Status{Status::kInternal,
                    path_label(i) + " exceeds the K-bound pruning upper "
                                    "bound"};
    }
  }
  return Status{};
}

}  // namespace peek::check
