// Compiler-enforced lock discipline (DESIGN.md §13).
//
// Two layers:
//
//   1. PEEK_* annotation macros over clang's thread-safety analysis
//      (-Wthread-safety). On clang they expand to the capability attributes;
//      on every other compiler they vanish, so GCC builds are unaffected.
//      CI compiles the library with clang and -Werror=thread-safety, turning
//      any lock/data pairing the compiler cannot prove into a build break.
//
//   2. Annotated lock types. libstdc++'s std::mutex / std::lock_guard carry
//      no capability attributes, so the analysis cannot see their
//      acquire/release edges. check::Mutex wraps std::mutex as a real
//      capability; check::MutexLock / check::UniqueLock are its scoped
//      acquirers; check::CondVar adapts std::condition_variable to
//      UniqueLock. Every mutex-holding class in the library uses these
//      types, and every field a mutex protects names it with
//      PEEK_GUARDED_BY — the annotation is load-bearing documentation *and*
//      a compile-time proof obligation.
//
// Conventions (enforced by tools/peek_analyze.py, check `locks`):
//   - every Mutex / std::mutex member must be named by at least one
//     PEEK_GUARDED_BY / PEEK_PT_GUARDED_BY in the same class, or carry a
//     `// ts-allow: <reason>` waiver on its declaration (for disciplines the
//     analysis cannot express, e.g. an array of per-index locks);
//   - condition-variable waits whose predicate reads guarded state are
//     written as explicit while loops, not lambda predicates — clang
//     analyzes lambdas as separate functions and cannot see the held lock.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------- macros

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define PEEK_TS_ATTR(x) __attribute__((x))
#endif
#endif
#ifndef PEEK_TS_ATTR
#define PEEK_TS_ATTR(x)  // no-op on GCC/MSVC: annotations are clang-only
#endif

/// Declares a type to be a lockable capability (clang tracks acquisition).
#define PEEK_CAPABILITY(x) PEEK_TS_ATTR(capability(x))
/// Declares an RAII type whose lifetime equals holding a capability.
#define PEEK_SCOPED_CAPABILITY PEEK_TS_ATTR(scoped_lockable)
/// Field is readable/writable only while holding `x`.
#define PEEK_GUARDED_BY(x) PEEK_TS_ATTR(guarded_by(x))
/// Pointee (not the pointer) is guarded by `x`.
#define PEEK_PT_GUARDED_BY(x) PEEK_TS_ATTR(pt_guarded_by(x))
/// Function may only be called while holding the named capabilities.
#define PEEK_REQUIRES(...) PEEK_TS_ATTR(requires_capability(__VA_ARGS__))
#define PEEK_REQUIRES_SHARED(...) \
  PEEK_TS_ATTR(requires_shared_capability(__VA_ARGS__))
/// Function acquires / releases the named capabilities (no argument inside a
/// scoped capability = the capabilities the scoped object manages).
#define PEEK_ACQUIRE(...) PEEK_TS_ATTR(acquire_capability(__VA_ARGS__))
#define PEEK_ACQUIRE_SHARED(...) \
  PEEK_TS_ATTR(acquire_shared_capability(__VA_ARGS__))
#define PEEK_RELEASE(...) PEEK_TS_ATTR(release_capability(__VA_ARGS__))
#define PEEK_RELEASE_SHARED(...) \
  PEEK_TS_ATTR(release_shared_capability(__VA_ARGS__))
/// Function attempts acquisition; first argument is the success value.
#define PEEK_TRY_ACQUIRE(...) PEEK_TS_ATTR(try_acquire_capability(__VA_ARGS__))
/// Function must be called WITHOUT the named capabilities (deadlock guard).
#define PEEK_EXCLUDES(...) PEEK_TS_ATTR(locks_excluded(__VA_ARGS__))
/// Returns a reference to the named capability.
#define PEEK_RETURN_CAPABILITY(x) PEEK_TS_ATTR(lock_returned(x))
/// Escape hatch: the function's locking cannot be expressed to the analysis.
/// Pair with a comment saying why (peek_analyze's waiver rules apply).
#define PEEK_NO_THREAD_SAFETY_ANALYSIS \
  PEEK_TS_ATTR(no_thread_safety_analysis)

namespace peek::check {

class MutexLock;
class UniqueLock;
class CondVar;

/// std::mutex as a clang capability. Same cost, same semantics; the wrapper
/// exists only so acquire/release edges are visible to the analysis.
class PEEK_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PEEK_ACQUIRE() { mu_.lock(); }
  void unlock() PEEK_RELEASE() { mu_.unlock(); }
  bool try_lock() PEEK_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  friend class UniqueLock;
  // ts-allow: this raw mutex IS the capability the wrapper class exposes
  std::mutex mu_;
};

/// std::lock_guard over a Mutex: held for the full scope, never released
/// early. The bodies act on the raw std::mutex — calling the annotated
/// Mutex::lock() from a constructor already marked PEEK_ACQUIRE would read
/// to the analysis as a double acquisition.
class PEEK_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PEEK_ACQUIRE(mu) : mu_(mu) { mu_.mu_.lock(); }
  ~MutexLock() PEEK_RELEASE() { mu_.mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// std::unique_lock over a Mutex: relockable (unlock()/lock() mid-scope) and
/// the handle CondVar waits on. Constructed locked.
class PEEK_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) PEEK_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~UniqueLock() PEEK_RELEASE() = default;

  void lock() PEEK_ACQUIRE() { lock_.lock(); }
  void unlock() PEEK_RELEASE() { lock_.unlock(); }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// std::condition_variable adapted to UniqueLock. Waits release and reacquire
/// the lock internally; to the analysis the capability is simply held across
/// the call, which is exactly the contract predicate loops rely on. Waits
/// take no predicate by design — write the enclosing while loop yourself so
/// guarded reads happen in the annotated function, not inside a lambda the
/// analysis treats as a separate unannotated function.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  void wait(UniqueLock& lock) { cv_.wait(lock.lock_); }

  template <typename Rep, typename Period>
  std::cv_status wait_for(UniqueLock& lock,
                          const std::chrono::duration<Rep, Period>& d) {
    return cv_.wait_for(lock.lock_, d);
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      UniqueLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

 private:
  std::condition_variable cv_;
};

}  // namespace peek::check
