#include "check/invariants.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "graph/csr.hpp"

namespace peek::check {

void dcheck_fail(const char* expr, const char* file, int line,
                 const char* why) {
  if (why != nullptr && why[0] != '\0') {
    std::fprintf(stderr, "PEEK_DCHECK failed: %s at %s:%d — %s\n", expr, file,
                 line, why);
  } else {
    std::fprintf(stderr, "PEEK_DCHECK failed: %s at %s:%d\n", expr, file,
                 line);
  }
  std::fflush(stderr);
  std::abort();
}

namespace {

bool fail(std::string* why, std::string message) {
  if (why != nullptr) *why = std::move(message);
  return false;
}

}  // namespace

bool validate_csr(const graph::CsrGraph& g, std::string* why) {
  const vid_t n = g.num_vertices();
  const eid_t m = g.num_edges();
  const auto row = g.row_offsets();
  const auto col = g.col();
  const auto wgt = g.weights();
  if (n < 0) return fail(why, "negative vertex count");
  if (m < 0) return fail(why, "negative edge count");
  if (n == 0) {
    // Default-constructed empty graph: all arrays empty is the only valid
    // shape.
    if (!row.empty() || m != 0)
      return fail(why, "empty graph with non-empty arrays");
    return true;
  }
  if (row.size() != static_cast<size_t>(n) + 1)
    return fail(why, "row_offsets size is not n+1");
  if (col.size() != static_cast<size_t>(m))
    return fail(why, "col size is not m");
  if (wgt.size() != static_cast<size_t>(m))
    return fail(why, "weights size is not m");
  if (row.front() != 0) return fail(why, "row_offsets[0] != 0");
  if (row.back() != m) return fail(why, "row_offsets[n] != m");
  for (vid_t v = 0; v < n; ++v) {
    if (row[static_cast<size_t>(v)] > row[static_cast<size_t>(v) + 1])
      return fail(why,
                  "row_offsets not monotone at vertex " + std::to_string(v));
  }
  for (eid_t e = 0; e < m; ++e) {
    const vid_t t = col[static_cast<size_t>(e)];
    if (t < 0 || t >= n)
      return fail(why, "column id out of range at edge " + std::to_string(e));
    const weight_t w = wgt[static_cast<size_t>(e)];
    if (std::isnan(w) || std::isinf(w) || w < 0)
      return fail(why, "bad weight at edge " + std::to_string(e));
  }
  return true;
}

}  // namespace peek::check
