// Library-internal invariant checking.
//
// PEEK_DCHECK(cond) is the repo's only sanctioned debug assertion: it prints
// the failing expression with its location and aborts. Unlike <cassert> it
// has a single, CMake-controlled switch (PEEK_DCHECK_ENABLED, default: on in
// Debug builds, off under NDEBUG), never evaluates its argument when
// disabled, and is allowed in headers consumed by every build flavour.
// Library code must not use assert() — tools/peek_lint.py enforces this.
//
// check::validate_csr is a full structural validator for CsrGraph (offset
// monotonicity, endpoint sentinels, column range, weight sanity). It is
// always compiled — the race-stress suite runs it on concurrently shared and
// freshly compacted graphs — while PEEK_DCHECK_VALID_CSR gates it behind the
// debug switch for use inside the library itself.
#pragma once

#include <string>

namespace peek::graph {
class CsrGraph;  // graph/csr.hpp
}

namespace peek::check {

/// Prints "PEEK_DCHECK failed: <expr> at <file>:<line>" (plus `why` when
/// non-empty) to stderr and aborts. Out of line so the macro stays small.
[[noreturn]] void dcheck_fail(const char* expr, const char* file, int line,
                              const char* why = "");

/// Exhaustive CSR structural check: row_offsets has n+1 entries framing
/// [0, m], offsets are monotone, every column id is in [0, n), weights are
/// finite and non-negative, and the weight array matches the edge count.
/// Returns false and fills `*why` (when given) with the first violation.
bool validate_csr(const graph::CsrGraph& g, std::string* why = nullptr);

}  // namespace peek::check

#ifndef PEEK_DCHECK_ENABLED
#ifdef NDEBUG
#define PEEK_DCHECK_ENABLED 0
#else
#define PEEK_DCHECK_ENABLED 1
#endif
#endif

#if PEEK_DCHECK_ENABLED

#define PEEK_DCHECK(cond)                                        \
  do {                                                           \
    if (!(cond)) ::peek::check::dcheck_fail(#cond, __FILE__, __LINE__); \
  } while (0)

#define PEEK_DCHECK_MSG(cond, why)                                      \
  do {                                                                  \
    if (!(cond))                                                        \
      ::peek::check::dcheck_fail(#cond, __FILE__, __LINE__, (why));     \
  } while (0)

/// Debug-only full structural validation of a CsrGraph.
#define PEEK_DCHECK_VALID_CSR(g)                                           \
  do {                                                                     \
    std::string peek_dcheck_why_;                                          \
    if (!::peek::check::validate_csr((g), &peek_dcheck_why_))              \
      ::peek::check::dcheck_fail("validate_csr(" #g ")", __FILE__,         \
                                 __LINE__, peek_dcheck_why_.c_str());      \
  } while (0)

#else  // PEEK_DCHECK_ENABLED

// sizeof keeps the operands name-checked (so disabled checks cannot rot and
// checked-only locals stay "used") without ever evaluating them.
#define PEEK_DCHECK(cond) ((void)sizeof(!(cond)))
#define PEEK_DCHECK_MSG(cond, why) ((void)sizeof(!(cond)), (void)sizeof(why))
#define PEEK_DCHECK_VALID_CSR(g) ((void)sizeof(&(g)))

#endif  // PEEK_DCHECK_ENABLED
