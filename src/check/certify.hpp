// Answer certification for served K-shortest-path results (DESIGN.md §14).
//
// An O(K · len) validator over the paths a query is about to return: each
// path must start at s, end at t, be simple (Definition 1 looplessness),
// walk only edges that exist in the CSR with weights summing to its claimed
// distance, and the path list must be nondecreasing in distance and respect
// the K-bound prune invariant (paper Theorem 4.3: every served path's
// distance is <= the pruning upper bound of the snapshot that answered).
//
// The point is cheap corruption detection at the serving boundary: PeeK's
// prune-safety theorem makes "every answer re-checkable against the graph"
// a constant-factor cost on top of producing the paths, which is what lets
// the sharded fleet distinguish a *slow* replica (breaker territory) from a
// *wrong* one (quarantine + warm-restart territory) at runtime.
#pragma once

#include <vector>

#include "fault/status.hpp"
#include "graph/csr.hpp"
#include "sssp/path.hpp"

namespace peek::check {

struct CertifyOptions {
  /// Relative tolerance when comparing a path's claimed distance against the
  /// left-to-right recomputation over the CSR. Nonzero because Yen-family
  /// engines accumulate prefix+suffix sums in a different order than the
  /// certifier's linear walk.
  double rel_eps = 1e-6;
  /// K-bound prune invariant: every certified path's distance must be
  /// <= this bound (within rel_eps). kInfDist disables the check.
  weight_t upper_bound = kInfDist;
};

/// Certifies `paths` as a served answer for (s, t). Returns kOk, or
/// kInternal with a message naming the first offending path and why.
/// An empty path list certifies trivially (unreachable targets).
fault::Status certify_paths(const graph::CsrGraph& g, vid_t s, vid_t t,
                            const std::vector<sssp::Path>& paths,
                            const CertifyOptions& opts = {});

}  // namespace peek::check
