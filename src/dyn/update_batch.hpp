// Live-mutation update batches and their affected regions (DESIGN.md §15).
//
// An UpdateBatch is an ordered list of edge operations (insert / delete /
// reweight) applied atomically to a dyn::DynamicGraph. Instead of bumping a
// global version and nuking every cached artifact, the serving layer asks
// this module two questions about an *applied* batch:
//
//   1. Which vertices of a cached SSSP tree can the batch have touched?
//      cone_threshold() answers with a distance bound T: every vertex whose
//      pre-mutation tree distance is < T is provably unaffected, so repair
//      (dyn/repair.hpp) only re-runs Dijkstra inside the cone {dist >= T}.
//      Soundness (first-batch-edge argument): any path whose length changes
//      crosses a batch edge; the *first* batch edge (u,v) on it is reached
//      through pre-existing edges only, so the path is at least
//      dist_pre[u] + min(w_old, w_new) long — hence any affected vertex sits
//      at distance >= T = min over ops of that sum. Ops whose tail vertex is
//      unreachable pre-mutation contribute nothing: they cannot be the first
//      batch edge on any path. The same bound covers multi-op chains through
//      previously-unreachable vertices for free.
//
//   2. Can the batch change the K-shortest-path answer of a cached (s, t)
//      snapshot? pair_impact() tests every op as the candidate first batch
//      edge of a changed path: ds[u] + min_w + S(v) <= upper_bound + slack,
//      where ds is the cached forward tree of s, and S(v) is a lower bound
//      on the *post-mutation* v -> t distance obtained by a tiny Bellman-Ford
//      over the batch's target vertices (pre-segments between batch edges
//      are bounded below by zero, the final segment by the cached reverse
//      tree minus the batch's total reweight decrease). Pairs that no op can
//      reach within budget are provably unchanged — the engine serves their
//      cached answers fresh, no repair needed.
//
// The impact classification also decides bounded-staleness eligibility: a
// pair affected only by reweight ops keeps a bijective path space, so every
// order statistic of the path-weight multiset moves by at most
// weight_bound = sum of |w_new - w_old| — the error bound the engine attaches
// to stale answers. A pair affected by an insert or delete has no such bound
// and must never be served stale.
#pragma once

#include <cstdint>
#include <vector>

#include "dyn/dynamic_graph.hpp"
#include "sssp/dijkstra.hpp"

namespace peek::dyn {

enum class OpKind : std::uint8_t { kInsert, kDelete, kReweight };

struct EdgeOp {
  OpKind kind = OpKind::kReweight;
  vid_t u = kNoVertex;
  vid_t v = kNoVertex;
  /// New weight for insert/reweight; ignored for delete.
  weight_t weight = 0;
};

/// A to-be-applied group of edge mutations. Built by callers, applied once
/// via apply(); order matters (a delete after an insert of the same edge
/// removes it again).
struct UpdateBatch {
  std::vector<EdgeOp> ops;

  UpdateBatch& insert(vid_t u, vid_t v, weight_t w) {
    ops.push_back({OpKind::kInsert, u, v, w});
    return *this;
  }
  UpdateBatch& erase(vid_t u, vid_t v) {
    ops.push_back({OpKind::kDelete, u, v, 0});
    return *this;
  }
  UpdateBatch& reweight(vid_t u, vid_t v, weight_t w) {
    ops.push_back({OpKind::kReweight, u, v, w});
    return *this;
  }
  bool empty() const { return ops.empty(); }
};

/// One op as it actually landed: old weight recorded for delete/reweight
/// (kInfDist for inserts), applied=false when a delete/reweight found no
/// such edge (the op is then a no-op and excluded from every impact bound).
struct AppliedOp {
  EdgeOp op;
  weight_t old_weight = kInfDist;
  bool applied = false;

  /// min(w_old, w_new): the smallest weight this edge ever had across the
  /// mutation — the sound per-op term of every cone/pair bound.
  weight_t min_weight() const;
  bool structural() const {
    return op.kind == OpKind::kInsert || op.kind == OpKind::kDelete;
  }
};

/// An applied batch plus the mutation epoch the owning engine assigned it.
struct AppliedBatch {
  std::uint64_t epoch = 0;
  std::vector<AppliedOp> ops;

  /// Any applied insert/delete (edge set changed)?
  bool structural() const;
  /// Sum of |w_new - w_old| over applied reweight ops — the two-sided bound
  /// on how far any simple path's weight (hence any order statistic of the
  /// K-shortest answer) can move when the edge set is unchanged.
  weight_t weight_delta_sum() const;
  /// Sum of max(0, w_old - w_new) over applied reweight ops: the most any
  /// pre-mutation distance can shrink without crossing an inserted edge.
  weight_t weight_decrease_sum() const;
  bool any_applied() const;
};

/// Applies `batch` to `g` in order (single-writer: the caller serializes
/// mutations, as with every DynamicGraph method). Returns the per-op record;
/// epoch is left 0 for the caller to stamp.
AppliedBatch apply(DynamicGraph& g, const UpdateBatch& batch);

/// Cone threshold of `b` against a cached SSSP tree: vertices with
/// tree.dist < threshold are provably unaffected by the batch. `reverse`
/// selects reverse-tree orientation (tree.dist[x] = distance x -> root; the
/// anchoring endpoint of each op is then v, not u). Returns kInfDist when no
/// applied op can touch the tree at all.
weight_t cone_threshold(const AppliedBatch& b, const sssp::SsspResult& tree,
                        bool reverse);

/// The cone itself: mask[x] != 0 iff tree.dist[x] >= threshold (with a
/// relative epsilon so float rounding never shrinks the cone). Unreachable
/// vertices (kInfDist) are always inside. Test/diagnostic helper — repair
/// recomputes the mask inline.
std::vector<std::uint8_t> cone_mask(const sssp::SsspResult& tree,
                                    weight_t threshold);

/// How an applied batch can touch the cached answer of one (s, t) pair.
struct PairImpact {
  /// False: the K-shortest answer is provably identical pre/post mutation.
  bool affected = false;
  /// Some insert/delete op reaches the pair within budget — the answer may
  /// gain or lose paths, no staleness bound exists.
  bool structural = false;
  /// Valid when affected && !structural: every order statistic of the true
  /// post-mutation answer is within weight_bound of the pre-mutation one.
  weight_t weight_bound = 0;
};

/// Impact of `b` on the cached (s, t) snapshot with prune bound
/// `upper_bound`. `fwd` is the cached full-graph forward tree of s, `rev`
/// the cached reverse tree of t, both pre-mutation; pass null for either to
/// get the conservative answer (affected, structural iff the batch is).
PairImpact pair_impact(const AppliedBatch& b, const sssp::SsspResult* fwd,
                       const sssp::SsspResult* rev, weight_t upper_bound);

/// Post-mutation CSR snapshot, cheaply: a reweight-only batch patches the
/// weights of `base` in place (edge ids and adjacency preserved); a
/// structural batch falls back to g.to_csr(). `base` must be the
/// pre-mutation snapshot of `g`.
graph::CsrGraph patched_csr(const DynamicGraph& g, const graph::CsrGraph& base,
                            const AppliedBatch& b);

}  // namespace peek::dyn
