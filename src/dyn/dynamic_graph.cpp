#include "dyn/dynamic_graph.hpp"

#include <algorithm>

#include "graph/builder.hpp"

namespace peek::dyn {

DynamicGraph::DynamicGraph(vid_t n) : rows_(static_cast<size_t>(n)) {}

DynamicGraph::DynamicGraph(const CsrGraph& g)
    : rows_(static_cast<size_t>(g.num_vertices())) {
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    for (eid_t e = g.edge_begin(u); e < g.edge_end(u); ++e) {
      insert_edge(u, g.edge_target(e), g.edge_weight(e));
    }
  }
}

void DynamicGraph::insert_edge(vid_t u, vid_t v, weight_t w) {
  Row& row = rows_[u];
  if (row.inline_count < kInlineSlots) {
    row.inline_buf[row.inline_count++] = {v, w};
  } else if (!row.tree.empty() || row.overflow.size() >= kTreeThreshold) {
    // Hub: the tree level absorbs new edges; on first promotion the packed
    // level migrates wholesale (Terrace's level promotion).
    if (row.tree.empty()) {
      for (const Edge& e : row.overflow) row.tree.emplace(e.to, e.weight);
      row.overflow.clear();
      row.overflow.shrink_to_fit();
    }
    row.tree.emplace(v, w);
  } else {
    auto it = std::lower_bound(
        row.overflow.begin(), row.overflow.end(), v,
        [](const Edge& e, vid_t target) { return e.to < target; });
    row.overflow.insert(it, {v, w});
  }
  m_++;
  bump_version();
}

bool DynamicGraph::delete_edge(vid_t u, vid_t v) {
  Row& row = rows_[u];
  for (int i = 0; i < row.inline_count; ++i) {
    if (row.inline_buf[static_cast<size_t>(i)].to == v) {
      // Back-fill from the overflow level (keeps the inline level full) or
      // from the inline tail.
      if (!row.overflow.empty()) {
        row.inline_buf[static_cast<size_t>(i)] = row.overflow.front();
        row.overflow.erase(row.overflow.begin());
      } else {
        row.inline_buf[static_cast<size_t>(i)] =
            row.inline_buf[static_cast<size_t>(row.inline_count - 1)];
        row.inline_count--;
      }
      m_--;
      bump_version();
      return true;
    }
  }
  auto it = std::lower_bound(
      row.overflow.begin(), row.overflow.end(), v,
      [](const Edge& e, vid_t target) { return e.to < target; });
  if (it != row.overflow.end() && it->to == v) {
    row.overflow.erase(it);
    m_--;
    bump_version();
    return true;
  }
  auto tit = row.tree.find(v);
  if (tit != row.tree.end()) {
    row.tree.erase(tit);
    m_--;
    bump_version();
    return true;
  }
  return false;
}

weight_t DynamicGraph::reweight_edge(vid_t u, vid_t v, weight_t w) {
  Row& row = rows_[u];
  for (int i = 0; i < row.inline_count; ++i) {
    Edge& e = row.inline_buf[static_cast<size_t>(i)];
    if (e.to == v) {
      const weight_t old = e.weight;
      e.weight = w;
      bump_version();
      return old;
    }
  }
  auto it = std::lower_bound(
      row.overflow.begin(), row.overflow.end(), v,
      [](const Edge& e, vid_t target) { return e.to < target; });
  if (it != row.overflow.end() && it->to == v) {
    const weight_t old = it->weight;
    it->weight = w;
    bump_version();
    return old;
  }
  auto tit = row.tree.find(v);
  if (tit != row.tree.end()) {
    const weight_t old = tit->second;
    tit->second = w;
    bump_version();
    return old;
  }
  return kInfDist;
}

weight_t DynamicGraph::edge_weight(vid_t u, vid_t v) const {
  const Row& row = rows_[u];
  for (int i = 0; i < row.inline_count; ++i) {
    const Edge& e = row.inline_buf[static_cast<size_t>(i)];
    if (e.to == v) return e.weight;
  }
  auto it = std::lower_bound(
      row.overflow.begin(), row.overflow.end(), v,
      [](const Edge& e, vid_t target) { return e.to < target; });
  if (it != row.overflow.end() && it->to == v) return it->weight;
  auto tit = row.tree.find(v);
  if (tit != row.tree.end()) return tit->second;
  return kInfDist;
}

DynamicGraph::Level DynamicGraph::level_of(vid_t v) const {
  const Row& row = rows_[v];
  if (!row.tree.empty()) return Level::kTree;
  if (!row.overflow.empty()) return Level::kOverflow;
  return Level::kInline;
}

void DynamicGraph::delete_vertex(vid_t v) {
  Row& row = rows_[v];
  if (!row.alive) return;
  m_ -= out_degree(v);
  bump_version();
  row.alive = false;
  row.inline_count = 0;
  row.overflow.clear();
  row.overflow.shrink_to_fit();
  row.tree.clear();
}

eid_t DynamicGraph::out_degree(vid_t v) const {
  const Row& row = rows_[v];
  if (!row.alive) return 0;
  return static_cast<eid_t>(row.inline_count) +
         static_cast<eid_t>(row.overflow.size()) +
         static_cast<eid_t>(row.tree.size());
}

CsrGraph DynamicGraph::to_csr() const {
  graph::Builder b(num_vertices());
  b.set_dedup(false);
  for (vid_t v = 0; v < num_vertices(); ++v) {
    for_each_neighbor(v, [&](vid_t w, weight_t wt) { b.add_edge(v, w, wt); });
  }
  return b.build();
}

}  // namespace peek::dyn
