// Dijkstra over the dynamic container — the downstream task of the Figure 12
// end-to-end comparison (update + SSSP).
#pragma once

#include "dyn/dynamic_graph.hpp"
#include "sssp/dijkstra.hpp"

namespace peek::dyn {

/// SSSP from `source` over the dynamic graph (distances + parents, same
/// conventions as sssp::dijkstra).
sssp::SsspResult dynamic_dijkstra(const DynamicGraph& g, vid_t source,
                                  vid_t target = kNoVertex);

}  // namespace peek::dyn
