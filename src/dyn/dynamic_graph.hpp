// Terrace-style hierarchical dynamic graph container — the Figure 12
// comparator. Like Terrace (Pandey et al. 2021), each vertex stores its
// neighbours in a degree-dependent hierarchy: a small inline buffer for the
// common low-degree case, a sorted packed vector for medium degrees (the
// PMA level), and an ordered tree (std::map as the B-tree stand-in) for
// hubs. Point insertions/deletions are cheap-ish; the price relative to a
// packed CSR is paid in locality and per-edge update work — exactly the
// trade-off the paper measures against batch compaction.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "graph/csr.hpp"

namespace peek::dyn {

using graph::CsrGraph;

class DynamicGraph {
 public:
  static constexpr int kInlineSlots = 8;
  /// Overflow size beyond which a vertex promotes to the tree level.
  static constexpr size_t kTreeThreshold = 128;

  explicit DynamicGraph(vid_t n);
  /// Bulk-load from a CSR (keeps the CSR's edge order per vertex).
  explicit DynamicGraph(const CsrGraph& g);

  vid_t num_vertices() const { return static_cast<vid_t>(rows_.size()); }
  eid_t num_edges() const { return m_; }

  /// Monotonic structural version: bumped by every successful insert_edge /
  /// delete_edge / reweight_edge / delete_vertex (bulk-load counts as its
  /// insertions). The serving layer (serve/query_engine) compares this
  /// against the version it last snapshotted to generation-tag — and thereby
  /// lazily invalidate — every cached cross-query artifact. Release on the
  /// mutation side / acquire here pairs the version read with the edge data
  /// it covers, so a reader that observes version N also observes every
  /// mutation up to N (readers must still not overlap a mutation in time —
  /// the container itself is single-writer, see serve/query_engine).
  std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  bool vertex_alive(vid_t v) const { return rows_[v].alive; }

  /// Inserts u -> v (no dedup check across levels for speed; callers that
  /// need set semantics should delete first). O(1) amortised inline,
  /// O(log d + d) in the overflow level.
  void insert_edge(vid_t u, vid_t v, weight_t w);

  /// Deletes one u -> v edge; returns true if found. O(inline) or
  /// O(log d + d) overflow.
  bool delete_edge(vid_t u, vid_t v);

  /// Reweights the first u -> v edge in level order to `w` and returns the
  /// old weight, or kInfDist if no such edge exists (no insertion happens in
  /// that case). Structure-preserving: edge count and adjacency are
  /// unchanged, only the weight moves — the cheapest mutation the update
  /// pipeline (dyn/update_batch.hpp) repairs.
  weight_t reweight_edge(vid_t u, vid_t v, weight_t w);

  /// Weight of the first u -> v edge in level order (the one reweight_edge /
  /// delete_edge would pick), or kInfDist when absent.
  weight_t edge_weight(vid_t u, vid_t v) const;

  /// Deletes the vertex and its out-edges; in-edges toward it are skipped at
  /// traversal time (and discounted from num_edges lazily).
  void delete_vertex(vid_t v);

  eid_t out_degree(vid_t v) const;

  /// Calls fn(target, weight) for every live out-edge of v (skipping edges
  /// into deleted vertices).
  template <typename Fn>
  void for_each_neighbor(vid_t v, Fn&& fn) const {
    const Row& row = rows_[v];
    if (!row.alive) return;
    for (int i = 0; i < row.inline_count; ++i) {
      const Edge& e = row.inline_buf[static_cast<size_t>(i)];
      if (rows_[e.to].alive) fn(e.to, e.weight);
    }
    for (const Edge& e : row.overflow) {
      if (rows_[e.to].alive) fn(e.to, e.weight);
    }
    for (const auto& [to, w] : row.tree) {
      if (rows_[to].alive) fn(to, w);
    }
  }

  /// Which storage level vertex v's highest edges live in (for tests).
  enum class Level { kInline, kOverflow, kTree };
  Level level_of(vid_t v) const;

  /// Re-packs into a fresh CSR (deleted vertices keep their ids with zero
  /// degree so ids remain stable).
  CsrGraph to_csr() const;

 private:
  struct Edge {
    vid_t to;
    weight_t weight;
  };
  struct Row {
    std::array<Edge, kInlineSlots> inline_buf;
    std::uint8_t inline_count = 0;
    bool alive = true;
    std::vector<Edge> overflow;        // sorted by `to` (PMA level)
    std::map<vid_t, weight_t> tree;    // hub level (B-tree stand-in)
  };

  /// Release-publishes a completed mutation (see version()).
  void bump_version() { version_.fetch_add(1, std::memory_order_release); }

  std::vector<Row> rows_;
  eid_t m_ = 0;
  std::atomic<std::uint64_t> version_{0};
};

}  // namespace peek::dyn
