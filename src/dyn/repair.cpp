#include "dyn/repair.hpp"

#include "fault/injector.hpp"
#include "obs/metrics.hpp"

namespace peek::dyn {

RepairResult repair_trees(const graph::CsrGraph& post,
                          const std::vector<RepairJob>& jobs,
                          const fault::CancelToken* cancel) {
  RepairResult out;
  out.trees.assign(jobs.size(), nullptr);
  if (jobs.empty()) return out;
  post.warm_reverse();
  const sssp::GraphView fwd(post);
  const sssp::GraphView rev(post.reverse());
  fault::CancelPoll poll(cancel, 1);
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (poll.should_stop()) {
      out.status = fault::Status(poll.why(), "tree repair stopped");
      return out;
    }
    PEEK_FAULT_STALL("dyn.repair.stall");
    if (PEEK_FAULT_FIRE("dyn.repair.crash")) {
      PEEK_COUNT_INC("dyn.repair.crashes");
      out.status =
          fault::Status(fault::Status::kInternal, "injected repair crash");
      return out;
    }
    const RepairJob& job = jobs[i];
    if (job.base == nullptr) continue;
    // A reverse tree is a forward tree of the transpose, so search and
    // boundary views swap roles.
    const sssp::GraphView& search = job.reverse ? rev : fwd;
    const sssp::GraphView& boundary = job.reverse ? fwd : rev;
    sssp::ResumableDijkstra rd(search, boundary, job.root, *job.base,
                               job.threshold);
    rd.run_to_completion();
    out.trees[i] = std::make_shared<sssp::SsspResult>(rd.snapshot());
    PEEK_COUNT_INC("dyn.repair.trees");
  }
  return out;
}

}  // namespace peek::dyn
