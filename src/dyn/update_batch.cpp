#include "dyn/update_batch.hpp"

#include <algorithm>
#include <cmath>

namespace peek::dyn {
namespace {

/// Keep-side slack (core/upper_bound.cpp idiom): comparisons against a bound
/// b admit a relative + absolute epsilon so float rounding never drops a
/// vertex/path the exact arithmetic would keep.
weight_t keep_slack(weight_t b) {
  return b == kInfDist ? 0 : b * 1e-12 + 1e-12;
}

}  // namespace

weight_t AppliedOp::min_weight() const {
  switch (op.kind) {
    case OpKind::kInsert:
      return op.weight;
    case OpKind::kDelete:
      return old_weight;
    case OpKind::kReweight:
      return std::min(old_weight, op.weight);
  }
  return kInfDist;
}

bool AppliedBatch::structural() const {
  for (const AppliedOp& a : ops) {
    if (a.applied && a.structural()) return true;
  }
  return false;
}

weight_t AppliedBatch::weight_delta_sum() const {
  weight_t sum = 0;
  for (const AppliedOp& a : ops) {
    if (a.applied && a.op.kind == OpKind::kReweight) {
      sum += std::abs(a.op.weight - a.old_weight);
    }
  }
  return sum;
}

weight_t AppliedBatch::weight_decrease_sum() const {
  weight_t sum = 0;
  for (const AppliedOp& a : ops) {
    if (a.applied && a.op.kind == OpKind::kReweight) {
      sum += std::max<weight_t>(0, a.old_weight - a.op.weight);
    }
  }
  return sum;
}

bool AppliedBatch::any_applied() const {
  for (const AppliedOp& a : ops) {
    if (a.applied) return true;
  }
  return false;
}

AppliedBatch apply(DynamicGraph& g, const UpdateBatch& batch) {
  AppliedBatch out;
  out.ops.reserve(batch.ops.size());
  const vid_t n = g.num_vertices();
  for (const EdgeOp& op : batch.ops) {
    AppliedOp a;
    a.op = op;
    const bool in_range = op.u >= 0 && op.u < n && op.v >= 0 && op.v < n;
    if (in_range && g.vertex_alive(op.u) && g.vertex_alive(op.v)) {
      switch (op.kind) {
        case OpKind::kInsert:
          g.insert_edge(op.u, op.v, op.weight);
          a.old_weight = kInfDist;
          a.applied = true;
          break;
        case OpKind::kDelete:
          a.old_weight = g.edge_weight(op.u, op.v);
          a.applied = a.old_weight != kInfDist && g.delete_edge(op.u, op.v);
          break;
        case OpKind::kReweight:
          a.old_weight = g.reweight_edge(op.u, op.v, op.weight);
          a.applied = a.old_weight != kInfDist;
          break;
      }
    }
    out.ops.push_back(a);
  }
  return out;
}

weight_t cone_threshold(const AppliedBatch& b, const sssp::SsspResult& tree,
                        bool reverse) {
  weight_t t = kInfDist;
  const vid_t n = static_cast<vid_t>(tree.dist.size());
  for (const AppliedOp& a : b.ops) {
    if (!a.applied) continue;
    // The op anchors at the endpoint the search reaches first: the tail u
    // for a forward tree, the head v for a reverse tree (whose Dijkstra
    // runs over the transposed graph).
    const vid_t anchor = reverse ? a.op.v : a.op.u;
    if (anchor < 0 || anchor >= n) continue;
    const weight_t d = tree.dist[anchor];
    // An op whose anchor is unreachable pre-mutation cannot be the first
    // batch edge on any path from the root — it contributes no bound.
    if (d == kInfDist) continue;
    t = std::min(t, d + a.min_weight());
  }
  return t;
}

std::vector<std::uint8_t> cone_mask(const sssp::SsspResult& tree,
                                    weight_t threshold) {
  std::vector<std::uint8_t> mask(tree.dist.size(), 0);
  if (threshold == kInfDist) return mask;
  const weight_t t = threshold - keep_slack(threshold);
  for (size_t v = 0; v < tree.dist.size(); ++v) {
    if (tree.dist[v] >= t) mask[v] = 1;
  }
  return mask;
}

PairImpact pair_impact(const AppliedBatch& b, const sssp::SsspResult* fwd,
                       const sssp::SsspResult* rev, weight_t upper_bound) {
  PairImpact out;
  if (!b.any_applied()) return out;

  const weight_t bound = b.weight_delta_sum();
  const bool batch_structural = b.structural();

  // Note an infinite upper_bound is NOT only the unreachable-pair case: a
  // reachable pair with fewer than k_budget simple paths has no finite prune
  // bound either, and its answer absolutely can move. No early-out — the op
  // loop below handles true negative answers soundly on its own: an applied
  // reweight op with a finite head (s reaches u) and finite tail (v reaches
  // t) implies s -> u -> v -> t exists, so for an unreachable pair every
  // reweight op has an infinite end and the loop reports unaffected.
  if (fwd == nullptr || rev == nullptr) {
    out.affected = true;
    out.structural = batch_structural;
    out.weight_bound = bound;
    return out;
  }

  const weight_t dec = b.weight_decrease_sum();
  const vid_t n = static_cast<vid_t>(fwd->dist.size());
  const weight_t budget =
      upper_bound == kInfDist ? kInfDist
                              : upper_bound + bound + keep_slack(upper_bound);

  // rt_floor(y): sound lower bound on the post-mutation y -> t distance of
  // any suffix that crosses no further batch edge — the cached reverse
  // distance minus the most reweights can shrink it.
  const auto rt_floor = [&](vid_t y) -> weight_t {
    if (y < 0 || y >= n) return kInfDist;
    const weight_t d = rev->dist[y];
    return d == kInfDist ? kInfDist : std::max<weight_t>(0, d - dec);
  };

  // C: lower bound on any post-mutation suffix that crosses at least one
  // more batch edge (pre-segments between batch edges are >= 0). One pass is
  // the fixpoint: a term routed through C again cannot go below C.
  weight_t chain = kInfDist;
  for (const AppliedOp& a : b.ops) {
    if (!a.applied) continue;
    const weight_t tail = rt_floor(a.op.v);
    if (tail != kInfDist) chain = std::min(chain, a.min_weight() + tail);
  }

  for (const AppliedOp& a : b.ops) {
    if (!a.applied) continue;
    weight_t head = a.op.u >= 0 && a.op.u < n ? fwd->dist[a.op.u] : kInfDist;
    // For structural ops the prefix may cross reweighted edges (the op is
    // tested as the first *structural* edge of a changed path), so the
    // prefix bound loosens by the batch's total reweight decrease.
    if (a.structural() && head != kInfDist) {
      head = std::max<weight_t>(0, head - dec);
    }
    if (head == kInfDist) continue;  // cannot lead a changed path
    const weight_t tail = std::min(rt_floor(a.op.v), chain);
    if (tail == kInfDist) continue;
    if (head + a.min_weight() + tail <= budget) {
      out.affected = true;
      if (a.structural()) out.structural = true;
    }
  }
  if (out.affected && !out.structural) out.weight_bound = bound;
  return out;
}

graph::CsrGraph patched_csr(const DynamicGraph& g, const graph::CsrGraph& base,
                            const AppliedBatch& b) {
  if (b.structural() || base.num_vertices() != g.num_vertices()) {
    return g.to_csr();
  }
  std::vector<weight_t> wgt(base.weights().begin(), base.weights().end());
  for (const AppliedOp& a : b.ops) {
    if (!a.applied || a.op.kind != OpKind::kReweight) continue;
    // Same first-match rule as DynamicGraph::reweight_edge: base rows are
    // emitted in level order, so the first CSR match is the level the
    // mutation landed in.
    bool found = false;
    for (eid_t e = base.edge_begin(a.op.u); e < base.edge_end(a.op.u); ++e) {
      if (base.edge_target(e) == a.op.v) {
        wgt[static_cast<size_t>(e)] = a.op.weight;
        found = true;
        break;
      }
    }
    if (!found) return g.to_csr();  // base was not this graph's snapshot
  }
  return graph::CsrGraph(
      std::vector<eid_t>(base.row_offsets().begin(), base.row_offsets().end()),
      std::vector<vid_t>(base.col().begin(), base.col().end()), std::move(wgt));
}

}  // namespace peek::dyn
