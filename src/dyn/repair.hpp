// Cone repair of cached SSSP trees (DESIGN.md §15).
//
// After an UpdateBatch lands, each cached tree whose cone_threshold is
// finite must be brought up to date. repair_trees() does that surgically:
// for each job it seeds sssp::ResumableDijkstra's cone-repair constructor
// with the pre-mutation tree and the batch's threshold, then settles only
// the poisoned region against the post-mutation graph — the output is the
// exact tree a from-scratch Dijkstra would produce, at a cost proportional
// to the cone, not the graph.
//
// This is the serving layer's repair loop, so it is fully fault-aware:
// `dyn.repair.stall` injects a kernel stall per job (deadline coverage) and
// `dyn.repair.crash` aborts the whole repair with Status::kInternal — the
// caller (serve::QueryEngine) must then fall back to wholesale invalidation
// and full recompute, never serving an answer repaired halfway. The job loop
// polls the CancelToken between trees (tools/peek_analyze.py `cancel`
// coverage includes src/dyn).
#pragma once

#include <memory>
#include <vector>

#include "fault/cancel.hpp"
#include "graph/csr.hpp"
#include "sssp/resumable_dijkstra.hpp"

namespace peek::dyn {

/// One cached tree to repair against the post-mutation graph.
struct RepairJob {
  vid_t root = kNoVertex;
  /// Reverse tree (dist[x] = x -> root): the search runs over the transpose.
  bool reverse = false;
  /// cone_threshold() of the applied batch against `base`.
  weight_t threshold = kInfDist;
  /// The complete pre-mutation tree (same root / orientation).
  std::shared_ptr<const sssp::SsspResult> base;
};

struct RepairResult {
  /// kOk; kCancelled / kDeadlineExceeded when the token stopped the loop;
  /// kInternal when dyn.repair.crash fired (the repair must be abandoned).
  fault::Status status;
  /// Parallel to the job list; null for jobs not reached before a stop.
  std::vector<std::shared_ptr<const sssp::SsspResult>> trees;
};

/// Repairs every job's tree in order against `post` (the post-mutation CSR).
/// Emits dyn.repair.trees per repaired tree and dyn.repair.crashes when the
/// injected crash fires.
RepairResult repair_trees(const graph::CsrGraph& post,
                          const std::vector<RepairJob>& jobs,
                          const fault::CancelToken* cancel = nullptr);

}  // namespace peek::dyn
