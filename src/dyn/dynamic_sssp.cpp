#include "dyn/dynamic_sssp.hpp"

#include <queue>

namespace peek::dyn {

sssp::SsspResult dynamic_dijkstra(const DynamicGraph& g, vid_t source,
                                  vid_t target) {
  const vid_t n = g.num_vertices();
  sssp::SsspResult r;
  r.dist.assign(static_cast<size_t>(n), kInfDist);
  r.parent.assign(static_cast<size_t>(n), kNoVertex);
  if (source < 0 || source >= n || !g.vertex_alive(source)) return r;

  struct Entry {
    weight_t d;
    vid_t v;
    bool operator>(const Entry& o) const { return d > o.d; }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  r.dist[source] = 0;
  heap.push({0, source});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > r.dist[u]) continue;
    if (u == target) break;
    g.for_each_neighbor(u, [&](vid_t v, weight_t w) {
      const weight_t nd = d + w;
      if (nd < r.dist[v]) {
        r.dist[v] = nd;
        r.parent[v] = u;
        heap.push({nd, v});
      }
    });
  }
  return r;
}

}  // namespace peek::dyn
