// Sharded serving fleet (DESIGN.md §12, §14): N shards × R replicas of
// serve::QueryEngine behind a consistent-hash ShardRouter, with hedged
// duplicate requests to cut tail latency and a self-healing control loop —
// per-replica EWMA health, circuit breakers, answer certification, and
// quarantine → warm-restart recovery — to survive replicas that are slow,
// crash-looping, or silently corrupt.
//
// Each replica is a thread-simulated process: its own QueryEngine (own
// ArtifactCache, admission slots, warm-restart state), its own bounded
// request queue, and its own worker threads. The graph itself is replicated
// (every replica serves the full CSR — it is the caches that the router
// partitions), so any replica's answer to (s, t, K) is bit-identical to
// single-engine core::peek_ksp; hedging, failover and healing can therefore
// never change an answer, only who computes it.
//
// Query lifecycle (see the §12 state machine):
//   route    — ShardRouter::route(s, t) picks the home shard; a round-robin
//              scan of its replicas picks the first whose breaker admits.
//   hedge    — if FleetOptions::hedge > 0 and no completion arrives within
//              it, one duplicate attempt is enqueued on a different replica
//              (ring-successor shard when the home shard has no spare). The
//              first completion wins; every losing attempt is cancelled
//              through its per-attempt fault::CancelToken, which is linked()
//              under the caller's token/deadline.
//   retry    — a "replica down" completion (forced-open breaker, the
//              injected shard.replica.down probe, or a failed half-open
//              probe) retries on the shard's next admitting replica — hot-
//              shard replication — before failing over.
//   failover — a shard with no admitting replica reroutes to ring-successor
//              shards in deterministic order (FleetOptions::failover).
//   certify  — every non-degraded kOk answer is validated against the CSR
//              (check/certify.hpp). A failed certificate marks the serving
//              replica corrupt: quarantine, cache drop, warm restart from
//              recover::RecoveryManager snapshots, then breaker probes gate
//              re-admission — and the query retries through the ladder.
//   degrade  — when no replica anywhere admits the query, the fleet probes
//              surviving replicas' caches via QueryEngine::query_cached_only
//              (zero graph work) and returns a degraded prefix, else
//              Status::kOverloaded. Never a wrong answer: every non-degraded
//              kOk result is the exact, certified K-path set.
//
// Replica availability is a per-replica circuit breaker (shard/health.hpp),
// not a boolean: closed replicas take traffic, open ones divert it through
// the retry/failover/degraded ladder, half-open ones admit budgeted probe
// queries whose success closes the breaker. set_replica_down() remains as
// the operator force-open/force-close on that breaker.
//
// Live mutations (DESIGN.md §15): a fleet constructed over a
// dyn::DynamicGraph runs every replica engine in surgical live-mutation
// mode. apply_batch() mutates the shared graph once under the fence lock,
// stamps the batch with the next fleet-wide fence epoch, builds the
// post-mutation CSR once, and fans the (batch, CSR) pair into every
// replica's pending queue — each replica adopts it at its own pace (workers
// catch up before dispatching). Epoch fencing keeps that staggering honest:
// the query ladder reads the fence at each completion and never returns a
// non-stale answer from an engine behind it — a lagging answer is either
// widened into an explicitly-bounded stale one (when every missed batch was
// reweight-only) or bounced and retried after force-delivering the lagging
// replica's queue (shard.epoch_bounces). Two replicas that applied the same
// batch at different times therefore never mix epochs within one ladder.
//
// Shutdown: the destructor stops the healer and every worker after draining
// its queue, so in-flight query() calls complete; callers must not destroy
// the fleet while calling query() (same contract as QueryEngine vs its
// graph).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "check/thread_safety.hpp"
#include "dyn/dynamic_graph.hpp"
#include "dyn/update_batch.hpp"
#include "serve/query_engine.hpp"
#include "shard/health.hpp"
#include "shard/router.hpp"

namespace peek::shard {

struct FleetOptions {
  /// Ring shape; router.shards is the shard count.
  RouterOptions router;
  /// Replicas per shard (>= 1). Replica 0 is the round-robin anchor; spares
  /// absorb hedges, retries and hot-shard overflow.
  int replicas = 1;
  /// Worker threads per replica (>= 1).
  int workers_per_replica = 1;
  /// Hedge trigger latency: fire one duplicate attempt if the primary has
  /// not completed within this budget. <= 0 disables hedging (< 0 is
  /// rejected at construction).
  std::chrono::milliseconds hedge{0};
  /// Deadline for queries that do not pass their own (0 = none; < 0 is
  /// rejected); linked with the caller token exactly as in
  /// serve::ServeOptions.
  std::chrono::milliseconds default_deadline{0};
  /// Per-replica queue bound (routing-tier admission; 0 = unbounded; < 0 is
  /// rejected). A full queue sheds the attempt with Status::kOverloaded.
  int max_queue = 0;
  /// Reroute to ring-successor shards when a shard has no admitting replica.
  /// Off = strict placement: such queries go straight to degraded/reject.
  bool failover = true;
  /// Probe surviving replicas' caches (query_cached_only) before rejecting
  /// a query whose shard is down.
  bool degraded_fallback = true;
  /// Per-replica health/breaker tuning (DESIGN.md §14).
  HealthOptions health;
  /// Certify every non-degraded kOk answer against the CSR; a failed
  /// certificate quarantines + warm-restarts the serving replica and the
  /// query retries on its peers.
  bool certify = true;
  /// Per-replica engine template. The engine's own default_deadline is left
  /// to the fleet (set this one instead); cache.byte_budget is per replica.
  /// A non-empty serve.snapshot_dir is split into per-replica
  /// `<dir>/s<shard>.r<replica>` subdirectories so replicas never clobber
  /// each other's snapshots and a healing replica warm-restarts from its
  /// own.
  serve::ServeOptions serve;
  /// Installed into fault::Injector::global() at construction (tests/CI).
  std::optional<fault::InjectorConfig> injector;
};

/// One fleet query: the replica answer plus routing provenance.
struct FleetResult {
  serve::ServeResult result;
  int shard = -1;    // shard that produced the answer (home unless failover)
  int replica = -1;  // replica index within that shard (-1: rejected)
  bool hedged = false;     // a duplicate attempt was fired
  bool hedge_won = false;  // ... and it beat the primary
  bool failover = false;   // served off the home shard
  double seconds = 0;      // end-to-end fleet wall time (queue wait included)
};

/// Point-in-time per-shard latency digest (stats()).
struct ShardLatency {
  double p50_s = 0;
  double p99_s = 0;
  std::uint64_t count = 0;  // queries attributed to this shard
};

/// Thread-safe sharded serving facade. The graph must outlive the fleet;
/// query() may be called concurrently from any number of threads.
class ShardFleet {
 public:
  /// Throws std::invalid_argument for replicas/workers_per_replica < 1 or
  /// negative hedge/default_deadline/max_queue (the router validates its own
  /// options the same way).
  explicit ShardFleet(const graph::CsrGraph& g, const FleetOptions& opts = {});
  /// Live-mutation fleet (see header comment): every replica engine runs the
  /// surgical pipeline (ServeOptions::live_mutations is forced on), and
  /// mutations flow exclusively through apply_batch() — the caller must not
  /// touch `dg` behind the fleet's back. The graph must outlive the fleet.
  explicit ShardFleet(dyn::DynamicGraph& dg, const FleetOptions& opts = {});
  ~ShardFleet();

  ShardFleet(const ShardFleet&) = delete;
  ShardFleet& operator=(const ShardFleet&) = delete;

  /// The K shortest simple paths from s to t, bit-identical to
  /// core::peek_ksp whenever result.status is kOk and not degraded
  /// (tests/test_shard.cpp FleetBitIdentity, HedgeStormBitIdentity).
  FleetResult query(vid_t s, vid_t t, int k,
                    const serve::QueryOptions& qopts = {});

  const ShardRouter& router() const { return router_; }
  int shards() const { return router_.shards(); }
  int replicas() const { return opts_.replicas; }

  /// Ops/test hook: force one replica's breaker open (crashed, true) or
  /// closed (recovered, false). A forced-open replica answers nothing — its
  /// queue drains as "replica down" and its cache is unreachable, like a
  /// dead process — and never half-opens on its own.
  void set_replica_down(int shard, int replica, bool down);
  bool replica_down(int shard, int replica) const;

  /// Breaker/health introspection (tests, soak harness, ops dashboards).
  BreakerState breaker_state(int shard, int replica) const;
  double replica_health(int shard, int replica) const;

  /// Blocks until every queued quarantine heal (cache drop + engine warm
  /// restart) has completed. Test/soak hook.
  void drain_heals();

  // -- Live mutations (dynamic-graph fleets only) ----------------------------

  /// Applies `batch` to the shared DynamicGraph, advances the fence epoch,
  /// and fans the applied record (plus the post-mutation CSR, built once
  /// here) out to every replica's pending queue. Returns the applied record,
  /// fence-epoch-stamped; a no-op record on a static-graph fleet.
  dyn::AppliedBatch apply_batch(const dyn::UpdateBatch& batch);

  /// Fleet-wide fence: the epoch of the last batch applied via apply_batch.
  std::uint64_t fence_epoch() const {
    return fence_epoch_.load(std::memory_order_acquire);
  }

  /// Force-delivers every pending batch to every replica's engine now
  /// (tests / soak determinism; workers otherwise catch up at dispatch).
  void deliver_batches();

  /// Direct engine access (tests: cache warming, drain assertions). The
  /// reference is stable only while no heal swaps this replica's engine.
  serve::QueryEngine& engine(int shard, int replica);

  /// Per-shard latency digests over a sliding window of recent queries.
  std::vector<ShardLatency> stats() const;
  /// Publishes shard.p50_seconds / shard.p99_seconds (fleet-wide), the
  /// per-shard shard.s<i>.{p50,p99}_seconds gauge families, the per-replica
  /// shard.s<i>.r<j>.health gauges, and the fleet-wide
  /// shard.replica.health.min gauge.
  void publish_latency_metrics() const;

 private:
  struct QueryState;
  struct Attempt;
  struct Replica;
  struct Shard;

  /// Outcome of launching (and possibly hedging) on one shard.
  struct RunOutcome {
    serve::ServeResult result;
    int shard = -1;    // shard of the winning replica (hedges may cross)
    int replica = -1;
    bool hedged = false;
    bool hedge_won = false;
    bool unavailable = false;  // no admitting replica, or winner bounced
  };

  /// One admission pick: a replica index plus whether the breaker admitted
  /// it as a half-open probe (probe attempts ride probe_deadline tokens).
  struct Pick {
    int replica = -1;
    bool probe = false;
  };

  /// Round-robin breaker-admitted pick; replica < 0 when none admits
  /// (skip >= 0 excludes one index).
  Pick pick_replica(Shard& sh, int skip);
  /// Enqueue one attempt (index 0 = primary). Sheds to Status::kOverloaded
  /// synchronously when the replica queue is full.
  void launch(int shard, int replica, int index, bool probe, vid_t s, vid_t t,
              int k, const fault::CancelToken* base,
              const std::shared_ptr<QueryState>& st);
  RunOutcome run_on_shard(int shard, vid_t s, vid_t t, int k,
                          const fault::CancelToken* base);
  bool try_degraded(vid_t s, vid_t t, int k, int home, FleetResult& out);
  void worker_loop(Replica& rep);
  /// Certification failure handling: breaker quarantine + async heal.
  void quarantine_replica(int shard, int replica);
  void healer_loop();
  /// Cache drop + engine rebuild (warm restart) + quarantine release.
  void heal_replica(int shard, int replica);
  /// Engine options for one replica (per-replica snapshot subdirectory).
  serve::ServeOptions engine_options(int shard, int replica) const;
  void record_latency(int shard, double seconds);
  /// Drains one replica's pending batches into its engine, in epoch order
  /// even under concurrent drainers (per-replica apply lock). No-op on a
  /// static-graph fleet.
  void deliver_pending(Replica& rep);
  /// Epoch-fence reconciliation of a completed answer whose engine was
  /// `eff` epochs into the fence's past: widens it into an explicitly-
  /// bounded stale answer when every batch in (eff, fence] was reweight-only
  /// (shard.stale_upgrades); false when one was structural or the bounded
  /// history no longer covers the gap — the caller bounces the answer.
  bool fence_result(serve::ServeResult& r, std::uint64_t eff,
                    std::uint64_t fence);

  /// One applied batch's fleet-level impact record (feeds fence_result).
  struct FenceRecord {
    std::uint64_t epoch = 0;
    bool structural = false;
    weight_t bound = 0;  // sum of |Δw| over applied reweights
  };

  const graph::CsrGraph* graph_;               // static mode; null when live
  dyn::DynamicGraph* dyn_graph_ = nullptr;     // live mode; null when static
  vid_t n_ = 0;                                // vertex count (either mode)
  FleetOptions opts_;
  ShardRouter router_;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Live-mutation fence state. apply_batch holds fence_mu_ across the graph
  /// mutation, the epoch bump AND the per-replica fan-out, so pending queues
  /// receive batches in fence-epoch order; fence_csr_ is the post-mutation
  /// CSR at the fence (built once per batch, shared with every replica, and
  /// the certification graph for at-fence answers).
  mutable check::Mutex fence_mu_;
  std::shared_ptr<const graph::CsrGraph> fence_csr_ PEEK_GUARDED_BY(fence_mu_);
  std::deque<FenceRecord> fence_history_ PEEK_GUARDED_BY(fence_mu_);
  std::atomic<std::uint64_t> fence_epoch_{0};

  // Shared ctor body of the two public constructors.
  ShardFleet(const graph::CsrGraph* g, dyn::DynamicGraph* dg,
             const FleetOptions& opts);

  /// Quarantine -> warm-restart pipeline, drained by one healer thread so
  /// query() never blocks on an engine rebuild.
  check::Mutex heal_mu_;
  check::CondVar heal_cv_;
  std::deque<std::pair<int, int>> heal_queue_ PEEK_GUARDED_BY(heal_mu_);
  bool heal_stopping_ PEEK_GUARDED_BY(heal_mu_) = false;
  bool healing_ PEEK_GUARDED_BY(heal_mu_) = false;
  std::thread healer_;
};

}  // namespace peek::shard
