#include "shard/fleet.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "check/invariants.hpp"
#include "fault/injector.hpp"
#include "obs/metrics.hpp"

namespace peek::shard {

namespace {

/// Recent-query latency window kept per shard (ring buffer).
constexpr size_t kLatencyWindow = 4096;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

size_t percentile_index(size_t n, size_t permille) {
  const size_t idx = (n * permille) / 1000;
  return idx >= n ? n - 1 : idx;
}

}  // namespace

/// Shared completion slot of one fleet query. The waiter and every attempt
/// hold a shared_ptr; attempts never point back at each other (tokens are
/// stored by value), so there is no ownership cycle.
struct ShardFleet::QueryState {
  check::Mutex mu;
  check::CondVar cv;
  int outstanding PEEK_GUARDED_BY(mu) = 0;
  bool winner_set PEEK_GUARDED_BY(mu) = false;
  serve::ServeResult winner PEEK_GUARDED_BY(mu);
  int winner_index PEEK_GUARDED_BY(mu) = -1;
  int winner_replica PEEK_GUARDED_BY(mu) = -1;
  bool winner_replica_down PEEK_GUARDED_BY(mu) = false;
  /// Per-attempt cancel handles, indexed by attempt index; the waiter
  /// cancels every loser through them once a winner lands.
  std::vector<fault::CancelToken> tokens PEEK_GUARDED_BY(mu);

  /// First-completion-wins publication. A failed attempt only wins when it
  /// is the last one outstanding — a slower healthy duplicate may still
  /// deliver the real answer.
  void complete(int index, int replica, bool replica_down,
                serve::ServeResult r) {
    check::MutexLock lock(mu);
    --outstanding;
    const bool ok = r.status.code == fault::Status::kOk;
    if (!winner_set && (ok || outstanding == 0)) {
      winner_set = true;
      winner = std::move(r);
      winner_index = index;
      winner_replica = replica;
      winner_replica_down = replica_down;
      cv.notify_all();
    } else if (winner_set && r.status.code == fault::Status::kCancelled) {
      // A losing attempt whose cancellation actually cut it short.
      PEEK_COUNT_INC("shard.hedges.cancelled");
    }
  }
};

/// One unit of replica work: a (s, t, k) attempt plus its cancel handle and
/// the query it reports into.
struct ShardFleet::Attempt {
  vid_t s = 0;
  vid_t t = 0;
  int k = 0;
  int index = 0;  // 0 = primary, >0 = hedge duplicates
  int shard = -1;
  int replica = -1;
  bool replica_down = false;  // completion was a dead-replica bounce
  fault::CancelToken token;
  std::shared_ptr<QueryState> state;
};

/// A thread-simulated replica process: engine + queue + workers. `down`
/// models a crashed process — queued work bounces and the cache is
/// unreachable until it is marked up again.
struct ShardFleet::Replica {
  std::unique_ptr<serve::QueryEngine> engine;
  std::atomic<bool> down{false};
  check::Mutex mu;
  check::CondVar cv;
  std::deque<std::shared_ptr<Attempt>> queue PEEK_GUARDED_BY(mu);
  bool stopping PEEK_GUARDED_BY(mu) = false;
  /// Filled once in the fleet constructor, joined once in the destructor —
  /// never touched by concurrent phases, hence unguarded.
  std::vector<std::thread> workers;
};

struct ShardFleet::Shard {
  std::vector<std::unique_ptr<Replica>> replicas;
  std::atomic<unsigned> rr{0};  // round-robin pick cursor
  mutable check::Mutex lat_mu;
  /// Ring buffer of recent query latencies + total count.
  std::vector<double> lat PEEK_GUARDED_BY(lat_mu);
  std::uint64_t lat_count PEEK_GUARDED_BY(lat_mu) = 0;
};

ShardFleet::ShardFleet(const graph::CsrGraph& g, const FleetOptions& opts)
    : graph_(&g), opts_(opts), router_(g.num_vertices(), opts.router) {
  if (opts_.replicas < 1) opts_.replicas = 1;
  if (opts_.workers_per_replica < 1) opts_.workers_per_replica = 1;
  if (opts_.injector) fault::Injector::global().configure(*opts_.injector);
  // The fleet installs the injector once; per-replica engines must not each
  // re-install it (configure() resets the fired counters).
  opts_.serve.injector.reset();

  shards_.reserve(static_cast<size_t>(router_.shards()));
  for (int sh = 0; sh < router_.shards(); ++sh) {
    auto shard = std::make_unique<Shard>();
    shard->replicas.reserve(static_cast<size_t>(opts_.replicas));
    for (int r = 0; r < opts_.replicas; ++r) {
      auto rep = std::make_unique<Replica>();
      rep->engine = std::make_unique<serve::QueryEngine>(g, opts_.serve);
      shard->replicas.push_back(std::move(rep));
    }
    shards_.push_back(std::move(shard));
  }
  // Workers start only after every replica exists: a worker's failover path
  // may touch engines on other shards.
  for (auto& shard : shards_) {
    for (auto& rep : shard->replicas) {
      for (int w = 0; w < opts_.workers_per_replica; ++w) {
        rep->workers.emplace_back(
            [this, r = rep.get()] { worker_loop(*r); });
      }
    }
  }
}

ShardFleet::~ShardFleet() {
  for (auto& shard : shards_) {
    for (auto& rep : shard->replicas) {
      {
        check::MutexLock lock(rep->mu);
        rep->stopping = true;
      }
      rep->cv.notify_all();
    }
  }
  for (auto& shard : shards_) {
    for (auto& rep : shard->replicas) {
      for (auto& w : rep->workers) w.join();
    }
  }
}

void ShardFleet::worker_loop(Replica& rep) {
  for (;;) {
    std::shared_ptr<Attempt> at;
    {
      check::UniqueLock lock(rep.mu);
      while (!rep.stopping && rep.queue.empty()) rep.cv.wait(lock);
      if (rep.queue.empty()) break;  // stopping, and fully drained
      at = std::move(rep.queue.front());
      rep.queue.pop_front();
    }
    serve::ServeResult r;
    if (rep.down.load(std::memory_order_acquire) ||
        PEEK_FAULT_FIRE("shard.replica.down")) {
      // Dead-process bounce: no engine work, no cache access.
      at->replica_down = true;
      r.status = {fault::Status::kOverloaded, "replica down"};
    } else if (at->token.triggered()) {
      // Cancelled while still queued (lost hedge, tripped deadline).
      r.status = {at->token.why(), "cancelled before dispatch"};
    } else {
      PEEK_FAULT_STALL("shard.replica.stall");
      serve::QueryOptions qo;
      qo.cancel = &at->token;
      r = rep.engine->query(at->s, at->t, at->k, qo);
    }
    at->state->complete(at->index, at->replica, at->replica_down,
                        std::move(r));
  }
}

int ShardFleet::pick_replica(Shard& sh, int skip) {
  const unsigned count = static_cast<unsigned>(opts_.replicas);
  const unsigned start = sh.rr.fetch_add(1, std::memory_order_relaxed);
  for (unsigned i = 0; i < count; ++i) {
    const int r = static_cast<int>((start + i) % count);
    if (r == skip) continue;
    if (sh.replicas[static_cast<size_t>(r)]->down.load(
            std::memory_order_acquire))
      continue;
    return r;
  }
  return -1;
}

void ShardFleet::launch(int shard, int replica, int index, vid_t s, vid_t t,
                        int k, const fault::CancelToken* base,
                        const std::shared_ptr<QueryState>& st) {
  auto at = std::make_shared<Attempt>();
  at->s = s;
  at->t = t;
  at->k = k;
  at->index = index;
  at->shard = shard;
  at->replica = replica;
  // Per-attempt handle under the caller's token/deadline: cancelling it
  // abandons just this attempt; the parent tripping abandons them all.
  at->token = base != nullptr ? fault::CancelToken::linked(*base)
                              : fault::CancelToken::cancellable();
  at->state = st;
  {
    check::MutexLock lock(st->mu);
    ++st->outstanding;
    if (static_cast<size_t>(index) >= st->tokens.size())
      st->tokens.resize(static_cast<size_t>(index) + 1);
    st->tokens[static_cast<size_t>(index)] = at->token;
  }
  Replica& rep = *shards_[static_cast<size_t>(shard)]
                      ->replicas[static_cast<size_t>(replica)];
  bool shed = false;
  {
    check::MutexLock lock(rep.mu);
    if (opts_.max_queue > 0 &&
        rep.queue.size() >= static_cast<size_t>(opts_.max_queue)) {
      shed = true;  // routing-tier admission: bounce without queueing
    } else {
      rep.queue.push_back(std::move(at));
      rep.cv.notify_one();
    }
  }
  if (shed) {
    PEEK_COUNT_INC("shard.shed");
    serve::ServeResult r;
    r.status = {fault::Status::kOverloaded, "replica queue full"};
    st->complete(index, replica, /*replica_down=*/false, std::move(r));
  }
}

ShardFleet::RunOutcome ShardFleet::run_on_shard(
    int shard, vid_t s, vid_t t, int k, const fault::CancelToken* base) {
  RunOutcome out;
  Shard& sh = *shards_[static_cast<size_t>(shard)];
  int skip = -1;
  bool hedged_any = false;
  for (int attempt = 0; attempt < opts_.replicas; ++attempt) {
    const int r0 = pick_replica(sh, skip);
    if (r0 < 0) {
      out.hedged = hedged_any;
      out.unavailable = true;
      return out;
    }
    if (attempt > 0) PEEK_COUNT_INC("shard.replica_retries");
    auto st = std::make_shared<QueryState>();
    launch(shard, r0, 0, s, t, k, base, st);
    bool hedged = false;
    {
      check::UniqueLock lock(st->mu);
      if (opts_.hedge.count() > 0 && !st->winner_set) {
        const auto hedge_by = std::chrono::steady_clock::now() + opts_.hedge;
        while (!st->winner_set &&
               st->cv.wait_until(lock, hedge_by) != std::cv_status::timeout) {
        }
      }
      if (opts_.hedge.count() > 0 && !st->winner_set) {
        // The primary overran the hedge budget: duplicate on a spare
        // replica here, else (under failover) on the ring successor.
        int hshard = shard;
        int hr = pick_replica(sh, r0);
        if (hr < 0 && opts_.failover) {
          for (int step = 1; step < router_.shards() && hr < 0; ++step) {
            hshard = router_.successor(shard, step);
            hr = pick_replica(*shards_[static_cast<size_t>(hshard)], -1);
          }
        }
        if (hr >= 0) {
          lock.unlock();
          launch(hshard, hr, 1, s, t, k, base, st);
          PEEK_COUNT_INC("shard.hedges.fired");
          hedged = true;
          hedged_any = true;
          lock.lock();
        }
      }
      while (!st->winner_set) st->cv.wait(lock);
      out.result = std::move(st->winner);
      out.replica = st->winner_replica;
      out.hedged = hedged_any;
      out.hedge_won = hedged && st->winner_index > 0;
      out.unavailable = st->winner_replica_down;
    }
    {
      // First completion won; cancel every losing attempt. Their workers
      // observe the tripped token and bail (shard.hedges.cancelled).
      check::MutexLock lock(st->mu);
      for (size_t i = 0; i < st->tokens.size(); ++i) {
        if (static_cast<int>(i) != st->winner_index) st->tokens[i].cancel();
      }
    }
    if (out.hedge_won) {
      PEEK_COUNT_INC("shard.hedges.won");
    } else if (hedged) {
      PEEK_COUNT_INC("shard.hedges.wasted");
    }
    if (!out.unavailable) return out;
    skip = out.replica;  // that replica just bounced — try its peers
  }
  out.unavailable = true;
  return out;
}

bool ShardFleet::try_degraded(vid_t s, vid_t t, int k, int home,
                              FleetResult& out) {
  // Read-only cache peek across surviving replicas, ring order from home.
  // query_cached_only does zero graph work, so bypassing the queues here is
  // safe even while those replicas serve their own traffic.
  for (int step = 0; step < router_.shards(); ++step) {
    const int sh = router_.successor(home, step);
    Shard& shard = *shards_[static_cast<size_t>(sh)];
    for (int r = 0; r < opts_.replicas; ++r) {
      Replica& rep = *shard.replicas[static_cast<size_t>(r)];
      if (rep.down.load(std::memory_order_acquire)) continue;
      serve::ServeResult res = rep.engine->query_cached_only(s, t, k);
      if (res.status.code == fault::Status::kOk) {
        out.result = std::move(res);
        out.shard = sh;
        out.replica = r;
        out.failover = sh != home;
        return true;
      }
    }
  }
  return false;
}

FleetResult ShardFleet::query(vid_t s, vid_t t, int k,
                              const serve::QueryOptions& qopts) {
  const auto t0 = std::chrono::steady_clock::now();
  FleetResult out;
  PEEK_COUNT_INC("shard.queries");
  PEEK_TIMER_SCOPE("shard.query");

  const vid_t n = graph_->num_vertices();
  if (k <= 0 || s < 0 || s >= n || t < 0 || t >= n) {
    out.result.status = {fault::Status::kInvalidArgument,
                         "query requires 0 <= s,t < n and k > 0"};
    out.seconds = seconds_since(t0);
    return out;
  }

  const int home = router_.route(s, t);
  out.shard = home;

  // Caller token + per-query deadline, merged exactly like QueryEngine does
  // — replicas then only see per-attempt children of this one token.
  fault::CancelToken deadline_token;
  const fault::CancelToken* base =
      qopts.cancel != nullptr && qopts.cancel->valid() ? qopts.cancel
                                                       : nullptr;
  const auto budget =
      qopts.deadline.count() > 0 ? qopts.deadline : opts_.default_deadline;
  if (budget.count() > 0) {
    deadline_token = base != nullptr
                         ? fault::CancelToken::linked(*base, budget)
                         : fault::CancelToken::after(budget);
    base = &deadline_token;
  }

  int shard = home;
  int step = 0;
  for (;;) {
    RunOutcome ro = run_on_shard(shard, s, t, k, base);
    out.hedged = out.hedged || ro.hedged;
    out.hedge_won = out.hedge_won || ro.hedge_won;
    if (!ro.unavailable) {
      out.result = std::move(ro.result);
      out.shard = shard;
      out.replica = ro.replica;
      out.failover = shard != home;
      break;
    }
    if (opts_.failover && step + 1 < router_.shards() &&
        !(base != nullptr && base->triggered())) {
      ++step;
      shard = router_.successor(home, step);
      PEEK_COUNT_INC("shard.failovers");
      continue;
    }
    if (opts_.degraded_fallback && try_degraded(s, t, k, home, out)) {
      PEEK_COUNT_INC("shard.degraded_fallbacks");
      break;
    }
    out.result.status = {fault::Status::kOverloaded,
                         "shard down: no live replica"};
    out.shard = shard;
    out.replica = -1;
    PEEK_COUNT_INC("shard.shard_down_rejects");
    break;
  }

  if (out.result.status.code == fault::Status::kOk && !out.result.degraded) {
    // Route quality: did consistent hashing land this query on warm state?
    if (out.result.snapshot_hit || out.result.fwd_tree_hit ||
        out.result.rev_tree_hit || out.result.coalesced) {
      PEEK_COUNT_INC("shard.route.hits");
    } else {
      PEEK_COUNT_INC("shard.route.misses");
    }
  }
  out.seconds = seconds_since(t0);
  if (out.shard >= 0) record_latency(out.shard, out.seconds);
  return out;
}

void ShardFleet::set_replica_down(int shard, int replica, bool down) {
  PEEK_DCHECK(shard >= 0 && shard < router_.shards());
  PEEK_DCHECK(replica >= 0 && replica < opts_.replicas);
  shards_[static_cast<size_t>(shard)]
      ->replicas[static_cast<size_t>(replica)]
      ->down.store(down, std::memory_order_release);
}

bool ShardFleet::replica_down(int shard, int replica) const {
  PEEK_DCHECK(shard >= 0 && shard < router_.shards());
  PEEK_DCHECK(replica >= 0 && replica < opts_.replicas);
  return shards_[static_cast<size_t>(shard)]
      ->replicas[static_cast<size_t>(replica)]
      ->down.load(std::memory_order_acquire);
}

serve::QueryEngine& ShardFleet::engine(int shard, int replica) {
  PEEK_DCHECK(shard >= 0 && shard < router_.shards());
  PEEK_DCHECK(replica >= 0 && replica < opts_.replicas);
  return *shards_[static_cast<size_t>(shard)]
              ->replicas[static_cast<size_t>(replica)]
              ->engine;
}

void ShardFleet::record_latency(int shard, double seconds) {
  Shard& sh = *shards_[static_cast<size_t>(shard)];
  check::MutexLock lock(sh.lat_mu);
  if (sh.lat.size() < kLatencyWindow) {
    sh.lat.push_back(seconds);
  } else {
    sh.lat[static_cast<size_t>(sh.lat_count % kLatencyWindow)] = seconds;
  }
  ++sh.lat_count;
}

std::vector<ShardLatency> ShardFleet::stats() const {
  std::vector<ShardLatency> out;
  out.reserve(shards_.size());
  for (const auto& sh : shards_) {
    ShardLatency sl;
    std::vector<double> window;
    {
      check::MutexLock lock(sh->lat_mu);
      window = sh->lat;
      sl.count = sh->lat_count;
    }
    if (!window.empty()) {
      std::sort(window.begin(), window.end());
      sl.p50_s = window[percentile_index(window.size(), 500)];
      sl.p99_s = window[percentile_index(window.size(), 990)];
    }
    out.push_back(sl);
  }
  return out;
}

void ShardFleet::publish_latency_metrics() const {
  if (!obs::kEnabled) return;  // honor the PEEK_OBS=OFF kill switch
  const auto per = stats();
  std::vector<double> all;
  for (size_t i = 0; i < shards_.size(); ++i) {
    {
      check::MutexLock lock(shards_[i]->lat_mu);
      all.insert(all.end(), shards_[i]->lat.begin(), shards_[i]->lat.end());
    }
    // Per-shard gauge family: names are built at runtime (shard count is a
    // config value), so they are documented in README prose rather than the
    // lint-enforced literal-name metric tables.
    auto& reg = obs::MetricsRegistry::global();
    const std::string prefix = "shard.s" + std::to_string(i);
    reg.gauge(prefix + ".p50_seconds").set(per[i].p50_s);
    reg.gauge(prefix + ".p99_seconds").set(per[i].p99_s);
  }
  if (!all.empty()) {
    std::sort(all.begin(), all.end());
    PEEK_GAUGE_SET("shard.p50_seconds",
                   all[percentile_index(all.size(), 500)]);
    PEEK_GAUGE_SET("shard.p99_seconds",
                   all[percentile_index(all.size(), 990)]);
  }
}

}  // namespace peek::shard
