#include "shard/fleet.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "check/certify.hpp"
#include "check/invariants.hpp"
#include "fault/injector.hpp"
#include "obs/metrics.hpp"

namespace peek::shard {

namespace {

/// Recent-query latency window kept per shard (ring buffer).
constexpr size_t kLatencyWindow = 4096;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

size_t percentile_index(size_t n, size_t permille) {
  const size_t idx = (n * permille) / 1000;
  return idx >= n ? n - 1 : idx;
}

}  // namespace

/// Shared completion slot of one fleet query. The waiter and every attempt
/// hold a shared_ptr; attempts never point back at each other (tokens are
/// stored by value), so there is no ownership cycle.
struct ShardFleet::QueryState {
  check::Mutex mu;
  check::CondVar cv;
  int outstanding PEEK_GUARDED_BY(mu) = 0;
  bool winner_set PEEK_GUARDED_BY(mu) = false;
  serve::ServeResult winner PEEK_GUARDED_BY(mu);
  int winner_index PEEK_GUARDED_BY(mu) = -1;
  int winner_shard PEEK_GUARDED_BY(mu) = -1;
  int winner_replica PEEK_GUARDED_BY(mu) = -1;
  bool winner_retryable PEEK_GUARDED_BY(mu) = false;
  /// Per-attempt cancel handles, indexed by attempt index; the waiter
  /// cancels every loser through them once a winner lands.
  std::vector<fault::CancelToken> tokens PEEK_GUARDED_BY(mu);

  /// First-completion-wins publication. A failed attempt only wins when it
  /// is the last one outstanding — a slower healthy duplicate may still
  /// deliver the real answer. `retryable` marks dead-replica bounces and
  /// failed half-open probes, which the ladder retries on a peer.
  void complete(int index, int shard, int replica, bool retryable,
                serve::ServeResult r) {
    check::MutexLock lock(mu);
    --outstanding;
    const bool ok = r.status.code == fault::Status::kOk;
    if (!winner_set && (ok || outstanding == 0)) {
      winner_set = true;
      winner = std::move(r);
      winner_index = index;
      winner_shard = shard;
      winner_replica = replica;
      winner_retryable = retryable;
      cv.notify_all();
    } else if (winner_set && r.status.code == fault::Status::kCancelled) {
      // A losing attempt whose cancellation actually cut it short.
      PEEK_COUNT_INC("shard.hedges.cancelled");
    }
  }
};

/// One unit of replica work: a (s, t, k) attempt plus its cancel handle and
/// the query it reports into.
struct ShardFleet::Attempt {
  vid_t s = 0;
  vid_t t = 0;
  int k = 0;
  int index = 0;  // 0 = primary, >0 = hedge duplicates
  int shard = -1;
  int replica = -1;
  bool probe = false;      // half-open breaker probe (budgeted admission)
  bool retryable = false;  // dead-replica bounce or failed probe
  std::chrono::steady_clock::time_point enqueued{};
  fault::CancelToken token;
  std::shared_ptr<QueryState> state;
};

/// A thread-simulated replica process: engine + breaker + queue + workers.
/// The breaker is the availability source of truth (forced-open models a
/// crashed process); the engine is swappable under engine_mu so the healer
/// can warm-restart a quarantined replica while traffic drains elsewhere.
struct ShardFleet::Replica {
  explicit Replica(const HealthOptions& h) : breaker(h) {}

  ReplicaBreaker breaker;
  mutable check::Mutex engine_mu;
  std::shared_ptr<serve::QueryEngine> engine PEEK_GUARDED_BY(engine_mu);
  check::Mutex mu;
  check::CondVar cv;
  std::deque<std::shared_ptr<Attempt>> queue PEEK_GUARDED_BY(mu);
  bool stopping PEEK_GUARDED_BY(mu) = false;
  /// Live-mutation delivery queue: applied batches (with their fleet-built
  /// post CSR) this replica's engine has not adopted yet. Pushed by
  /// apply_batch under the fence lock (so order = fence-epoch order),
  /// drained by deliver_pending; cleared by a heal (the rebuilt engine
  /// snapshots the current graph, so the backlog is already baked in).
  std::deque<std::pair<dyn::AppliedBatch,
                       std::shared_ptr<const graph::CsrGraph>>>
      pending PEEK_GUARDED_BY(mu);
  /// Serializes delivery so concurrent drainers cannot reorder epochs.
  // ts-allow: pure ordering lock — held across pop+note_batch so epochs
  // reach the engine in queue order; it guards no member of its own.
  check::Mutex apply_mu;
  /// Filled once in the fleet constructor, joined once in the destructor —
  /// never touched by concurrent phases, hence unguarded.
  std::vector<std::thread> workers;

  /// Pin the current engine: holders keep it alive across a heal swap.
  std::shared_ptr<serve::QueryEngine> engine_snapshot() const {
    check::MutexLock lock(engine_mu);
    return engine;
  }
};

struct ShardFleet::Shard {
  std::vector<std::unique_ptr<Replica>> replicas;
  std::atomic<unsigned> rr{0};  // round-robin pick cursor
  mutable check::Mutex lat_mu;
  /// Ring buffer of recent query latencies + total count.
  std::vector<double> lat PEEK_GUARDED_BY(lat_mu);
  std::uint64_t lat_count PEEK_GUARDED_BY(lat_mu) = 0;
};

ShardFleet::ShardFleet(const graph::CsrGraph& g, const FleetOptions& opts)
    : ShardFleet(&g, nullptr, opts) {}

ShardFleet::ShardFleet(dyn::DynamicGraph& dg, const FleetOptions& opts)
    : ShardFleet(nullptr, &dg, opts) {}

ShardFleet::ShardFleet(const graph::CsrGraph* g, dyn::DynamicGraph* dg,
                       const FleetOptions& opts)
    : graph_(g),
      dyn_graph_(dg),
      n_(dg != nullptr ? dg->num_vertices() : g->num_vertices()),
      opts_(opts),
      router_(n_, opts.router) {
  // kInvalidArgument at construction instead of silently clamping: a fleet
  // shaped differently than its config claims would undermine every placement
  // and capacity assumption the caller derived from that config.
  if (opts_.replicas < 1)
    throw std::invalid_argument("FleetOptions::replicas must be >= 1");
  if (opts_.workers_per_replica < 1)
    throw std::invalid_argument(
        "FleetOptions::workers_per_replica must be >= 1");
  if (opts_.hedge.count() < 0)
    throw std::invalid_argument("FleetOptions::hedge must be >= 0");
  if (opts_.default_deadline.count() < 0)
    throw std::invalid_argument("FleetOptions::default_deadline must be >= 0");
  if (opts_.max_queue < 0)
    throw std::invalid_argument("FleetOptions::max_queue must be >= 0");
  if (opts_.injector) fault::Injector::global().configure(*opts_.injector);
  // The fleet installs the injector once; per-replica engines must not each
  // re-install it (configure() resets the fired counters) — and neither may
  // a healing rebuild mid-soak.
  opts_.serve.injector.reset();
  if (dyn_graph_ != nullptr) {
    // Live-mutation fleet: replicas must run the surgical pipeline — legacy
    // per-query version reconciliation would race apply_batch's fan-out.
    opts_.serve.live_mutations = true;
    // Uncontended (no thread exists yet); taken so the annotations hold.
    check::MutexLock lock(fence_mu_);
    fence_csr_ = std::make_shared<const graph::CsrGraph>(dyn_graph_->to_csr());
  }

  shards_.reserve(static_cast<size_t>(router_.shards()));
  for (int sh = 0; sh < router_.shards(); ++sh) {
    auto shard = std::make_unique<Shard>();
    shard->replicas.reserve(static_cast<size_t>(opts_.replicas));
    for (int r = 0; r < opts_.replicas; ++r) {
      auto rep = std::make_unique<Replica>(opts_.health);
      {
        // Uncontended (no worker exists yet); taken so the annotation on
        // `engine` holds unconditionally.
        check::MutexLock lock(rep->engine_mu);
        rep->engine =
            dyn_graph_ != nullptr
                ? std::make_shared<serve::QueryEngine>(
                      static_cast<const dyn::DynamicGraph&>(*dyn_graph_),
                      engine_options(sh, r))
                : std::make_shared<serve::QueryEngine>(*graph_,
                                                       engine_options(sh, r));
      }
      shard->replicas.push_back(std::move(rep));
    }
    shards_.push_back(std::move(shard));
  }
  // Workers and the healer start only after every replica exists: a worker's
  // failover path may touch engines on other shards, and a heal swaps them.
  healer_ = std::thread([this] { healer_loop(); });
  for (auto& shard : shards_) {
    for (auto& rep : shard->replicas) {
      for (int w = 0; w < opts_.workers_per_replica; ++w) {
        rep->workers.emplace_back(
            [this, r = rep.get()] { worker_loop(*r); });
      }
    }
  }
}

ShardFleet::~ShardFleet() {
  {
    check::MutexLock lock(heal_mu_);
    heal_stopping_ = true;
  }
  heal_cv_.notify_all();
  if (healer_.joinable()) healer_.join();
  for (auto& shard : shards_) {
    for (auto& rep : shard->replicas) {
      {
        check::MutexLock lock(rep->mu);
        rep->stopping = true;
      }
      rep->cv.notify_all();
    }
  }
  for (auto& shard : shards_) {
    for (auto& rep : shard->replicas) {
      for (auto& w : rep->workers) w.join();
    }
  }
}

serve::ServeOptions ShardFleet::engine_options(int shard, int replica) const {
  serve::ServeOptions eo = opts_.serve;
  if (!eo.snapshot_dir.empty()) {
    // Per-replica snapshot directory: replicas never clobber each other's
    // artifacts, and a healing rebuild warm-restarts from its own.
    eo.snapshot_dir += "/s" + std::to_string(shard) + ".r" +
                       std::to_string(replica);
  }
  return eo;
}

// ---------------------------------------------------------------------------
// Live mutations: fleet-wide fence (DESIGN.md §15)
// ---------------------------------------------------------------------------

dyn::AppliedBatch ShardFleet::apply_batch(const dyn::UpdateBatch& batch) {
  dyn::AppliedBatch b;
  if (dyn_graph_ == nullptr) return b;  // misuse on a static fleet: no-op
  check::MutexLock lock(fence_mu_);
  b = dyn::apply(*dyn_graph_, batch);
  b.epoch = fence_epoch_.load(std::memory_order_relaxed) + 1;
  // The post-mutation CSR is built exactly once, here, under the fence lock
  // — replicas adopting it later must never read the DynamicGraph itself,
  // which the next apply_batch may be mutating by then.
  auto post = std::make_shared<const graph::CsrGraph>(
      fence_csr_ ? dyn::patched_csr(*dyn_graph_, *fence_csr_, b)
                 : dyn_graph_->to_csr());
  fence_csr_ = post;
  fence_history_.push_back({b.epoch, b.structural(), b.weight_delta_sum()});
  while (fence_history_.size() > 64) fence_history_.pop_front();
  fence_epoch_.store(b.epoch, std::memory_order_release);
  PEEK_COUNT_INC("shard.batches");
  // Fan-out inside the fence lock: concurrent apply_batch calls would
  // otherwise interleave their pushes and a replica could adopt epochs out
  // of order. Each replica catches up at its own pace (deliver_pending runs
  // before every dispatch); the query ladder's fencing covers the gap.
  for (auto& sh : shards_) {
    for (auto& rep : sh->replicas) {
      check::MutexLock rlock(rep->mu);
      rep->pending.emplace_back(b, post);
    }
  }
  return b;
}

void ShardFleet::deliver_pending(Replica& rep) {
  if (dyn_graph_ == nullptr) return;
  // apply_mu serializes concurrent drainers: pops happen in queue (= epoch)
  // order and each batch reaches the engine before the next one is popped.
  check::MutexLock alock(rep.apply_mu);
  for (;;) {
    std::optional<std::pair<dyn::AppliedBatch,
                            std::shared_ptr<const graph::CsrGraph>>>
        item;
    {
      check::MutexLock lock(rep.mu);
      if (rep.pending.empty()) break;
      item = std::move(rep.pending.front());
      rep.pending.pop_front();
    }
    // Pin the engine per batch: a heal swapping mid-drain leaves stale
    // redeliveries, which the engine ignores (epochs <= its own are no-ops).
    rep.engine_snapshot()->note_batch(item->first, std::move(item->second));
  }
}

void ShardFleet::deliver_batches() {
  if (dyn_graph_ == nullptr) return;
  for (auto& sh : shards_) {
    for (auto& rep : sh->replicas) deliver_pending(*rep);
  }
}

bool ShardFleet::fence_result(serve::ServeResult& r, std::uint64_t eff,
                              std::uint64_t fence) {
  check::MutexLock lock(fence_mu_);
  // Coverage: the bounded history must contain every batch in (eff, fence]
  // — epochs are dense, so it does iff the oldest record is <= eff + 1.
  if (fence_history_.empty() || fence_history_.front().epoch > eff + 1) {
    return false;
  }
  weight_t widen = 0;
  for (const FenceRecord& fr : fence_history_) {
    if (fr.epoch <= eff || fr.epoch > fence) continue;
    if (fr.structural) return false;  // no weight bound covers topology
    widen += fr.bound;
  }
  // Reweight-only gap: extend the answer's staleness window to the fence.
  // A fresh answer (epochs_behind 0, bound 0) becomes a stale one; an
  // already-stale answer widens. `epoch` stays the content epoch.
  r.staleness.stale = true;
  r.staleness.epochs_behind += fence - eff;
  r.staleness.weight_bound += widen;
  PEEK_COUNT_INC("shard.stale_upgrades");
  return true;
}

void ShardFleet::worker_loop(Replica& rep) {
  for (;;) {
    std::shared_ptr<Attempt> at;
    {
      check::UniqueLock lock(rep.mu);
      while (!rep.stopping && rep.queue.empty()) rep.cv.wait(lock);
      if (rep.queue.empty()) break;  // stopping, and fully drained
      at = std::move(rep.queue.front());
      rep.queue.pop_front();
    }
    serve::ServeResult r;
    const double queue_age = seconds_since(at->enqueued);
    bool bounced = false;
    bool dispatched = false;
    if (rep.breaker.forced_open() || PEEK_FAULT_FIRE("shard.replica.down")) {
      // Dead-process bounce: no engine work, no cache access.
      at->retryable = true;
      bounced = true;
      r.status = {fault::Status::kOverloaded, "replica down"};
    } else if (at->token.triggered()) {
      // Cancelled while still queued (lost hedge, tripped deadline).
      r.status = {at->token.why(), "cancelled before dispatch"};
    } else {
      dispatched = true;
      // Live mutations: adopt this replica's batch backlog before serving,
      // so staggered delivery never makes an answer lag the fence by more
      // than the batches that land mid-query.
      deliver_pending(rep);
      PEEK_FAULT_STALL("shard.replica.stall");
      serve::QueryOptions qo;
      qo.cancel = &at->token;
      // Pin the engine across the call: a concurrent heal may swap it.
      auto engine = rep.engine_snapshot();
      r = engine->query(at->s, at->t, at->k, qo);
      if (r.status.code == fault::Status::kOk && !r.degraded &&
          !r.paths.empty() && PEEK_FAULT_FIRE("shard.replica.corrupt")) {
        // Simulated replica corruption: the served distance no longer sums
        // from its edges, which the §14 certificate catches downstream.
        r.paths.back().dist += weight_t{1};
      }
    }
    // Every real completion (served or bounced) feeds the EWMA; attempts
    // cancelled before dispatch say nothing about this replica's health.
    if (bounced || dispatched) {
      HealthSignal sig;
      sig.ok = r.status.code == fault::Status::kOk;
      sig.timeout = r.status.code == fault::Status::kDeadlineExceeded;
      sig.error = bounced || r.status.code == fault::Status::kInternal ||
                  r.status.code == fault::Status::kDataLoss ||
                  r.status.code == fault::Status::kResourceExhausted;
      sig.queue_age_s = queue_age;
      rep.breaker.record(sig);
    }
    if (at->probe) {
      using PO = ReplicaBreaker::ProbeOutcome;
      PO po = PO::kFailure;
      if (r.status.code == fault::Status::kOk) {
        po = PO::kSuccess;
      } else if (r.status.code == fault::Status::kCancelled) {
        po = PO::kAbandoned;  // lost hedge race, not the replica's fault
      } else {
        at->retryable = true;  // failed probe: the ladder moves on
      }
      rep.breaker.probe_done(po);
    }
    at->state->complete(at->index, at->shard, at->replica, at->retryable,
                        std::move(r));
  }
}

ShardFleet::Pick ShardFleet::pick_replica(Shard& sh, int skip) {
  const unsigned count = static_cast<unsigned>(opts_.replicas);
  const unsigned start = sh.rr.fetch_add(1, std::memory_order_relaxed);
  for (unsigned i = 0; i < count; ++i) {
    const int r = static_cast<int>((start + i) % count);
    if (r == skip) continue;
    switch (sh.replicas[static_cast<size_t>(r)]->breaker.admit()) {
      case ReplicaBreaker::Admission::kAdmit:
        return Pick{r, false};
      case ReplicaBreaker::Admission::kProbe:
        return Pick{r, true};
      case ReplicaBreaker::Admission::kReject:
        break;
    }
  }
  return Pick{};
}

void ShardFleet::launch(int shard, int replica, int index, bool probe,
                        vid_t s, vid_t t, int k,
                        const fault::CancelToken* base,
                        const std::shared_ptr<QueryState>& st) {
  auto at = std::make_shared<Attempt>();
  at->s = s;
  at->t = t;
  at->k = k;
  at->index = index;
  at->shard = shard;
  at->replica = replica;
  at->probe = probe;
  at->enqueued = std::chrono::steady_clock::now();
  // Per-attempt handle under the caller's token/deadline: cancelling it
  // abandons just this attempt; the parent tripping abandons them all. A
  // probe additionally rides the breaker's probe_deadline so a wedged
  // replica fails its probe instead of wedging the prober.
  const auto pd = opts_.health.probe_deadline;
  if (probe && pd.count() > 0) {
    at->token = base != nullptr ? fault::CancelToken::linked(*base, pd)
                                : fault::CancelToken::after(pd);
  } else {
    at->token = base != nullptr ? fault::CancelToken::linked(*base)
                                : fault::CancelToken::cancellable();
  }
  at->state = st;
  {
    check::MutexLock lock(st->mu);
    ++st->outstanding;
    if (static_cast<size_t>(index) >= st->tokens.size())
      st->tokens.resize(static_cast<size_t>(index) + 1);
    st->tokens[static_cast<size_t>(index)] = at->token;
  }
  Replica& rep = *shards_[static_cast<size_t>(shard)]
                      ->replicas[static_cast<size_t>(replica)];
  bool shed = false;
  {
    check::MutexLock lock(rep.mu);
    if (opts_.max_queue > 0 &&
        rep.queue.size() >= static_cast<size_t>(opts_.max_queue)) {
      shed = true;  // routing-tier admission: bounce without queueing
    } else {
      rep.queue.push_back(std::move(at));
      rep.cv.notify_one();
    }
  }
  if (shed) {
    PEEK_COUNT_INC("shard.shed");
    // A probe that cannot even enqueue is a failed probe.
    if (probe) rep.breaker.probe_done(ReplicaBreaker::ProbeOutcome::kFailure);
    serve::ServeResult r;
    r.status = {fault::Status::kOverloaded, "replica queue full"};
    st->complete(index, shard, replica, /*retryable=*/false, std::move(r));
  }
}

ShardFleet::RunOutcome ShardFleet::run_on_shard(
    int shard, vid_t s, vid_t t, int k, const fault::CancelToken* base) {
  RunOutcome out;
  Shard& sh = *shards_[static_cast<size_t>(shard)];
  int skip = -1;
  bool hedged_any = false;
  for (int attempt = 0; attempt < opts_.replicas; ++attempt) {
    const Pick p0 = pick_replica(sh, skip);
    if (p0.replica < 0) {
      out.hedged = hedged_any;
      out.unavailable = true;
      return out;
    }
    if (attempt > 0) PEEK_COUNT_INC("shard.replica_retries");
    auto st = std::make_shared<QueryState>();
    launch(shard, p0.replica, 0, p0.probe, s, t, k, base, st);
    bool hedged = false;
    {
      check::UniqueLock lock(st->mu);
      if (opts_.hedge.count() > 0 && !st->winner_set) {
        const auto hedge_by = std::chrono::steady_clock::now() + opts_.hedge;
        while (!st->winner_set &&
               st->cv.wait_until(lock, hedge_by) != std::cv_status::timeout) {
        }
      }
      if (opts_.hedge.count() > 0 && !st->winner_set) {
        // The primary overran the hedge budget: duplicate on a spare
        // replica here, else (under failover) on the ring successor.
        int hshard = shard;
        Pick hp = pick_replica(sh, p0.replica);
        if (hp.replica < 0 && opts_.failover) {
          for (int step = 1; step < router_.shards() && hp.replica < 0;
               ++step) {
            hshard = router_.successor(shard, step);
            hp = pick_replica(*shards_[static_cast<size_t>(hshard)], -1);
          }
        }
        if (hp.replica >= 0) {
          lock.unlock();
          launch(hshard, hp.replica, 1, hp.probe, s, t, k, base, st);
          PEEK_COUNT_INC("shard.hedges.fired");
          hedged = true;
          hedged_any = true;
          lock.lock();
        }
      }
      while (!st->winner_set) st->cv.wait(lock);
      out.result = std::move(st->winner);
      out.shard = st->winner_shard;
      out.replica = st->winner_replica;
      out.hedged = hedged_any;
      out.hedge_won = hedged && st->winner_index > 0;
      out.unavailable = st->winner_retryable;
    }
    {
      // First completion won; cancel every losing attempt. Their workers
      // observe the tripped token and bail (shard.hedges.cancelled).
      check::MutexLock lock(st->mu);
      for (size_t i = 0; i < st->tokens.size(); ++i) {
        if (static_cast<int>(i) != st->winner_index) st->tokens[i].cancel();
      }
    }
    if (out.hedge_won) {
      PEEK_COUNT_INC("shard.hedges.won");
    } else if (hedged) {
      PEEK_COUNT_INC("shard.hedges.wasted");
    }
    if (!out.unavailable) return out;
    // That replica just bounced — try its peers (only meaningful when the
    // bounce came from this shard; a bounced cross-shard hedge says nothing
    // about the home replicas).
    if (out.shard == shard) skip = out.replica;
  }
  out.unavailable = true;
  return out;
}

bool ShardFleet::try_degraded(vid_t s, vid_t t, int k, int home,
                              FleetResult& out) {
  // Read-only cache peek across surviving replicas, ring order from home.
  // query_cached_only does zero graph work, so bypassing the queues here is
  // safe even while those replicas serve their own traffic. Crashed
  // (forced-open) and corruption-quarantined replicas are skipped — the
  // former's cache is unreachable, the latter's is suspect.
  for (int step = 0; step < router_.shards(); ++step) {
    const int sh = router_.successor(home, step);
    Shard& shard = *shards_[static_cast<size_t>(sh)];
    for (int r = 0; r < opts_.replicas; ++r) {
      Replica& rep = *shard.replicas[static_cast<size_t>(r)];
      if (rep.breaker.forced_open() || rep.breaker.quarantined()) continue;
      serve::ServeResult res =
          rep.engine_snapshot()->query_cached_only(s, t, k);
      if (res.status.code == fault::Status::kOk) {
        out.result = std::move(res);
        out.shard = sh;
        out.replica = r;
        out.failover = sh != home;
        return true;
      }
    }
  }
  return false;
}

FleetResult ShardFleet::query(vid_t s, vid_t t, int k,
                              const serve::QueryOptions& qopts) {
  const auto t0 = std::chrono::steady_clock::now();
  FleetResult out;
  PEEK_COUNT_INC("shard.queries");
  PEEK_TIMER_SCOPE("shard.query");

  if (k <= 0 || s < 0 || s >= n_ || t < 0 || t >= n_) {
    out.result.status = {fault::Status::kInvalidArgument,
                         "query requires 0 <= s,t < n and k > 0"};
    out.seconds = seconds_since(t0);
    return out;
  }

  const int home = router_.route(s, t);
  out.shard = home;

  // Caller token + per-query deadline, merged exactly like QueryEngine does
  // — replicas then only see per-attempt children of this one token.
  fault::CancelToken deadline_token;
  const fault::CancelToken* base =
      qopts.cancel != nullptr && qopts.cancel->valid() ? qopts.cancel
                                                       : nullptr;
  const auto budget =
      qopts.deadline.count() > 0 ? qopts.deadline : opts_.default_deadline;
  if (budget.count() > 0) {
    deadline_token = base != nullptr
                         ? fault::CancelToken::linked(*base, budget)
                         : fault::CancelToken::after(budget);
    base = &deadline_token;
  }

  // One certification retry per fleet replica: quarantining cannot free more
  // replicas than exist, so the loop is bounded even if every answer fails.
  const int max_cert_rounds = router_.shards() * opts_.replicas;
  int cert_rounds = 0;
  int fence_rounds = 0;
  int shard = home;
  int step = 0;
  for (;;) {
    RunOutcome ro = run_on_shard(shard, s, t, k, base);
    out.hedged = out.hedged || ro.hedged;
    out.hedge_won = out.hedge_won || ro.hedge_won;
    if (!ro.unavailable) {
      const int won_shard = ro.shard >= 0 ? ro.shard : shard;
      if (dyn_graph_ != nullptr &&
          ro.result.status.code == fault::Status::kOk && !ro.result.degraded) {
        // Epoch fence: the answer's engine served it at epoch
        // `staleness.epoch + epochs_behind`. Behind the fence, it must not
        // be returned as-is — widen it into an explicitly-bounded stale
        // answer (reweight-only gap), else force-deliver the lagging
        // replica's backlog and retry the ladder. Either way no ladder ever
        // mixes epochs: every non-stale answer it returns is at (or past)
        // the fence read here.
        const std::uint64_t eff =
            ro.result.staleness.epoch + ro.result.staleness.epochs_behind;
        const std::uint64_t fence =
            fence_epoch_.load(std::memory_order_acquire);
        if (eff < fence && !fence_result(ro.result, eff, fence)) {
          PEEK_COUNT_INC("shard.epoch_bounces");
          if (ro.replica >= 0) {
            deliver_pending(*shards_[static_cast<size_t>(won_shard)]
                                 ->replicas[static_cast<size_t>(ro.replica)]);
          }
          if (++fence_rounds < max_cert_rounds &&
              !(base != nullptr && base->triggered())) {
            shard = home;
            step = 0;
            continue;
          }
          out.result = serve::ServeResult{};
          out.result.status = {fault::Status::kOverloaded,
                               "no replica reached the fence epoch"};
          out.shard = won_shard;
          out.replica = ro.replica;
          break;
        }
      }
      if (opts_.certify && ro.result.status.code == fault::Status::kOk &&
          !ro.result.degraded && !ro.result.staleness.stale) {
        // Certification graph: the static CSR, or — live mutations — the
        // fence CSR, valid only while the answer's epoch still IS the fence
        // (a batch landing after the fence check above skips certification
        // for this answer; the engine-side guards already validated it).
        std::shared_ptr<const graph::CsrGraph> live_cg;
        if (dyn_graph_ != nullptr) {
          check::MutexLock lock(fence_mu_);
          if (ro.result.staleness.epoch ==
              fence_epoch_.load(std::memory_order_relaxed)) {
            live_cg = fence_csr_;
          }
        }
        const graph::CsrGraph* cg =
            dyn_graph_ != nullptr ? live_cg.get() : graph_;
        if (cg != nullptr) {
          PEEK_COUNT_INC("serve.certify.checks");
          check::CertifyOptions co;
          co.upper_bound = ro.result.upper_bound;
          fault::Status cert =
              check::certify_paths(*cg, s, t, ro.result.paths, co);
          if (!cert.ok()) {
            // A certificate failure is replica corruption, not query
            // failure: quarantine + heal the replica, retry the ladder on
            // its peers.
            PEEK_COUNT_INC("serve.certify.failures");
            if (ro.replica >= 0) quarantine_replica(won_shard, ro.replica);
            if (++cert_rounds < max_cert_rounds &&
                !(base != nullptr && base->triggered())) {
              shard = home;
              step = 0;
              continue;
            }
            out.result = serve::ServeResult{};
            out.result.certificate_failed = true;
            out.result.status = {fault::Status::kInternal,
                                 "no replica produced a certified answer: " +
                                     cert.message};
            out.shard = won_shard;
            out.replica = ro.replica;
            break;
          }
        }
      }
      out.result = std::move(ro.result);
      out.shard = won_shard;
      out.replica = ro.replica;
      out.failover = won_shard != home;
      break;
    }
    if (opts_.failover && step + 1 < router_.shards() &&
        !(base != nullptr && base->triggered())) {
      ++step;
      shard = router_.successor(home, step);
      PEEK_COUNT_INC("shard.failovers");
      continue;
    }
    if (opts_.degraded_fallback && try_degraded(s, t, k, home, out)) {
      PEEK_COUNT_INC("shard.degraded_fallbacks");
      break;
    }
    out.result.status = {fault::Status::kOverloaded,
                         "shard down: no live replica"};
    out.shard = shard;
    out.replica = -1;
    PEEK_COUNT_INC("shard.shard_down_rejects");
    break;
  }

  if (out.result.status.code == fault::Status::kOk && !out.result.degraded) {
    // Route quality: did consistent hashing land this query on warm state?
    if (out.result.snapshot_hit || out.result.fwd_tree_hit ||
        out.result.rev_tree_hit || out.result.coalesced) {
      PEEK_COUNT_INC("shard.route.hits");
    } else {
      PEEK_COUNT_INC("shard.route.misses");
    }
  }
  out.seconds = seconds_since(t0);
  if (out.shard >= 0) record_latency(out.shard, out.seconds);
  return out;
}

void ShardFleet::quarantine_replica(int shard, int replica) {
  Replica& rep = *shards_[static_cast<size_t>(shard)]
                      ->replicas[static_cast<size_t>(replica)];
  rep.breaker.quarantine();
  PEEK_COUNT_INC("shard.replica.quarantines");
  {
    check::MutexLock lock(heal_mu_);
    heal_queue_.emplace_back(shard, replica);
  }
  heal_cv_.notify_one();
}

void ShardFleet::healer_loop() {
  for (;;) {
    std::pair<int, int> job;
    {
      check::UniqueLock lock(heal_mu_);
      while (!heal_stopping_ && heal_queue_.empty()) heal_cv_.wait(lock);
      if (heal_queue_.empty()) break;  // stopping, and fully drained
      job = heal_queue_.front();
      heal_queue_.pop_front();
      healing_ = true;
    }
    heal_replica(job.first, job.second);
    {
      check::MutexLock lock(heal_mu_);
      healing_ = false;
    }
    heal_cv_.notify_all();  // drain_heals() waiters
  }
}

void ShardFleet::heal_replica(int shard, int replica) {
  Replica& rep = *shards_[static_cast<size_t>(shard)]
                      ->replicas[static_cast<size_t>(replica)];
  // Drop the suspect caches first: queries still running on the old engine
  // see a bumped generation immediately, before the swap even lands.
  auto old = rep.engine_snapshot();
  old->invalidate();
  old->cache().clear();
  // Warm restart: a fresh engine restores this replica's persisted artifacts
  // through recover::RecoveryManager (checksum-validated; corrupt files are
  // quarantined on disk, not loaded). No injector config here — rebuilding
  // mid-soak must not reset the global injector's fired counters.
  try {
    if (dyn_graph_ != nullptr) {
      // Fence-consistent rebuild: construction, epoch alignment, backlog
      // clear and swap all happen under the fence lock, so no batch can land
      // between the fresh engine's graph snapshot and the moment it takes
      // traffic. The snapshot reflects every batch <= the fence (the graph
      // only mutates under fence_mu_), reset_epoch claims exactly that, and
      // the cleared pending queue held only batches the snapshot already
      // bakes in (any concurrent drain's stale redelivery to the fresh
      // engine is an epoch <= fence no-op).
      check::MutexLock fence_lock(fence_mu_);
      auto fresh = std::make_shared<serve::QueryEngine>(
          static_cast<const dyn::DynamicGraph&>(*dyn_graph_),
          engine_options(shard, replica));
      fresh->reset_epoch(fence_epoch_.load(std::memory_order_relaxed));
      {
        check::MutexLock lock(rep.mu);
        rep.pending.clear();
      }
      check::MutexLock lock(rep.engine_mu);
      rep.engine = std::move(fresh);
    } else {
      auto fresh = std::make_shared<serve::QueryEngine>(
          *graph_, engine_options(shard, replica));
      check::MutexLock lock(rep.engine_mu);
      rep.engine = std::move(fresh);
    }
  } catch (const std::exception&) {
    // Rebuild failed (e.g. injected allocation failure): keep the old
    // engine — its caches are already dropped, which is restart-equivalent
    // minus the warm state.
  }
  PEEK_COUNT_INC("shard.replica.warm_restarts");
  // Re-admission is gated by the breaker: release the sticky quarantine so
  // the next pick may half-open and probe the rebuilt replica.
  rep.breaker.release_quarantine();
}

void ShardFleet::set_replica_down(int shard, int replica, bool down) {
  PEEK_DCHECK(shard >= 0 && shard < router_.shards());
  PEEK_DCHECK(replica >= 0 && replica < opts_.replicas);
  ReplicaBreaker& b = shards_[static_cast<size_t>(shard)]
                          ->replicas[static_cast<size_t>(replica)]
                          ->breaker;
  if (down) {
    b.force_open();
  } else {
    b.force_close();
  }
}

bool ShardFleet::replica_down(int shard, int replica) const {
  PEEK_DCHECK(shard >= 0 && shard < router_.shards());
  PEEK_DCHECK(replica >= 0 && replica < opts_.replicas);
  return shards_[static_cast<size_t>(shard)]
      ->replicas[static_cast<size_t>(replica)]
      ->breaker.forced_open();
}

BreakerState ShardFleet::breaker_state(int shard, int replica) const {
  PEEK_DCHECK(shard >= 0 && shard < router_.shards());
  PEEK_DCHECK(replica >= 0 && replica < opts_.replicas);
  return shards_[static_cast<size_t>(shard)]
      ->replicas[static_cast<size_t>(replica)]
      ->breaker.state();
}

double ShardFleet::replica_health(int shard, int replica) const {
  PEEK_DCHECK(shard >= 0 && shard < router_.shards());
  PEEK_DCHECK(replica >= 0 && replica < opts_.replicas);
  return shards_[static_cast<size_t>(shard)]
      ->replicas[static_cast<size_t>(replica)]
      ->breaker.health();
}

void ShardFleet::drain_heals() {
  check::UniqueLock lock(heal_mu_);
  while (!heal_queue_.empty() || healing_) heal_cv_.wait(lock);
}

serve::QueryEngine& ShardFleet::engine(int shard, int replica) {
  PEEK_DCHECK(shard >= 0 && shard < router_.shards());
  PEEK_DCHECK(replica >= 0 && replica < opts_.replicas);
  return *shards_[static_cast<size_t>(shard)]
              ->replicas[static_cast<size_t>(replica)]
              ->engine_snapshot();
}

void ShardFleet::record_latency(int shard, double seconds) {
  Shard& sh = *shards_[static_cast<size_t>(shard)];
  check::MutexLock lock(sh.lat_mu);
  if (sh.lat.size() < kLatencyWindow) {
    sh.lat.push_back(seconds);
  } else {
    sh.lat[static_cast<size_t>(sh.lat_count % kLatencyWindow)] = seconds;
  }
  ++sh.lat_count;
}

std::vector<ShardLatency> ShardFleet::stats() const {
  std::vector<ShardLatency> out;
  out.reserve(shards_.size());
  for (const auto& sh : shards_) {
    ShardLatency sl;
    std::vector<double> window;
    {
      check::MutexLock lock(sh->lat_mu);
      window = sh->lat;
      sl.count = sh->lat_count;
    }
    if (!window.empty()) {
      std::sort(window.begin(), window.end());
      sl.p50_s = window[percentile_index(window.size(), 500)];
      sl.p99_s = window[percentile_index(window.size(), 990)];
    }
    out.push_back(sl);
  }
  return out;
}

void ShardFleet::publish_latency_metrics() const {
  if (!obs::kEnabled) return;  // honor the PEEK_OBS=OFF kill switch
  const auto per = stats();
  auto& reg = obs::MetricsRegistry::global();
  std::vector<double> all;
  for (size_t i = 0; i < shards_.size(); ++i) {
    {
      check::MutexLock lock(shards_[i]->lat_mu);
      all.insert(all.end(), shards_[i]->lat.begin(), shards_[i]->lat.end());
    }
    // Per-shard gauge family: names are built at runtime (shard count is a
    // config value), so they are documented in README prose rather than the
    // lint-enforced literal-name metric tables.
    const std::string prefix = "shard.s" + std::to_string(i);
    reg.gauge(prefix + ".p50_seconds").set(per[i].p50_s);
    reg.gauge(prefix + ".p99_seconds").set(per[i].p99_s);
  }
  if (!all.empty()) {
    std::sort(all.begin(), all.end());
    PEEK_GAUGE_SET("shard.p50_seconds",
                   all[percentile_index(all.size(), 500)]);
    PEEK_GAUGE_SET("shard.p99_seconds",
                   all[percentile_index(all.size(), 990)]);
  }
  // Per-replica health gauges (runtime names, README prose) plus the
  // fleet-wide minimum as a literal, alertable gauge.
  double min_health = 1.0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    for (int r = 0; r < opts_.replicas; ++r) {
      const double h =
          shards_[i]->replicas[static_cast<size_t>(r)]->breaker.health();
      const std::string name = "shard.s" + std::to_string(i) + ".r" +
                               std::to_string(r) + ".health";
      reg.gauge(name).set(h);
      min_health = std::min(min_health, h);
    }
  }
  PEEK_GAUGE_SET("shard.replica.health.min", min_health);
}

}  // namespace peek::shard
