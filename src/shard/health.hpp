// Per-replica health tracking and circuit breaking (DESIGN.md §14).
//
// Every attempt completion feeds a HealthSignal into an EWMA health score in
// [0, 1]; a score collapsing under the trip threshold opens the replica's
// breaker. The breaker is the fleet's single source of truth for replica
// availability — it subsumes the boolean `replica_down` flag of earlier
// revisions (operator force-open/-close keep that API working) and adds two
// automatic paths back to service:
//
//   closed ──(health < trip, samples >= min)──> open
//   open   ──(cooldown elapsed, next admit)──> half-open
//   half-open ──(budgeted probe succeeds)────> closed
//   half-open ──(probe fails)────────────────> open   (cooldown restarts)
//
// Half-open admits at most `probe_budget` concurrent probe attempts; probes
// are real queries that ride a fault::CancelToken::linked(parent,
// probe_deadline) token so a wedged replica cannot hold the prober hostage.
// Quarantine (answer-certification failure, shard/fleet.cpp) is a sticky
// open that only the healer releases after the replica's warm restart.
//
// Thread-safe: one mutex per breaker; every method is safe from any thread.
#pragma once

#include <chrono>
#include <cstdint>

#include "check/thread_safety.hpp"

namespace peek::shard {

struct HealthOptions {
  /// EWMA weight of the newest sample (0 < alpha <= 1).
  double alpha = 0.25;
  /// The breaker opens when health drops below this.
  double trip_threshold = 0.5;
  /// Samples required before automatic trips arm (a single cold-start
  /// failure must not open a fresh replica).
  int min_samples = 8;
  /// Open -> half-open delay: how long an open breaker rejects before the
  /// next admit() is allowed to probe.
  std::chrono::milliseconds cooldown{50};
  /// Concurrent probe attempts a half-open breaker admits.
  int probe_budget = 2;
  /// Deadline each probe rides (linked under the caller token); a wedged
  /// replica fails its probe instead of wedging the prober. <= 0 = none.
  std::chrono::milliseconds probe_deadline{250};
  /// Queue age that halves an otherwise-healthy sample: health decays when
  /// a replica's queue backs up even if every answer is eventually ok.
  double queue_age_ref_s = 0.25;
};

/// One attempt completion, as seen by the replica that ran (or bounced) it.
struct HealthSignal {
  bool ok = false;       // completed with Status::kOk
  bool timeout = false;  // completed with Status::kDeadlineExceeded
  bool error = false;    // bounced, corrupted, or failed internally
  double queue_age_s = 0;  // enqueue -> dispatch wait
};

enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };

const char* to_string(BreakerState s);

/// EWMA health + circuit breaker for one replica. The fleet calls admit()
/// per candidate pick, record() per completion, and probe_done() per probe.
class ReplicaBreaker {
 public:
  enum class Admission : std::uint8_t {
    kAdmit,   // closed: normal traffic
    kProbe,   // half-open: this attempt is a budgeted probe
    kReject,  // open (or half-open with no probe slot left)
  };

  enum class ProbeOutcome : std::uint8_t {
    kSuccess,    // kOk answer: close the breaker
    kFailure,    // error/timeout: re-open, cooldown restarts
    kAbandoned,  // cancelled (lost hedge): return the slot, no transition
  };

  explicit ReplicaBreaker(const HealthOptions& opts = {});

  /// Admission decision for one attempt; half-open probe slots are claimed
  /// here and must be returned through probe_done().
  Admission admit();

  /// Feed one attempt completion into the EWMA; may trip closed -> open.
  void record(const HealthSignal& sig);

  /// Report a probe attempt's outcome (success closes, failure re-opens).
  void probe_done(ProbeOutcome outcome);

  /// Operator force states — the set_replica_down(true/false) semantics: a
  /// forced-open breaker models a crashed process (no automatic half-open
  /// until force_close(), which also lifts any quarantine).
  void force_open();
  void force_close();
  bool forced_open() const;

  /// Sticky open for a corruption-suspect replica; only release_quarantine()
  /// (the healer, after the warm restart) re-arms the half-open path.
  void quarantine();
  void release_quarantine();
  bool quarantined() const;

  BreakerState state() const;
  double health() const;

 private:
  /// -> open with the cooldown armed; callers count the shard.breaker.*
  /// transition metric at the call site (lint-enforced literals, §14).
  void open_locked() PEEK_REQUIRES(mu_);

  HealthOptions opts_;
  mutable check::Mutex mu_;
  BreakerState state_ PEEK_GUARDED_BY(mu_) = BreakerState::kClosed;
  bool forced_ PEEK_GUARDED_BY(mu_) = false;
  bool quarantined_ PEEK_GUARDED_BY(mu_) = false;
  double health_ PEEK_GUARDED_BY(mu_) = 1.0;
  std::int64_t samples_ PEEK_GUARDED_BY(mu_) = 0;
  int probes_inflight_ PEEK_GUARDED_BY(mu_) = 0;
  std::chrono::steady_clock::time_point open_until_ PEEK_GUARDED_BY(mu_){};
};

}  // namespace peek::shard
