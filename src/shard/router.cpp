#include "shard/router.hpp"

#include <algorithm>
#include <stdexcept>

#include "check/invariants.hpp"
#include "dist/partition.hpp"

namespace peek::shard {

namespace {

/// splitmix64 finalizer: the same cheap, high-quality mixer the dist retry
/// backoff uses. Pure, so routing stays process-independent.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ShardRouter::ShardRouter(vid_t n, const RouterOptions& opts) : opts_(opts) {
  // kInvalidArgument at construction instead of silently reshaping the ring:
  // a clamped shard/vnode count would route differently than the caller's
  // config says, which is exactly the placement drift consistent hashing
  // exists to prevent.
  if (opts_.shards < 1)
    throw std::invalid_argument("RouterOptions::shards must be >= 1");
  if (opts_.vnodes < 1)
    throw std::invalid_argument("RouterOptions::vnodes must be >= 1");
  if (opts_.blocks < 1)
    throw std::invalid_argument("RouterOptions::blocks must be >= 1");
  points_ = dist::partition_points(n, opts_.blocks);

  ring_.reserve(static_cast<size_t>(opts_.shards) *
                static_cast<size_t>(opts_.vnodes));
  for (int sh = 0; sh < opts_.shards; ++sh) {
    for (int v = 0; v < opts_.vnodes; ++v) {
      const std::uint64_t h =
          mix64(opts_.seed ^ mix64((static_cast<std::uint64_t>(sh) << 20) +
                                   static_cast<std::uint64_t>(v)));
      ring_.emplace_back(h, sh);
    }
  }
  std::sort(ring_.begin(), ring_.end());

  // Fixed successor permutation: shards in order of first ring appearance.
  ring_order_.reserve(static_cast<size_t>(opts_.shards));
  order_pos_.assign(static_cast<size_t>(opts_.shards), -1);
  for (const auto& [h, sh] : ring_) {
    if (order_pos_[static_cast<size_t>(sh)] < 0) {
      order_pos_[static_cast<size_t>(sh)] =
          static_cast<int>(ring_order_.size());
      ring_order_.push_back(sh);
    }
  }
}

int ShardRouter::block_of(vid_t v) const {
  return dist::owner_of(v, points_);
}

std::uint64_t ShardRouter::locality_key(vid_t s, vid_t t) const {
  return (static_cast<std::uint64_t>(block_of(s)) << 32) |
         static_cast<std::uint64_t>(block_of(t));
}

int ShardRouter::route(vid_t s, vid_t t) const {
  const std::uint64_t h = mix64(locality_key(s, t) ^ opts_.seed);
  // First ring point clockwise from h; wrap to the smallest point.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const std::pair<std::uint64_t, int>& p, std::uint64_t key) {
        return p.first < key;
      });
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

int ShardRouter::successor(int shard, int step) const {
  PEEK_DCHECK(shard >= 0 && shard < opts_.shards);
  const int pos = order_pos_[static_cast<size_t>(shard)];
  const int next = (pos + step) % opts_.shards;
  return ring_order_[static_cast<size_t>(next)];
}

}  // namespace peek::shard
