// Consistent-hash query router over the 1-D row partition (DESIGN.md §12).
//
// Routing key: the (source block, target block) pair under
// dist::partition_points — the same contiguous vertex-range layout the
// distributed tier uses (§6.2) — so queries whose endpoints fall in the same
// blocks land on the same shard and hit that shard's tree and snapshot
// caches. The block count (RouterOptions::blocks) is deliberately
// independent of the shard count: the key space must stay fixed when shards
// are added or removed, or the consistent-hash stability below evaporates.
// With blocks finer than shards, one shard owns many (sblock, tblock)
// cells; every query for a given source block routes through a small, fixed
// set of shards, which is what makes the per-shard forward-tree cache
// effective under Zipf-skewed traffic.
//
// The key is placed on a seeded vnode ring (splitmix64 finalizer,
// RouterOptions::vnodes points per shard): a key is served by the first ring
// point clockwise from its hash. Adding or removing one shard therefore
// remaps only the keys whose successor point changed — about 1/S of them —
// instead of rehashing the world (tests/test_shard.cpp RouterConsistency).
//
// Determinism contract: the ring depends only on (n, shards, vnodes, seed) —
// never on addresses, wall-clock time, or map iteration order — so the same
// (s, t) routes to the same shard in every run of every process
// (tests/test_shard.cpp RouterDeterminism).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/types.hpp"

namespace peek::shard {

struct RouterOptions {
  /// Number of shards on the ring (>= 1).
  int shards = 4;
  /// Ring points per shard. More vnodes = smoother key balance at the cost
  /// of a larger (still tiny) sorted ring.
  int vnodes = 64;
  /// Locality granularity: the vertex space is cut into this many contiguous
  /// blocks via dist::partition_points. Fixed per deployment — NOT a
  /// function of the shard count, so resizing the fleet keeps the key space
  /// (and thus ~(S-1)/S of the placement) intact.
  int blocks = 64;
  /// Hash seed shared by every router of one fleet. Changing it reshuffles
  /// the whole placement; keep it fixed across restarts for cache affinity.
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
};

/// Deterministic (source, target) -> shard placement. Immutable after
/// construction; safe to share across threads by const reference.
class ShardRouter {
 public:
  /// Builds the ring for a graph of `n` vertices. Throws
  /// std::invalid_argument when opts.shards, opts.vnodes, or opts.blocks is
  /// < 1 — a silently clamped ring would route differently than configured.
  explicit ShardRouter(vid_t n, const RouterOptions& opts = {});

  int shards() const { return opts_.shards; }
  const RouterOptions& options() const { return opts_; }

  /// Home shard of (s, t). Pure function of (key, ring).
  int route(vid_t s, vid_t t) const;

  /// The routing key: source and target block ids packed into one word.
  /// Exposed so tests can assert block-level co-routing.
  std::uint64_t locality_key(vid_t s, vid_t t) const;

  /// 1-D block id of a vertex (dist::owner_of over the cut points).
  int block_of(vid_t v) const;

  /// The `step`-th distinct shard after `shard` in ring order; step 0 is
  /// `shard` itself, step 1 its hedge/failover neighbour. Steps wrap, so any
  /// step < shards() reaches a distinct shard.
  int successor(int shard, int step) const;

  /// The block cut points backing block_of (blocks + 1 entries; shared
  /// layout with the dist tier).
  const std::vector<vid_t>& points() const { return points_; }

 private:
  RouterOptions opts_;
  std::vector<vid_t> points_;
  /// Sorted (hash, shard) ring points; route() binary-searches it.
  std::vector<std::pair<std::uint64_t, int>> ring_;
  /// Shards ordered by their first ring appearance, and its inverse —
  /// successor() walks this fixed permutation.
  std::vector<int> ring_order_;
  std::vector<int> order_pos_;
};

}  // namespace peek::shard
