#include "shard/health.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace peek::shard {

const char* to_string(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half_open";
  }
  return "unknown";
}

ReplicaBreaker::ReplicaBreaker(const HealthOptions& opts) : opts_(opts) {
  if (opts_.alpha <= 0 || opts_.alpha > 1) opts_.alpha = 0.25;
  if (opts_.min_samples < 1) opts_.min_samples = 1;
  if (opts_.probe_budget < 1) opts_.probe_budget = 1;
}

void ReplicaBreaker::open_locked() {
  state_ = BreakerState::kOpen;
  open_until_ = std::chrono::steady_clock::now() + opts_.cooldown;
  probes_inflight_ = 0;
}

ReplicaBreaker::Admission ReplicaBreaker::admit() {
  check::MutexLock lock(mu_);
  if (forced_ || quarantined_) return Admission::kReject;
  if (state_ == BreakerState::kClosed) return Admission::kAdmit;
  if (state_ == BreakerState::kOpen) {
    if (std::chrono::steady_clock::now() < open_until_)
      return Admission::kReject;
    // Cooldown elapsed: this admit() itself performs the open -> half-open
    // transition, so probing is driven by traffic arrival (no timer thread).
    state_ = BreakerState::kHalfOpen;
    probes_inflight_ = 0;
    PEEK_COUNT_INC("shard.breaker.half_open");
  }
  if (probes_inflight_ >= opts_.probe_budget) return Admission::kReject;
  ++probes_inflight_;
  PEEK_COUNT_INC("shard.breaker.probes");
  return Admission::kProbe;
}

void ReplicaBreaker::record(const HealthSignal& sig) {
  check::MutexLock lock(mu_);
  double sample = (sig.error || sig.timeout) ? 0.0 : (sig.ok ? 1.0 : 0.0);
  if (sample > 0 && opts_.queue_age_ref_s > 0 && sig.queue_age_s > 0) {
    // Queue-age attenuation: a backed-up replica is degrading even when its
    // answers are eventually correct.
    sample *= opts_.queue_age_ref_s / (opts_.queue_age_ref_s + sig.queue_age_s);
  }
  health_ = opts_.alpha * sample + (1.0 - opts_.alpha) * health_;
  ++samples_;
  if (state_ == BreakerState::kClosed && !forced_ && !quarantined_ &&
      samples_ >= opts_.min_samples && health_ < opts_.trip_threshold) {
    open_locked();
    PEEK_COUNT_INC("shard.breaker.open");
  }
}

void ReplicaBreaker::probe_done(ProbeOutcome outcome) {
  check::MutexLock lock(mu_);
  if (probes_inflight_ > 0) --probes_inflight_;
  if (state_ != BreakerState::kHalfOpen || forced_ || quarantined_) return;
  switch (outcome) {
    case ProbeOutcome::kSuccess:
      state_ = BreakerState::kClosed;
      health_ = 1.0;
      samples_ = 0;  // re-arm min_samples: one bad post-recovery query must
                     // not instantly re-trip
      PEEK_COUNT_INC("shard.breaker.close");
      break;
    case ProbeOutcome::kFailure:
      open_locked();
      PEEK_COUNT_INC("shard.breaker.reopen");
      break;
    case ProbeOutcome::kAbandoned:
      break;  // slot already returned above; no evidence either way
  }
}

void ReplicaBreaker::force_open() {
  check::MutexLock lock(mu_);
  forced_ = true;
  if (state_ != BreakerState::kOpen) {
    open_locked();
    PEEK_COUNT_INC("shard.breaker.open");
  }
}

void ReplicaBreaker::force_close() {
  check::MutexLock lock(mu_);
  forced_ = false;
  quarantined_ = false;
  if (state_ != BreakerState::kClosed) {
    state_ = BreakerState::kClosed;
    PEEK_COUNT_INC("shard.breaker.close");
  }
  health_ = 1.0;
  samples_ = 0;
  probes_inflight_ = 0;
}

bool ReplicaBreaker::forced_open() const {
  check::MutexLock lock(mu_);
  return forced_;
}

void ReplicaBreaker::quarantine() {
  check::MutexLock lock(mu_);
  quarantined_ = true;
  if (state_ != BreakerState::kOpen) {
    open_locked();
    PEEK_COUNT_INC("shard.breaker.open");
  }
}

void ReplicaBreaker::release_quarantine() {
  check::MutexLock lock(mu_);
  quarantined_ = false;
  if (!forced_ && state_ == BreakerState::kOpen) {
    // Healed: make the next admit() eligible to half-open immediately
    // instead of waiting out whatever cooldown remains.
    open_until_ = std::chrono::steady_clock::now();
  }
}

bool ReplicaBreaker::quarantined() const {
  check::MutexLock lock(mu_);
  return quarantined_;
}

BreakerState ReplicaBreaker::state() const {
  check::MutexLock lock(mu_);
  return state_;
}

double ReplicaBreaker::health() const {
  check::MutexLock lock(mu_);
  return health_;
}

}  // namespace peek::shard
