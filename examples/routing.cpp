// Routing & spectrum assignment on an optical transport network (§1,
// "Routing"): find the K shortest candidate routes, then walk them in
// increasing length and assign the first one with a free wavelength on every
// hop — the KSP-based RSA scheme of Wan et al. the paper cites.
//
// The network is a synthetic continental backbone: a jittered grid of cities
// with a few long-haul express links; per-link wavelength occupancy is
// simulated with a deterministic RNG.
#include <cstdio>
#include <random>
#include <unordered_map>
#include <unordered_set>

#include "core/peek.hpp"
#include "graph/builder.hpp"

namespace {

using namespace peek;

constexpr int kRows = 12, kCols = 16;     // 192 nodes
constexpr int kWavelengths = 16;          // channels per fibre

vid_t node(int r, int c) { return r * kCols + c; }

std::uint64_t link_key(vid_t u, vid_t v) {
  return (static_cast<std::uint64_t>(u) << 32) | static_cast<std::uint32_t>(v);
}

}  // namespace

int main() {
  std::mt19937_64 rng(2024);
  std::uniform_real_distribution<double> jitter(0.8, 1.2);

  graph::Builder b(kRows * kCols);
  std::vector<std::pair<vid_t, vid_t>> links;
  auto add_link = [&](vid_t u, vid_t v, double km) {
    b.add_undirected_edge(u, v, km);
    links.push_back({u, v});
    links.push_back({v, u});
  };
  // Mesh fibres between neighbouring cities (~100 km, jittered)...
  for (int r = 0; r < kRows; ++r) {
    for (int c = 0; c < kCols; ++c) {
      if (c + 1 < kCols) add_link(node(r, c), node(r, c + 1), 100 * jitter(rng));
      if (r + 1 < kRows) add_link(node(r, c), node(r + 1, c), 100 * jitter(rng));
    }
  }
  // ...plus a handful of long-haul express links (cheaper per km).
  for (int i = 0; i < 12; ++i) {
    std::uniform_int_distribution<int> rr(0, kRows - 1), cc(0, kCols - 1);
    const vid_t u = node(rr(rng), cc(rng)), v = node(rr(rng), cc(rng));
    if (u != v) add_link(u, v, 180 * jitter(rng));
  }
  auto g = b.build();

  // Simulated spectrum occupancy: per (link, wavelength) busy bit.
  std::unordered_map<std::uint64_t, std::uint32_t> busy;  // bitmask per link
  std::uniform_int_distribution<int> load(0, 99);
  for (const auto& [u, v] : links) {
    std::uint32_t mask = 0;
    for (int w = 0; w < kWavelengths; ++w)
      if (load(rng) < 10) mask |= 1u << w;  // 10% channel utilisation
    busy[link_key(u, v)] = mask;
  }

  const vid_t src = node(0, 0), dst = node(kRows - 1, kCols - 1);
  std::printf("optical backbone: %d nodes, %lld fibres, %d wavelengths\n",
              g.num_vertices(), static_cast<long long>(g.num_edges()),
              kWavelengths);

  // Step 1 of the RSA algorithm: K candidate routes, shortest first.
  core::PeekOptions opts;
  opts.k = 16;
  auto r = core::peek_ksp(g, src, dst, opts);
  std::printf("PeeK produced %zu candidate routes (pruned graph: %d of %d "
              "nodes)\n\n",
              r.ksp.paths.size(), r.kept_vertices, g.num_vertices());

  // Step 2: first candidate with one wavelength free on EVERY hop wins
  // (wavelength-continuity constraint).
  for (size_t i = 0; i < r.ksp.paths.size(); ++i) {
    const auto& p = r.ksp.paths[i];
    std::uint32_t free_mask = (1u << kWavelengths) - 1;
    for (size_t h = 0; h + 1 < p.verts.size(); ++h)
      free_mask &= ~busy[link_key(p.verts[h], p.verts[h + 1])];
    std::printf("route %2zu: %5.1f km, %zu hops, free channels: %d  %s\n",
                i + 1, p.dist, p.hops(),
                __builtin_popcount(free_mask),
                free_mask ? "<- ASSIGNED" : "(blocked)");
    if (free_mask) {
      std::printf("\nassigned wavelength %d on route: %s\n",
                  __builtin_ctz(free_mask), sssp::to_string(p).c_str());
      return 0;
    }
  }
  std::printf("\nno route with a continuous free wavelength — increase K\n");
  return 0;
}
