// GQL / SQL:2023 SHORTEST k GROUP (§1, "Graph database"): the second KSP
// flavour standardised for property-graph query languages. Groups paths by
// equal length and returns the k shortest COMPLETE groups — on unit-weight
// graphs this is "all shortest routes, all second-shortest routes, ...".
//
// Scenario: a transit network (unit-weight hops); the query engine answers
//   MATCH p = ANY SHORTEST 3 GROUP (a)-[*]->(b) RETURN p
#include <cstdio>

#include "core/shortest_k_group.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace peek;

  // Transit-style small world: mostly local connections, some express hops.
  auto g = graph::small_world(2000, 5, 0.08, {graph::WeightKind::kUnit, 1}, 9);
  const vid_t a = 3, bq = 1200;

  std::printf("property graph: %d nodes, %lld relationships (unit hops)\n",
              g.num_vertices(), static_cast<long long>(g.num_edges()));
  std::printf("query: SHORTEST 3 GROUP paths (n%d) -> (n%d)\n\n", a, bq);

  core::PeekOptions opts;
  opts.parallel = true;
  auto r = core::shortest_k_groups(g, a, bq, 3, opts);

  if (r.groups.empty()) {
    std::printf("no path\n");
    return 0;
  }
  std::printf("%zu group(s), complete=%s, computed from %d ranked paths:\n\n",
              r.groups.size(), r.complete ? "yes" : "no",
              r.ksp_paths_computed);
  for (size_t i = 0; i < r.groups.size(); ++i) {
    const auto& grp = r.groups[i];
    std::printf("group %zu: length %.0f hops, %zu path(s)\n", i + 1, grp.dist,
                grp.paths.size());
    const size_t show = std::min<size_t>(grp.paths.size(), 3);
    for (size_t j = 0; j < show; ++j)
      std::printf("    %s\n", sssp::to_string(grp.paths[j]).c_str());
    if (grp.paths.size() > show)
      std::printf("    ... and %zu more\n", grp.paths.size() - show);
  }
  return 0;
}
