// Gene-interaction pathway inference (§1, "Biology analysis"): in a gene
// interaction network, the K shortest paths from a causal gene to a target
// gene are candidate regulatory pathways (Shih & Parthasarathy 2012).
//
// The network is a synthetic scale-free interactome (preferential
// attachment, like real PPI/gene networks); edge weight = -log(confidence),
// so the SHORTEST path is the MOST CONFIDENT regulatory chain.
#include <cmath>
#include <cstdio>
#include <random>

#include "core/diverse.hpp"
#include "core/peek.hpp"
#include "core/shortest_k_group.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace peek;
  std::mt19937_64 rng(7);

  // Scale-free topology, then confidence-derived weights.
  auto topo = graph::preferential_attachment(
      3000, 3, {graph::WeightKind::kUnit, 1}, 77);
  std::uniform_real_distribution<double> conf(0.05, 0.98);
  graph::Builder b(topo.num_vertices());
  for (vid_t u = 0; u < topo.num_vertices(); ++u) {
    for (eid_t e = topo.edge_begin(u); e < topo.edge_end(u); ++e) {
      // -log(confidence): multiplying confidences == adding weights.
      b.add_edge(u, topo.edge_target(e), -std::log(conf(rng)));
    }
  }
  auto g = b.build();

  const vid_t causal_gene = 17;   // e.g. the GWAS hit
  const vid_t target_gene = 2412; // the phenotype-associated gene

  std::printf("gene interaction network: %d genes, %lld interactions\n",
              g.num_vertices(), static_cast<long long>(g.num_edges()));

  core::PeekOptions opts;
  opts.k = 12;
  auto r = core::peek_ksp(g, causal_gene, target_gene, opts);
  if (r.ksp.paths.empty()) {
    std::printf("no regulatory pathway connects gene %d to gene %d\n",
                causal_gene, target_gene);
    return 0;
  }

  std::printf("candidate regulatory pathways gene%d -> gene%d "
              "(confidence = exp(-cost)):\n\n",
              causal_gene, target_gene);
  for (size_t i = 0; i < r.ksp.paths.size(); ++i) {
    const auto& p = r.ksp.paths[i];
    std::printf("  %2zu. confidence %.4f via %zu intermediate genes:",
                i + 1, std::exp(-p.dist), p.verts.size() - 2);
    for (vid_t v : p.verts) std::printf(" g%d", v);
    std::printf("\n");
  }

  // Pathways through the same hub often tie in hop count; the GQL-style
  // grouped query reports them by confidence level instead.
  auto groups = core::shortest_k_groups(g, causal_gene, target_gene, 3, opts);
  std::printf("\n%zu distinct confidence levels among the top pathways "
              "(SHORTEST k GROUP view)\n",
              groups.groups.size());

  // Ranked pathways are usually near-copies through the same hub gene; the
  // DIVERSE variant (Lhota & Xie 2016) returns mechanistically distinct
  // alternatives for the wet-lab shortlist.
  core::DiverseOptions dopts;
  dopts.k = 4;
  dopts.max_similarity = 0.4;
  auto diverse = core::diverse_ksp(g, causal_gene, target_gene, dopts);
  std::printf("\n%zu mutually diverse pathways (vertex overlap <= 40%%, "
              "scanned %d ranked paths):\n",
              diverse.paths.size(), diverse.scanned);
  for (const auto& p : diverse.paths) {
    std::printf("  confidence %.4f:", std::exp(-p.dist));
    for (vid_t v : p.verts) std::printf(" g%d", v);
    std::printf("\n");
  }
  return 0;
}
