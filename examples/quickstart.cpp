// Quickstart: build a graph, run PeeK, inspect the result.
//
//   $ ./quickstart
//
// Walks through the three public-API layers: graph construction
// (peek::graph), the one-call PeeK pipeline (peek::core), and the individual
// baseline algorithms (peek::ksp) for comparison.
#include <cstdio>

#include "core/peek.hpp"
#include "graph/generators.hpp"
#include "ksp/yen.hpp"

int main() {
  using namespace peek;

  // 1. A graph. Any positive-weighted digraph works; here a 2^12-vertex
  //    R-MAT with uniform (0,1] weights — Twitter-like degree skew.
  graph::CsrGraph g = graph::rmat(/*scale=*/12, /*edge_factor=*/8);
  std::printf("graph: %d vertices, %lld edges\n", g.num_vertices(),
              static_cast<long long>(g.num_edges()));

  const vid_t source = 1, target = 2000;
  const int k = 8;

  // 2. PeeK: prune -> compact -> KSP, one call.
  core::PeekOptions opts;
  opts.k = k;
  opts.parallel = true;  // Δ-stepping SSSPs + task-parallel deviations
  core::PeekResult r = core::peek_ksp(g, source, target, opts);

  std::printf("\nK upper bound b = %.4f\n", r.upper_bound);
  std::printf("pruning kept %d of %d vertices (%.2f%%), strategy: %s\n",
              r.kept_vertices, g.num_vertices(),
              100.0 * r.kept_vertices / g.num_vertices(),
              compact::to_string(r.strategy_used));
  std::printf("stage times: prune %.4fs, compact %.4fs, ksp %.4fs\n",
              r.prune_seconds, r.compact_seconds, r.ksp_seconds);

  std::printf("\ntop %zu shortest paths:\n", r.ksp.paths.size());
  for (size_t i = 0; i < r.ksp.paths.size(); ++i)
    std::printf("  %2zu. %s\n", i + 1, sssp::to_string(r.ksp.paths[i]).c_str());

  // 3. Sanity: the classical baseline returns the same distances.
  ksp::KspOptions ko;
  ko.k = k;
  auto yen = ksp::yen_ksp(g, source, target, ko);
  bool same = yen.paths.size() == r.ksp.paths.size();
  for (size_t i = 0; same && i < yen.paths.size(); ++i)
    same = std::abs(yen.paths[i].dist - r.ksp.paths[i].dist) < 1e-9;
  std::printf("\nYen agreement: %s (%d SSSP calls vs PeeK's pruned run)\n",
              same ? "OK" : "MISMATCH", yen.stats.sssp_calls);
  return same ? 0 : 1;
}
