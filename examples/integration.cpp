// PeeK as a preprocessor (§1.3, novelty iii): "K upper bound pruning can
// serve as a preprocessing step for existing algorithms." This example runs
// each baseline twice — on the original graph, then on the pruned+compacted
// graph via peek_with_algorithm — and prints the speedup each inherits.
#include <chrono>
#include <cstdio>

#include "core/peek.hpp"
#include "graph/generators.hpp"
#include "ksp/node_classification.hpp"
#include "ksp/pnc.hpp"
#include "ksp/sidetrack.hpp"
#include "ksp/yen.hpp"

namespace {

using namespace peek;

double seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  auto g = graph::rmat(13, 12);
  const vid_t s = 1, t = 4000;
  const int k = 64;
  std::printf("graph: %d vertices, %lld edges; K = %d\n", g.num_vertices(),
              static_cast<long long>(g.num_edges()), k);

  ksp::KspOptions ko;
  ko.k = k;
  core::PeekOptions po;
  po.k = k;

  struct Algo {
    const char* name;
    core::KspAlgorithm run;
  };
  const Algo algos[] = {
      {"Yen", [&](const sssp::BiView& v, vid_t a, vid_t b) {
         return ksp::yen_ksp(v, a, b, ko);
       }},
      {"NC", [&](const sssp::BiView& v, vid_t a, vid_t b) {
         return ksp::nc_ksp(v, a, b, ko);
       }},
      {"SB*", [&](const sssp::BiView& v, vid_t a, vid_t b) {
         ksp::SidetrackOptions so;
         so.base = ko;
         so.resume_trees = true;
         return ksp::sb_ksp(v, a, b, so);
       }},
      {"PNC", [&](const sssp::BiView& v, vid_t a, vid_t b) {
         ksp::PncOptions pn;
         pn.base = ko;
         return ksp::pnc_ksp(v, a, b, pn);
       }},
  };

  std::printf("\n%-6s %12s %14s %9s  %s\n", "algo", "original(s)",
              "peek-boosted(s)", "speedup", "distances agree?");
  for (const auto& algo : algos) {
    ksp::KspResult plain;
    const double t_plain = seconds([&] {
      plain = algo.run(sssp::BiView::of(g), s, t);
    });
    core::PeekResult boosted;
    const double t_boost =
        seconds([&] { boosted = core::peek_with_algorithm(g, s, t, po, algo.run); });
    bool same = plain.paths.size() == boosted.ksp.paths.size();
    for (size_t i = 0; same && i < plain.paths.size(); ++i)
      same = std::abs(plain.paths[i].dist - boosted.ksp.paths[i].dist) < 1e-9;
    std::printf("%-6s %12.4f %14.4f %8.1fx  %s\n", algo.name, t_plain, t_boost,
                t_plain / t_boost, same ? "yes" : "NO");
  }
  std::printf("\n(the boosted column includes the pruning + compaction time)\n");
  return 0;
}
