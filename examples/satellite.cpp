// Low-earth-orbit satellite routing (§1 cites KSP routing for LSNs such as
// Starlink and Kuiper): inter-satellite laser links form a torus grid
// (orbital planes x satellites per plane); ground stations uplink to the
// satellites overhead. Every optical hop adds processing latency, so routes
// carry a HOP BUDGET on top of the distance metric — the hop-limited KSP
// variant.
#include <cmath>
#include <cstdio>
#include <random>

#include "graph/builder.hpp"
#include "ksp/hop_limited.hpp"
#include "ksp/yen.hpp"

namespace {

using namespace peek;

constexpr int kPlanes = 12;
constexpr int kPerPlane = 20;
constexpr int kSats = kPlanes * kPerPlane;

vid_t sat(int plane, int idx) { return plane * kPerPlane + idx; }

}  // namespace

int main() {
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> jitter(0.9, 1.1);

  // Torus of inter-satellite links: intra-plane ring + cross-plane links.
  graph::Builder b(kSats + 2);  // +2 ground stations
  for (int p = 0; p < kPlanes; ++p) {
    for (int i = 0; i < kPerPlane; ++i) {
      b.add_undirected_edge(sat(p, i), sat(p, (i + 1) % kPerPlane),
                            2.0 * jitter(rng));  // ~2 ms intra-plane
      b.add_undirected_edge(sat(p, i), sat((p + 1) % kPlanes, i),
                            3.0 * jitter(rng));  // ~3 ms cross-plane
    }
  }
  // A few express laser links skip three planes: fewer hops, more latency
  // per hop — they only matter under a tight hop budget.
  for (int p = 0; p < kPlanes; ++p) {
    b.add_undirected_edge(sat(p, 0), sat((p + 3) % kPlanes, 0),
                          11.0 * jitter(rng));
    b.add_undirected_edge(sat(p, kPerPlane / 2), sat((p + 3) % kPlanes, kPerPlane / 2),
                          11.0 * jitter(rng));
  }
  // Ground stations on opposite sides of the constellation.
  const vid_t london = kSats, sydney = kSats + 1;
  for (int i = 0; i < 3; ++i) {
    b.add_undirected_edge(london, sat(0, i), 5.0 * jitter(rng));
    b.add_undirected_edge(sydney, sat(kPlanes / 2, kPerPlane / 2 + i),
                          5.0 * jitter(rng));
  }
  auto g = b.build();

  std::printf("constellation: %d satellites in %d planes, %lld laser links\n",
              kSats, kPlanes, static_cast<long long>(g.num_edges()) );

  // Unconstrained: cheapest-latency routes.
  ksp::KspOptions ko;
  ko.k = 4;
  auto plain = ksp::yen_ksp(g, london, sydney, ko);
  std::printf("\nunconstrained K=4 routes (latency ms / optical hops):\n");
  for (const auto& p : plain.paths)
    std::printf("  %6.2f ms, %2zu hops\n", p.dist, p.hops());

  // Each optical hop costs a regeneration slot; ops caps the hop count.
  for (int budget : {20, 14, 11}) {
    auto routed = ksp::hop_limited_ksp(g, london, sydney, 4, budget);
    std::printf("\nhop budget %d: %zu feasible routes\n", budget,
                routed.paths.size());
    for (const auto& p : routed.paths)
      std::printf("  %6.2f ms, %2zu hops\n", p.dist, p.hops());
  }
  return 0;
}
