// Serving benchmark: repeated (s, t, K) queries through serve::QueryEngine
// against the same stream answered by fresh, uncached peek_ksp calls. Two
// sweeps on the Twitter-like graph:
//   1. reuse fraction — each query repeats an already-issued key with
//      probability f (fresh pair otherwise); the acceptance bar is >= 2x
//      median-latency improvement at f = 0.5.
//   2. Zipf skew — queries drawn Zipfian over a fixed pool, the shape of a
//      production mix where a few hot pairs dominate.
// Pass --metrics-json PATH to dump serve.cache.* counters alongside.
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <random>

#include "bench_common.hpp"
#include "core/peek.hpp"
#include "serve/query_engine.hpp"

namespace {
using namespace peek;
using namespace peek::bench;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v ? std::atoi(v) : fallback;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

/// Query stream where each query repeats an earlier key with probability
/// `reuse` (uniformly among issued keys), else takes the next fresh pair.
std::vector<std::pair<vid_t, vid_t>> reuse_stream(
    const std::vector<std::pair<vid_t, vid_t>>& fresh, int n, double reuse,
    std::uint64_t seed) {
  std::vector<std::pair<vid_t, vid_t>> stream;
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  size_t next = 0;
  for (int q = 0; q < n; ++q) {
    if (!stream.empty() && (coin(rng) < reuse || next >= fresh.size())) {
      std::uniform_int_distribution<size_t> pick(0, stream.size() - 1);
      stream.push_back(stream[pick(rng)]);
    } else {
      stream.push_back(fresh[next++]);
    }
  }
  return stream;
}

/// Zipfian stream over a fixed pool: P(rank i) proportional to (i+1)^-theta.
std::vector<std::pair<vid_t, vid_t>> zipf_stream(
    const std::vector<std::pair<vid_t, vid_t>>& pool, int n, double theta,
    std::uint64_t seed) {
  std::vector<double> cdf(pool.size());
  double acc = 0;
  for (size_t i = 0; i < pool.size(); ++i) {
    acc += std::pow(static_cast<double>(i + 1), -theta);
    cdf[i] = acc;
  }
  std::vector<std::pair<vid_t, vid_t>> stream;
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.0, acc);
  for (int q = 0; q < n; ++q) {
    const size_t r = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), uni(rng)) - cdf.begin());
    stream.push_back(pool[std::min(r, pool.size() - 1)]);
  }
  return stream;
}

struct RunStats {
  double served_med = 0, uncached_med = 0;
  int hits = 0, extensions = 0;
};

RunStats run_stream(const CsrGraph& g,
                    const std::vector<std::pair<vid_t, vid_t>>& stream,
                    int k) {
  RunStats rs;
  serve::QueryEngine engine(g);
  std::vector<double> served, uncached;
  for (const auto& [s, t] : stream) {
    auto r = engine.query(s, t, k);
    served.push_back(r.seconds);
    rs.hits += r.snapshot_hit ? 1 : 0;
    rs.extensions += r.extended ? 1 : 0;
  }
  core::PeekOptions po;
  po.k = k;
  for (const auto& [s, t] : stream) {
    uncached.push_back(time_seconds([&] { core::peek_ksp(g, s, t, po); }));
  }
  rs.served_med = median(served);
  rs.uncached_med = median(uncached);
  return rs;
}
}  // namespace

int main(int argc, char** argv) {
  enable_metrics_dump(argc, argv);
  auto g = twitter_like(env_int("PEEK_BENCH_SCALE", 13));
  const int n = env_int("PEEK_BENCH_QUERIES", 48);
  const int k = env_int("PEEK_BENCH_K", 8);
  const auto fresh = sample_pairs(g, n, 7);
  if (static_cast<int>(fresh.size()) < n) return 0;

  print_header("Serving: artifact cache vs uncached PeeK",
               "serving layer — median query latency by key-reuse fraction "
               "and Zipf skew");
  print_row({"mix", "hit%", "extends", "served_med", "uncached", "speedup"});

  for (double f : {0.0, 0.25, 0.5, 0.75, 0.9}) {
    const auto stream = reuse_stream(fresh, n, f, 11);
    const auto rs = run_stream(g, stream, k);
    print_row({"reuse=" + fmt(f, 2), fmt(100.0 * rs.hits / n, 1),
               fmt(rs.extensions, 0), fmt(rs.served_med, 6),
               fmt(rs.uncached_med, 6),
               fmt(rs.uncached_med / std::max(rs.served_med, 1e-9), 1) + "x"});
  }

  const auto pool = std::vector<std::pair<vid_t, vid_t>>(
      fresh.begin(), fresh.begin() + std::min<size_t>(fresh.size(), 12));
  for (double theta : {0.5, 0.99, 1.5}) {
    const auto stream = zipf_stream(pool, n, theta, 13);
    const auto rs = run_stream(g, stream, k);
    print_row({"zipf=" + fmt(theta, 2), fmt(100.0 * rs.hits / n, 1),
               fmt(rs.extensions, 0), fmt(rs.served_med, 6),
               fmt(rs.uncached_med, 6),
               fmt(rs.uncached_med / std::max(rs.served_med, 1e-9), 1) + "x"});
  }
  return 0;
}
