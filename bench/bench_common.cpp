#include "bench_common.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <sstream>

#include "graph/generators.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace peek::bench {

namespace {

graph::WeightOptions random_w(std::uint64_t seed) {
  return {graph::WeightKind::kUniform01, seed};
}
graph::WeightOptions unit_w() { return {graph::WeightKind::kUnit, 0}; }

}  // namespace

std::vector<BenchGraph> benchmark_suite(int scale_shift) {
  const int s = scale_shift;
  std::vector<BenchGraph> graphs;
  // R21 / R21U: synthetic R-MAT (paper: scale 21, ef 16).
  graphs.push_back({"R21", "rmat", graph::rmat(12 + s, 8, random_w(11), 101)});
  graphs.push_back({"R21U", "rmat", graph::rmat(12 + s, 8, unit_w(), 101)});
  // LJ / LJU: social network -> preferential attachment.
  const vid_t lj_n = s >= 0 ? (vid_t{5000} << s) : (vid_t{5000} >> -s);
  graphs.push_back(
      {"LJ", "pref-attach",
       graph::preferential_attachment(lj_n, 4, random_w(13), 103)});
  graphs.push_back({"LJU", "pref-attach",
                    graph::preferential_attachment(lj_n, 4, unit_w(), 103)});
  // WL / WLU: article network -> small world.
  const vid_t wl_n = s >= 0 ? (vid_t{20000} << s) : (vid_t{20000} >> -s);
  graphs.push_back(
      {"WL", "small-world", graph::small_world(wl_n, 8, 0.05, random_w(17), 107)});
  graphs.push_back(
      {"WLU", "small-world", graph::small_world(wl_n, 8, 0.05, unit_w(), 107)});
  // GW: web crawl -> deeper, more clustered R-MAT.
  graphs.push_back({"GW", "rmat-web",
                    graph::rmat(13 + s, 12, random_w(19), 109, 0.45, 0.22, 0.22)});
  // GT: twitter -> skewed R-MAT.
  graphs.push_back({"GT", "rmat-twitter", graph::rmat(13 + s, 12, random_w(23), 113)});
  return graphs;
}

CsrGraph twitter_like(int scale) {
  return graph::rmat(scale, 12, random_w(23), 113);
}

std::vector<std::pair<vid_t, vid_t>> sample_pairs(const CsrGraph& g, int count,
                                                  std::uint64_t seed,
                                                  int min_hops) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<vid_t> pick(0, g.num_vertices() - 1);
  std::vector<std::pair<vid_t, vid_t>> pairs;
  int attempts = 0;
  while (static_cast<int>(pairs.size()) < count && attempts < count * 200) {
    attempts++;
    const vid_t s = pick(rng);
    // BFS recording hop counts; collect vertices at >= min_hops.
    std::vector<int> hops(static_cast<size_t>(g.num_vertices()), -1);
    std::deque<vid_t> queue{s};
    hops[s] = 0;
    std::vector<vid_t> far;
    while (!queue.empty()) {
      const vid_t u = queue.front();
      queue.pop_front();
      for (vid_t v : g.neighbors(u)) {
        if (hops[v] != -1) continue;
        hops[v] = hops[u] + 1;
        if (hops[v] >= min_hops) far.push_back(v);
        queue.push_back(v);
      }
    }
    if (far.empty()) continue;
    std::uniform_int_distribution<size_t> pick_t(0, far.size() - 1);
    pairs.push_back({s, far[pick_t(rng)]});
  }
  return pairs;
}

namespace {

std::string g_metrics_path;  // set once in enable_metrics_dump

void dump_metrics() {
  if (g_metrics_path.empty()) return;
  if (!obs::write_metrics_json(g_metrics_path,
                               obs::MetricsRegistry::global().snapshot())) {
    std::fprintf(stderr, "warning: failed to write metrics json to %s\n",
                 g_metrics_path.c_str());
  }
}

}  // namespace

void enable_metrics_dump(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-json") == 0) {
      g_metrics_path = argv[i + 1];
      break;
    }
  }
  if (g_metrics_path.empty()) {
    const char* env = std::getenv("PEEK_METRICS");
    if (env && *env) g_metrics_path = env;
  }
  if (!g_metrics_path.empty()) std::atexit(dump_metrics);
}

void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n==== %s ====\n# paper: %s\n", title.c_str(), paper_ref.c_str());
}

void print_row(const std::vector<std::string>& cells, int width) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
  std::fflush(stdout);
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

}  // namespace peek::bench
