// Figure 8: ablation of the two techniques. Base = OptYen on the original
// graph; +Pruning = K upper bound pruning with the status-array (no real
// compaction); +Pruning+Compaction = full adaptive PeeK. Reported as speedup
// over Base for K = 8 and 128.
#include <cstdlib>

#include "bench_common.hpp"
#include "core/peek.hpp"

namespace {
using namespace peek;
using namespace peek::bench;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v ? std::atoi(v) : fallback;
}
}  // namespace

int main(int argc, char** argv) {
  enable_metrics_dump(argc, argv);
  const int pairs = env_int("PEEK_BENCH_PAIRS", 1);
  auto suite = benchmark_suite(env_int("PEEK_BENCH_SHIFT", 0));
  print_header("Figure 8: technique ablation (speedup over Base)",
               "Figure 8 — Base vs +Pruning vs +Pruning+Compaction, K=8/128");
  print_row({"graph", "K", "base(s)", "+prune", "+compact", "spd_p", "spd_pc"});

  for (int k : {8, 128}) {
    double avg_p = 0, avg_pc = 0;
    int counted = 0;
    for (const auto& bg : suite) {
      auto pts = sample_pairs(bg.g, pairs, 42);
      if (pts.empty()) continue;
      double t_base = 0, t_prune = 0, t_full = 0;
      for (auto [s, t] : pts) {
        core::PeekOptions base;
        base.k = k;
        base.parallel = true;
        base.prune = false;
        t_base += time_seconds([&] { core::peek_ksp(bg.g, s, t, base); });

        core::PeekOptions pruned = base;
        pruned.prune = true;
        pruned.compaction = core::PeekOptions::Compaction::kStatusArray;
        t_prune += time_seconds([&] { core::peek_ksp(bg.g, s, t, pruned); });

        core::PeekOptions full = base;
        full.prune = true;
        full.compaction = core::PeekOptions::Compaction::kAdaptive;
        t_full += time_seconds([&] { core::peek_ksp(bg.g, s, t, full); });
      }
      const double sp = t_base / t_prune;
      const double spc = t_base / t_full;
      avg_p += sp;
      avg_pc += spc;
      counted++;
      print_row({bg.name, std::to_string(k), fmt(t_base / pts.size()),
                 fmt(t_prune / pts.size()), fmt(t_full / pts.size()),
                 fmt(sp, 1) + "x", fmt(spc, 1) + "x"});
    }
    if (counted)
      print_row({"AVG", std::to_string(k), "", "", "",
                 fmt(avg_p / counted, 1) + "x", fmt(avg_pc / counted, 1) + "x"});
  }
  return 0;
}
