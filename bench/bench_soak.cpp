// Chaos soak gate (DESIGN.md §14): a multi-threaded Zipf query storm through
// shard::ShardFleet while the deterministic fault::Injector fires replica
// stalls (shard.replica.stall), dead-process bounces (shard.replica.down) and
// answer corruption (shard.replica.corrupt). The harness asserts the fleet's
// whole self-healing contract end to end:
//
//   1. Continuous availability — every storm query comes back kOk (degraded
//      prefixes allowed, typed failures not), and the process never aborts.
//   2. Bit-identity — every non-degraded kOk answer equals core::peek_ksp
//      exactly; degraded answers are exact prefixes of it.
//   3. The healing cycle actually runs — at least one injected corruption is
//      caught by the §14 certificate and the victim replica demonstrably
//      traverses quarantine -> cache drop -> warm restart -> half-open probe
//      -> closed, without operator intervention: the final sweep requires
//      every breaker back in kClosed.
//
// With --storm-mutations the harness instead gates the live-mutation
// pipeline (DESIGN.md §15): a mutator thread races randomized UpdateBatches
// through a live fleet while the Zipf storm queries it and the injector
// stalls and crashes cone repairs (dyn.repair.{stall,crash}). Every answer
// must be kOk; every non-stale answer must be bit-identical to
// core::peek_ksp on the graph of its stamped effective epoch; every stale
// answer must be bit-identical to the truth of its base epoch AND keep each
// rank within its weight_bound of the serve-time-epoch truth; a crash must
// fire and fall back to full recompute; and once chaos stops and repairs
// drain, every answer must be fresh at the fence epoch with empty stale
// side tables.
//
// Unlike bench_shard this is a gate, not a measurement: it prints a summary
// line and writes a JSON report (--out PATH) that CI uploads on failure.
// Flags: --seed N (injector seed, default 42), --seconds S (storm time box,
// default 20; the storm also runs to a minimum query count so fast machines
// still accumulate enough injector hits), --storm-mutations, --out PATH.
// Env knobs: PEEK_SOAK_THREADS (8), PEEK_SOAK_POOL (24),
// PEEK_SOAK_MIN_QUERIES (4000), PEEK_SOAK_RATE (permille, 20),
// PEEK_SOAK_MAX_FIRES (per site, 6), PEEK_SOAK_MIN_BATCHES (12, mutation
// storm only).
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/peek.hpp"
#include "dyn/dynamic_graph.hpp"
#include "dyn/update_batch.hpp"
#include "obs/metrics.hpp"
#include "shard/fleet.hpp"

namespace {
using namespace peek;
using Clock = std::chrono::steady_clock;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v ? std::atoi(v) : fallback;
}

/// Zipfian CDF sampler over a fixed pool (same shape as bench_shard's storm).
std::vector<size_t> zipf_ranks(size_t pool, int n, double theta,
                               std::uint64_t seed) {
  std::vector<double> cdf(pool);
  double acc = 0;
  for (size_t i = 0; i < pool; ++i) {
    acc += std::pow(static_cast<double>(i + 1), -theta);
    cdf[i] = acc;
  }
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.0, acc);
  std::vector<size_t> ranks;
  ranks.reserve(static_cast<size_t>(n));
  for (int q = 0; q < n; ++q) {
    const size_t r = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), uni(rng)) - cdf.begin());
    ranks.push_back(std::min(r, pool - 1));
  }
  return ranks;
}

/// Tallies one storm thread accumulates locally and merges at join.
struct Tally {
  long total = 0;
  long ok = 0;        // kOk, non-degraded, bit-identical
  long degraded = 0;  // kOk degraded exact prefix
  long non_ok = 0;    // any typed failure (availability violation)
  long mismatch = 0;  // answer diverged from core::peek_ksp
  long hedged = 0;

  void merge(const Tally& o) {
    total += o.total;
    ok += o.ok;
    degraded += o.degraded;
    non_ok += o.non_ok;
    mismatch += o.mismatch;
    hedged += o.hedged;
  }
};

std::int64_t counter(const char* name) {
  if (!obs::kEnabled) return -1;  // metrics compiled out: cannot observe
  return obs::MetricsRegistry::global().counter(name).value();
}

/// True when `got` equals `want` (exact == full match required) or, in
/// degraded mode, is an exact nonempty prefix of it.
bool answer_matches(const std::vector<sssp::Path>& got,
                    const std::vector<sssp::Path>& want, bool degraded) {
  if (degraded ? got.size() > want.size() : got.size() != want.size())
    return false;
  for (size_t i = 0; i < got.size(); ++i) {
    if (got[i].verts != want[i].verts || got[i].dist != want[i].dist)
      return false;
  }
  return true;
}

// -- Mutation storm (DESIGN.md §15) ------------------------------------------

struct MutTally {
  long total = 0;
  long ok = 0;         // kOk, non-stale, bit-identical to its epoch truth
  long stale = 0;      // bounded-stale answer, base identity + bound held
  long non_ok = 0;     // any typed failure (availability violation)
  long mismatch = 0;   // non-stale answer diverged from its epoch truth
  long stale_bad = 0;  // stale answer broke base identity or its bound

  void merge(const MutTally& o) {
    total += o.total;
    ok += o.ok;
    stale += o.stale;
    non_ok += o.non_ok;
    mismatch += o.mismatch;
    stale_bad += o.stale_bad;
  }
};

int run_mutation_storm(std::uint64_t seed, int seconds,
                       const std::string& out_path) {
  const int threads = env_int("PEEK_SOAK_THREADS", 8);
  const int pool_size = env_int("PEEK_SOAK_POOL", 24);
  const int min_queries = env_int("PEEK_SOAK_MIN_QUERIES", 4000);
  const int rate = env_int("PEEK_SOAK_RATE", 20);
  const int max_fires = env_int("PEEK_SOAK_MAX_FIRES", 6);
  const int min_batches = env_int("PEEK_SOAK_MIN_BATCHES", 12);
  const int k = 8;

  const auto g0 = bench::twitter_like(11);
  const auto pool = bench::sample_pairs(g0, pool_size, /*seed=*/7);

  // truths[e] = core::peek_ksp per pool pair on the epoch-e graph. A deque:
  // push_back never moves existing elements, so storm threads can hold
  // references across the lock. The mutator publishes truths[e] BEFORE the
  // fence advances to e, so any answer stamped epoch e is always checkable.
  std::deque<std::vector<std::vector<sssp::Path>>> truths;
  std::mutex truth_mu;
  auto truth_for = [&](const graph::CsrGraph& g) {
    std::vector<std::vector<sssp::Path>> tr;
    tr.reserve(pool.size());
    for (const auto& [s, t] : pool) {
      core::PeekOptions po;
      po.k = k;
      tr.push_back(core::peek_ksp(g, s, t, po).ksp.paths);
    }
    return tr;
  };
  truths.push_back(truth_for(g0));

  dyn::DynamicGraph dg(g0);      // the fleet's graph: apply_batch only
  dyn::DynamicGraph shadow(g0);  // the mutator's lockstep copy for truth

  shard::FleetOptions fo;
  fo.router.shards = 2;
  fo.replicas = 2;
  fo.workers_per_replica = 2;
  fo.hedge = std::chrono::milliseconds(3);
  fault::InjectorConfig inj;
  inj.enabled = true;
  inj.seed = seed;
  inj.rate_permille = rate;
  // Long enough that a stalled repair keeps the bounded-staleness window
  // open across many storm queries — the stale-soundness gate needs hits.
  inj.stall = std::chrono::milliseconds(8);
  inj.site_filter = "dyn.repair.stall,dyn.repair.crash";
  inj.max_fires = max_fires;
  fo.injector = inj;
  shard::ShardFleet fleet(dg, fo);

  // Warm both home-shard replicas so batches land on populated caches —
  // repairs and stale side tables need cached trees to operate on.
  for (const auto& [s, t] : pool) {
    const int home = fleet.router().route(s, t);
    for (int r = 0; r < fleet.replicas(); ++r) fleet.engine(home, r).query(s, t, k);
  }

  std::printf("# mutation storm: seed %llu, %ds box (>= %d queries, >= %d "
              "batches), %d threads, pool %d, k %d, 2 shards x 2 replicas, "
              "repair chaos %d permille (cap %d/site)\n",
              static_cast<unsigned long long>(seed), seconds, min_queries,
              min_batches, threads, pool_size, k, rate, max_fires);

  const auto t0 = Clock::now();
  const auto box = std::chrono::seconds(seconds);
  std::atomic<long> issued{0};
  std::atomic<long> batches{0};
  std::atomic<long> structural_batches{0};
  std::atomic<bool> stop_mutator{false};

  // Mutator: randomized batches — three reweights of live edges, every
  // fourth batch a structural insert or delete. Each batch is applied to
  // the shadow first, its truth published, THEN pushed through the fleet
  // fence; only this thread mutates, so fence epoch == truths index.
  std::thread mutator([&] {
    std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ULL + 1);
    graph::CsrGraph cur = shadow.to_csr();
    while (!stop_mutator.load(std::memory_order_acquire)) {
      std::uniform_int_distribution<vid_t> vd(0, cur.num_vertices() - 1);
      std::uniform_real_distribution<double> wd(0.05, 2.0);
      auto live_vertex = [&] {
        vid_t u = vd(rng);
        while (cur.degree(u) == 0) u = vd(rng);
        return u;
      };
      dyn::UpdateBatch b;
      for (int i = 0; i < 3; ++i) {
        const vid_t u = live_vertex();
        const eid_t e =
            cur.edge_begin(u) +
            static_cast<eid_t>(rng() % static_cast<std::uint64_t>(cur.degree(u)));
        b.reweight(u, cur.edge_target(e), wd(rng));
      }
      const long bn = batches.load(std::memory_order_relaxed);
      if (bn % 4 == 3) {
        if (bn % 8 == 3) {
          const vid_t u = vd(rng);
          vid_t v = vd(rng);
          while (v == u) v = vd(rng);
          b.insert(u, v, wd(rng));
        } else {
          const vid_t u = live_vertex();
          b.erase(u, cur.edge_target(cur.edge_begin(u)));
        }
        structural_batches.fetch_add(1, std::memory_order_relaxed);
      }
      dyn::apply(shadow, b);
      cur = shadow.to_csr();
      auto tr = truth_for(cur);
      {
        std::lock_guard<std::mutex> lk(truth_mu);
        truths.push_back(std::move(tr));
      }
      fleet.apply_batch(b);
      batches.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
  });

  std::vector<MutTally> tallies(static_cast<size_t>(threads));
  std::vector<std::thread> storm;
  storm.reserve(static_cast<size_t>(threads));
  for (int w = 0; w < threads; ++w) {
    storm.emplace_back([&, w] {
      MutTally& tl = tallies[static_cast<size_t>(w)];
      const auto ranks = zipf_ranks(
          pool.size(), 1 << 20, /*theta=*/0.99,
          seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(w + 1)));
      for (size_t q = 0; q < ranks.size(); ++q) {
        if (Clock::now() - t0 >= box && issued.load() >= min_queries &&
            batches.load() >= min_batches)
          break;
        const auto [s, t] = pool[ranks[q]];
        auto res = fleet.query(s, t, k);
        issued.fetch_add(1, std::memory_order_relaxed);
        ++tl.total;
        if (res.result.status.code != fault::Status::kOk) {
          ++tl.non_ok;
          std::fprintf(stderr, "storm: (%d,%d) -> %s: %s\n",
                       static_cast<int>(s), static_cast<int>(t),
                       fault::to_string(res.result.status.code),
                       res.result.status.message.c_str());
          continue;
        }
        const auto& st = res.result.staleness;
        const std::uint64_t eff = st.epoch + st.epochs_behind;
        const std::vector<sssp::Path>* base_truth = nullptr;
        const std::vector<sssp::Path>* eff_truth = nullptr;
        {
          std::lock_guard<std::mutex> lk(truth_mu);
          if (eff < truths.size()) {
            base_truth = &truths[st.epoch][ranks[q]];
            eff_truth = &truths[eff][ranks[q]];
          }
        }
        if (eff_truth == nullptr) {
          // Cannot happen: truths[e] is published before the fence reaches
          // e. Seeing it means an engine invented an epoch.
          ++tl.mismatch;
          std::fprintf(stderr, "storm: (%d,%d) stamped unpublished epoch "
                       "%llu\n", static_cast<int>(s), static_cast<int>(t),
                       static_cast<unsigned long long>(eff));
          continue;
        }
        if (!st.stale) {
          if (!answer_matches(res.result.paths, *eff_truth,
                              res.result.degraded)) {
            ++tl.mismatch;
            std::fprintf(stderr, "storm: (%d,%d) non-stale answer diverged "
                         "from epoch-%llu truth\n", static_cast<int>(s),
                         static_cast<int>(t),
                         static_cast<unsigned long long>(eff));
            continue;
          }
          ++tl.ok;
          continue;
        }
        // Stale: exact for its base epoch, each rank within weight_bound of
        // the serve-time-epoch truth.
        ++tl.stale;
        bool good = answer_matches(res.result.paths, *base_truth,
                                   res.result.degraded);
        const size_t ranks_held =
            std::min(res.result.paths.size(), eff_truth->size());
        for (size_t i = 0; good && i < ranks_held; ++i) {
          good = std::abs(res.result.paths[i].dist - (*eff_truth)[i].dist) <=
                 st.weight_bound + 1e-9;
        }
        if (!good) {
          ++tl.stale_bad;
          std::fprintf(stderr, "storm: (%d,%d) stale answer (epoch %llu + "
                       "%llu behind, bound %.6f) broke its contract\n",
                       static_cast<int>(s), static_cast<int>(t),
                       static_cast<unsigned long long>(st.epoch),
                       static_cast<unsigned long long>(st.epochs_behind),
                       st.weight_bound);
        }
      }
    });
  }
  for (auto& th : storm) th.join();
  stop_mutator.store(true, std::memory_order_release);
  mutator.join();
  const double storm_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  MutTally sum;
  for (const auto& tl : tallies) sum.merge(tl);

  auto& injector = fault::Injector::global();
  const std::int64_t crash_fired = injector.fired("dyn.repair.crash");
  const std::int64_t stall_fired = injector.fired("dyn.repair.stall");
  injector.disable();

  // Convergence: chaos off, everything delivered and repaired — every
  // answer must now be fresh at the fence epoch and the stale side tables
  // empty. No mutator is running, so truths needs no lock here.
  fleet.deliver_batches();
  for (int sh = 0; sh < fleet.shards(); ++sh)
    for (int r = 0; r < fleet.replicas(); ++r)
      fleet.engine(sh, r).drain_repairs();
  const std::uint64_t fence = fleet.fence_epoch();
  long converge_bad = 0;
  for (size_t i = 0; i < pool.size(); ++i) {
    auto res = fleet.query(pool[i].first, pool[i].second, k);
    const auto& st = res.result.staleness;
    const bool fine =
        res.result.status.code == fault::Status::kOk && !st.stale &&
        st.epoch + st.epochs_behind == fence &&
        answer_matches(res.result.paths, truths[fence][i],
                       res.result.degraded);
    if (!fine) {
      ++converge_bad;
      std::fprintf(stderr, "storm: (%d,%d) did not converge to fence epoch "
                   "%llu\n", static_cast<int>(pool[i].first),
                   static_cast<int>(pool[i].second),
                   static_cast<unsigned long long>(fence));
    }
  }
  std::size_t stale_left = 0;
  for (int sh = 0; sh < fleet.shards(); ++sh)
    for (int r = 0; r < fleet.replicas(); ++r)
      stale_left += fleet.engine(sh, r).stale_entries();

  const std::int64_t fallbacks = counter("dyn.repair.fallbacks");
  const std::int64_t repaired = counter("dyn.repair.trees");
  const std::int64_t stale_metric = counter("serve.stale_answers");
  const std::int64_t bounces = counter("shard.epoch_bounces");
  const std::int64_t upgrades = counter("shard.stale_upgrades");

  std::printf("storm: %.1fs, %ld queries (%ld fresh, %ld stale), %ld batches "
              "(%ld structural), fence %llu\n",
              storm_s, sum.total, sum.ok, sum.stale, batches.load(),
              structural_batches.load(),
              static_cast<unsigned long long>(fence));
  std::printf("chaos: %lld repair stalls, %lld repair crashes -> %lld "
              "fallbacks, %lld trees repaired, %lld stale answers, %lld "
              "epoch bounces, %lld stale upgrades\n",
              static_cast<long long>(stall_fired),
              static_cast<long long>(crash_fired),
              static_cast<long long>(fallbacks),
              static_cast<long long>(repaired),
              static_cast<long long>(stale_metric),
              static_cast<long long>(bounces),
              static_cast<long long>(upgrades));

  // The gate. Each clause is an acceptance criterion from DESIGN.md §15.
  std::vector<std::string> violations;
  if (sum.non_ok > 0)
    violations.push_back("availability: " + std::to_string(sum.non_ok) +
                         " queries returned a non-kOk status");
  if (sum.mismatch > 0)
    violations.push_back("bit-identity: " + std::to_string(sum.mismatch) +
                         " non-stale answers diverged from their epoch "
                         "truth");
  if (sum.stale_bad > 0)
    violations.push_back("staleness contract: " +
                         std::to_string(sum.stale_bad) +
                         " stale answers broke base identity or bound");
  if (batches.load() < min_batches)
    violations.push_back("mutation rate: only " +
                         std::to_string(batches.load()) + " batches landed");
  if (structural_batches.load() < 1)
    violations.push_back("no structural batch landed");
  if (crash_fired < 1)
    violations.push_back("chaos: dyn.repair.crash never fired — the storm "
                         "did not exercise the fallback path");
  if (sum.stale < 1)
    violations.push_back("no answer was stale-served — the storm never "
                         "caught a repair in flight");
  if (obs::kEnabled) {
    if (fallbacks < 1)
      violations.push_back("no crashed repair fell back to full recompute");
    if (repaired < 1) violations.push_back("no tree was cone-repaired");
  }
  if (converge_bad > 0)
    violations.push_back("convergence: " + std::to_string(converge_bad) +
                         " answers not fresh at the fence after drain");
  if (stale_left > 0)
    violations.push_back("convergence: " + std::to_string(stale_left) +
                         " stale side-table entries survived the drain");

  if (!out_path.empty()) {
    if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
      std::fprintf(
          f,
          "{\n  \"mode\": \"mutation-storm\",\n  \"seed\": %llu,\n"
          "  \"storm_seconds\": %.3f,\n  \"queries\": %ld,\n"
          "  \"fresh\": %ld,\n  \"stale\": %ld,\n  \"non_ok\": %ld,\n"
          "  \"mismatches\": %ld,\n  \"stale_bound_violations\": %ld,\n"
          "  \"batches\": %ld,\n  \"structural_batches\": %ld,\n"
          "  \"fence_epoch\": %llu,\n  \"repair_stalls\": %lld,\n"
          "  \"repair_crashes\": %lld,\n  \"fallbacks\": %lld,\n"
          "  \"trees_repaired\": %lld,\n  \"epoch_bounces\": %lld,\n"
          "  \"stale_upgrades\": %lld,\n  \"converge_bad\": %ld,\n"
          "  \"stale_left\": %zu,\n  \"violations\": %zu\n}\n",
          static_cast<unsigned long long>(seed), storm_s, sum.total, sum.ok,
          sum.stale, sum.non_ok, sum.mismatch, sum.stale_bad, batches.load(),
          structural_batches.load(), static_cast<unsigned long long>(fence),
          static_cast<long long>(stall_fired),
          static_cast<long long>(crash_fired),
          static_cast<long long>(fallbacks),
          static_cast<long long>(repaired),
          static_cast<long long>(bounces), static_cast<long long>(upgrades),
          converge_bad, stale_left, violations.size());
      std::fclose(f);
    }
  }

  if (!violations.empty()) {
    for (const auto& v : violations)
      std::fprintf(stderr, "storm FAIL: %s\n", v.c_str());
    return 1;
  }
  std::printf("storm PASS\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::enable_metrics_dump(argc, argv);
  std::uint64_t seed = 42;
  int seconds = 20;
  bool storm_mutations = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      seconds = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--storm-mutations") == 0) {
      storm_mutations = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  if (storm_mutations) return run_mutation_storm(seed, seconds, out_path);
  const int threads = env_int("PEEK_SOAK_THREADS", 8);
  const int pool_size = env_int("PEEK_SOAK_POOL", 24);
  const int min_queries = env_int("PEEK_SOAK_MIN_QUERIES", 4000);
  const int rate = env_int("PEEK_SOAK_RATE", 20);
  const int max_fires = env_int("PEEK_SOAK_MAX_FIRES", 6);
  const int k = 8;

  const auto g = bench::twitter_like(13);
  const auto pool = bench::sample_pairs(g, pool_size, /*seed=*/7);

  // Ground truth per pool pair — the certificate catches corruption at
  // serve time; this catches anything the certificate might miss.
  std::vector<std::vector<sssp::Path>> want;
  want.reserve(pool.size());
  for (const auto& [s, t] : pool) {
    core::PeekOptions po;
    po.k = k;
    want.push_back(core::peek_ksp(g, s, t, po).ksp.paths);
  }

  const std::filesystem::path snap_root =
      std::filesystem::temp_directory_path() /
      ("peek_soak_" + std::to_string(seed));
  std::filesystem::remove_all(snap_root);

  shard::FleetOptions fo;
  fo.router.shards = 4;
  fo.replicas = 2;
  fo.workers_per_replica = 2;
  fo.hedge = std::chrono::milliseconds(3);
  fo.serve.snapshot_dir = snap_root.string();
  fault::InjectorConfig inj;
  inj.enabled = true;
  inj.seed = seed;
  inj.rate_permille = rate;
  inj.stall = std::chrono::milliseconds(2);
  inj.site_filter =
      "shard.replica.stall,shard.replica.down,shard.replica.corrupt";
  // Cap every chaos site so a long soak bounds its injected damage: at most
  // max_fires corruption events total means the cert-retry ladder can always
  // outrun the chaos (8 replicas > 6 simultaneous quarantines never holds —
  // heals drain continuously).
  inj.max_fires = max_fires;
  fo.injector = inj;
  shard::ShardFleet fleet(g, fo);

  // Pre-warm every home-shard replica and persist its artifacts so a healing
  // replica has real snapshots to warm-restart from (and degraded fallback
  // has warm caches to probe). Storm traffic then exercises the serving
  // tier, not cold PeeK compute.
  for (const auto& [s, t] : pool) {
    const int home = fleet.router().route(s, t);
    for (int r = 0; r < fleet.replicas(); ++r) {
      fleet.engine(home, r).query(s, t, k);
      fleet.engine(home, r).persist();
    }
  }

  std::printf("# chaos soak: seed %llu, %ds box (>= %d queries), %d threads, "
              "pool %d, k %d, 4 shards x 2 replicas, chaos %d permille "
              "(cap %d/site)\n",
              static_cast<unsigned long long>(seed), seconds, min_queries,
              threads, pool_size, k, rate, max_fires);

  const auto t0 = Clock::now();
  const auto box = std::chrono::seconds(seconds);
  std::atomic<long> issued{0};
  std::vector<Tally> tallies(static_cast<size_t>(threads));
  std::vector<std::thread> storm;
  storm.reserve(static_cast<size_t>(threads));
  for (int w = 0; w < threads; ++w) {
    storm.emplace_back([&, w] {
      Tally& tl = tallies[static_cast<size_t>(w)];
      const auto ranks = zipf_ranks(
          pool.size(), 1 << 20, /*theta=*/0.99,
          seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(w + 1)));
      for (size_t q = 0; q < ranks.size(); ++q) {
        // Run until the time box elapses AND the fleet has seen enough
        // queries for the injector's per-site hit counts to make every
        // chaos site statistically certain to have fired.
        if (Clock::now() - t0 >= box && issued.load() >= min_queries) break;
        const auto [s, t] = pool[ranks[q]];
        auto res = fleet.query(s, t, k);
        issued.fetch_add(1, std::memory_order_relaxed);
        ++tl.total;
        tl.hedged += res.hedged ? 1 : 0;
        if (res.result.status.code != fault::Status::kOk) {
          ++tl.non_ok;
          std::fprintf(stderr, "soak: (%d,%d) -> %s: %s\n",
                       static_cast<int>(s), static_cast<int>(t),
                       fault::to_string(res.result.status.code),
                       res.result.status.message.c_str());
          continue;
        }
        if (!answer_matches(res.result.paths, want[ranks[q]],
                            res.result.degraded)) {
          ++tl.mismatch;
          std::fprintf(stderr, "soak: (%d,%d) answer diverged from "
                               "core::peek_ksp (degraded=%d)\n",
                       static_cast<int>(s), static_cast<int>(t),
                       res.result.degraded ? 1 : 0);
          continue;
        }
        if (res.result.degraded) {
          ++tl.degraded;
        } else {
          ++tl.ok;
        }
      }
    });
  }
  for (auto& th : storm) th.join();
  const double storm_s = std::chrono::duration<double>(Clock::now() - t0)
                             .count();

  Tally sum;
  for (const auto& tl : tallies) sum.merge(tl);

  // Capture the injector's per-site counts before disable() resets them.
  auto& injector = fault::Injector::global();
  const std::int64_t corrupt_fired = injector.fired("shard.replica.corrupt");
  const std::int64_t down_fired = injector.fired("shard.replica.down");
  const std::int64_t stall_fired = injector.fired("shard.replica.stall");

  // Chaos off; let every pending quarantine finish its cache drop + warm
  // restart, then sweep queries until each half-open breaker has probed its
  // way back to closed. This is the "without operator intervention" half of
  // the gate: nothing here touches set_replica_down or force-close.
  injector.disable();
  fleet.drain_heals();
  bool all_closed = false;
  const auto heal_deadline = Clock::now() + std::chrono::seconds(10);
  while (!all_closed && Clock::now() < heal_deadline) {
    for (const auto& [s, t] : pool) fleet.query(s, t, k);
    all_closed = true;
    for (int sh = 0; sh < fleet.shards(); ++sh) {
      for (int r = 0; r < fleet.replicas(); ++r) {
        all_closed = all_closed && fleet.breaker_state(sh, r) ==
                                       shard::BreakerState::kClosed;
      }
    }
  }
  fleet.publish_latency_metrics();

  const std::int64_t quarantines = counter("shard.replica.quarantines");
  const std::int64_t warm_restarts = counter("shard.replica.warm_restarts");
  const std::int64_t half_opens = counter("shard.breaker.half_open");
  const std::int64_t closes = counter("shard.breaker.close");
  const std::int64_t cert_failures = counter("serve.certify.failures");

  std::printf("storm: %.1fs, %ld queries (%ld ok, %ld degraded, %ld hedged)\n",
              storm_s, sum.total, sum.ok, sum.degraded, sum.hedged);
  std::printf("chaos: %lld stalls, %lld bounces, %lld corruptions -> "
              "%lld cert failures, %lld quarantines, %lld warm restarts, "
              "%lld half-opens, %lld closes, all_closed=%d\n",
              static_cast<long long>(stall_fired),
              static_cast<long long>(down_fired),
              static_cast<long long>(corrupt_fired),
              static_cast<long long>(cert_failures),
              static_cast<long long>(quarantines),
              static_cast<long long>(warm_restarts),
              static_cast<long long>(half_opens),
              static_cast<long long>(closes), all_closed ? 1 : 0);

  // The gate. Each clause is an acceptance criterion from DESIGN.md §14.
  std::vector<std::string> violations;
  if (sum.non_ok > 0)
    violations.push_back("availability: " + std::to_string(sum.non_ok) +
                         " queries returned a non-kOk status");
  if (sum.mismatch > 0)
    violations.push_back("bit-identity: " + std::to_string(sum.mismatch) +
                         " answers diverged from core::peek_ksp");
  if (corrupt_fired < 1)
    violations.push_back("chaos: shard.replica.corrupt never fired — the "
                         "soak did not exercise certification");
  if (obs::kEnabled) {
    if (cert_failures < 1)
      violations.push_back("certification never caught a corrupt answer");
    if (quarantines < 1) violations.push_back("no replica was quarantined");
    if (warm_restarts < 1)
      violations.push_back("no replica warm-restarted");
    if (half_opens < 1)
      violations.push_back("no breaker reached half-open");
    if (closes < 1) violations.push_back("no breaker closed via probe");
  }
  if (!all_closed)
    violations.push_back("a breaker failed to return to closed after the "
                         "storm (self-healing did not converge)");

  if (!out_path.empty()) {
    if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
      std::fprintf(
          f,
          "{\n  \"seed\": %llu,\n  \"storm_seconds\": %.3f,\n"
          "  \"queries\": %ld,\n  \"ok\": %ld,\n  \"degraded\": %ld,\n"
          "  \"non_ok\": %ld,\n  \"mismatches\": %ld,\n  \"hedged\": %ld,\n"
          "  \"stalls\": %lld,\n  \"bounces\": %lld,\n"
          "  \"corruptions\": %lld,\n  \"cert_failures\": %lld,\n"
          "  \"quarantines\": %lld,\n  \"warm_restarts\": %lld,\n"
          "  \"half_opens\": %lld,\n  \"closes\": %lld,\n"
          "  \"all_closed\": %s,\n  \"violations\": %zu\n}\n",
          static_cast<unsigned long long>(seed), storm_s, sum.total, sum.ok,
          sum.degraded, sum.non_ok, sum.mismatch, sum.hedged,
          static_cast<long long>(stall_fired),
          static_cast<long long>(down_fired),
          static_cast<long long>(corrupt_fired),
          static_cast<long long>(cert_failures),
          static_cast<long long>(quarantines),
          static_cast<long long>(warm_restarts),
          static_cast<long long>(half_opens),
          static_cast<long long>(closes), all_closed ? "true" : "false",
          violations.size());
      std::fclose(f);
    }
  }

  std::error_code ec;
  std::filesystem::remove_all(snap_root, ec);

  if (!violations.empty()) {
    for (const auto& v : violations)
      std::fprintf(stderr, "soak FAIL: %s\n", v.c_str());
    return 1;
  }
  std::printf("soak PASS\n");
  return 0;
}
