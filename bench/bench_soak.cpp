// Chaos soak gate (DESIGN.md §14): a multi-threaded Zipf query storm through
// shard::ShardFleet while the deterministic fault::Injector fires replica
// stalls (shard.replica.stall), dead-process bounces (shard.replica.down) and
// answer corruption (shard.replica.corrupt). The harness asserts the fleet's
// whole self-healing contract end to end:
//
//   1. Continuous availability — every storm query comes back kOk (degraded
//      prefixes allowed, typed failures not), and the process never aborts.
//   2. Bit-identity — every non-degraded kOk answer equals core::peek_ksp
//      exactly; degraded answers are exact prefixes of it.
//   3. The healing cycle actually runs — at least one injected corruption is
//      caught by the §14 certificate and the victim replica demonstrably
//      traverses quarantine -> cache drop -> warm restart -> half-open probe
//      -> closed, without operator intervention: the final sweep requires
//      every breaker back in kClosed.
//
// Unlike bench_shard this is a gate, not a measurement: it prints a summary
// line and writes a JSON report (--out PATH) that CI uploads on failure.
// Flags: --seed N (injector seed, default 42), --seconds S (storm time box,
// default 20; the storm also runs to a minimum query count so fast machines
// still accumulate enough injector hits), --out PATH. Env knobs:
// PEEK_SOAK_THREADS (8), PEEK_SOAK_POOL (24), PEEK_SOAK_MIN_QUERIES (4000),
// PEEK_SOAK_RATE (permille, 20), PEEK_SOAK_MAX_FIRES (per site, 6).
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/peek.hpp"
#include "obs/metrics.hpp"
#include "shard/fleet.hpp"

namespace {
using namespace peek;
using Clock = std::chrono::steady_clock;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v ? std::atoi(v) : fallback;
}

/// Zipfian CDF sampler over a fixed pool (same shape as bench_shard's storm).
std::vector<size_t> zipf_ranks(size_t pool, int n, double theta,
                               std::uint64_t seed) {
  std::vector<double> cdf(pool);
  double acc = 0;
  for (size_t i = 0; i < pool; ++i) {
    acc += std::pow(static_cast<double>(i + 1), -theta);
    cdf[i] = acc;
  }
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.0, acc);
  std::vector<size_t> ranks;
  ranks.reserve(static_cast<size_t>(n));
  for (int q = 0; q < n; ++q) {
    const size_t r = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), uni(rng)) - cdf.begin());
    ranks.push_back(std::min(r, pool - 1));
  }
  return ranks;
}

/// Tallies one storm thread accumulates locally and merges at join.
struct Tally {
  long total = 0;
  long ok = 0;        // kOk, non-degraded, bit-identical
  long degraded = 0;  // kOk degraded exact prefix
  long non_ok = 0;    // any typed failure (availability violation)
  long mismatch = 0;  // answer diverged from core::peek_ksp
  long hedged = 0;

  void merge(const Tally& o) {
    total += o.total;
    ok += o.ok;
    degraded += o.degraded;
    non_ok += o.non_ok;
    mismatch += o.mismatch;
    hedged += o.hedged;
  }
};

std::int64_t counter(const char* name) {
  if (!obs::kEnabled) return -1;  // metrics compiled out: cannot observe
  return obs::MetricsRegistry::global().counter(name).value();
}

/// True when `got` equals `want` (exact == full match required) or, in
/// degraded mode, is an exact nonempty prefix of it.
bool answer_matches(const std::vector<sssp::Path>& got,
                    const std::vector<sssp::Path>& want, bool degraded) {
  if (degraded ? got.size() > want.size() : got.size() != want.size())
    return false;
  for (size_t i = 0; i < got.size(); ++i) {
    if (got[i].verts != want[i].verts || got[i].dist != want[i].dist)
      return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::enable_metrics_dump(argc, argv);
  std::uint64_t seed = 42;
  int seconds = 20;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      seconds = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  const int threads = env_int("PEEK_SOAK_THREADS", 8);
  const int pool_size = env_int("PEEK_SOAK_POOL", 24);
  const int min_queries = env_int("PEEK_SOAK_MIN_QUERIES", 4000);
  const int rate = env_int("PEEK_SOAK_RATE", 20);
  const int max_fires = env_int("PEEK_SOAK_MAX_FIRES", 6);
  const int k = 8;

  const auto g = bench::twitter_like(13);
  const auto pool = bench::sample_pairs(g, pool_size, /*seed=*/7);

  // Ground truth per pool pair — the certificate catches corruption at
  // serve time; this catches anything the certificate might miss.
  std::vector<std::vector<sssp::Path>> want;
  want.reserve(pool.size());
  for (const auto& [s, t] : pool) {
    core::PeekOptions po;
    po.k = k;
    want.push_back(core::peek_ksp(g, s, t, po).ksp.paths);
  }

  const std::filesystem::path snap_root =
      std::filesystem::temp_directory_path() /
      ("peek_soak_" + std::to_string(seed));
  std::filesystem::remove_all(snap_root);

  shard::FleetOptions fo;
  fo.router.shards = 4;
  fo.replicas = 2;
  fo.workers_per_replica = 2;
  fo.hedge = std::chrono::milliseconds(3);
  fo.serve.snapshot_dir = snap_root.string();
  fault::InjectorConfig inj;
  inj.enabled = true;
  inj.seed = seed;
  inj.rate_permille = rate;
  inj.stall = std::chrono::milliseconds(2);
  inj.site_filter =
      "shard.replica.stall,shard.replica.down,shard.replica.corrupt";
  // Cap every chaos site so a long soak bounds its injected damage: at most
  // max_fires corruption events total means the cert-retry ladder can always
  // outrun the chaos (8 replicas > 6 simultaneous quarantines never holds —
  // heals drain continuously).
  inj.max_fires = max_fires;
  fo.injector = inj;
  shard::ShardFleet fleet(g, fo);

  // Pre-warm every home-shard replica and persist its artifacts so a healing
  // replica has real snapshots to warm-restart from (and degraded fallback
  // has warm caches to probe). Storm traffic then exercises the serving
  // tier, not cold PeeK compute.
  for (const auto& [s, t] : pool) {
    const int home = fleet.router().route(s, t);
    for (int r = 0; r < fleet.replicas(); ++r) {
      fleet.engine(home, r).query(s, t, k);
      fleet.engine(home, r).persist();
    }
  }

  std::printf("# chaos soak: seed %llu, %ds box (>= %d queries), %d threads, "
              "pool %d, k %d, 4 shards x 2 replicas, chaos %d permille "
              "(cap %d/site)\n",
              static_cast<unsigned long long>(seed), seconds, min_queries,
              threads, pool_size, k, rate, max_fires);

  const auto t0 = Clock::now();
  const auto box = std::chrono::seconds(seconds);
  std::atomic<long> issued{0};
  std::vector<Tally> tallies(static_cast<size_t>(threads));
  std::vector<std::thread> storm;
  storm.reserve(static_cast<size_t>(threads));
  for (int w = 0; w < threads; ++w) {
    storm.emplace_back([&, w] {
      Tally& tl = tallies[static_cast<size_t>(w)];
      const auto ranks = zipf_ranks(
          pool.size(), 1 << 20, /*theta=*/0.99,
          seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(w + 1)));
      for (size_t q = 0; q < ranks.size(); ++q) {
        // Run until the time box elapses AND the fleet has seen enough
        // queries for the injector's per-site hit counts to make every
        // chaos site statistically certain to have fired.
        if (Clock::now() - t0 >= box && issued.load() >= min_queries) break;
        const auto [s, t] = pool[ranks[q]];
        auto res = fleet.query(s, t, k);
        issued.fetch_add(1, std::memory_order_relaxed);
        ++tl.total;
        tl.hedged += res.hedged ? 1 : 0;
        if (res.result.status.code != fault::Status::kOk) {
          ++tl.non_ok;
          std::fprintf(stderr, "soak: (%d,%d) -> %s: %s\n",
                       static_cast<int>(s), static_cast<int>(t),
                       fault::to_string(res.result.status.code),
                       res.result.status.message.c_str());
          continue;
        }
        if (!answer_matches(res.result.paths, want[ranks[q]],
                            res.result.degraded)) {
          ++tl.mismatch;
          std::fprintf(stderr, "soak: (%d,%d) answer diverged from "
                               "core::peek_ksp (degraded=%d)\n",
                       static_cast<int>(s), static_cast<int>(t),
                       res.result.degraded ? 1 : 0);
          continue;
        }
        if (res.result.degraded) {
          ++tl.degraded;
        } else {
          ++tl.ok;
        }
      }
    });
  }
  for (auto& th : storm) th.join();
  const double storm_s = std::chrono::duration<double>(Clock::now() - t0)
                             .count();

  Tally sum;
  for (const auto& tl : tallies) sum.merge(tl);

  // Capture the injector's per-site counts before disable() resets them.
  auto& injector = fault::Injector::global();
  const std::int64_t corrupt_fired = injector.fired("shard.replica.corrupt");
  const std::int64_t down_fired = injector.fired("shard.replica.down");
  const std::int64_t stall_fired = injector.fired("shard.replica.stall");

  // Chaos off; let every pending quarantine finish its cache drop + warm
  // restart, then sweep queries until each half-open breaker has probed its
  // way back to closed. This is the "without operator intervention" half of
  // the gate: nothing here touches set_replica_down or force-close.
  injector.disable();
  fleet.drain_heals();
  bool all_closed = false;
  const auto heal_deadline = Clock::now() + std::chrono::seconds(10);
  while (!all_closed && Clock::now() < heal_deadline) {
    for (const auto& [s, t] : pool) fleet.query(s, t, k);
    all_closed = true;
    for (int sh = 0; sh < fleet.shards(); ++sh) {
      for (int r = 0; r < fleet.replicas(); ++r) {
        all_closed = all_closed && fleet.breaker_state(sh, r) ==
                                       shard::BreakerState::kClosed;
      }
    }
  }
  fleet.publish_latency_metrics();

  const std::int64_t quarantines = counter("shard.replica.quarantines");
  const std::int64_t warm_restarts = counter("shard.replica.warm_restarts");
  const std::int64_t half_opens = counter("shard.breaker.half_open");
  const std::int64_t closes = counter("shard.breaker.close");
  const std::int64_t cert_failures = counter("serve.certify.failures");

  std::printf("storm: %.1fs, %ld queries (%ld ok, %ld degraded, %ld hedged)\n",
              storm_s, sum.total, sum.ok, sum.degraded, sum.hedged);
  std::printf("chaos: %lld stalls, %lld bounces, %lld corruptions -> "
              "%lld cert failures, %lld quarantines, %lld warm restarts, "
              "%lld half-opens, %lld closes, all_closed=%d\n",
              static_cast<long long>(stall_fired),
              static_cast<long long>(down_fired),
              static_cast<long long>(corrupt_fired),
              static_cast<long long>(cert_failures),
              static_cast<long long>(quarantines),
              static_cast<long long>(warm_restarts),
              static_cast<long long>(half_opens),
              static_cast<long long>(closes), all_closed ? 1 : 0);

  // The gate. Each clause is an acceptance criterion from DESIGN.md §14.
  std::vector<std::string> violations;
  if (sum.non_ok > 0)
    violations.push_back("availability: " + std::to_string(sum.non_ok) +
                         " queries returned a non-kOk status");
  if (sum.mismatch > 0)
    violations.push_back("bit-identity: " + std::to_string(sum.mismatch) +
                         " answers diverged from core::peek_ksp");
  if (corrupt_fired < 1)
    violations.push_back("chaos: shard.replica.corrupt never fired — the "
                         "soak did not exercise certification");
  if (obs::kEnabled) {
    if (cert_failures < 1)
      violations.push_back("certification never caught a corrupt answer");
    if (quarantines < 1) violations.push_back("no replica was quarantined");
    if (warm_restarts < 1)
      violations.push_back("no replica warm-restarted");
    if (half_opens < 1)
      violations.push_back("no breaker reached half-open");
    if (closes < 1) violations.push_back("no breaker closed via probe");
  }
  if (!all_closed)
    violations.push_back("a breaker failed to return to closed after the "
                         "storm (self-healing did not converge)");

  if (!out_path.empty()) {
    if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
      std::fprintf(
          f,
          "{\n  \"seed\": %llu,\n  \"storm_seconds\": %.3f,\n"
          "  \"queries\": %ld,\n  \"ok\": %ld,\n  \"degraded\": %ld,\n"
          "  \"non_ok\": %ld,\n  \"mismatches\": %ld,\n  \"hedged\": %ld,\n"
          "  \"stalls\": %lld,\n  \"bounces\": %lld,\n"
          "  \"corruptions\": %lld,\n  \"cert_failures\": %lld,\n"
          "  \"quarantines\": %lld,\n  \"warm_restarts\": %lld,\n"
          "  \"half_opens\": %lld,\n  \"closes\": %lld,\n"
          "  \"all_closed\": %s,\n  \"violations\": %zu\n}\n",
          static_cast<unsigned long long>(seed), storm_s, sum.total, sum.ok,
          sum.degraded, sum.non_ok, sum.mismatch, sum.hedged,
          static_cast<long long>(stall_fired),
          static_cast<long long>(down_fired),
          static_cast<long long>(corrupt_fired),
          static_cast<long long>(cert_failures),
          static_cast<long long>(quarantines),
          static_cast<long long>(warm_restarts),
          static_cast<long long>(half_opens),
          static_cast<long long>(closes), all_closed ? "true" : "false",
          violations.size());
      std::fclose(f);
    }
  }

  std::error_code ec;
  std::filesystem::remove_all(snap_root, ec);

  if (!violations.empty()) {
    for (const auto& v : violations)
      std::fprintf(stderr, "soak FAIL: %s\n", v.c_str());
    return 1;
  }
  std::printf("soak PASS\n");
  return 0;
}
