// Figure 10: distributed-memory scalability of PeeK (K = 8) on the simulated
// message-passing runtime. The paper scales 16..1024 cores on TACC; here
// ranks are in-process threads (DESIGN.md §3), so GTEPS and speedups reflect
// the algorithm's communication structure, not real cluster bandwidth.
#include <cstdlib>

#include "bench_common.hpp"
#include "dist/dist_peek.hpp"

namespace {
using namespace peek;
using namespace peek::bench;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v ? std::atoi(v) : fallback;
}
}  // namespace

int main(int argc, char** argv) {
  enable_metrics_dump(argc, argv);
  auto suite = benchmark_suite(env_int("PEEK_BENCH_SHIFT", -1));
  print_header("Figure 10: distributed scalability (PeeK, K=8)",
               "Figure 10 — simulated ranks standing in for 16..1024 cores; "
               "GTEPS = relaxed edges / SSSP stage seconds");
  print_row({"graph", "ranks", "time(s)", "MTEPS", "paths"});

  for (const auto& bg : suite) {
    // Two representative graphs keep the bench quick.
    if (bg.name != "R21" && bg.name != "GT") continue;
    auto pts = sample_pairs(bg.g, 1, 42);
    if (pts.empty()) continue;
    const auto [s, t] = pts[0];
    for (int ranks : {1, 2, 4, 8, 16}) {
      std::int64_t relaxed = 0;
      size_t paths = 0;
      const double secs = time_seconds([&] {
        dist::run_ranks(ranks, [&](dist::Comm& c) {
          dist::DistPeekOptions opts;
          opts.k = 8;
          auto r = dist::dist_peek_ksp(c, bg.g, s, t, opts);
          if (c.rank() == 0) {
            relaxed = r.edges_relaxed;
            paths = r.ksp.paths.size();
          }
        });
      });
      print_row({bg.name, std::to_string(ranks), fmt(secs, 3),
                 fmt(static_cast<double>(relaxed) / secs / 1e6, 2),
                 std::to_string(paths)});
    }
  }
  return 0;
}
