// Micro-benchmarks of the SSSP kernels (google-benchmark): Dijkstra vs
// Δ-stepping (serial/parallel), forward vs reverse, and Δ sensitivity —
// the data behind the Δ-stepping configuration choices in §6.2.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "sssp/bellman_ford.hpp"
#include "sssp/delta_stepping.hpp"
#include "sssp/dijkstra.hpp"

namespace {

using namespace peek;

const graph::CsrGraph& test_graph() {
  static graph::CsrGraph g = bench::twitter_like(11);
  return g;
}

void BM_Dijkstra(benchmark::State& state) {
  const auto& g = test_graph();
  for (auto _ : state) {
    auto r = sssp::dijkstra(sssp::GraphView(g), 1);
    benchmark::DoNotOptimize(r.dist.data());
  }
}
BENCHMARK(BM_Dijkstra);

void BM_DijkstraEarlyExit(benchmark::State& state) {
  const auto& g = test_graph();
  sssp::DijkstraOptions opts;
  opts.target = g.num_vertices() / 2;
  for (auto _ : state) {
    auto r = sssp::dijkstra(sssp::GraphView(g), 1, opts);
    benchmark::DoNotOptimize(r.dist.data());
  }
}
BENCHMARK(BM_DijkstraEarlyExit);

void BM_DeltaStepping(benchmark::State& state) {
  const auto& g = test_graph();
  sssp::DeltaSteppingOptions opts;
  opts.parallel = state.range(0) != 0;
  for (auto _ : state) {
    auto r = sssp::delta_stepping(sssp::GraphView(g), 1, opts);
    benchmark::DoNotOptimize(r.dist.data());
  }
}
BENCHMARK(BM_DeltaStepping)->Arg(0)->Arg(1);

void BM_DeltaSensitivity(benchmark::State& state) {
  const auto& g = test_graph();
  sssp::DeltaSteppingOptions opts;
  opts.delta = 1.0 / static_cast<weight_t>(state.range(0));
  for (auto _ : state) {
    auto r = sssp::delta_stepping(sssp::GraphView(g), 1, opts);
    benchmark::DoNotOptimize(r.dist.data());
  }
}
BENCHMARK(BM_DeltaSensitivity)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_ReverseDijkstra(benchmark::State& state) {
  const auto& g = test_graph();
  g.warm_reverse();
  for (auto _ : state) {
    auto r = sssp::reverse_dijkstra(g, 1);
    benchmark::DoNotOptimize(r.dist.data());
  }
}
BENCHMARK(BM_ReverseDijkstra);

void BM_BellmanFord(benchmark::State& state) {
  // The oracle is intentionally slow; kept here to quantify how much.
  static graph::CsrGraph small = bench::twitter_like(8);
  for (auto _ : state) {
    auto r = sssp::bellman_ford(small, 1);
    benchmark::DoNotOptimize(r.dist.data());
  }
}
BENCHMARK(BM_BellmanFord);

}  // namespace

BENCHMARK_MAIN();
