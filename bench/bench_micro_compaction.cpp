// Micro-benchmarks of the three compaction kernels at two keep ratios —
// the §5.4 Observation I data (regeneration costs more to compact; both
// scale with the surviving size).
#include <benchmark/benchmark.h>

#include <random>

#include "bench_common.hpp"
#include "compact/adaptive.hpp"
#include "compact/status_array.hpp"

namespace {

using namespace peek;

const graph::CsrGraph& test_graph() {
  static graph::CsrGraph g = bench::twitter_like(11);
  return g;
}

/// keep_permille of vertices survive, deterministically.
std::vector<std::uint8_t> keep_mask(vid_t n, int keep_permille) {
  std::vector<std::uint8_t> keep(static_cast<size_t>(n), 0);
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<int> d(0, 999);
  for (vid_t v = 0; v < n; ++v) keep[v] = d(rng) < keep_permille ? 1 : 0;
  return keep;
}

void BM_StatusArrayCompact(benchmark::State& state) {
  const auto& g = test_graph();
  auto keep = keep_mask(g.num_vertices(), static_cast<int>(state.range(0)));
  for (auto _ : state) {
    compact::StatusArrayGraph sa(g);
    benchmark::DoNotOptimize(sa.apply(keep.data()));
  }
}
BENCHMARK(BM_StatusArrayCompact)->Arg(10)->Arg(500)->Arg(990);

void BM_EdgeSwapCompact(benchmark::State& state) {
  const auto& g = test_graph();
  auto keep = keep_mask(g.num_vertices(), static_cast<int>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    compact::MutableCsr mc(g);  // the pipeline owns this copy; not measured
    state.ResumeTiming();
    benchmark::DoNotOptimize(compact::edge_swap_compact(mc, keep.data()));
  }
}
BENCHMARK(BM_EdgeSwapCompact)->Arg(10)->Arg(500)->Arg(990);

void BM_Regenerate(benchmark::State& state) {
  const auto& g = test_graph();
  auto keep = keep_mask(g.num_vertices(), static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto r = compact::regenerate(sssp::GraphView(g), keep.data());
    benchmark::DoNotOptimize(r.graph.num_edges());
  }
}
BENCHMARK(BM_Regenerate)->Arg(10)->Arg(500)->Arg(990);

void BM_CountRemainingEdges(benchmark::State& state) {
  const auto& g = test_graph();
  auto keep = keep_mask(g.num_vertices(), 500);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        compact::count_remaining_edges(sssp::GraphView(g), keep.data()));
  }
}
BENCHMARK(BM_CountRemainingEdges);

}  // namespace

BENCHMARK_MAIN();
