// Canonical perf-regression driver: fixed-seed workloads over a fixed graph
// subset, emitting a schema-versioned JSON (BENCH_<pr>.json at the repo root)
// that tools/bench_compare.py diffs against the committed baseline in CI.
//
// Workloads per graph: SSSP (dijkstra; Δ-stepping tiled vs untiled — the
// edge-tiling A/B), prune, compact, KSP (arena vs no-arena deviation
// SSSPs — the scratch-arena A/B), and the end-to-end PeeK pipeline. The A/B
// pairs double as correctness gates: the driver aborts if tiled Δ-stepping
// is not bit-identical to untiled, or if arena-backed Yen returns different
// paths than the allocating path.
//
// Usage: bench_canonical [--out PATH] [--pr N] [--reps N] [--seed S]
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "compact/adaptive.hpp"
#include "core/peek.hpp"
#include "core/upper_bound.hpp"
#include "ksp/yen.hpp"
#include "recover/artifacts.hpp"
#include "sssp/delta_stepping.hpp"
#include "sssp/dijkstra.hpp"

namespace {

using namespace peek;
using bench::TimingStats;

struct GraphEntry {
  std::string name;
  vid_t n = 0;
  eid_t m = 0;
  std::uint64_t fingerprint = 0;
};

// std::map: deterministic key order in the emitted JSON, so two runs diff
// cleanly as text too.
using MetricMap = std::map<std::string, TimingStats>;

bool same_dists(const sssp::SsspResult& a, const sssp::SsspResult& b) {
  return a.dist == b.dist;  // bit-identical, not approximately equal
}

bool same_paths(const ksp::KspResult& a, const ksp::KspResult& b) {
  if (a.paths.size() != b.paths.size()) return false;
  for (size_t i = 0; i < a.paths.size(); ++i) {
    if (a.paths[i].verts != b.paths[i].verts) return false;
    if (a.paths[i].dist != b.paths[i].dist) return false;
  }
  return true;
}

void run_graph(const bench::BenchGraph& bg, int reps, std::uint64_t seed,
               MetricMap& metrics, std::vector<GraphEntry>& entries) {
  const graph::CsrGraph& g = bg.g;
  entries.push_back({bg.name, g.num_vertices(), g.num_edges(),
                     recover::graph_fingerprint(g)});

  const auto pairs = bench::sample_pairs(g, 1, seed);
  if (pairs.empty()) {
    std::fprintf(stderr, "bench_canonical: no usable s-t pair on %s\n",
                 bg.name.c_str());
    std::exit(1);
  }
  const vid_t s = pairs[0].first, t = pairs[0].second;
  const sssp::GraphView view(g);
  auto key = [&bg](const char* metric) {
    return std::string(metric) + "." + bg.name;
  };

  // -- SSSP ----------------------------------------------------------------
  metrics[key("sssp.dijkstra")] = bench::time_stats(reps, [&] {
    sssp::dijkstra(view, s, {});
  });

  sssp::DeltaSteppingOptions untiled;
  untiled.parallel = true;
  untiled.tiled = false;
  sssp::DeltaSteppingOptions tiled = untiled;
  tiled.tiled = true;
  // Measure the tiling machinery itself, not the single-worker skip
  // heuristic — otherwise this A/B is vacuous on 1-core runners.
  tiled.tile_single_worker = true;

  sssp::SsspResult delta_ref;
  metrics[key("sssp.delta.untiled")] = bench::time_stats(reps, [&] {
    delta_ref = sssp::delta_stepping(view, s, untiled);
  });
  sssp::SsspResult delta_tiled;
  metrics[key("sssp.delta.tiled")] = bench::time_stats(reps, [&] {
    delta_tiled = sssp::delta_stepping(view, s, tiled);
  });
  if (!same_dists(delta_ref, delta_tiled)) {
    std::fprintf(stderr,
                 "bench_canonical: tiled Δ-stepping diverged from untiled "
                 "on %s — refusing to emit numbers for broken code\n",
                 bg.name.c_str());
    std::exit(1);
  }

  // -- Prune + compact -----------------------------------------------------
  core::PruneOptions po;
  po.k = 8;
  po.parallel = true;
  core::PruneResult pr;
  metrics[key("prune")] = bench::time_stats(reps, [&] {
    pr = core::k_upper_bound_prune(g, s, t, po);
  });

  metrics[key("compact")] = bench::time_stats(reps, [&] {
    // Fresh MutableCsr per rep: edge-swap mutates it, and the pipeline pays
    // this copy per query too.
    compact::MutableCsr mc(g);
    compact::adaptive_compact(mc, g.num_edges(), pr.vertex_keep.data(),
                              pr.edge_keep, {.alpha = 0.5, .parallel = true});
  });

  // -- KSP: arena vs no-arena deviation SSSPs ------------------------------
  ksp::KspOptions ko;
  ko.k = 8;
  ko.parallel = false;  // serial Yen is where the per-candidate allocation
                        // churn lives; the arena replaces exactly that
  ko.scratch_arena = false;
  ksp::KspResult ksp_ref;
  metrics[key("ksp.noarena")] = bench::time_stats(reps, [&] {
    ksp_ref = ksp::yen_ksp(g, s, t, ko);
  });
  ko.scratch_arena = true;
  ksp::KspResult ksp_arena;
  metrics[key("ksp.arena")] = bench::time_stats(reps, [&] {
    ksp_arena = ksp::yen_ksp(g, s, t, ko);
  });
  if (!same_paths(ksp_ref, ksp_arena)) {
    std::fprintf(stderr,
                 "bench_canonical: arena-backed Yen diverged from the "
                 "allocating path on %s\n",
                 bg.name.c_str());
    std::exit(1);
  }

  // -- End-to-end PeeK -----------------------------------------------------
  core::PeekOptions eo;
  eo.k = 8;
  eo.parallel = true;
  metrics[key("peek.e2e")] = bench::time_stats(reps, [&] {
    core::peek_ksp(g, s, t, eo);
  });
}

void write_json(const char* path, int pr, int reps, std::uint64_t seed,
                const std::vector<GraphEntry>& graphs,
                const MetricMap& metrics) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "bench_canonical: cannot open %s for writing\n",
                 path);
    std::exit(1);
  }
  char host[256] = "unknown";
  gethostname(host, sizeof(host) - 1);
#ifdef _OPENMP
  const bool openmp = true;
#else
  const bool openmp = false;
#endif
#ifdef PEEK_SANITIZED
  const bool sanitized = true;
#else
  const bool sanitized = false;
#endif
#ifndef PEEK_BUILD_TYPE
#define PEEK_BUILD_TYPE "unknown"
#endif
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"peek-bench-v1\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"pr\": %d,\n", pr);
  std::fprintf(f,
               "  \"build\": {\"compiler\": \"%s\", \"build_type\": \"%s\", "
               "\"openmp\": %s, \"sanitized\": %s},\n",
               __VERSION__, PEEK_BUILD_TYPE, openmp ? "true" : "false",
               sanitized ? "true" : "false");
  std::fprintf(f,
               "  \"machine\": {\"host\": \"%s\", \"hardware_threads\": %u},\n",
               host, std::thread::hardware_concurrency());
  std::fprintf(f,
               "  \"config\": {\"reps\": %d, \"seed\": %" PRIu64 "},\n", reps,
               seed);
  std::fprintf(f, "  \"graphs\": [\n");
  for (size_t i = 0; i < graphs.size(); ++i) {
    const GraphEntry& ge = graphs[i];
    // Fingerprint as a string: uint64 does not survive a round-trip through
    // JSON readers that parse numbers as doubles.
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"vertices\": %lld, \"edges\": %lld, "
                 "\"fingerprint\": \"%016" PRIx64 "\"}%s\n",
                 ge.name.c_str(), static_cast<long long>(ge.n),
                 static_cast<long long>(ge.m), ge.fingerprint,
                 i + 1 < graphs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"metrics\": {\n");
  size_t i = 0;
  for (const auto& [name, st] : metrics) {
    std::fprintf(f,
                 "    \"%s\": {\"median_s\": %.9f, \"min_s\": %.9f, "
                 "\"reps\": %d}%s\n",
                 name.c_str(), st.median_s, st.min_s, st.reps,
                 ++i < metrics.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bench::enable_metrics_dump(argc, argv);
  int pr = 6;
  int reps = 5;
  std::uint64_t seed = 42;
  std::string out;
  for (int i = 1; i < argc; ++i) {
    auto val = [&](const char* flag) -> const char* {
      if (std::strcmp(argv[i], flag) != 0) return nullptr;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_canonical: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (const char* vo = val("--out")) {
      out = vo;
    } else if (const char* vp = val("--pr")) {
      pr = std::atoi(vp);
    } else if (const char* vr = val("--reps")) {
      reps = std::atoi(vr);
    } else if (const char* vs = val("--seed")) {
      seed = std::strtoull(vs, nullptr, 10);
    } else if (val("--metrics-json")) {
      // Consumed by bench::enable_metrics_dump above.
    } else {
      std::fprintf(stderr,
                   "usage: bench_canonical [--out PATH] [--pr N] [--reps N] "
                   "[--seed S]\n");
      return 2;
    }
  }
  if (reps < 1) reps = 1;
  if (out.empty()) out = "BENCH_" + std::to_string(pr) + ".json";

#ifdef PEEK_SANITIZED
  std::fprintf(stderr,
               "bench_canonical: sanitized build — timings are not "
               "comparable to a release baseline\n");
#endif

  // The canonical subset: one skewed R-MAT (R21), one preferential-attachment
  // social graph (LJ), one high-diameter small-world (WL — the most spur
  // SSSPs per Yen run), one larger twitter-like R-MAT (GT). Weighted
  // variants only — unit-weight twins exercise the same code paths.
  MetricMap metrics;
  std::vector<GraphEntry> entries;
  for (auto& bg : bench::benchmark_suite(0)) {
    if (bg.name != "R21" && bg.name != "LJ" && bg.name != "WL" &&
        bg.name != "GT")
      continue;
    std::fprintf(stderr, "bench_canonical: %s (%lld vertices, %lld edges)\n",
                 bg.name.c_str(), static_cast<long long>(bg.g.num_vertices()),
                 static_cast<long long>(bg.g.num_edges()));
    run_graph(bg, reps, seed, metrics, entries);
  }

  write_json(out.c_str(), pr, reps, seed, entries, metrics);
  std::fprintf(stderr, "bench_canonical: wrote %s (%zu metrics)\n",
               out.c_str(), metrics.size());
  return 0;
}
