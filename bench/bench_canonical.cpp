// Canonical perf-regression driver: fixed-seed workloads over a fixed graph
// subset, emitting a schema-versioned JSON (BENCH_<pr>.json at the repo root)
// that tools/bench_compare.py diffs against the committed baseline in CI.
//
// Workloads per graph: SSSP (dijkstra; Δ-stepping tiled vs untiled — the
// edge-tiling A/B), prune, compact, KSP (arena vs no-arena deviation
// SSSPs — the scratch-arena A/B), and the end-to-end PeeK pipeline. The A/B
// pairs double as correctness gates: the driver aborts if tiled Δ-stepping
// is not bit-identical to untiled, or if arena-backed Yen returns different
// paths than the allocating path.
//
// Each graph also carries the live-mutation A/B (dyn.repair.{incremental,
// full}): cone repair of 16 cached SSSP trees after a single-edge reweight
// vs rebuilding them from scratch — gated on bit-identity AND on the repair
// being at least 5x faster (DESIGN.md §15).
//
// On R21 the driver additionally runs the sharded-serving Zipf storm
// (shard.storm.{unhedged,hedged}.R21): a warm 4-shard × 2-replica fleet
// under deterministic injected replica stalls, hedging off vs on. Those two
// metrics carry extra p50_s/p99_s fields (tail latency is the whole point
// of hedging; a median would gate nothing), and the driver aborts if any
// fleet answer differs from single-engine core::peek_ksp or if the hedged
// p99 fails to beat the unhedged p99.
//
// Usage: bench_canonical [--out PATH] [--pr N] [--reps N] [--seed S]
#include <unistd.h>

#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "compact/adaptive.hpp"
#include "core/peek.hpp"
#include "core/upper_bound.hpp"
#include "dyn/dynamic_graph.hpp"
#include "dyn/repair.hpp"
#include "dyn/update_batch.hpp"
#include "ksp/yen.hpp"
#include "recover/artifacts.hpp"
#include "shard/fleet.hpp"
#include "sssp/delta_stepping.hpp"
#include "sssp/dijkstra.hpp"

namespace {

using namespace peek;
using bench::TimingStats;

struct GraphEntry {
  std::string name;
  vid_t n = 0;
  eid_t m = 0;
  std::uint64_t fingerprint = 0;
};

// std::map: deterministic key order in the emitted JSON, so two runs diff
// cleanly as text too.
using MetricMap = std::map<std::string, TimingStats>;

/// Storm metrics are TimingStats (median_s = p50 — the gated statistic)
/// plus the tail fields tools/bench_compare.py additionally gates.
struct StormStats {
  TimingStats base;
  double p50_s = 0;
  double p99_s = 0;
};
using StormMap = std::map<std::string, StormStats>;

bool same_dists(const sssp::SsspResult& a, const sssp::SsspResult& b) {
  return a.dist == b.dist;  // bit-identical, not approximately equal
}

bool same_paths(const ksp::KspResult& a, const ksp::KspResult& b) {
  if (a.paths.size() != b.paths.size()) return false;
  for (size_t i = 0; i < a.paths.size(); ++i) {
    if (a.paths[i].verts != b.paths[i].verts) return false;
    if (a.paths[i].dist != b.paths[i].dist) return false;
  }
  return true;
}

void run_graph(const bench::BenchGraph& bg, int reps, std::uint64_t seed,
               MetricMap& metrics, std::vector<GraphEntry>& entries) {
  const graph::CsrGraph& g = bg.g;
  entries.push_back({bg.name, g.num_vertices(), g.num_edges(),
                     recover::graph_fingerprint(g)});

  const auto pairs = bench::sample_pairs(g, 1, seed);
  if (pairs.empty()) {
    std::fprintf(stderr, "bench_canonical: no usable s-t pair on %s\n",
                 bg.name.c_str());
    std::exit(1);
  }
  const vid_t s = pairs[0].first, t = pairs[0].second;
  const sssp::GraphView view(g);
  auto key = [&bg](const char* metric) {
    return std::string(metric) + "." + bg.name;
  };

  // -- SSSP ----------------------------------------------------------------
  metrics[key("sssp.dijkstra")] = bench::time_stats(reps, [&] {
    sssp::dijkstra(view, s, {});
  });

  sssp::DeltaSteppingOptions untiled;
  untiled.parallel = true;
  untiled.tiled = false;
  sssp::DeltaSteppingOptions tiled = untiled;
  tiled.tiled = true;
  // Measure the tiling machinery itself, not the single-worker skip
  // heuristic — otherwise this A/B is vacuous on 1-core runners.
  tiled.tile_single_worker = true;

  sssp::SsspResult delta_ref;
  metrics[key("sssp.delta.untiled")] = bench::time_stats(reps, [&] {
    delta_ref = sssp::delta_stepping(view, s, untiled);
  });
  sssp::SsspResult delta_tiled;
  metrics[key("sssp.delta.tiled")] = bench::time_stats(reps, [&] {
    delta_tiled = sssp::delta_stepping(view, s, tiled);
  });
  if (!same_dists(delta_ref, delta_tiled)) {
    std::fprintf(stderr,
                 "bench_canonical: tiled Δ-stepping diverged from untiled "
                 "on %s — refusing to emit numbers for broken code\n",
                 bg.name.c_str());
    std::exit(1);
  }

  // -- Prune + compact -----------------------------------------------------
  core::PruneOptions po;
  po.k = 8;
  po.parallel = true;
  core::PruneResult pr;
  metrics[key("prune")] = bench::time_stats(reps, [&] {
    pr = core::k_upper_bound_prune(g, s, t, po);
  });

  metrics[key("compact")] = bench::time_stats(reps, [&] {
    // Fresh MutableCsr per rep: edge-swap mutates it, and the pipeline pays
    // this copy per query too.
    compact::MutableCsr mc(g);
    compact::adaptive_compact(mc, g.num_edges(), pr.vertex_keep.data(),
                              pr.edge_keep, {.alpha = 0.5, .parallel = true});
  });

  // -- KSP: arena vs no-arena deviation SSSPs ------------------------------
  ksp::KspOptions ko;
  ko.k = 8;
  ko.parallel = false;  // serial Yen is where the per-candidate allocation
                        // churn lives; the arena replaces exactly that
  ko.scratch_arena = false;
  ksp::KspResult ksp_ref;
  metrics[key("ksp.noarena")] = bench::time_stats(reps, [&] {
    ksp_ref = ksp::yen_ksp(g, s, t, ko);
  });
  ko.scratch_arena = true;
  ksp::KspResult ksp_arena;
  metrics[key("ksp.arena")] = bench::time_stats(reps, [&] {
    ksp_arena = ksp::yen_ksp(g, s, t, ko);
  });
  if (!same_paths(ksp_ref, ksp_arena)) {
    std::fprintf(stderr,
                 "bench_canonical: arena-backed Yen diverged from the "
                 "allocating path on %s\n",
                 bg.name.c_str());
    std::exit(1);
  }

  // -- End-to-end PeeK -----------------------------------------------------
  core::PeekOptions eo;
  eo.k = 8;
  eo.parallel = true;
  metrics[key("peek.e2e")] = bench::time_stats(reps, [&] {
    core::peek_ksp(g, s, t, eo);
  });
}

// -- Sharded serving storm (DESIGN.md §12) -----------------------------------

double storm_pct(std::vector<double> v, size_t permille) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t idx = (v.size() * permille) / 1000;
  if (idx >= v.size()) idx = v.size() - 1;
  return v[idx];
}

/// One Zipf storm through a fresh 4-shard × 2-replica fleet. Warm caches +
/// injected replica stalls: the tail is manufactured by the injector, not by
/// cold compute, so the hedged-vs-unhedged comparison is machine-independent.
/// Aborts on any divergence from `want` (the single-engine answers).
StormStats storm_pass(const graph::CsrGraph& g, bool hedging,
                      const std::vector<std::pair<vid_t, vid_t>>& pool,
                      const std::vector<size_t>& ranks,
                      const std::vector<std::vector<sssp::Path>>& want,
                      std::uint64_t seed) {
  constexpr int kStormK = 8;
  shard::FleetOptions fo;
  fo.router.shards = 4;
  fo.replicas = 2;
  // Two workers per replica so an abandoned (hedged-away) stall does not
  // serialize the next query behind it in the replica queue.
  fo.workers_per_replica = 2;
  fo.hedge = std::chrono::milliseconds(hedging ? 3 : 0);
  fault::InjectorConfig inj;
  inj.enabled = true;
  inj.seed = seed;
  inj.rate_permille = 60;
  inj.stall = std::chrono::milliseconds(20);
  inj.site_filter = "shard.replica.stall";
  fo.injector = inj;
  shard::ShardFleet fleet(g, fo);

  // Warm both home-shard replicas (primary AND hedge target) directly —
  // engine access bypasses the worker queues, so no stall probes fire here.
  for (const auto& [s, t] : pool) {
    const int home = fleet.router().route(s, t);
    for (int r = 0; r < fleet.replicas(); ++r) {
      fleet.engine(home, r).query(s, t, kStormK);
    }
  }

  std::vector<double> lat;
  lat.reserve(ranks.size());
  for (const size_t rk : ranks) {
    const auto [s, t] = pool[rk];
    const auto res = fleet.query(s, t, kStormK);
    bool same = res.result.status.code == fault::Status::kOk &&
                !res.result.degraded &&
                res.result.paths.size() == want[rk].size();
    for (size_t i = 0; same && i < want[rk].size(); ++i) {
      same = res.result.paths[i].verts == want[rk][i].verts &&
             res.result.paths[i].dist == want[rk][i].dist;
    }
    if (!same) {
      std::fprintf(stderr,
                   "bench_canonical: %s fleet answer diverged from "
                   "core::peek_ksp — refusing to emit numbers for broken "
                   "code\n",
                   hedging ? "hedged" : "unhedged");
      std::exit(1);
    }
    lat.push_back(res.seconds);
  }
  StormStats st;
  st.base.reps = static_cast<int>(lat.size());
  st.base.min_s = *std::min_element(lat.begin(), lat.end());
  st.p50_s = storm_pct(lat, 500);
  st.p99_s = storm_pct(lat, 990);
  st.base.median_s = st.p50_s;
  fleet.publish_latency_metrics();
  return st;
}

void run_shard_storm(const bench::BenchGraph& bg, std::uint64_t seed,
                     StormMap& storm) {
  const graph::CsrGraph& g = bg.g;
  constexpr int kQueries = 160;
  constexpr int kPool = 16;
  const auto pool = bench::sample_pairs(g, kPool, seed);
  if (pool.empty()) {
    std::fprintf(stderr, "bench_canonical: no storm pairs on %s\n",
                 bg.name.c_str());
    std::exit(1);
  }

  // Zipfian ranks over the pool: P(rank i) proportional to (i+1)^-0.99.
  std::vector<double> cdf(pool.size());
  double acc = 0;
  for (size_t i = 0; i < pool.size(); ++i) {
    acc += std::pow(static_cast<double>(i + 1), -0.99);
    cdf[i] = acc;
  }
  std::mt19937_64 rng(seed ^ 0x5e47e);
  std::uniform_real_distribution<double> uni(0.0, acc);
  std::vector<size_t> ranks;
  ranks.reserve(kQueries);
  for (int q = 0; q < kQueries; ++q) {
    const size_t r = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), uni(rng)) - cdf.begin());
    ranks.push_back(std::min(r, pool.size() - 1));
  }

  // Ground truth per pool pair — every fleet answer must match exactly.
  std::vector<std::vector<sssp::Path>> want;
  want.reserve(pool.size());
  for (const auto& [s, t] : pool) {
    core::PeekOptions po;
    po.k = 8;
    want.push_back(core::peek_ksp(g, s, t, po).ksp.paths);
  }

  const auto key = [&bg](const char* metric) {
    return std::string(metric) + "." + bg.name;
  };
  const StormStats unhedged =
      storm_pass(g, /*hedging=*/false, pool, ranks, want, seed);
  const StormStats hedged =
      storm_pass(g, /*hedging=*/true, pool, ranks, want, seed);
  // The storm installs a stall injector; later graphs must not inherit it.
  fault::Injector::global().disable();

  if (hedged.p99_s >= unhedged.p99_s) {
    std::fprintf(stderr,
                 "bench_canonical: hedged p99 (%.6fs) did not beat unhedged "
                 "p99 (%.6fs) under injected stalls on %s\n",
                 hedged.p99_s, unhedged.p99_s, bg.name.c_str());
    std::exit(1);
  }
  storm[key("shard.storm.unhedged")] = unhedged;
  storm[key("shard.storm.hedged")] = hedged;
}

// -- Live-mutation repair: cone repair vs full recompute (DESIGN.md §15) -----

/// Times the surgical repair of 16 cached SSSP trees (8 forward + 8 reverse)
/// after a single-edge reweight against rebuilding all 16 from scratch on the
/// post-mutation CSR. Two gates ride along: every repaired tree must be
/// bit-identical to the from-scratch Dijkstra (soundness), and the repair
/// must be at least 5x faster (the point of the §15 pipeline — a repair no
/// cheaper than recompute would make the bounded-staleness machinery pure
/// overhead).
void run_dyn_repair(const bench::BenchGraph& bg, int reps, std::uint64_t seed,
                    MetricMap& metrics) {
  const graph::CsrGraph& g = bg.g;
  constexpr int kTreePairs = 8;
  const auto pool = bench::sample_pairs(g, kTreePairs, seed ^ 0xd15ea5e);
  if (pool.empty()) {
    std::fprintf(stderr, "bench_canonical: no repair pairs on %s\n",
                 bg.name.c_str());
    std::exit(1);
  }

  g.warm_reverse();
  std::vector<std::shared_ptr<const sssp::SsspResult>> fwd, rev;
  for (const auto& [s, t] : pool) {
    fwd.push_back(std::make_shared<sssp::SsspResult>(
        sssp::dijkstra(sssp::GraphView(g), s)));
    rev.push_back(std::make_shared<sssp::SsspResult>(
        sssp::dijkstra(sssp::GraphView(g.reverse()), t)));
  }

  // Pick the reweighted edge by how deep it sits in the cached trees: a
  // reweight of (u, v) opens a cone starting at dist_f[u] in a forward tree
  // and dist_r[v] in a reverse tree, so deeper edges open smaller cones.
  // The 7/8 depth quantile keeps the bench representative — neither the
  // adversarial near-root edge (cone == whole graph) nor a fringe edge no
  // cached tree can see. (High-diameter graphs spread depths uniformly, so
  // a shallower quantile would repair a quarter of the graph 16 times over
  // and measure Dijkstra, not surgery.)
  struct Cand {
    weight_t depth;
    vid_t u, v;
    weight_t w;
  };
  std::vector<Cand> cands;
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    if (g.degree(u) == 0) continue;
    const eid_t e = g.edge_begin(u);
    const vid_t v = g.edge_target(e);
    weight_t depth = kInfDist;
    for (const auto& f : fwd) depth = std::min(depth, f->dist[u]);
    for (const auto& r : rev) depth = std::min(depth, r->dist[v]);
    if (depth == kInfDist) continue;  // invisible to every cached tree
    cands.push_back({depth, u, v, g.edge_weight(e)});
  }
  if (cands.empty()) {
    std::fprintf(stderr, "bench_canonical: no cached tree sees any edge on "
                 "%s\n", bg.name.c_str());
    std::exit(1);
  }
  std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
    return a.depth != b.depth ? a.depth < b.depth : a.u < b.u;
  });
  const Cand pick = cands[cands.size() * 7 / 8];

  dyn::DynamicGraph dg(g);
  const dyn::AppliedBatch applied = dyn::apply(
      dg, dyn::UpdateBatch{}.reweight(pick.u, pick.v, pick.w * 1.5 + 0.05));
  if (!applied.any_applied() || applied.structural()) {
    std::fprintf(stderr, "bench_canonical: repair batch did not land as a "
                 "pure reweight on %s\n", bg.name.c_str());
    std::exit(1);
  }
  const graph::CsrGraph post = dyn::patched_csr(dg, g, applied);
  post.warm_reverse();
  const sssp::GraphView post_fwd(post);
  const sssp::GraphView post_rev(post.reverse());

  const auto key = [&bg](const char* metric) {
    return std::string(metric) + "." + bg.name;
  };

  // Incremental path: cone thresholds + repair_trees, seeded from the cached
  // pre-mutation trees. Threshold computation is part of the cost the
  // serving layer pays per batch, so it stays inside the timed region.
  dyn::RepairResult repaired;
  metrics[key("dyn.repair.incremental")] = bench::time_stats(reps, [&] {
    std::vector<dyn::RepairJob> jobs;
    jobs.reserve(pool.size() * 2);
    for (size_t i = 0; i < pool.size(); ++i) {
      dyn::RepairJob jf;
      jf.root = pool[i].first;
      jf.reverse = false;
      jf.threshold = dyn::cone_threshold(applied, *fwd[i], /*reverse=*/false);
      jf.base = fwd[i];
      jobs.push_back(std::move(jf));
      dyn::RepairJob jr;
      jr.root = pool[i].second;
      jr.reverse = true;
      jr.threshold = dyn::cone_threshold(applied, *rev[i], /*reverse=*/true);
      jr.base = rev[i];
      jobs.push_back(std::move(jr));
    }
    repaired = dyn::repair_trees(post, jobs);
  });
  if (repaired.status.code != fault::Status::kOk) {
    std::fprintf(stderr, "bench_canonical: repair_trees failed on %s: %s\n",
                 bg.name.c_str(), repaired.status.message.c_str());
    std::exit(1);
  }

  // Full-recompute path: what the engine falls back to when a repair
  // crashes — a fresh Dijkstra per cached tree on the post-mutation CSR.
  std::vector<sssp::SsspResult> fresh;
  metrics[key("dyn.repair.full")] = bench::time_stats(reps, [&] {
    fresh.clear();
    fresh.reserve(pool.size() * 2);
    for (const auto& [s, t] : pool) {
      fresh.push_back(sssp::dijkstra(post_fwd, s));
      fresh.push_back(sssp::dijkstra(post_rev, t));
    }
  });

  // Soundness gate: job order interleaves fwd_i, rev_i — same order the
  // recompute loop produces.
  for (size_t i = 0; i < pool.size(); ++i) {
    const bool fwd_ok = repaired.trees[2 * i] != nullptr &&
                        same_dists(*repaired.trees[2 * i], fresh[2 * i]);
    const bool rev_ok = repaired.trees[2 * i + 1] != nullptr &&
                        same_dists(*repaired.trees[2 * i + 1],
                                   fresh[2 * i + 1]);
    if (!fwd_ok || !rev_ok) {
      std::fprintf(stderr,
                   "bench_canonical: cone repair diverged from from-scratch "
                   "Dijkstra on %s (pair %zu) — refusing to emit numbers for "
                   "broken code\n",
                   bg.name.c_str(), i);
      std::exit(1);
    }
  }

  const double inc = metrics[key("dyn.repair.incremental")].median_s;
  const double full = metrics[key("dyn.repair.full")].median_s;
  if (full < 5.0 * inc) {
    std::fprintf(stderr,
                 "bench_canonical: cone repair (%.6fs) is not >= 5x faster "
                 "than full recompute (%.6fs) on %s after a single-edge "
                 "reweight\n",
                 inc, full, bg.name.c_str());
    std::exit(1);
  }
}

void write_json(const char* path, int pr, int reps, std::uint64_t seed,
                const std::vector<GraphEntry>& graphs,
                const MetricMap& metrics, const StormMap& storm) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "bench_canonical: cannot open %s for writing\n",
                 path);
    std::exit(1);
  }
  char host[256] = "unknown";
  gethostname(host, sizeof(host) - 1);
#ifdef _OPENMP
  const bool openmp = true;
#else
  const bool openmp = false;
#endif
#ifdef PEEK_SANITIZED
  const bool sanitized = true;
#else
  const bool sanitized = false;
#endif
#ifndef PEEK_BUILD_TYPE
#define PEEK_BUILD_TYPE "unknown"
#endif
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"peek-bench-v1\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"pr\": %d,\n", pr);
  std::fprintf(f,
               "  \"build\": {\"compiler\": \"%s\", \"build_type\": \"%s\", "
               "\"openmp\": %s, \"sanitized\": %s},\n",
               __VERSION__, PEEK_BUILD_TYPE, openmp ? "true" : "false",
               sanitized ? "true" : "false");
  std::fprintf(f,
               "  \"machine\": {\"host\": \"%s\", \"hardware_threads\": %u},\n",
               host, std::thread::hardware_concurrency());
  std::fprintf(f,
               "  \"config\": {\"reps\": %d, \"seed\": %" PRIu64 "},\n", reps,
               seed);
  std::fprintf(f, "  \"graphs\": [\n");
  for (size_t i = 0; i < graphs.size(); ++i) {
    const GraphEntry& ge = graphs[i];
    // Fingerprint as a string: uint64 does not survive a round-trip through
    // JSON readers that parse numbers as doubles.
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"vertices\": %lld, \"edges\": %lld, "
                 "\"fingerprint\": \"%016" PRIx64 "\"}%s\n",
                 ge.name.c_str(), static_cast<long long>(ge.n),
                 static_cast<long long>(ge.m), ge.fingerprint,
                 i + 1 < graphs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"metrics\": {\n");
  size_t i = 0;
  for (const auto& [name, st] : metrics) {
    std::fprintf(f,
                 "    \"%s\": {\"median_s\": %.9f, \"min_s\": %.9f, "
                 "\"reps\": %d}%s\n",
                 name.c_str(), st.median_s, st.min_s, st.reps,
                 ++i < metrics.size() || !storm.empty() ? "," : "");
  }
  size_t j = 0;
  for (const auto& [name, st] : storm) {
    std::fprintf(f,
                 "    \"%s\": {\"median_s\": %.9f, \"min_s\": %.9f, "
                 "\"reps\": %d, \"p50_s\": %.9f, \"p99_s\": %.9f}%s\n",
                 name.c_str(), st.base.median_s, st.base.min_s, st.base.reps,
                 st.p50_s, st.p99_s, ++j < storm.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bench::enable_metrics_dump(argc, argv);
  int pr = 10;
  int reps = 5;
  std::uint64_t seed = 42;
  std::string out;
  for (int i = 1; i < argc; ++i) {
    auto val = [&](const char* flag) -> const char* {
      if (std::strcmp(argv[i], flag) != 0) return nullptr;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_canonical: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (const char* vo = val("--out")) {
      out = vo;
    } else if (const char* vp = val("--pr")) {
      pr = std::atoi(vp);
    } else if (const char* vr = val("--reps")) {
      reps = std::atoi(vr);
    } else if (const char* vs = val("--seed")) {
      seed = std::strtoull(vs, nullptr, 10);
    } else if (val("--metrics-json")) {
      // Consumed by bench::enable_metrics_dump above.
    } else {
      std::fprintf(stderr,
                   "usage: bench_canonical [--out PATH] [--pr N] [--reps N] "
                   "[--seed S]\n");
      return 2;
    }
  }
  if (reps < 1) reps = 1;
  if (out.empty()) out = "BENCH_" + std::to_string(pr) + ".json";

#ifdef PEEK_SANITIZED
  std::fprintf(stderr,
               "bench_canonical: sanitized build — timings are not "
               "comparable to a release baseline\n");
#endif

  // The canonical subset: one skewed R-MAT (R21), one preferential-attachment
  // social graph (LJ), one high-diameter small-world (WL — the most spur
  // SSSPs per Yen run), one larger twitter-like R-MAT (GT). Weighted
  // variants only — unit-weight twins exercise the same code paths.
  MetricMap metrics;
  StormMap storm;
  std::vector<GraphEntry> entries;
  for (auto& bg : bench::benchmark_suite(0)) {
    if (bg.name != "R21" && bg.name != "LJ" && bg.name != "WL" &&
        bg.name != "GT")
      continue;
    std::fprintf(stderr, "bench_canonical: %s (%lld vertices, %lld edges)\n",
                 bg.name.c_str(), static_cast<long long>(bg.g.num_vertices()),
                 static_cast<long long>(bg.g.num_edges()));
    run_graph(bg, reps, seed, metrics, entries);
    run_dyn_repair(bg, reps, seed, metrics);
    if (bg.name == "R21") {
      std::fprintf(stderr, "bench_canonical: %s sharded-serving storm\n",
                   bg.name.c_str());
      run_shard_storm(bg, seed, storm);
    }
  }

  write_json(out.c_str(), pr, reps, seed, entries, metrics, storm);
  std::fprintf(stderr, "bench_canonical: wrote %s (%zu metrics)\n",
               out.c_str(), metrics.size() + storm.size());
  return 0;
}
