// Micro-benchmarks of the parallel primitives (prefix sum, sort, transpose,
// sort permutation) backing the pruning and compaction stages.
#include <benchmark/benchmark.h>

#include <random>

#include "bench_common.hpp"
#include "parallel/prefix_sum.hpp"
#include "parallel/sort.hpp"

namespace {

using namespace peek;

std::vector<double> random_doubles(size_t n) {
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> d(0, 1);
  std::vector<double> v(n);
  for (auto& x : v) x = d(rng);
  return v;
}

void BM_ExclusivePrefixSum(benchmark::State& state) {
  std::vector<std::int64_t> in(static_cast<size_t>(state.range(0)), 3);
  std::vector<std::int64_t> out(in.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(par::exclusive_prefix_sum(
        std::span<const std::int64_t>(in), std::span<std::int64_t>(out)));
  }
}
BENCHMARK(BM_ExclusivePrefixSum)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_ParallelSort(benchmark::State& state) {
  auto base = random_doubles(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    auto v = base;
    state.ResumeTiming();
    par::parallel_sort(v.begin(), v.end());
    benchmark::DoNotOptimize(v.data());
  }
}
BENCHMARK(BM_ParallelSort)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_SortPermutation(benchmark::State& state) {
  auto keys = random_doubles(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto p = par::sort_permutation(keys);
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(BM_SortPermutation)->Arg(1 << 12)->Arg(1 << 16);

void BM_Transpose(benchmark::State& state) {
  static graph::CsrGraph g = bench::twitter_like(11);
  for (auto _ : state) {
    auto r = graph::transpose(g);
    benchmark::DoNotOptimize(r.num_edges());
  }
}
BENCHMARK(BM_Transpose);

}  // namespace

BENCHMARK_MAIN();
