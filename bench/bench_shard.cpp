// Sharded-serving benchmark: a Zipf query storm through shard::ShardFleet,
// hedging off vs on, under deterministic injected replica stalls
// (shard.replica.stall) that manufacture the straggler tail hedging exists
// to cut. Reports per-config p50/p90/p99 and the hedge counters — the table
// EXPERIMENTS.md §Sharded serving reproduces — and refuses to print numbers
// if any fleet answer diverges from single-engine core::peek_ksp.
//
// The storm is issued single-threaded so the injector's per-site hit
// sequence (and therefore which queries stall) is identical in every run;
// the concurrency lives inside the fleet (replica workers + hedges), which
// is the part under test.
//
// Env knobs: PEEK_BENCH_QUERIES (240), PEEK_BENCH_POOL (24),
// PEEK_BENCH_STALL_MS (20), PEEK_BENCH_STALL_RATE (permille, 60),
// PEEK_BENCH_HEDGE_MS (3). Pass --metrics-json PATH for shard.* counters.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <random>

#include "bench_common.hpp"
#include "core/peek.hpp"
#include "shard/fleet.hpp"

namespace {
using namespace peek;
using namespace peek::bench;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v ? std::atoi(v) : fallback;
}

/// Zipfian stream over a fixed pool: P(rank i) proportional to (i+1)^-theta.
std::vector<size_t> zipf_ranks(size_t pool, int n, double theta,
                               std::uint64_t seed) {
  std::vector<double> cdf(pool);
  double acc = 0;
  for (size_t i = 0; i < pool; ++i) {
    acc += std::pow(static_cast<double>(i + 1), -theta);
    cdf[i] = acc;
  }
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.0, acc);
  std::vector<size_t> ranks;
  ranks.reserve(static_cast<size_t>(n));
  for (int q = 0; q < n; ++q) {
    const size_t r = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), uni(rng)) - cdf.begin());
    ranks.push_back(std::min(r, pool - 1));
  }
  return ranks;
}

double pct(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[std::min(v.size() - 1, static_cast<size_t>(p * double(v.size())))];
}

struct StormRow {
  double p50 = 0, p90 = 0, p99 = 0;
  long hedged = 0, hedge_wins = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bench::enable_metrics_dump(argc, argv);
  const int n_queries = env_int("PEEK_BENCH_QUERIES", 240);
  const int pool_size = env_int("PEEK_BENCH_POOL", 24);
  const int stall_ms = env_int("PEEK_BENCH_STALL_MS", 20);
  const int stall_rate = env_int("PEEK_BENCH_STALL_RATE", 60);
  const int hedge_ms = env_int("PEEK_BENCH_HEDGE_MS", 3);
  const int k = 8;
  const std::uint64_t seed = 42;

  const auto g = bench::twitter_like(13);
  const auto pool = bench::sample_pairs(g, pool_size, seed);
  const auto ranks =
      zipf_ranks(pool.size(), n_queries, /*theta=*/0.99, seed ^ 0x5e47e);

  // Ground truth per pool pair — every fleet answer must match exactly.
  std::vector<std::vector<sssp::Path>> want;
  want.reserve(pool.size());
  for (const auto& [s, t] : pool) {
    core::PeekOptions po;
    po.k = k;
    want.push_back(core::peek_ksp(g, s, t, po).ksp.paths);
  }

  std::printf("# paper: serving-tier extension (no paper figure) — "
              "hedged-request tail latency, DESIGN.md §12\n");
  std::printf("# %d queries, pool %d, zipf 0.99, k %d, 4 shards x 2 "
              "replicas, stall %dms @ %d permille\n",
              n_queries, pool_size, k, stall_ms, stall_rate);
  std::printf("%-10s %12s %12s %12s %8s %8s\n", "config", "p50(s)", "p90(s)",
              "p99(s)", "hedged", "wins");

  StormRow rows[2];
  for (int cfg = 0; cfg < 2; ++cfg) {
    const bool hedging = cfg == 1;
    shard::FleetOptions fo;
    fo.router.shards = 4;
    fo.replicas = 2;
    // Two workers per replica so an abandoned (hedged-away) stall does not
    // block the next query behind it in the replica queue.
    fo.workers_per_replica = 2;
    fo.hedge = std::chrono::milliseconds(hedging ? hedge_ms : 0);
    fault::InjectorConfig inj;
    inj.enabled = true;
    inj.seed = seed;
    inj.rate_permille = stall_rate;
    inj.stall = std::chrono::milliseconds(stall_ms);
    inj.site_filter = "shard.replica.stall";
    fo.injector = inj;
    shard::ShardFleet fleet(g, fo);

    // Warm every home-shard replica (primary AND hedge target) directly, so
    // storm latencies measure the serving tier — queue, stall, hedge — not
    // cold PeeK compute. Without this the cold-compute tail rivals the
    // injected stall on slow machines and the hedged-vs-unhedged comparison
    // turns into a CPU-speed lottery.
    for (const auto& [s, t] : pool) {
      const int home = fleet.router().route(s, t);
      for (int r = 0; r < fleet.replicas(); ++r) {
        fleet.engine(home, r).query(s, t, k);
      }
    }

    StormRow& row = rows[cfg];
    std::vector<double> lat;
    lat.reserve(ranks.size());
    for (const size_t r : ranks) {
      const auto [s, t] = pool[r];
      auto res = fleet.query(s, t, k);
      if (res.result.status.code != fault::Status::kOk ||
          res.result.degraded) {
        std::fprintf(stderr, "bench_shard: query (%d,%d) failed: %s\n",
                     static_cast<int>(s), static_cast<int>(t),
                     fault::to_string(res.result.status.code));
        return 1;
      }
      const auto& w = want[r];
      bool same = res.result.paths.size() == w.size();
      for (size_t i = 0; same && i < w.size(); ++i) {
        same = res.result.paths[i].verts == w[i].verts &&
               res.result.paths[i].dist == w[i].dist;
      }
      if (!same) {
        std::fprintf(stderr,
                     "bench_shard: fleet answer diverged from core::peek_ksp "
                     "on (%d,%d) — refusing to emit numbers for broken "
                     "code\n",
                     static_cast<int>(s), static_cast<int>(t));
        return 1;
      }
      lat.push_back(res.seconds);
      row.hedged += res.hedged ? 1 : 0;
      row.hedge_wins += res.hedge_won ? 1 : 0;
    }
    row.p50 = pct(lat, 0.50);
    row.p90 = pct(lat, 0.90);
    row.p99 = pct(lat, 0.99);
    std::printf("%-10s %12.6f %12.6f %12.6f %8ld %8ld\n",
                hedging ? "hedged" : "unhedged", row.p50, row.p90, row.p99,
                row.hedged, row.hedge_wins);
    fleet.publish_latency_metrics();
  }
  fault::Injector::global().disable();

  std::printf("# hedged p99 %.6fs vs unhedged p99 %.6fs (%.1fx)\n",
              rows[1].p99, rows[0].p99,
              rows[1].p99 > 0 ? rows[0].p99 / rows[1].p99 : 0.0);
  if (rows[1].p99 >= rows[0].p99) {
    std::fprintf(stderr,
                 "bench_shard: hedging failed to beat the unhedged p99 "
                 "under injected stalls\n");
    return 1;
  }
  return 0;
}
