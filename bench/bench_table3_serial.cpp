// Table 3: serial runtime (s) of Yen, NC, OptYen, SB, SB* and PeeK (one
// thread) on the eight benchmark graphs for K = 8 and K = 128, plus PeeK's
// speedup over the best competitor.
#include <cstdlib>

#include "bench_common.hpp"
#include "core/peek.hpp"
#include "ksp/node_classification.hpp"
#include "ksp/optyen.hpp"
#include "ksp/sidetrack.hpp"
#include "ksp/yen.hpp"
#include "parallel/parallel_for.hpp"

namespace {

using namespace peek;
using namespace peek::bench;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v ? std::atoi(v) : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  enable_metrics_dump(argc, argv);
  const int pairs = env_int("PEEK_BENCH_PAIRS", 2);
  const int shift = env_int("PEEK_BENCH_SHIFT", 0);
  par::ThreadScope one_thread(1);
  auto suite = benchmark_suite(shift);

  print_header("Table 3: serial runtime (s)",
               "Table 3 — Yen/NC/OptYen/SB/SB*/PeeK, 1 thread, K=8 and K=128");
  print_row({"graph", "K", "Yen", "NC", "OptYen", "SB", "SB*", "PeeK",
             "speedup"});

  for (int k : {8, 128}) {
    for (const auto& bg : suite) {
      auto pts = sample_pairs(bg.g, pairs, 42);
      if (pts.empty()) continue;
      double t_yen = 0, t_nc = 0, t_opt = 0, t_sb = 0, t_sbs = 0, t_peek = 0;
      for (auto [s, t] : pts) {
        ksp::KspOptions ko;
        ko.k = k;
        t_yen += time_seconds([&] { ksp::yen_ksp(bg.g, s, t, ko); });
        t_nc += time_seconds([&] { ksp::nc_ksp(bg.g, s, t, ko); });
        t_opt += time_seconds([&] { ksp::optyen_ksp(bg.g, s, t, ko); });
        t_sb += time_seconds([&] { ksp::sb_ksp(bg.g, s, t, ko); });
        t_sbs += time_seconds([&] { ksp::sb_star_ksp(bg.g, s, t, ko); });
        core::PeekOptions po;
        po.k = k;
        t_peek += time_seconds([&] { core::peek_ksp(bg.g, s, t, po); });
      }
      const double n = pts.size();
      const double best = std::min({t_yen, t_nc, t_opt, t_sb, t_sbs}) / n;
      // Built with append rather than operator+ chaining: GCC 12's
      // -Werror=restrict false-fires on the inlined concatenation temporaries.
      std::string speedup = "(";
      speedup += fmt(best / (t_peek / n), 1);
      speedup += "x)";
      print_row({bg.name, std::to_string(k), fmt(t_yen / n), fmt(t_nc / n),
                 fmt(t_opt / n), fmt(t_sb / n), fmt(t_sbs / n), fmt(t_peek / n),
                 speedup});
    }
  }
  return 0;
}
