// Figure 9: shared-memory scalability — PeeK (K = 8) speedup over 1 thread
// for 1..32 OpenMP threads on every benchmark graph. NOTE: this container
// exposes a single core, so curves flatten here; all thread configurations
// still execute the full parallel code path (see EXPERIMENTS.md).
#include <cstdlib>

#include "bench_common.hpp"
#include "core/peek.hpp"
#include "parallel/parallel_for.hpp"

namespace {
using namespace peek;
using namespace peek::bench;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v ? std::atoi(v) : fallback;
}
}  // namespace

int main(int argc, char** argv) {
  enable_metrics_dump(argc, argv);
  const int pairs = env_int("PEEK_BENCH_PAIRS", 2);
  auto suite = benchmark_suite(env_int("PEEK_BENCH_SHIFT", 0));
  print_header("Figure 9: shared-memory scalability (PeeK, K=8)",
               "Figure 9 — speedup vs thread count, K=8");
  print_row({"graph", "t=1", "t=2", "t=4", "t=8", "t=16", "t=32"});

  for (const auto& bg : suite) {
    auto pts = sample_pairs(bg.g, pairs, 42);
    if (pts.empty()) continue;
    std::vector<std::string> row{bg.name};
    double base = 0;
    for (int threads : {1, 2, 4, 8, 16, 32}) {
      par::ThreadScope scope(threads);
      double total = 0;
      for (auto [s, t] : pts) {
        core::PeekOptions po;
        po.k = 8;
        po.parallel = threads > 1;
        total += time_seconds([&] { core::peek_ksp(bg.g, s, t, po); });
      }
      if (threads == 1) {
        base = total;
        row.push_back(fmt(total / pts.size(), 3) + "s");
      } else {
        row.push_back(fmt(base / total, 2) + "x");
      }
    }
    print_row(row);
  }
  return 0;
}
