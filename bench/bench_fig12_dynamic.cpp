// Figure 12: adaptive graph compaction vs the Terrace-style dynamic graph
// container, end-to-end (update + downstream SSSP) against the remaining-edge
// percentage on the Twitter-like graph. Expected shape: the dynamic container
// pays per-edge deletion cost, so batch compaction wins by orders of
// magnitude when most of the graph is deleted, and the gap narrows as the
// deletion fraction shrinks.
#include <cstdlib>
#include <random>
#include <unordered_set>

#include "bench_common.hpp"
#include "compact/adaptive.hpp"
#include "dyn/dynamic_graph.hpp"
#include "dyn/dynamic_sssp.hpp"
#include "sssp/dijkstra.hpp"

namespace {
using namespace peek;
using namespace peek::bench;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v ? std::atoi(v) : fallback;
}

std::uint64_t pair_key(vid_t u, vid_t v) {
  return (static_cast<std::uint64_t>(u) << 32) | static_cast<std::uint32_t>(v);
}
}  // namespace

int main(int argc, char** argv) {
  enable_metrics_dump(argc, argv);
  auto g = twitter_like(env_int("PEEK_BENCH_SCALE", 14));
  const auto pts = sample_pairs(g, 1, 99);
  if (pts.empty()) return 0;
  const vid_t s = pts[0].first;

  std::vector<std::pair<vid_t, vid_t>> all_edges;
  for (vid_t u = 0; u < g.num_vertices(); ++u)
    for (eid_t e = g.edge_begin(u); e < g.edge_end(u); ++e)
      all_edges.push_back({u, g.edge_target(e)});
  std::shuffle(all_edges.begin(), all_edges.end(), std::mt19937_64(5));

  print_header("Figure 12: adaptive compaction vs dynamic graph container",
               "Figure 12 — PeeK compaction vs Terrace-style container, "
               "update + SSSP end-to-end");
  print_row({"kept_E%", "peek_comp", "peek_sssp", "dyn_update", "dyn_sssp",
             "speedup"});

  for (double ratio : {0.0004, 0.0064, 0.1024, 0.4096, 0.6553, 1.0}) {
    const size_t target =
        static_cast<size_t>(ratio * static_cast<double>(g.num_edges()));
    std::unordered_set<std::uint64_t> kept;
    for (const auto& [u, v] : all_edges) {
      if (kept.size() >= target) break;
      kept.insert(pair_key(u, v));
    }
    std::vector<std::uint8_t> vkeep(static_cast<size_t>(g.num_vertices()), 0);
    for (const auto& [u, v] : all_edges)
      if (kept.count(pair_key(u, v))) vkeep[u] = vkeep[v] = 1;
    vkeep[s] = 1;
    compact::EdgeKeep pred = [&kept](vid_t u, vid_t v, weight_t) {
      return kept.count(pair_key(u, v)) > 0;
    };

    // PeeK side: adaptive compaction + static SSSP.
    compact::MutableCsr mc(g);
    compact::CompactionResult comp;
    const double pc = time_seconds([&] {
      comp = compact::adaptive_compact(mc, g.num_edges(), vkeep.data(), pred);
    });
    double ps;
    if (comp.strategy == compact::Strategy::kRegeneration) {
      const vid_t cs = comp.regenerated.map.to_new(s);
      ps = time_seconds([&] {
        sssp::dijkstra(sssp::GraphView(comp.regenerated.graph), cs);
      });
    } else {
      ps = time_seconds([&] { sssp::dijkstra(comp.swapped.fwd, s); });
    }

    // Dynamic-container side: per-edge deletions + SSSP on the container.
    dyn::DynamicGraph dg(g);
    const double dc = time_seconds([&] {
      for (const auto& [u, v] : all_edges) {
        if (!kept.count(pair_key(u, v))) dg.delete_edge(u, v);
      }
      for (vid_t v = 0; v < g.num_vertices(); ++v) {
        if (!vkeep[v]) dg.delete_vertex(v);
      }
    });
    const double ds = time_seconds([&] { dyn::dynamic_dijkstra(dg, s); });

    print_row({fmt(100.0 * ratio, 2), fmt(pc, 4), fmt(ps, 4), fmt(dc, 4),
               fmt(ds, 4), fmt((dc + ds) / (pc + ps), 1) + "x"});
  }
  return 0;
}
