// Figure 6: end-to-end time (compaction + downstream KSP, K = 8) of the
// status-array, edge-swap and regeneration strategies as the remaining-edge
// percentage sweeps from ~0.01% to 100% on the Twitter-like graph.
// Expected shape: regeneration wins when almost everything is deleted,
// edge-swap wins when almost nothing is, status-array never wins.
#include <cstdlib>
#include <random>
#include <unordered_set>

#include "bench_common.hpp"
#include "compact/adaptive.hpp"
#include "compact/status_array.hpp"
#include "ksp/optyen.hpp"

namespace {
using namespace peek;
using namespace peek::bench;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v ? std::atoi(v) : fallback;
}

std::uint64_t pair_key(vid_t u, vid_t v) {
  return (static_cast<std::uint64_t>(u) << 32) | static_cast<std::uint32_t>(v);
}

}  // namespace

int main(int argc, char** argv) {
  enable_metrics_dump(argc, argv);
  auto g = twitter_like(env_int("PEEK_BENCH_SCALE", 14));
  const auto pts = sample_pairs(g, 1, 99);
  if (pts.empty()) return 0;
  const auto [s, t] = pts[0];

  // The K = 8 shortest paths must always survive (as in the paper's setup).
  ksp::KspOptions ko;
  ko.k = 8;
  auto base = ksp::optyen_ksp(g, s, t, ko);
  std::unordered_set<std::uint64_t> required;
  for (const auto& p : base.paths)
    for (size_t i = 0; i + 1 < p.verts.size(); ++i)
      required.insert(pair_key(p.verts[i], p.verts[i + 1]));

  // Deterministic random edge order for the keep-set growth.
  std::vector<std::pair<vid_t, vid_t>> all_edges;
  all_edges.reserve(static_cast<size_t>(g.num_edges()));
  for (vid_t u = 0; u < g.num_vertices(); ++u)
    for (eid_t e = g.edge_begin(u); e < g.edge_end(u); ++e)
      all_edges.push_back({u, g.edge_target(e)});
  std::shuffle(all_edges.begin(), all_edges.end(), std::mt19937_64(5));

  print_header("Figure 6: compaction strategies, end-to-end",
               "Figure 6 — status-array / edge-swap / regeneration + KSP(K=8) "
               "vs remaining-edge %");
  print_row({"kept_E%", "status_c", "status_ksp", "swap_c", "swap_ksp",
             "regen_c", "regen_ksp"});

  for (double ratio : {0.0004, 0.0016, 0.0064, 0.0256, 0.1024, 0.4096, 1.0}) {
    const size_t target =
        std::max(required.size(),
                 static_cast<size_t>(ratio * static_cast<double>(g.num_edges())));
    std::unordered_set<std::uint64_t> kept = required;
    for (const auto& [u, v] : all_edges) {
      if (kept.size() >= target) break;
      kept.insert(pair_key(u, v));
    }
    // Kept vertices: endpoints of kept edges.
    std::vector<std::uint8_t> vkeep(static_cast<size_t>(g.num_vertices()), 0);
    for (const auto& [u, v] : all_edges) {
      if (kept.count(pair_key(u, v))) vkeep[u] = vkeep[v] = 1;
    }
    vkeep[s] = vkeep[t] = 1;
    compact::EdgeKeep pred = [&kept](vid_t u, vid_t v, weight_t) {
      return kept.count(pair_key(u, v)) > 0;
    };

    // Status-array.
    compact::StatusArrayGraph sa(g);
    const double sa_c = time_seconds([&] { sa.apply(vkeep.data(), pred); });
    const double sa_k =
        time_seconds([&] { ksp::optyen_ksp(sa.biview(), s, t, ko); });

    // Edge-swap.
    compact::MutableCsr mc(g);
    const double sw_c = time_seconds(
        [&] { compact::edge_swap_compact(mc, vkeep.data(), pred); });
    const double sw_k =
        time_seconds([&] { ksp::optyen_ksp(mc.biview(), s, t, ko); });

    // Regeneration.
    compact::RegeneratedGraph regen;
    const double rg_c = time_seconds([&] {
      regen = compact::regenerate(sssp::GraphView(g), vkeep.data(), pred);
    });
    const vid_t cs = regen.map.to_new(s), ct = regen.map.to_new(t);
    const double rg_k = time_seconds(
        [&] { ksp::optyen_ksp(sssp::BiView::of(regen.graph), cs, ct, ko); });

    print_row({fmt(100.0 * static_cast<double>(kept.size()) /
                       static_cast<double>(g.num_edges()),
                   4),
               fmt(sa_c, 4), fmt(sa_k, 4), fmt(sw_c, 4), fmt(sw_k, 4),
               fmt(rg_c, 4), fmt(rg_k, 4)});
  }
  return 0;
}
