// Table 2: parallel runtime (s) of Yen, NC, OptYen and PeeK on the eight
// benchmark graphs for K = 8 and K = 128, plus PeeK's speedup over the best
// competitor. Paper setup: 32 threads on 2x Xeon; here: whatever OpenMP
// offers in this container (documented in EXPERIMENTS.md).
#include <cstdlib>

#include "bench_common.hpp"
#include "core/peek.hpp"
#include "ksp/node_classification.hpp"
#include "ksp/optyen.hpp"
#include "ksp/yen.hpp"

namespace {

using namespace peek;
using namespace peek::bench;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v ? std::atoi(v) : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  enable_metrics_dump(argc, argv);
  const int pairs = env_int("PEEK_BENCH_PAIRS", 2);
  const int shift = env_int("PEEK_BENCH_SHIFT", 0);
  auto suite = benchmark_suite(shift);

  print_header("Table 2: parallel runtime (s)",
               "Table 2 — Yen/NC/OptYen/PeeK, 32 threads, K=8 and K=128");
  print_row({"graph", "K", "Yen", "NC", "OptYen", "PeeK", "speedup"});

  for (int k : {8, 128}) {
    for (const auto& bg : suite) {
      auto pts = sample_pairs(bg.g, pairs, 42);
      if (pts.empty()) continue;
      double t_yen = 0, t_nc = 0, t_opt = 0, t_peek = 0;
      for (auto [s, t] : pts) {
        ksp::KspOptions ko;
        ko.k = k;
        ko.parallel = true;
        t_yen += time_seconds([&] { ksp::yen_ksp(bg.g, s, t, ko); });
        t_nc += time_seconds([&] { ksp::nc_ksp(bg.g, s, t, ko); });
        t_opt += time_seconds([&] { ksp::optyen_ksp(bg.g, s, t, ko); });
        core::PeekOptions po;
        po.k = k;
        po.parallel = true;
        t_peek += time_seconds([&] { core::peek_ksp(bg.g, s, t, po); });
      }
      const double n = pts.size();
      const double best = std::min({t_yen, t_nc, t_opt}) / n;
      // Built with append rather than operator+ chaining: GCC 12's
      // -Werror=restrict false-fires on the inlined concatenation temporaries.
      std::string speedup = "(";
      speedup += fmt(best / (t_peek / n), 1);
      speedup += "x)";
      print_row({bg.name, std::to_string(k), fmt(t_yen / n), fmt(t_nc / n),
                 fmt(t_opt / n), fmt(t_peek / n), speedup});
    }
  }
  return 0;
}
