// Figure 1: percentage of vertices/edges covered by the top-K shortest paths
// on the Twitter-like graph, for K = 4 .. 1024. The paper's observation —
// coverage stays minuscule even at huge K — is the motivation for pruning.
#include <cstdlib>
#include <unordered_set>

#include "bench_common.hpp"
#include "core/peek.hpp"

namespace {
using namespace peek;
using namespace peek::bench;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v ? std::atoi(v) : fallback;
}
}  // namespace

int main(int argc, char** argv) {
  enable_metrics_dump(argc, argv);
  const int pairs = env_int("PEEK_BENCH_PAIRS", 2);
  auto g = twitter_like(env_int("PEEK_BENCH_SCALE", 12));
  print_header("Figure 1: covered vertices/edges vs K",
               "Figure 1 — Twitter graph, K = 4..4096 (here 4..1024, scaled "
               "stand-in)");
  print_row({"K", "covered_V%", "covered_E%", "covered_V", "covered_E"});

  auto pts = sample_pairs(g, pairs, 7);
  for (int k : {4, 16, 64, 256, 1024}) {
    double vsum = 0, esum = 0;
    int counted = 0;
    for (auto [s, t] : pts) {
      core::PeekOptions po;
      po.k = k;
      auto r = core::peek_ksp(g, s, t, po);
      if (r.ksp.paths.empty()) continue;
      std::unordered_set<vid_t> verts;
      std::unordered_set<std::uint64_t> edges;
      for (const auto& p : r.ksp.paths) {
        for (size_t i = 0; i < p.verts.size(); ++i) {
          verts.insert(p.verts[i]);
          if (i + 1 < p.verts.size())
            edges.insert((static_cast<std::uint64_t>(p.verts[i]) << 32) |
                         static_cast<std::uint32_t>(p.verts[i + 1]));
        }
      }
      vsum += static_cast<double>(verts.size());
      esum += static_cast<double>(edges.size());
      counted++;
    }
    if (counted == 0) continue;
    vsum /= counted;
    esum /= counted;
    print_row({std::to_string(k),
               fmt(100.0 * vsum / g.num_vertices(), 5),
               fmt(100.0 * esum / static_cast<double>(g.num_edges()), 5),
               fmt(vsum, 1), fmt(esum, 1)});
  }
  return 0;
}
