// Extension / design-choice ablations beyond the paper's figures:
//   (a) the adaptive-compaction α sweep (§5.4 says heavier downstream work
//       wants larger α; this locates the plateau),
//   (b) paper edge rule (w > b) vs the tighter spSrc[u]+w+spTgt[v] > b rule,
//   (c) SB/SB* resident-tree cap (the PSB memory/time trade-off, §8),
//   (d) the postponed algorithms PNC / PNC* vs NC and OptYen.
#include <cstdlib>

#include "bench_common.hpp"
#include "compact/adaptive.hpp"
#include "core/peek.hpp"
#include "core/upper_bound.hpp"
#include "ksp/node_classification.hpp"
#include "ksp/optyen.hpp"
#include "ksp/pnc.hpp"
#include "ksp/sidetrack.hpp"

namespace {
using namespace peek;
using namespace peek::bench;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v ? std::atoi(v) : fallback;
}
}  // namespace

int main(int argc, char** argv) {
  enable_metrics_dump(argc, argv);
  auto g = twitter_like(env_int("PEEK_BENCH_SCALE", 13));
  auto pts = sample_pairs(g, 2, 42);
  if (pts.empty()) return 0;

  // (a) alpha sweep.
  print_header("Extension ablation (a): adaptive alpha sweep",
               "design choice §5.4 — strategy threshold, PeeK K=128");
  print_row({"alpha", "strategy", "total(s)"});
  for (double alpha : {0.0, 0.1, 0.3, 0.5, 0.7, 1.0}) {
    double total = 0;
    compact::Strategy strat = compact::Strategy::kEdgeSwap;
    for (auto [s, t] : pts) {
      core::PeekOptions po;
      po.k = 128;
      po.alpha = alpha;
      auto r = core::peek_ksp(g, s, t, po);
      total += r.total_seconds();
      strat = r.strategy_used;
    }
    print_row({fmt(alpha, 1), compact::to_string(strat),
               fmt(total / pts.size(), 4)});
  }

  // (b) edge pruning rule.
  print_header("Extension ablation (b): edge-prune rule",
               "Algorithm 2 line 13 (w > b) vs tight spSrc[u]+w+spTgt[v] > b");
  print_row({"K", "rule", "keptE", "prune(s)", "total(s)"});
  for (int k : {8, 128}) {
    for (bool tight : {false, true}) {
      double total = 0, prune = 0, kept = 0;
      for (auto [s, t] : pts) {
        core::PeekOptions po;
        po.k = k;
        po.tight_edge_prune = tight;
        auto r = core::peek_ksp(g, s, t, po);
        total += r.total_seconds();
        prune += r.prune_seconds;
        kept += static_cast<double>(r.kept_edges);
      }
      print_row({std::to_string(k), tight ? "tight" : "paper",
                 fmt(kept / pts.size(), 0), fmt(prune / pts.size(), 4),
                 fmt(total / pts.size(), 4)});
    }
  }

  // (c) SB resident-tree cap.
  print_header("Extension ablation (c): SB*/PSB tree cap",
               "related work §8 — PSB bounds resident trees; time vs cap");
  print_row({"cap", "SB(s)", "SB*(s)", "trees_peak"});
  for (size_t cap : {4u, 16u, 64u, 256u}) {
    double t_sb = 0, t_sbs = 0;
    size_t peak = 0;
    for (auto [s, t] : pts) {
      ksp::SidetrackOptions so;
      so.base.k = 64;
      so.max_resident_trees = cap;
      t_sb += time_seconds([&] { ksp::sb_ksp(sssp::BiView::of(g), s, t, so); });
      so.resume_trees = true;
      ksp::KspResult r;
      t_sbs += time_seconds([&] { r = ksp::sb_ksp(sssp::BiView::of(g), s, t, so); });
      peak = std::max(peak, r.stats.trees_stored);
    }
    print_row({std::to_string(cap), fmt(t_sb / pts.size(), 4),
               fmt(t_sbs / pts.size(), 4), std::to_string(peak)});
  }

  // (d) postponed node classification.
  print_header("Extension ablation (d): PNC / PNC*",
               "related work §8 — postponement vs NC/OptYen, serial");
  print_row({"K", "NC", "OptYen", "PNC", "PNC*", "pnc_sssp", "nc_sssp"});
  for (int k : {8, 32, 128}) {
    double t_nc = 0, t_opt = 0, t_pnc = 0, t_pncs = 0;
    int pnc_sssp = 0, nc_sssp = 0;
    for (auto [s, t] : pts) {
      ksp::KspOptions ko;
      ko.k = k;
      ksp::KspResult r;
      t_nc += time_seconds([&] { r = ksp::nc_ksp(g, s, t, ko); });
      nc_sssp += r.stats.sssp_calls;
      t_opt += time_seconds([&] { ksp::optyen_ksp(g, s, t, ko); });
      t_pnc += time_seconds([&] { r = ksp::pnc_ksp(g, s, t, ko); });
      pnc_sssp += r.stats.sssp_calls;
      t_pncs += time_seconds([&] { ksp::pnc_star_ksp(g, s, t, ko); });
    }
    const double n = pts.size();
    print_row({std::to_string(k), fmt(t_nc / n, 4), fmt(t_opt / n, 4),
               fmt(t_pnc / n, 4), fmt(t_pncs / n, 4),
               std::to_string(pnc_sssp), std::to_string(nc_sssp)});
  }
  return 0;
}
