// Figure 11: runtime vs K (2..128) for Yen, NC, OptYen and PeeK on every
// benchmark graph. The paper's headline: PeeK grows ~1.1x over the whole
// sweep while the others grow 10-60x.
#include <cstdlib>

#include "bench_common.hpp"
#include "core/peek.hpp"
#include "ksp/node_classification.hpp"
#include "ksp/optyen.hpp"
#include "ksp/yen.hpp"

namespace {
using namespace peek;
using namespace peek::bench;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v ? std::atoi(v) : fallback;
}
}  // namespace

int main(int argc, char** argv) {
  enable_metrics_dump(argc, argv);
  auto suite = benchmark_suite(env_int("PEEK_BENCH_SHIFT", -1));
  print_header("Figure 11: runtime (s) vs K",
               "Figure 11 — Yen/NC/OptYen/PeeK, K = 2..128, 32 threads");
  print_row({"graph", "algo", "K=2", "K=4", "K=8", "K=16", "K=32", "K=64",
             "K=128"});

  for (const auto& bg : suite) {
    auto pts = sample_pairs(bg.g, 1, 42);
    if (pts.empty()) continue;
    const auto [s, t] = pts[0];
    std::vector<std::string> yen_row{bg.name, "Yen"}, nc_row{bg.name, "NC"},
        opt_row{bg.name, "OptYen"}, peek_row{bg.name, "PeeK"};
    for (int k : {2, 4, 8, 16, 32, 64, 128}) {
      ksp::KspOptions ko;
      ko.k = k;
      ko.parallel = true;
      yen_row.push_back(
          fmt(time_seconds([&] { ksp::yen_ksp(bg.g, s, t, ko); })));
      nc_row.push_back(
          fmt(time_seconds([&] { ksp::nc_ksp(bg.g, s, t, ko); })));
      opt_row.push_back(
          fmt(time_seconds([&] { ksp::optyen_ksp(bg.g, s, t, ko); })));
      core::PeekOptions po;
      po.k = k;
      po.parallel = true;
      peek_row.push_back(
          fmt(time_seconds([&] { core::peek_ksp(bg.g, s, t, po); })));
    }
    print_row(yen_row, 10);
    print_row(nc_row, 10);
    print_row(opt_row, 10);
    print_row(peek_row, 10);
  }
  return 0;
}
