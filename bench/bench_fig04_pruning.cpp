// Figure 4: percentage of vertices and edges deleted by K upper bound
// pruning on the eight benchmark graphs, for K = 8 and K = 128 (paper: 98.4%
// / 97.7% average at K = 8).
#include <cstdlib>

#include "bench_common.hpp"
#include "compact/adaptive.hpp"
#include "core/upper_bound.hpp"

namespace {
using namespace peek;
using namespace peek::bench;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v ? std::atoi(v) : fallback;
}
}  // namespace

int main(int argc, char** argv) {
  enable_metrics_dump(argc, argv);
  const int pairs = env_int("PEEK_BENCH_PAIRS", 4);
  auto suite = benchmark_suite(env_int("PEEK_BENCH_SHIFT", 0));
  print_header("Figure 4: pruned vertex/edge percentage",
               "Figure 4 — K upper bound pruning power, K = 8 and 128");
  print_row({"graph", "K", "prunedV%", "prunedE%", "keptV", "keptE"});

  for (int k : {8, 128}) {
    double avg_v = 0, avg_e = 0;
    int graphs_counted = 0;
    for (const auto& bg : suite) {
      auto pts = sample_pairs(bg.g, pairs, 77);
      double vkept = 0, ekept = 0;
      int counted = 0;
      for (auto [s, t] : pts) {
        core::PruneOptions po;
        po.k = k;
        auto r = core::k_upper_bound_prune(bg.g, s, t, po);
        if (r.kept_vertices == 0) continue;
        const eid_t m_r = compact::count_remaining_edges(
            sssp::GraphView(bg.g), r.vertex_keep.data(), r.edge_keep);
        vkept += static_cast<double>(r.kept_vertices);
        ekept += static_cast<double>(m_r);
        counted++;
      }
      if (counted == 0) continue;
      vkept /= counted;
      ekept /= counted;
      const double pv = 100.0 * (1.0 - vkept / bg.g.num_vertices());
      const double pe =
          100.0 * (1.0 - ekept / static_cast<double>(bg.g.num_edges()));
      avg_v += pv;
      avg_e += pe;
      graphs_counted++;
      print_row({bg.name, std::to_string(k), fmt(pv, 2), fmt(pe, 2),
                 fmt(vkept, 0), fmt(ekept, 0)});
    }
    if (graphs_counted)
      print_row({"AVG", std::to_string(k), fmt(avg_v / graphs_counted, 2),
                 fmt(avg_e / graphs_counted, 2)});
  }
  return 0;
}
