// Shared bench harness: the eight stand-in benchmark graphs (Table 1 scaled
// down ~1000x per DESIGN.md §3), source/target pair sampling, wall-clock
// timing and aligned table printing. Every bench binary prints a `# paper:`
// line naming the table/figure it regenerates.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "graph/stats.hpp"

namespace peek::bench {

using graph::CsrGraph;

struct BenchGraph {
  std::string name;   // the paper's label (R21, LJ, ... as stand-ins)
  std::string kind;   // generator family used
  CsrGraph g;
};

/// The eight graphs of Table 1, generated as scaled-down synthetic stand-ins
/// (paper: Rmat21/LiveJournal/Wikipedia/GAP-web/GAP-twitter at 2M-62M
/// vertices; here: same families at bench-friendly sizes). `scale_shift`
/// shrinks (negative) or grows every graph for quick runs.
std::vector<BenchGraph> benchmark_suite(int scale_shift = 0);

/// A smaller Twitter-like R-MAT used by the single-graph figures (1, 6, 12).
CsrGraph twitter_like(int scale = 13);

/// Random source vertices paired with reachable targets at >= `min_hops`
/// BFS hops (mirrors the paper's "randomly selected source and reachable
/// target vertices"). Deterministic in `seed`.
std::vector<std::pair<vid_t, vid_t>> sample_pairs(const CsrGraph& g, int count,
                                                  std::uint64_t seed,
                                                  int min_hops = 3);

/// Seconds of wall-clock for `fn()`.
template <typename Fn>
double time_seconds(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Wall-clock over repetitions. Single-shot timings are noise-bound — a
/// scheduler hiccup fails a CI gate — so the canonical suite reports the
/// median (the gated statistic) and the min (the cleanest observed run).
struct TimingStats {
  double median_s = 0;
  double min_s = 0;
  int reps = 0;
};

template <typename Fn>
TimingStats time_stats(int reps, Fn&& fn) {
  TimingStats st;
  if (reps <= 0) return st;
  std::vector<double> t;
  t.reserve(static_cast<size_t>(reps));
  for (int i = 0; i < reps; ++i) t.push_back(time_seconds(fn));
  std::sort(t.begin(), t.end());
  st.reps = reps;
  st.min_s = t.front();
  const size_t mid = t.size() / 2;
  st.median_s =
      t.size() % 2 == 1 ? t[mid] : (t[mid - 1] + t[mid]) / 2.0;
  return st;
}

/// Registers an at-exit dump of the global metrics registry so BENCH_*.json
/// trajectories carry internal counters, not just wall time. The output path
/// comes from `--metrics-json PATH` on the command line, else the
/// PEEK_METRICS environment variable; with neither, this is a no-op.
void enable_metrics_dump(int argc, char** argv);

/// Printf-style table helpers (fixed-width columns).
void print_header(const std::string& title, const std::string& paper_ref);
void print_row(const std::vector<std::string>& cells, int width = 12);
std::string fmt(double v, int precision = 3);

}  // namespace peek::bench
