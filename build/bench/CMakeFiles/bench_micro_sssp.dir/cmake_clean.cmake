file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_sssp.dir/bench_micro_sssp.cpp.o"
  "CMakeFiles/bench_micro_sssp.dir/bench_micro_sssp.cpp.o.d"
  "bench_micro_sssp"
  "bench_micro_sssp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_sssp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
