# Empty dependencies file for bench_micro_sssp.
# This may be replaced when dependencies are built.
