file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_serial.dir/bench_table3_serial.cpp.o"
  "CMakeFiles/bench_table3_serial.dir/bench_table3_serial.cpp.o.d"
  "bench_table3_serial"
  "bench_table3_serial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_serial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
