file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_compaction.dir/bench_fig06_compaction.cpp.o"
  "CMakeFiles/bench_fig06_compaction.dir/bench_fig06_compaction.cpp.o.d"
  "bench_fig06_compaction"
  "bench_fig06_compaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
