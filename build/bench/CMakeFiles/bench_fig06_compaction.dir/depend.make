# Empty dependencies file for bench_fig06_compaction.
# This may be replaced when dependencies are built.
