file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_distributed.dir/bench_fig10_distributed.cpp.o"
  "CMakeFiles/bench_fig10_distributed.dir/bench_fig10_distributed.cpp.o.d"
  "bench_fig10_distributed"
  "bench_fig10_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
