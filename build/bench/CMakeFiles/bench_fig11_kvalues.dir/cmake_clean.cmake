file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_kvalues.dir/bench_fig11_kvalues.cpp.o"
  "CMakeFiles/bench_fig11_kvalues.dir/bench_fig11_kvalues.cpp.o.d"
  "bench_fig11_kvalues"
  "bench_fig11_kvalues.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_kvalues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
