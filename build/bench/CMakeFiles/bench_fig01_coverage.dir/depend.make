# Empty dependencies file for bench_fig01_coverage.
# This may be replaced when dependencies are built.
