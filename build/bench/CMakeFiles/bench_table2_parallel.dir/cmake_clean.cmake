file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_parallel.dir/bench_table2_parallel.cpp.o"
  "CMakeFiles/bench_table2_parallel.dir/bench_table2_parallel.cpp.o.d"
  "bench_table2_parallel"
  "bench_table2_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
