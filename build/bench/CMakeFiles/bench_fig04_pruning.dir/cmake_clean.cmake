file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_pruning.dir/bench_fig04_pruning.cpp.o"
  "CMakeFiles/bench_fig04_pruning.dir/bench_fig04_pruning.cpp.o.d"
  "bench_fig04_pruning"
  "bench_fig04_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
