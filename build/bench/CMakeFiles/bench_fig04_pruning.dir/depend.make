# Empty dependencies file for bench_fig04_pruning.
# This may be replaced when dependencies are built.
