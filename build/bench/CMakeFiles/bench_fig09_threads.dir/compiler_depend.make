# Empty compiler generated dependencies file for bench_fig09_threads.
# This may be replaced when dependencies are built.
