# Empty dependencies file for bench_fig08_ablation.
# This may be replaced when dependencies are built.
