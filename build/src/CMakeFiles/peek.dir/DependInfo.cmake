
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compact/adaptive.cpp" "src/CMakeFiles/peek.dir/compact/adaptive.cpp.o" "gcc" "src/CMakeFiles/peek.dir/compact/adaptive.cpp.o.d"
  "/root/repo/src/compact/edge_swap.cpp" "src/CMakeFiles/peek.dir/compact/edge_swap.cpp.o" "gcc" "src/CMakeFiles/peek.dir/compact/edge_swap.cpp.o.d"
  "/root/repo/src/compact/regeneration.cpp" "src/CMakeFiles/peek.dir/compact/regeneration.cpp.o" "gcc" "src/CMakeFiles/peek.dir/compact/regeneration.cpp.o.d"
  "/root/repo/src/compact/status_array.cpp" "src/CMakeFiles/peek.dir/compact/status_array.cpp.o" "gcc" "src/CMakeFiles/peek.dir/compact/status_array.cpp.o.d"
  "/root/repo/src/core/batch.cpp" "src/CMakeFiles/peek.dir/core/batch.cpp.o" "gcc" "src/CMakeFiles/peek.dir/core/batch.cpp.o.d"
  "/root/repo/src/core/diverse.cpp" "src/CMakeFiles/peek.dir/core/diverse.cpp.o" "gcc" "src/CMakeFiles/peek.dir/core/diverse.cpp.o.d"
  "/root/repo/src/core/peek.cpp" "src/CMakeFiles/peek.dir/core/peek.cpp.o" "gcc" "src/CMakeFiles/peek.dir/core/peek.cpp.o.d"
  "/root/repo/src/core/shortest_k_group.cpp" "src/CMakeFiles/peek.dir/core/shortest_k_group.cpp.o" "gcc" "src/CMakeFiles/peek.dir/core/shortest_k_group.cpp.o.d"
  "/root/repo/src/core/upper_bound.cpp" "src/CMakeFiles/peek.dir/core/upper_bound.cpp.o" "gcc" "src/CMakeFiles/peek.dir/core/upper_bound.cpp.o.d"
  "/root/repo/src/dist/comm.cpp" "src/CMakeFiles/peek.dir/dist/comm.cpp.o" "gcc" "src/CMakeFiles/peek.dir/dist/comm.cpp.o.d"
  "/root/repo/src/dist/dist_peek.cpp" "src/CMakeFiles/peek.dir/dist/dist_peek.cpp.o" "gcc" "src/CMakeFiles/peek.dir/dist/dist_peek.cpp.o.d"
  "/root/repo/src/dist/dist_sssp.cpp" "src/CMakeFiles/peek.dir/dist/dist_sssp.cpp.o" "gcc" "src/CMakeFiles/peek.dir/dist/dist_sssp.cpp.o.d"
  "/root/repo/src/dist/partition.cpp" "src/CMakeFiles/peek.dir/dist/partition.cpp.o" "gcc" "src/CMakeFiles/peek.dir/dist/partition.cpp.o.d"
  "/root/repo/src/dist/sample_sort.cpp" "src/CMakeFiles/peek.dir/dist/sample_sort.cpp.o" "gcc" "src/CMakeFiles/peek.dir/dist/sample_sort.cpp.o.d"
  "/root/repo/src/dyn/dynamic_graph.cpp" "src/CMakeFiles/peek.dir/dyn/dynamic_graph.cpp.o" "gcc" "src/CMakeFiles/peek.dir/dyn/dynamic_graph.cpp.o.d"
  "/root/repo/src/dyn/dynamic_sssp.cpp" "src/CMakeFiles/peek.dir/dyn/dynamic_sssp.cpp.o" "gcc" "src/CMakeFiles/peek.dir/dyn/dynamic_sssp.cpp.o.d"
  "/root/repo/src/graph/builder.cpp" "src/CMakeFiles/peek.dir/graph/builder.cpp.o" "gcc" "src/CMakeFiles/peek.dir/graph/builder.cpp.o.d"
  "/root/repo/src/graph/csr.cpp" "src/CMakeFiles/peek.dir/graph/csr.cpp.o" "gcc" "src/CMakeFiles/peek.dir/graph/csr.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/peek.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/peek.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/CMakeFiles/peek.dir/graph/io.cpp.o" "gcc" "src/CMakeFiles/peek.dir/graph/io.cpp.o.d"
  "/root/repo/src/graph/scc.cpp" "src/CMakeFiles/peek.dir/graph/scc.cpp.o" "gcc" "src/CMakeFiles/peek.dir/graph/scc.cpp.o.d"
  "/root/repo/src/graph/stats.cpp" "src/CMakeFiles/peek.dir/graph/stats.cpp.o" "gcc" "src/CMakeFiles/peek.dir/graph/stats.cpp.o.d"
  "/root/repo/src/ksp/bruteforce.cpp" "src/CMakeFiles/peek.dir/ksp/bruteforce.cpp.o" "gcc" "src/CMakeFiles/peek.dir/ksp/bruteforce.cpp.o.d"
  "/root/repo/src/ksp/hop_limited.cpp" "src/CMakeFiles/peek.dir/ksp/hop_limited.cpp.o" "gcc" "src/CMakeFiles/peek.dir/ksp/hop_limited.cpp.o.d"
  "/root/repo/src/ksp/node_classification.cpp" "src/CMakeFiles/peek.dir/ksp/node_classification.cpp.o" "gcc" "src/CMakeFiles/peek.dir/ksp/node_classification.cpp.o.d"
  "/root/repo/src/ksp/optyen.cpp" "src/CMakeFiles/peek.dir/ksp/optyen.cpp.o" "gcc" "src/CMakeFiles/peek.dir/ksp/optyen.cpp.o.d"
  "/root/repo/src/ksp/path_set.cpp" "src/CMakeFiles/peek.dir/ksp/path_set.cpp.o" "gcc" "src/CMakeFiles/peek.dir/ksp/path_set.cpp.o.d"
  "/root/repo/src/ksp/pnc.cpp" "src/CMakeFiles/peek.dir/ksp/pnc.cpp.o" "gcc" "src/CMakeFiles/peek.dir/ksp/pnc.cpp.o.d"
  "/root/repo/src/ksp/sidetrack.cpp" "src/CMakeFiles/peek.dir/ksp/sidetrack.cpp.o" "gcc" "src/CMakeFiles/peek.dir/ksp/sidetrack.cpp.o.d"
  "/root/repo/src/ksp/stream.cpp" "src/CMakeFiles/peek.dir/ksp/stream.cpp.o" "gcc" "src/CMakeFiles/peek.dir/ksp/stream.cpp.o.d"
  "/root/repo/src/ksp/yen.cpp" "src/CMakeFiles/peek.dir/ksp/yen.cpp.o" "gcc" "src/CMakeFiles/peek.dir/ksp/yen.cpp.o.d"
  "/root/repo/src/ksp/yen_engine.cpp" "src/CMakeFiles/peek.dir/ksp/yen_engine.cpp.o" "gcc" "src/CMakeFiles/peek.dir/ksp/yen_engine.cpp.o.d"
  "/root/repo/src/parallel/partitioner.cpp" "src/CMakeFiles/peek.dir/parallel/partitioner.cpp.o" "gcc" "src/CMakeFiles/peek.dir/parallel/partitioner.cpp.o.d"
  "/root/repo/src/parallel/prefix_sum.cpp" "src/CMakeFiles/peek.dir/parallel/prefix_sum.cpp.o" "gcc" "src/CMakeFiles/peek.dir/parallel/prefix_sum.cpp.o.d"
  "/root/repo/src/parallel/sort.cpp" "src/CMakeFiles/peek.dir/parallel/sort.cpp.o" "gcc" "src/CMakeFiles/peek.dir/parallel/sort.cpp.o.d"
  "/root/repo/src/sssp/alt.cpp" "src/CMakeFiles/peek.dir/sssp/alt.cpp.o" "gcc" "src/CMakeFiles/peek.dir/sssp/alt.cpp.o.d"
  "/root/repo/src/sssp/bellman_ford.cpp" "src/CMakeFiles/peek.dir/sssp/bellman_ford.cpp.o" "gcc" "src/CMakeFiles/peek.dir/sssp/bellman_ford.cpp.o.d"
  "/root/repo/src/sssp/bidirectional.cpp" "src/CMakeFiles/peek.dir/sssp/bidirectional.cpp.o" "gcc" "src/CMakeFiles/peek.dir/sssp/bidirectional.cpp.o.d"
  "/root/repo/src/sssp/delta_stepping.cpp" "src/CMakeFiles/peek.dir/sssp/delta_stepping.cpp.o" "gcc" "src/CMakeFiles/peek.dir/sssp/delta_stepping.cpp.o.d"
  "/root/repo/src/sssp/dijkstra.cpp" "src/CMakeFiles/peek.dir/sssp/dijkstra.cpp.o" "gcc" "src/CMakeFiles/peek.dir/sssp/dijkstra.cpp.o.d"
  "/root/repo/src/sssp/hop_limited.cpp" "src/CMakeFiles/peek.dir/sssp/hop_limited.cpp.o" "gcc" "src/CMakeFiles/peek.dir/sssp/hop_limited.cpp.o.d"
  "/root/repo/src/sssp/path.cpp" "src/CMakeFiles/peek.dir/sssp/path.cpp.o" "gcc" "src/CMakeFiles/peek.dir/sssp/path.cpp.o.d"
  "/root/repo/src/sssp/resumable_dijkstra.cpp" "src/CMakeFiles/peek.dir/sssp/resumable_dijkstra.cpp.o" "gcc" "src/CMakeFiles/peek.dir/sssp/resumable_dijkstra.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
