# Empty dependencies file for peek.
# This may be replaced when dependencies are built.
