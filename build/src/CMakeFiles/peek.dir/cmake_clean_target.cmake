file(REMOVE_RECURSE
  "libpeek.a"
)
