file(REMOVE_RECURSE
  "CMakeFiles/peek_cli.dir/peek_cli.cpp.o"
  "CMakeFiles/peek_cli.dir/peek_cli.cpp.o.d"
  "peek"
  "peek.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peek_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
