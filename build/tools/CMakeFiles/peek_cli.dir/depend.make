# Empty dependencies file for peek_cli.
# This may be replaced when dependencies are built.
