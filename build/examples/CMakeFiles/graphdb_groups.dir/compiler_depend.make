# Empty compiler generated dependencies file for graphdb_groups.
# This may be replaced when dependencies are built.
