file(REMOVE_RECURSE
  "CMakeFiles/graphdb_groups.dir/graphdb_groups.cpp.o"
  "CMakeFiles/graphdb_groups.dir/graphdb_groups.cpp.o.d"
  "graphdb_groups"
  "graphdb_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphdb_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
