file(REMOVE_RECURSE
  "CMakeFiles/satellite.dir/satellite.cpp.o"
  "CMakeFiles/satellite.dir/satellite.cpp.o.d"
  "satellite"
  "satellite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satellite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
