file(REMOVE_RECURSE
  "CMakeFiles/biology.dir/biology.cpp.o"
  "CMakeFiles/biology.dir/biology.cpp.o.d"
  "biology"
  "biology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
