# Empty dependencies file for biology.
# This may be replaced when dependencies are built.
