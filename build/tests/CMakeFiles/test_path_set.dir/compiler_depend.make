# Empty compiler generated dependencies file for test_path_set.
# This may be replaced when dependencies are built.
