# Empty dependencies file for test_pnc.
# This may be replaced when dependencies are built.
