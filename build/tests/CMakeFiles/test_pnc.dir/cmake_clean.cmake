file(REMOVE_RECURSE
  "CMakeFiles/test_pnc.dir/test_pnc.cpp.o"
  "CMakeFiles/test_pnc.dir/test_pnc.cpp.o.d"
  "test_pnc"
  "test_pnc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pnc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
