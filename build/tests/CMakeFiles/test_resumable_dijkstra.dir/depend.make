# Empty dependencies file for test_resumable_dijkstra.
# This may be replaced when dependencies are built.
