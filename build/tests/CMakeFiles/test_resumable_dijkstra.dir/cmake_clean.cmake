file(REMOVE_RECURSE
  "CMakeFiles/test_resumable_dijkstra.dir/test_resumable_dijkstra.cpp.o"
  "CMakeFiles/test_resumable_dijkstra.dir/test_resumable_dijkstra.cpp.o.d"
  "test_resumable_dijkstra"
  "test_resumable_dijkstra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resumable_dijkstra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
