file(REMOVE_RECURSE
  "CMakeFiles/test_regeneration.dir/test_regeneration.cpp.o"
  "CMakeFiles/test_regeneration.dir/test_regeneration.cpp.o.d"
  "test_regeneration"
  "test_regeneration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_regeneration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
