# Empty compiler generated dependencies file for test_regeneration.
# This may be replaced when dependencies are built.
