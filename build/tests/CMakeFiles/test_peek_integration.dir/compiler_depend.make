# Empty compiler generated dependencies file for test_peek_integration.
# This may be replaced when dependencies are built.
