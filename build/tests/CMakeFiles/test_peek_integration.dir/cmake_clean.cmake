file(REMOVE_RECURSE
  "CMakeFiles/test_peek_integration.dir/test_peek_integration.cpp.o"
  "CMakeFiles/test_peek_integration.dir/test_peek_integration.cpp.o.d"
  "test_peek_integration"
  "test_peek_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_peek_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
