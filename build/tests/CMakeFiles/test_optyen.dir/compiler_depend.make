# Empty compiler generated dependencies file for test_optyen.
# This may be replaced when dependencies are built.
