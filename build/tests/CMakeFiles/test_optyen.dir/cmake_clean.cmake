file(REMOVE_RECURSE
  "CMakeFiles/test_optyen.dir/test_optyen.cpp.o"
  "CMakeFiles/test_optyen.dir/test_optyen.cpp.o.d"
  "test_optyen"
  "test_optyen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_optyen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
