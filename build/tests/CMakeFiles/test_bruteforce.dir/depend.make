# Empty dependencies file for test_bruteforce.
# This may be replaced when dependencies are built.
