# Empty dependencies file for test_yen_engine.
# This may be replaced when dependencies are built.
