file(REMOVE_RECURSE
  "CMakeFiles/test_yen_engine.dir/test_yen_engine.cpp.o"
  "CMakeFiles/test_yen_engine.dir/test_yen_engine.cpp.o.d"
  "test_yen_engine"
  "test_yen_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_yen_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
