file(REMOVE_RECURSE
  "CMakeFiles/test_point_to_point.dir/test_point_to_point.cpp.o"
  "CMakeFiles/test_point_to_point.dir/test_point_to_point.cpp.o.d"
  "test_point_to_point"
  "test_point_to_point.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_point_to_point.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
