# Empty dependencies file for test_point_to_point.
# This may be replaced when dependencies are built.
