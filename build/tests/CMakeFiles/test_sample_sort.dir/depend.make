# Empty dependencies file for test_sample_sort.
# This may be replaced when dependencies are built.
