# Empty compiler generated dependencies file for test_prefix_sum.
# This may be replaced when dependencies are built.
