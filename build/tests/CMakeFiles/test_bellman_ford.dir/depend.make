# Empty dependencies file for test_bellman_ford.
# This may be replaced when dependencies are built.
