file(REMOVE_RECURSE
  "CMakeFiles/test_node_classification.dir/test_node_classification.cpp.o"
  "CMakeFiles/test_node_classification.dir/test_node_classification.cpp.o.d"
  "test_node_classification"
  "test_node_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_node_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
