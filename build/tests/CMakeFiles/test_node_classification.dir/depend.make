# Empty dependencies file for test_node_classification.
# This may be replaced when dependencies are built.
