# Empty dependencies file for test_dynamic_sssp.
# This may be replaced when dependencies are built.
