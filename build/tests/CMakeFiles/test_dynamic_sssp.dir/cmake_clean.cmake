file(REMOVE_RECURSE
  "CMakeFiles/test_dynamic_sssp.dir/test_dynamic_sssp.cpp.o"
  "CMakeFiles/test_dynamic_sssp.dir/test_dynamic_sssp.cpp.o.d"
  "test_dynamic_sssp"
  "test_dynamic_sssp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dynamic_sssp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
