file(REMOVE_RECURSE
  "CMakeFiles/test_sidetrack.dir/test_sidetrack.cpp.o"
  "CMakeFiles/test_sidetrack.dir/test_sidetrack.cpp.o.d"
  "test_sidetrack"
  "test_sidetrack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sidetrack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
