# Empty compiler generated dependencies file for test_sidetrack.
# This may be replaced when dependencies are built.
