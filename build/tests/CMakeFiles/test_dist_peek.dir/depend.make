# Empty dependencies file for test_dist_peek.
# This may be replaced when dependencies are built.
