file(REMOVE_RECURSE
  "CMakeFiles/test_dist_peek.dir/test_dist_peek.cpp.o"
  "CMakeFiles/test_dist_peek.dir/test_dist_peek.cpp.o.d"
  "test_dist_peek"
  "test_dist_peek.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_peek.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
