# Empty compiler generated dependencies file for test_parallel_ksp.
# This may be replaced when dependencies are built.
