file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_ksp.dir/test_parallel_ksp.cpp.o"
  "CMakeFiles/test_parallel_ksp.dir/test_parallel_ksp.cpp.o.d"
  "test_parallel_ksp"
  "test_parallel_ksp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_ksp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
