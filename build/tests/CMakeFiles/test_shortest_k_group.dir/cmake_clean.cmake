file(REMOVE_RECURSE
  "CMakeFiles/test_shortest_k_group.dir/test_shortest_k_group.cpp.o"
  "CMakeFiles/test_shortest_k_group.dir/test_shortest_k_group.cpp.o.d"
  "test_shortest_k_group"
  "test_shortest_k_group.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shortest_k_group.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
