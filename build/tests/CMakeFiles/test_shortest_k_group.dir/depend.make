# Empty dependencies file for test_shortest_k_group.
# This may be replaced when dependencies are built.
