file(REMOVE_RECURSE
  "CMakeFiles/test_edge_swap.dir/test_edge_swap.cpp.o"
  "CMakeFiles/test_edge_swap.dir/test_edge_swap.cpp.o.d"
  "test_edge_swap"
  "test_edge_swap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_edge_swap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
