# Empty dependencies file for test_edge_swap.
# This may be replaced when dependencies are built.
