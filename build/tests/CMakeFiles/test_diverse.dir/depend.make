# Empty dependencies file for test_diverse.
# This may be replaced when dependencies are built.
