file(REMOVE_RECURSE
  "CMakeFiles/test_diverse.dir/test_diverse.cpp.o"
  "CMakeFiles/test_diverse.dir/test_diverse.cpp.o.d"
  "test_diverse"
  "test_diverse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_diverse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
