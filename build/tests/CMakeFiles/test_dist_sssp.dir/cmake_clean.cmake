file(REMOVE_RECURSE
  "CMakeFiles/test_dist_sssp.dir/test_dist_sssp.cpp.o"
  "CMakeFiles/test_dist_sssp.dir/test_dist_sssp.cpp.o.d"
  "test_dist_sssp"
  "test_dist_sssp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_sssp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
