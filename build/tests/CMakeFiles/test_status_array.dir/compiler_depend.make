# Empty compiler generated dependencies file for test_status_array.
# This may be replaced when dependencies are built.
