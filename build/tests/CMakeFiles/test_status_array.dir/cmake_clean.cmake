file(REMOVE_RECURSE
  "CMakeFiles/test_status_array.dir/test_status_array.cpp.o"
  "CMakeFiles/test_status_array.dir/test_status_array.cpp.o.d"
  "test_status_array"
  "test_status_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_status_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
