file(REMOVE_RECURSE
  "CMakeFiles/test_ksp_agreement.dir/test_ksp_agreement.cpp.o"
  "CMakeFiles/test_ksp_agreement.dir/test_ksp_agreement.cpp.o.d"
  "test_ksp_agreement"
  "test_ksp_agreement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ksp_agreement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
