# Empty compiler generated dependencies file for test_ksp_agreement.
# This may be replaced when dependencies are built.
