# Empty compiler generated dependencies file for test_hop_limited.
# This may be replaced when dependencies are built.
