file(REMOVE_RECURSE
  "CMakeFiles/test_hop_limited.dir/test_hop_limited.cpp.o"
  "CMakeFiles/test_hop_limited.dir/test_hop_limited.cpp.o.d"
  "test_hop_limited"
  "test_hop_limited.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hop_limited.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
