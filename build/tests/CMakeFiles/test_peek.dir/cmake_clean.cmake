file(REMOVE_RECURSE
  "CMakeFiles/test_peek.dir/test_peek.cpp.o"
  "CMakeFiles/test_peek.dir/test_peek.cpp.o.d"
  "test_peek"
  "test_peek.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_peek.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
