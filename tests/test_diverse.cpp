#include "core/diverse.hpp"

#include <gtest/gtest.h>

#include "ksp/optyen.hpp"
#include "test_util.hpp"

namespace peek::core {
namespace {

TEST(PathSimilarity, Extremes) {
  sssp::Path a{{0, 1, 2}, 1.0};
  sssp::Path b{{0, 1, 2}, 2.0};
  sssp::Path c{{3, 4, 5}, 1.0};
  EXPECT_DOUBLE_EQ(path_similarity(a, b), 1.0);
  EXPECT_DOUBLE_EQ(path_similarity(a, c), 0.0);
}

TEST(PathSimilarity, PartialOverlap) {
  sssp::Path a{{0, 1, 2, 3}, 1.0};
  sssp::Path b{{0, 9, 8, 3}, 1.0};
  // Intersection {0,3} = 2, union = 6.
  EXPECT_NEAR(path_similarity(a, b), 2.0 / 6.0, 1e-12);
}

TEST(Diverse, ResultsAreMutuallyDiverse) {
  auto g = test::random_graph(200, 1600, 951);
  DiverseOptions opts;
  opts.k = 4;
  opts.max_similarity = 0.5;
  auto r = diverse_ksp(g, 0, 100, opts);
  if (r.paths.empty()) GTEST_SKIP() << "unreachable pair";
  test::check_ksp_invariants(g, 0, 100, r.paths);
  for (size_t i = 0; i < r.paths.size(); ++i)
    for (size_t j = 0; j < i; ++j)
      EXPECT_LE(path_similarity(r.paths[i], r.paths[j]), 0.5 + 1e-12);
}

TEST(Diverse, FirstPathIsShortest) {
  auto g = test::random_graph(150, 1200, 953);
  ksp::KspOptions ko;
  ko.k = 1;
  auto shortest = ksp::optyen_ksp(g, 0, 75, ko);
  auto r = diverse_ksp(g, 0, 75, {.k = 3});
  if (shortest.paths.empty()) {
    EXPECT_TRUE(r.paths.empty());
  } else {
    ASSERT_FALSE(r.paths.empty());
    EXPECT_NEAR(r.paths[0].dist, shortest.paths[0].dist, 1e-9);
  }
}

TEST(Diverse, SimilarityOneDegeneratesToKsp) {
  // With the ceiling at 1.0 nothing is filtered: top-k ranked paths.
  auto g = test::random_graph(100, 800, 955);
  DiverseOptions opts;
  opts.k = 5;
  opts.max_similarity = 1.0;
  auto r = diverse_ksp(g, 0, 50, opts);
  ksp::KspOptions ko;
  ko.k = 5;
  auto plain = ksp::optyen_ksp(g, 0, 50, ko);
  test::expect_same_distances(plain.paths, r.paths);
}

TEST(Diverse, ScanBudgetRespected) {
  auto g = test::random_graph(150, 1200, 957);
  DiverseOptions opts;
  opts.k = 10;
  opts.max_similarity = 0.05;  // nearly impossible
  opts.max_scanned = 20;
  auto r = diverse_ksp(g, 0, 75, opts);
  EXPECT_LE(r.scanned, 20);
}

TEST(Diverse, UnreachableAndTrivial) {
  auto g = graph::from_edges(3, {{1, 0, 1.0}});
  auto r = diverse_ksp(g, 0, 2, {});
  EXPECT_TRUE(r.paths.empty());
  EXPECT_TRUE(r.exhausted);
  EXPECT_TRUE(diverse_ksp(g, 0, 2, {.k = 0}).paths.empty());
}

TEST(Diverse, ExhaustsSmallGraph) {
  auto g = graph::from_edges(4, {{0, 1, 1.0}, {0, 2, 2.0}, {1, 3, 1.0},
                                 {2, 3, 1.0}});
  DiverseOptions opts;
  opts.k = 5;
  opts.max_similarity = 0.9;
  auto r = diverse_ksp(g, 0, 3, opts);
  EXPECT_TRUE(r.exhausted);
  EXPECT_EQ(r.paths.size(), 2u);  // both paths are diverse enough
}

}  // namespace
}  // namespace peek::core
