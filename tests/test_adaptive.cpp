#include "compact/adaptive.hpp"

#include <gtest/gtest.h>

#include "sssp/dijkstra.hpp"
#include "test_util.hpp"

namespace peek::compact {
namespace {

TEST(ChooseStrategy, ThresholdRule) {
  // m_r < alpha * m -> regeneration (§5.4).
  EXPECT_EQ(choose_strategy(10, 1000, 0.5), Strategy::kRegeneration);
  EXPECT_EQ(choose_strategy(600, 1000, 0.5), Strategy::kEdgeSwap);
  EXPECT_EQ(choose_strategy(500, 1000, 0.5), Strategy::kEdgeSwap);  // not <
  EXPECT_EQ(choose_strategy(599, 1000, 0.6), Strategy::kRegeneration);
}

TEST(ChooseStrategy, AlphaExtremes) {
  EXPECT_EQ(choose_strategy(1, 1000, 0.0), Strategy::kEdgeSwap);
  EXPECT_EQ(choose_strategy(999, 1000, 1.0), Strategy::kRegeneration);
}

TEST(ToString, Names) {
  EXPECT_STREQ(to_string(Strategy::kEdgeSwap), "edge-swap");
  EXPECT_STREQ(to_string(Strategy::kRegeneration), "regeneration");
  EXPECT_STREQ(to_string(Strategy::kStatusArray), "status-array");
}

TEST(CountRemainingEdges, MatchesManualCount) {
  auto g = test::random_graph(60, 480, 91);
  std::vector<std::uint8_t> keep(60, 1);
  for (vid_t v = 0; v < 60; v += 4) keep[v] = 0;
  auto pred = [](vid_t, vid_t, weight_t w) { return w <= 0.5; };
  eid_t manual = 0;
  for (vid_t u = 0; u < 60; ++u) {
    if (!keep[u]) continue;
    for (eid_t e = g.edge_begin(u); e < g.edge_end(u); ++e)
      if (keep[g.edge_target(e)] && g.edge_weight(e) <= 0.5) manual++;
  }
  EXPECT_EQ(count_remaining_edges(sssp::GraphView(g), keep.data(), pred),
            manual);
  EXPECT_EQ(count_remaining_edges(sssp::GraphView(g), keep.data(), pred,
                                  /*parallel=*/false),
            manual);
}

TEST(AdaptiveCompact, SmallRemainderRegenerates) {
  auto g = test::random_graph(200, 2000, 93);
  MutableCsr mc(g);
  std::vector<std::uint8_t> keep(200, 0);
  for (vid_t v = 0; v < 10; ++v) keep[v] = 1;  // keep 5% of vertices
  auto result = adaptive_compact(mc, g.num_edges(), keep.data());
  EXPECT_EQ(result.strategy, Strategy::kRegeneration);
  EXPECT_EQ(result.regenerated.graph.num_vertices(), 10);
  EXPECT_EQ(result.regenerated.graph.num_edges(), result.remaining_edges);
}

TEST(AdaptiveCompact, LargeRemainderEdgeSwaps) {
  auto g = test::random_graph(200, 2000, 95);
  MutableCsr mc(g);
  std::vector<std::uint8_t> keep(200, 1);
  keep[0] = 0;  // delete almost nothing
  auto result = adaptive_compact(mc, g.num_edges(), keep.data());
  EXPECT_EQ(result.strategy, Strategy::kEdgeSwap);
  // The swapped view exposes the surviving graph.
  EXPECT_FALSE(result.swapped.fwd.vertex_alive(0));
  EXPECT_EQ(result.swapped.fwd.count_alive_edges(), result.remaining_edges);
}

TEST(AdaptiveCompact, BothStrategiesYieldSameSssp) {
  auto g = test::random_graph(150, 1500, 97);
  std::vector<std::uint8_t> keep(150, 1);
  for (vid_t v = 100; v < 150; ++v) keep[v] = 0;
  keep[0] = keep[1] = 1;

  MutableCsr swap_g(g);
  AdaptiveOptions force_swap;
  force_swap.alpha = 0.0;  // never regenerate
  auto swapped = adaptive_compact(swap_g, g.num_edges(), keep.data(), nullptr,
                                  force_swap);
  ASSERT_EQ(swapped.strategy, Strategy::kEdgeSwap);

  MutableCsr regen_g(g);
  AdaptiveOptions force_regen;
  force_regen.alpha = 1.0;  // always regenerate
  auto regen = adaptive_compact(regen_g, g.num_edges(), keep.data(), nullptr,
                                force_regen);
  ASSERT_EQ(regen.strategy, Strategy::kRegeneration);

  auto a = sssp::dijkstra(swapped.swapped.fwd, 0);
  auto b = sssp::dijkstra(sssp::GraphView(regen.regenerated.graph),
                          regen.regenerated.map.to_new(0));
  for (vid_t v = 0; v < 150; ++v) {
    if (!keep[v]) continue;
    const vid_t nv = regen.regenerated.map.to_new(v);
    if (a.dist[v] == kInfDist) EXPECT_EQ(b.dist[nv], kInfDist) << v;
    else EXPECT_NEAR(a.dist[v], b.dist[nv], 1e-9) << v;
  }
}

}  // namespace
}  // namespace peek::compact
