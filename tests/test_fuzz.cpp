// Model-based randomized tests: each component is driven with random
// operation sequences and checked against a trivially correct reference
// model after every step (or at checkpoints).
//
// Reproducibility: every test logs the seed it actually ran with, and
// setting PEEK_FUZZ_SEED=<n> in the environment overrides all seeds — so a
// CI failure line like "fuzz seed: 3" reproduces locally with
// `PEEK_FUZZ_SEED=3 ./test_fuzz`.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <random>
#include <set>

#include "dyn/dynamic_graph.hpp"
#include "dyn/dynamic_sssp.hpp"
#include "ksp/path_set.hpp"
#include "test_util.hpp"

namespace peek {
namespace {

/// The seed a fuzz case runs with: PEEK_FUZZ_SEED (decimal) when set —
/// deterministic repro of a specific failure — otherwise `fallback` (the
/// suite's parameter). Always echoed into the test log via SCOPED_TRACE at
/// the call site so any assertion failure carries the seed.
std::uint64_t fuzz_seed(std::uint64_t fallback) {
  if (const char* env = std::getenv("PEEK_FUZZ_SEED")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') return static_cast<std::uint64_t>(v);
    ADD_FAILURE() << "PEEK_FUZZ_SEED is not a decimal integer: " << env;
  }
  return fallback;
}

#define PEEK_FUZZ_SEED_TRACE(var) \
  SCOPED_TRACE(::testing::Message() << "fuzz seed: " << (var))

// ---------------------------------------------------------------------------
// DynamicGraph vs a map<pair, multiset<weight>> reference model.

class DynamicGraphFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DynamicGraphFuzz, MatchesReferenceModel) {
  constexpr vid_t kN = 40;
  const std::uint64_t seed = fuzz_seed(GetParam());
  PEEK_FUZZ_SEED_TRACE(seed);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<vid_t> pick(0, kN - 1);
  std::uniform_int_distribution<int> op(0, 99);
  std::uniform_real_distribution<double> wgt(0.1, 2.0);

  dyn::DynamicGraph g(kN);
  std::map<std::pair<vid_t, vid_t>, int> model;  // edge -> multiplicity
  std::set<vid_t> dead;

  for (int step = 0; step < 3000; ++step) {
    const int o = op(rng);
    const vid_t u = pick(rng), v = pick(rng);
    if (o < 55) {  // insert
      if (dead.count(u) || dead.count(v)) continue;
      g.insert_edge(u, v, wgt(rng));
      model[{u, v}]++;
    } else if (o < 90) {  // delete edge
      const bool did = g.delete_edge(u, v);
      auto it = model.find({u, v});
      const bool expected = it != model.end() && it->second > 0 && !dead.count(u);
      EXPECT_EQ(did, expected) << "step " << step;
      if (did && it != model.end() && --it->second == 0) model.erase(it);
    } else if (o < 95 && dead.size() < kN / 2) {  // delete vertex
      g.delete_vertex(u);
      if (!dead.count(u)) {
        for (auto it = model.begin(); it != model.end();) {
          if (it->first.first == u) it = model.erase(it);
          else ++it;
        }
        dead.insert(u);
      }
    } else {  // checkpoint: degrees match the model
      eid_t expected_deg = 0;
      for (const auto& [e, count] : model)
        if (e.first == u) expected_deg += count;
      if (dead.count(u)) expected_deg = 0;
      EXPECT_EQ(g.out_degree(u), expected_deg) << "step " << step;
    }
  }
  // Final full comparison of live edges (dead targets are hidden).
  for (vid_t u = 0; u < kN; ++u) {
    std::map<vid_t, int> seen;
    g.for_each_neighbor(u, [&](vid_t w, weight_t) { seen[w]++; });
    std::map<vid_t, int> expected;
    for (const auto& [e, count] : model) {
      if (e.first == u && !dead.count(e.second)) expected[e.second] += count;
    }
    EXPECT_EQ(seen, expected) << "vertex " << u;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicGraphFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---------------------------------------------------------------------------
// After random mutations, SSSP over the container equals SSSP over its
// re-packed CSR.

class DynamicSsspFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DynamicSsspFuzz, SsspMatchesRepackedCsr) {
  const std::uint64_t seed = fuzz_seed(GetParam());
  PEEK_FUZZ_SEED_TRACE(seed);
  auto base = test::random_graph(60, 400, seed);
  dyn::DynamicGraph g(base);
  std::mt19937_64 rng(seed * 31);
  std::uniform_int_distribution<vid_t> pick(0, 59);
  for (int i = 0; i < 150; ++i) {
    const vid_t u = pick(rng), v = pick(rng);
    if (i % 7 == 0) g.delete_vertex(pick(rng));
    else g.delete_edge(u, v);
  }
  auto repacked = g.to_csr();
  auto a = dyn::dynamic_dijkstra(g, 0);
  auto b = sssp::dijkstra(sssp::GraphView(repacked), 0);
  for (vid_t v = 0; v < 60; ++v) {
    if (g.vertex_alive(0) && b.dist[v] != kInfDist) {
      EXPECT_NEAR(a.dist[v], b.dist[v], 1e-9) << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicSsspFuzz,
                         ::testing::Values(11u, 12u, 13u, 14u));

// ---------------------------------------------------------------------------
// CandidateSet vs a sorted reference multiset.

TEST(CandidateSetFuzz, PopsGlobalMinimumAlways) {
  const std::uint64_t seed = fuzz_seed(99);
  PEEK_FUZZ_SEED_TRACE(seed);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> d(0, 10);
  std::uniform_int_distribution<vid_t> pick(0, 30);
  ksp::CandidateSet cs;
  std::multimap<double, std::vector<vid_t>> model;
  std::set<std::vector<vid_t>> ever;
  for (int step = 0; step < 2000; ++step) {
    if (step % 3 != 2) {
      sssp::Path p;
      p.verts = {0, pick(rng), pick(rng), 31};
      p.dist = d(rng);
      const bool fresh = ever.insert(p.verts).second;
      auto verts = p.verts;
      const double dist = p.dist;
      EXPECT_EQ(cs.push(std::move(p), 0), fresh);
      if (fresh) model.insert({dist, verts});
    } else if (!model.empty()) {
      auto got = cs.pop_min();
      ASSERT_TRUE(got.has_value());
      EXPECT_NEAR(got->path.dist, model.begin()->first, 1e-12);
      // Remove the matching model entry (same verts).
      auto [lo, hi] = model.equal_range(got->path.dist);
      bool erased = false;
      for (auto it = lo; it != hi; ++it) {
        if (it->second == got->path.verts) {
          model.erase(it);
          erased = true;
          break;
        }
      }
      EXPECT_TRUE(erased);
    }
  }
}

}  // namespace
}  // namespace peek
