// Compile-and-smoke test for the umbrella header: every public symbol used
// through the single include.
#include "peek.hpp"

#include <gtest/gtest.h>

namespace peek {
namespace {

TEST(Umbrella, EverySubsystemReachable) {
  auto g = graph::rmat(8, 4);
  EXPECT_GT(g.num_edges(), 0);
  auto scc = graph::strongly_connected_components(g);
  EXPECT_GT(scc.num_components, 0);

  auto sp = sssp::dijkstra(sssp::GraphView(g), 0);
  auto bd = sssp::bidirectional_dijkstra(g, 0, 100);
  if (sp.dist[100] != kInfDist) {
    EXPECT_NEAR(bd.dist, sp.dist[100], 1e-9);
  }

  core::PeekOptions po;
  po.k = 3;
  auto r = core::peek_ksp(g, 0, 100, po);
  ksp::KspOptions ko;
  ko.k = 3;
  auto y = ksp::yen_ksp(g, 0, 100, ko);
  ASSERT_EQ(r.ksp.paths.size(), y.paths.size());
  for (size_t i = 0; i < y.paths.size(); ++i)
    EXPECT_NEAR(r.ksp.paths[i].dist, y.paths[i].dist, 1e-9);

  dyn::DynamicGraph dg(g);
  EXPECT_EQ(dg.num_edges(), g.num_edges());
}

}  // namespace
}  // namespace peek
