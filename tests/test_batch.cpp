#include "core/batch.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace peek::core {
namespace {

TEST(Batch, MatchesIndividualQueries) {
  auto g = test::random_graph(120, 960, 911);
  std::vector<BatchQuery> queries{{0, 60}, {1, 61}, {2, 62}, {3, 63}};
  BatchOptions bo;
  bo.per_query.k = 6;
  auto batch = peek_ksp_batch(g, queries, bo);
  ASSERT_EQ(batch.results.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    PeekOptions po;
    po.k = 6;
    auto solo = peek_ksp(g, queries[i].s, queries[i].t, po);
    test::expect_same_distances(solo.ksp.paths, batch.results[i].ksp.paths);
  }
}

TEST(Batch, ParallelQueriesMatchSerial) {
  auto g = test::random_graph(150, 1200, 913);
  std::vector<BatchQuery> queries;
  for (vid_t i = 0; i < 8; ++i) queries.push_back({i, static_cast<vid_t>(75 + i)});
  BatchOptions serial;
  serial.per_query.k = 5;
  BatchOptions parallel = serial;
  parallel.parallel_queries = true;
  auto a = peek_ksp_batch(g, queries, serial);
  auto b = peek_ksp_batch(g, queries, parallel);
  for (size_t i = 0; i < queries.size(); ++i)
    test::expect_same_distances(a.results[i].ksp.paths,
                                b.results[i].ksp.paths);
}

TEST(Batch, EmptyQueryList) {
  auto g = test::random_graph(20, 60, 915);
  auto r = peek_ksp_batch(g, {});
  EXPECT_TRUE(r.results.empty());
  EXPECT_GE(r.wall_seconds, 0.0);
}

TEST(Batch, MixedReachability) {
  // 0 -> 1, 2 isolated: one solvable query, one empty.
  auto g = graph::from_edges(3, {{0, 1, 1.0}});
  std::vector<BatchQuery> queries{{0, 1}, {0, 2}};
  auto r = peek_ksp_batch(g, queries);
  EXPECT_EQ(r.results[0].ksp.paths.size(), 1u);
  EXPECT_TRUE(r.results[1].ksp.paths.empty());
}

}  // namespace
}  // namespace peek::core
