#include "dist/partition.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace peek::dist {
namespace {

TEST(PartitionPoints, CoverExactly) {
  auto pts = partition_points(10, 3);
  ASSERT_EQ(pts.size(), 4u);
  EXPECT_EQ(pts.front(), 0);
  EXPECT_EQ(pts.back(), 10);
  for (size_t i = 0; i + 1 < pts.size(); ++i) EXPECT_LE(pts[i], pts[i + 1]);
}

TEST(PartitionPoints, MoreRanksThanVertices) {
  auto pts = partition_points(2, 5);
  EXPECT_EQ(pts.back(), 2);
}

TEST(OwnerOf, Consistency) {
  const vid_t n = 103;
  const int ranks = 7;
  auto pts = partition_points(n, ranks);
  for (vid_t v = 0; v < n; ++v) {
    const int o = owner_of(v, pts);
    EXPECT_GE(v, pts[static_cast<size_t>(o)]);
    EXPECT_LT(v, pts[static_cast<size_t>(o) + 1]);
  }
}

TEST(LocalGraph, SlicesCoverAllEdges) {
  auto g = test::random_graph(60, 480, 601);
  const int ranks = 4;
  eid_t total = 0;
  for (int r = 0; r < ranks; ++r) {
    auto lg = make_local_graph(g, r, ranks);
    EXPECT_EQ(lg.rank, r);
    EXPECT_EQ(lg.n_global, 60);
    total += static_cast<eid_t>(lg.col.size());
    // Row structure matches the global graph.
    for (vid_t lv = 0; lv < lg.owned(); ++lv) {
      const vid_t gv = lg.to_global(lv);
      EXPECT_EQ(lg.row[lv + 1] - lg.row[lv], g.degree(gv));
    }
  }
  EXPECT_EQ(total, g.num_edges());
}

TEST(LocalGraph, OwnershipHelpers) {
  auto g = test::random_graph(20, 100, 603);
  auto lg = make_local_graph(g, 1, 4);
  EXPECT_TRUE(lg.owns(lg.begin));
  EXPECT_FALSE(lg.owns(lg.end));
  EXPECT_EQ(lg.to_global(lg.to_local(lg.begin)), lg.begin);
}

TEST(LocalGraph, ReverseSliceMatchesTranspose) {
  auto g = test::random_graph(30, 200, 605);
  const auto& rev = g.reverse();
  auto lg = make_local_reverse_graph(g, 0, 3);
  for (vid_t lv = 0; lv < lg.owned(); ++lv) {
    EXPECT_EQ(lg.row[lv + 1] - lg.row[lv], rev.degree(lg.to_global(lv)));
  }
}

}  // namespace
}  // namespace peek::dist
