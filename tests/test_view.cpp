#include "sssp/view.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "test_util.hpp"

namespace peek::sssp {
namespace {

TEST(GraphView, PlainViewMirrorsCsr) {
  auto g = graph::from_edges(3, {{0, 1, 1.0}, {0, 2, 2.0}, {1, 2, 3.0}});
  GraphView v(g);
  EXPECT_EQ(v.num_vertices(), 3);
  EXPECT_EQ(v.edge_end(0) - v.edge_begin(0), 2);
  EXPECT_TRUE(v.vertex_alive(2));
  EXPECT_TRUE(v.edge_alive(0));
  EXPECT_DOUBLE_EQ(v.max_edge_weight(), 3.0);
  EXPECT_EQ(v.count_alive_edges(), 3);
}

TEST(GraphView, StatusMasksFilter) {
  auto g = graph::from_edges(3, {{0, 1, 1.0}, {0, 2, 2.0}, {1, 2, 3.0}});
  std::vector<std::uint8_t> valive{1, 0, 1};  // kill vertex 1
  std::vector<std::uint8_t> ealive{1, 1, 1};
  GraphView v(g, valive.data(), ealive.data());
  EXPECT_FALSE(v.vertex_alive(1));
  // count_alive_edges skips edges to/from dead vertices.
  EXPECT_EQ(v.count_alive_edges(), 1);  // only 0 -> 2 survives
  EXPECT_DOUBLE_EQ(v.max_edge_weight(), 2.0);
}

TEST(GraphView, EdgeMaskFilters) {
  auto g = graph::from_edges(2, {{0, 1, 1.0}});
  std::vector<std::uint8_t> ealive{0};
  GraphView v(g, nullptr, ealive.data());
  EXPECT_FALSE(v.edge_alive(0));
  EXPECT_EQ(v.count_alive_edges(), 0);
  EXPECT_EQ(v.find_edge(0, 1), kNoEdge);
}

TEST(GraphView, FindEdgeHonoursValidCount) {
  auto g = graph::from_edges(2, {{0, 1, 1.0}});
  std::vector<eid_t> count{0, 0};  // pretend all edges swapped out
  GraphView v(2, g.row_offsets().data(), g.col().data(), g.weights().data(),
              count.data(), nullptr, nullptr);
  EXPECT_EQ(v.edge_end(0), v.edge_begin(0));
  EXPECT_EQ(v.find_edge(0, 1), kNoEdge);
}

TEST(BiView, OfBuildsBothOrientations) {
  auto g = graph::from_edges(2, {{0, 1, 1.5}});
  BiView bv = BiView::of(g);
  EXPECT_NE(bv.fwd.find_edge(0, 1), kNoEdge);
  EXPECT_EQ(bv.fwd.find_edge(1, 0), kNoEdge);
  EXPECT_NE(bv.rev.find_edge(1, 0), kNoEdge);
  EXPECT_DOUBLE_EQ(bv.rev.edge_weight(bv.rev.find_edge(1, 0)), 1.5);
}

}  // namespace
}  // namespace peek::sssp
