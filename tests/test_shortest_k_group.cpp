#include "core/shortest_k_group.hpp"

#include <gtest/gtest.h>

#include "ksp/bruteforce.hpp"
#include "test_util.hpp"

namespace peek::core {
namespace {

TEST(ShortestKGroup, UnitWeightDiamondGroups) {
  // 0 -> {1,2} -> 3 with unit weights: one group of two paths (dist 2).
  auto g = graph::from_edges(4, {{0, 1, 1.0}, {0, 2, 1.0}, {1, 3, 1.0},
                                 {2, 3, 1.0}});
  auto r = shortest_k_groups(g, 0, 3, 2);
  EXPECT_TRUE(r.complete);
  ASSERT_EQ(r.groups.size(), 1u);  // only one distance exists
  EXPECT_DOUBLE_EQ(r.groups[0].dist, 2.0);
  EXPECT_EQ(r.groups[0].paths.size(), 2u);
}

TEST(ShortestKGroup, GroupsAreCompleteAndOrdered) {
  auto g = test::random_graph(26, 70, 401, /*unit_weights=*/true);
  auto r = shortest_k_groups(g, 0, 13, 3);
  if (r.groups.empty()) GTEST_SKIP() << "unreachable pair";
  EXPECT_TRUE(r.complete);
  EXPECT_LE(r.groups.size(), 3u);
  for (size_t i = 0; i < r.groups.size(); ++i) {
    if (i > 0) {
      EXPECT_GT(r.groups[i].dist, r.groups[i - 1].dist);
    }
    for (const auto& p : r.groups[i].paths)
      EXPECT_DOUBLE_EQ(p.dist, r.groups[i].dist);
  }
  // Completeness against the oracle: the i-th group holds ALL simple paths
  // of its distance.
  auto all = ksp::enumerate_all_simple_paths(sssp::GraphView(g), 0, 13);
  for (const auto& grp : r.groups) {
    size_t expected = 0;
    for (const auto& p : all)
      if (std::abs(p.dist - grp.dist) < 1e-9) expected++;
    EXPECT_EQ(grp.paths.size(), expected) << "dist " << grp.dist;
  }
}

TEST(ShortestKGroup, KZero) {
  auto g = graph::from_edges(2, {{0, 1, 1.0}});
  auto r = shortest_k_groups(g, 0, 1, 0);
  EXPECT_TRUE(r.groups.empty());
  EXPECT_TRUE(r.complete);
}

TEST(ShortestKGroup, ExhaustedPathSpace) {
  auto g = graph::path(5, {graph::WeightKind::kUnit, 1});
  auto r = shortest_k_groups(g, 0, 4, 5);
  EXPECT_TRUE(r.complete);
  ASSERT_EQ(r.groups.size(), 1u);
  EXPECT_EQ(r.groups[0].paths.size(), 1u);
}

TEST(ShortestKGroup, UnreachablePair) {
  auto g = graph::from_edges(3, {{1, 2, 1.0}});
  auto r = shortest_k_groups(g, 0, 2, 2);
  EXPECT_TRUE(r.groups.empty());
}

TEST(ShortestKGroup, DistinctRealWeightsGiveSingletonGroups) {
  auto g = test::random_graph(36, 260, 403);  // continuous weights: ties
                                              // have measure zero
  auto r = shortest_k_groups(g, 0, 18, 4);
  if (r.groups.empty()) GTEST_SKIP() << "unreachable pair";
  for (const auto& grp : r.groups) EXPECT_EQ(grp.paths.size(), 1u);
}

}  // namespace
}  // namespace peek::core
