// Shared test helpers: tiny reference graphs (including the paper's Figure 2
// running example), random-graph factories, and KSP result checkers.
#pragma once

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <string>
#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "ksp/path_set.hpp"
#include "sssp/path.hpp"

namespace peek::test {

/// The running example of Figures 2/3/5: 16 vertices a..t (no h/k/m/n),
/// source s, target t. Vertex ids follow the alphabet order used below.
struct PaperExample {
  graph::CsrGraph g;
  vid_t s, t;
  std::map<std::string, vid_t> id;
};

inline PaperExample paper_example_graph() {
  // Alphabetic id assignment for {a,b,c,d,e,f,g,i,j,l,o,p,q,r,s,t}.
  const std::vector<std::string> names = {"a", "b", "c", "d", "e", "f",
                                          "g", "i", "j", "l", "o", "p",
                                          "q", "r", "s", "t"};
  std::map<std::string, vid_t> id;
  for (size_t i = 0; i < names.size(); ++i)
    id[names[i]] = static_cast<vid_t>(i);
  graph::Builder b(static_cast<vid_t>(names.size()));
  auto E = [&](const std::string& u, const std::string& v, weight_t w) {
    b.add_edge(id.at(u), id.at(v), w);
  };
  // Edge list reconstructed from Figures 2(a)/3/5(a). The adjacency structure
  // follows the CSR of Figure 5(a):
  //   a:{b,s} b:{} c:{b} d:{s} e:{o} f:{g,i,j,p} g:{f,l} i:{j,l} j:{i,l,p,t}
  //   l:{o,q,t} o:{r} p:{} q:{t} r:{l} s:{e,f,g} t:{}
  // and the weights are chosen to reproduce the figure's published numbers
  // exactly: KSP(K=3) = {s f j t: 11, s g l t: 12, s g l q t: 14}, upper
  // bound b = 14, kept set {s, g, l, f, j, q, t}, pruned
  // {a, b, c, d, e, i, o, p, r} (a..d unreachable, the rest by spSum > b).
  E("a", "b", 3);  E("a", "s", 1);
  E("c", "b", 8);
  E("d", "s", 1);
  E("e", "o", 8);
  E("f", "g", 8);  E("f", "i", 7);  E("f", "j", 1);  E("f", "p", 3);
  E("g", "f", 8);  E("g", "l", 4);
  E("i", "j", 2);  E("i", "l", 5);
  E("j", "i", 3);  E("j", "l", 3);  E("j", "p", 2);  E("j", "t", 2);
  E("l", "o", 2);  E("l", "q", 3);  E("l", "t", 4);
  E("o", "r", 3);
  E("q", "t", 3);
  E("r", "l", 1);
  E("s", "e", 3);  E("s", "f", 8);  E("s", "g", 4);
  return {b.build(), id.at("s"), id.at("t"), std::move(id)};
}

/// Small random digraph guaranteed to be KSP-testable (s can often reach t).
inline graph::CsrGraph random_graph(vid_t n, eid_t m, std::uint64_t seed,
                                    bool unit_weights = false) {
  graph::WeightOptions w;
  w.kind = unit_weights ? graph::WeightKind::kUnit
                        : graph::WeightKind::kUniform01;
  w.seed = seed * 77 + 13;
  return graph::erdos_renyi(n, m, w, seed);
}

/// Asserts every structural invariant of a KSP answer: simple paths, correct
/// endpoints, correctly priced, strictly increasing... (non-decreasing)
/// distances, no duplicates.
inline void check_ksp_invariants(const graph::CsrGraph& g, vid_t s, vid_t t,
                                 const std::vector<sssp::Path>& paths) {
  for (size_t i = 0; i < paths.size(); ++i) {
    const auto& p = paths[i];
    ASSERT_FALSE(p.verts.empty());
    EXPECT_EQ(p.verts.front(), s);
    EXPECT_EQ(p.verts.back(), t);
    EXPECT_TRUE(sssp::is_simple(p)) << sssp::to_string(p);
    const weight_t d = sssp::path_distance(g, p.verts);
    EXPECT_NEAR(d, p.dist, 1e-9) << sssp::to_string(p);
    if (i > 0) {
      EXPECT_GE(p.dist + 1e-12, paths[i - 1].dist);
    }
    for (size_t j = 0; j < i; ++j)
      EXPECT_FALSE(paths[j].verts == p.verts) << "duplicate path";
  }
}

/// Distance multisets must agree (tie-breaking may legitimately differ
/// between algorithms, path distances may not).
inline void expect_same_distances(const std::vector<sssp::Path>& a,
                                  const std::vector<sssp::Path>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(a[i].dist, b[i].dist, 1e-9) << "position " << i;
}

}  // namespace peek::test
