#include "ksp/path_set.hpp"

#include <gtest/gtest.h>

namespace peek::ksp {
namespace {

Path make(std::vector<vid_t> verts, weight_t d) { return {std::move(verts), d}; }

TEST(CandidateSet, PopsInDistanceOrder) {
  CandidateSet cs;
  cs.push(make({0, 2, 9}, 3.0), 1);
  cs.push(make({0, 1, 9}, 1.0), 0);
  cs.push(make({0, 3, 9}, 2.0), 2);
  EXPECT_DOUBLE_EQ(cs.pop_min()->path.dist, 1.0);
  EXPECT_DOUBLE_EQ(cs.pop_min()->path.dist, 2.0);
  EXPECT_DOUBLE_EQ(cs.pop_min()->path.dist, 3.0);
  EXPECT_FALSE(cs.pop_min().has_value());
}

TEST(CandidateSet, LexicographicTieBreak) {
  CandidateSet cs;
  cs.push(make({0, 5, 9}, 1.0), 0);
  cs.push(make({0, 2, 9}, 1.0), 0);
  EXPECT_EQ(cs.pop_min()->path.verts[1], 2);
  EXPECT_EQ(cs.pop_min()->path.verts[1], 5);
}

TEST(CandidateSet, DeduplicatesForever) {
  CandidateSet cs;
  EXPECT_TRUE(cs.push(make({0, 1}, 1.0), 0));
  EXPECT_FALSE(cs.push(make({0, 1}, 1.0), 0));
  cs.pop_min();
  // Even after popping, re-insertion is rejected (Algorithm 1 line 9).
  EXPECT_FALSE(cs.push(make({0, 1}, 1.0), 0));
  EXPECT_EQ(cs.total_generated(), 1u);
}

TEST(CandidateSet, RejectsEmptyPath) {
  CandidateSet cs;
  EXPECT_FALSE(cs.push(Path{}, 0));
  EXPECT_TRUE(cs.empty());
}

TEST(CandidateSet, KeepsDeviationIndex) {
  CandidateSet cs;
  cs.push(make({0, 1, 2}, 1.0), 7);
  EXPECT_EQ(cs.pop_min()->dev_index, 7);
}

TEST(CandidateSet, SizeTracksHeap) {
  CandidateSet cs;
  cs.push(make({0, 1}, 1.0), 0);
  cs.push(make({0, 2}, 2.0), 0);
  EXPECT_EQ(cs.size(), 2u);
  cs.pop_min();
  EXPECT_EQ(cs.size(), 1u);
  EXPECT_EQ(cs.total_generated(), 2u);
}

}  // namespace
}  // namespace peek::ksp
