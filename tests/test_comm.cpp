#include "dist/comm.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>

#include "core/peek.hpp"
#include "dist/dist_peek.hpp"
#include "fault/injector.hpp"
#include "obs/metrics.hpp"
#include "test_util.hpp"

namespace peek::dist {
namespace {

TEST(Comm, RankAndSize) {
  std::atomic<int> seen{0};
  run_ranks(4, [&](Comm& c) {
    EXPECT_EQ(c.size(), 4);
    EXPECT_GE(c.rank(), 0);
    EXPECT_LT(c.rank(), 4);
    seen.fetch_add(1);
  });
  EXPECT_EQ(seen.load(), 4);
}

TEST(Comm, PointToPoint) {
  run_ranks(2, [](Comm& c) {
    if (c.rank() == 0) {
      c.send<int>(1, 7, {1, 2, 3});
      auto back = c.recv<int>(1, 8);
      EXPECT_EQ(back, (std::vector<int>{6}));
    } else {
      auto v = c.recv<int>(0, 7);
      EXPECT_EQ(v, (std::vector<int>{1, 2, 3}));
      c.send<int>(0, 8, {std::accumulate(v.begin(), v.end(), 0)});
    }
  });
}

TEST(Comm, TagsMatchIndependently) {
  // Messages with different tags must not cross-match even when the low-tag
  // one is sent last.
  run_ranks(2, [](Comm& c) {
    if (c.rank() == 0) {
      c.send<int>(1, 20, {20});
      c.send<int>(1, 10, {10});
    } else {
      EXPECT_EQ(c.recv<int>(0, 10)[0], 10);
      EXPECT_EQ(c.recv<int>(0, 20)[0], 20);
    }
  });
}

TEST(Comm, SelfSend) {
  run_ranks(1, [](Comm& c) {
    c.send<double>(0, 1, {3.5});
    EXPECT_DOUBLE_EQ(c.recv<double>(0, 1)[0], 3.5);
  });
}

TEST(Comm, EmptyPayload) {
  run_ranks(2, [](Comm& c) {
    if (c.rank() == 0) c.send<int>(1, 1, {});
    else EXPECT_TRUE(c.recv<int>(0, 1).empty());
  });
}

TEST(Comm, BarrierIsReusable) {
  std::atomic<int> phase_sum{0};
  run_ranks(3, [&](Comm& c) {
    for (int round = 0; round < 5; ++round) {
      phase_sum.fetch_add(1);
      c.barrier();
      // After each barrier everyone observed all increments of the round.
      EXPECT_EQ(phase_sum.load() % 3, 0);
      c.barrier();
    }
  });
}

TEST(Comm, Allgather) {
  run_ranks(4, [](Comm& c) {
    auto all = c.allgather(c.rank() * 10);
    EXPECT_EQ(all, (std::vector<int>{0, 10, 20, 30}));
  });
}

TEST(Comm, Allgatherv) {
  run_ranks(3, [](Comm& c) {
    std::vector<int> mine(static_cast<size_t>(c.rank()), c.rank());
    auto all = c.allgatherv(mine);
    ASSERT_EQ(all.size(), 3u);
    EXPECT_TRUE(all[0].empty());
    EXPECT_EQ(all[1], (std::vector<int>{1}));
    EXPECT_EQ(all[2], (std::vector<int>{2, 2}));
  });
}

TEST(Comm, Reductions) {
  run_ranks(4, [](Comm& c) {
    EXPECT_EQ(c.allreduce_sum(c.rank() + 1), 10);
    EXPECT_EQ(c.allreduce_min(10 - c.rank()), 7);
    EXPECT_DOUBLE_EQ(c.allreduce_sum(0.5), 2.0);
  });
}

TEST(Comm, Broadcast) {
  run_ranks(3, [](Comm& c) {
    std::vector<int> mine =
        c.rank() == 1 ? std::vector<int>{4, 5, 6} : std::vector<int>{};
    auto got = c.broadcast(mine, 1);
    EXPECT_EQ(got, (std::vector<int>{4, 5, 6}));
  });
}

TEST(Comm, AllToAll) {
  run_ranks(3, [](Comm& c) {
    // Rank r sends {r*10 + dest} to each dest.
    std::vector<std::vector<int>> out(3);
    for (int d = 0; d < 3; ++d) out[d] = {c.rank() * 10 + d};
    auto in = c.all_to_all(out, 42);
    for (int src = 0; src < 3; ++src)
      EXPECT_EQ(in[src], (std::vector<int>{src * 10 + c.rank()}));
  });
}

TEST(Comm, ExceptionPropagates) {
  EXPECT_THROW(run_ranks(2, [](Comm& c) {
                 if (c.rank() == 1) throw std::runtime_error("boom");
                 // rank 0 exits normally without waiting
               }),
               std::runtime_error);
}

TEST(Comm, StressManyRanksCollectives) {
  run_ranks(16, [](Comm& c) {
    for (int i = 0; i < 10; ++i) {
      const int total = c.allreduce_sum(1);
      EXPECT_EQ(total, 16);
    }
  });
}

// --------------------------------------------------- retry with backoff --

/// RetryOptions with a fast, recorded sleep (no real waiting in tests).
RetryOptions recorded_retry(std::vector<std::chrono::nanoseconds>* log) {
  RetryOptions r;
  r.max_attempts = 5;
  r.base_delay = std::chrono::nanoseconds(1000);
  r.seed = 7;
  r.sleep = [log](std::chrono::nanoseconds d) { log->push_back(d); };
  return r;
}

TEST(Retry, BackoffScheduleIsDeterministic) {
  std::vector<std::chrono::nanoseconds> slept;
  auto opts = recorded_retry(&slept);
  int calls = 0;
  const int v = with_retry(
      [&] {
        if (++calls < 4) throw TransientError("flaky");
        return 42;
      },
      opts);
  EXPECT_EQ(v, 42);
  EXPECT_EQ(calls, 4);
  // The sleeps are exactly the pure schedule, in order.
  ASSERT_EQ(slept.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(slept[i], backoff_delay(opts, i));
  // Jitter (0.1) never cancels the 2x growth: strictly increasing delays.
  EXPECT_LT(slept[0], slept[1]);
  EXPECT_LT(slept[1], slept[2]);
}

TEST(Retry, LastFailurePropagatesAfterMaxAttempts) {
  std::vector<std::chrono::nanoseconds> slept;
  auto opts = recorded_retry(&slept);
  int calls = 0;
  EXPECT_THROW(with_retry(
                   [&]() -> int {
                     ++calls;
                     throw TransientError("always");
                   },
                   opts),
               TransientError);
  EXPECT_EQ(calls, opts.max_attempts);
  EXPECT_EQ(slept.size(), static_cast<size_t>(opts.max_attempts - 1));
}

TEST(Retry, NonTransientErrorsPropagateImmediately) {
  std::vector<std::chrono::nanoseconds> slept;
  auto opts = recorded_retry(&slept);
  int calls = 0;
  EXPECT_THROW(with_retry(
                   [&]() -> int {
                     ++calls;
                     throw std::logic_error("bug, not weather");
                   },
                   opts),
               std::logic_error);
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(slept.empty());
}

TEST(Retry, CountsRetryAttemptsMetric) {
  auto& counter = obs::MetricsRegistry::global().counter("dist.retry.attempts");
  const std::int64_t before = counter.value();
  std::vector<std::chrono::nanoseconds> slept;
  auto opts = recorded_retry(&slept);
  int calls = 0;
  (void)with_retry(
      [&] {
        if (++calls < 3) throw TransientError("flaky");
        return 0;
      },
      opts);
  EXPECT_EQ(counter.value() - before, 2);
}

// ------------------------------------- injected transport-level faults --

/// Fast-backoff options for injected-fault rides (sleeps stay real but tiny;
/// max_attempts is generous because the injector can fire several times in a
/// row on one logical send).
RetryOptions fast_retry() {
  RetryOptions r;
  r.max_attempts = 12;
  r.base_delay = std::chrono::nanoseconds(1000);
  return r;
}

TEST(Comm, ReliableExchangeRidesThroughInjectedSendFaults) {
  fault::InjectorConfig cfg;
  cfg.enabled = true;
  cfg.seed = 9;
  cfg.rate_permille = 300;
  cfg.site_filter = "dist.comm.send";
  fault::Injector::global().configure(cfg);
  const std::int64_t before =
      obs::MetricsRegistry::global().counter("dist.retry.attempts").value();

  run_ranks(4, [](Comm& c) {
    std::vector<std::vector<int>> out(4);
    for (int d = 0; d < 4; ++d) out[d] = {c.rank() * 10 + d};
    auto in = c.all_to_all_reliable(out, 42, fast_retry());
    for (int src = 0; src < 4; ++src)
      EXPECT_EQ(in[src], (std::vector<int>{src * 10 + c.rank()}));
  });

  // The probe fired (a dropped send was retried), yet every payload arrived
  // exactly once — send failures happen before enqueue, so retries never
  // duplicate a message.
  EXPECT_GT(fault::Injector::global().total_fired(), 0);
  EXPECT_GT(
      obs::MetricsRegistry::global().counter("dist.retry.attempts").value(),
      before);
  fault::Injector::global().disable();
}

TEST(DistPeek, MatchesSerialUnderInjectedSendFaults) {
  auto g = test::random_graph(60, 420, 23);
  const vid_t s = 0, t = 59;
  core::PeekOptions po;
  po.k = 4;
  auto serial = core::peek_ksp(g, s, t, po);

  fault::InjectorConfig cfg;
  cfg.enabled = true;
  cfg.seed = 4;
  cfg.rate_permille = 150;
  cfg.site_filter = "dist.comm.send";
  fault::Injector::global().configure(cfg);

  DistPeekOptions dopts;
  dopts.k = 4;
  dopts.retry = fast_retry();
  run_ranks(3, [&](Comm& c) {
    auto r = dist_peek_ksp(c, g, s, t, dopts);
    test::expect_same_distances(r.ksp.paths, serial.ksp.paths);
  });
  fault::Injector::global().disable();
}

}  // namespace
}  // namespace peek::dist
