// Live-mutation pipeline (DESIGN.md §15): cone thresholds, repair-seeded
// recovery, pair impact classification, bounded-staleness serving, crash
// fallback, and fleet-wide epoch fencing.
//
// The load-bearing properties proved here:
//   - cone_threshold is sound: every vertex outside the cone keeps its exact
//     pre-mutation distance, and repair_trees produces a tree bit-identical
//     to a from-scratch Dijkstra on the post-mutation graph.
//   - pair_impact is sound: unaffected pairs answer bit-identically across
//     the mutation; reweight-affected pairs move each order statistic by at
//     most weight_bound.
//   - Every stale answer the engine serves carries a bound the true
//     post-mutation answer respects, and a repair crash falls back to full
//     recompute — never an unbounded-stale answer.
//
// The injector and the metrics registry are process-global, so injector
// tests read metrics as before/after deltas and disable injection on
// teardown (same discipline as tests/test_fault.cpp).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <random>
#include <thread>
#include <utility>
#include <vector>

#include "core/peek.hpp"
#include "dyn/dynamic_graph.hpp"
#include "dyn/dynamic_sssp.hpp"
#include "dyn/repair.hpp"
#include "dyn/update_batch.hpp"
#include "fault/injector.hpp"
#include "graph/builder.hpp"
#include "obs/metrics.hpp"
#include "serve/query_engine.hpp"
#include "shard/fleet.hpp"
#include "sssp/dijkstra.hpp"
#include "test_util.hpp"

namespace peek {
namespace {

std::int64_t metric(const char* name) {
  return obs::MetricsRegistry::global().counter(name).value();
}

std::vector<sssp::Path> true_ksp(const graph::CsrGraph& g, vid_t s, vid_t t,
                                 int k) {
  core::PeekOptions po;
  po.k = k;
  return core::peek_ksp(g, s, t, po).ksp.paths;
}

void expect_paths_identical(const std::vector<sssp::Path>& a,
                            const std::vector<sssp::Path>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].dist, b[i].dist) << "rank " << i;
    EXPECT_EQ(a[i].verts, b[i].verts) << "rank " << i;
  }
}

// 0 -> 1 -> 2 -> 3, unit weights. Forward dist from 0: [0, 1, 2, 3].
graph::CsrGraph chain4() {
  return graph::from_edges(4, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}});
}

// -- Cone geometry on hand-built graphs -------------------------------------

TEST(ConeThreshold, ForwardReweightAnchorsAtTail) {
  auto csr = chain4();
  dyn::DynamicGraph g(csr);
  auto fwd = sssp::dijkstra(sssp::GraphView(csr), 0);

  auto b = dyn::apply(g, dyn::UpdateBatch{}.reweight(2, 3, 5.0));
  ASSERT_TRUE(b.any_applied());
  EXPECT_FALSE(b.structural());

  // First-batch-edge bound: dist[2] + min(1, 5) = 3. Only vertex 3 is in the
  // cone; 0..2 keep their exact pre-mutation distances.
  weight_t th = dyn::cone_threshold(b, fwd, /*reverse=*/false);
  EXPECT_DOUBLE_EQ(th, 3.0);
  auto mask = dyn::cone_mask(fwd, th);
  EXPECT_EQ(mask[0], 0);
  EXPECT_EQ(mask[1], 0);
  EXPECT_EQ(mask[2], 0);
  EXPECT_NE(mask[3], 0);
}

TEST(ConeThreshold, ReverseTreeAnchorsAtHead) {
  auto csr = chain4();
  dyn::DynamicGraph g(csr);
  csr.warm_reverse();
  // Reverse tree to root 3: dist[x] = x -> 3 = [3, 2, 1, 0].
  auto rev = sssp::dijkstra(sssp::GraphView(csr.reverse()), 3);
  ASSERT_EQ(rev.dist[0], 3.0);

  auto b = dyn::apply(g, dyn::UpdateBatch{}.reweight(2, 3, 5.0));
  // Reverse orientation anchors at v = 3: dist[3] + min(1, 5) = 1, so every
  // vertex that reaches the root through (2,3) — all of 0, 1, 2 — is inside.
  weight_t th = dyn::cone_threshold(b, rev, /*reverse=*/true);
  EXPECT_DOUBLE_EQ(th, 1.0);
  auto mask = dyn::cone_mask(rev, th);
  EXPECT_NE(mask[0], 0);
  EXPECT_NE(mask[1], 0);
  EXPECT_NE(mask[2], 0);
  EXPECT_EQ(mask[3], 0);
}

TEST(ConeThreshold, UnreachableAnchorContributesNothing) {
  // 0 -> 1 -> 2 plus isolated vertices 3, 4: an op anchored at an
  // unreachable tail cannot be the first batch edge of any path from 0.
  auto csr = graph::from_edges(5, {{0, 1, 1.0}, {1, 2, 1.0}});
  dyn::DynamicGraph g(csr);
  auto fwd = sssp::dijkstra(sssp::GraphView(csr), 0);
  ASSERT_EQ(fwd.dist[3], kInfDist);

  auto b = dyn::apply(g, dyn::UpdateBatch{}.insert(3, 4, 1.0));
  EXPECT_EQ(dyn::cone_threshold(b, fwd, false), kInfDist);

  // Mixed batch: the reachable op alone sets the bound.
  auto b2 = dyn::apply(g, dyn::UpdateBatch{}
                              .reweight(0, 1, 2.0)
                              .insert(3, 0, 7.0));
  EXPECT_DOUBLE_EQ(dyn::cone_threshold(b2, fwd, false), 1.0);
}

TEST(ConeThreshold, InsertShortcutAndNoopDelete) {
  auto csr = chain4();
  dyn::DynamicGraph g(csr);
  auto fwd = sssp::dijkstra(sssp::GraphView(csr), 0);

  // Deleting a non-existent edge applies nothing: no cone at all.
  auto noop = dyn::apply(g, dyn::UpdateBatch{}.erase(0, 3));
  EXPECT_FALSE(noop.any_applied());
  EXPECT_EQ(dyn::cone_threshold(noop, fwd, false), kInfDist);

  // Inserting a shortcut 0 -> 3 of weight 0.5 poisons everything past
  // dist[0] + 0.5.
  auto b = dyn::apply(g, dyn::UpdateBatch{}.insert(0, 3, 0.5));
  EXPECT_TRUE(b.structural());
  weight_t th = dyn::cone_threshold(b, fwd, false);
  EXPECT_DOUBLE_EQ(th, 0.5);
  auto mask = dyn::cone_mask(fwd, th);
  EXPECT_EQ(mask[0], 0);
  EXPECT_NE(mask[1], 0);
  EXPECT_NE(mask[2], 0);
  EXPECT_NE(mask[3], 0);
}

TEST(ConeMask, UnreachableVerticesAlwaysInside) {
  auto csr = graph::from_edges(5, {{0, 1, 1.0}, {1, 2, 1.0}});
  auto fwd = sssp::dijkstra(sssp::GraphView(csr), 0);
  // A batch can connect a previously-unreachable vertex, so no finite
  // threshold may ever exclude one.
  auto mask = dyn::cone_mask(fwd, /*threshold=*/1000.0);
  EXPECT_NE(mask[3], 0);
  EXPECT_NE(mask[4], 0);
  EXPECT_EQ(mask[0], 0);
}

// -- Randomized mutation sequences vs. rebuilt-from-scratch truth ------------

TEST(RandomizedMutations, DynamicDijkstraMatchesRebuiltCsr) {
  for (std::uint64_t seed : {101u, 202u, 303u}) {
    const vid_t n = 120;
    auto csr = test::random_graph(n, 700, seed);
    dyn::DynamicGraph g(csr);
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> w(0.05, 1.0);

    for (int round = 0; round < 5; ++round) {
      dyn::UpdateBatch ub;
      for (int i = 0; i < 25; ++i) {
        vid_t u = static_cast<vid_t>(rng() % n);
        vid_t v = static_cast<vid_t>(rng() % n);
        if (u == v) continue;
        switch (rng() % 3) {
          case 0: ub.insert(u, v, w(rng)); break;
          case 1: ub.erase(u, v); break;   // often a no-op — intentional
          default: ub.reweight(u, v, w(rng)); break;
        }
      }
      dyn::apply(g, ub);

      // The incremental structure and a from-scratch CSR rebuild must agree
      // bit-for-bit on every distance (unreachable included).
      auto rebuilt = g.to_csr();
      for (vid_t src : {vid_t{0}, vid_t{17}, vid_t{63}}) {
        auto dynd = dyn::dynamic_dijkstra(g, src);
        auto flat = sssp::dijkstra(sssp::GraphView(rebuilt), src);
        ASSERT_EQ(dynd.dist.size(), flat.dist.size());
        for (vid_t x = 0; x < n; ++x)
          EXPECT_EQ(dynd.dist[x], flat.dist[x])
              << "seed " << seed << " round " << round << " src " << src
              << " vertex " << x;
      }
    }
  }
}

TEST(RandomizedMutations, DisconnectingTargetGoesInfiniteBothWays) {
  auto csr = chain4();
  dyn::DynamicGraph g(csr);
  dyn::apply(g, dyn::UpdateBatch{}.erase(1, 2));
  auto dynd = dyn::dynamic_dijkstra(g, 0);
  auto flat = sssp::dijkstra(sssp::GraphView(g.to_csr()), 0);
  EXPECT_EQ(dynd.dist[2], kInfDist);
  EXPECT_EQ(dynd.dist[3], kInfDist);
  EXPECT_EQ(flat.dist[2], kInfDist);
  EXPECT_EQ(flat.dist[3], kInfDist);
}

TEST(RandomizedMutations, RepairMatchesFreshDijkstra) {
  for (std::uint64_t seed : {7u, 77u, 777u}) {
    const vid_t n = 140;
    auto csr = test::random_graph(n, 900, seed);
    dyn::DynamicGraph g(csr);
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> w(0.05, 1.0);

    const vid_t root = static_cast<vid_t>(seed % n);
    auto base_f = std::make_shared<sssp::SsspResult>(
        sssp::dijkstra(sssp::GraphView(csr), root));
    csr.warm_reverse();
    auto base_r = std::make_shared<sssp::SsspResult>(
        sssp::dijkstra(sssp::GraphView(csr.reverse()), root));

    // A mixed batch: reweight real edges (picked from the CSR) plus a
    // structural insert and delete.
    dyn::UpdateBatch ub;
    for (int i = 0; i < 6; ++i) {
      eid_t e = static_cast<eid_t>(rng() % static_cast<std::uint64_t>(
                                              csr.num_edges()));
      vid_t u = 0;
      while (csr.edge_end(u) <= e) ++u;
      ub.reweight(u, csr.edge_target(e), w(rng));
    }
    ub.insert(static_cast<vid_t>(rng() % n), static_cast<vid_t>(rng() % n),
              w(rng));
    ub.erase(0, csr.edge_target(csr.edge_begin(0)));
    auto b = dyn::apply(g, ub);
    ASSERT_TRUE(b.any_applied());

    auto post = g.to_csr();
    post.warm_reverse();

    std::vector<dyn::RepairJob> jobs;
    weight_t thf = dyn::cone_threshold(b, *base_f, false);
    weight_t thr = dyn::cone_threshold(b, *base_r, true);
    if (thf != kInfDist) jobs.push_back({root, false, thf, base_f});
    if (thr != kInfDist) jobs.push_back({root, true, thr, base_r});

    auto rr = dyn::repair_trees(post, jobs);
    ASSERT_EQ(rr.status.code, fault::Status::kOk);
    ASSERT_EQ(rr.trees.size(), jobs.size());

    for (size_t j = 0; j < jobs.size(); ++j) {
      auto fresh = sssp::dijkstra(
          sssp::GraphView(jobs[j].reverse ? post.reverse() : post), root);
      ASSERT_NE(rr.trees[j], nullptr);
      for (vid_t x = 0; x < n; ++x)
        EXPECT_EQ(rr.trees[j]->dist[x], fresh.dist[x])
            << "seed " << seed << (jobs[j].reverse ? " rev" : " fwd")
            << " vertex " << x;
    }
    // An infinite threshold claims the whole tree survived — hold it to that.
    if (thf == kInfDist) {
      auto fresh = sssp::dijkstra(sssp::GraphView(post), root);
      for (vid_t x = 0; x < n; ++x) EXPECT_EQ(base_f->dist[x], fresh.dist[x]);
    }
  }
}

TEST(PairImpact, ReweightClassificationIsSound) {
  for (std::uint64_t seed : {31u, 41u, 59u}) {
    const vid_t n = 100;
    const int k = 6;
    auto csr = test::random_graph(n, 600, seed);
    dyn::DynamicGraph g(csr);
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> w(0.05, 1.0);
    csr.warm_reverse();

    struct Pair {
      vid_t s, t;
      sssp::SsspResult fwd, rev;
      std::vector<sssp::Path> pre;
      weight_t upper = kInfDist;
    };
    std::vector<Pair> pairs;
    for (auto [s, t] : {std::pair<vid_t, vid_t>{0, 50},
                        {3, 70},
                        {10, 90}}) {
      Pair p;
      p.s = s;
      p.t = t;
      p.fwd = sssp::dijkstra(sssp::GraphView(csr), s);
      p.rev = sssp::dijkstra(sssp::GraphView(csr.reverse()), t);
      core::PeekOptions po;
      po.k = k;
      auto r = core::peek_ksp(csr, s, t, po);
      p.pre = r.ksp.paths;
      p.upper = r.upper_bound;
      if (!p.pre.empty()) pairs.push_back(std::move(p));
    }
    ASSERT_FALSE(pairs.empty());

    // Reweight-only batch over real edges.
    dyn::UpdateBatch ub;
    for (int i = 0; i < 8; ++i) {
      eid_t e = static_cast<eid_t>(rng() % static_cast<std::uint64_t>(
                                              csr.num_edges()));
      vid_t u = 0;
      while (csr.edge_end(u) <= e) ++u;
      ub.reweight(u, csr.edge_target(e), w(rng));
    }
    auto b = dyn::apply(g, ub);
    ASSERT_FALSE(b.structural());
    auto post = g.to_csr();

    for (const auto& p : pairs) {
      auto pi = dyn::pair_impact(b, &p.fwd, &p.rev, p.upper);
      auto now = true_ksp(post, p.s, p.t, k);
      if (!pi.affected) {
        expect_paths_identical(p.pre, now);
      } else {
        ASSERT_FALSE(pi.structural);  // reweight-only batch
        // Same path space, so the answer count is unchanged and every order
        // statistic moved by at most the cumulative reweight mass.
        ASSERT_EQ(p.pre.size(), now.size());
        for (size_t i = 0; i < now.size(); ++i)
          EXPECT_LE(std::abs(p.pre[i].dist - now[i].dist),
                    pi.weight_bound + 1e-9)
              << "seed " << seed << " pair (" << p.s << "," << p.t
              << ") rank " << i;
      }
    }
  }
}

TEST(PairImpact, StructuralOpsForbidStaleness) {
  auto csr = chain4();
  dyn::DynamicGraph g(csr);
  auto fwd = sssp::dijkstra(sssp::GraphView(csr), 0);
  csr.warm_reverse();
  auto rev = sssp::dijkstra(sssp::GraphView(csr.reverse()), 3);

  auto b = dyn::apply(g, dyn::UpdateBatch{}.insert(0, 3, 0.5));
  auto pi = dyn::pair_impact(b, &fwd, &rev, /*upper_bound=*/10.0);
  EXPECT_TRUE(pi.affected);
  EXPECT_TRUE(pi.structural);

  // Null trees must degrade to the conservative classification, never to a
  // silent "unaffected".
  auto pic = dyn::pair_impact(b, nullptr, nullptr, 10.0);
  EXPECT_TRUE(pic.affected);
  EXPECT_TRUE(pic.structural);
}

// -- Engine: surgical invalidation and bounded-staleness serving -------------

// Two disjoint diamonds: 0..3 and 4..7, two paths each.
graph::CsrGraph two_diamonds() {
  return graph::from_edges(8, {{0, 1, 1.0},
                               {1, 3, 1.0},
                               {0, 2, 2.0},
                               {2, 3, 2.0},
                               {4, 5, 1.0},
                               {5, 7, 1.0},
                               {4, 6, 2.0},
                               {6, 7, 2.0}});
}

class LiveEngineTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::Injector::global().disable(); }
};

TEST_F(LiveEngineTest, UnaffectedPairsStayCachedAcrossBatches) {
  auto csr = two_diamonds();
  dyn::DynamicGraph dg(csr);
  serve::ServeOptions so;
  so.live_mutations = true;
  serve::QueryEngine eng(dg, so);

  auto r03 = eng.query(0, 3, 2);
  auto r47 = eng.query(4, 7, 2);
  ASSERT_EQ(r03.status.code, fault::Status::kOk);
  ASSERT_EQ(r47.status.code, fault::Status::kOk);

  auto b = eng.apply_batch(dyn::UpdateBatch{}.reweight(5, 7, 10.0));
  EXPECT_EQ(b.epoch, 1u);
  EXPECT_EQ(eng.mutation_epoch(), 1u);
  eng.drain_repairs();
  EXPECT_EQ(eng.repaired_epoch(), 1u);
  EXPECT_EQ(eng.stale_entries(), 0u);

  // The untouched component's snapshot survived the sweep: it answers from
  // cache, fresh, restamped to the new epoch.
  auto r03b = eng.query(0, 3, 2);
  ASSERT_EQ(r03b.status.code, fault::Status::kOk);
  EXPECT_TRUE(r03b.snapshot_hit);
  EXPECT_FALSE(r03b.staleness.stale);
  expect_paths_identical(r03b.paths, r03.paths);
  EXPECT_EQ(eng.cache()
                .epoch_of(serve::ArtifactKind::kSnapshot, 0, 3)
                .value_or(99),
            1u);

  // The mutated component answers fresh against the post-mutation graph.
  auto post = dg.to_csr();
  auto r47b = eng.query(4, 7, 2);
  ASSERT_EQ(r47b.status.code, fault::Status::kOk);
  EXPECT_FALSE(r47b.staleness.stale);
  expect_paths_identical(r47b.paths, true_ksp(post, 4, 7, 2));
}

TEST_F(LiveEngineTest, StaleAnswerCarriesSoundBound) {
  auto csr = two_diamonds();
  dyn::DynamicGraph dg(csr);
  serve::ServeOptions so;
  so.live_mutations = true;
  // Stall the repair kernel so the stale-serving window is wide enough to
  // query into deterministically.
  fault::InjectorConfig cfg;
  cfg.enabled = true;
  cfg.rate_permille = 1000;
  cfg.stall = std::chrono::milliseconds(400);
  cfg.site_filter = "dyn.repair.stall";
  so.injector = cfg;
  serve::QueryEngine eng(dg, so);

  auto pre = eng.query(4, 7, 2);
  ASSERT_EQ(pre.status.code, fault::Status::kOk);

  const std::int64_t stale_before = metric("serve.stale_answers");
  auto b = eng.apply_batch(dyn::UpdateBatch{}.reweight(5, 7, 10.0));
  ASSERT_EQ(b.epoch, 1u);

  // Repair is parked in the stall; the affected pair serves bounded-stale.
  auto r = eng.query(4, 7, 2);
  ASSERT_EQ(r.status.code, fault::Status::kOk);
  ASSERT_TRUE(r.staleness.stale);
  EXPECT_EQ(r.staleness.epoch, 0u);
  EXPECT_EQ(r.staleness.epochs_behind, 1u);
  EXPECT_DOUBLE_EQ(r.staleness.weight_bound, 9.0);  // |10 - 1|
  if (obs::kEnabled) {
    EXPECT_GT(metric("serve.stale_answers"), stale_before);
  }

  // The served paths are the exact epoch-0 answer, and the bound covers the
  // true post-mutation answer rank by rank.
  expect_paths_identical(r.paths, pre.paths);
  auto post = dg.to_csr();
  auto now = true_ksp(post, 4, 7, 2);
  ASSERT_EQ(r.paths.size(), now.size());
  for (size_t i = 0; i < now.size(); ++i)
    EXPECT_LE(std::abs(r.paths[i].dist - now[i].dist),
              r.staleness.weight_bound + 1e-9);

  // Once the repair lands, the same query is fresh and exact.
  fault::Injector::global().disable();
  eng.drain_repairs();
  EXPECT_EQ(eng.stale_entries(), 0u);
  auto r2 = eng.query(4, 7, 2);
  ASSERT_EQ(r2.status.code, fault::Status::kOk);
  EXPECT_FALSE(r2.staleness.stale);
  expect_paths_identical(r2.paths, now);
}

TEST_F(LiveEngineTest, RepairCrashFallsBackToFullRecompute) {
  auto csr = two_diamonds();
  dyn::DynamicGraph dg(csr);
  serve::ServeOptions so;
  so.live_mutations = true;
  fault::InjectorConfig cfg;
  cfg.enabled = true;
  cfg.rate_permille = 1000;
  cfg.site_filter = "dyn.repair.crash";
  cfg.max_fires = 1;
  so.injector = cfg;
  serve::QueryEngine eng(dg, so);

  ASSERT_EQ(eng.query(4, 7, 2).status.code, fault::Status::kOk);

  const std::int64_t fallbacks_before = metric("dyn.repair.fallbacks");
  eng.apply_batch(dyn::UpdateBatch{}.reweight(5, 7, 10.0));
  eng.drain_repairs();

  // The crash abandoned the repair, but the engine recovered wholesale: the
  // epoch ledger is caught up and nothing is left servable-stale.
  if (obs::kEnabled) {
    EXPECT_GT(metric("dyn.repair.fallbacks"), fallbacks_before);
  }
  EXPECT_EQ(eng.repaired_epoch(), eng.mutation_epoch());
  EXPECT_EQ(eng.stale_entries(), 0u);

  auto post = dg.to_csr();
  auto r = eng.query(4, 7, 2);
  ASSERT_EQ(r.status.code, fault::Status::kOk);
  EXPECT_FALSE(r.staleness.stale);
  expect_paths_identical(r.paths, true_ksp(post, 4, 7, 2));
}

TEST_F(LiveEngineTest, InvalidateCancelsOwnerAndWakesWaiters) {
  auto ex = test::paper_example_graph();
  serve::QueryEngine eng(ex.g);
  auto truth = true_ksp(ex.g, ex.s, ex.t, 4);
  ASSERT_FALSE(truth.empty());

  // Park the owner's compute in prune-scan stalls long enough for a waiter
  // to coalesce and for invalidate() to land mid-flight.
  fault::InjectorConfig cfg;
  cfg.enabled = true;
  cfg.rate_permille = 1000;
  cfg.stall = std::chrono::milliseconds(250);
  cfg.site_filter = "prune.scan.stall";
  cfg.max_fires = 2;
  fault::Injector::global().configure(cfg);

  const std::int64_t invals_before = metric("serve.inflight_invalidations");
  serve::ServeResult ra, rb;
  std::thread owner([&] { ra = eng.query(ex.s, ex.t, 4); });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  std::thread waiter([&] { rb = eng.query(ex.s, ex.t, 4); });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  eng.invalidate();
  owner.join();
  waiter.join();

  // Both the aborted owner and the woken waiter retried to a correct answer
  // — neither hung, neither served a pre-invalidation snapshot as-is.
  ASSERT_EQ(ra.status.code, fault::Status::kOk);
  ASSERT_EQ(rb.status.code, fault::Status::kOk);
  expect_paths_identical(ra.paths, truth);
  expect_paths_identical(rb.paths, truth);
  if (obs::kEnabled) {
    EXPECT_GT(metric("serve.inflight_invalidations"), invals_before);
  }
  EXPECT_EQ(eng.inflight_entries(), 0u);
}

// -- Fleet: epoch fencing ----------------------------------------------------

TEST(LiveFleet, FenceAdvancesAndAnswersRespectIt) {
  const vid_t n = 60;
  auto csr = test::random_graph(n, 360, 7);
  dyn::DynamicGraph dg(csr);
  shard::FleetOptions fo;
  fo.router.shards = 2;
  fo.replicas = 2;
  shard::ShardFleet fleet(dg, fo);
  EXPECT_EQ(fleet.fence_epoch(), 0u);

  const std::vector<std::pair<vid_t, vid_t>> pairs = {
      {0, 41}, {3, 17}, {12, 55}, {30, 9}};
  for (auto [s, t] : pairs)
    ASSERT_EQ(fleet.query(s, t, 4).result.status.code, fault::Status::kOk);

  // Batch 1: reweight a real edge through the fleet-wide fence.
  vid_t u = 0;
  while (csr.degree(u) == 0) ++u;
  const vid_t v = csr.edge_target(csr.edge_begin(u));
  auto b1 = fleet.apply_batch(
      dyn::UpdateBatch{}.reweight(u, v, csr.edge_weight(csr.edge_begin(u)) + 3.0));
  EXPECT_EQ(b1.epoch, 1u);
  EXPECT_EQ(fleet.fence_epoch(), 1u);

  fleet.deliver_batches();
  for (int sh = 0; sh < 2; ++sh)
    for (int r = 0; r < 2; ++r)
      EXPECT_EQ(fleet.engine(sh, r).mutation_epoch(), 1u);

  auto post1 = dg.to_csr();  // safe: no concurrent apply_batch
  for (auto [s, t] : pairs) {
    auto q = fleet.query(s, t, 4);
    ASSERT_EQ(q.result.status.code, fault::Status::kOk);
    const auto& st = q.result.staleness;
    auto now = true_ksp(post1, s, t, 4);
    if (!st.stale) {
      // Non-stale answers passed the fence: exact for the post-batch graph.
      EXPECT_EQ(st.epoch + st.epochs_behind, 1u);
      expect_paths_identical(q.result.paths, now);
    } else {
      // Stale answers carry the fence-composed bound.
      EXPECT_EQ(st.epoch + st.epochs_behind, 1u);
      for (size_t i = 0; i < std::min(q.result.paths.size(), now.size()); ++i)
        EXPECT_LE(std::abs(q.result.paths[i].dist - now[i].dist),
                  st.weight_bound + 1e-9);
    }
  }

  // Batch 2: structural (delete the same edge). Structurally-affected pairs
  // must come back fresh — never stale across a structural fence.
  auto b2 = fleet.apply_batch(dyn::UpdateBatch{}.erase(u, v));
  EXPECT_TRUE(b2.structural());
  EXPECT_EQ(fleet.fence_epoch(), 2u);
  fleet.deliver_batches();
  for (int sh = 0; sh < 2; ++sh)
    for (int r = 0; r < 2; ++r) {
      fleet.engine(sh, r).drain_repairs();
      EXPECT_EQ(fleet.engine(sh, r).mutation_epoch(), 2u);
    }

  auto post2 = dg.to_csr();
  for (auto [s, t] : pairs) {
    auto q = fleet.query(s, t, 4);
    ASSERT_EQ(q.result.status.code, fault::Status::kOk);
    ASSERT_FALSE(q.result.staleness.stale);
    EXPECT_EQ(q.result.staleness.epoch + q.result.staleness.epochs_behind, 2u);
    expect_paths_identical(q.result.paths, true_ksp(post2, s, t, 4));
  }
}

}  // namespace
}  // namespace peek
