#include "graph/builder.hpp"

#include <gtest/gtest.h>

namespace peek::graph {
namespace {

TEST(Builder, BuildsSortedCsr) {
  Builder b(4);
  b.add_edge(2, 0, 1.0);
  b.add_edge(0, 3, 2.0);
  b.add_edge(0, 1, 3.0);
  CsrGraph g = b.build();
  EXPECT_EQ(g.num_edges(), 3);
  // Row 0 sorted by destination.
  EXPECT_EQ(g.edge_target(g.edge_begin(0)), 1);
  EXPECT_EQ(g.edge_target(g.edge_begin(0) + 1), 3);
}

TEST(Builder, DropsSelfLoops) {
  Builder b(3);
  b.add_edge(1, 1, 1.0);
  b.add_edge(0, 1, 1.0);
  EXPECT_EQ(b.build().num_edges(), 1);
}

TEST(Builder, KeepsSelfLoopsWhenDedupOff) {
  Builder b(3);
  b.set_dedup(false);
  b.add_edge(1, 1, 1.0);
  EXPECT_EQ(b.build().num_edges(), 1);
}

TEST(Builder, ParallelEdgesKeepLightest) {
  Builder b(2);
  b.add_edge(0, 1, 5.0);
  b.add_edge(0, 1, 2.0);
  b.add_edge(0, 1, 9.0);
  CsrGraph g = b.build();
  ASSERT_EQ(g.num_edges(), 1);
  EXPECT_DOUBLE_EQ(g.edge_weight(0), 2.0);
}

TEST(Builder, UndirectedAddsBothArcs) {
  Builder b(2);
  b.add_undirected_edge(0, 1, 1.5);
  CsrGraph g = b.build();
  EXPECT_NE(g.find_edge(0, 1), kNoEdge);
  EXPECT_NE(g.find_edge(1, 0), kNoEdge);
}

TEST(Builder, RejectsOutOfRange) {
  Builder b(2);
  EXPECT_THROW(b.add_edge(0, 2, 1.0), std::out_of_range);
  EXPECT_THROW(b.add_edge(-1, 0, 1.0), std::out_of_range);
}

TEST(Builder, RejectsNonPositiveWeights) {
  // Definition 1 requires w > 0.
  Builder b(2);
  EXPECT_THROW(b.add_edge(0, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(b.add_edge(0, 1, -1.0), std::invalid_argument);
}

TEST(Builder, ReusableAfterBuild) {
  Builder b(3);
  b.add_edge(0, 1, 1.0);
  CsrGraph g1 = b.build();
  b.add_edge(1, 2, 1.0);
  CsrGraph g2 = b.build();
  EXPECT_EQ(g1.num_edges(), 1);
  EXPECT_EQ(g2.num_edges(), 2);
}

TEST(FromEdges, Convenience) {
  CsrGraph g = from_edges(3, {{0, 1, 1.0}, {1, 2, 2.0}});
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
}

TEST(Builder, EmptyBuild) {
  Builder b(5);
  CsrGraph g = b.build();
  EXPECT_EQ(g.num_vertices(), 5);
  EXPECT_EQ(g.num_edges(), 0);
}

}  // namespace
}  // namespace peek::graph
