#include "dist/dist_peek.hpp"

#include <gtest/gtest.h>

#include "ksp/bruteforce.hpp"
#include "test_util.hpp"

namespace peek::dist {
namespace {

void expect_matches_serial_peek(const graph::CsrGraph& g, vid_t s, vid_t t,
                                int k, int ranks) {
  core::PeekOptions po;
  po.k = k;
  auto serial = core::peek_ksp(g, s, t, po);
  std::vector<std::vector<sssp::Path>> per_rank(static_cast<size_t>(ranks));
  run_ranks(ranks, [&](Comm& c) {
    DistPeekOptions opts;
    opts.k = k;
    auto r = dist_peek_ksp(c, g, s, t, opts);
    per_rank[static_cast<size_t>(c.rank())] = r.ksp.paths;
  });
  for (int r = 0; r < ranks; ++r) {
    SCOPED_TRACE(r);
    test::expect_same_distances(serial.ksp.paths,
                                per_rank[static_cast<size_t>(r)]);
  }
  if (!per_rank[0].empty()) test::check_ksp_invariants(g, s, t, per_rank[0]);
}

TEST(DistPeek, PaperExample) {
  auto ex = test::paper_example_graph();
  run_ranks(3, [&](Comm& c) {
    DistPeekOptions opts;
    opts.k = 3;
    auto r = dist_peek_ksp(c, ex.g, ex.s, ex.t, opts);
    ASSERT_EQ(r.ksp.paths.size(), 3u);
    EXPECT_DOUBLE_EQ(r.ksp.paths[0].dist, 11.0);
    EXPECT_DOUBLE_EQ(r.ksp.paths[2].dist, 14.0);
    EXPECT_DOUBLE_EQ(r.upper_bound, 14.0);
    EXPECT_EQ(r.kept_vertices, 7);
  });
}

TEST(DistPeek, MatchesSerialAcrossRankCounts) {
  auto g = test::random_graph(120, 960, 801);
  for (int ranks : {1, 2, 4}) expect_matches_serial_peek(g, 0, 60, 8, ranks);
}

TEST(DistPeek, UnitWeights) {
  auto g = test::random_graph(100, 1000, 803, /*unit_weights=*/true);
  expect_matches_serial_peek(g, 0, 50, 6, 3);
}

TEST(DistPeek, UnreachablePair) {
  auto g = graph::from_edges(6, {{1, 0, 1.0}, {2, 3, 1.0}});
  run_ranks(2, [&](Comm& c) {
    auto r = dist_peek_ksp(c, g, 0, 5, {});
    EXPECT_TRUE(r.ksp.paths.empty());
  });
}

TEST(DistPeek, ReportsRelaxedEdges) {
  auto g = test::random_graph(100, 800, 805);
  run_ranks(2, [&](Comm& c) {
    DistPeekOptions opts;
    opts.k = 4;
    auto r = dist_peek_ksp(c, g, 0, 50, opts);
    EXPECT_GT(r.edges_relaxed, 0);
  });
}

TEST(DistPeek, MatchesOracleOnSmallGraph) {
  auto g = test::random_graph(28, 80, 807);
  auto oracle = ksp::bruteforce_ksp(g, 0, 14, 6);
  run_ranks(2, [&](Comm& c) {
    DistPeekOptions opts;
    opts.k = 6;
    auto r = dist_peek_ksp(c, g, 0, 14, opts);
    test::expect_same_distances(oracle.paths, r.ksp.paths);
  });
}

}  // namespace
}  // namespace peek::dist
