#include "sssp/bellman_ford.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "sssp/dijkstra.hpp"
#include "test_util.hpp"

namespace peek::sssp {
namespace {

TEST(BellmanFord, Line) {
  auto g = graph::from_edges(3, {{0, 1, 1.0}, {1, 2, 2.0}});
  auto r = bellman_ford(g, 0);
  EXPECT_DOUBLE_EQ(r.dist[2], 3.0);
}

TEST(BellmanFord, InvalidSource) {
  auto g = graph::from_edges(2, {{0, 1, 1.0}});
  EXPECT_EQ(bellman_ford(g, 9).dist[0], kInfDist);
}

class BfVsDijkstra
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(BfVsDijkstra, DistancesAgree) {
  const auto [n, seed] = GetParam();
  auto g = test::random_graph(n, static_cast<eid_t>(n) * 6, seed);
  auto bf = bellman_ford(g, 0);
  auto dj = dijkstra(GraphView(g), 0);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (bf.dist[v] == kInfDist) {
      EXPECT_EQ(dj.dist[v], kInfDist);
    } else {
      EXPECT_NEAR(bf.dist[v], dj.dist[v], 1e-9) << "vertex " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, BfVsDijkstra,
    ::testing::Combine(::testing::Values(30, 100, 300),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)));

}  // namespace
}  // namespace peek::sssp
