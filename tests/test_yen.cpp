#include "ksp/yen.hpp"

#include <gtest/gtest.h>

#include "ksp/bruteforce.hpp"
#include "test_util.hpp"

namespace peek::ksp {
namespace {

KspOptions k_opts(int k) {
  KspOptions o;
  o.k = k;
  return o;
}

TEST(Yen, PaperExampleTopThree) {
  auto ex = test::paper_example_graph();
  auto r = yen_ksp(ex.g, ex.s, ex.t, k_opts(3));
  ASSERT_EQ(r.paths.size(), 3u);
  EXPECT_DOUBLE_EQ(r.paths[0].dist, 11.0);
  EXPECT_DOUBLE_EQ(r.paths[1].dist, 12.0);
  EXPECT_DOUBLE_EQ(r.paths[2].dist, 14.0);
  test::check_ksp_invariants(ex.g, ex.s, ex.t, r.paths);
}

TEST(Yen, KOneIsShortestPath) {
  auto g = test::random_graph(32, 90, 101);
  auto r = yen_ksp(g, 0, 16, k_opts(1));
  auto oracle = bruteforce_ksp(g, 0, 16, 1);
  ASSERT_EQ(r.paths.size(), oracle.paths.size());
  if (!r.paths.empty()) {
    EXPECT_NEAR(r.paths[0].dist, oracle.paths[0].dist, 1e-9);
  }
}

TEST(Yen, ExhaustsSmallPathSpace) {
  // Diamond has exactly 2 simple paths; asking for 10 returns 2.
  auto g = graph::from_edges(4, {{0, 1, 1.0}, {0, 2, 2.0}, {1, 3, 1.0},
                                 {2, 3, 1.0}});
  auto r = yen_ksp(g, 0, 3, k_opts(10));
  EXPECT_EQ(r.paths.size(), 2u);
}

TEST(Yen, UnreachableTargetEmpty) {
  auto g = graph::from_edges(3, {{1, 0, 1.0}});
  EXPECT_TRUE(yen_ksp(g, 0, 2, k_opts(4)).paths.empty());
}

TEST(Yen, SameSourceAndTarget) {
  auto g = graph::from_edges(3, {{0, 1, 1.0}, {1, 0, 1.0}});
  auto r = yen_ksp(g, 0, 0, k_opts(3));
  // The trivial zero-length path is the only simple s->s path.
  ASSERT_GE(r.paths.size(), 1u);
  EXPECT_DOUBLE_EQ(r.paths[0].dist, 0.0);
}

TEST(Yen, InvalidInputsSafe) {
  auto g = graph::from_edges(2, {{0, 1, 1.0}});
  EXPECT_TRUE(yen_ksp(g, -1, 1, k_opts(2)).paths.empty());
  EXPECT_TRUE(yen_ksp(g, 0, 7, k_opts(2)).paths.empty());
  EXPECT_TRUE(yen_ksp(g, 0, 1, k_opts(0)).paths.empty());
}

TEST(Yen, CountsSsspCalls) {
  auto ex = test::paper_example_graph();
  auto r = yen_ksp(ex.g, ex.s, ex.t, k_opts(3));
  // At least one SSSP for the first path plus one per deviation examined.
  EXPECT_GE(r.stats.sssp_calls, 3);
}

TEST(Yen, ParallelMatchesSerial) {
  auto g = test::random_graph(80, 640, 103);
  KspOptions ser = k_opts(8);
  KspOptions par = k_opts(8);
  par.parallel = true;
  auto a = yen_ksp(g, 0, 40, ser);
  auto b = yen_ksp(g, 0, 40, par);
  test::expect_same_distances(a.paths, b.paths);
}

TEST(Yen, LawlerIndexDoesNotLosePaths) {
  // Dense path space where naive-vs-Lawler divergence would show: compare
  // against the oracle exactly.
  auto g = graph::layered_dag(4, 4, 3, {graph::WeightKind::kUniform01, 5}, 11);
  auto r = yen_ksp(g, 0, 13, k_opts(12));
  auto oracle = bruteforce_ksp(g, 0, 13, 12);
  test::expect_same_distances(r.paths, oracle.paths);
  test::check_ksp_invariants(g, 0, 13, r.paths);
}

}  // namespace
}  // namespace peek::ksp
