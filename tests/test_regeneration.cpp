#include "compact/regeneration.hpp"

#include <gtest/gtest.h>

#include "sssp/dijkstra.hpp"
#include "test_util.hpp"

namespace peek::compact {
namespace {

TEST(Regeneration, BuildsDenseSubgraph) {
  auto g = graph::from_edges(
      5, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}, {3, 4, 1.0}, {0, 4, 9.0}});
  std::vector<std::uint8_t> keep{1, 0, 1, 0, 1};  // keep 0, 2, 4
  auto regen = regenerate(sssp::GraphView(g), keep.data());
  EXPECT_EQ(regen.graph.num_vertices(), 3);
  EXPECT_EQ(regen.graph.num_edges(), 1);  // only 0 -> 4 survives
  EXPECT_EQ(regen.map.to_new(0), 0);
  EXPECT_EQ(regen.map.to_new(2), 1);
  EXPECT_EQ(regen.map.to_new(4), 2);
  EXPECT_EQ(regen.map.to_new(1), kNoVertex);
  EXPECT_EQ(regen.map.to_old(2), 4);
  // The surviving edge uses new ids.
  EXPECT_NE(regen.graph.find_edge(0, 2), kNoEdge);
}

TEST(Regeneration, EdgePredicate) {
  auto g = graph::from_edges(2, {{0, 1, 5.0}});
  std::vector<std::uint8_t> keep{1, 1};
  auto regen = regenerate(sssp::GraphView(g), keep.data(),
                          [](vid_t, vid_t, weight_t w) { return w <= 1.0; });
  EXPECT_EQ(regen.graph.num_vertices(), 2);
  EXPECT_EQ(regen.graph.num_edges(), 0);
}

TEST(Regeneration, PaperExampleFigure5c) {
  // Figure 5(c): regenerating after pruning {a,b,c,d,e,i,o,p,r} leaves the
  // 7-vertex remaining graph {f,g,j,l,q,s,t} with 11 edges.
  auto ex = test::paper_example_graph();
  std::vector<std::uint8_t> keep(16, 0);
  for (const char* name : {"f", "g", "j", "l", "q", "s", "t"})
    keep[ex.id.at(name)] = 1;
  auto regen = regenerate(sssp::GraphView(ex.g), keep.data());
  EXPECT_EQ(regen.graph.num_vertices(), 7);
  EXPECT_EQ(regen.graph.num_edges(), 11);
}

TEST(Regeneration, SsspEquivalence) {
  auto g = test::random_graph(120, 1000, 71);
  std::vector<std::uint8_t> keep(120, 1);
  for (vid_t v = 0; v < 120; v += 5) keep[v] = 0;
  keep[0] = 1;
  auto pred = [](vid_t, vid_t, weight_t w) { return w <= 0.9; };
  auto regen = regenerate(sssp::GraphView(g), keep.data(), pred);
  auto got = sssp::dijkstra(sssp::GraphView(regen.graph), regen.map.to_new(0));

  graph::Builder b(120);
  for (vid_t u = 0; u < 120; ++u) {
    if (!keep[u]) continue;
    for (eid_t e = g.edge_begin(u); e < g.edge_end(u); ++e) {
      if (keep[g.edge_target(e)] && g.edge_weight(e) <= 0.9)
        b.add_edge(u, g.edge_target(e), g.edge_weight(e));
    }
  }
  auto ref = sssp::dijkstra(sssp::GraphView(b.build()), 0);
  for (vid_t v = 0; v < 120; ++v) {
    if (!keep[v]) continue;
    const vid_t nv = regen.map.to_new(v);
    if (ref.dist[v] == kInfDist) {
      EXPECT_EQ(got.dist[nv], kInfDist) << v;
    } else {
      EXPECT_NEAR(got.dist[nv], ref.dist[v], 1e-9) << v;
    }
  }
}

TEST(Regeneration, MapsAreMutuallyInverse) {
  auto g = test::random_graph(64, 256, 73);
  std::vector<std::uint8_t> keep(64, 1);
  for (vid_t v = 1; v < 64; v += 2) keep[v] = 0;
  auto regen = regenerate(sssp::GraphView(g), keep.data());
  for (vid_t nv = 0; nv < regen.graph.num_vertices(); ++nv)
    EXPECT_EQ(regen.map.to_new(regen.map.to_old(nv)), nv);
  for (vid_t ov = 0; ov < 64; ++ov) {
    if (regen.map.to_new(ov) != kNoVertex) {
      EXPECT_EQ(regen.map.to_old(regen.map.to_new(ov)), ov);
    }
  }
}

TEST(Regeneration, SerialParallelIdentical) {
  auto g = test::random_graph(100, 900, 79);
  std::vector<std::uint8_t> keep(100, 1);
  for (vid_t v = 0; v < 100; v += 7) keep[v] = 0;
  auto a = regenerate(sssp::GraphView(g), keep.data(), nullptr,
                      {.parallel = false});
  auto b = regenerate(sssp::GraphView(g), keep.data(), nullptr,
                      {.parallel = true});
  EXPECT_TRUE(a.graph == b.graph);
  EXPECT_EQ(a.map.new_to_old, b.map.new_to_old);
}

TEST(Regeneration, KeepNothing) {
  auto g = graph::from_edges(2, {{0, 1, 1.0}});
  std::vector<std::uint8_t> keep{0, 0};
  auto regen = regenerate(sssp::GraphView(g), keep.data());
  EXPECT_EQ(regen.graph.num_vertices(), 0);
  EXPECT_EQ(regen.graph.num_edges(), 0);
}

TEST(Regeneration, ComposesWithEdgeSwapView) {
  // Regenerating from an edge-swapped view must see only the valid ranges.
  auto g = test::random_graph(50, 400, 83);
  MutableCsr mc(g);
  std::vector<std::uint8_t> keep(50, 1);
  keep[10] = keep[20] = 0;
  edge_swap_compact(mc, keep.data());
  auto regen = regenerate(mc.view(), nullptr);
  EXPECT_EQ(regen.graph.num_vertices(), 48);
  EXPECT_EQ(regen.graph.num_edges(), mc.num_valid_edges());
}

}  // namespace
}  // namespace peek::compact
