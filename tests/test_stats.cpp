#include "graph/stats.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "test_util.hpp"

namespace peek::graph {
namespace {

TEST(Stats, CountsBasics) {
  auto g = from_edges(4, {{0, 1, 2.0}, {1, 2, 0.5}, {1, 3, 1.0}});
  auto s = compute_stats(g);
  EXPECT_EQ(s.n, 4);
  EXPECT_EQ(s.m, 3);
  EXPECT_EQ(s.max_out_degree, 2);
  EXPECT_DOUBLE_EQ(s.min_weight, 0.5);
  EXPECT_DOUBLE_EQ(s.max_weight, 2.0);
  EXPECT_EQ(s.isolated_vertices, 0);
}

TEST(Stats, IsolatedDetection) {
  auto g = from_edges(5, {{0, 1, 1.0}});
  auto s = compute_stats(g);
  EXPECT_EQ(s.isolated_vertices, 3);  // 2, 3, 4
}

TEST(Stats, ToStringContainsFields) {
  auto g = from_edges(2, {{0, 1, 1.0}});
  std::string str = to_string(compute_stats(g));
  EXPECT_NE(str.find("n=2"), std::string::npos);
  EXPECT_NE(str.find("m=1"), std::string::npos);
}

TEST(Reachability, ForwardBfs) {
  // 0 -> 1 -> 2, 3 isolated.
  auto g = from_edges(4, {{0, 1, 1.0}, {1, 2, 1.0}});
  auto r = reachable_from(g, 0);
  EXPECT_TRUE(r[0] && r[1] && r[2]);
  EXPECT_FALSE(r[3]);
}

TEST(Reachability, ReverseBfs) {
  auto g = from_edges(4, {{0, 1, 1.0}, {1, 2, 1.0}});
  auto r = reaching_to(g, 2);
  EXPECT_TRUE(r[0] && r[1] && r[2]);
  EXPECT_FALSE(r[3]);
}

TEST(Reachability, PaperExampleUnreachables) {
  auto ex = test::paper_example_graph();
  auto from_s = reachable_from(ex.g, ex.s);
  // a, c, d cannot be reached from s (they only point INTO the graph).
  EXPECT_FALSE(from_s[ex.id.at("a")]);
  EXPECT_FALSE(from_s[ex.id.at("c")]);
  EXPECT_FALSE(from_s[ex.id.at("d")]);
  EXPECT_TRUE(from_s[ex.id.at("q")]);
  auto to_t = reaching_to(ex.g, ex.t);
  // b and p have no out-edges, so they cannot reach t.
  EXPECT_FALSE(to_t[ex.id.at("b")]);
  EXPECT_FALSE(to_t[ex.id.at("p")]);
  EXPECT_TRUE(to_t[ex.id.at("e")]);
}

}  // namespace
}  // namespace peek::graph
