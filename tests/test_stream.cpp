#include "ksp/stream.hpp"

#include <gtest/gtest.h>

#include "ksp/bruteforce.hpp"
#include "ksp/optyen.hpp"
#include "test_util.hpp"

namespace peek::ksp {
namespace {

TEST(KspStream, ProducesPathsInOrder) {
  auto ex = test::paper_example_graph();
  KspStream stream(ex.g, ex.s, ex.t);
  auto p1 = stream.next();
  auto p2 = stream.next();
  auto p3 = stream.next();
  ASSERT_TRUE(p1 && p2 && p3);
  EXPECT_DOUBLE_EQ(p1->dist, 11.0);
  EXPECT_DOUBLE_EQ(p2->dist, 12.0);
  EXPECT_DOUBLE_EQ(p3->dist, 14.0);
}

TEST(KspStream, MatchesBatchOptYen) {
  auto g = test::random_graph(100, 800, 921);
  KspOptions ko;
  ko.k = 12;
  auto batch = optyen_ksp(g, 0, 50, ko);
  KspStream stream(g, 0, 50);
  for (const auto& expect : batch.paths) {
    auto got = stream.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_NEAR(got->dist, expect.dist, 1e-9);
  }
}

TEST(KspStream, ExhaustsAndStaysExhausted) {
  auto g = graph::from_edges(4, {{0, 1, 1.0}, {0, 2, 2.0}, {1, 3, 1.0},
                                 {2, 3, 1.0}});
  KspStream stream(g, 0, 3);
  EXPECT_TRUE(stream.next().has_value());
  EXPECT_TRUE(stream.next().has_value());
  EXPECT_FALSE(stream.next().has_value());
  EXPECT_FALSE(stream.next().has_value());
  EXPECT_EQ(stream.produced().size(), 2u);
}

TEST(KspStream, UnreachableAndInvalid) {
  auto g = graph::from_edges(3, {{1, 0, 1.0}});
  KspStream a(g, 0, 2);
  EXPECT_FALSE(a.next().has_value());
  KspStream b(g, -1, 2);
  EXPECT_FALSE(b.next().has_value());
}

TEST(KspStream, MatchesOracleFully) {
  auto g = test::random_graph(28, 80, 923);
  auto all = bruteforce_ksp(g, 0, 14, 1 << 20).paths;
  KspStream stream(g, 0, 14);
  for (const auto& expect : all) {
    auto got = stream.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_NEAR(got->dist, expect.dist, 1e-9) << sssp::to_string(expect);
    EXPECT_TRUE(sssp::is_simple(*got));
  }
  EXPECT_FALSE(stream.next().has_value());
}

TEST(KspStream, LazyCostGrowsWithDemand) {
  auto g = test::random_graph(200, 1600, 925);
  KspStream cheap(g, 0, 100);
  cheap.next();
  const int after_one = cheap.stats().sssp_calls;
  KspStream costly(g, 0, 100);
  for (int i = 0; i < 10; ++i) costly.next();
  EXPECT_LE(after_one, costly.stats().sssp_calls);
  EXPECT_EQ(after_one, 1);  // the first path needs exactly the reverse tree
}

}  // namespace
}  // namespace peek::ksp
