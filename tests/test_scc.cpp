#include "graph/scc.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "test_util.hpp"

namespace peek::graph {
namespace {

TEST(Scc, TwoCyclesAndABridge) {
  // 0 <-> 1 (cycle A), 2 <-> 3 (cycle B), bridge 1 -> 2.
  auto g = from_edges(4, {{0, 1, 1.0}, {1, 0, 1.0}, {2, 3, 1.0}, {3, 2, 1.0},
                          {1, 2, 1.0}});
  auto r = strongly_connected_components(g);
  EXPECT_EQ(r.num_components, 2);
  EXPECT_EQ(r.component[0], r.component[1]);
  EXPECT_EQ(r.component[2], r.component[3]);
  EXPECT_NE(r.component[0], r.component[2]);
}

TEST(Scc, DagIsAllSingletons) {
  auto g = layered_dag(3, 4, 2, {WeightKind::kUnit, 1}, 5);
  auto r = strongly_connected_components(g);
  EXPECT_EQ(r.num_components, g.num_vertices());
}

TEST(Scc, FullCycle) {
  Builder b(5);
  for (vid_t v = 0; v < 5; ++v) b.add_edge(v, (v + 1) % 5, 1.0);
  auto r = strongly_connected_components(b.build());
  EXPECT_EQ(r.num_components, 1);
}

TEST(Scc, ReverseTopologicalIds) {
  // Component ids must be reverse-topological: if SCC(u) can reach SCC(v)
  // and they differ, component[u] > component[v] (Tarjan property).
  auto g = test::random_graph(100, 500, 941);
  auto r = strongly_connected_components(g);
  for (vid_t u = 0; u < 100; ++u) {
    for (vid_t v : g.neighbors(u)) {
      if (r.component[u] != r.component[v]) {
        EXPECT_GT(r.component[u], r.component[v]) << u << "->" << v;
      }
    }
  }
}

TEST(Scc, MembersAreMutuallyReachable) {
  auto g = test::random_graph(80, 640, 943);
  auto r = strongly_connected_components(g);
  const vid_t big = r.largest();
  // Every pair inside the largest SCC reaches each other (spot-check from
  // one member via BFS both ways).
  vid_t probe = kNoVertex;
  for (vid_t v = 0; v < 80; ++v) {
    if (r.component[v] == big) {
      probe = v;
      break;
    }
  }
  ASSERT_NE(probe, kNoVertex);
  auto fwd = reachable_from(g, probe);
  auto bwd = reaching_to(g, probe);
  for (vid_t v = 0; v < 80; ++v) {
    if (r.component[v] == big) {
      EXPECT_TRUE(fwd[v] && bwd[v]) << v;
    } else {
      EXPECT_FALSE(fwd[v] && bwd[v]) << v;  // else it would be in the SCC
    }
  }
}

TEST(Scc, SizesSumToN) {
  auto g = test::random_graph(200, 800, 947);
  auto r = strongly_connected_components(g);
  auto sizes = r.sizes();
  vid_t total = 0;
  for (vid_t s : sizes) total += s;
  EXPECT_EQ(total, 200);
}

TEST(Scc, EmptyAndSingleton) {
  CsrGraph empty({0}, {}, {});
  EXPECT_EQ(strongly_connected_components(empty).num_components, 0);
  CsrGraph one({0, 0}, {}, {});
  auto r = strongly_connected_components(one);
  EXPECT_EQ(r.num_components, 1);
  EXPECT_EQ(r.component[0], 0);
}

}  // namespace
}  // namespace peek::graph
