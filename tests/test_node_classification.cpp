#include "ksp/node_classification.hpp"

#include <gtest/gtest.h>

#include "ksp/bruteforce.hpp"
#include "test_util.hpp"

namespace peek::ksp {
namespace {

KspOptions k_opts(int k) {
  KspOptions o;
  o.k = k;
  return o;
}

TEST(NodeClassification, PaperExampleTopThree) {
  auto ex = test::paper_example_graph();
  auto r = nc_ksp(ex.g, ex.s, ex.t, k_opts(3));
  ASSERT_EQ(r.paths.size(), 3u);
  EXPECT_DOUBLE_EQ(r.paths[0].dist, 11.0);
  EXPECT_DOUBLE_EQ(r.paths[1].dist, 12.0);
  EXPECT_DOUBLE_EQ(r.paths[2].dist, 14.0);
  test::check_ksp_invariants(ex.g, ex.s, ex.t, r.paths);
}

TEST(NodeClassification, MatchesOracle) {
  auto g = graph::layered_dag(4, 4, 3, {graph::WeightKind::kUniform01, 9}, 17);
  auto r = nc_ksp(g, 0, 13, k_opts(12));
  auto oracle = bruteforce_ksp(g, 0, 13, 12);
  test::expect_same_distances(r.paths, oracle.paths);
}

TEST(NodeClassification, GreenShortcutsHappen) {
  auto g = test::random_graph(150, 1200, 121);
  auto r = nc_ksp(g, 0, 75, k_opts(10));
  if (r.paths.empty()) GTEST_SKIP() << "unreachable pair";
  EXPECT_GT(r.stats.tree_shortcuts, 0);
}

TEST(NodeClassification, UnreachableEmpty) {
  auto g = graph::from_edges(3, {{1, 0, 1.0}});
  EXPECT_TRUE(nc_ksp(g, 0, 2, k_opts(4)).paths.empty());
}

TEST(NodeClassification, ParallelInnerMatchesSerial) {
  // NC's outer loop stays serial (shared colors) but the inner SSSP may use
  // parallel Δ-stepping; results must be identical.
  auto g = test::random_graph(80, 640, 123);
  KspOptions par = k_opts(8);
  par.parallel = true;
  auto a = nc_ksp(g, 0, 40, k_opts(8));
  auto b = nc_ksp(g, 0, 40, par);
  test::expect_same_distances(a.paths, b.paths);
}

TEST(NodeClassification, UnitWeights) {
  auto g = test::random_graph(32, 96, 125, /*unit_weights=*/true);
  auto r = nc_ksp(g, 0, 16, k_opts(6));
  auto oracle = bruteforce_ksp(g, 0, 16, 6);
  test::expect_same_distances(r.paths, oracle.paths);
}

}  // namespace
}  // namespace peek::ksp
