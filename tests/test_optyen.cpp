#include "ksp/optyen.hpp"

#include <gtest/gtest.h>

#include "ksp/bruteforce.hpp"
#include "ksp/yen.hpp"
#include "test_util.hpp"

namespace peek::ksp {
namespace {

KspOptions k_opts(int k) {
  KspOptions o;
  o.k = k;
  return o;
}

TEST(OptYen, PaperExampleTopThree) {
  auto ex = test::paper_example_graph();
  auto r = optyen_ksp(ex.g, ex.s, ex.t, k_opts(3));
  ASSERT_EQ(r.paths.size(), 3u);
  EXPECT_DOUBLE_EQ(r.paths[0].dist, 11.0);
  EXPECT_DOUBLE_EQ(r.paths[1].dist, 12.0);
  EXPECT_DOUBLE_EQ(r.paths[2].dist, 14.0);
  test::check_ksp_invariants(ex.g, ex.s, ex.t, r.paths);
}

TEST(OptYen, TreeShortcutsReduceSsspCalls) {
  // The whole point of the static reverse tree: strictly fewer SSSPs than
  // Yen on the same instance (and some shortcuts taken).
  auto g = test::random_graph(120, 960, 111);
  auto yen = yen_ksp(g, 0, 60, k_opts(12));
  auto opt = optyen_ksp(g, 0, 60, k_opts(12));
  if (yen.paths.empty()) GTEST_SKIP() << "unreachable pair";
  test::expect_same_distances(yen.paths, opt.paths);
  EXPECT_LT(opt.stats.sssp_calls, yen.stats.sssp_calls);
  EXPECT_GT(opt.stats.tree_shortcuts, 0);
}

TEST(OptYen, MatchesOracleOnDenseDag) {
  auto g = graph::layered_dag(4, 4, 3, {graph::WeightKind::kUniform01, 7}, 13);
  auto r = optyen_ksp(g, 0, 13, k_opts(12));
  auto oracle = bruteforce_ksp(g, 0, 13, 12);
  test::expect_same_distances(r.paths, oracle.paths);
}

TEST(OptYen, UnreachableAndInvalid) {
  auto g = graph::from_edges(3, {{1, 0, 1.0}});
  EXPECT_TRUE(optyen_ksp(g, 0, 2, k_opts(4)).paths.empty());
  EXPECT_TRUE(optyen_ksp(g, 0, 0, k_opts(0)).paths.empty());
}

TEST(OptYen, ParallelMatchesSerial) {
  auto g = test::random_graph(80, 640, 113);
  KspOptions par = k_opts(8);
  par.parallel = true;
  auto a = optyen_ksp(g, 0, 40, k_opts(8));
  auto b = optyen_ksp(g, 0, 40, par);
  test::expect_same_distances(a.paths, b.paths);
}

TEST(OptYen, UnitWeightGraph) {
  auto g = test::random_graph(32, 96, 115, /*unit_weights=*/true);
  auto r = optyen_ksp(g, 0, 16, k_opts(6));
  auto oracle = bruteforce_ksp(g, 0, 16, 6);
  test::expect_same_distances(r.paths, oracle.paths);
}

}  // namespace
}  // namespace peek::ksp
